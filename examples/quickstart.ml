(* Quickstart: the basic network creation game in five minutes.

     dune exec examples/quickstart.exe

   Builds a small network, inspects agent costs, evaluates a swap by hand,
   runs best-response dynamics to a swap equilibrium, and verifies the
   result with the equilibrium checker. *)

let pf = Printf.printf

let () =
  (* 1. A network: agents are vertices, links are edges.  Start from a path
     on 8 agents — the worst network for everyone in the middle of it. *)
  let g = Generators.path 8 in
  pf "initial network: path on %d agents, %d links\n" (Graph.n g) (Graph.m g);

  (* 2. Usage costs.  The sum version charges an agent the total distance
     to everyone else; the max version charges its eccentricity. *)
  let ws = Bfs.create_workspace (Graph.n g) in
  for v = 0 to Graph.n g - 1 do
    pf "  agent %d: sum cost %2d, local diameter %d\n" v
      (Usage_cost.vertex_cost ws Usage_cost.Sum g v)
      (Usage_cost.vertex_cost ws Usage_cost.Max g v)
  done;

  (* 3. A move: agent 0 would rather be attached to the middle of the path
     than to its end.  Moves are edge swaps: replace one incident edge by
     another. *)
  let mv = Swap.Swap { actor = 0; drop = 1; add = 4 } in
  let delta = Swap.delta ws Usage_cost.Sum g mv in
  pf "\nagent 0 considers %s: sum-cost change %d (%s)\n"
    (Swap.move_to_string mv) delta
    (if delta < 0 then "improving — it would take it" else "not improving");

  (* 4. Equilibrium check (polynomial time — the paper's selling point
     against Nash equilibria, which are NP-hard to verify). *)
  (match Equilibrium.check_sum g with
  | Equilibrium.Violation (w, d) ->
    pf "the path is not a sum equilibrium: %s improves by %d\n"
      (Swap.move_to_string w) d
  | Equilibrium.Equilibrium -> pf "unexpectedly stable\n"
  | Equilibrium.Disconnected -> pf "disconnected\n"
  | Equilibrium.Alpha_violation _ -> assert false (* basic games only *));

  (* 5. Best-response dynamics: agents swap until no one can improve. *)
  let result = Dynamics.converge_sum g in
  pf "\ndynamics: %s after %d rounds / %d moves\n"
    (Exp_common.outcome_name result.Dynamics.outcome)
    result.Dynamics.rounds result.Dynamics.moves;
  let final = result.Dynamics.final in
  pf "final network: diameter %s, %d links\n"
    (match Metrics.diameter final with Some d -> string_of_int d | None -> "inf")
    (Graph.m final);
  pf "is a verified sum equilibrium: %b\n" (Equilibrium.is_sum_equilibrium final);
  pf "is a star (Theorem 1 says equilibrium trees must be): %b\n"
    (Tree_eq.is_star final);

  (* 6. Every graph serializes to graph6 for the CLI and external tools. *)
  pf "\nfinal graph6: %s  (inspect with: bncg info <string>)\n"
    (Graph6.encode final)
