(* Convergence study: how fast greedy agents reach a swap equilibrium, and
   what the equilibria look like (Theorem 9's question).

     dune exec examples/convergence_study.exe

   Shows one fully-traced run (move by move, with the social cost and the
   network diameter after each move), then sweeps sizes and seeds. *)

let pf = Printf.printf

let () =
  (* one run in detail *)
  let rng = Prng.create 2024 in
  let g0 = Random_graphs.connected_gnm rng 14 22 in
  pf "one traced run: sum version, n=14, m=22, round-robin best response\n\n";
  let cfg =
    { (Dynamics.default_config Game.Sum) with Dynamics.record_trace = true }
  in
  let r = Dynamics.run ~rng cfg g0 in
  pf "  %-5s %-22s %7s %8s %9s\n" "step" "move" "delta" "social" "diameter";
  List.iter
    (fun s ->
      pf "  %-5d %-22s %7d %8d %9d\n" s.Dynamics.index
        (Swap.move_to_string s.Dynamics.move)
        s.Dynamics.delta s.Dynamics.social s.Dynamics.diameter)
    r.Dynamics.trace;
  pf "  -> %s in %d rounds; final diameter %s; equilibrium verified %b\n\n"
    (Exp_common.outcome_name r.Dynamics.outcome)
    r.Dynamics.rounds
    (match Metrics.diameter r.Dynamics.final with
    | Some d -> string_of_int d
    | None -> "inf")
    (Equilibrium.is_sum_equilibrium r.Dynamics.final);

  (* sweep: sizes x seeds x versions *)
  let t =
    Table.create ~title:"convergence sweep (5 seeds each)"
      ~columns:
        [
          ("version", Table.Left);
          ("n", Table.Right);
          ("init m", Table.Right);
          ("converged", Table.Left);
          ("rounds (min..max)", Table.Left);
          ("moves (mean)", Table.Right);
          ("final diameter", Table.Left);
        ]
  in
  List.iter
    (fun version ->
      List.iter
        (fun n ->
          let runs =
            List.map
              (fun seed ->
                let rng = Prng.create seed in
                let g = Random_graphs.connected_gnm rng n (2 * n) in
                Dynamics.run ~rng (Dynamics.default_config version) g)
              [ 1; 2; 3; 4; 5 ]
          in
          let conv = List.filter (fun r -> r.Dynamics.outcome = Dynamics.Converged) runs in
          let rounds = Array.of_list (List.map (fun r -> r.Dynamics.rounds) conv) in
          let moves =
            Array.of_list (List.map (fun r -> float_of_int r.Dynamics.moves) conv)
          in
          let diams =
            Array.of_list
              (List.filter_map (fun r -> Metrics.diameter r.Dynamics.final) conv)
          in
          Table.add_row t
            [
              Game.to_string version;
              Table.cell_int n;
              Table.cell_int (2 * n);
              Printf.sprintf "%d/%d" (List.length conv) (List.length runs);
              Exp_common.minmax_cell rounds;
              Exp_common.mean_cell moves;
              Exp_common.minmax_cell diams;
            ])
        [ 12; 24; 48; 96 ])
    [ Game.Sum; Game.Max ];
  Table.print t;
  pf "Theorem 9 context: the sum bound 2^(3 sqrt lg n) at n=96 is %.0f —\n"
    (Theory.theorem9_bound 96);
  pf "observed equilibria sit at diameter 2-3, far below it (see E7 for more).\n"
