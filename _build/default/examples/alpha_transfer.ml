(* The alpha-game baseline and the paper's transfer claim.

     dune exec examples/alpha_transfer.exe

   The classic network creation game (Fabrikant et al.) prices each link at
   alpha; its behavior depends delicately on alpha and its Nash equilibria
   are NP-hard to verify.  The paper's swap equilibria need no alpha at
   all, and their diameter bounds transfer to every alpha.  This example
   runs the alpha-game across five orders of magnitude of alpha and shows
   the equilibrium networks' diameters stay small throughout. *)

let pf = Printf.printf

let () =
  let n = 12 in
  pf "alpha-game best-response dynamics, n = %d, start = random tree (seed 7)\n\n" n;
  pf "  %10s %9s %7s %9s %13s %13s %8s\n" "alpha" "outcome" "links" "diameter"
    "alpha-local-eq" "swap-eq (sum)" "PoA";
  List.iter
    (fun alpha ->
      let rng = Prng.create 7 in
      let game = Alpha_game.create ~alpha (Random_graphs.tree rng n) in
      let r = Alpha_game.run_dynamics game in
      let st = r.Alpha_game.state in
      let g = Alpha_game.graph st in
      pf "  %10.2f %9s %7d %9s %13b %13b %8.3f\n" alpha
        (match r.Alpha_game.outcome with
        | Alpha_game.Converged -> "conv"
        | Alpha_game.Cycled -> "cycled"
        | Alpha_game.Round_limit -> "limit")
        (Graph.m g)
        (match Metrics.diameter g with Some d -> string_of_int d | None -> "inf")
        (Alpha_game.is_local_equilibrium st)
        (Equilibrium.is_sum_equilibrium g)
        (Poa.alpha_poa st))
    [ 0.1; 0.5; 1.0; 2.0; 5.0; 12.0; 24.0; 72.0; 144.0 ];

  pf "\nreading the table:\n";
  pf "- small alpha: links are cheap, agents buy towards the complete graph;\n";
  pf "- large alpha: links are dear, the network thins to a tree;\n";
  pf "- the diameter column stays within the swap-equilibrium bounds for every\n";
  pf "  alpha, with no per-alpha analysis — the point of the parameter-free model.\n";
  pf "- alpha equilibria need not be full swap equilibria (only the owner may\n";
  pf "  re-point a link there), which is why the swap-eq column can flip to false.\n\n";

  (* ownership detail: who paid for what *)
  let rng = Prng.create 7 in
  let game = Alpha_game.create ~alpha:4.0 (Random_graphs.tree rng n) in
  let r = Alpha_game.run_dynamics game in
  let st = r.Alpha_game.state in
  pf "ownership at alpha = 4.0 equilibrium (agent: links bought):\n  ";
  for v = 0 to n - 1 do
    pf "%d:%d " v (Alpha_game.owned_degree st v)
  done;
  pf "\ntotal social cost %.1f vs optimum %.1f\n"
    (Alpha_game.social_cost st)
    (Alpha_game.optimal_social_cost ~alpha:4.0 n)
