(* Hunting for extremal equilibria (the Theorem 5 / Theorem 9 gap).

     dune exec examples/equilibrium_hunt.exe

   The paper's sum-side frontier: equilibria of diameter 3 exist
   (Theorem 5), the upper bound is 2^O(sqrt lg n) (Theorem 9), and nothing
   in between is known. This example drives the annealing hunter at the
   interesting sizes, profiles what it finds, and shows the diameter-4
   search stalling a few violating agents short — the open problem in
   experimental form. *)

let pf = Printf.printf

let () =
  pf "hunting diameter-3 sum equilibria (exhaustive census: none exist for n <= 7)\n\n";
  List.iter
    (fun n ->
      let rng = Prng.create (40 + n) in
      let r = Hunt.hunt_sum_diameter rng ~n ~target_diameter:3 ~steps:4000 () in
      match r.Hunt.found with
      | Some g ->
        pf "  n=%2d: found %-14s m=%2d girth=%s verified=%b\n" n (Graph6.encode g)
          (Graph.m g)
          (match Metrics.girth g with Some x -> string_of_int x | None -> "-")
          (Equilibrium.is_sum_equilibrium g)
      | None ->
        pf "  n=%2d: nothing (best candidate had %d violating agents)\n" n
          r.Hunt.best_violations)
    [ 7; 8; 9; 10 ];

  (* profile the canonical minimal witness *)
  let g = Constructions.sum_diameter3_minimal in
  pf "\nthe minimal witness (n=8, graph6 %s):\n" (Graph6.encode g);
  pf "  edges: %s\n"
    (String.concat " "
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (Graph.edges g)));
  pf "  degree sequence: %s, automorphisms: %d\n"
    (String.concat ","
       (Array.to_list (Array.map string_of_int (Graph.degree_sequence g))))
    (Canon.automorphism_count g);
  let b = Centrality.betweenness g in
  pf "  betweenness spread: %.2f (not vertex-transitive, unlike the torus)\n"
    (Centrality.spread b);
  pf "  2-swap stable: %b (falls to coordinated two-edge deviations — E16)\n"
    (Equilibrium.is_stable_under_k_swaps Usage_cost.Sum g ~k:2);

  (* the open frontier *)
  pf "\ndiameter-4 frontier (no example known in the literature):\n";
  List.iter
    (fun n ->
      let rng = Prng.create 99 in
      let r = Hunt.hunt_sum_diameter rng ~n ~target_diameter:4 ~steps:3000 () in
      pf "  n=%2d: %s\n" n
        (match r.Hunt.found with
        | Some g -> "FOUND (!) " ^ Graph6.encode g
        | None ->
          Printf.sprintf "no — best candidate %d violating agents (of %d scored)"
            r.Hunt.best_violations r.Hunt.evaluated))
    [ 12; 14 ];
  pf "\nif a run ever prints FOUND, the graph6 string is a checkable certificate:\n";
  pf "  dune exec bin/main.exe -- check --game sum <graph6>\n"
