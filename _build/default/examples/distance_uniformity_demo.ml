(* Distance uniformity (Section 5): the structural fingerprint of
   high-diameter sum equilibria, and the Cayley-graph theorem.

     dune exec examples/distance_uniformity_demo.exe *)

let pf = Printf.printf

let profile name g =
  let e = Distance_uniform.best_uniform g in
  let a = Distance_uniform.best_almost_uniform g in
  pf "  %-24s n=%4d diam=%3s  exact: eps=%.3f at r=%d   almost: eps=%.3f at r=%d\n"
    name (Graph.n g)
    (match Metrics.diameter g with Some d -> string_of_int d | None -> "inf")
    e.Distance_uniform.epsilon e.Distance_uniform.r a.Distance_uniform.epsilon
    a.Distance_uniform.r

let () =
  pf "sphere profile of one vertex (torus k=6, vertex 0):\n  |S_r| = ";
  let hist = Metrics.distance_histogram (Constructions.torus 6) 0 in
  Array.iteri (fun r c -> pf "%s%d@r=%d" (if r = 0 then "" else ", ") c r) hist;
  pf "\n\n";

  pf "uniformity profiles (smaller eps = more distance-uniform):\n";
  profile "complete K32" (Generators.complete 32);
  profile "Petersen" (Generators.petersen ());
  profile "polarity ER_5" (Polarity.polarity_graph 5);
  profile "hypercube Q8" (Generators.hypercube 8);
  profile "cycle C64" (Generators.cycle 64);
  profile "torus k=6" (Constructions.torus 6);

  (* Theorem 13's engine: powers coalesce distances *)
  pf "\nTheorem 13 pipeline on C60 (diameter 30):\n";
  List.iter
    (fun x ->
      let r = Distance_uniform.power_report (Generators.cycle 60) ~x in
      pf "  x=%2d: diam(G^x)=%2d (= ceil(30/%d))  almost-uniform eps=%.3f\n" x
        r.Distance_uniform.diameter x r.Distance_uniform.almost.Distance_uniform.epsilon)
    [ 2; 3; 5; 10; 15 ];

  (* Conjecture 14's pitfall: pairwise concentration is NOT enough *)
  let blobs = Generators.path_with_blobs ~arms:6 ~arm_len:8 ~blob:24 in
  let mode, frac = Distance_uniform.pairwise_modal_fraction blobs in
  let per_vertex = Distance_uniform.best_almost_uniform blobs in
  pf "\nSection 5 non-example (hub + 6 arms ending in cliques, n=%d):\n"
    (Graph.n blobs);
  pf "  %.0f%% of vertex pairs sit at distance exactly %d,\n" (100.0 *. frac) mode;
  pf "  yet per-vertex almost-uniformity only reaches eps = %.3f —\n"
    per_vertex.Distance_uniform.epsilon;
  pf "  hence Conjecture 14 must quantify per vertex, as the paper notes.\n";

  (* Theorem 15 on a genuinely uniform Abelian Cayley family *)
  pf "\nTheorem 15 (Abelian Cayley graphs): complete graphs K_n = Cayley(Z_n, all):\n";
  List.iter
    (fun n ->
      let g = Generators.complete n in
      let e = Distance_uniform.best_uniform g in
      let eps = e.Distance_uniform.epsilon in
      let bound = Theory.theorem15_bound ~n ~epsilon:eps in
      pf "  n=%3d: eps=%.3f < 1/4, diameter 1 <= bound %.1f\n" n eps bound)
    [ 16; 64; 256 ]
