examples/alpha_transfer.ml: Alpha_game Equilibrium Graph List Metrics Poa Printf Prng Random_graphs
