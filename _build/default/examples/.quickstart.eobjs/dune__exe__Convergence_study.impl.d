examples/convergence_study.ml: Array Dynamics Equilibrium Exp_common List Metrics Printf Prng Random_graphs Swap Table Theory Usage_cost
