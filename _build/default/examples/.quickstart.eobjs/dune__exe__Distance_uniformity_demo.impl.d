examples/distance_uniformity_demo.ml: Array Constructions Distance_uniform Generators Graph List Metrics Polarity Printf Theory
