examples/quickstart.mli:
