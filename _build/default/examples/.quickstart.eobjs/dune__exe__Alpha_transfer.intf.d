examples/alpha_transfer.mli:
