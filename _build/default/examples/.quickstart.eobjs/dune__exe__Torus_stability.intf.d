examples/torus_stability.mli:
