examples/torus_stability.ml: Array Bfs Constructions Equilibrium Graph List Metrics Printf
