examples/quickstart.ml: Bfs Dynamics Equilibrium Exp_common Generators Graph Graph6 Metrics Printf Swap Tree_eq Usage_cost
