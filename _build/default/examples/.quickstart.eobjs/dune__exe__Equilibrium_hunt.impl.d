examples/equilibrium_hunt.ml: Array Canon Centrality Constructions Equilibrium Graph Graph6 Hunt List Metrics Printf Prng String Usage_cost
