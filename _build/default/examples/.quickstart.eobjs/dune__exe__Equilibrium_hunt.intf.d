examples/equilibrium_hunt.mli:
