(* The Theorem 12 construction (Figure 4): a max equilibrium whose diameter
   grows as sqrt(n).

     dune exec examples/torus_stability.exe

   Rebuilds the 45-degree-rotated torus, draws the distance contours of
   Figure 4 in ASCII, and verifies every property the proof claims:
   the closed-form distance oracle, uniform local diameters, vertex
   transitivity (via its Cayley-graph presentation), deletion-criticality
   and insertion-stability. *)

let pf = Printf.printf

let () =
  let k = 5 in
  let g = Constructions.torus k in
  pf "torus k=%d: n = 2k^2 = %d vertices, m = %d edges, 4-regular\n" k (Graph.n g)
    (Graph.m g);

  (* Figure 4: distance contours from the central point (k, k). *)
  let center = Constructions.torus_vertex k (k, k) in
  let ws = Bfs.create_workspace (Graph.n g) in
  Bfs.run ws g center;
  pf "\ndistance contours from (%d, %d) — Figure 4:\n\n" k k;
  for j = (2 * k) - 1 downto 0 do
    pf "  ";
    for i = 0 to (2 * k) - 1 do
      if (i + j) mod 2 = 0 then
        pf "%2d" (Bfs.dist ws (Constructions.torus_vertex k (i, j)))
      else pf "  "
    done;
    pf "\n"
  done;

  (* the proof's distance formula: max of the two circular coordinates *)
  pf "\nclosed-form oracle agrees with BFS on all pairs: %b\n"
    (Metrics.is_distance_formula g (Constructions.torus_distance k));

  (* local diameter of every vertex is exactly k *)
  (match Metrics.eccentricities g with
  | Some e ->
    pf "every agent's local diameter = k = %d: %b\n" k
      (Array.for_all (fun x -> x = k) e)
  | None -> assert false);

  (* the three stability properties of the proof *)
  pf "deletion-critical (every deletion strictly hurts both endpoints): %b\n"
    (Equilibrium.is_deletion_critical g);
  pf "insertion-stable (no single insertion helps either endpoint): %b\n"
    (Equilibrium.is_insertion_stable g);
  pf "full max equilibrium (exhaustive swap + deletion scan): %b\n"
    (Equilibrium.is_max_equilibrium g);

  (* diameter = sqrt(n/2), the headline lower bound *)
  pf "\ndiameter %s = sqrt(n/2) = %.1f  — Theta(sqrt n), Theorem 12\n"
    (match Metrics.diameter g with Some d -> string_of_int d | None -> "inf")
    (sqrt (float_of_int (Graph.n g) /. 2.0));

  (* the d-dimensional generalization trades diameter against the number of
     simultaneous changes an agent can weigh (Section 4) *)
  pf "\nd-dimensional generalization (stable under < dim simultaneous insertions):\n";
  List.iter
    (fun (dim, kk) ->
      let gd = Constructions.torus_d ~dim kk in
      pf "  dim=%d k=%d: n=%3d diameter=%d stable under %d insertions: %b\n" dim kk
        (Graph.n gd)
        (match Metrics.diameter gd with Some d -> d | None -> -1)
        (dim - 1)
        (Equilibrium.is_stable_under_insertions gd ~k:(dim - 1)))
    [ (2, 4); (3, 2); (3, 3); (4, 2) ]
