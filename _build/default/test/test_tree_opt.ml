open Test_helpers

let test_sum_cost_matches () =
  let rng = Prng.create 1 in
  let g = Random_graphs.tree rng 20 in
  let p = Tree_opt.precompute g in
  for v = 0 to 19 do
    check_int "sum cost" (Option.get (Metrics.sum_distance g v)) (Tree_opt.sum_cost p v)
  done

let test_swap_delta_path () =
  (* P4: endpoint 0 re-hangs from 1 to 2: delta -1 (computed earlier) *)
  let g = Generators.path 4 in
  let p = Tree_opt.precompute g in
  check_int "delta" (-1) (Tree_opt.swap_delta p ~actor:0 ~drop:1 ~add:2)

let test_swap_delta_disconnecting () =
  let g = Generators.path 5 in
  let p = Tree_opt.precompute g in
  (* agent 2 drops its edge to 3 and attaches to 0 — but 0 is on 2's own
     side, so the tree disconnects: infinite cost *)
  check_true "own-side target is infinite"
    (Tree_opt.swap_delta p ~actor:2 ~drop:3 ~add:0 >= Usage_cost.infinite / 2);
  (* attaching to 4 (the drop side) stays finite *)
  check_true "drop-side target is finite"
    (Tree_opt.swap_delta p ~actor:1 ~drop:2 ~add:3 < Usage_cost.infinite / 2);
  (* the endpoint re-hanging toward the middle strictly improves *)
  check_true "re-hang endpoint improves"
    (Tree_opt.swap_delta p ~actor:4 ~drop:3 ~add:2 < 0)

let test_swap_delta_rejects () =
  let g = Generators.path 4 in
  let p = Tree_opt.precompute g in
  Alcotest.check_raises "not an edge"
    (Invalid_argument "Tree_opt.swap_delta: actor-drop is not an edge") (fun () ->
      ignore (Tree_opt.swap_delta p ~actor:0 ~drop:2 ~add:3));
  Alcotest.check_raises "bad target"
    (Invalid_argument "Tree_opt.swap_delta: bad attachment target") (fun () ->
      ignore (Tree_opt.swap_delta p ~actor:1 ~drop:0 ~add:2))

let test_non_tree_rejected () =
  Alcotest.check_raises "cycle" (Invalid_argument "Tree_opt: not a tree") (fun () ->
      ignore (Tree_opt.precompute (Generators.cycle 5)))

let test_star_is_equilibrium () =
  check_true "star" (Tree_opt.is_sum_equilibrium (Generators.star 9));
  check_false "path" (Tree_opt.is_sum_equilibrium (Generators.path 9))

let test_converge_to_star () =
  let rng = Prng.create 3 in
  let g = Random_graphs.tree rng 60 in
  let final, moves = Tree_opt.converge g in
  check_true "is star" (Tree_eq.is_star final);
  check_true "made progress" (moves > 0 || Tree_eq.is_star g);
  check_true "input untouched" (Components.is_tree g && Graph.m g = 59)

let test_delta_matches_generic =
  qcheck ~count:60 "delta = Swap.delta on all tree swaps" (gen_tree ~min_n:3 ~max_n:14)
    (fun g ->
      let p = Tree_opt.precompute g in
      let ws = Bfs.create_workspace (Graph.n g) in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        Swap.iter_moves g v (fun mv ->
            match mv with
            | Swap.Swap { actor; drop; add } ->
              let fast = Tree_opt.swap_delta p ~actor ~drop ~add in
              let slow = Swap.delta ws Usage_cost.Sum g mv in
              (* both are "infinite" on disconnecting swaps; compare the
                 finite cases exactly and the infinite cases by class *)
              let inf x = x >= Usage_cost.infinite / 2 in
              if inf fast <> inf slow then ok := false
              else if (not (inf fast)) && fast <> slow then ok := false
            | Swap.Delete _ -> ())
      done;
      !ok)

let test_best_swap_matches_generic =
  qcheck ~count:60 "best_swap = Swap.best_move on trees" (gen_tree ~min_n:2 ~max_n:14)
    (fun g ->
      let p = Tree_opt.precompute g in
      let ws = Bfs.create_workspace (Graph.n g) in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        if Tree_opt.best_swap p v <> Swap.best_move ws Usage_cost.Sum g v then
          ok := false
      done;
      !ok)

let test_equilibrium_matches_generic =
  qcheck ~count:60 "is_sum_equilibrium agrees on trees" (gen_tree ~min_n:1 ~max_n:14)
    (fun g -> Tree_opt.is_sum_equilibrium g = Equilibrium.is_sum_equilibrium g)

(* --- max version ------------------------------------------------------ *)

let test_max_delta_path () =
  let g = Generators.path 5 in
  let p = Tree_opt.precompute_max g in
  (* endpoint 0 re-hangs onto the center: ecc 4 -> 3 (via 2 to the far
     end) *)
  check_int "delta" (-1) (Tree_opt.max_swap_delta p ~actor:0 ~drop:1 ~add:2);
  (* re-hang to the far end: ecc stays 4 *)
  check_int "no gain at far end" 0 (Tree_opt.max_swap_delta p ~actor:0 ~drop:1 ~add:4);
  check_true "own-side target infinite"
    (Tree_opt.max_swap_delta p ~actor:2 ~drop:3 ~add:0 >= Usage_cost.infinite / 2)

let test_max_equilibrium_tree_shapes () =
  check_true "star" (Tree_opt.is_max_equilibrium_tree (Generators.star 8));
  check_true "double star (2,2)" (Tree_opt.is_max_equilibrium_tree (Generators.double_star 2 2));
  check_false "double star (1,2)" (Tree_opt.is_max_equilibrium_tree (Generators.double_star 1 2));
  check_false "path" (Tree_opt.is_max_equilibrium_tree (Generators.path 6))

let test_converge_max_diameter3 () =
  let rng = Prng.create 5 in
  let g = Random_graphs.tree rng 50 in
  let final, _ = Tree_opt.converge_max g in
  check_true "still a tree" (Components.is_tree final);
  check_true "diameter <= 3 (Theorem 4)"
    (Option.get (Metrics.diameter final) <= 3);
  check_true "max equilibrium" (Tree_opt.is_max_equilibrium_tree final)

let test_max_delta_matches_generic =
  qcheck ~count:50 "max delta = Swap.delta on all tree swaps" (gen_tree ~min_n:3 ~max_n:13)
    (fun g ->
      let p = Tree_opt.precompute_max g in
      let ws = Bfs.create_workspace (Graph.n g) in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        Swap.iter_moves g v (fun mv ->
            match mv with
            | Swap.Swap { actor; drop; add } ->
              let fast = Tree_opt.max_swap_delta p ~actor ~drop ~add in
              let slow = Swap.delta ws Usage_cost.Max g mv in
              let inf x = x >= Usage_cost.infinite / 2 in
              if inf fast <> inf slow then ok := false
              else if (not (inf fast)) && fast <> slow then ok := false
            | Swap.Delete _ -> ())
      done;
      !ok)

let test_max_best_matches_generic =
  qcheck ~count:50 "best_max_swap = Swap.best_move Max" (gen_tree ~min_n:2 ~max_n:13)
    (fun g ->
      let p = Tree_opt.precompute_max g in
      let ws = Bfs.create_workspace (Graph.n g) in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        if Tree_opt.best_max_swap p v <> Swap.best_move ws Usage_cost.Max g v then
          ok := false
      done;
      !ok)

let test_max_eq_matches_generic =
  qcheck ~count:50 "is_max_equilibrium_tree agrees with generic"
    (gen_tree ~min_n:1 ~max_n:13) (fun g ->
      Tree_opt.is_max_equilibrium_tree g = Equilibrium.is_max_equilibrium g)

let suite =
  [
    case "sum cost" test_sum_cost_matches;
    case "max delta on path" test_max_delta_path;
    case "max equilibrium shapes" test_max_equilibrium_tree_shapes;
    case "converge_max reaches diameter <= 3" test_converge_max_diameter3;
    test_max_delta_matches_generic;
    test_max_best_matches_generic;
    test_max_eq_matches_generic;
    case "swap delta on path" test_swap_delta_path;
    case "disconnecting swap" test_swap_delta_disconnecting;
    case "rejects bad moves" test_swap_delta_rejects;
    case "rejects non-trees" test_non_tree_rejected;
    case "star equilibrium" test_star_is_equilibrium;
    case "converge to star" test_converge_to_star;
    test_delta_matches_generic;
    test_best_swap_matches_generic;
    test_equilibrium_matches_generic;
  ]
