open Test_helpers

let capture f =
  (* run an experiment with stdout redirected to a buffer file *)
  let tmp = Filename.temp_file "bncg_expt" ".txt" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    f;
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  s

let test_registry_complete () =
  check_true "at least 14 experiments" (List.length Experiments.all >= 14);
  List.iter
    (fun e ->
      check_true "id well-formed"
        (String.length e.Experiments.id >= 2 && e.Experiments.id.[0] = 'E'))
    Experiments.all

let test_find () =
  (match Experiments.find "e5" with
  | Some e -> check_true "case-insensitive lookup" (e.Experiments.id = "E5")
  | None -> Alcotest.fail "E5 must exist");
  check_true "unknown id" (Experiments.find "E99" = None)

let test_light_experiments_produce_tables () =
  (* the fast experiments must emit a table and not raise *)
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some e ->
        let out = capture e.Experiments.run in
        check_true (id ^ " prints a table")
          (String.length out > 100
          &&
          let has_rule = ref false in
          String.iter (fun c -> if c = '+' then has_rule := true) out;
          !has_rule)
      | None -> Alcotest.fail (id ^ " missing"))
    [ "E3"; "E6"; "E12"; "E14" ]

let suite =
  [
    case "registry complete" test_registry_complete;
    case "find by id" test_find;
    slow_case "light experiments run" test_light_experiments_produce_tables;
  ]
