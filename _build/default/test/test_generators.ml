open Test_helpers

let test_path () =
  let g = Generators.path 5 in
  check_int "m" 4 (Graph.m g);
  check_true "connected" (Components.is_connected g);
  check_int "endpoint degree" 1 (Graph.degree g 0);
  check_int "interior degree" 2 (Graph.degree g 2)

let test_cycle () =
  let g = Generators.cycle 5 in
  check_int "m" 5 (Graph.m g);
  check_true "2-regular" (Graph.is_regular g && Graph.max_degree g = 2);
  Alcotest.check_raises "needs n >= 3" (Invalid_argument "Generators.cycle: need n >= 3")
    (fun () -> ignore (Generators.cycle 2))

let test_star () =
  let g = Generators.star 6 in
  check_int "m" 5 (Graph.m g);
  check_int "center" 5 (Graph.degree g 0);
  check_true "is tree" (Components.is_tree g)

let test_double_star () =
  let g = Generators.double_star 3 2 in
  check_int "n" 7 (Graph.n g);
  check_int "m" 6 (Graph.m g);
  check_true "roots adjacent" (Graph.mem_edge g 0 1);
  check_int "root0 degree" 4 (Graph.degree g 0);
  check_int "root1 degree" 3 (Graph.degree g 1);
  check_true "is tree" (Components.is_tree g);
  Alcotest.(check (option int)) "diameter 3" (Some 3) (Metrics.diameter g)

let test_complete () =
  let g = Generators.complete 6 in
  check_int "m" 15 (Graph.m g);
  check_true "regular" (Graph.is_regular g)

let test_complete_bipartite () =
  let g = Generators.complete_bipartite 3 4 in
  check_int "m" 12 (Graph.m g);
  check_int "left degree" 4 (Graph.degree g 0);
  check_int "right degree" 3 (Graph.degree g 3);
  check_false "no intra-part edges" (Graph.mem_edge g 0 1)

let test_grid () =
  let g = Generators.grid 3 4 in
  check_int "n" 12 (Graph.n g);
  check_int "m" ((2 * 4) + (3 * 3)) (Graph.m g);
  Alcotest.(check (option int)) "diameter" (Some 5) (Metrics.diameter g)

let test_torus_grid () =
  let g = Generators.torus_grid 4 4 in
  check_int "m" 32 (Graph.m g);
  check_true "4-regular" (Graph.is_regular g && Graph.max_degree g = 4);
  Alcotest.(check (option int)) "diameter" (Some 4) (Metrics.diameter g)

let test_hypercube () =
  let g = Generators.hypercube 4 in
  check_int "n" 16 (Graph.n g);
  check_int "m" 32 (Graph.m g);
  check_true "4-regular" (Graph.is_regular g);
  Alcotest.(check (option int)) "diameter = dim" (Some 4) (Metrics.diameter g);
  check_int "Q0 is a point" 1 (Graph.n (Generators.hypercube 0))

let test_circulant () =
  let g = Generators.circulant 8 [ 1; 2 ] in
  check_int "m" 16 (Graph.m g);
  check_true "4-regular" (Graph.is_regular g && Graph.max_degree g = 4);
  (* offset n/2 gives a perfect matching, degree contribution 1 *)
  let h = Generators.circulant 6 [ 3 ] in
  check_int "antipodal matching" 3 (Graph.m h);
  Alcotest.check_raises "offset range"
    (Invalid_argument "Generators.circulant: offset out of [1, n/2]") (fun () ->
      ignore (Generators.circulant 6 [ 4 ]))

let test_circulant_is_cycle () =
  check_true "circulant(n;1) = cycle"
    (Graph.equal (Generators.circulant 7 [ 1 ]) (Generators.cycle 7))

let test_sunlet () =
  let g = Generators.sunlet 5 in
  check_int "n" 10 (Graph.n g);
  check_int "m" 10 (Graph.m g);
  Alcotest.(check (option int)) "diameter" (Some 4) (Metrics.diameter g);
  (* cycle vertices have degree 3, pendants degree 1 *)
  check_int "cycle degree" 3 (Graph.degree g 0);
  check_int "pendant degree" 1 (Graph.degree g 5);
  check_true "pendant attached to its cycle vertex" (Graph.mem_edge g 2 7);
  Alcotest.check_raises "n >= 3" (Invalid_argument "Generators.sunlet: need n >= 3")
    (fun () -> ignore (Generators.sunlet 2))

let test_petersen () =
  let g = Generators.petersen () in
  check_int "n" 10 (Graph.n g);
  check_int "m" 15 (Graph.m g);
  check_true "3-regular" (Graph.is_regular g && Graph.max_degree g = 3);
  Alcotest.(check (option int)) "diameter 2" (Some 2) (Metrics.diameter g);
  Alcotest.(check (option int)) "girth 5" (Some 5) (Metrics.girth g)

let test_attach_pendant () =
  let g = Generators.attach_pendant (Generators.cycle 4) 2 in
  check_int "n" 5 (Graph.n g);
  check_int "pendant degree" 1 (Graph.degree g 4);
  check_true "attached to 2" (Graph.mem_edge g 2 4)

let test_lollipop () =
  let g = Generators.lollipop 4 3 in
  check_int "n" 7 (Graph.n g);
  check_int "m" (6 + 3) (Graph.m g);
  Alcotest.(check (option int)) "diameter" (Some 4) (Metrics.diameter g)

let test_path_with_blobs () =
  let g = Generators.path_with_blobs ~arms:3 ~arm_len:2 ~blob:4 in
  check_int "n" (1 + (3 * 6)) (Graph.n g);
  check_true "connected" (Components.is_connected g);
  (* hub to blob tip: arm_len, plus 1 into the blob; diameter spans two arms *)
  Alcotest.(check (option int)) "diameter" (Some 6) (Metrics.diameter g)

let test_empty () =
  let g = Generators.empty 4 in
  check_int "no edges" 0 (Graph.m g)

let suite =
  [
    case "path" test_path;
    case "cycle" test_cycle;
    case "star" test_star;
    case "double star" test_double_star;
    case "complete" test_complete;
    case "complete bipartite" test_complete_bipartite;
    case "grid" test_grid;
    case "torus grid" test_torus_grid;
    case "hypercube" test_hypercube;
    case "circulant" test_circulant;
    case "circulant(1) = cycle" test_circulant_is_cycle;
    case "sunlet" test_sunlet;
    case "petersen" test_petersen;
    case "attach pendant" test_attach_pendant;
    case "lollipop" test_lollipop;
    case "path with blobs" test_path_with_blobs;
    case "empty" test_empty;
  ]
