open Test_helpers

let test_roundtrip () =
  let g = Generators.grid 3 3 in
  let c = Csr.of_graph g in
  check_int "n" (Graph.n g) (Csr.n c);
  check_int "m" (Graph.m g) (Csr.m c);
  check_true "roundtrip equal" (Graph.equal g (Csr.to_graph c))

let test_degrees_match () =
  let g = Generators.star 7 in
  let c = Csr.of_graph g in
  for v = 0 to 6 do
    check_int "degree" (Graph.degree g v) (Csr.degree c v)
  done

let test_mem_edge () =
  let g = Graph.of_edges 5 [ (0, 1); (0, 4); (2, 3) ] in
  let c = Csr.of_graph g in
  check_true "present" (Csr.mem_edge c 0 4);
  check_true "symmetric" (Csr.mem_edge c 4 0);
  check_false "absent" (Csr.mem_edge c 1 2);
  check_false "empty row" (Csr.mem_edge c 2 2)

let test_iter_neighbors_sorted () =
  let g = Graph.of_edges 5 [ (2, 4); (2, 0); (2, 3) ] in
  let c = Csr.of_graph g in
  let acc = ref [] in
  Csr.iter_neighbors (fun w -> acc := w :: !acc) c 2;
  Alcotest.(check (list int)) "sorted row" [ 0; 3; 4 ] (List.rev !acc)

let test_bfs_matches_graph_bfs =
  qcheck ~count:100 "CSR BFS = Graph BFS" (gen_any_graph ~min_n:1 ~max_n:25) (fun g ->
      let c = Csr.of_graph g in
      let n = Graph.n g in
      let dist = Array.make n (-1) and queue = Array.make n 0 in
      let reached = Csr.bfs_into c 0 ~dist ~queue in
      let reference = Bfs.distances g 0 in
      let ok = ref true in
      for v = 0 to n - 1 do
        let r = if reference.(v) = Bfs.unreachable then -1 else reference.(v) in
        if dist.(v) <> r then ok := false
      done;
      let ref_reached =
        Array.fold_left
          (fun acc d -> if d <> Bfs.unreachable then acc + 1 else acc)
          0 reference
      in
      !ok && reached = ref_reached)

let test_all_pairs_matches =
  qcheck ~count:30 "CSR all_pairs = Bfs.all_pairs" (gen_connected ~min_n:2 ~max_n:15)
    (fun g ->
      let a = Csr.all_pairs (Csr.of_graph g) in
      let b = Bfs.all_pairs g in
      let ok = ref true in
      for u = 0 to Graph.n g - 1 do
        for v = 0 to Graph.n g - 1 do
          if a.(u).(v) <> b.(u).(v) then ok := false
        done
      done;
      !ok)

let suite =
  [
    case "roundtrip" test_roundtrip;
    case "degrees" test_degrees_match;
    case "mem_edge binary search" test_mem_edge;
    case "neighbors sorted" test_iter_neighbors_sorted;
    test_bfs_matches_graph_bfs;
    test_all_pairs_matches;
  ]
