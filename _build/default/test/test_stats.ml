open Test_helpers

let check_float = Alcotest.(check (float 1e-9))

let test_mean () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "singleton" 7.0 (Stats.mean [| 7.0 |])

let test_stddev () =
  check_float "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  check_float "singleton" 0.0 (Stats.stddev [| 5.0 |]);
  (* sample sd of 1..5 = sqrt(2.5) *)
  check_float "1..5" (sqrt 2.5) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_median () =
  check_float "odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check_float "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  check_float "input not sorted" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |])

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Stats.percentile xs 100.0);
  check_float "p50" 25.0 (Stats.percentile xs 50.0);
  check_float "p25 interpolated" 17.5 (Stats.percentile xs 25.0)

let test_summarize () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  check_int "count" 3 s.Stats.count;
  check_float "mean" 2.0 s.Stats.mean;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 3.0 s.Stats.max;
  check_float "median" 2.0 s.Stats.median

let test_summarize_ints () =
  let s = Stats.summarize_ints [| 4; 2 |] in
  check_float "mean" 3.0 s.Stats.mean

let test_empty_raises () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean [||]))

let test_histogram () =
  Alcotest.(check (list (pair int int)))
    "histogram" [ (1, 2); (2, 1); (5, 3) ]
    (Stats.histogram [| 5; 1; 5; 2; 1; 5 |]);
  Alcotest.(check (list (pair int int))) "empty" [] (Stats.histogram [||])

let test_mean_shift_property =
  qcheck "mean of shifted sample shifts"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let shifted = Array.map (fun x -> x +. 10.0) a in
      abs_float (Stats.mean shifted -. (Stats.mean a +. 10.0)) < 1e-6)

let test_median_between_extremes =
  qcheck "median within [min, max]"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let s = Stats.summarize a in
      s.Stats.median >= s.Stats.min && s.Stats.median <= s.Stats.max)

let suite =
  [
    case "mean" test_mean;
    case "stddev" test_stddev;
    case "median" test_median;
    case "percentile" test_percentile;
    case "summarize" test_summarize;
    case "summarize_ints" test_summarize_ints;
    case "empty raises" test_empty_raises;
    case "histogram" test_histogram;
    test_mean_shift_property;
    test_median_between_extremes;
  ]
