test/test_dynamics.ml: Alcotest Components Dynamics Equilibrium Generators Graph List Prng Random_graphs Test_helpers Tree_eq Usage_cost
