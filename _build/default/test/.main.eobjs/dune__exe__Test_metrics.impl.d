test/test_metrics.ml: Alcotest Array Generators Graph Metrics Test_helpers
