test/test_generators.ml: Alcotest Components Generators Graph Metrics Test_helpers
