test/main.mli:
