test/test_experiments.ml: Alcotest Experiments Filename Fun List String Sys Test_helpers Unix
