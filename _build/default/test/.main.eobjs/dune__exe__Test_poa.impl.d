test/test_poa.ml: Alcotest Alpha_game Generators Graph Poa Test_helpers Usage_cost
