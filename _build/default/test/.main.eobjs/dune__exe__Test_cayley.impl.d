test/test_cayley.ml: Alcotest Array Canon Cayley Components Constructions Generators Graph List Metrics QCheck2 Test_helpers
