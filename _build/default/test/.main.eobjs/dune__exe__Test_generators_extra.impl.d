test/test_generators_extra.ml: Alcotest Array Canon Components Equilibrium Generators Graph Metrics Test_helpers
