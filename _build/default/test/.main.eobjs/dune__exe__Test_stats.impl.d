test/test_stats.ml: Alcotest Array QCheck2 Stats Test_helpers
