test/test_random_graphs.ml: Alcotest Components Generators Graph Hashtbl List Prng QCheck2 Random_graphs Test_helpers
