test/test_centrality.ml: Alcotest Array Centrality Dynamics Generators Graph Metrics QCheck2 Test_helpers
