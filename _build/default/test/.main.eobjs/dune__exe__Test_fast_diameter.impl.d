test/test_fast_diameter.ml: Alcotest Constructions Fast_diameter Generators Graph List Metrics Prng Random_graphs Test_helpers
