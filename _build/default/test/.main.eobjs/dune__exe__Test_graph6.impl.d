test/test_graph6.ml: Alcotest Canon Constructions Generators Graph Graph6 List QCheck2 String Test_helpers
