test/test_census.ml: Census Enumerate Equilibrium List Test_helpers Usage_cost
