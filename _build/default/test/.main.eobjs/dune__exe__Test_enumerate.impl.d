test/test_enumerate.ml: Alcotest Components Enumerate Generators Graph Hashtbl List Test_helpers
