test/test_components.ml: Alcotest Array Components Generators Graph List Test_helpers
