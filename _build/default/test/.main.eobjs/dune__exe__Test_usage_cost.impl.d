test/test_usage_cost.ml: Bfs Generators Graph Metrics Test_helpers Usage_cost
