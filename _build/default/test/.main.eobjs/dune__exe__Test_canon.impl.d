test/test_canon.ml: Alcotest Array Canon Generators Graph List Prng QCheck2 Test_helpers
