test/test_helpers.ml: Alcotest Array Graph List Prng QCheck2 QCheck_alcotest Queue Random_graphs
