test/test_union_find.ml: Array Prng Test_helpers Union_find
