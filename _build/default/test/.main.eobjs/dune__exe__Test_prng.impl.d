test/test_prng.ml: Alcotest Array Fun Hashtbl Int64 Prng Test_helpers
