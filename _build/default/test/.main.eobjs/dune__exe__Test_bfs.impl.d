test/test_bfs.ml: Alcotest Array Bfs Generators Graph Test_helpers
