test/test_tree_opt.ml: Alcotest Bfs Components Equilibrium Generators Graph Metrics Option Prng Random_graphs Swap Test_helpers Tree_eq Tree_opt Usage_cost
