test/test_spectral.ml: Alcotest Components Float Generators Graph List Metrics Option Polarity Spectral Test_helpers
