test/test_tree_eq.ml: Alcotest Enumerate Equilibrium Generators Graph Swap Test_helpers Tree_eq
