test/test_polarity.ml: Alcotest Array Equilibrium Graph List Metrics Polarity Test_helpers
