test/test_graph_io.ml: Alcotest Constructions Generators Graph Graph_io List Printf String Test_helpers
