test/test_vec.ml: Alcotest List Test_helpers Vec
