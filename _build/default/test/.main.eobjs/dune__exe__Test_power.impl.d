test/test_power.ml: Alcotest Generators Graph List Metrics Power Printf Test_helpers
