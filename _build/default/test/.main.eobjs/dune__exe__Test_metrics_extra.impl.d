test/test_metrics_extra.ml: Alcotest Generators Graph Metrics Test_helpers
