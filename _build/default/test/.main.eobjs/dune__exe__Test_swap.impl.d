test/test_swap.ml: Alcotest Bfs Generators Graph Hashtbl List Prng Swap Test_helpers Usage_cost
