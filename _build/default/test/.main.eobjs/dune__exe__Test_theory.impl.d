test/test_theory.ml: Alcotest Constructions Dynamics Generators Graph Test_helpers Theory
