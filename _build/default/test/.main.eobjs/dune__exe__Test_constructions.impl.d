test/test_constructions.ml: Alcotest Array Bfs Canon Components Constructions Equilibrium Generators Graph List Metrics Printf Swap Test_helpers Usage_cost
