test/test_asym_swap.ml: Alcotest Asym_swap Bfs Components Generators Graph List Prng QCheck2 Random_graphs Swap Test_helpers Usage_cost
