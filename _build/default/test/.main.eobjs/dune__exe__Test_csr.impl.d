test/test_csr.ml: Alcotest Array Bfs Csr Generators Graph List Test_helpers
