test/test_graph.ml: Alcotest Generators Graph List Test_helpers
