test/test_distance_uniform.ml: Alcotest Distance_uniform Generators Graph Metrics Option Test_helpers
