test/test_invariance.ml: Array Distance_uniform Dynamics Equilibrium Graph Graph6 Graph_io Metrics Prng QCheck2 Test_helpers Usage_cost
