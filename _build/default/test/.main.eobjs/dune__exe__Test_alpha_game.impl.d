test/test_alpha_game.ml: Alcotest Alpha_game Components Generators Graph List Poa Prng QCheck2 Random_graphs Test_helpers
