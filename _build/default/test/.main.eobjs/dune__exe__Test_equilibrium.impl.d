test/test_equilibrium.ml: Alcotest Array Bfs Components Constructions Dynamics Equilibrium Fun Generators Graph List Metrics Option Polarity Prng Swap Test_helpers Usage_cost
