test/test_table.ml: Alcotest List String Table Test_helpers
