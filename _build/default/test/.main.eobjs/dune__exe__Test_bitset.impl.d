test/test_bitset.ml: Alcotest Bitset Hashtbl List Prng Test_helpers
