test/test_hunt.ml: Alcotest Canon Constructions Equilibrium Generators Graph Hunt List Metrics Option Prng Test_helpers Usage_cost
