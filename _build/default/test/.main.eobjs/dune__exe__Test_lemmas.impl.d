test/test_lemmas.ml: Constructions Generators Graph Lemmas List Polarity Prng QCheck2 String Test_helpers
