open Test_helpers

let test_is_star () =
  check_true "K1" (Tree_eq.is_star (Graph.create 1));
  check_true "K2" (Tree_eq.is_star (Generators.path 2));
  check_true "star" (Tree_eq.is_star (Generators.star 7));
  check_false "path" (Tree_eq.is_star (Generators.path 4));
  check_false "cycle not even a tree" (Tree_eq.is_star (Generators.cycle 5))

let test_double_star_detection () =
  check_true "double star" (Tree_eq.is_double_star (Generators.double_star 2 3));
  check_false "plain star" (Tree_eq.is_double_star (Generators.star 5));
  check_false "P5 spider" (Tree_eq.is_double_star (Generators.path 5));
  check_true "P4 is double_star(1,1)" (Tree_eq.is_double_star (Generators.path 4));
  Alcotest.(check (option (pair int int)))
    "arms" (Some (2, 3))
    (Tree_eq.double_star_arms (Generators.double_star 2 3))

let test_theorem1_witness_none_for_star () =
  Alcotest.(check bool) "star has no witness" true
    (Tree_eq.theorem1_witness (Generators.star 6) = None)

let test_theorem1_witness_path () =
  let g = Generators.path 5 in
  match Tree_eq.theorem1_witness g with
  | Some (mv, d) ->
    check_true "improving" (d < 0);
    check_true "applicable" (Swap.is_applicable g mv)
  | None -> Alcotest.fail "P5 has diameter 4 >= 3"

let test_theorem1_witness_all_trees_n6 () =
  (* the witness construction must succeed on every non-star tree *)
  Enumerate.trees 6 (fun g ->
      if not (Tree_eq.is_star g) then
        match Tree_eq.theorem1_witness g with
        | Some (_, d) -> check_true "improving" (d < 0)
        | None -> Alcotest.fail "non-star must have a witness")

let test_theorem4_witness () =
  check_true "double star has no diam>=4 witness"
    (Tree_eq.theorem4_witness (Generators.double_star 2 2) = None);
  match Tree_eq.theorem4_witness (Generators.path 6) with
  | Some (mv, d) ->
    check_true "improving" (d < 0);
    check_true "applicable" (Swap.is_applicable (Generators.path 6) mv)
  | None -> Alcotest.fail "P6 has diameter 5 >= 4"

let test_non_tree_rejected () =
  Alcotest.check_raises "cycle rejected" (Invalid_argument "Tree_eq: not a tree")
    (fun () -> ignore (Tree_eq.sum_eq_tree (Generators.cycle 4)))

let test_sum_eq_tree_matches_generic =
  qcheck ~count:80 "tree fast path = generic checker" (gen_tree ~min_n:1 ~max_n:12)
    (fun g -> Tree_eq.sum_eq_tree g = Equilibrium.is_sum_equilibrium g)

let test_max_eq_tree_matches_generic =
  qcheck ~count:80 "max tree fast path = generic checker" (gen_tree ~min_n:1 ~max_n:12)
    (fun g -> Tree_eq.max_eq_tree g = Equilibrium.is_max_equilibrium g)

let test_exhaustive_n7_sum () =
  (* Theorem 1 verbatim at n=7: equilibrium iff star *)
  Enumerate.trees 7 (fun g ->
      check_bool "eq iff star" (Tree_eq.is_star g) (Tree_eq.sum_eq_tree g))

let test_exhaustive_n6_max () =
  (* Theorem 4 at n=6: equilibrium iff star or double star with arms >= 2 *)
  Enumerate.trees 6 (fun g ->
      let expected =
        Tree_eq.is_star g
        ||
        match Tree_eq.double_star_arms g with
        | Some (a, b) -> min a b >= 2
        | None -> false
      in
      check_bool "classification" expected (Tree_eq.max_eq_tree g))

let suite =
  [
    case "is_star" test_is_star;
    case "double star detection" test_double_star_detection;
    case "theorem1 witness: star" test_theorem1_witness_none_for_star;
    case "theorem1 witness: path" test_theorem1_witness_path;
    case "theorem1 witness: all 6-vertex trees" test_theorem1_witness_all_trees_n6;
    case "theorem4 witness" test_theorem4_witness;
    case "non-tree rejected" test_non_tree_rejected;
    test_sum_eq_tree_matches_generic;
    test_max_eq_tree_matches_generic;
    slow_case "exhaustive n=7 sum" test_exhaustive_n7_sum;
    slow_case "exhaustive n=6 max" test_exhaustive_n6_max;
  ]
