open Test_helpers

let test_is_connected () =
  check_true "empty" (Components.is_connected (Graph.create 0));
  check_true "singleton" (Components.is_connected (Graph.create 1));
  check_false "two isolated" (Components.is_connected (Graph.create 2));
  check_true "path" (Components.is_connected (Generators.path 5));
  check_false "split" (Components.is_connected (Graph.of_edges 4 [ (0, 1); (2, 3) ]))

let test_components () =
  let g = Graph.of_edges 5 [ (0, 1); (2, 3) ] in
  let label, count = Components.components g in
  check_int "count" 3 count;
  check_int "0 and 1 together" label.(0) label.(1);
  check_int "2 and 3 together" label.(2) label.(3);
  check_false "0 and 2 apart" (label.(0) = label.(2));
  check_false "4 isolated" (label.(4) = label.(0) || label.(4) = label.(2))

let test_component_of () =
  let g = Graph.of_edges 5 [ (0, 1); (2, 3) ] in
  Alcotest.(check (list int)) "component" [ 0; 1 ] (Components.component_of g 1);
  Alcotest.(check (list int)) "isolated" [ 4 ] (Components.component_of g 4)

let test_cut_vertices_path () =
  Alcotest.(check (list int)) "path interior" [ 1; 2; 3 ]
    (Components.cut_vertices (Generators.path 5))

let test_cut_vertices_cycle () =
  Alcotest.(check (list int)) "cycle has none" [] (Components.cut_vertices (Generators.cycle 5))

let test_cut_vertices_star () =
  Alcotest.(check (list int)) "star center" [ 0 ] (Components.cut_vertices (Generators.star 5))

let test_cut_vertices_lollipop () =
  (* clique of 4 + path of 3: the clique-path junction and path interior *)
  let g = Generators.lollipop 4 3 in
  Alcotest.(check (list int)) "junction and path" [ 3; 4; 5 ] (Components.cut_vertices g)

let test_bridges () =
  Alcotest.(check (list (pair int int)))
    "path bridges all" [ (0, 1); (1, 2); (2, 3) ]
    (Components.bridges (Generators.path 4));
  Alcotest.(check (list (pair int int))) "cycle none" [] (Components.bridges (Generators.cycle 4));
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ] in
  Alcotest.(check (list (pair int int))) "triangle with tail" [ (2, 3); (3, 4) ]
    (Components.bridges g)

let test_is_tree_forest () =
  check_true "path is tree" (Components.is_tree (Generators.path 5));
  check_true "star is tree" (Components.is_tree (Generators.star 5));
  check_false "cycle not tree" (Components.is_tree (Generators.cycle 5));
  check_false "forest not tree" (Components.is_tree (Graph.of_edges 4 [ (0, 1); (2, 3) ]));
  check_true "forest is forest" (Components.is_forest (Graph.of_edges 4 [ (0, 1); (2, 3) ]));
  check_false "cycle not forest" (Components.is_forest (Generators.cycle 3))

let test_components_without () =
  let g = Generators.star 5 in
  let label, count = Components.components_without g 0 in
  check_int "removing star center isolates leaves" 4 count;
  check_int "removed vertex labeled -1" (-1) label.(0)

let test_bridge_endpoints_are_cut_or_leaves =
  qcheck ~count:80 "bridge endpoint of degree >= 2 is a cut vertex"
    (gen_connected ~min_n:3 ~max_n:20) (fun g ->
      let cuts = Components.cut_vertices g in
      List.for_all
        (fun (u, v) ->
          (Graph.degree g u < 2 || List.mem u cuts)
          && (Graph.degree g v < 2 || List.mem v cuts))
        (Components.bridges g))

let test_cut_vertex_by_definition =
  qcheck ~count:60 "cut vertices = vertices whose removal disconnects"
    (gen_connected ~min_n:3 ~max_n:14) (fun g ->
      let n = Graph.n g in
      let cuts = Components.cut_vertices g in
      let naive =
        List.filter
          (fun v ->
            let _, count = Components.components_without g v in
            count > 1)
          (List.init n (fun i -> i))
      in
      cuts = naive)

let test_bridge_by_definition =
  qcheck ~count:60 "bridges = edges whose removal disconnects"
    (gen_connected ~min_n:2 ~max_n:14) (fun g ->
      let bridges = Components.bridges g in
      let naive =
        List.filter
          (fun (u, v) ->
            let h = Graph.copy g in
            Graph.remove_edge h u v;
            not (Components.is_connected h))
          (Graph.edges g)
      in
      bridges = naive)

let suite =
  [
    case "is_connected" test_is_connected;
    case "components" test_components;
    case "component_of" test_component_of;
    case "cut vertices: path" test_cut_vertices_path;
    case "cut vertices: cycle" test_cut_vertices_cycle;
    case "cut vertices: star" test_cut_vertices_star;
    case "cut vertices: lollipop" test_cut_vertices_lollipop;
    case "bridges" test_bridges;
    case "is_tree / is_forest" test_is_tree_forest;
    case "components_without" test_components_without;
    test_bridge_endpoints_are_cut_or_leaves;
    test_cut_vertex_by_definition;
    test_bridge_by_definition;
  ]
