open Test_helpers

let test_ownership_assignment () =
  let g = Generators.star 5 in
  let t = Asym_swap.create Asym_swap.Min_endpoint g in
  check_int "center owns all" 0 (Asym_swap.owner t 0 3);
  Alcotest.(check (list int)) "owned edges" [ 1; 2; 3; 4 ] (Asym_swap.owned_edges t 0);
  Alcotest.(check (list int)) "leaf owns none" [] (Asym_swap.owned_edges t 1);
  let t2 = Asym_swap.create (Asym_swap.By_function (fun _ v -> v)) g in
  check_int "custom owner" 3 (Asym_swap.owner t2 0 3)

let test_bad_owner_rejected () =
  Alcotest.check_raises "owner not endpoint"
    (Invalid_argument "Asym_swap.create: owner not an endpoint") (fun () ->
      ignore (Asym_swap.create (Asym_swap.By_function (fun _ _ -> 99)) (Generators.star 4)))

let test_star_is_equilibrium () =
  (* the star is a symmetric equilibrium, hence asymmetric under any
     ownership *)
  List.iter
    (fun ownership ->
      check_true "star stable"
        (Asym_swap.is_equilibrium (Asym_swap.create ownership (Generators.star 8))))
    [ Asym_swap.Min_endpoint; Asym_swap.Random 3 ]

let test_ownership_blocks_deviations () =
  (* a path where every edge is owned by the endpoint closer to vertex 0:
     the far endpoint cannot re-point, freezing moves the symmetric game
     would take *)
  let g = Generators.path 5 in
  let toward_zero = Asym_swap.By_function (fun u _ -> u) in
  let t = Asym_swap.create toward_zero g in
  (* vertex 4 owns nothing, so it has no moves despite wanting one *)
  check_true "leaf has no owner-move" (Asym_swap.best_move t 4 = None);
  let ws = Bfs.create_workspace 5 in
  check_true "but a symmetric move exists"
    (Swap.first_improving_move ws Usage_cost.Sum g 4 <> None)

let test_best_move_improves () =
  let g = Generators.path 6 in
  let t = Asym_swap.create Asym_swap.Min_endpoint g in
  match Asym_swap.best_move t 0 with
  | Some (Swap.Swap { actor = 0; _ }, d) -> check_true "improving" (d < 0)
  | _ -> Alcotest.fail "vertex 0 owns its edge and can improve"

let test_dynamics_converges_to_asym_eq () =
  let rng = Prng.create 11 in
  let g = Random_graphs.tree rng 16 in
  let r = Asym_swap.run_dynamics (Asym_swap.create (Asym_swap.Random 11) g) in
  check_true "converged" r.Asym_swap.converged;
  check_true "asym equilibrium" (Asym_swap.is_equilibrium r.Asym_swap.state);
  let final = Asym_swap.graph r.Asym_swap.state in
  check_true "still a tree" (Components.is_tree final);
  check_true "input untouched" (Graph.equal g (Graph.copy g))

let test_symmetric_implies_asymmetric =
  qcheck ~count:40 "symmetric eq => asymmetric eq (any ownership)"
    QCheck2.Gen.(pair (gen_connected ~min_n:3 ~max_n:9) (int_range 0 1000))
    (fun (g, seed) ->
      Asym_swap.symmetric_equilibrium_implies_asymmetric g (Asym_swap.Random seed))

let test_asym_moves_subset_of_symmetric =
  qcheck ~count:30 "owner moves are a subset of symmetric moves"
    QCheck2.Gen.(pair (gen_connected ~min_n:3 ~max_n:10) (int_range 0 1000))
    (fun (g, seed) ->
      let t = Asym_swap.create (Asym_swap.Random seed) g in
      let ws = Bfs.create_workspace (Graph.n g) in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        match Asym_swap.best_move t v with
        | Some (mv, d) ->
          (* the same move must be available and equally valued in the
             symmetric game *)
          if not (Swap.is_applicable g mv) then ok := false
          else if Swap.delta ws Usage_cost.Sum g mv <> d then ok := false
        | None -> ()
      done;
      !ok)

let suite =
  [
    case "ownership assignment" test_ownership_assignment;
    case "bad owner rejected" test_bad_owner_rejected;
    case "star equilibrium" test_star_is_equilibrium;
    case "ownership blocks deviations" test_ownership_blocks_deviations;
    case "best move improves" test_best_move_improves;
    case "dynamics converges" test_dynamics_converges_to_asym_eq;
    test_symmetric_implies_asymmetric;
    test_asym_moves_subset_of_symmetric;
  ]
