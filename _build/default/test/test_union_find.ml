open Test_helpers

let test_initial () =
  let uf = Union_find.create 5 in
  check_int "classes" 5 (Union_find.count uf);
  for i = 0 to 4 do
    check_int "own root" i (Union_find.find uf i);
    check_int "size 1" 1 (Union_find.class_size uf i)
  done

let test_union_basic () =
  let uf = Union_find.create 4 in
  check_true "first union merges" (Union_find.union uf 0 1);
  check_false "second union no-op" (Union_find.union uf 0 1);
  check_true "same" (Union_find.same uf 0 1);
  check_false "not same" (Union_find.same uf 0 2);
  check_int "classes" 3 (Union_find.count uf);
  check_int "size" 2 (Union_find.class_size uf 1)

let test_transitivity () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  check_true "transitive" (Union_find.same uf 0 3);
  check_int "size 4" 4 (Union_find.class_size uf 0);
  check_int "classes" 3 (Union_find.count uf)

let test_chain_all () =
  let n = 1000 in
  let uf = Union_find.create n in
  for i = 0 to n - 2 do
    ignore (Union_find.union uf i (i + 1))
  done;
  check_int "one class" 1 (Union_find.count uf);
  check_int "full size" n (Union_find.class_size uf 500);
  check_true "ends joined" (Union_find.same uf 0 (n - 1))

let test_against_model () =
  (* compare against a naive labels array under random unions *)
  let rng = Prng.create 123 in
  let n = 60 in
  let uf = Union_find.create n in
  let label = Array.init n (fun i -> i) in
  let relabel a b =
    let la = label.(a) and lb = label.(b) in
    if la <> lb then
      Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
  in
  for _ = 1 to 200 do
    let a = Prng.int rng n and b = Prng.int rng n in
    ignore (Union_find.union uf a b);
    relabel a b
  done;
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      check_bool "same matches model" (label.(a) = label.(b)) (Union_find.same uf a b)
    done
  done

let suite =
  [
    case "initial state" test_initial;
    case "union basics" test_union_basic;
    case "transitivity" test_transitivity;
    case "1000-chain" test_chain_all;
    case "randomized against naive model" test_against_model;
  ]
