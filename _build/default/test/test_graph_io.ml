open Test_helpers

let test_dot_shape () =
  let dot = Graph_io.to_dot ~name:"demo" (Generators.path 3) in
  check_true "header" (String.length dot > 0);
  let lines = String.split_on_char '\n' dot |> List.filter (fun l -> l <> "") in
  Alcotest.(check (list string)) "content"
    [ "graph demo {"; "  0 -- 1;"; "  1 -- 2;"; "}" ]
    lines

let test_dot_isolated_and_labels () =
  let g = Graph.create 2 in
  let dot = Graph_io.to_dot ~label:(fun v -> Printf.sprintf "agent%d" v) g in
  check_true "isolated vertices listed"
    (String.length dot > 0
    && List.exists
         (fun l -> l = "  \"agent0\";")
         (String.split_on_char '\n' dot))

let test_edge_list_roundtrip () =
  List.iter
    (fun g -> check_true "roundtrip" (Graph.equal g (Graph_io.of_edge_list (Graph_io.to_edge_list g))))
    [
      Graph.create 0;
      Graph.create 4;
      Generators.petersen ();
      Constructions.theorem5_graph;
      Generators.star 10;
    ]

let test_edge_list_comments_and_blanks () =
  let g = Graph_io.of_edge_list "# a comment\n3 2\n\n0 1\n# another\n1 2\n" in
  check_true "parsed" (Graph.equal g (Generators.path 3))

let test_edge_list_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Graph_io.of_edge_list: empty input")
    (fun () -> ignore (Graph_io.of_edge_list "  \n \n"));
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Graph_io.of_edge_list: edge count mismatch with header")
    (fun () -> ignore (Graph_io.of_edge_list "3 2\n0 1\n"));
  Alcotest.check_raises "bad line" (Invalid_argument "Graph_io.of_edge_list: bad line 0 x")
    (fun () -> ignore (Graph_io.of_edge_list "2 1\n0 x\n"))

let test_roundtrip_random =
  qcheck ~count:100 "edge list roundtrip (random)" (gen_any_graph ~min_n:0 ~max_n:20)
    (fun g -> Graph.equal g (Graph_io.of_edge_list (Graph_io.to_edge_list g)))

let suite =
  [
    case "dot shape" test_dot_shape;
    case "dot isolated + labels" test_dot_isolated_and_labels;
    case "edge list roundtrip" test_edge_list_roundtrip;
    case "comments and blanks" test_edge_list_comments_and_blanks;
    case "rejections" test_edge_list_rejects;
    test_roundtrip_random;
  ]
