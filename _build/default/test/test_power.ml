open Test_helpers

let test_power_one_identity () =
  let g = Generators.petersen () in
  check_true "G^1 = G" (Graph.equal (Power.power g 1) g)

let test_cycle_squared () =
  let p = Power.power (Generators.cycle 8) 2 in
  check_true "C8^2 = circulant(8;1,2)" (Graph.equal p (Generators.circulant 8 [ 1; 2 ]))

let test_path_power_diameter () =
  let g = Generators.path 13 in
  List.iter
    (fun x ->
      let p = Power.power g x in
      Alcotest.(check (option int))
        (Printf.sprintf "diam(P13^%d)" x)
        (Some ((12 + x - 1) / x))
        (Metrics.diameter p))
    [ 1; 2; 3; 4; 6 ]

let test_power_beyond_diameter_complete () =
  let g = Generators.cycle 7 in
  let p = Power.power g 3 in
  check_true "C7^3 complete" (Graph.equal p (Generators.complete 7))

let test_power_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let p = Power.power g 5 in
  check_int "components preserved" 2 (Graph.m p);
  check_false "no cross edges" (Graph.mem_edge p 0 2)

let test_power_within_oracle () =
  let g = Generators.cycle 10 in
  let within = Power.power_within g 3 in
  let p = Power.power g 3 in
  for u = 0 to 9 do
    for v = 0 to 9 do
      if u <> v then check_bool "oracle matches built graph" (Graph.mem_edge p u v) (within u v)
    done
  done;
  check_false "no self edges" (within 4 4)

let test_power_invalid () =
  Alcotest.check_raises "x >= 1" (Invalid_argument "Power.power: need x >= 1")
    (fun () -> ignore (Power.power (Generators.path 3) 0))

let test_power_diameter_formula =
  qcheck ~count:40 "diam(G^x) = ceil(diam(G)/x)" (gen_connected ~min_n:2 ~max_n:15)
    (fun g ->
      match Metrics.diameter g with
      | None -> false
      | Some d ->
        let x = 1 + (d mod 3) in
        (match Metrics.diameter (Power.power g x) with
        | Some dp -> dp = (d + x - 1) / x
        | None -> false))

let test_power_monotone =
  qcheck ~count:40 "edges of G^x contained in G^(x+1)" (gen_connected ~min_n:2 ~max_n:12)
    (fun g ->
      let p2 = Power.power g 2 and p3 = Power.power g 3 in
      List.for_all (fun (u, v) -> Graph.mem_edge p3 u v) (Graph.edges p2))

let suite =
  [
    case "G^1 = G" test_power_one_identity;
    case "C8 squared" test_cycle_squared;
    case "path power diameters" test_path_power_diameter;
    case "power beyond diameter is complete" test_power_beyond_diameter_complete;
    case "disconnected input" test_power_disconnected;
    case "power_within oracle" test_power_within_oracle;
    case "invalid exponent" test_power_invalid;
    test_power_diameter_formula;
    test_power_monotone;
  ]
