open Test_helpers

let check_float = Alcotest.(check (float 1e-9))

let test_closeness_star () =
  let c = Centrality.closeness (Generators.star 5) in
  check_float "center" 1.0 c.(0);
  check_float "leaf" (4.0 /. 7.0) c.(1)

let test_closeness_disconnected () =
  let c = Centrality.closeness (Graph.of_edges 3 [ (0, 1) ]) in
  check_float "unreaching vertex" 0.0 c.(0)

let test_harmonic () =
  let c = Centrality.harmonic (Generators.star 4) in
  check_float "center" 3.0 c.(0);
  check_float "leaf" (1.0 +. (2.0 /. 2.0)) c.(1);
  (* harmonic handles disconnection gracefully *)
  let d = Centrality.harmonic (Graph.of_edges 3 [ (0, 1) ]) in
  check_float "isolated" 0.0 d.(2);
  check_float "pair" 1.0 d.(0)

let test_degree () =
  let c = Centrality.degree (Generators.star 5) in
  check_float "center" 1.0 c.(0);
  check_float "leaf" 0.25 c.(1)

let test_eccentricity () =
  let c = Centrality.eccentricity (Generators.path 5) in
  check_float "middle" 0.5 c.(2);
  check_float "end" 0.25 c.(0)

let test_betweenness_star () =
  let b = Centrality.betweenness (Generators.star 5) in
  (* center lies on all C(4,2) = 6 leaf pairs *)
  check_float "center" 6.0 b.(0);
  check_float "leaf" 0.0 b.(1)

let test_betweenness_path () =
  let b = Centrality.betweenness (Generators.path 5) in
  (* vertex 1 lies on pairs (0,2),(0,3),(0,4) = 3; vertex 2 on (0,3),(0,4),
     (1,3),(1,4) = 4 *)
  check_float "end" 0.0 b.(0);
  check_float "v1" 3.0 b.(1);
  check_float "middle" 4.0 b.(2)

let test_betweenness_cycle_even () =
  (* C4: vertex v is on the unique... pairs of opposite vertices have two
     shortest paths, each middle vertex carries 1/2 *)
  let b = Centrality.betweenness (Generators.cycle 4) in
  Array.iter (fun x -> check_float "uniform" 0.5 x) b

let test_betweenness_complete () =
  let b = Centrality.betweenness (Generators.complete 5) in
  Array.iter (fun x -> check_float "no intermediaries" 0.0 x) b

let test_most_central_and_spread () =
  let c = [| 0.5; 2.0; 1.0 |] in
  check_int "argmax" 1 (Centrality.most_central c);
  check_float "spread" 1.5 (Centrality.spread c);
  check_float "flat" 0.0 (Centrality.spread [| 3.0; 3.0 |])

let test_vertex_transitive_flat =
  qcheck ~count:20 "vertex-transitive families are centrality-flat"
    QCheck2.Gen.(int_range 3 9) (fun n ->
      let g = Generators.cycle n in
      Centrality.spread (Centrality.betweenness g) < 1e-9
      && Centrality.spread (Centrality.closeness g) < 1e-9)

let test_betweenness_pair_count =
  (* sum of betweenness = sum over pairs of (internal vertices weighted by
     path fractions) = Σ_{s<t} (avg path length - 1) *)
  qcheck ~count:40 "sum of betweenness consistent with distances"
    (gen_tree ~min_n:2 ~max_n:12) (fun g ->
      (* trees: unique paths, so total betweenness = Σ_{s<t} (d(s,t) - 1) *)
      let b = Centrality.betweenness g in
      let total = Array.fold_left ( +. ) 0.0 b in
      match Metrics.wiener_index g with
      | Some w ->
        let n = Graph.n g in
        let pairs = n * (n - 1) / 2 in
        abs_float (total -. float_of_int (w - pairs)) < 1e-6
      | None -> false)

let test_star_center_most_between =
  qcheck ~count:30 "sum equilibria from tree dynamics: center dominates"
    (gen_tree ~min_n:4 ~max_n:12) (fun g ->
      let r = Dynamics.converge_sum g in
      r.Dynamics.outcome <> Dynamics.Converged
      ||
      let b = Centrality.betweenness r.Dynamics.final in
      (* the star's center is the unique positive-betweenness vertex *)
      let center = Centrality.most_central b in
      Graph.degree r.Dynamics.final center = Graph.n g - 1)

let suite =
  [
    case "closeness: star" test_closeness_star;
    case "closeness: disconnected" test_closeness_disconnected;
    case "harmonic" test_harmonic;
    case "degree" test_degree;
    case "eccentricity" test_eccentricity;
    case "betweenness: star" test_betweenness_star;
    case "betweenness: path" test_betweenness_path;
    case "betweenness: even cycle" test_betweenness_cycle_even;
    case "betweenness: complete" test_betweenness_complete;
    case "argmax / spread" test_most_central_and_spread;
    test_vertex_transitive_flat;
    test_betweenness_pair_count;
    test_star_center_most_between;
  ]
