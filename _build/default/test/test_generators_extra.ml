open Test_helpers

let check_opt_int = Alcotest.(check (option int))

let test_wheel () =
  let g = Generators.wheel 6 in
  check_int "n" 7 (Graph.n g);
  check_int "m" 12 (Graph.m g);
  check_int "hub degree" 6 (Graph.degree g 0);
  check_int "rim degree" 3 (Graph.degree g 1);
  check_opt_int "diameter" (Some 2) (Metrics.diameter g);
  check_true "wheel(3) = K4" (Canon.isomorphic (Generators.wheel 3) (Generators.complete 4))

let test_friendship () =
  let g = Generators.friendship 4 in
  check_int "n" 9 (Graph.n g);
  check_int "m" 12 (Graph.m g);
  check_opt_int "diameter" (Some 2) (Metrics.diameter g);
  (* the friendship property: every pair has exactly one common neighbor *)
  let n = Graph.n g in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let common =
        Array.fold_left
          (fun acc w -> if Graph.mem_edge g v w then acc + 1 else acc)
          0 (Graph.neighbors g u)
      in
      check_int "one common friend" 1 common
    done
  done

let test_cocktail_party () =
  let g = Generators.cocktail_party 3 in
  check_int "n" 6 (Graph.n g);
  check_int "m" 12 (Graph.m g);
  check_true "regular of degree 2k-2" (Graph.is_regular g && Graph.max_degree g = 4);
  check_false "antipodes not adjacent" (Graph.mem_edge g 0 1);
  check_true "iso to K_{2,2,2}"
    (Canon.isomorphic g (Generators.complete_multipartite [ 2; 2; 2 ]))

let test_complete_multipartite () =
  let g = Generators.complete_multipartite [ 2; 3 ] in
  check_true "K_{2,3}" (Canon.isomorphic g (Generators.complete_bipartite 2 3));
  let k = Generators.complete_multipartite [ 1; 1; 1; 1 ] in
  check_true "all-singletons = K4" (Graph.equal k (Generators.complete 4))

let test_caterpillar () =
  let g = Generators.caterpillar 4 [ 1; 0; 2 ] in
  check_int "n" 7 (Graph.n g);
  check_true "is tree" (Components.is_tree g);
  check_int "spine 0 degree" 2 (Graph.degree g 0);
  check_int "spine 2 degree" 4 (Graph.degree g 2);
  (* missing legs entries default to 0 *)
  check_int "spine 3 degree" 1 (Graph.degree g 3)

let test_spider () =
  let g = Generators.spider [ 2; 2; 1 ] in
  check_int "n" 6 (Graph.n g);
  check_true "is tree" (Components.is_tree g);
  check_int "hub degree" 3 (Graph.degree g 0);
  check_opt_int "diameter = two longest arms" (Some 4) (Metrics.diameter g)

let test_barbell () =
  let g = Generators.barbell 4 2 in
  check_int "n" 10 (Graph.n g);
  check_int "m" (6 + 6 + 3) (Graph.m g);
  check_true "connected" (Components.is_connected g);
  check_opt_int "diameter" (Some 5) (Metrics.diameter g);
  (* p = 0: two cliques joined by one edge *)
  let g0 = Generators.barbell 3 0 in
  check_int "m with direct bridge" 7 (Graph.m g0);
  Alcotest.(check (list (pair int int))) "bridge found" [ (2, 3) ] (Components.bridges g0)

let test_family_equilibrium_status () =
  (* wheels and friendship graphs are diameter-2 sum equilibria: every
     vertex has local diameter <= 2, so Lemma 6 freezes all swaps *)
  check_true "wheel 6 sum eq" (Equilibrium.is_sum_equilibrium (Generators.wheel 6));
  check_false "wheel 6 not max eq" (Equilibrium.is_max_equilibrium (Generators.wheel 6));
  check_true "friendship 2 sum eq" (Equilibrium.is_sum_equilibrium (Generators.friendship 2));
  check_true "friendship 3 sum eq" (Equilibrium.is_sum_equilibrium (Generators.friendship 3));
  check_true "cocktail party sum eq" (Equilibrium.is_sum_equilibrium (Generators.cocktail_party 3))

let suite =
  [
    case "wheel" test_wheel;
    case "friendship" test_friendship;
    case "cocktail party" test_cocktail_party;
    case "complete multipartite" test_complete_multipartite;
    case "caterpillar" test_caterpillar;
    case "spider" test_spider;
    case "barbell" test_barbell;
    case "equilibrium status of new families" test_family_equilibrium_status;
  ]
