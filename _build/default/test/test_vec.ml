open Test_helpers

let make_range n =
  let v = Vec.create ~dummy:(-1) () in
  for i = 0 to n - 1 do
    Vec.push v i
  done;
  v

let test_empty () =
  let v = Vec.create ~dummy:0 () in
  check_int "length" 0 (Vec.length v);
  check_true "is_empty" (Vec.is_empty v)

let test_push_get () =
  let v = make_range 100 in
  check_int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check_int "get" i (Vec.get v i)
  done

let test_set () =
  let v = make_range 10 in
  Vec.set v 3 42;
  check_int "set took" 42 (Vec.get v 3)

let test_bounds () =
  let v = make_range 3 in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)))

let test_pop () =
  let v = make_range 3 in
  check_int "pop" 2 (Vec.pop v);
  check_int "pop" 1 (Vec.pop v);
  check_int "length" 1 (Vec.length v);
  check_int "pop" 0 (Vec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let test_swap_remove () =
  let v = make_range 5 in
  check_int "removed" 1 (Vec.swap_remove v 1);
  check_int "length" 4 (Vec.length v);
  check_int "last moved in" 4 (Vec.get v 1)

let test_swap_remove_last () =
  let v = make_range 3 in
  check_int "removed" 2 (Vec.swap_remove v 2);
  check_int "length" 2 (Vec.length v)

let test_clear () =
  let v = make_range 10 in
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v);
  Vec.push v 7;
  check_int "reusable" 7 (Vec.get v 0)

let test_iter_order () =
  let v = make_range 10 in
  let acc = ref [] in
  Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "order" (List.init 10 (fun i -> 9 - i)) !acc

let test_iteri () =
  let v = make_range 10 in
  Vec.iteri (fun i x -> check_int "index matches" i x) v

let test_fold () =
  let v = make_range 10 in
  check_int "sum" 45 (Vec.fold_left ( + ) 0 v)

let test_exists_mem () =
  let v = make_range 10 in
  check_true "exists" (Vec.exists (fun x -> x = 7) v);
  check_false "not exists" (Vec.exists (fun x -> x = 99) v);
  check_true "mem" (Vec.mem 3 v);
  check_false "not mem" (Vec.mem 11 v)

let test_find_index () =
  let v = make_range 10 in
  Alcotest.(check (option int)) "found" (Some 4) (Vec.find_index (fun x -> x = 4) v);
  Alcotest.(check (option int)) "absent" None (Vec.find_index (fun x -> x > 100) v)

let test_to_array_list () =
  let v = make_range 4 in
  Alcotest.(check (array int)) "array" [| 0; 1; 2; 3 |] (Vec.to_array v);
  Alcotest.(check (list int)) "list" [ 0; 1; 2; 3 ] (Vec.to_list v)

let test_of_array () =
  let v = Vec.of_array ~dummy:(-1) [| 5; 6; 7 |] in
  check_int "length" 3 (Vec.length v);
  check_int "content" 6 (Vec.get v 1)

let test_copy_independent () =
  let v = make_range 3 in
  let w = Vec.copy v in
  Vec.set w 0 99;
  check_int "original untouched" 0 (Vec.get v 0)

let test_sort () =
  let v = Vec.of_array ~dummy:0 [| 3; 1; 2 |] in
  Vec.sort compare v;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3 |] (Vec.to_array v)

let test_growth () =
  let v = Vec.create ~capacity:1 ~dummy:0 () in
  for i = 0 to 9999 do
    Vec.push v i
  done;
  check_int "length after growth" 10_000 (Vec.length v);
  check_int "spot value" 5000 (Vec.get v 5000)

let suite =
  [
    case "empty" test_empty;
    case "push/get" test_push_get;
    case "set" test_set;
    case "bounds checking" test_bounds;
    case "pop" test_pop;
    case "swap_remove" test_swap_remove;
    case "swap_remove last" test_swap_remove_last;
    case "clear" test_clear;
    case "iter order" test_iter_order;
    case "iteri" test_iteri;
    case "fold" test_fold;
    case "exists/mem" test_exists_mem;
    case "find_index" test_find_index;
    case "to_array / to_list" test_to_array_list;
    case "of_array" test_of_array;
    case "copy independence" test_copy_independent;
    case "sort" test_sort;
    case "geometric growth" test_growth;
  ]
