open Test_helpers

let check_float = Alcotest.(check (float 1e-9))

let test_triangle_counts () =
  check_int "K4" 4 (Metrics.triangle_count (Generators.complete 4));
  check_int "K5" 10 (Metrics.triangle_count (Generators.complete 5));
  check_int "K6" 20 (Metrics.triangle_count (Generators.complete 6));
  check_int "tree" 0 (Metrics.triangle_count (Generators.star 8));
  check_int "C5" 0 (Metrics.triangle_count (Generators.cycle 5));
  check_int "petersen (girth 5)" 0 (Metrics.triangle_count (Generators.petersen ()));
  check_int "friendship(3)" 3 (Metrics.triangle_count (Generators.friendship 3));
  check_int "wheel(5)" 5 (Metrics.triangle_count (Generators.wheel 5));
  (* wheel(3) = K4 *)
  check_int "wheel(3) = K4" 4 (Metrics.triangle_count (Generators.wheel 3))

let test_local_clustering () =
  check_float "complete" 1.0 (Metrics.local_clustering (Generators.complete 5) 0);
  check_float "star center" 0.0 (Metrics.local_clustering (Generators.star 5) 0);
  check_float "leaf (degree 1)" 0.0 (Metrics.local_clustering (Generators.star 5) 1);
  (* friendship hub: k triangles over C(2k,2) pairs *)
  let g = Generators.friendship 3 in
  check_float "friendship hub" (3.0 /. 15.0) (Metrics.local_clustering g 0);
  check_float "friendship outer" 1.0 (Metrics.local_clustering g 1)

let test_average_and_global_clustering () =
  check_float "complete avg" 1.0 (Metrics.average_clustering (Generators.complete 6));
  check_float "complete global" 1.0 (Metrics.global_clustering (Generators.complete 6));
  check_float "bipartite global" 0.0 (Metrics.global_clustering (Generators.complete_bipartite 3 4));
  check_float "empty" 0.0 (Metrics.average_clustering (Graph.create 0));
  (* hand check on the paw graph: triangle 0-1-2 plus pendant 3 on 0.
     wedges: deg 3,2,2,1 -> 3+1+1+0 = 5; one triangle -> 3/5 *)
  let paw = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 0); (0, 3) ] in
  check_float "paw global" 0.6 (Metrics.global_clustering paw);
  check_float "paw average" ((1.0 /. 3.0 +. 1.0 +. 1.0 +. 0.0) /. 4.0)
    (Metrics.average_clustering paw)

let test_assortativity () =
  (* regular graphs are degenerate *)
  check_true "cycle degenerate" (Metrics.degree_assortativity (Generators.cycle 8) = None);
  check_true "no edges" (Metrics.degree_assortativity (Graph.create 4) = None);
  (* stars are perfectly disassortative *)
  (match Metrics.degree_assortativity (Generators.star 8) with
  | Some r -> check_float "star r = -1" (-1.0) r
  | None -> Alcotest.fail "star has degree variance");
  (* a graph with positive assortativity: two K3s joined by an edge...
     check it is at least defined and in [-1, 1] *)
  match Metrics.degree_assortativity (Generators.barbell 3 1) with
  | Some r -> check_true "in range" (r >= -1.0 && r <= 1.0)
  | None -> Alcotest.fail "defined"

let test_triangles_match_wedge_identity =
  qcheck ~count:60 "global clustering in [0,1]" (gen_any_graph ~min_n:1 ~max_n:15)
    (fun g ->
      let c = Metrics.global_clustering g in
      c >= 0.0 && c <= 1.0 +. 1e-9)

let test_triangle_count_brute_force =
  qcheck ~count:60 "triangle count = brute force" (gen_any_graph ~min_n:3 ~max_n:14)
    (fun g ->
      let n = Graph.n g in
      let brute = ref 0 in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          for c = b + 1 to n - 1 do
            if Graph.mem_edge g a b && Graph.mem_edge g b c && Graph.mem_edge g a c
            then incr brute
          done
        done
      done;
      Metrics.triangle_count g = !brute)

let test_assortativity_range =
  qcheck ~count:60 "assortativity in [-1, 1]" (gen_connected ~min_n:2 ~max_n:15)
    (fun g ->
      match Metrics.degree_assortativity g with
      | Some r -> r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9
      | None -> true)

let suite =
  [
    case "triangle counts" test_triangle_counts;
    case "local clustering" test_local_clustering;
    case "average / global clustering" test_average_and_global_clustering;
    case "assortativity" test_assortativity;
    test_triangles_match_wedge_identity;
    test_triangle_count_brute_force;
    test_assortativity_range;
  ]
