open Test_helpers

let test_star_both_versions () =
  let g = Generators.star 6 in
  check_true "sum" (Equilibrium.is_sum_equilibrium g);
  check_true "max" (Equilibrium.is_max_equilibrium g)

let test_complete_graph () =
  let g = Generators.complete 5 in
  check_true "sum" (Equilibrium.is_sum_equilibrium g);
  (* complete graphs are NOT max equilibria: deleting an edge keeps local
     diameter at... n=5: deleting uv leaves d(u,v)=2, ecc(u) was 1 -> 2,
     strictly increases, so deletion-critical holds; swaps cannot exist
     (no non-neighbors) *)
  check_true "max" (Equilibrium.is_max_equilibrium g)

let test_path_not_equilibrium () =
  let g = Generators.path 5 in
  (match Equilibrium.check_sum g with
  | Equilibrium.Violation (mv, d) ->
    check_true "improving" (d < 0);
    check_true "applicable" (Swap.is_applicable g mv)
  | _ -> Alcotest.fail "P5 is not a sum equilibrium");
  match Equilibrium.check_max g with
  | Equilibrium.Violation (_, d) -> check_true "improving or non-critical" (d <= 0)
  | _ -> Alcotest.fail "P5 is not a max equilibrium"

let test_disconnected_verdict () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check_true "sum disconnected" (Equilibrium.check_sum g = Equilibrium.Disconnected);
  check_true "max disconnected" (Equilibrium.check_max g = Equilibrium.Disconnected)

let test_cycle_sum_equilibrium () =
  (* C5 is a sum equilibrium (diameter 2, Lemma 6); C7 is not *)
  check_true "C5" (Equilibrium.is_sum_equilibrium (Generators.cycle 5));
  check_false "C7" (Equilibrium.is_sum_equilibrium (Generators.cycle 7))

let test_deletion_critical () =
  (* trees: every deletion disconnects, so strictly increases *)
  check_true "tree" (Equilibrium.is_deletion_critical (Generators.star 5));
  (* a triangle is: deleting uv moves d(u,v) from 1 to 2 > ecc 1 *)
  check_true "triangle" (Equilibrium.is_deletion_critical (Generators.complete 3));
  (* C5 plus the chord 0-2: ecc(0) = 2 with or without the chord, so the
     chord's deletion is not critical *)
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (0, 2) ] in
  check_false "chorded C5" (Equilibrium.is_deletion_critical g);
  match Equilibrium.find_non_critical_deletion g with
  | Some (Swap.Delete { actor; drop }, d) ->
    check_true "no increase" (d <= 0);
    (* recompute: the witness deletion really leaves the actor's local
       diameter unchanged *)
    let before = Option.get (Metrics.local_diameter g actor) in
    Graph.remove_edge g actor drop;
    let after = Option.get (Metrics.local_diameter g actor) in
    Graph.add_edge g actor drop;
    check_int "verified neutral" before after
  | _ -> Alcotest.fail "expected a witness"

let test_insertion_stable () =
  (* complete graph: vacuously stable (no absent edges) *)
  check_true "complete" (Equilibrium.is_insertion_stable (Generators.complete 4));
  (* path: inserting 0-4 lowers ecc of both endpoints *)
  check_false "path" (Equilibrium.is_insertion_stable (Generators.path 5));
  (match Equilibrium.find_insertion_violation (Generators.path 5) with
  | Some (u, v) -> check_true "endpoints far apart" (abs (u - v) >= 2)
  | None -> Alcotest.fail "expected violation");
  (* the paper's torus is insertion-stable *)
  check_true "torus" (Equilibrium.is_insertion_stable (Constructions.torus 3))

let test_stable_under_insertions () =
  (* k=1 must agree with is_insertion_stable restricted to single vertex
     improvement *)
  let t = Constructions.torus 3 in
  check_true "torus k=1" (Equilibrium.is_stable_under_insertions t ~k:1);
  check_false "path k=1" (Equilibrium.is_stable_under_insertions (Generators.path 5) ~k:1);
  (* 3-dim torus is stable under 2 insertions *)
  check_true "torus_d dim=3 k=2 insertions"
    (Equilibrium.is_stable_under_insertions (Constructions.torus_d ~dim:3 2) ~k:2);
  (* but the 2-dim torus is NOT stable under 2 insertions (only d-1 = 1):
     two chords can cover both far contours *)
  check_false "2-dim torus under 2 insertions"
    (Equilibrium.is_stable_under_insertions (Constructions.torus 3) ~k:2)

let test_k_swap_exhaustive () =
  (* k = 1 swap-stability coincides with the swap half of sum equilibrium *)
  check_true "star k=1" (Equilibrium.is_stable_under_k_swaps Usage_cost.Sum (Generators.star 8) ~k:1);
  check_false "path k=1" (Equilibrium.is_stable_under_k_swaps Usage_cost.Sum (Generators.path 6) ~k:1);
  (* the diameter-3 witnesses are 1-swap stable but fall to 2-swaps *)
  check_true "witness k=1"
    (Equilibrium.is_stable_under_k_swaps Usage_cost.Sum Constructions.sum_diameter3_witness ~k:1);
  check_false "witness k=2"
    (Equilibrium.is_stable_under_k_swaps Usage_cost.Sum Constructions.sum_diameter3_witness ~k:2);
  (* diameter-2 equilibria survive 2-swaps *)
  check_true "polarity k=2"
    (Equilibrium.is_stable_under_k_swaps Usage_cost.Sum (Polarity.polarity_graph 3) ~k:2);
  check_true "star k=3" (Equilibrium.is_stable_under_k_swaps Usage_cost.Sum (Generators.star 8) ~k:3)

let test_k_swap_witness_verified () =
  match
    Equilibrium.find_k_swap_violation Usage_cost.Sum Constructions.sum_diameter3_witness ~k:2
  with
  | None -> Alcotest.fail "expected a 2-swap violation"
  | Some (actor, pairs) ->
    (* re-apply the witness by hand and confirm the strict improvement *)
    let g = Graph.copy Constructions.sum_diameter3_witness in
    let before = Option.get (Metrics.sum_distance g actor) in
    List.iter (fun (drop, _) -> Graph.remove_edge g actor drop) pairs;
    List.iter (fun (_, add) -> Graph.add_edge g actor add) pairs;
    (match Metrics.sum_distance g actor with
    | Some after -> check_true "strict improvement" (after < before)
    | None -> Alcotest.fail "witness disconnects")

let test_k_swap_matches_single_swap =
  qcheck ~count:30 "k=1 stability = no improving single swap"
    (gen_connected ~min_n:3 ~max_n:9) (fun g ->
      let ws = Bfs.create_workspace (Graph.n g) in
      let any_improving = ref false in
      for v = 0 to Graph.n g - 1 do
        if Swap.first_improving_move ws Usage_cost.Sum g v <> None then
          any_improving := true
      done;
      Equilibrium.is_stable_under_k_swaps Usage_cost.Sum g ~k:1 = not !any_improving)

let test_k_change_sampled () =
  let rng = Prng.create 5 in
  (* sampled checker must find the single-change improvement on a path *)
  check_false "path fails sampled check"
    (Equilibrium.k_change_stable_sampled rng (Generators.path 6) ~k:1 ~trials:200)

let test_eccentricity_spread () =
  Alcotest.(check (option int)) "path P5" (Some 2)
    (Equilibrium.eccentricity_spread (Generators.path 5));
  Alcotest.(check (option int)) "star" (Some 1)
    (Equilibrium.eccentricity_spread (Generators.star 5));
  Alcotest.(check (option int)) "cycle" (Some 0)
    (Equilibrium.eccentricity_spread (Generators.cycle 6));
  Alcotest.(check (option int)) "disconnected" None
    (Equilibrium.eccentricity_spread (Graph.create 3))

let test_lemma2_on_max_equilibria () =
  (* Lemma 2: max equilibria have spread <= 1 — check on known equilibria *)
  List.iter
    (fun g ->
      check_true "is max eq" (Equilibrium.is_max_equilibrium g);
      match Equilibrium.eccentricity_spread g with
      | Some s -> check_true "spread <= 1" (s <= 1)
      | None -> Alcotest.fail "connected")
    [ Generators.star 7; Generators.double_star 2 2; Constructions.torus 3 ]

let test_lemma3 () =
  check_true "star (one far component allowed)" (Equilibrium.lemma3_holds (Generators.star 5));
  (* P5's center is a cut vertex with far vertices on both sides *)
  check_false "path violates" (Equilibrium.lemma3_holds (Generators.path 5));
  check_true "no cut vertices" (Equilibrium.lemma3_holds (Generators.cycle 6))

let test_double_star_census_boundary () =
  check_false "double_star(1,1)" (Equilibrium.is_max_equilibrium (Generators.double_star 1 1));
  check_false "double_star(1,4)" (Equilibrium.is_max_equilibrium (Generators.double_star 1 4));
  check_true "double_star(2,2)" (Equilibrium.is_max_equilibrium (Generators.double_star 2 2));
  check_true "double_star(4,2)" (Equilibrium.is_max_equilibrium (Generators.double_star 4 2))

let test_sum_eq_agrees_with_bruteforce =
  (* independent checker that rebuilds the graph per candidate move *)
  let brute_force_sum_eq g =
    let n = Graph.n g in
    let edges = Graph.edges g in
    let sum_from h v =
      let d = Bfs.distances h v in
      Array.fold_left
        (fun acc x -> if x = Bfs.unreachable then Usage_cost.infinite else acc + x)
        0 d
    in
    Components.is_connected g
    && List.for_all
         (fun (a, b) ->
           List.for_all
             (fun (v, drop) ->
               let base = sum_from g v in
               List.for_all
                 (fun add ->
                   if add = v || add = drop || Graph.mem_edge g v add then true
                   else begin
                     let es =
                       (min v add, max v add)
                       :: List.filter (fun e -> e <> (min v drop, max v drop)) edges
                     in
                     sum_from (Graph.of_edges n es) v >= base
                   end)
                 (List.init n Fun.id))
             [ (a, b); (b, a) ])
         edges
  in
  qcheck ~count:40 "library checker = brute force" (gen_connected ~min_n:2 ~max_n:8)
    (fun g -> Equilibrium.is_sum_equilibrium g = brute_force_sum_eq g)

let test_converged_dynamics_are_equilibria =
  qcheck ~count:20 "sum dynamics output passes checker" (gen_connected ~min_n:4 ~max_n:14)
    (fun g ->
      let r = Dynamics.converge_sum g in
      r.Dynamics.outcome <> Dynamics.Converged
      || Equilibrium.is_sum_equilibrium r.Dynamics.final)

let suite =
  [
    case "star equilibria" test_star_both_versions;
    case "complete graph" test_complete_graph;
    case "path not equilibrium" test_path_not_equilibrium;
    case "disconnected verdict" test_disconnected_verdict;
    case "cycles" test_cycle_sum_equilibrium;
    case "deletion-critical" test_deletion_critical;
    case "insertion-stable" test_insertion_stable;
    case "stable under k insertions" test_stable_under_insertions;
    case "k-swap stability (exhaustive)" test_k_swap_exhaustive;
    case "k-swap witness verified" test_k_swap_witness_verified;
    test_k_swap_matches_single_swap;
    case "sampled k-change checker" test_k_change_sampled;
    case "eccentricity spread" test_eccentricity_spread;
    case "Lemma 2 on known equilibria" test_lemma2_on_max_equilibria;
    case "Lemma 3" test_lemma3;
    case "double-star boundary" test_double_star_census_boundary;
    test_sum_eq_agrees_with_bruteforce;
    test_converged_dynamics_are_equilibria;
  ]
