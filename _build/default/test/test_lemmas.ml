open Test_helpers

let holds = function None -> true | Some _ -> false

let test_lemma6_families () =
  List.iter
    (fun g -> check_true "lemma 6" (holds (Lemmas.check_lemma6 g)))
    [
      Generators.star 8;
      Generators.petersen ();
      Constructions.theorem5_graph;
      Polarity.polarity_graph 3;
      Generators.cycle 5;
      Constructions.sum_diameter3_minimal;
    ]

let test_lemma7_families () =
  List.iter
    (fun g -> check_true "lemma 7" (holds (Lemmas.check_lemma7 g)))
    [
      Constructions.theorem5_graph;
      Constructions.sum_diameter3_witness;
      Generators.hypercube 3;
      Generators.double_star 3 3;
    ]

let test_lemma8_families () =
  List.iter
    (fun g -> check_true "lemma 8" (holds (Lemmas.check_lemma8 g)))
    [
      Constructions.theorem5_graph;
      Generators.hypercube 4;
      Generators.complete_bipartite 3 4;
      Generators.cycle 8;
      Generators.petersen ();
    ]

let test_lemma8_vacuous_on_triangles () =
  (* girth 3 graphs: hypothesis unmet, checker reports no violation *)
  check_true "complete graph vacuous" (holds (Lemmas.check_lemma8 (Generators.complete 5)));
  check_true "polarity vacuous" (holds (Lemmas.check_lemma8 (Polarity.polarity_graph 3)))

let test_case_analysis_isolates_the_flaw () =
  let cases = Lemmas.theorem5_case_analysis () in
  check_int "five cases" 5 (List.length cases);
  List.iter
    (fun (name, ok) ->
      let is_partner_case =
        String.length name >= 10
        && String.sub name 0 10 = "collectors"
        && String.length name > 40
        &&
        let contains_sub s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        contains_sub name "MATCHED PARTNER"
      in
      if is_partner_case then check_false (name ^ " fails") ok
      else check_true (name ^ " holds") ok)
    cases

let test_lemma6_random =
  qcheck ~count:40 "lemma 6 on random connected graphs" (gen_connected ~min_n:3 ~max_n:12)
    (fun g -> holds (Lemmas.check_lemma6 g))

let test_lemma7_random =
  qcheck ~count:30 "lemma 7 on random connected graphs" (gen_connected ~min_n:3 ~max_n:11)
    (fun g -> holds (Lemmas.check_lemma7 g))

let test_lemma8_random =
  qcheck ~count:30 "lemma 8 on random triangle-free graphs"
    QCheck2.Gen.(pair (int_range 4 12) (int_range 0 10_000)) (fun (n, seed) ->
      (* random bipartite => triangle-free with girth >= 4 *)
      let rng = Prng.create seed in
      let a = max 2 (n / 2) in
      let g = Graph.create n in
      for u = 0 to a - 1 do
        for v = a to n - 1 do
          if Prng.bernoulli rng 0.5 then Graph.add_edge g u v
        done
      done;
      holds (Lemmas.check_lemma8 g))

let suite =
  [
    case "lemma 6 families" test_lemma6_families;
    case "lemma 7 families" test_lemma7_families;
    case "lemma 8 families" test_lemma8_families;
    case "lemma 8 vacuous on triangles" test_lemma8_vacuous_on_triangles;
    case "case analysis isolates the flaw" test_case_analysis_isolates_the_flaw;
    test_lemma6_random;
    test_lemma7_random;
    test_lemma8_random;
  ]
