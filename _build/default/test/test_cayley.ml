open Test_helpers

let test_group_order () =
  check_int "order" 24 (Cayley.order (Cayley.group [ 2; 3; 4 ]));
  check_int "trivial" 1 (Cayley.order (Cayley.group [ 1 ]))

let test_encode_decode_roundtrip () =
  let g = Cayley.group [ 3; 4; 5 ] in
  for r = 0 to Cayley.order g - 1 do
    check_int "roundtrip" r (Cayley.encode g (Cayley.decode g r))
  done

let test_encode_normalizes () =
  let g = Cayley.group [ 5 ] in
  check_int "mod reduce" (Cayley.encode g [| 2 |]) (Cayley.encode g [| 7 |]);
  check_int "negative" (Cayley.encode g [| 3 |]) (Cayley.encode g [| -2 |])

let test_add_neg () =
  let g = Cayley.group [ 4; 6 ] in
  let a = [| 3; 5 |] and b = [| 2; 2 |] in
  Alcotest.(check (array int)) "add" [| 1; 1 |] (Cayley.add g a b);
  Alcotest.(check (array int)) "neg" [| 1; 1 |] (Cayley.neg g a);
  check_int "a + (-a) = 0" 0 (Cayley.encode g (Cayley.add g a (Cayley.neg g a)))

let test_symmetric () =
  let g = Cayley.group [ 7 ] in
  check_true "{1,-1} symmetric" (Cayley.is_symmetric g [ [| 1 |]; [| -1 |] ]);
  check_false "{1} not symmetric" (Cayley.is_symmetric g [ [| 1 |] ])

let test_cycle_as_cayley () =
  let g = Cayley.group [ 9 ] in
  let c = Cayley.cayley g [ [| 1 |]; [| -1 |] ] in
  check_true "Z9 with {±1} is C9" (Graph.equal c (Generators.cycle 9))

let test_hypercube_as_cayley () =
  let g = Cayley.group [ 2; 2; 2 ] in
  let gens = [ [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] ] in
  let c = Cayley.cayley g gens in
  check_true "Z2^3 with unit vectors is Q3" (Canon.isomorphic c (Generators.hypercube 3))

let test_torus_grid_as_cayley () =
  let g = Cayley.group [ 4; 5 ] in
  let gens = [ [| 1; 0 |]; [| -1; 0 |]; [| 0; 1 |]; [| 0; -1 |] ] in
  let c = Cayley.cayley g gens in
  check_int "n" 20 (Graph.n c);
  check_true "4-regular" (Graph.is_regular c && Graph.max_degree c = 4);
  check_true "connected" (Components.is_connected c)

let test_rejects_identity () =
  let g = Cayley.group [ 5 ] in
  Alcotest.check_raises "identity rejected"
    (Invalid_argument "Cayley.cayley: identity in connection set") (fun () ->
      ignore (Cayley.cayley g [ [| 0 |] ]))

let test_rejects_asymmetric () =
  let g = Cayley.group [ 5 ] in
  Alcotest.check_raises "asymmetric rejected"
    (Invalid_argument "Cayley.cayley: connection set not symmetric") (fun () ->
      ignore (Cayley.cayley g [ [| 1 |] ]))

let test_subgroup_even_sum () =
  (* the paper's torus subgroup: Z_{2k}^2 even-coordinate-sum elements *)
  let k = 3 in
  let g = Cayley.group [ 2 * k; 2 * k ] in
  let keep t = (t.(0) + t.(1)) mod 2 = 0 in
  let graph, tuples = Cayley.subgroup_cayley g ~keep (Cayley.paper_torus_generators k) in
  check_int "n = 2k^2" (2 * k * k) (Graph.n graph);
  check_true "4-regular" (Graph.is_regular graph && Graph.max_degree graph = 4);
  Array.iter (fun t -> check_true "members satisfy keep" (keep t)) tuples;
  (* must be isomorphic to the direct construction *)
  check_true "matches Constructions.torus"
    (Graph.n graph = Graph.n (Constructions.torus k)
    && Graph.m graph = Graph.m (Constructions.torus k)
    && Metrics.diameter graph = Metrics.diameter (Constructions.torus k))

let test_cayley_vertex_transitive () =
  (* spot-check: Cayley graphs are vertex-transitive *)
  let g = Cayley.group [ 10 ] in
  let c = Cayley.cayley g [ [| 2 |]; [| -2 |]; [| 5 |] ] in
  check_true "vertex transitive" (Canon.is_vertex_transitive c)

let test_cayley_regular_degree =
  qcheck ~count:30 "Cayley graph degree = |S| (no involutions collapsing)"
    QCheck2.Gen.(pair (int_range 5 12) (int_range 1 2)) (fun (n, s) ->
      let g = Cayley.group [ n ] in
      let gens =
        List.concat_map (fun i -> [ [| i |]; [| -i |] ]) (List.init s (fun i -> i + 1))
      in
      let c = Cayley.cayley g gens in
      (* offsets i and n-i distinct because s <= 2 < n/2 *)
      Graph.is_regular c && Graph.max_degree c = 2 * s)

let suite =
  [
    case "group order" test_group_order;
    case "encode/decode roundtrip" test_encode_decode_roundtrip;
    case "encode normalizes" test_encode_normalizes;
    case "add / neg" test_add_neg;
    case "symmetry check" test_symmetric;
    case "cycle as Cayley graph" test_cycle_as_cayley;
    case "hypercube as Cayley graph" test_hypercube_as_cayley;
    case "torus grid as Cayley graph" test_torus_grid_as_cayley;
    case "rejects identity generator" test_rejects_identity;
    case "rejects asymmetric set" test_rejects_asymmetric;
    case "even-sum subgroup = paper torus" test_subgroup_even_sum;
    case "vertex transitivity" test_cayley_vertex_transitive;
    test_cayley_regular_degree;
  ]
