open Test_helpers

let check_float = Alcotest.(check (float 1e-9))

let test_complete_graph_uniform () =
  let g = Generators.complete 8 in
  let p = Distance_uniform.best_uniform g in
  check_int "r = 1" 1 p.Distance_uniform.r;
  check_float "eps = 1/8" (1.0 /. 8.0) p.Distance_uniform.epsilon

let test_cycle_not_uniform () =
  let g = Generators.cycle 20 in
  let p = Distance_uniform.best_uniform g in
  (* every sphere has exactly 2 vertices except the antipode: eps = 1 - 2/20 *)
  check_float "eps" (1.0 -. (2.0 /. 20.0)) p.Distance_uniform.epsilon

let test_even_cycle_antipode () =
  (* C6: sphere sizes 2,2,1 — the best exact radius still captures only 2 *)
  let g = Generators.cycle 6 in
  check_float "eps at r=1" (1.0 -. (2.0 /. 6.0)) (Distance_uniform.epsilon_at g ~r:1);
  check_float "eps at antipode" (1.0 -. (1.0 /. 6.0)) (Distance_uniform.epsilon_at g ~r:3)

let test_almost_beats_exact () =
  let g = Generators.cycle 11 in
  let e = Distance_uniform.best_uniform g in
  let a = Distance_uniform.best_almost_uniform g in
  check_true "almost-uniform eps <= exact eps"
    (a.Distance_uniform.epsilon <= e.Distance_uniform.epsilon)

let test_is_uniform_thresholds () =
  let g = Generators.complete 10 in
  check_true "complete is 0.1-uniform" (Distance_uniform.is_distance_uniform g ~epsilon:0.1);
  check_false "cycle is not 0.1-uniform"
    (Distance_uniform.is_distance_uniform (Generators.cycle 16) ~epsilon:0.1)

let test_star_uniformity () =
  (* star: leaves see n-2 vertices at distance 2; center sees all at 1;
     so exact uniformity at r=2 fails only at the center *)
  let g = Generators.star 10 in
  let eps2 = Distance_uniform.epsilon_at g ~r:2 in
  (* center has zero vertices at distance 2 -> eps = 1 *)
  check_float "center ruins r=2" 1.0 eps2

let test_requires_connected () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Distance_uniform: graph must be connected") (fun () ->
      ignore (Distance_uniform.best_uniform (Graph.create 3)))

let test_pairwise_modal () =
  let g = Generators.complete 6 in
  let mode, frac = Distance_uniform.pairwise_modal_fraction g in
  check_int "mode" 1 mode;
  check_float "all pairs adjacent" 1.0 frac

let test_pairwise_vs_pervertex_gap () =
  (* the Section 5 non-example: pairwise concentration high, per-vertex poor *)
  let g = Generators.path_with_blobs ~arms:6 ~arm_len:8 ~blob:24 in
  let _, frac = Distance_uniform.pairwise_modal_fraction g in
  let p = Distance_uniform.best_almost_uniform g in
  check_true "pairwise concentrated" (frac > 0.4);
  check_true "per-vertex not uniform" (p.Distance_uniform.epsilon > 0.9)

let test_power_report () =
  let g = Generators.cycle 24 in
  let rep = Distance_uniform.power_report g ~x:3 in
  check_int "x recorded" 3 rep.Distance_uniform.x;
  check_int "diameter of power" 4 rep.Distance_uniform.diameter

let test_theorem13_power_choice () =
  let g = Generators.cycle 40 in
  let x = Distance_uniform.theorem13_power g in
  check_true "capped at diameter" (x <= 20);
  check_true "at least 1" (x >= 1);
  (* a diameter-2 graph gets x <= 2 *)
  check_true "small graphs small power"
    (Distance_uniform.theorem13_power (Generators.star 20) <= 2)

let test_skew_exact_small () =
  (* diameter-1 graph: d(a,c) = 1 <= p lg n + d(a,b) always -> no skew *)
  check_float "complete has no skew triples" 0.0
    (Distance_uniform.skew_triple_fraction (Generators.complete 8) ~p:0.5)

let test_skew_path () =
  (* long path with tiny p: triples with d(a,c) >> d(a,b) exist *)
  let f = Distance_uniform.skew_triple_fraction (Generators.path 20) ~p:0.1 in
  check_true "skew triples exist" (f > 0.0)

let test_epsilon_bounds =
  qcheck ~count:40 "epsilon in [0,1], r within diameter" (gen_connected ~min_n:2 ~max_n:16)
    (fun g ->
      let p = Distance_uniform.best_uniform g in
      let d = Option.get (Metrics.diameter g) in
      p.Distance_uniform.epsilon >= 0.0
      && p.Distance_uniform.epsilon <= 1.0
      && p.Distance_uniform.r >= 1
      && p.Distance_uniform.r <= max d 1)

let suite =
  [
    case "complete graph" test_complete_graph_uniform;
    case "cycle" test_cycle_not_uniform;
    case "even cycle antipode" test_even_cycle_antipode;
    case "almost <= exact" test_almost_beats_exact;
    case "threshold predicates" test_is_uniform_thresholds;
    case "star uniformity" test_star_uniformity;
    case "requires connectivity" test_requires_connected;
    case "pairwise modal" test_pairwise_modal;
    case "pairwise vs per-vertex gap" test_pairwise_vs_pervertex_gap;
    case "power report" test_power_report;
    case "theorem13 power choice" test_theorem13_power_choice;
    case "skew: complete graph" test_skew_exact_small;
    case "skew: path" test_skew_path;
    test_epsilon_bounds;
  ]
