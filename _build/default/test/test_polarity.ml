open Test_helpers

let test_is_prime () =
  check_true "2" (Polarity.is_prime 2);
  check_true "3" (Polarity.is_prime 3);
  check_true "13" (Polarity.is_prime 13);
  check_false "1" (Polarity.is_prime 1);
  check_false "4" (Polarity.is_prime 4);
  check_false "9" (Polarity.is_prime 9);
  check_false "0" (Polarity.is_prime 0)

let test_point_count () =
  check_int "q=2" 7 (Polarity.point_count 2);
  check_int "q=3" 13 (Polarity.point_count 3);
  check_int "q=5" 31 (Polarity.point_count 5)

let test_pg2_line_structure () =
  List.iter
    (fun q ->
      let lines = Polarity.pg2 q in
      check_int "line count" (Polarity.point_count q) (Array.length lines);
      Array.iter
        (fun (_, pts) ->
          check_int "points per line" (q + 1) (List.length pts);
          check_int "no duplicate points" (q + 1)
            (List.length (List.sort_uniq compare pts)))
        lines;
      (* any two distinct lines meet in exactly one point *)
      let n = Array.length lines in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let _, a = lines.(i) and _, b = lines.(j) in
          let inter = List.filter (fun p -> List.mem p b) a in
          check_int "lines meet in one point" 1 (List.length inter)
        done
      done)
    [ 2; 3 ]

let test_incidence_graph () =
  let q = 3 in
  let g = Polarity.incidence_graph q in
  check_int "bipartite size" (2 * 13) (Graph.n g);
  check_true "(q+1)-regular" (Graph.is_regular g && Graph.max_degree g = q + 1);
  Alcotest.(check (option int)) "girth 6" (Some 6) (Metrics.girth g);
  Alcotest.(check (option int)) "diameter 3" (Some 3) (Metrics.diameter g)

let test_polarity_graph_structure () =
  List.iter
    (fun q ->
      let g = Polarity.polarity_graph q in
      check_int "vertex count" (Polarity.point_count q) (Graph.n g);
      (* ER_q has q(q+1)^2/2 edges *)
      check_int "edge count" (q * (q + 1) * (q + 1) / 2) (Graph.m g);
      Alcotest.(check (option int)) "diameter 2" (Some 2) (Metrics.diameter g))
    [ 2; 3; 5 ]

let test_polarity_rejects_composite () =
  Alcotest.check_raises "composite q" (Invalid_argument "Polarity: q must be prime")
    (fun () -> ignore (Polarity.polarity_graph 4))

let test_polarity_common_neighbor_property () =
  (* in ER_q any two distinct vertices have at least one common neighbor
     (diameter 2 via the unique line through two points) *)
  let g = Polarity.polarity_graph 3 in
  let n = Graph.n g in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.mem_edge g u v) then begin
        let nu = Graph.neighbors g u in
        let common = Array.exists (fun w -> Graph.mem_edge g v w) nu in
        check_true "common neighbor" common
      end
    done
  done

let test_polarity_is_sum_equilibrium () =
  (* the Albers-et-al-style projective-plane equilibria, measured *)
  check_true "ER_3 sum equilibrium" (Equilibrium.is_sum_equilibrium (Polarity.polarity_graph 3));
  check_true "ER_2 sum equilibrium" (Equilibrium.is_sum_equilibrium (Polarity.polarity_graph 2))

let suite =
  [
    case "is_prime" test_is_prime;
    case "point count" test_point_count;
    case "PG(2,q) line structure" test_pg2_line_structure;
    case "incidence graph" test_incidence_graph;
    case "polarity graph structure" test_polarity_graph_structure;
    case "rejects composite order" test_polarity_rejects_composite;
    case "common-neighbor property" test_polarity_common_neighbor_property;
    slow_case "ER_q is a sum equilibrium" test_polarity_is_sum_equilibrium;
  ]
