open Test_helpers

let relabel g perm =
  (* perm.(v) is the new name of v *)
  let h = Graph.create (Graph.n g) in
  Graph.iter_edges (fun u v -> Graph.add_edge h perm.(u) perm.(v)) g;
  h

let test_refine_splits_degrees () =
  let g = Generators.star 5 in
  let c = Canon.refine g in
  check_true "center vs leaves" (c.(0) <> c.(1));
  check_true "leaves alike" (c.(1) = c.(2) && c.(2) = c.(3))

let test_refine_path () =
  let c = Canon.refine (Generators.path 5) in
  (* refinement separates by distance to the ends: {0,4}, {1,3}, {2} *)
  check_true "ends alike" (c.(0) = c.(4));
  check_true "next alike" (c.(1) = c.(3));
  check_false "middle separate" (c.(2) = c.(1));
  check_false "ends vs next" (c.(0) = c.(1))

let test_isomorphic_relabelings () =
  let rng = Prng.create 42 in
  let g = Generators.petersen () in
  for _ = 1 to 5 do
    let perm = Array.init 10 (fun i -> i) in
    Prng.shuffle_in_place rng perm;
    check_true "relabel is isomorphic" (Canon.isomorphic g (relabel g perm))
  done

let test_not_isomorphic () =
  (* same degree sequence (all 2): C6 vs two triangles *)
  let c6 = Generators.cycle 6 in
  let two_triangles = Graph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ] in
  check_false "C6 vs 2xC3" (Canon.isomorphic c6 two_triangles)

let test_not_isomorphic_subtle () =
  (* two 6-vertex trees with degree sequence [3;2;2;1;1;1]: the spider
     S(2,2,1) vs the caterpillar (P5 plus a leaf on its second vertex) *)
  let spider = Graph.of_edges 6 [ (0, 1); (1, 2); (0, 3); (3, 4); (0, 5) ] in
  let caterpillar = Graph.of_edges 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (1, 5) ] in
  check_true "same degree sequences"
    (Graph.degree_sequence spider = Graph.degree_sequence caterpillar);
  check_false "not isomorphic" (Canon.isomorphic spider caterpillar)

let test_canonical_form_equal_iff_isomorphic () =
  let a = Generators.cycle 5 in
  let b = relabel a [| 2; 0; 3; 1; 4 |] in
  check_true "same form" (Canon.canonical_form a = Canon.canonical_form b);
  check_false "different graphs different form"
    (Canon.canonical_form (Generators.path 5) = Canon.canonical_form a)

let test_automorphism_counts () =
  check_int "C5 dihedral" 10 (Canon.automorphism_count (Generators.cycle 5));
  check_int "K4 symmetric group" 24 (Canon.automorphism_count (Generators.complete 4));
  check_int "P3 reflection" 2 (Canon.automorphism_count (Generators.path 3));
  check_int "star K1,3 leaf permutations" 6 (Canon.automorphism_count (Generators.star 4));
  check_int "Petersen" 120 (Canon.automorphism_count (Generators.petersen ()))

let test_automorphisms_are_automorphisms () =
  let g = Generators.cycle 6 in
  List.iter
    (fun sigma ->
      Graph.iter_edges
        (fun u v -> check_true "edge preserved" (Graph.mem_edge g sigma.(u) sigma.(v)))
        g)
    (Canon.automorphisms g)

let test_orbits () =
  let g = Generators.double_star 2 2 in
  let o = Canon.orbits g in
  (* roots {0,1} form one orbit, leaves {2..5} another *)
  check_true "roots together" (o.(0) = o.(1));
  check_true "leaves together" (o.(2) = o.(3) && o.(3) = o.(4) && o.(4) = o.(5));
  check_false "roots vs leaves" (o.(0) = o.(2))

let test_vertex_transitive () =
  check_true "cycle" (Canon.is_vertex_transitive (Generators.cycle 7));
  check_true "complete" (Canon.is_vertex_transitive (Generators.complete 5));
  check_true "petersen" (Canon.is_vertex_transitive (Generators.petersen ()));
  check_true "hypercube" (Canon.is_vertex_transitive (Generators.hypercube 3));
  check_false "path" (Canon.is_vertex_transitive (Generators.path 4));
  check_false "star" (Canon.is_vertex_transitive (Generators.star 4))

let test_size_cap () =
  Alcotest.check_raises "cap enforced"
    (Invalid_argument "Canon: graph exceeds max_search_vertices") (fun () ->
      ignore (Canon.canonical_form (Generators.cycle 17)))

let test_isomorphic_random_relabel =
  qcheck ~count:60 "random relabelings are isomorphic"
    QCheck2.Gen.(pair (gen_connected ~min_n:2 ~max_n:9) (int_range 0 10_000))
    (fun (g, seed) ->
      let rng = Prng.create seed in
      let perm = Array.init (Graph.n g) (fun i -> i) in
      Prng.shuffle_in_place rng perm;
      Canon.isomorphic g (relabel g perm))

let test_edge_toggle_breaks_isomorphism =
  qcheck ~count:60 "removing an edge breaks isomorphism"
    (gen_connected ~min_n:3 ~max_n:9) (fun g ->
      match Graph.edges g with
      | (u, v) :: _ ->
        let h = Graph.copy g in
        Graph.remove_edge h u v;
        not (Canon.isomorphic g h)
      | [] -> true)

let suite =
  [
    case "refine splits degrees" test_refine_splits_degrees;
    case "refine path" test_refine_path;
    case "isomorphic relabelings" test_isomorphic_relabelings;
    case "non-isomorphic (components)" test_not_isomorphic;
    case "non-isomorphic (same degrees)" test_not_isomorphic_subtle;
    case "canonical form equality" test_canonical_form_equal_iff_isomorphic;
    case "automorphism counts" test_automorphism_counts;
    case "automorphisms preserve edges" test_automorphisms_are_automorphisms;
    case "orbits" test_orbits;
    case "vertex transitivity" test_vertex_transitive;
    case "size cap" test_size_cap;
    test_isomorphic_random_relabel;
    test_edge_toggle_breaks_isomorphism;
  ]
