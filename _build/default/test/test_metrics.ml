open Test_helpers

let check_opt_int = Alcotest.(check (option int))

let test_diameter_families () =
  check_opt_int "path" (Some 5) (Metrics.diameter (Generators.path 6));
  check_opt_int "cycle even" (Some 3) (Metrics.diameter (Generators.cycle 6));
  check_opt_int "cycle odd" (Some 3) (Metrics.diameter (Generators.cycle 7));
  check_opt_int "star" (Some 2) (Metrics.diameter (Generators.star 5));
  check_opt_int "complete" (Some 1) (Metrics.diameter (Generators.complete 4));
  check_opt_int "K1" (Some 0) (Metrics.diameter (Generators.star 1));
  check_opt_int "disconnected" None (Metrics.diameter (Graph.of_edges 3 [ (0, 1) ]))

let test_radius () =
  check_opt_int "path radius" (Some 3) (Metrics.radius (Generators.path 6));
  check_opt_int "star radius" (Some 1) (Metrics.radius (Generators.star 5));
  check_opt_int "K1 radius" (Some 0) (Metrics.radius (Generators.star 1))

let test_eccentricities () =
  match Metrics.eccentricities (Generators.path 4) with
  | Some e -> Alcotest.(check (array int)) "path eccs" [| 3; 2; 2; 3 |] e
  | None -> Alcotest.fail "connected"

let test_wiener () =
  (* star K1,3: pairs at distance 1: 3 edges; leaf pairs at 2: 3 pairs -> 3 + 6 *)
  check_opt_int "star wiener" (Some 9) (Metrics.wiener_index (Generators.star 4));
  (* path P4: 1+1+1 + 2+2 + 3 = 10 *)
  check_opt_int "path wiener" (Some 10) (Metrics.wiener_index (Generators.path 4));
  check_opt_int "disconnected" None (Metrics.wiener_index (Graph.create 2))

let test_average_distance () =
  match Metrics.average_distance (Generators.complete 5) with
  | Some a -> Alcotest.(check (float 1e-9)) "complete avg" 1.0 a
  | None -> Alcotest.fail "connected"

let test_girth () =
  check_opt_int "tree has none" None (Metrics.girth (Generators.star 6));
  check_opt_int "triangle" (Some 3) (Metrics.girth (Generators.complete 4));
  check_opt_int "C5" (Some 5) (Metrics.girth (Generators.cycle 5));
  check_opt_int "C9" (Some 9) (Metrics.girth (Generators.cycle 9));
  check_opt_int "Petersen girth 5" (Some 5) (Metrics.girth (Generators.petersen ()));
  check_opt_int "hypercube girth 4" (Some 4) (Metrics.girth (Generators.hypercube 3));
  check_opt_int "K3,3 girth 4" (Some 4) (Metrics.girth (Generators.complete_bipartite 3 3));
  (* triangle with a pendant path: girth still 3 *)
  check_opt_int "lollipop" (Some 3) (Metrics.girth (Generators.lollipop 3 4))

let test_distance_histogram () =
  let g = Generators.cycle 6 in
  Alcotest.(check (array int)) "C6 spheres" [| 1; 2; 2; 1 |] (Metrics.distance_histogram g 0);
  let s = Generators.star 5 in
  Alcotest.(check (array int)) "star center" [| 1; 4 |] (Metrics.distance_histogram s 0);
  Alcotest.(check (array int)) "star leaf" [| 1; 1; 3 |] (Metrics.distance_histogram s 1)

let test_ball_sizes () =
  Alcotest.(check (array int)) "C6 balls" [| 1; 3; 5; 6 |]
    (Metrics.ball_sizes (Generators.cycle 6) 0)

let test_local_metrics () =
  let g = Generators.path 4 in
  check_opt_int "endpoint local diameter" (Some 3) (Metrics.local_diameter g 0);
  check_opt_int "middle local diameter" (Some 2) (Metrics.local_diameter g 1);
  check_opt_int "endpoint sum" (Some 6) (Metrics.sum_distance g 0);
  check_opt_int "middle sum" (Some 4) (Metrics.sum_distance g 1);
  check_opt_int "disconnected" None (Metrics.sum_distance (Graph.of_edges 3 [ (0, 1) ]) 0)

let test_distance_formula_check () =
  let g = Generators.cycle 8 in
  let good u v =
    let d = abs (u - v) in
    min d (8 - d)
  in
  check_true "correct formula accepted" (Metrics.is_distance_formula g good);
  check_false "wrong formula rejected"
    (Metrics.is_distance_formula g (fun u v -> abs (u - v)))

let test_diameter_vs_eccentricities =
  qcheck ~count:50 "diameter = max ecc, radius = min ecc"
    (gen_connected ~min_n:2 ~max_n:20) (fun g ->
      match Metrics.eccentricities g, Metrics.diameter g, Metrics.radius g with
      | Some e, Some d, Some r ->
        d = Array.fold_left max e.(0) e && r = Array.fold_left min e.(0) e
      | _ -> false)

let test_radius_diameter_bounds =
  qcheck ~count:50 "r <= d <= 2r" (gen_connected ~min_n:2 ~max_n:20) (fun g ->
      match Metrics.diameter g, Metrics.radius g with
      | Some d, Some r -> r <= d && d <= 2 * r
      | _ -> false)

let test_histogram_sums_to_n =
  qcheck ~count:50 "sphere sizes sum to n" (gen_connected ~min_n:1 ~max_n:20) (fun g ->
      let h = Metrics.distance_histogram g 0 in
      Array.fold_left ( + ) 0 h = Graph.n g)

let suite =
  [
    case "diameter families" test_diameter_families;
    case "radius" test_radius;
    case "eccentricities" test_eccentricities;
    case "wiener index" test_wiener;
    case "average distance" test_average_distance;
    case "girth" test_girth;
    case "distance histogram" test_distance_histogram;
    case "ball sizes" test_ball_sizes;
    case "local diameter / sum" test_local_metrics;
    case "distance formula checker" test_distance_formula_check;
    test_diameter_vs_eccentricities;
    test_radius_diameter_bounds;
    test_histogram_sums_to_n;
  ]
