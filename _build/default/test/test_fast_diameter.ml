open Test_helpers

let check_opt_int = Alcotest.(check (option int))

let test_families () =
  List.iter
    (fun g -> check_opt_int "matches Metrics.diameter" (Metrics.diameter g) (Fast_diameter.diameter g))
    [
      Generators.path 17;
      Generators.cycle 12;
      Generators.star 9;
      Generators.complete 7;
      Generators.petersen ();
      Generators.hypercube 5;
      Constructions.torus 5;
      Constructions.sum_diameter3_minimal;
      Generators.lollipop 5 7;
      Generators.path_with_blobs ~arms:3 ~arm_len:5 ~blob:4;
    ]

let test_trivial () =
  check_opt_int "K1" (Some 0) (Fast_diameter.diameter (Graph.create 1));
  check_opt_int "empty" None (Fast_diameter.diameter (Graph.create 0));
  check_opt_int "disconnected" None (Fast_diameter.diameter (Graph.create 3))

let test_lower_bound_is_lower () =
  List.iter
    (fun g ->
      match Fast_diameter.double_sweep_lower_bound g, Metrics.diameter g with
      | Some lb, Some d -> check_true "lb <= diameter" (lb <= d)
      | None, None -> ()
      | _ -> Alcotest.fail "connectivity disagreement")
    [ Generators.cycle 13; Constructions.torus 4; Generators.lollipop 4 6 ]

let test_sweep_tight_on_trees () =
  (* the double sweep is exact on trees *)
  let rng = Prng.create 9 in
  for _ = 1 to 20 do
    let g = Random_graphs.tree rng 30 in
    check_opt_int "tree sweep exact" (Metrics.diameter g)
      (Fast_diameter.double_sweep_lower_bound g)
  done

let test_stats_savings () =
  (* on a long path iFUB needs only a handful of BFS runs *)
  match Fast_diameter.diameter_with_stats (Generators.path 200) with
  | Some s ->
    check_int "diameter" 199 s.Fast_diameter.diameter;
    check_true "few BFS runs" (s.Fast_diameter.bfs_runs < 20)
  | None -> Alcotest.fail "connected"

let test_matches_naive_random =
  qcheck ~count:150 "iFUB = naive on random graphs" (gen_any_graph ~min_n:1 ~max_n:25)
    (fun g -> Fast_diameter.diameter g = Metrics.diameter g)

let test_matches_naive_connected =
  qcheck ~count:100 "iFUB = naive on connected graphs" (gen_connected ~min_n:2 ~max_n:30)
    (fun g -> Fast_diameter.diameter g = Metrics.diameter g)

let suite =
  [
    case "families" test_families;
    case "trivial graphs" test_trivial;
    case "sweep is a lower bound" test_lower_bound_is_lower;
    case "sweep exact on trees" test_sweep_tight_on_trees;
    case "BFS savings on paths" test_stats_savings;
    test_matches_naive_random;
    test_matches_naive_connected;
  ]
