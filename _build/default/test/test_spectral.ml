open Test_helpers

let check_close msg expected actual =
  Alcotest.(check (float 1e-3)) msg expected actual

let test_spectral_radius_known () =
  check_close "complete K6" 5.0 (Spectral.adjacency_spectral_radius (Generators.complete 6));
  check_close "cycle" 2.0 (Spectral.adjacency_spectral_radius (Generators.cycle 9));
  check_close "star K1,8" (sqrt 8.0) (Spectral.adjacency_spectral_radius (Generators.star 9));
  check_close "hypercube Q4" 4.0 (Spectral.adjacency_spectral_radius (Generators.hypercube 4));
  check_close "empty" 0.0 (Spectral.adjacency_spectral_radius (Graph.create 5))

let test_algebraic_connectivity_known () =
  check_close "complete K6" 6.0 (Spectral.algebraic_connectivity (Generators.complete 6));
  check_close "C8" (2.0 -. (2.0 *. cos (2.0 *. Float.pi /. 8.0)))
    (Spectral.algebraic_connectivity (Generators.cycle 8));
  check_close "P4" (2.0 -. (2.0 *. cos (Float.pi /. 4.0)))
    (Spectral.algebraic_connectivity (Generators.path 4));
  check_close "Q3" 2.0 (Spectral.algebraic_connectivity (Generators.hypercube 3));
  check_close "Petersen" 2.0 (Spectral.algebraic_connectivity (Generators.petersen ()))

let test_disconnected_zero () =
  check_close "two components" 0.0
    (Spectral.algebraic_connectivity (Graph.of_edges 4 [ (0, 1); (2, 3) ]));
  check_close "isolated vertex" 0.0
    (Spectral.algebraic_connectivity (Graph.of_edges 3 [ (0, 1) ]))

let test_second_eigenvalue () =
  check_close "Petersen lambda2" 2.0
    (Spectral.second_adjacency_eigenvalue (Generators.petersen ()));
  (* K_n: second eigenvalue is -1, so |.| = 1 *)
  check_close "K6" 1.0 (Spectral.second_adjacency_eigenvalue (Generators.complete 6));
  (* C4: eigenvalues 2, 0, 0, -2: second-largest absolute is 2 *)
  check_close "C4 bipartite" 2.0 (Spectral.second_adjacency_eigenvalue (Generators.cycle 4));
  Alcotest.check_raises "non-regular rejected"
    (Invalid_argument "Spectral.second_adjacency_eigenvalue: graph must be regular")
    (fun () -> ignore (Spectral.second_adjacency_eigenvalue (Generators.star 4)))

let test_diameter_bound () =
  (* the bound is valid wherever defined *)
  List.iter
    (fun g ->
      match Spectral.spectral_diameter_bound g with
      | Some b ->
        let d = Option.get (Metrics.diameter g) in
        check_true "bound holds" (float_of_int d <= b)
      | None -> ())
    [
      Generators.petersen ();
      Generators.complete 8;
      Generators.cycle 9;
      Polarity.polarity_graph 3 |> fun g -> g;
    ];
  (* bipartite regular graphs degenerate to None *)
  check_true "hypercube degenerates" (Spectral.spectral_diameter_bound (Generators.hypercube 3) = None);
  check_true "non-regular none" (Spectral.spectral_diameter_bound (Generators.star 5) = None)

let test_connectivity_positive_iff_connected =
  qcheck ~count:30 "fiedler > 0 iff connected" (gen_any_graph ~min_n:2 ~max_n:12)
    (fun g ->
      let f = Spectral.algebraic_connectivity g in
      if Components.is_connected g then f > 1e-6 else f < 1e-6)

let test_radius_bounds_degree =
  qcheck ~count:30 "avg degree <= lambda1 <= max degree"
    (gen_connected ~min_n:2 ~max_n:15) (fun g ->
      let l1 = Spectral.adjacency_spectral_radius g in
      let avg = 2.0 *. float_of_int (Graph.m g) /. float_of_int (Graph.n g) in
      l1 >= avg -. 1e-3 && l1 <= float_of_int (Graph.max_degree g) +. 1e-3)

let suite =
  [
    case "spectral radius (known values)" test_spectral_radius_known;
    case "algebraic connectivity (known values)" test_algebraic_connectivity_known;
    case "disconnected gives zero" test_disconnected_zero;
    case "second adjacency eigenvalue" test_second_eigenvalue;
    case "spectral diameter bound" test_diameter_bound;
    test_connectivity_positive_iff_connected;
    test_radius_bounds_degree;
  ]
