open Test_helpers

let test_render_shape () =
  let t =
    Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("v", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  check_true "has title" (String.length out > 0 && String.sub out 0 7 = "== demo");
  let lines = String.split_on_char '\n' out in
  let widths = List.filter (fun l -> String.length l > 0) lines |> List.map String.length in
  (match widths with
  | _ :: rest ->
    let all_equal = List.for_all (fun w -> w = List.hd rest) rest in
    check_true "aligned rows" all_equal
  | [] -> Alcotest.fail "no output")

let test_alignment () =
  let t = Table.create ~title:"x" ~columns:[ ("n", Table.Right) ] in
  Table.add_row t [ "1" ];
  Table.add_row t [ "100" ];
  let out = Table.render t in
  check_true "right aligned pads short cells" (String.length out > 0);
  (* the row containing "1" must pad it to width 3: "|   1 |" *)
  let has_padded =
    String.split_on_char '\n' out |> List.exists (fun l -> l = "|   1 |")
  in
  check_true "padded cell present" has_padded

let test_row_arity_checked () =
  let t = Table.create ~title:"x" ~columns:[ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "only one" ])

let test_rows_in_order () =
  let t = Table.create ~title:"x" ~columns:[ ("a", Table.Left) ] in
  Table.add_rows t [ [ "first" ]; [ "second" ] ];
  let out = Table.render t in
  let first_idx =
    match String.index_opt out 'f' with Some i -> i | None -> max_int
  in
  let second_idx =
    match String.index_opt out 's' with Some i -> i | None -> -1
  in
  check_true "order preserved" (first_idx < second_idx)

let test_cells () =
  check_true "int" (Table.cell_int 42 = "42");
  check_true "float digits" (Table.cell_float ~digits:2 3.14159 = "3.14");
  check_true "bool yes" (Table.cell_bool true = "yes");
  check_true "bool no" (Table.cell_bool false = "no")

let suite =
  [
    case "render shape" test_render_shape;
    case "right alignment" test_alignment;
    case "row arity checked" test_row_arity_checked;
    case "row order" test_rows_in_order;
    case "cell formatting" test_cells;
  ]
