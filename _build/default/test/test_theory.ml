open Test_helpers

let test_lg () =
  Alcotest.(check (float 1e-9)) "lg 1" 0.0 (Theory.lg 1);
  Alcotest.(check (float 1e-9)) "lg 8" 3.0 (Theory.lg 8);
  Alcotest.check_raises "lg 0" (Invalid_argument "Theory.lg") (fun () ->
      ignore (Theory.lg 0))

let test_theorem9_bound_monotone () =
  check_true "grows" (Theory.theorem9_bound 1000 > Theory.theorem9_bound 100);
  (* and is subpolynomial: bound(n) / n -> 0; spot check *)
  check_true "subpolynomial at large n"
    (Theory.theorem9_bound 1_000_000 < 1_000_000.0 /. 10.0)

let test_theorem9_recurrence () =
  let b100 = Theory.theorem9_recurrence_bound 100 in
  check_true "positive" (b100 > 0);
  check_true "monotone-ish over decades"
    (Theory.theorem9_recurrence_bound 10_000 >= b100);
  check_int "trivial below 2" 0 (Theory.theorem9_recurrence_bound 1)

let test_lemma10_on_small_diameter () =
  (* any diameter <= 2 lg n graph reports Small_diameter *)
  match Theory.lemma10_check (Generators.star 16) 0 with
  | Some Theory.Small_diameter -> ()
  | Some (Theory.Edge _) -> Alcotest.fail "expected small diameter"
  | None -> Alcotest.fail "lemma must hold"

let test_lemma10_on_high_diameter_equilibrium_fails_gracefully () =
  (* a long path is NOT an equilibrium; the lemma may or may not find an
     edge, but must not crash and must return a well-formed result *)
  match Theory.lemma10_check (Generators.path 40) 0 with
  | Some (Theory.Edge { x; y; removal_cost }) ->
    check_true "edge exists" (Graph.mem_edge (Generators.path 40) x y);
    check_true "cost nonneg" (removal_cost >= 0)
  | Some Theory.Small_diameter | None -> ()

let test_lemma10_budget_respected () =
  (* on the verified high-diameter equilibria the found edge respects the
     budget by construction; spot-check the witness *)
  let g = Constructions.sum_diameter3_witness in
  for u = 0 to Graph.n g - 1 do
    match Theory.lemma10_check g u with
    | Some _ -> ()
    | None -> Alcotest.fail "Lemma 10 must hold on sum equilibria"
  done

let test_corollary11 () =
  (* star: adding a leaf-leaf edge improves that leaf's sum by exactly 1 *)
  check_int "star max gain" 1 (Theory.corollary11_max_gain (Generators.star 8));
  (* complete graph: no edges to add *)
  check_int "complete" 0 (Theory.corollary11_max_gain (Generators.complete 5));
  (* path: huge gains possible, but the path is not an equilibrium *)
  check_true "path gains big" (Theory.corollary11_max_gain (Generators.path 20) > 20)

let test_corollary11_budget_on_equilibria =
  qcheck ~count:10 "equilibria respect the 5 n lg n budget"
    (gen_connected ~min_n:6 ~max_n:14) (fun g0 ->
      let r = Dynamics.converge_sum g0 in
      r.Dynamics.outcome <> Dynamics.Converged
      ||
      let g = r.Dynamics.final in
      float_of_int (Theory.corollary11_max_gain g)
      <= Theory.corollary11_budget (Graph.n g))

let test_max_lower_bound_diameter () =
  Alcotest.(check (float 1e-9)) "dim 2" 3.0 (Theory.max_lower_bound_diameter ~dim:2 18);
  Alcotest.(check (float 1e-9)) "dim 3" 3.0 (Theory.max_lower_bound_diameter ~dim:3 54)

let test_theorem15_bound () =
  let b = Theory.theorem15_bound ~n:1024 ~epsilon:0.1 in
  check_true "finite positive" (b > 0.0 && b < 100.0);
  (* smaller epsilon gives smaller bound *)
  check_true "monotone in epsilon"
    (Theory.theorem15_bound ~n:1024 ~epsilon:0.01 < b);
  Alcotest.check_raises "epsilon range"
    (Invalid_argument "Theory.theorem15_bound: need 0 < epsilon < 1/4") (fun () ->
      ignore (Theory.theorem15_bound ~n:10 ~epsilon:0.3))

let test_theorem13_diameter_bound () =
  let b = Theory.theorem13_diameter_bound ~n:100 ~epsilon:0.5 ~d:1000 in
  check_true "positive" (b >= 1.0);
  check_true "sublinear in d" (b < 1000.0)

let suite =
  [
    case "lg" test_lg;
    case "theorem 9 smooth bound" test_theorem9_bound_monotone;
    case "theorem 9 recurrence bound" test_theorem9_recurrence;
    case "lemma 10: small diameter" test_lemma10_on_small_diameter;
    case "lemma 10: high diameter" test_lemma10_on_high_diameter_equilibrium_fails_gracefully;
    case "lemma 10: on witness equilibrium" test_lemma10_budget_respected;
    case "corollary 11 gains" test_corollary11;
    test_corollary11_budget_on_equilibria;
    case "max lower bound diameter" test_max_lower_bound_diameter;
    case "theorem 15 bound" test_theorem15_bound;
    case "theorem 13 bound" test_theorem13_diameter_bound;
  ]
