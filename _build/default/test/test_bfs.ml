open Test_helpers

let test_path_distances () =
  let g = Generators.path 6 in
  let d = Bfs.distances g 0 in
  Alcotest.(check (array int)) "line distances" [| 0; 1; 2; 3; 4; 5 |] d

let test_cycle_distances () =
  let g = Generators.cycle 6 in
  let d = Bfs.distances g 0 in
  Alcotest.(check (array int)) "cycle distances" [| 0; 1; 2; 3; 2; 1 |] d

let test_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let d = Bfs.distances g 0 in
  check_int "reachable" 1 d.(1);
  check_int "unreachable marker" Bfs.unreachable d.(2);
  let ws = Bfs.create_workspace 4 in
  let r = Bfs.reach ws g 0 in
  check_int "reached" 2 r.Bfs.reached

let test_reach_summaries () =
  let g = Generators.star 5 in
  let ws = Bfs.create_workspace 5 in
  let center = Bfs.reach ws g 0 in
  check_int "center sum" 4 center.Bfs.sum;
  check_int "center ecc" 1 center.Bfs.ecc;
  let leaf = Bfs.reach ws g 1 in
  check_int "leaf sum" (1 + (2 * 3)) leaf.Bfs.sum;
  check_int "leaf ecc" 2 leaf.Bfs.ecc

let test_workspace_reuse () =
  let ws = Bfs.create_workspace 10 in
  let g1 = Generators.path 10 in
  Bfs.run ws g1 0;
  check_int "first run" 9 (Bfs.ecc ws);
  let g2 = Generators.star 10 in
  Bfs.run ws g2 0;
  check_int "second run overwrites" 1 (Bfs.ecc ws);
  check_int "dist valid for current gen" 1 (Bfs.dist ws 5)

let test_workspace_smaller_graph () =
  (* a workspace sized for 10 must work on a 3-vertex graph *)
  let ws = Bfs.create_workspace 10 in
  let g = Generators.path 3 in
  Bfs.run ws g 2;
  check_int "dist" 2 (Bfs.dist ws 0)

let test_workspace_too_small () =
  let ws = Bfs.create_workspace 2 in
  Alcotest.check_raises "workspace too small"
    (Invalid_argument "Bfs.run: workspace too small") (fun () ->
      Bfs.run ws (Generators.path 3) 0)

let test_distances_into () =
  let ws = Bfs.create_workspace 5 in
  let out = Array.make 5 (-7) in
  Bfs.distances_into ws (Generators.path 5) 2 out;
  Alcotest.(check (array int)) "into buffer" [| 2; 1; 0; 1; 2 |] out

let test_all_pairs_symmetric () =
  let g = Generators.grid 3 4 in
  let d = Bfs.all_pairs g in
  for u = 0 to 11 do
    check_int "diagonal" 0 d.(u).(u);
    for v = 0 to 11 do
      check_int "symmetric" d.(u).(v) d.(v).(u)
    done
  done

let test_connected_from () =
  let ws = Bfs.create_workspace 6 in
  check_true "cycle connected" (Bfs.connected_from ws (Generators.cycle 6) 0);
  check_false "two components" (Bfs.connected_from ws (Graph.of_edges 6 [ (0, 1) ]) 0)

let test_against_reference =
  qcheck ~count:200 "matches textbook BFS" (gen_any_graph ~min_n:1 ~max_n:25) (fun g ->
      let src = 0 in
      let fast = Bfs.distances g src in
      let slow = reference_distances g src in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        let f = if fast.(v) = Bfs.unreachable then -1 else fast.(v) in
        if f <> slow.(v) then ok := false
      done;
      !ok)

let test_triangle_inequality =
  qcheck ~count:50 "BFS distances obey triangle inequality"
    (gen_connected ~min_n:3 ~max_n:15) (fun g ->
      let d = Bfs.all_pairs g in
      let n = Graph.n g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if d.(a).(c) > d.(a).(b) + d.(b).(c) then ok := false
          done
        done
      done;
      !ok)

let suite =
  [
    case "path distances" test_path_distances;
    case "cycle distances" test_cycle_distances;
    case "disconnected" test_disconnected;
    case "reach summaries" test_reach_summaries;
    case "workspace reuse" test_workspace_reuse;
    case "workspace on smaller graph" test_workspace_smaller_graph;
    case "workspace too small" test_workspace_too_small;
    case "distances_into" test_distances_into;
    case "all_pairs symmetric" test_all_pairs_symmetric;
    case "connected_from" test_connected_from;
    test_against_reference;
    test_triangle_inequality;
  ]
