(* Shared checkers and QCheck generators. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_true msg b = check_bool msg true b

let check_false msg b = check_bool msg false b

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Graphs are generated from (size, seed) pairs so QCheck sees a simple
   integer space while the graphs stay deterministic per seed. *)

let gen_sized_seed ~min_n ~max_n =
  QCheck2.Gen.(pair (int_range min_n max_n) (int_range 0 1_000_000))

let gen_tree ~min_n ~max_n =
  QCheck2.Gen.map
    (fun (n, seed) -> Random_graphs.tree (Prng.create seed) n)
    (gen_sized_seed ~min_n ~max_n)

let gen_connected ~min_n ~max_n =
  QCheck2.Gen.map
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let extra = if n <= 2 then 0 else Prng.int rng n in
      let max_m = n * (n - 1) / 2 in
      Random_graphs.connected_gnm rng n (min max_m (n - 1 + extra)))
    (gen_sized_seed ~min_n ~max_n)

let gen_any_graph ~min_n ~max_n =
  QCheck2.Gen.map
    (fun (n, seed) ->
      let rng = Prng.create seed in
      Random_graphs.gnp rng n (Prng.float rng 1.0))
    (gen_sized_seed ~min_n ~max_n)

(* Reference BFS: textbook queue-and-list implementation, used to validate
   the optimized workspace BFS. *)
let reference_distances g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w q
        end)
      (Array.to_list (Graph.neighbors g v))
  done;
  dist
