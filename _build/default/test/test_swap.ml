open Test_helpers

let p4 () = Generators.path 4

let test_applicable () =
  let g = p4 () in
  check_true "valid swap"
    (Swap.is_applicable g (Swap.Swap { actor = 0; drop = 1; add = 3 }));
  check_false "add already neighbor"
    (Swap.is_applicable g (Swap.Swap { actor = 1; drop = 0; add = 2 }));
  check_false "drop not neighbor"
    (Swap.is_applicable g (Swap.Swap { actor = 0; drop = 2; add = 3 }));
  check_false "self add"
    (Swap.is_applicable g (Swap.Swap { actor = 0; drop = 1; add = 0 }));
  check_true "delete" (Swap.is_applicable g (Swap.Delete { actor = 0; drop = 1 }));
  check_false "delete absent" (Swap.is_applicable g (Swap.Delete { actor = 0; drop = 3 }))

let test_apply_undo () =
  let g = p4 () in
  let original = Graph.copy g in
  let mv = Swap.Swap { actor = 0; drop = 1; add = 3 } in
  Swap.apply g mv;
  check_true "edge moved" (Graph.mem_edge g 0 3 && not (Graph.mem_edge g 0 1));
  check_int "m preserved" 3 (Graph.m g);
  Swap.undo g mv;
  check_true "restored" (Graph.equal g original)

let test_apply_delete_undo () =
  let g = p4 () in
  let original = Graph.copy g in
  let mv = Swap.Delete { actor = 1; drop = 2 } in
  Swap.apply g mv;
  check_int "m reduced" 2 (Graph.m g);
  Swap.undo g mv;
  check_true "restored" (Graph.equal g original)

let test_apply_rejects () =
  let g = p4 () in
  Alcotest.check_raises "inapplicable"
    (Invalid_argument "Swap.apply: move not applicable: 0: 0-2 -> 0-3") (fun () ->
      Swap.apply g (Swap.Swap { actor = 0; drop = 2; add = 3 }))

let test_delta_improving () =
  (* P4: endpoint 0 re-hanging from 1 to 2 improves its sum: distances
     (1,2,3)=6 -> 0~2: (2,1,2)=5 *)
  let g = p4 () in
  let w = Bfs.create_workspace 4 in
  let d = Swap.delta w Usage_cost.Sum g (Swap.Swap { actor = 0; drop = 1; add = 2 }) in
  check_int "delta" (-1) d;
  check_true "graph unchanged" (Graph.equal g (p4 ()))

let test_delta_max () =
  let g = p4 () in
  let w = Bfs.create_workspace 4 in
  (* 0 re-hangs to center 2: ecc 3 -> 2 *)
  check_int "max delta" (-1)
    (Swap.delta w Usage_cost.Max g (Swap.Swap { actor = 0; drop = 1; add = 2 }))

let test_delta_disconnecting () =
  let g = p4 () in
  let w = Bfs.create_workspace 4 in
  (* deleting the bridge disconnects: infinite after-cost *)
  let d = Swap.delta w Usage_cost.Sum g (Swap.Delete { actor = 1; drop = 2 }) in
  check_true "hugely positive" (d > 1_000_000)

let test_iter_moves_complete_enumeration () =
  let g = p4 () in
  let moves = ref [] in
  Swap.iter_moves g 1 (fun mv -> moves := mv :: !moves);
  (* vertex 1 has neighbors {0, 2}, non-neighbors {3}: 2 swaps *)
  check_int "count" 2 (List.length !moves);
  check_int "matches move_count" 2 (Swap.move_count g 1);
  List.iter (fun mv -> check_true "applicable" (Swap.is_applicable g mv)) !moves

let test_iter_moves_with_deletions () =
  let g = p4 () in
  let dels = ref 0 and swaps = ref 0 in
  Swap.iter_moves ~include_deletions:true g 1 (fun mv ->
      match mv with Swap.Delete _ -> incr dels | Swap.Swap _ -> incr swaps);
  check_int "deletions" 2 !dels;
  check_int "swaps" 2 !swaps

let test_iter_moves_mutation_safe () =
  (* the callback applies and undoes each move — enumeration must still
     cover every (drop, add) pair exactly once (regression for the live-row
     iteration bug) *)
  let g = Generators.cycle 5 in
  let w = Bfs.create_workspace 5 in
  let seen = Hashtbl.create 16 in
  Swap.iter_moves g 0 (fun mv ->
      ignore (Swap.delta w Usage_cost.Sum g mv);
      (match mv with
      | Swap.Swap { drop; add; _ } -> Hashtbl.replace seen (drop, add) ()
      | Swap.Delete _ -> ());
      ());
  (* neighbors {1,4} x non-neighbors {2,3} = 4 distinct pairs *)
  check_int "all pairs enumerated" 4 (Hashtbl.length seen)

let test_best_move () =
  let g = Generators.path 5 in
  let w = Bfs.create_workspace 5 in
  (match Swap.best_move w Usage_cost.Sum g 0 with
  | Some (Swap.Swap { actor = 0; drop = 1; add }, d ) ->
    (* best re-hang for the endpoint is the center *)
    check_int "best add is center" 2 add;
    check_int "best delta" (-2) d
  | _ -> Alcotest.fail "expected improving move");
  (* center of a star has no moves at all *)
  let s = Generators.star 5 in
  check_true "no improving move for star center"
    (Swap.best_move w Usage_cost.Sum s 0 = None)

let test_first_improving () =
  let g = Generators.path 5 in
  let w = Bfs.create_workspace 5 in
  match Swap.first_improving_move w Usage_cost.Sum g 0 with
  | Some (mv, d) ->
    check_true "applicable" (Swap.is_applicable g mv);
    check_true "improving" (d < 0)
  | None -> Alcotest.fail "path endpoint has improving moves"

let test_random_improving_uniformish () =
  let g = Generators.path 7 in
  let w = Bfs.create_workspace 7 in
  let rng = Prng.create 77 in
  let seen = Hashtbl.create 8 in
  for _ = 1 to 200 do
    match Swap.random_improving_move rng w Usage_cost.Sum g 0 with
    | Some (Swap.Swap { add; _ }, _) -> Hashtbl.replace seen add ()
    | Some (Swap.Delete _, _) | None -> Alcotest.fail "expected a swap"
  done;
  (* endpoint 0 improves by re-hanging to any of 2..5 (not 6, which keeps
     distance) — sampling should hit several of them *)
  check_true "multiple targets sampled" (Hashtbl.length seen >= 2)

let test_delta_never_lies =
  qcheck ~count:60 "delta equals recomputed difference" (gen_connected ~min_n:3 ~max_n:12)
    (fun g ->
      let w = Bfs.create_workspace (Graph.n g) in
      let ok = ref true in
      Swap.iter_moves g 0 (fun mv ->
          let d = Swap.delta w Usage_cost.Sum g mv in
          let before = Usage_cost.vertex_cost w Usage_cost.Sum g 0 in
          Swap.apply g mv;
          let after = Usage_cost.vertex_cost w Usage_cost.Sum g 0 in
          Swap.undo g mv;
          if after - before <> d then ok := false);
      !ok)

let test_apply_undo_identity =
  qcheck ~count:60 "apply; undo = identity on all moves of all agents"
    (gen_connected ~min_n:2 ~max_n:10) (fun g ->
      let original = Graph.copy g in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        Swap.iter_moves ~include_deletions:true g v (fun mv ->
            Swap.apply g mv;
            Swap.undo g mv;
            if not (Graph.equal g original) then ok := false)
      done;
      !ok)

let suite =
  [
    case "applicability" test_applicable;
    case "apply/undo swap" test_apply_undo;
    case "apply/undo delete" test_apply_delete_undo;
    case "apply rejects" test_apply_rejects;
    case "delta improving" test_delta_improving;
    case "delta max version" test_delta_max;
    case "delta of disconnecting move" test_delta_disconnecting;
    case "iter_moves enumeration" test_iter_moves_complete_enumeration;
    case "iter_moves with deletions" test_iter_moves_with_deletions;
    case "iter_moves safe under mutation (regression)" test_iter_moves_mutation_safe;
    case "best_move" test_best_move;
    case "first improving" test_first_improving;
    case "random improving samples targets" test_random_improving_uniformish;
    test_delta_never_lies;
    test_apply_undo_identity;
  ]
