open Test_helpers

let check_float = Alcotest.(check (float 1e-9))

let test_diameter_ratio () =
  (match Poa.diameter_ratio (Generators.star 6) with
  | Some r -> check_float "star" 1.0 r
  | None -> Alcotest.fail "connected");
  (match Poa.diameter_ratio (Generators.complete 5) with
  | Some r -> check_float "complete" 1.0 r
  | None -> Alcotest.fail "connected");
  (match Poa.diameter_ratio (Generators.path 9) with
  | Some r -> check_float "path" 4.0 r
  | None -> Alcotest.fail "connected");
  check_true "disconnected" (Poa.diameter_ratio (Graph.create 3) = None)

let test_sum_cost_ratio () =
  (* the star achieves the lower bound exactly *)
  (match Poa.sum_cost_ratio (Generators.star 8) with
  | Some r -> check_float "star optimal" 1.0 r
  | None -> Alcotest.fail "connected");
  (match Poa.sum_cost_ratio (Generators.path 8) with
  | Some r -> check_true "path suboptimal" (r > 1.0)
  | None -> Alcotest.fail "connected");
  check_true "disconnected" (Poa.sum_cost_ratio (Graph.create 2) = None)

let test_exact_optimum_sum () =
  (* n=4, m=3: best tree is the star with social cost 18 *)
  Alcotest.(check (option int)) "star optimal" (Some 18) (Poa.exact_optimum_sum 4 3);
  (* complete graph: all pairs adjacent *)
  Alcotest.(check (option int)) "complete" (Some 12) (Poa.exact_optimum_sum 4 6);
  Alcotest.(check (option int)) "too few edges" None (Poa.exact_optimum_sum 4 2)

let test_exact_optimum_matches_lower_bound () =
  (* for m admitting a diameter-2 graph, the bound 2n(n-1) - 2m is exact *)
  for m = 4 to 10 do
    match Poa.exact_optimum_sum 5 m with
    | Some opt ->
      check_int "bound tight at n=5"
        (Usage_cost.social_cost_lower_bound Usage_cost.Sum ~n:5 ~m)
        opt
    | None -> Alcotest.fail "connected graphs exist"
  done

let test_exact_sum_poa () =
  (* n=4, m=3: the only sum-equilibrium tree is the star = optimum -> PoA 1 *)
  (match Poa.exact_sum_poa 4 3 with
  | Some r -> check_float "PoA 1 at trees" 1.0 r
  | None -> Alcotest.fail "equilibria exist");
  (* no equilibrium may exist at some (n, m); must return None, not crash *)
  check_true "handles empty equilibrium sets"
    (match Poa.exact_sum_poa 4 4 with Some r -> r >= 1.0 | None -> true)

let test_alpha_poa () =
  let t = Alpha_game.create ~alpha:2.0 (Generators.star 5) in
  (* star IS the optimum at alpha = 2 *)
  check_float "star poa" 1.0 (Poa.alpha_poa t)

let test_ratios_at_least_one =
  qcheck ~count:40 "cost ratio >= 1 on connected graphs" (gen_connected ~min_n:2 ~max_n:12)
    (fun g ->
      match Poa.sum_cost_ratio g with Some r -> r >= 1.0 -. 1e-9 | None -> false)

let suite =
  [
    case "diameter ratio" test_diameter_ratio;
    case "sum cost ratio" test_sum_cost_ratio;
    case "exact optimum" test_exact_optimum_sum;
    case "optimum matches lower bound" test_exact_optimum_matches_lower_bound;
    case "exact PoA" test_exact_sum_poa;
    case "alpha PoA" test_alpha_poa;
    test_ratios_at_least_one;
  ]
