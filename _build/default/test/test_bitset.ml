open Test_helpers

let test_empty () =
  let s = Bitset.create 100 in
  check_int "cardinal" 0 (Bitset.cardinal s);
  for i = 0 to 99 do
    check_false "no member" (Bitset.mem s i)
  done

let test_add_mem () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  check_true "0" (Bitset.mem s 0);
  check_true "63 (word boundary)" (Bitset.mem s 63);
  check_true "64" (Bitset.mem s 64);
  check_true "199" (Bitset.mem s 199);
  check_false "1" (Bitset.mem s 1);
  check_int "cardinal" 4 (Bitset.cardinal s)

let test_add_idempotent () =
  let s = Bitset.create 10 in
  Bitset.add s 5;
  Bitset.add s 5;
  check_int "cardinal" 1 (Bitset.cardinal s)

let test_remove () =
  let s = Bitset.create 10 in
  Bitset.add s 5;
  Bitset.remove s 5;
  check_false "removed" (Bitset.mem s 5);
  Bitset.remove s 5;
  check_int "remove idempotent" 0 (Bitset.cardinal s)

let test_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: out of range") (fun () ->
      Bitset.add s 10)

let test_clear () =
  let s = Bitset.create 100 in
  for i = 0 to 99 do
    Bitset.add s i
  done;
  Bitset.clear s;
  check_int "cleared" 0 (Bitset.cardinal s)

let test_iter_sorted () =
  let s = Bitset.create 300 in
  let members = [ 3; 62; 63; 64; 126; 200; 299 ] in
  List.iter (Bitset.add s) (List.rev members);
  let acc = ref [] in
  Bitset.iter (fun i -> acc := i :: !acc) s;
  Alcotest.(check (list int)) "increasing order" members (List.rev !acc)

let test_fold_to_list () =
  let s = Bitset.create 50 in
  List.iter (Bitset.add s) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Bitset.to_list s);
  check_int "fold sum" 6 (Bitset.fold (fun i acc -> i + acc) s 0)

let test_copy_equal () =
  let s = Bitset.create 70 in
  Bitset.add s 69;
  let c = Bitset.copy s in
  check_true "copies equal" (Bitset.equal s c);
  Bitset.add c 0;
  check_false "diverged" (Bitset.equal s c);
  check_false "original untouched" (Bitset.mem s 0)

let test_inter_cardinal () =
  let a = Bitset.create 100 and b = Bitset.create 100 in
  List.iter (Bitset.add a) [ 1; 2; 3; 70 ];
  List.iter (Bitset.add b) [ 2; 3; 70; 99 ];
  check_int "intersection" 3 (Bitset.inter_cardinal a b)

let test_inter_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Bitset.inter_cardinal") (fun () ->
      ignore (Bitset.inter_cardinal a b))

let test_capacity () =
  check_int "capacity" 123 (Bitset.capacity (Bitset.create 123))

let test_random_against_model () =
  let rng = Prng.create 99 in
  let s = Bitset.create 128 in
  let model = Hashtbl.create 64 in
  for _ = 1 to 2_000 do
    let i = Prng.int rng 128 in
    if Prng.bool rng then begin
      Bitset.add s i;
      Hashtbl.replace model i ()
    end
    else begin
      Bitset.remove s i;
      Hashtbl.remove model i
    end
  done;
  check_int "cardinal matches model" (Hashtbl.length model) (Bitset.cardinal s);
  for i = 0 to 127 do
    check_bool "membership matches model" (Hashtbl.mem model i) (Bitset.mem s i)
  done

let suite =
  [
    case "empty" test_empty;
    case "add/mem across word boundaries" test_add_mem;
    case "add idempotent" test_add_idempotent;
    case "remove" test_remove;
    case "bounds" test_bounds;
    case "clear" test_clear;
    case "iter sorted" test_iter_sorted;
    case "fold / to_list" test_fold_to_list;
    case "copy / equal" test_copy_equal;
    case "inter_cardinal" test_inter_cardinal;
    case "inter capacity mismatch" test_inter_mismatch;
    case "capacity" test_capacity;
    case "randomized against hashtable model" test_random_against_model;
  ]
