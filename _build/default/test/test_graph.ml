open Test_helpers

let test_create () =
  let g = Graph.create 5 in
  check_int "n" 5 (Graph.n g);
  check_int "m" 0 (Graph.m g);
  for v = 0 to 4 do
    check_int "degree" 0 (Graph.degree g v)
  done

let test_add_edge () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  check_int "m" 1 (Graph.m g);
  check_true "mem both ways" (Graph.mem_edge g 0 1 && Graph.mem_edge g 1 0);
  check_false "absent" (Graph.mem_edge g 0 2);
  check_int "deg 0" 1 (Graph.degree g 0);
  check_int "deg 1" 1 (Graph.degree g 1)

let test_add_rejections () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge")
    (fun () -> Graph.add_edge g 1 0);
  Alcotest.check_raises "range" (Invalid_argument "Graph: vertex out of range")
    (fun () -> Graph.add_edge g 0 3)

let test_try_add () =
  let g = Graph.create 3 in
  check_true "fresh" (Graph.try_add_edge g 0 1);
  check_false "duplicate" (Graph.try_add_edge g 1 0);
  check_int "m" 1 (Graph.m g)

let test_remove () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  Graph.remove_edge g 1 2;
  check_int "m" 2 (Graph.m g);
  check_false "gone" (Graph.mem_edge g 1 2);
  check_true "others stay" (Graph.mem_edge g 0 1 && Graph.mem_edge g 2 3);
  Alcotest.check_raises "absent removal" (Invalid_argument "Graph.remove_edge: absent edge")
    (fun () -> Graph.remove_edge g 0 3)

let test_neighbors_sorted () =
  let g = Graph.of_edges 5 [ (2, 4); (2, 0); (2, 3) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 3; 4 |] (Graph.neighbors g 2)

let test_iter_edges_canonical () =
  let g = Graph.of_edges 4 [ (3, 1); (0, 2) ] in
  Alcotest.(check (list (pair int int))) "u < v, sorted" [ (0, 2); (1, 3) ] (Graph.edges g)

let test_fold_neighbors () =
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
  check_int "fold sum" 6 (Graph.fold_neighbors ( + ) 0 g 0)

let test_exists_neighbor () =
  let g = Graph.of_edges 4 [ (0, 1); (0, 2) ] in
  check_true "exists" (Graph.exists_neighbor (fun w -> w = 2) g 0);
  check_false "not exists" (Graph.exists_neighbor (fun w -> w = 3) g 0)

let test_copy_independent () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let h = Graph.copy g in
  Graph.add_edge h 1 2;
  check_int "original m" 1 (Graph.m g);
  check_int "copy m" 2 (Graph.m h);
  check_true "copies equal before divergence" (Graph.equal g (Graph.copy g))

let test_equal () =
  let a = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let b = Graph.of_edges 3 [ (1, 2); (0, 1) ] in
  let c = Graph.of_edges 3 [ (0, 1); (0, 2) ] in
  check_true "order independent" (Graph.equal a b);
  check_false "different edges" (Graph.equal a c);
  check_false "different n" (Graph.equal a (Graph.of_edges 4 [ (0, 1); (1, 2) ]))

let test_hash_invariance () =
  let a = Graph.of_edges 4 [ (0, 1); (2, 3); (1, 2) ] in
  let b = Graph.of_edges 4 [ (2, 3); (1, 2); (0, 1) ] in
  Alcotest.(check int64) "insertion-order independent" (Graph.hash a) (Graph.hash b);
  let c = Graph.of_edges 4 [ (0, 1); (2, 3); (0, 2) ] in
  check_false "different graphs differ" (Graph.hash a = Graph.hash c)

let test_hash_after_mutation () =
  let a = Graph.of_edges 3 [ (0, 1) ] in
  let h0 = Graph.hash a in
  Graph.add_edge a 1 2;
  Graph.remove_edge a 1 2;
  Alcotest.(check int64) "hash restored after undo" h0 (Graph.hash a)

let test_degree_stats () =
  let g = Generators.star 5 in
  check_int "max degree" 4 (Graph.max_degree g);
  check_int "min degree" 1 (Graph.min_degree g);
  Alcotest.(check (array int)) "degree sequence" [| 4; 1; 1; 1; 1 |] (Graph.degree_sequence g);
  check_false "star not regular" (Graph.is_regular g);
  check_true "cycle regular" (Graph.is_regular (Generators.cycle 5))

let test_complement_edges () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check (list (pair int int)))
    "complement" [ (0, 2); (0, 3); (1, 2); (1, 3) ]
    (Graph.complement_edges g);
  check_int "complete graph has empty complement" 0
    (List.length (Graph.complement_edges (Generators.complete 5)))

let test_handshake_property =
  qcheck "sum of degrees = 2m" (gen_any_graph ~min_n:1 ~max_n:20) (fun g ->
      let total = ref 0 in
      for v = 0 to Graph.n g - 1 do
        total := !total + Graph.degree g v
      done;
      !total = 2 * Graph.m g)

let test_remove_add_roundtrip =
  qcheck "remove then add restores equality" (gen_connected ~min_n:2 ~max_n:15)
    (fun g ->
      let h = Graph.copy g in
      match Graph.edges h with
      | (u, v) :: _ ->
        Graph.remove_edge h u v;
        Graph.add_edge h u v;
        Graph.equal g h && Graph.hash g = Graph.hash h
      | [] -> true)

let suite =
  [
    case "create" test_create;
    case "add_edge" test_add_edge;
    case "add rejections" test_add_rejections;
    case "try_add_edge" test_try_add;
    case "remove_edge" test_remove;
    case "neighbors sorted" test_neighbors_sorted;
    case "edges canonical" test_iter_edges_canonical;
    case "fold_neighbors" test_fold_neighbors;
    case "exists_neighbor" test_exists_neighbor;
    case "copy independence" test_copy_independent;
    case "equal" test_equal;
    case "hash invariance" test_hash_invariance;
    case "hash restored after undo" test_hash_after_mutation;
    case "degree statistics" test_degree_stats;
    case "complement edges" test_complement_edges;
    test_handshake_property;
    test_remove_add_roundtrip;
  ]
