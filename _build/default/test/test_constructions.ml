open Test_helpers

(* --- Theorem 5 ------------------------------------------------------ *)

let test_theorem5_structure () =
  let g = Constructions.theorem5_graph in
  check_int "n" 13 (Graph.n g);
  check_int "m" 21 (Graph.m g);
  Alcotest.(check (option int)) "diameter 3" (Some 3) (Metrics.diameter g);
  Alcotest.(check (option int)) "girth 4" (Some 4) (Metrics.girth g);
  check_true "connected" (Components.is_connected g)

let test_theorem5_roles () =
  for v = 0 to 12 do
    check_int "role roundtrip" v (Constructions.theorem5_vertex (Constructions.theorem5_role v))
  done;
  (* hub adjacent to exactly the branches *)
  let hub = Constructions.theorem5_vertex Constructions.Hub in
  check_int "hub degree" 3 (Graph.degree Constructions.theorem5_graph hub)

let test_theorem5_local_diameters () =
  (* the proof's claim: a, b_i, d_i have local diameter 3; c_{i,k} have 2 *)
  let g = Constructions.theorem5_graph in
  for v = 0 to 12 do
    let expected =
      match Constructions.theorem5_role v with
      | Constructions.Hub | Constructions.Branch _ | Constructions.Collector _ -> 3
      | Constructions.Cluster _ -> 2
    in
    Alcotest.(check (option int)) "local diameter" (Some expected) (Metrics.local_diameter g v)
  done

let test_theorem5_reproduction_finding () =
  (* the literal construction admits exactly the documented improving swap *)
  let g = Constructions.theorem5_graph in
  let w = Bfs.create_workspace 13 in
  check_int "documented swap improves by 1" (-1)
    (Swap.delta w Usage_cost.Sum g Constructions.theorem5_improving_swap);
  check_false "hence not a sum equilibrium" (Equilibrium.is_sum_equilibrium g)

let test_theorem5_variants_all_fail () =
  (* both iso classes of the matching triangle admit an improving swap *)
  List.iter
    (fun crossed ->
      let g = Constructions.theorem5_variant ~crossed in
      check_int "13 vertices" 13 (Graph.n g);
      check_int "21 edges" 21 (Graph.m g);
      check_false "not a sum equilibrium" (Equilibrium.is_sum_equilibrium g))
    [
      (false, false, false);
      (false, false, true);
      (true, true, false);
      (true, true, true);
    ];
  (* girth depends only on the parity of crossings *)
  Alcotest.(check (option int)) "even parity girth 3" (Some 3)
    (Metrics.girth (Constructions.theorem5_variant ~crossed:(false, false, false)));
  Alcotest.(check (option int)) "odd parity girth 4" (Some 4)
    (Metrics.girth (Constructions.theorem5_variant ~crossed:(false, false, true)));
  check_true "paper wiring = default"
    (Graph.equal Constructions.theorem5_graph
       (Constructions.theorem5_variant ~crossed:(false, false, true)))

let test_diameter3_witness () =
  let g = Constructions.sum_diameter3_witness in
  check_int "n" 11 (Graph.n g);
  Alcotest.(check (option int)) "diameter 3" (Some 3) (Metrics.diameter g);
  check_true "verified sum equilibrium" (Equilibrium.is_sum_equilibrium g)

let test_cycle_with_pendant_not_eq () =
  check_false "C5+pendant" (Equilibrium.is_sum_equilibrium (Constructions.cycle_with_pendant 5));
  check_false "C7+pendant" (Equilibrium.is_sum_equilibrium (Constructions.cycle_with_pendant 7))

let test_max_diameter4_small () =
  let g = Constructions.max_diameter4_small in
  check_int "n" 10 (Graph.n g);
  check_int "m" 10 (Graph.m g);
  Alcotest.(check (option int)) "diameter 4" (Some 4) (Metrics.diameter g);
  check_true "max equilibrium" (Equilibrium.is_max_equilibrium g);
  check_true "is the 5-sunlet" (Canon.isomorphic g (Generators.sunlet 5))

let test_sunlet_equilibrium_pattern () =
  (* exactly the 3-, 5-, 7-sunlets are max equilibria *)
  List.iter
    (fun (k, expected) ->
      check_bool
        (Printf.sprintf "%d-sunlet" k)
        expected
        (Equilibrium.is_max_equilibrium (Generators.sunlet k)))
    [ (3, true); (4, false); (5, true); (6, false); (7, true); (8, false); (9, false) ]

(* --- Theorem 12 torus ------------------------------------------------ *)

let test_torus_structure () =
  List.iter
    (fun k ->
      let g = Constructions.torus k in
      check_int "n = 2k^2" (2 * k * k) (Graph.n g);
      check_true "4-regular" (Graph.is_regular g && Graph.max_degree g = 4);
      check_int "m" (4 * k * k) (Graph.m g);
      Alcotest.(check (option int)) "diameter k" (Some k) (Metrics.diameter g))
    [ 2; 3; 4; 5 ]

let test_torus_coords_roundtrip () =
  let k = 4 in
  for v = 0 to (2 * k * k) - 1 do
    let i, j = Constructions.torus_coords k v in
    check_int "parity even" 0 ((i + j) mod 2);
    check_int "roundtrip" v (Constructions.torus_vertex k (i, j))
  done

let test_torus_vertex_wraps () =
  let k = 3 in
  check_int "wrap i" (Constructions.torus_vertex k (0, 2)) (Constructions.torus_vertex k (6, 2));
  check_int "wrap negative" (Constructions.torus_vertex k (5, 1)) (Constructions.torus_vertex k (-1, 1));
  Alcotest.check_raises "odd parity rejected"
    (Invalid_argument "Constructions.torus_vertex: odd-parity point") (fun () ->
      ignore (Constructions.torus_vertex k (0, 1)))

let test_torus_distance_formula () =
  List.iter
    (fun k ->
      check_true "formula matches BFS"
        (Metrics.is_distance_formula (Constructions.torus k) (Constructions.torus_distance k)))
    [ 2; 3; 5 ]

let test_torus_equilibrium () =
  List.iter
    (fun k ->
      let g = Constructions.torus k in
      check_true "deletion-critical" (Equilibrium.is_deletion_critical g);
      check_true "insertion-stable" (Equilibrium.is_insertion_stable g);
      check_true "max equilibrium" (Equilibrium.is_max_equilibrium g))
    [ 2; 3; 4 ]

let test_torus_vertex_transitive () =
  check_true "k=2 vertex-transitive" (Canon.is_vertex_transitive (Constructions.torus 2))

let test_torus_local_diameter_k () =
  let k = 4 in
  let g = Constructions.torus k in
  match Metrics.eccentricities g with
  | Some e -> Array.iter (fun ecc -> check_int "every vertex ecc = k" k ecc) e
  | None -> Alcotest.fail "connected"

let test_torus_rejects_small_k () =
  Alcotest.check_raises "k >= 2" (Invalid_argument "Constructions.torus: need k >= 2")
    (fun () -> ignore (Constructions.torus 1))

(* --- d-dimensional generalization ------------------------------------ *)

let test_torus_d_matches_2d () =
  let k = 3 in
  let a = Constructions.torus_d ~dim:2 k and b = Constructions.torus k in
  check_int "same n" (Graph.n b) (Graph.n a);
  check_int "same m" (Graph.m b) (Graph.m a);
  check_true "same diameter" (Metrics.diameter a = Metrics.diameter b)

let test_torus_d_structure () =
  List.iter
    (fun (dim, k) ->
      let g = Constructions.torus_d ~dim k in
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      check_int "n = 2k^dim" (2 * pow k dim) (Graph.n g);
      check_true "2^dim-regular"
        (Graph.is_regular g && Graph.max_degree g = pow 2 dim);
      Alcotest.(check (option int)) "diameter k" (Some k) (Metrics.diameter g);
      check_true "distance formula"
        (Metrics.is_distance_formula g (Constructions.torus_d_distance ~dim k)))
    [ (1, 4); (2, 3); (3, 2); (3, 3); (4, 2) ]

let test_torus_d_coords_roundtrip () =
  let dim = 3 and k = 2 in
  for v = 0 to 15 do
    let c = Constructions.torus_d_coords ~dim k v in
    let p = c.(0) mod 2 in
    Array.iter (fun x -> check_int "uniform parity" p (x mod 2)) c
  done

let test_torus_d_insertion_stability () =
  (* dim-dimensional torus stable under dim-1 insertions *)
  check_true "dim 3 stable under 2"
    (Equilibrium.is_stable_under_insertions (Constructions.torus_d ~dim:3 2) ~k:2);
  check_true "dim 3 (k=3) stable under 2"
    (Equilibrium.is_stable_under_insertions (Constructions.torus_d ~dim:3 3) ~k:2)

(* --- misc ------------------------------------------------------------- *)

let test_nonexample_reexport () =
  let g = Constructions.conjecture14_nonexample ~arms:3 ~arm_len:4 ~blob:5 in
  check_true "connected" (Components.is_connected g);
  check_int "n" (1 + (3 * 9)) (Graph.n g)

let suite =
  [
    case "theorem5 structure" test_theorem5_structure;
    case "theorem5 roles" test_theorem5_roles;
    case "theorem5 local diameters" test_theorem5_local_diameters;
    case "theorem5 reproduction finding" test_theorem5_reproduction_finding;
    case "theorem5 variants all fail" test_theorem5_variants_all_fail;
    case "diameter-3 witness" test_diameter3_witness;
    case "cycle+pendant not equilibrium" test_cycle_with_pendant_not_eq;
    case "5-sunlet max diameter-4 witness" test_max_diameter4_small;
    case "sunlet equilibrium pattern" test_sunlet_equilibrium_pattern;
    case "torus structure" test_torus_structure;
    case "torus coords roundtrip" test_torus_coords_roundtrip;
    case "torus vertex wrapping" test_torus_vertex_wraps;
    case "torus distance formula" test_torus_distance_formula;
    case "torus equilibrium" test_torus_equilibrium;
    case "torus vertex-transitive" test_torus_vertex_transitive;
    case "torus local diameters" test_torus_local_diameter_k;
    case "torus rejects k < 2" test_torus_rejects_small_k;
    case "torus_d dim=2 matches torus" test_torus_d_matches_2d;
    case "torus_d structure" test_torus_d_structure;
    case "torus_d coords parity" test_torus_d_coords_roundtrip;
    case "torus_d insertion stability" test_torus_d_insertion_stability;
    case "conjecture 14 non-example" test_nonexample_reexport;
  ]
