open Test_helpers

let ws n = Bfs.create_workspace n

let test_sum_cost_star () =
  let g = Generators.star 5 in
  let w = ws 5 in
  check_int "center" 4 (Usage_cost.vertex_cost w Usage_cost.Sum g 0);
  check_int "leaf" (1 + (3 * 2)) (Usage_cost.vertex_cost w Usage_cost.Sum g 1)

let test_max_cost_path () =
  let g = Generators.path 5 in
  let w = ws 5 in
  check_int "endpoint" 4 (Usage_cost.vertex_cost w Usage_cost.Max g 0);
  check_int "center" 2 (Usage_cost.vertex_cost w Usage_cost.Max g 2)

let test_disconnected_infinite () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let w = ws 3 in
  check_true "sum infinite" (Usage_cost.is_infinite (Usage_cost.vertex_cost w Usage_cost.Sum g 0));
  check_true "max infinite" (Usage_cost.is_infinite (Usage_cost.vertex_cost w Usage_cost.Max g 0));
  check_false "finite not infinite" (Usage_cost.is_infinite 1000)

let test_social_cost () =
  (* star: social sum = 2 * wiener = 2 * (n-1 + (n-1)(n-2)) *)
  let g = Generators.star 5 in
  check_int "social sum" (2 * (4 + 12)) (Usage_cost.social_cost Usage_cost.Sum g);
  check_int "social max = diameter" 2 (Usage_cost.social_cost Usage_cost.Max g);
  check_true "disconnected infinite"
    (Usage_cost.is_infinite (Usage_cost.social_cost Usage_cost.Sum (Graph.create 3)))

let test_social_cost_empty () =
  check_int "empty graph" 0 (Usage_cost.social_cost Usage_cost.Sum (Graph.create 0));
  check_int "K1 sum" 0 (Usage_cost.social_cost Usage_cost.Sum (Graph.create 1))

let test_lower_bound () =
  (* diameter-2 graphs achieve the sum bound exactly, e.g. the star *)
  let g = Generators.star 6 in
  check_int "star matches bound"
    (Usage_cost.social_cost_lower_bound Usage_cost.Sum ~n:6 ~m:5)
    (Usage_cost.social_cost Usage_cost.Sum g);
  check_int "complete max bound" 1
    (Usage_cost.social_cost_lower_bound Usage_cost.Max ~n:5 ~m:10);
  check_int "non-complete max bound" 2
    (Usage_cost.social_cost_lower_bound Usage_cost.Max ~n:5 ~m:9)

let test_version_names () =
  check_true "sum" (Usage_cost.version_name Usage_cost.Sum = "sum");
  check_true "max" (Usage_cost.version_name Usage_cost.Max = "max")

let test_social_sum_is_twice_wiener =
  qcheck ~count:60 "social sum = 2 * Wiener" (gen_connected ~min_n:2 ~max_n:20) (fun g ->
      match Metrics.wiener_index g with
      | Some w -> Usage_cost.social_cost Usage_cost.Sum g = 2 * w
      | None -> false)

let test_lower_bound_is_lower =
  qcheck ~count:60 "lower bound below actual cost" (gen_connected ~min_n:2 ~max_n:15)
    (fun g ->
      Usage_cost.social_cost_lower_bound Usage_cost.Sum ~n:(Graph.n g) ~m:(Graph.m g)
      <= Usage_cost.social_cost Usage_cost.Sum g)

let suite =
  [
    case "sum cost on star" test_sum_cost_star;
    case "max cost on path" test_max_cost_path;
    case "disconnection is infinite" test_disconnected_infinite;
    case "social cost" test_social_cost;
    case "social cost trivial graphs" test_social_cost_empty;
    case "lower bound formulas" test_lower_bound;
    case "version names" test_version_names;
    test_social_sum_is_twice_wiener;
    test_lower_bound_is_lower;
  ]
