open Test_helpers

let test_gnp_extremes () =
  let rng = Prng.create 1 in
  let empty = Random_graphs.gnp rng 10 0.0 in
  check_int "p=0 empty" 0 (Graph.m empty);
  let full = Random_graphs.gnp rng 10 1.0 in
  check_int "p=1 complete" 45 (Graph.m full)

let test_gnp_density () =
  let rng = Prng.create 2 in
  let total = ref 0 in
  let trials = 50 in
  for _ = 1 to trials do
    total := !total + Graph.m (Random_graphs.gnp rng 20 0.3)
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let expected = 0.3 *. 190.0 in
  check_true "density near p*C(n,2)" (abs_float (mean -. expected) < 8.0)

let test_gnm_exact () =
  let rng = Prng.create 3 in
  for m = 0 to 21 do
    let g = Random_graphs.gnm rng 7 m in
    check_int "exact edge count" m (Graph.m g)
  done;
  Alcotest.check_raises "too many" (Invalid_argument "Random_graphs.gnm: bad m")
    (fun () -> ignore (Random_graphs.gnm rng 4 7))

let test_gnm_complete () =
  let rng = Prng.create 4 in
  let g = Random_graphs.gnm rng 6 15 in
  check_true "m = C(n,2) gives complete" (Graph.equal g (Generators.complete 6))

let test_tree () =
  let rng = Prng.create 5 in
  for n = 1 to 30 do
    let g = Random_graphs.tree rng n in
    check_true "is tree" (Components.is_tree g)
  done

let test_tree_distribution_hits_star_and_path () =
  (* over many 4-vertex trees both shapes (path, star) must appear *)
  let rng = Prng.create 6 in
  let saw_star = ref false and saw_path = ref false in
  for _ = 1 to 200 do
    let g = Random_graphs.tree rng 4 in
    if Graph.max_degree g = 3 then saw_star := true;
    if Graph.max_degree g = 2 then saw_path := true
  done;
  check_true "star seen" !saw_star;
  check_true "path seen" !saw_path

let test_pruefer_bijection_n4 () =
  (* all 16 sequences give 16 distinct trees (Cayley's formula) *)
  let seen = Hashtbl.create 16 in
  for a = 0 to 3 do
    for b = 0 to 3 do
      let g = Random_graphs.tree_of_pruefer 4 [| a; b |] in
      check_true "is tree" (Components.is_tree g);
      Hashtbl.replace seen (Graph.edges g) ()
    done
  done;
  check_int "16 distinct labeled trees" 16 (Hashtbl.length seen)

let test_pruefer_star () =
  (* constant sequence [c; c; ...] decodes to the star centered at c *)
  let g = Random_graphs.tree_of_pruefer 6 [| 2; 2; 2; 2 |] in
  check_int "center degree" 5 (Graph.degree g 2)

let test_connected_gnm () =
  let rng = Prng.create 7 in
  for _ = 1 to 30 do
    let n = 5 + Prng.int rng 20 in
    let extra = Prng.int rng n in
    let m = min (n * (n - 1) / 2) (n - 1 + extra) in
    let g = Random_graphs.connected_gnm rng n m in
    check_true "connected" (Components.is_connected g);
    check_int "edge count" m (Graph.m g)
  done

let test_regular () =
  let rng = Prng.create 8 in
  List.iter
    (fun (n, d) ->
      let g = Random_graphs.regular rng n d in
      check_true "regular" (Graph.is_regular g);
      check_int "degree" d (Graph.max_degree g))
    [ (10, 3); (12, 4); (9, 2); (8, 0) ];
  Alcotest.check_raises "odd nd" (Invalid_argument "Random_graphs.regular: nd odd")
    (fun () -> ignore (Random_graphs.regular rng 5 3))

let test_preferential_attachment () =
  let rng = Prng.create 9 in
  let g = Random_graphs.preferential_attachment rng 50 2 in
  check_true "connected" (Components.is_connected g);
  (* m = clique C(3,2) + 2 per additional vertex *)
  check_int "edge count" (3 + (2 * 47)) (Graph.m g)

let test_watts_strogatz () =
  let rng = Prng.create 10 in
  let g0 = Random_graphs.watts_strogatz rng 20 2 0.0 in
  check_true "beta=0 is ring lattice"
    (Graph.equal g0 (Generators.circulant 20 [ 1; 2 ]));
  let g = Random_graphs.watts_strogatz rng 20 2 0.5 in
  check_int "m preserved" 40 (Graph.m g)

let test_uniform_spanning_tree () =
  let rng = Prng.create 12 in
  let host = Generators.petersen () in
  for _ = 1 to 30 do
    let t = Random_graphs.uniform_spanning_tree rng host in
    check_true "is a tree" (Components.is_tree t);
    Graph.iter_edges (fun u v -> check_true "subgraph of host" (Graph.mem_edge host u v)) t
  done;
  Alcotest.check_raises "disconnected host"
    (Invalid_argument "Random_graphs.uniform_spanning_tree: host disconnected")
    (fun () -> ignore (Random_graphs.uniform_spanning_tree rng (Graph.create 3)))

let test_uniform_spanning_tree_uniformity () =
  (* K4 has 16 labeled spanning trees; with 8000 samples each should land
     near 500 (binomial sd ~22, allow 5 sd) *)
  let rng = Prng.create 13 in
  let host = Generators.complete 4 in
  let counts = Hashtbl.create 16 in
  for _ = 1 to 8000 do
    let t = Random_graphs.uniform_spanning_tree rng host in
    let key = Graph.edges t in
    Hashtbl.replace counts key (1 + (try Hashtbl.find counts key with Not_found -> 0))
  done;
  check_int "all 16 trees appear" 16 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c -> check_true "near uniform" (c > 380 && c < 620))
    counts

let test_ust_on_cycle () =
  (* spanning trees of C_n = delete one edge: n choices *)
  let rng = Prng.create 14 in
  let host = Generators.cycle 6 in
  let seen = Hashtbl.create 6 in
  for _ = 1 to 600 do
    let t = Random_graphs.uniform_spanning_tree rng host in
    check_int "path" 5 (Graph.m t);
    Hashtbl.replace seen (Graph.edges t) ()
  done;
  check_int "all 6 spanning trees seen" 6 (Hashtbl.length seen)

let test_spanning_connected_subgraph () =
  let rng = Prng.create 11 in
  let host = Generators.complete 12 in
  let g = Random_graphs.spanning_connected_subgraph rng host 20 in
  check_int "m" 20 (Graph.m g);
  check_true "connected" (Components.is_connected g);
  Graph.iter_edges (fun u v -> check_true "subgraph" (Graph.mem_edge host u v)) g

let test_gnm_uniform_support =
  qcheck ~count:50 "gnm produces graphs within bounds"
    QCheck2.Gen.(pair (int_range 2 12) (int_range 0 1000)) (fun (n, seed) ->
      let rng = Prng.create seed in
      let max_m = n * (n - 1) / 2 in
      let m = Prng.int rng (max_m + 1) in
      let g = Random_graphs.gnm rng n m in
      Graph.m g = m && Graph.n g = n)

let suite =
  [
    case "gnp extremes" test_gnp_extremes;
    case "gnp density" test_gnp_density;
    case "gnm exact counts" test_gnm_exact;
    case "gnm complete" test_gnm_complete;
    case "random tree" test_tree;
    case "tree distribution diversity" test_tree_distribution_hits_star_and_path;
    case "pruefer bijection n=4" test_pruefer_bijection_n4;
    case "pruefer star" test_pruefer_star;
    case "connected gnm" test_connected_gnm;
    case "random regular" test_regular;
    case "preferential attachment" test_preferential_attachment;
    case "watts strogatz" test_watts_strogatz;
    case "uniform spanning tree (Wilson)" test_uniform_spanning_tree;
    case "UST uniformity on K4" test_uniform_spanning_tree_uniformity;
    case "UST on a cycle" test_ust_on_cycle;
    case "spanning connected subgraph" test_spanning_connected_subgraph;
    test_gnm_uniform_support;
  ]
