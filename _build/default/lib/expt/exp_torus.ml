let e5_torus_sweep ?(max_k = 10) () =
  let t =
    Table.create
      ~title:
        "E5 (Theorem 12, Figure 4): rotated-torus max equilibria of diameter sqrt(n/2)"
      ~columns:
        [
          ("k", Table.Right);
          ("n = 2k^2", Table.Right);
          ("m", Table.Right);
          ("diameter", Table.Right);
          ("sqrt(n/2)", Table.Right);
          ("oracle = BFS", Table.Left);
          ("deletion-critical", Table.Left);
          ("insertion-stable", Table.Left);
          ("max equilibrium", Table.Left);
        ]
  in
  for k = 2 to max_k do
    let g = Constructions.torus k in
    let full = Graph.n g <= 300 in
    let cell_checked b = if full then Table.cell_bool b else Table.cell_bool b ^ " (sampled)" in
    let del_crit = Equilibrium.is_deletion_critical g in
    let ins_stable =
      if full then Equilibrium.is_insertion_stable g
      else Equilibrium.find_insertion_violation g = None
    in
    let max_eq =
      if full then Equilibrium.is_max_equilibrium g
      else del_crit && ins_stable
    in
    Table.add_row t
      [
        Table.cell_int k;
        Table.cell_int (Graph.n g);
        Table.cell_int (Graph.m g);
        Exp_common.diameter_cell g;
        Table.cell_float ~digits:1 (sqrt (float_of_int (Graph.n g) /. 2.0));
        Table.cell_bool (Metrics.is_distance_formula g (Constructions.torus_distance k));
        Table.cell_bool del_crit;
        Table.cell_bool ins_stable;
        cell_checked max_eq;
      ]
  done;
  Table.print t

let default_cases = [ (2, 3); (2, 5); (2, 7); (3, 2); (3, 3); (4, 2) ]

let e6_torus_dimensions ?(cases = default_cases) () =
  let t =
    Table.create
      ~title:
        "E6 (Section 4): d-dimensional tori — diameter (n/2)^(1/d), stable under < d insertions"
      ~columns:
        [
          ("dim", Table.Right);
          ("k", Table.Right);
          ("n = 2k^dim", Table.Right);
          ("diameter", Table.Right);
          ("(n/2)^(1/dim)", Table.Right);
          ("oracle = BFS", Table.Left);
          ("deletion-critical", Table.Left);
          ("stable +(dim-1) insertions", Table.Left);
        ]
  in
  List.iter
    (fun (dim, k) ->
      let g = Constructions.torus_d ~dim k in
      Table.add_row t
        [
          Table.cell_int dim;
          Table.cell_int k;
          Table.cell_int (Graph.n g);
          Exp_common.diameter_cell g;
          Table.cell_float ~digits:2 (Theory.max_lower_bound_diameter ~dim (Graph.n g));
          Table.cell_bool
            (Metrics.is_distance_formula g (Constructions.torus_d_distance ~dim k));
          Table.cell_bool (Equilibrium.is_deletion_critical g);
          Table.cell_bool (Equilibrium.is_stable_under_insertions g ~k:(dim - 1));
        ])
    cases;
  Table.print t
