(** E5 / E6 — the max-version lower bound (Section 4, Figure 4). *)

val e5_torus_sweep : ?max_k:int -> unit -> unit
(** Theorem 12: for each k, the rotated torus on n = 2k² vertices has
    diameter exactly k = √(n/2), matches its closed-form distance oracle,
    and is deletion-critical, insertion-stable, and a full max
    equilibrium. Full checks are run up to a size cutoff, spot checks
    beyond. *)

val e6_torus_dimensions : ?cases:(int * int) list -> unit -> unit
(** Section 4 generalization: torus_d ~dim k has n = 2k^dim vertices,
    diameter k = (n/2)^(1/dim), and is stable under up to dim−1
    simultaneous edge insertions at one vertex (checked exhaustively). *)
