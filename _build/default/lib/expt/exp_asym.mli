(** E20 — the asymmetric (owner-only) swap game. *)

val e20_asymmetric_swap : ?n:int -> ?seeds:int -> unit -> unit
(** Measures how restricting swaps to edge owners widens the equilibrium
    set: dynamics from random trees under random ownership converge to
    asymmetric equilibria whose diameters exceed the symmetric game's, and
    each final network is classified by whether it is also a full
    (either-endpoint) swap equilibrium. *)
