(** E9 / E10 / E14 — distance uniformity (Section 5). *)

val e9_theorem13_pipeline : unit -> unit
(** Theorem 13: the power-graph pipeline on representative graphs — sum
    equilibria produced by dynamics (small diameter, so the theorem's
    hypothesis d > 2 lg n is unmet and the statement is vacuous but
    measured), plus high-diameter inputs (cycles, tori) where the
    coalescing of distances under powers is visible: diam(G^x) = ceil(d/x)
    and the almost-uniform epsilon of the power graph. *)

val e10_cayley_uniformity : unit -> unit
(** Theorem 15: Abelian Cayley families — measured best (r, epsilon); for
    every family with epsilon < 1/4 the diameter is within the theorem's
    O(lg n / lg(1/eps)) bound, and every high-diameter family has
    epsilon >= 1/4 (the contrapositive). *)

val e14_conjecture14_probe : unit -> unit
(** The Section 5 non-example: path-with-blobs has almost all *pairs* at
    one distance while per-vertex uniformity fails — the reason
    Conjecture 14 must quantify per vertex. Also reports skew-triple
    fractions (the first claim in Theorem 13's proof) on equilibria. *)
