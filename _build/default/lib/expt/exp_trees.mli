(** E1 / E2 — the tree theorems (Section 2, Figures 1 and 2). *)

val e1_sum_tree_census : ?max_n:int -> unit -> unit
(** Theorem 1: exhaustive census of labeled trees per n (default up to 8);
    every sum equilibrium must be a star, every non-star gets a verified
    improving witness. *)

val e2_max_tree_census : ?max_n:int -> unit -> unit
(** Theorem 4: same for the max version; equilibria are exactly stars and
    double stars with both arms >= 2, diameter <= 3 with 3 attained. *)

val e1b_trees_at_scale : ?sizes:int list -> unit -> unit
(** Theorem 1 at large n: best-response convergence of random trees using
    the O(1)-per-swap evaluator ({!Tree_opt}), sizes in the hundreds.
    Every run must end in a star. *)

val e2b_double_star_family : ?max_arm:int -> unit -> unit
(** The Figure 2 boundary: double_star(a, b) is a max equilibrium iff
    min(a, b) >= 2, swept exhaustively over arm sizes. *)
