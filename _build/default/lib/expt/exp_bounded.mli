(** E21 — computationally bounded agents. *)

val e21_bounded_agents : ?n:int -> ?seeds:int -> unit -> unit
(** The paper's motivating scenario made quantitative: agents that examine
    only a budget of uniformly sampled candidate swaps per activation.
    Sweeps the budget from 1 sample to a full scan and reports convergence,
    rounds, residual violating agents, and the final diameter — tiny
    budgets still drive the network to (near-)equilibrium, only more
    slowly. *)
