lib/expt/exp_bounded.mli:
