lib/expt/exp_uniformity.mli:
