lib/expt/exp_dynamics.mli:
