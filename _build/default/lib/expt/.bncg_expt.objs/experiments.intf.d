lib/expt/experiments.mli:
