lib/expt/exp_alpha.ml: Alpha_game Array Enumerate Equilibrium Exp_common Graph List Metrics Poa Prng Random_graphs Table Usage_cost
