lib/expt/exp_catalog.mli: Usage_cost
