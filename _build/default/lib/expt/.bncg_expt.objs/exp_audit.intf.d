lib/expt/exp_audit.mli:
