lib/expt/exp_extensions.ml: Array Constructions Dynamics Equilibrium Exp_common Generators Graph Graph6 Hunt List Metrics Option Polarity Printf Prng Random_graphs String Table Usage_cost
