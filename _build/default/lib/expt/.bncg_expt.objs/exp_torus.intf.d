lib/expt/exp_torus.mli:
