lib/expt/exp_lower_bounds.ml: Census Constructions Exp_common Generators Graph List Polarity Printf String Table Usage_cost
