lib/expt/exp_catalog.ml: Array Canon Census Exp_common Graph Graph6 List Metrics Printf Spectral String Table Usage_cost
