lib/expt/exp_audit.ml: Constructions Dynamics Exp_common Generators Graph Lemmas List Polarity Printf Prng Random_graphs Spectral Table
