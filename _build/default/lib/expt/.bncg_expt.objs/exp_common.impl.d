lib/expt/exp_common.ml: Array Dynamics Equilibrium Metrics Printf Stats Swap Table
