lib/expt/exp_dynamics.ml: Array Dynamics Equilibrium Exp_common List Metrics Printf Prng Random_graphs Table Theory Usage_cost
