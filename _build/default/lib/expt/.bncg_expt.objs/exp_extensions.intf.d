lib/expt/exp_extensions.mli:
