lib/expt/exp_bounded.ml: Array Dynamics Exp_common Hunt List Metrics Printf Prng Random_graphs Table Usage_cost
