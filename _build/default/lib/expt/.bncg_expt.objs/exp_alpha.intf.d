lib/expt/exp_alpha.mli:
