lib/expt/exp_common.mli: Dynamics Equilibrium Graph
