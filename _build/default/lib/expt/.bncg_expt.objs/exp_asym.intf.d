lib/expt/exp_asym.mli:
