lib/expt/exp_theory.ml: Constructions Dynamics Equilibrium Generators Graph Polarity Prng Random_graphs Table Theory
