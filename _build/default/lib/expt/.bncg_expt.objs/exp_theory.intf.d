lib/expt/exp_theory.mli:
