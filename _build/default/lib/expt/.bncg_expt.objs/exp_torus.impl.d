lib/expt/exp_torus.ml: Constructions Equilibrium Exp_common Graph List Metrics Table Theory
