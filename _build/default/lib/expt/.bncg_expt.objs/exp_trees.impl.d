lib/expt/exp_trees.ml: Census Equilibrium Exp_common Generators Graph List Prng Random_graphs Table Tree_eq Tree_opt Usage_cost
