lib/expt/experiments.ml: Exp_alpha Exp_asym Exp_audit Exp_bounded Exp_catalog Exp_dynamics Exp_extensions Exp_lower_bounds Exp_theory Exp_torus Exp_trees Exp_uniformity List Printf String Usage_cost
