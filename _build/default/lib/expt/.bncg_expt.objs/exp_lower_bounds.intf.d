lib/expt/exp_lower_bounds.mli: Usage_cost
