lib/expt/exp_trees.mli:
