lib/expt/exp_uniformity.ml: Constructions Distance_uniform Dynamics Exp_common Generators Graph List Metrics Option Prng Random_graphs Table Theory
