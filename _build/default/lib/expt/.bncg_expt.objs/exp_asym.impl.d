lib/expt/exp_asym.ml: Array Asym_swap Dynamics Equilibrium Exp_common Float List Metrics Printf Prng Random_graphs Stats Table
