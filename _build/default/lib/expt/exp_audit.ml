let e18_lemma_audit ?(seeds = 20) () =
  let t =
    Table.create ~title:"E18: audit of the omitted lemma proofs (Lemmas 6-8)"
      ~columns:
        [
          ("graph", Table.Left);
          ("n", Table.Right);
          ("Lemma 6", Table.Left);
          ("Lemma 7", Table.Left);
          ("Lemma 8", Table.Left);
        ]
  in
  let cell = function
    | None -> "holds"
    | Some v -> "VIOLATED: " ^ v.Lemmas.description
  in
  let row name g =
    Table.add_row t
      [
        name;
        Table.cell_int (Graph.n g);
        cell (Lemmas.check_lemma6 g);
        cell (Lemmas.check_lemma7 g);
        cell (Lemmas.check_lemma8 g);
      ]
  in
  row "Figure 3 graph" Constructions.theorem5_graph;
  row "Petersen + pendant" Constructions.sum_diameter3_witness;
  row "minimal n=8 witness" Constructions.sum_diameter3_minimal;
  row "hypercube Q4" (Generators.hypercube 4);
  row "polarity ER_3" (Polarity.polarity_graph 3);
  row "torus k=3" (Constructions.torus 3);
  let all_random_hold = ref true in
  for seed = 1 to seeds do
    let rng = Prng.create seed in
    let g = Random_graphs.connected_gnm rng (8 + Prng.int rng 6) 20 in
    if
      Lemmas.check_lemma6 g <> None
      || Lemmas.check_lemma7 g <> None
      || Lemmas.check_lemma8 g <> None
    then all_random_hold := false
  done;
  Table.add_row t
    [
      Printf.sprintf "%d random G(n,20), n in 8..13" seeds;
      "-";
      Table.cell_bool !all_random_hold;
      Table.cell_bool !all_random_hold;
      Table.cell_bool !all_random_hold;
    ];
  Table.print t;
  let t2 =
    Table.create
      ~title:"E18b: the Theorem 5 proof, case by case, on the literal Figure 3 graph"
      ~columns:[ ("proof case", Table.Left); ("status", Table.Left) ]
  in
  List.iter
    (fun (name, ok) -> Table.add_row t2 [ name; (if ok then "holds" else "FAILS") ])
    (Lemmas.theorem5_case_analysis ());
  Table.print t2;
  print_endline
    "  The lemmas themselves are correct everywhere; the proof's only gap is the\n\
    \  collector-to-matched-partner swap, where Lemma 8's strong (+2) branch was\n\
    \  applied although the swap target is adjacent to the dropped vertex.\n"

let e19_spectral_profile () =
  let t =
    Table.create
      ~title:
        "E19: spectral profiles — equilibria are expander-like, the torus is the anti-expander"
      ~columns:
        [
          ("graph", Table.Left);
          ("n", Table.Right);
          ("diameter", Table.Right);
          ("fiedler l2(L)", Table.Right);
          ("l2(A) (regular)", Table.Left);
          ("Chung bound", Table.Left);
        ]
  in
  let row name g =
    let lambda2 =
      if Graph.is_regular g then
        Table.cell_float ~digits:3 (Spectral.second_adjacency_eigenvalue g)
      else "n/a"
    in
    let bound =
      match Spectral.spectral_diameter_bound g with
      | Some b -> Table.cell_float ~digits:0 b
      | None -> "degenerate"
    in
    Table.add_row t
      [
        name;
        Table.cell_int (Graph.n g);
        Exp_common.diameter_cell g;
        Table.cell_float ~digits:3 (Spectral.algebraic_connectivity g);
        lambda2;
        bound;
      ]
  in
  row "star n=32" (Generators.star 32);
  row "Petersen" (Generators.petersen ());
  row "Petersen + pendant" Constructions.sum_diameter3_witness;
  row "minimal n=8 witness" Constructions.sum_diameter3_minimal;
  row "polarity ER_5" (Polarity.polarity_graph 5);
  let rng = Prng.create 21 in
  row "sum eq (from G(48,96))"
    (Dynamics.converge_sum ~rng (Random_graphs.connected_gnm rng 48 96)).Dynamics.final;
  row "torus k=4" (Constructions.torus 4);
  row "torus k=8" (Constructions.torus 8);
  row "cycle C64" (Generators.cycle 64);
  Table.print t;
  print_endline
    "  Reading: every verified sum equilibrium has a large spectral gap relative to\n\
    \  its size (small-diameter, expander-like), while the max-version torus and the\n\
    \  cycle have vanishing Fiedler values — the spectral face of the sum/max\n\
    \  diameter separation (Theorems 9 vs 12).\n"
