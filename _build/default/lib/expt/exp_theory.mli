(** E13 — constructive checks of Lemma 10 and Corollary 11. *)

val e13_lemma10_corollary11 : unit -> unit
(** On a battery of verified sum equilibria: for every vertex u, Lemma 10's
    promised BFS-edge (or small-diameter escape) is found; the maximum
    single-edge-addition gain is measured against Corollary 11's
    [5 n lg n] budget. *)
