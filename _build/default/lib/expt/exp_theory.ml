let e13_lemma10_corollary11 () =
  let t =
    Table.create
      ~title:
        "E13 (Lemma 10, Corollary 11): constructive checks on verified sum equilibria"
      ~columns:
        [
          ("graph", Table.Left);
          ("n", Table.Right);
          ("sum eq", Table.Left);
          ("Lemma 10 holds for all u", Table.Left);
          ("max add-gain", Table.Right);
          ("5 n lg n", Table.Right);
          ("within budget", Table.Left);
        ]
  in
  let row name g =
    let n = Graph.n g in
    let eq = Equilibrium.is_sum_equilibrium g in
    let lemma10_all =
      let ok = ref true in
      for u = 0 to n - 1 do
        if Theory.lemma10_check g u = None then ok := false
      done;
      !ok
    in
    let gain = Theory.corollary11_max_gain g in
    let budget = Theory.corollary11_budget n in
    Table.add_row t
      [
        name;
        Table.cell_int n;
        Table.cell_bool eq;
        Table.cell_bool lemma10_all;
        Table.cell_int gain;
        Table.cell_float ~digits:1 budget;
        Table.cell_bool (float_of_int gain <= budget);
      ]
  in
  row "star n=24" (Generators.star 24);
  row "Petersen + pendant" Constructions.sum_diameter3_witness;
  row "polarity ER_3" (Polarity.polarity_graph 3);
  row "polarity ER_5" (Polarity.polarity_graph 5);
  let rng = Prng.create 9 in
  row "sum eq (from tree n=32)"
    (Dynamics.converge_sum ~rng (Random_graphs.tree rng 32)).Dynamics.final;
  row "sum eq (from G(48,96))"
    (Dynamics.converge_sum ~rng (Random_graphs.connected_gnm rng 48 96)).Dynamics.final;
  Table.print t
