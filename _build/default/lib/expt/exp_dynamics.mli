(** E7 / E8 — swap dynamics sweeps (Theorem 9, Lemma 2). *)

val e7_sum_dynamics : ?sizes:int list -> ?seeds:int -> unit -> unit
(** Runs sum best-response dynamics from random trees and random sparse
    connected graphs; reports convergence, rounds, final diameters, and
    the Theorem 9 bounds (smooth 2^(3√lg n) and the concrete recurrence
    bound) for comparison. Every converged graph is re-verified to be a
    sum equilibrium. *)

val e8_max_dynamics : ?sizes:int list -> ?seeds:int -> unit -> unit
(** Max version: additionally checks Lemma 2 (eccentricity spread <= 1)
    and Lemma 3 (cut-vertex structure) on every converged equilibrium. *)
