let e9_theorem13_pipeline () =
  let t =
    Table.create
      ~title:
        "E9 (Theorem 13): graph powers coalesce distances — diam(G^x) = ceil(d/x), uniformity of the power"
      ~columns:
        [
          ("graph", Table.Left);
          ("n", Table.Right);
          ("diam d", Table.Right);
          ("2 lg n", Table.Right);
          ("x", Table.Right);
          ("diam(G^x)", Table.Right);
          ("ceil(d/x)", Table.Right);
          ("eps almost-uniform(G^x)", Table.Right);
          ("r", Table.Right);
        ]
  in
  let row name g x =
    let d = Option.get (Metrics.diameter g) in
    let rep = Distance_uniform.power_report g ~x in
    Table.add_row t
      [
        name;
        Table.cell_int (Graph.n g);
        Table.cell_int d;
        Table.cell_float ~digits:1 (2.0 *. Theory.lg (Graph.n g));
        Table.cell_int x;
        Table.cell_int rep.Distance_uniform.diameter;
        Table.cell_int ((d + x - 1) / x);
        Table.cell_float ~digits:3 rep.Distance_uniform.almost.Distance_uniform.epsilon;
        Table.cell_int rep.Distance_uniform.almost.Distance_uniform.r;
      ]
  in
  (* equilibria from dynamics *)
  let rng = Prng.create 3 in
  let eq1 =
    (Dynamics.converge_sum ~rng (Random_graphs.tree rng 32)).Dynamics.final
  in
  let eq2 =
    (Dynamics.converge_sum ~rng (Random_graphs.connected_gnm rng 48 96)).Dynamics.final
  in
  row "sum eq (from tree, n=32)" eq1 1;
  row "sum eq (from G(48,96))" eq2 1;
  (* high-diameter hosts: the coalescing the proof uses *)
  List.iter (fun x -> row "cycle C48" (Generators.cycle 48) x) [ 2; 3; 4; 6 ];
  List.iter (fun x -> row "torus k=6" (Constructions.torus 6) x) [ 2; 3 ];
  row "path P33" (Generators.path 33) 4;
  Table.print t

let e10_cayley_uniformity () =
  let t =
    Table.create
      ~title:
        "E10 (Theorem 15): epsilon-distance-uniform Abelian Cayley graphs have diameter O(lg n / lg(1/eps))"
      ~columns:
        [
          ("family", Table.Left);
          ("n", Table.Right);
          ("diameter", Table.Right);
          ("best r", Table.Right);
          ("epsilon", Table.Right);
          ("eps < 1/4", Table.Left);
          ("thm 15 bound", Table.Left);
          ("diam <= bound", Table.Left);
        ]
  in
  let row name g =
    let d = Option.get (Metrics.diameter g) in
    let p = Distance_uniform.best_uniform g in
    let eps = p.Distance_uniform.epsilon in
    let applicable = eps > 0.0 && eps < 0.25 in
    let bound = if applicable then Some (Theory.theorem15_bound ~n:(Graph.n g) ~epsilon:eps) else None in
    Table.add_row t
      [
        name;
        Table.cell_int (Graph.n g);
        Table.cell_int d;
        Table.cell_int p.Distance_uniform.r;
        Table.cell_float ~digits:3 eps;
        Table.cell_bool applicable;
        (match bound with Some b -> Table.cell_float ~digits:1 b | None -> "n/a");
        (match bound with
         | Some b -> Table.cell_bool (float_of_int d <= b)
         | None -> "vacuous");
      ]
  in
  row "complete K32" (Generators.complete 32);
  row "complete K64" (Generators.complete 64);
  row "K16,16" (Generators.complete_bipartite 16 16);
  row "circulant(64; 1..8)" (Generators.circulant 64 [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
  row "circulant(63; 1,5,25)" (Generators.circulant 63 [ 1; 5; 25 ]);
  row "hypercube Q8" (Generators.hypercube 8);
  row "hypercube Q10" (Generators.hypercube 10);
  row "cycle C64" (Generators.cycle 64);
  row "torus k=6" (Constructions.torus 6);
  row "torus k=8" (Constructions.torus 8);
  Table.print t;
  print_endline
    "  Reading: every family with measured eps < 1/4 respects the Theorem 15 diameter\n\
    \  bound; the high-diameter families (cycles, tori) all have eps >= 1/4, consistent\n\
    \  with Conjecture 14 (no high-diameter distance-uniform graphs).\n"

let e14_conjecture14_probe () =
  let t =
    Table.create
      ~title:
        "E14 (Conjecture 14): pairwise concentration is not per-vertex uniformity (path-with-blobs)"
      ~columns:
        [
          ("arms", Table.Right);
          ("arm len", Table.Right);
          ("blob", Table.Right);
          ("n", Table.Right);
          ("diameter", Table.Right);
          ("modal dist", Table.Right);
          ("pairs at mode", Table.Right);
          ("per-vertex eps (almost)", Table.Right);
        ]
  in
  List.iter
    (fun (arms, arm_len, blob) ->
      let g = Generators.path_with_blobs ~arms ~arm_len ~blob in
      let mode, frac = Distance_uniform.pairwise_modal_fraction g in
      let p = Distance_uniform.best_almost_uniform g in
      Table.add_row t
        [
          Table.cell_int arms;
          Table.cell_int arm_len;
          Table.cell_int blob;
          Table.cell_int (Graph.n g);
          Exp_common.diameter_cell g;
          Table.cell_int mode;
          Table.cell_float ~digits:3 frac;
          Table.cell_float ~digits:3 p.Distance_uniform.epsilon;
        ])
    [ (4, 6, 12); (6, 8, 24); (8, 10, 40); (4, 16, 48) ];
  Table.print t;
  let t2 =
    Table.create
      ~title:"E14b (Theorem 13 proof, first claim): skew-triple fractions on sum equilibria"
      ~columns:
        [
          ("graph", Table.Left);
          ("n", Table.Right);
          ("p", Table.Right);
          ("skew fraction", Table.Right);
          ("proof budget 4/p", Table.Right);
        ]
  in
  let rng = Prng.create 5 in
  let eq =
    (Dynamics.converge_sum ~rng (Random_graphs.connected_gnm rng 40 80)).Dynamics.final
  in
  List.iter
    (fun p ->
      let f = Distance_uniform.skew_triple_fraction eq ~p in
      Table.add_row t2
        [
          "sum eq (n=40)";
          Table.cell_int (Graph.n eq);
          Table.cell_float ~digits:1 p;
          Table.cell_float ~digits:4 f;
          Table.cell_float ~digits:3 (4.0 /. p);
        ])
    [ 0.5; 1.0; 2.0; 4.0 ];
  Table.print t2
