(** E15–E17 — extensions beyond the paper's stated results. *)

val e15_equilibrium_hunt : ?sizes:int list -> ?steps:int -> unit -> unit
(** Stochastic hunt for high-diameter sum equilibria: finds diameter-3
    equilibria at every n >= 8 (establishing, with the exhaustive n <= 7
    census, that 8 is the exact minimum size) and reports the diameter-4
    frontier (no example found — matching the open problem). *)

val e16_multi_swap_stability : ?k:int -> unit -> unit
(** How the paper's single-swap equilibria fare against agents that can
    re-point k edges at once (the computational-power axis of Section 4,
    examined on the sum side): some single-swap equilibria survive
    (stars, polarity graphs), others fall (Petersen + pendant). *)

val e17_dynamics_ablation : ?n:int -> ?seeds:int -> unit -> unit
(** Ablation over the dynamics engine's design choices: move rule
    (best / first / random improving) x schedule (round-robin / random
    agent), measuring convergence rate, rounds, moves and final
    diameter. *)
