let e11_alpha_transfer ?(n = 14) ?alphas () =
  let alphas =
    match alphas with
    | Some a -> a
    | None ->
      let nf = float_of_int n in
      [ 0.2; 0.5; 1.0; 2.0; 4.0; nf /. 2.0; nf; 2.0 *. nf; nf *. nf ]
  in
  let t =
    Table.create
      ~title:
        "E11 (Section 1 transfer): alpha-game equilibria across alpha — diameter stays flat"
      ~columns:
        [
          ("alpha", Table.Right);
          ("outcome", Table.Left);
          ("m final", Table.Right);
          ("diameter", Table.Right);
          ("alpha-local eq", Table.Left);
          ("basic swap eq (sum)", Table.Left);
          ("social / optimum", Table.Right);
        ]
  in
  List.iter
    (fun alpha ->
      let rng = Prng.create 17 in
      let g0 = Random_graphs.tree rng n in
      let game = Alpha_game.create ~alpha g0 in
      let r = Alpha_game.run_dynamics game in
      let st = r.Alpha_game.state in
      let g = Alpha_game.graph st in
      let outcome =
        match r.Alpha_game.outcome with
        | Alpha_game.Converged -> "converged"
        | Alpha_game.Cycled -> "cycled"
        | Alpha_game.Round_limit -> "round-limit"
      in
      Table.add_row t
        [
          Table.cell_float ~digits:2 alpha;
          outcome;
          Table.cell_int (Graph.m g);
          Exp_common.diameter_cell g;
          Table.cell_bool (Alpha_game.is_local_equilibrium st);
          Table.cell_bool (Equilibrium.is_sum_equilibrium g);
          Table.cell_float ~digits:3 (Poa.alpha_poa st);
        ])
    alphas;
  Table.print t;
  print_endline
    "  Note: alpha-game agents may only swap edges they own, so an alpha equilibrium\n\
    \  need not be a full (both-endpoints) swap equilibrium; the diameters nevertheless\n\
    \  obey the swap-equilibrium bounds for every alpha, which is the paper's point.\n"

(* Single enumeration pass per n: track, for each edge count m, the optimum
   social cost over all connected graphs and the worst cost / diameter over
   sum equilibria. *)
let e12_price_of_anarchy ?(max_n = 6) () =
  let t =
    Table.create
      ~title:"E12: exact price of anarchy of the basic sum game (exhaustive, small n)"
      ~columns:
        [
          ("n", Table.Right);
          ("m", Table.Right);
          ("optimum social cost", Table.Right);
          ("worst equilibrium cost", Table.Right);
          ("PoA", Table.Right);
          ("max eq diameter", Table.Right);
        ]
  in
  for n = 4 to max_n do
    let max_m = n * (n - 1) / 2 in
    let opt = Array.make (max_m + 1) max_int in
    let worst_eq = Array.make (max_m + 1) (-1) in
    let worst_diam = Array.make (max_m + 1) 0 in
    Enumerate.connected_graphs n (fun g ->
        let m = Graph.m g in
        let c = Usage_cost.social_cost Usage_cost.Sum g in
        if c < opt.(m) then opt.(m) <- c;
        if Equilibrium.is_sum_equilibrium g then begin
          if c > worst_eq.(m) then worst_eq.(m) <- c;
          match Metrics.diameter g with
          | Some d -> if d > worst_diam.(m) then worst_diam.(m) <- d
          | None -> ()
        end);
    for m = n - 1 to max_m do
      if worst_eq.(m) >= 0 then
        Table.add_row t
          [
            Table.cell_int n;
            Table.cell_int m;
            Table.cell_int opt.(m);
            Table.cell_int worst_eq.(m);
            Table.cell_float ~digits:3 (float_of_int worst_eq.(m) /. float_of_int opt.(m));
            Table.cell_int worst_diam.(m);
          ]
    done
  done;
  Table.print t
