(** Shared helpers for the experiment tables. *)

val diameter_cell : Graph.t -> string
(** Diameter, or "inf" when disconnected. *)

val girth_cell : Graph.t -> string
(** Girth, or "-" for forests. *)

val verdict_cell : Equilibrium.verdict -> string
(** "yes" for equilibrium, otherwise the violating move. *)

val sum_verdict : Graph.t -> string

val max_verdict : Graph.t -> string

val outcome_name : Dynamics.outcome -> string

val mean_cell : float array -> string

val minmax_cell : int array -> string
(** "lo..hi" of an int sample. *)

val seeds : int -> int array
(** The deterministic seed list [1..k] used across all experiments. *)
