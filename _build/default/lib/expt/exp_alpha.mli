(** E11 / E12 — the α-game baseline and price of anarchy. *)

val e11_alpha_transfer : ?n:int -> ?alphas:float list -> unit -> unit
(** The paper's transfer claim: swap-equilibrium bounds hold for every α.
    Runs α-game best-response dynamics across a wide α sweep and reports,
    per α, the resulting network's diameter, whether it is an α-local
    equilibrium, whether the bare graph is also a basic-game swap
    equilibrium, and the social-cost ratio. The headline: the equilibrium
    diameter column stays flat (small) across four orders of magnitude
    of α. *)

val e12_price_of_anarchy : ?max_n:int -> unit -> unit
(** Exact price of anarchy of the basic sum game for small (n, m) by
    exhaustive search, plus diameter ratios — the quantity the paper
    relates to the diameter via [7]. *)
