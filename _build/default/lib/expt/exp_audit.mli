(** E18 / E19 — proof audits and spectral profiles. *)

val e18_lemma_audit : ?seeds:int -> unit -> unit
(** Computationally audits the paper's omitted lemma proofs (Lemmas 6–8)
    over named families and random graphs, then re-runs the Theorem 5 case
    analysis to isolate exactly which proof case fails on the Figure 3
    graph. *)

val e19_spectral_profile : unit -> unit
(** Spectral fingerprints of equilibria vs. the paper's constructions:
    algebraic connectivity, second adjacency eigenvalue, and Chung's
    spectral diameter bound next to the true diameter. Equilibria are
    expanders-in-spirit (large gap, small diameter); the Theorem 12 torus
    shows the opposite profile. *)
