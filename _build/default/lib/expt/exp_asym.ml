let e20_asymmetric_swap ?(n = 24) ?(seeds = 8) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E20: asymmetric (owner-only) swap game — equilibria are wider and deeper than symmetric ones (n = %d)"
           n)
      ~columns:
        [
          ("seed", Table.Right);
          ("ownership", Table.Left);
          ("converged", Table.Left);
          ("moves", Table.Right);
          ("final diameter", Table.Right);
          ("asym equilibrium", Table.Left);
          ("also symmetric eq", Table.Left);
        ]
  in
  let sym_diams = ref [] in
  let asym_diams = ref [] in
  Array.iter
    (fun seed ->
      let rng = Prng.create seed in
      let g0 = Random_graphs.tree rng n in
      (* symmetric baseline on the same start *)
      let sym = Dynamics.converge_sum ~rng g0 in
      (match Metrics.diameter sym.Dynamics.final with
      | Some d -> sym_diams := d :: !sym_diams
      | None -> ());
      List.iter
        (fun (name, ownership) ->
          let game = Asym_swap.create ownership g0 in
          let r = Asym_swap.run_dynamics game in
          let g = Asym_swap.graph r.Asym_swap.state in
          (match Metrics.diameter g with
          | Some d -> asym_diams := d :: !asym_diams
          | None -> ());
          Table.add_row t
            [
              Table.cell_int seed;
              name;
              Table.cell_bool r.Asym_swap.converged;
              Table.cell_int r.Asym_swap.moves;
              Exp_common.diameter_cell g;
              Table.cell_bool (Asym_swap.is_equilibrium r.Asym_swap.state);
              Table.cell_bool (Equilibrium.is_sum_equilibrium g);
            ])
        [ ("random", Asym_swap.Random seed); ("min-endpoint", Asym_swap.Min_endpoint) ])
    (Exp_common.seeds seeds);
  Table.print t;
  let pp_diams label diams =
    let a = Array.of_list (List.map float_of_int diams) in
    Printf.printf "  %s final diameters: mean %.2f, max %.0f\n" label (Stats.mean a)
      (Array.fold_left Float.max a.(0) a)
  in
  pp_diams "symmetric" !sym_diams;
  pp_diams "asymmetric" !asym_diams;
  print_endline
    "  Restricting swaps to owners removes most deviations, so dynamics stall in\n\
    \  shallower local optima that the symmetric game would escape: the asymmetric\n\
    \  equilibria are generally NOT full swap equilibria and carry larger diameters —\n\
    \  quantifying how much of the paper's small-diameter conclusion rests on\n\
    \  either-endpoint swaps.\n"
