lib/graph/graph.ml: Array Format Int64 List Prng
