lib/graph/centrality.ml: Array Bfs Float Graph List
