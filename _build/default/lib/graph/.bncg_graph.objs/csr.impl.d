lib/graph/csr.ml: Array Graph
