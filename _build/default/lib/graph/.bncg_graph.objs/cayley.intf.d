lib/graph/cayley.mli: Graph
