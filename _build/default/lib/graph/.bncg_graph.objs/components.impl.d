lib/graph/components.ml: Array Bfs Graph List
