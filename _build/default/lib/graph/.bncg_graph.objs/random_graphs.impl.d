lib/graph/random_graphs.ml: Array Components Float Graph Hashtbl Int List Prng Set Union_find Vec
