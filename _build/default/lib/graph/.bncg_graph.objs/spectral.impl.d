lib/graph/spectral.ml: Array Components Float Graph Int64 Prng
