lib/graph/polarity.ml: Array Graph List
