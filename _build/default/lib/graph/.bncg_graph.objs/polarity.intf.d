lib/graph/polarity.mli: Graph
