lib/graph/cayley.ml: Array Graph Hashtbl List
