lib/graph/power.ml: Array Bfs Graph
