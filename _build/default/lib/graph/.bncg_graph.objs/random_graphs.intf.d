lib/graph/random_graphs.mli: Graph Prng
