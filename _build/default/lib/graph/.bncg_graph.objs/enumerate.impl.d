lib/graph/enumerate.ml: Array Graph Random_graphs Union_find
