lib/graph/csr.mli: Graph
