lib/graph/metrics.ml: Array Bfs Graph Option
