lib/graph/fast_diameter.ml: Array Graph Option
