lib/graph/canon.mli: Graph
