lib/graph/fast_diameter.mli: Graph
