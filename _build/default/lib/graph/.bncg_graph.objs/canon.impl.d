lib/graph/canon.ml: Array Bytes Char Graph Hashtbl List Printf Stats Union_find
