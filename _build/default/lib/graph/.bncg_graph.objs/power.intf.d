lib/graph/power.mli: Graph
