let empty n = Graph.create n

let path n =
  let g = Graph.create n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  let g = path n in
  Graph.add_edge g (n - 1) 0;
  g

let star n =
  if n < 1 then invalid_arg "Generators.star: need n >= 1";
  let g = Graph.create n in
  for v = 1 to n - 1 do
    Graph.add_edge g 0 v
  done;
  g

let double_star a b =
  if a < 0 || b < 0 then invalid_arg "Generators.double_star";
  let g = Graph.create (2 + a + b) in
  Graph.add_edge g 0 1;
  for i = 0 to a - 1 do
    Graph.add_edge g 0 (2 + i)
  done;
  for i = 0 to b - 1 do
    Graph.add_edge g 1 (2 + a + i)
  done;
  g

let complete n =
  let g = Graph.create n in
  for v = 0 to n - 1 do
    for u = 0 to v - 1 do
      Graph.add_edge g u v
    done
  done;
  g

let complete_bipartite a b =
  let g = Graph.create (a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      Graph.add_edge g u v
    done
  done;
  g

let grid rows cols =
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_edge g (id r c) (id r (c + 1));
      if r + 1 < rows then Graph.add_edge g (id r c) (id (r + 1) c)
    done
  done;
  g

let torus_grid rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus_grid: need >= 3";
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Graph.add_edge g (id r c) (id r ((c + 1) mod cols));
      Graph.add_edge g (id r c) (id ((r + 1) mod rows) c)
    done
  done;
  g

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Generators.hypercube: need 0 <= d <= 20";
  let n = 1 lsl d in
  let g = Graph.create n in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then Graph.add_edge g v w
    done
  done;
  g

let circulant n offsets =
  if n < 1 then invalid_arg "Generators.circulant: need n >= 1";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if s < 1 || s > n / 2 then
        invalid_arg "Generators.circulant: offset out of [1, n/2]";
      if Hashtbl.mem seen s then
        invalid_arg "Generators.circulant: duplicate offset";
      Hashtbl.add seen s ())
    offsets;
  let g = Graph.create n in
  List.iter
    (fun s ->
      for v = 0 to n - 1 do
        ignore (Graph.try_add_edge g v ((v + s) mod n))
      done)
    offsets;
  g

let wheel n =
  if n < 3 then invalid_arg "Generators.wheel: need n >= 3";
  let g = Graph.create (n + 1) in
  for i = 1 to n do
    Graph.add_edge g 0 i;
    Graph.add_edge g i (if i = n then 1 else i + 1)
  done;
  g

let friendship k =
  if k < 1 then invalid_arg "Generators.friendship: need k >= 1";
  let g = Graph.create ((2 * k) + 1) in
  for i = 0 to k - 1 do
    let a = 1 + (2 * i) and b = 2 + (2 * i) in
    Graph.add_edge g 0 a;
    Graph.add_edge g 0 b;
    Graph.add_edge g a b
  done;
  g

let cocktail_party k =
  if k < 1 then invalid_arg "Generators.cocktail_party: need k >= 1";
  let n = 2 * k in
  let g = Graph.create n in
  for v = 0 to n - 1 do
    for u = 0 to v - 1 do
      if u / 2 <> v / 2 then Graph.add_edge g u v
    done
  done;
  g

let complete_multipartite parts =
  List.iter
    (fun s -> if s < 1 then invalid_arg "Generators.complete_multipartite: empty part")
    parts;
  let n = List.fold_left ( + ) 0 parts in
  let part_of = Array.make n 0 in
  let _ =
    List.fold_left
      (fun (idx, v) size ->
        for i = v to v + size - 1 do
          part_of.(i) <- idx
        done;
        (idx + 1, v + size))
      (0, 0) parts
  in
  let g = Graph.create n in
  for v = 0 to n - 1 do
    for u = 0 to v - 1 do
      if part_of.(u) <> part_of.(v) then Graph.add_edge g u v
    done
  done;
  g

let caterpillar spine legs =
  if spine < 1 then invalid_arg "Generators.caterpillar: need spine >= 1";
  let leg i = match List.nth_opt legs i with Some l -> l | None -> 0 in
  let total_legs = List.fold_left ( + ) 0 (List.init spine leg) in
  let g = Graph.create (spine + total_legs) in
  for i = 0 to spine - 2 do
    Graph.add_edge g i (i + 1)
  done;
  let next = ref spine in
  for i = 0 to spine - 1 do
    for _ = 1 to leg i do
      Graph.add_edge g i !next;
      incr next
    done
  done;
  g

let spider arm_lengths =
  List.iter
    (fun l -> if l < 1 then invalid_arg "Generators.spider: arm length >= 1")
    arm_lengths;
  let n = 1 + List.fold_left ( + ) 0 arm_lengths in
  let g = Graph.create n in
  let next = ref 1 in
  List.iter
    (fun len ->
      let prev = ref 0 in
      for _ = 1 to len do
        Graph.add_edge g !prev !next;
        prev := !next;
        incr next
      done)
    arm_lengths;
  g

let barbell k p =
  if k < 2 || p < 0 then invalid_arg "Generators.barbell";
  let n = (2 * k) + p in
  let g = Graph.create n in
  for v = 0 to k - 1 do
    for u = 0 to v - 1 do
      Graph.add_edge g u v
    done
  done;
  for v = k + p to n - 1 do
    for u = k + p to v - 1 do
      Graph.add_edge g u v
    done
  done;
  (* bridge path from clique-1 vertex k-1 through p middles to clique-2
     vertex k+p *)
  let prev = ref (k - 1) in
  for mid = k to k + p - 1 do
    Graph.add_edge g !prev mid;
    prev := mid
  done;
  Graph.add_edge g !prev (k + p);
  g

let sunlet n =
  if n < 3 then invalid_arg "Generators.sunlet: need n >= 3";
  let g = Graph.create (2 * n) in
  for i = 0 to n - 1 do
    Graph.add_edge g i ((i + 1) mod n);
    Graph.add_edge g i (n + i)
  done;
  g

let petersen () =
  let g = Graph.create 10 in
  for i = 0 to 4 do
    Graph.add_edge g i ((i + 1) mod 5);
    Graph.add_edge g i (5 + i);
    Graph.add_edge g (5 + i) (5 + ((i + 2) mod 5))
  done;
  g

let attach_pendant g v =
  let n = Graph.n g in
  if v < 0 || v >= n then invalid_arg "Generators.attach_pendant";
  let out = Graph.create (n + 1) in
  Graph.iter_edges (fun a b -> Graph.add_edge out a b) g;
  Graph.add_edge out v n;
  out

let lollipop k p =
  if k < 1 || p < 0 then invalid_arg "Generators.lollipop";
  let g = Graph.create (k + p) in
  for v = 0 to k - 1 do
    for u = 0 to v - 1 do
      Graph.add_edge g u v
    done
  done;
  for i = 0 to p - 1 do
    Graph.add_edge g (k - 1 + i) (k + i)
  done;
  g

let path_with_blobs ~arms ~arm_len ~blob =
  if arms < 1 || arm_len < 1 || blob < 1 then
    invalid_arg "Generators.path_with_blobs";
  let n = 1 + (arms * (arm_len + blob)) in
  let g = Graph.create n in
  for a = 0 to arms - 1 do
    let base = 1 + (a * (arm_len + blob)) in
    Graph.add_edge g 0 base;
    for i = 0 to arm_len - 2 do
      Graph.add_edge g (base + i) (base + i + 1)
    done;
    let tip = base + arm_len - 1 in
    let blob_base = base + arm_len in
    for i = 0 to blob - 1 do
      Graph.add_edge g tip (blob_base + i);
      for j = 0 to i - 1 do
        Graph.add_edge g (blob_base + j) (blob_base + i)
      done
    done
  done;
  g
