(** Connectivity structure: components, cut vertices, bridges.

    Lemma 3 of the paper reasons about cut vertices of max equilibria; the
    census and the dynamics engine need fast connectivity predicates. The
    articulation-point / bridge computation is an iterative Tarjan lowlink
    pass (no recursion, so deep paths do not overflow the stack). *)

val is_connected : Graph.t -> bool
(** The empty graph and the 1-vertex graph are connected. *)

val components : Graph.t -> int array * int
(** [components g] is [(label, count)]: [label.(v)] is the component index
    of [v], in [\[0, count)]. *)

val component_of : Graph.t -> int -> int list
(** Vertices of the component containing the given vertex, sorted. *)

val cut_vertices : Graph.t -> int list
(** Articulation points, sorted. *)

val bridges : Graph.t -> (int * int) list
(** Bridge edges with [u < v], sorted. *)

val is_tree : Graph.t -> bool
(** Connected with exactly n-1 edges (n >= 1). *)

val is_forest : Graph.t -> bool

val components_without : Graph.t -> int -> int array * int
(** [components_without g v] labels the components of [G - v]; [label.(v)]
    is [-1]. Used by the Lemma 3 checker. *)
