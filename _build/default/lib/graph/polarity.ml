let is_prime q =
  if q < 2 then false
  else begin
    let rec loop d = d * d > q || (q mod d <> 0 && loop (d + 1)) in
    loop 2
  end

let require_prime q =
  if not (is_prime q) then invalid_arg "Polarity: q must be prime"

let point_count q = (q * q) + q + 1

(* Points of PG(2,q) as normalized homogeneous triples (x, y, z) over F_q:
   first nonzero coordinate equal to 1.  The canonical enumeration is
   (1, y, z), (0, 1, z), (0, 0, 1). *)
let points q =
  let pts = ref [] in
  pts := [ (0, 0, 1) ];
  for z = q - 1 downto 0 do
    pts := (0, 1, z) :: !pts
  done;
  for y = q - 1 downto 0 do
    for z = q - 1 downto 0 do
      pts := (1, y, z) :: !pts
    done
  done;
  let arr = Array.of_list !pts in
  assert (Array.length arr = point_count q);
  arr

let dot q (x1, y1, z1) (x2, y2, z2) =
  ((x1 * x2) + (y1 * y2) + (z1 * z2)) mod q

let pg2 q =
  require_prime q;
  let pts = points q in
  let n = Array.length pts in
  (* Lines of PG(2,q) are also indexed by normalized triples: the line with
     coefficients L contains exactly the points P with L·P = 0. *)
  Array.mapi
    (fun li line ->
      let members = ref [] in
      for pi = n - 1 downto 0 do
        if dot q line pts.(pi) = 0 then members := pts.(pi) :: !members
      done;
      let idx_of p =
        let rec find i = if pts.(i) = p then i else find (i + 1) in
        find 0
      in
      li, List.map idx_of !members)
    pts

let incidence_graph q =
  require_prime q;
  let n = point_count q in
  let g = Graph.create (2 * n) in
  let lines = pg2 q in
  Array.iter
    (fun (li, members) -> List.iter (fun pi -> Graph.add_edge g pi (n + li)) members)
    lines;
  g

let polarity_graph q =
  require_prime q;
  let pts = points q in
  let n = Array.length pts in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      if dot q pts.(i) pts.(j) = 0 then Graph.add_edge g i j
    done
  done;
  g
