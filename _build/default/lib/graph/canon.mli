(** Canonical forms, isomorphism, automorphisms — for small graphs.

    The census deduplicates equilibria up to isomorphism and checks
    structural claims like "the Theorem 12 torus is vertex-transitive". The
    algorithm is classical: iterated color refinement (1-WL) to split
    vertices into classes, then a backtracking search over class-respecting
    permutations for the lexicographically minimal adjacency bitstring.
    Exponential in the worst case, so guarded: intended for n <= 12 or
    highly refined graphs; functions raise [Invalid_argument] past
    [max_search_vertices] unless documented otherwise. *)

val max_search_vertices : int
(** Hard cap (16) on the backtracking entry points. *)

val refine : Graph.t -> int array
(** Stable coloring from iterated neighborhood refinement; color ids are
    dense in [\[0, k)] and sorted by class signature. Isomorphic graphs get
    identical color histograms. Works for any size. *)

val canonical_form : Graph.t -> string
(** A string certificate: equal iff the graphs are isomorphic (for graphs
    within the search cap). *)

val isomorphic : Graph.t -> Graph.t -> bool
(** Cheap invariants first (n, m, degree sequence, refined color histogram),
    then certificate comparison. *)

val automorphisms : Graph.t -> int array list
(** All automorphisms as permutation arrays ([σ.(v)] is the image of [v]).
    Includes the identity. *)

val automorphism_count : Graph.t -> int

val orbits : Graph.t -> int array
(** [orbits g] labels each vertex with its automorphism-orbit index. *)

val is_vertex_transitive : Graph.t -> bool
(** Single orbit. Note: Cayley graphs are vertex-transitive by construction;
    use this only to spot-check small instances. *)
