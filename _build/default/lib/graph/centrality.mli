(** Vertex centralities.

    The game's two usage costs are (inverse) centralities: the sum cost is
    the reciprocal of closeness, the max cost is eccentricity. This module
    adds the standard family around them, including Brandes' betweenness,
    so equilibrium structure can be profiled (e.g. the star's center is the
    unique betweenness maximum; torus equilibria are centrality-flat). *)

val closeness : Graph.t -> float array
(** [(n-1) / Σ d(v,·)] per vertex; 0.0 for vertices that do not reach the
    whole graph. *)

val harmonic : Graph.t -> float array
(** [Σ_{u≠v} 1/d(v,u)] with unreachable terms contributing 0 — well-defined
    on disconnected graphs. *)

val degree : Graph.t -> float array
(** Degree normalized by (n-1); the trivial baseline. *)

val eccentricity : Graph.t -> float array
(** [1 / ecc(v)]; 0.0 when the graph is disconnected. Higher = more
    central, consistent with the other measures. *)

val betweenness : Graph.t -> float array
(** Brandes' algorithm (unweighted): for each vertex the sum over pairs
    (s, t) of the fraction of shortest s–t paths through it. Undirected
    convention: each unordered pair counted once. O(n·m) time. *)

val most_central : float array -> int
(** Index of the maximum (ties to the smallest index). *)

val spread : float array -> float
(** max − min; 0 for centrality-flat (e.g. vertex-transitive) graphs. *)
