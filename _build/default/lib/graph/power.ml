let power g x =
  if x < 1 then invalid_arg "Power.power: need x >= 1";
  let n = Graph.n g in
  let out = Graph.create n in
  let ws = Bfs.create_workspace n in
  for u = 0 to n - 1 do
    Bfs.run ws g u;
    for v = u + 1 to n - 1 do
      let d = Bfs.dist ws v in
      if d >= 1 && d <= x then Graph.add_edge out u v
    done
  done;
  out

let power_within g x =
  if x < 1 then invalid_arg "Power.power_within: need x >= 1";
  let dist = Bfs.all_pairs g in
  fun u v -> u <> v && dist.(u).(v) <= x
