(** Cayley graphs of finite Abelian groups.

    Section 5 of the paper (Theorem 15) proves the distance-uniformity
    conjecture for Cayley graphs of Abelian groups. Every finite Abelian
    group is a product of cyclic groups, so a group here is given by its
    cyclic factors [Z_{m1} × ... × Z_{mk}] and a connection set of tuples
    closed under negation. The paper's Theorem 12 torus is itself the Cayley
    graph of the even-coordinate-sum subgroup of Z_{2k}² with generators
    (±1, ±1). *)

type group
(** A finite Abelian group presented as a product of cyclic factors. *)

val group : int list -> group
(** [group [m1; ...; mk]] is Z_{m1} × ... × Z_{mk}. All factors >= 1. *)

val order : group -> int

val element_count : group -> int
(** Alias of {!order}. *)

val encode : group -> int array -> int
(** Mixed-radix rank of a tuple (entries reduced mod the factor sizes). *)

val decode : group -> int -> int array

val neg : group -> int array -> int array

val add : group -> int array -> int array -> int array

val is_symmetric : group -> int array list -> bool
(** Whether the connection set is closed under negation. *)

val cayley : group -> int array list -> Graph.t
(** [cayley g s] has a vertex per group element (vertex index = {!encode})
    and an edge {a, a+s} for each generator [s].
    @raise Invalid_argument if the set is not symmetric, or contains the
    identity. *)

val subgroup_cayley :
  group -> keep:(int array -> bool) -> int array list -> Graph.t * int array array
(** [subgroup_cayley g ~keep s] builds the Cayley graph of the subgroup
    [{a | keep a}] (caller must supply a genuine subgroup predicate and
    generators inside it). Returns the graph plus the tuple of each vertex,
    since subgroup elements get re-indexed densely. Used for the paper's
    even-sum torus subgroup. *)

val paper_torus_generators : int -> int array list
(** The four diagonal generators (±1, ±1) of the Theorem 12 torus inside
    Z_{2k}². *)
