let default_iterations = 3000

(* deterministic pseudo-random start vector, orthogonalization helpers *)

let start_vector n =
  Array.init n (fun i ->
      let h = Prng.hash64 (Int64.of_int (i + 1)) in
      (Int64.to_float (Int64.rem h 1000L) /. 1000.0) +. 0.5)

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm a = sqrt (dot a a)

let normalize a =
  let s = norm a in
  if s > 0.0 then
    for i = 0 to Array.length a - 1 do
      a.(i) <- a.(i) /. s
    done

let project_out a unit_b =
  (* a <- a - <a,b> b for unit b *)
  let c = dot a unit_b in
  for i = 0 to Array.length a - 1 do
    a.(i) <- a.(i) -. (c *. unit_b.(i))
  done

let adjacency_matvec g x out =
  let n = Graph.n g in
  for v = 0 to n - 1 do
    out.(v) <- 0.0
  done;
  for v = 0 to n - 1 do
    Graph.iter_neighbors (fun w -> out.(v) <- out.(v) +. x.(w)) g v
  done

let adjacency_spectral_radius ?(iterations = default_iterations) g =
  let n = Graph.n g in
  if n = 0 then 0.0
  else begin
    let x = start_vector n in
    normalize x;
    let y = Array.make n 0.0 in
    let lambda = ref 0.0 in
    for _ = 1 to iterations do
      adjacency_matvec g x y;
      lambda := norm y;
      Array.blit y 0 x 0 n;
      normalize x
    done;
    !lambda
  end

let algebraic_connectivity ?(iterations = default_iterations) g =
  let n = Graph.n g in
  if n <= 1 then 0.0
  else begin
    (* power iteration on M = c·I − L, deflating the all-ones eigenvector;
       the dominant remaining eigenvalue is c − λ₂(L).  c = 2·max_degree
       dominates every |c − λ| since 0 <= λ <= 2·max_degree. *)
    let c = 2.0 *. float_of_int (max 1 (Graph.max_degree g)) in
    let ones = Array.make n (1.0 /. sqrt (float_of_int n)) in
    let x = start_vector n in
    project_out x ones;
    normalize x;
    let y = Array.make n 0.0 in
    let mu = ref 0.0 in
    for _ = 1 to iterations do
      (* y = (cI − L) x = c x − deg(v) x(v) + Σ_w x(w) *)
      for v = 0 to n - 1 do
        y.(v) <- (c -. float_of_int (Graph.degree g v)) *. x.(v)
      done;
      for v = 0 to n - 1 do
        Graph.iter_neighbors (fun w -> y.(v) <- y.(v) +. x.(w)) g v
      done;
      project_out y ones;
      mu := norm y;
      Array.blit y 0 x 0 n;
      normalize x
    done;
    Float.max 0.0 (c -. !mu)
  end

let second_adjacency_eigenvalue ?(iterations = default_iterations) g =
  if not (Graph.is_regular g) then
    invalid_arg "Spectral.second_adjacency_eigenvalue: graph must be regular";
  let n = Graph.n g in
  if n <= 1 then 0.0
  else begin
    (* for regular graphs the top adjacency eigenvector is all-ones;
       deflate and power-iterate — converges to the second-largest
       |eigenvalue| *)
    let ones = Array.make n (1.0 /. sqrt (float_of_int n)) in
    let x = start_vector n in
    project_out x ones;
    normalize x;
    let y = Array.make n 0.0 in
    let lambda = ref 0.0 in
    for _ = 1 to iterations do
      adjacency_matvec g x y;
      project_out y ones;
      lambda := norm y;
      Array.blit y 0 x 0 n;
      normalize x
    done;
    !lambda
  end

let spectral_diameter_bound g =
  let n = Graph.n g in
  if n <= 1 then Some 0.0
  else if not (Graph.is_regular g) || not (Components.is_connected g) then None
  else begin
    let d = float_of_int (Graph.max_degree g) in
    let lambda = second_adjacency_eigenvalue g in
    if lambda >= d -. 1e-9 || lambda <= 0.0 then None
    else Some (Float.ceil (log (float_of_int (n - 1)) /. log (d /. lambda)))
  end
