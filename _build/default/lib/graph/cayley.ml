type group = {
  factors : int array;
  order : int;
}

let group factors =
  List.iter (fun m -> if m < 1 then invalid_arg "Cayley.group: factor < 1") factors;
  let factors = Array.of_list factors in
  { factors; order = Array.fold_left ( * ) 1 factors }

let order g = g.order

let element_count = order

let normalize g tuple =
  if Array.length tuple <> Array.length g.factors then
    invalid_arg "Cayley: tuple arity mismatch";
  Array.mapi
    (fun i x ->
      let m = g.factors.(i) in
      ((x mod m) + m) mod m)
    tuple

let encode g tuple =
  let t = normalize g tuple in
  let rank = ref 0 in
  for i = 0 to Array.length t - 1 do
    rank := (!rank * g.factors.(i)) + t.(i)
  done;
  !rank

let decode g rank =
  if rank < 0 || rank >= g.order then invalid_arg "Cayley.decode: out of range";
  let k = Array.length g.factors in
  let out = Array.make k 0 in
  let r = ref rank in
  for i = k - 1 downto 0 do
    out.(i) <- !r mod g.factors.(i);
    r := !r / g.factors.(i)
  done;
  out

let neg g tuple = normalize g (Array.map (fun x -> -x) tuple)

let add g a b =
  if Array.length a <> Array.length b then invalid_arg "Cayley.add: arity";
  normalize g (Array.mapi (fun i x -> x + b.(i)) a)

let is_symmetric g s =
  let codes = List.map (encode g) s in
  List.for_all (fun t -> List.mem (encode g (neg g t)) codes) s

let check_generators g s =
  if s = [] then invalid_arg "Cayley.cayley: empty connection set";
  if not (is_symmetric g s) then
    invalid_arg "Cayley.cayley: connection set not symmetric";
  let zero = encode g (Array.map (fun _ -> 0) g.factors) in
  if List.exists (fun t -> encode g t = zero) s then
    invalid_arg "Cayley.cayley: identity in connection set"

let cayley g s =
  check_generators g s;
  let graph = Graph.create g.order in
  for a = 0 to g.order - 1 do
    let ta = decode g a in
    List.iter
      (fun gen ->
        let b = encode g (add g ta gen) in
        ignore (Graph.try_add_edge graph a b))
      s
  done;
  graph

let subgroup_cayley g ~keep s =
  check_generators g s;
  let members = ref [] in
  for a = g.order - 1 downto 0 do
    let t = decode g a in
    if keep t then members := (a, t) :: !members
  done;
  let members = Array.of_list !members in
  let index = Hashtbl.create (Array.length members) in
  Array.iteri (fun i (code, _) -> Hashtbl.add index code i) members;
  List.iter
    (fun gen ->
      if not (keep (normalize g gen)) then
        invalid_arg "Cayley.subgroup_cayley: generator outside subgroup")
    s;
  let graph = Graph.create (Array.length members) in
  Array.iteri
    (fun i (_, tuple) ->
      List.iter
        (fun gen ->
          let target = encode g (add g tuple gen) in
          match Hashtbl.find_opt index target with
          | Some j -> ignore (Graph.try_add_edge graph i j)
          | None ->
            invalid_arg "Cayley.subgroup_cayley: predicate is not a subgroup")
        s)
    members;
  graph, Array.map snd members

let paper_torus_generators _k =
  [ [| 1; 1 |]; [| 1; -1 |]; [| -1; 1 |]; [| -1; -1 |] ]
