let components_impl g skip =
  (* BFS labeling; [skip] is an optional vertex treated as deleted. *)
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let queue = Array.make (max n 1) 0 in
  let count = ref 0 in
  for src = 0 to n - 1 do
    if label.(src) < 0 && src <> skip then begin
      let c = !count in
      incr count;
      label.(src) <- c;
      queue.(0) <- src;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let v = queue.(!head) in
        incr head;
        Graph.iter_neighbors
          (fun w ->
            if w <> skip && label.(w) < 0 then begin
              label.(w) <- c;
              queue.(!tail) <- w;
              incr tail
            end)
          g v
      done
    end
  done;
  label, !count

let components g = components_impl g (-1)

let is_connected g =
  let n = Graph.n g in
  if n <= 1 then true
  else begin
    let ws = Bfs.create_workspace n in
    Bfs.connected_from ws g 0
  end

let component_of g v =
  let label, _ = components g in
  let target = label.(v) in
  let acc = ref [] in
  for u = Graph.n g - 1 downto 0 do
    if label.(u) = target then acc := u :: !acc
  done;
  !acc

let components_without g v =
  let label, count = components_impl g v in
  label, count

(* Iterative Tarjan lowlink over an explicit stack.  For each root we track,
   per stack frame, the vertex, its parent, and the index of the next
   neighbor to scan. *)
let lowlink_scan g ~on_cut ~on_bridge =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let parent = Array.make n (-1) in
  let child_count = Array.make n 0 in
  let next_idx = Array.make n 0 in
  let timer = ref 0 in
  let stack = Array.make (max n 1) 0 in
  for root = 0 to n - 1 do
    if disc.(root) < 0 then begin
      disc.(root) <- !timer;
      low.(root) <- !timer;
      incr timer;
      stack.(0) <- root;
      let top = ref 0 in
      while !top >= 0 do
        let v = stack.(!top) in
        if next_idx.(v) < Graph.degree g v then begin
          let w = Graph.nth_neighbor g v next_idx.(v) in
          next_idx.(v) <- next_idx.(v) + 1;
          if disc.(w) < 0 then begin
            parent.(w) <- v;
            child_count.(v) <- child_count.(v) + 1;
            disc.(w) <- !timer;
            low.(w) <- !timer;
            incr timer;
            incr top;
            stack.(!top) <- w
          end
          else if w <> parent.(v) then
            low.(v) <- min low.(v) disc.(w)
        end
        else begin
          (* retreat: fold v's lowlink into its parent and test cut/bridge *)
          decr top;
          if !top >= 0 then begin
            let p = stack.(!top) in
            low.(p) <- min low.(p) low.(v);
            if low.(v) >= disc.(p) && (p <> root || child_count.(p) >= 2) then
              on_cut p;
            if low.(v) > disc.(p) then
              on_bridge (min p v) (max p v)
          end
        end
      done
    end
  done

let cut_vertices g =
  let n = Graph.n g in
  let is_cut = Array.make n false in
  lowlink_scan g ~on_cut:(fun v -> is_cut.(v) <- true) ~on_bridge:(fun _ _ -> ());
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if is_cut.(v) then acc := v :: !acc
  done;
  !acc

let bridges g =
  let acc = ref [] in
  lowlink_scan g ~on_cut:(fun _ -> ()) ~on_bridge:(fun u v -> acc := (u, v) :: !acc);
  List.sort compare !acc

let is_tree g = Graph.n g >= 1 && Graph.m g = Graph.n g - 1 && is_connected g

let is_forest g =
  let _, count = components g in
  Graph.m g = Graph.n g - count
