(** Exact diameter without all-pairs BFS: the iFUB algorithm
    (Crescenzi, Grossi, Habib, Lanzi, Marino; TCS 2013).

    A double sweep finds a long shortest path; rooting a BFS at its
    midpoint, vertices are processed by decreasing level — the upper bound
    2·level meets the running lower bound after few eccentricity
    computations on most real graphs. Worst case matches the naive O(n·m)
    bound, typical case is a handful of BFS runs. Used by the experiment
    harness on the larger tori and as a cross-check oracle for
    {!Metrics.diameter}. *)

val double_sweep_lower_bound : Graph.t -> int option
(** Eccentricity of the vertex found by two BFS hops from a max-degree
    start: a classical diameter lower bound (often tight). [None] if
    disconnected. *)

type stats = {
  diameter : int;
  bfs_runs : int;  (** total BFS traversals used, including the sweeps *)
}

val diameter_with_stats : Graph.t -> stats option
(** Exact diameter; [None] if disconnected (or n = 0). *)

val diameter : Graph.t -> int option
(** [diameter g = Option.map (fun s -> s.diameter) (diameter_with_stats g)] —
    always equal to {!Metrics.diameter}. *)
