(** Spectral graph quantities via power iteration.

    Expansion is the structural force behind small diameters — and hence
    behind the paper's conjecture that equilibria are shallow. This module
    computes the extreme adjacency eigenvalue and the Laplacian spectral
    gap (algebraic connectivity) with deterministic power/inverse
    iterations (no LAPACK in the sealed environment), plus the classical
    spectral diameter bounds they imply. Dense O(n²) vectors; intended for
    n up to a few thousand. *)

val adjacency_spectral_radius : ?iterations:int -> Graph.t -> float
(** λ₁ of the adjacency matrix by power iteration (exact on regular
    graphs: the degree). Deterministic start vector. *)

val algebraic_connectivity : ?iterations:int -> Graph.t -> float
(** λ₂ of the Laplacian (Fiedler value) by power iteration on
    [c·I − L] deflated against the all-ones vector. 0 exactly when the
    graph is disconnected. *)

val spectral_diameter_bound : Graph.t -> float option
(** Chung's bound for connected d-regular graphs:
    [diam <= ceil( ln(n−1) / ln(d/λ) ) ] with λ the second-largest
    adjacency eigenvalue in absolute value; [None] when the graph is not
    regular, not connected, or the bound degenerates (λ >= d, e.g.
    bipartite graphs where |λ_min| = d). *)

val second_adjacency_eigenvalue : ?iterations:int -> Graph.t -> float
(** Second-largest {e absolute} adjacency eigenvalue of a regular graph,
    by power iteration deflated against the top eigenvector (the all-ones
    vector for regular graphs).
    @raise Invalid_argument on non-regular graphs. *)
