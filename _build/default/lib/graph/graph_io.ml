let to_dot ?(name = "g") ?label g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  let vertex v =
    match label with
    | Some f -> Printf.sprintf "%S" (f v)
    | None -> string_of_int v
  in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v = 0 then
      Buffer.add_string buf (Printf.sprintf "  %s;\n" (vertex v))
  done;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  %s -- %s;\n" (vertex u) (vertex v)))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    (Graph.edges g);
  Buffer.contents buf

let of_edge_list s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let parse_pair line =
    match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
    | [ a; b ] -> (
      match int_of_string_opt a, int_of_string_opt b with
      | Some a, Some b -> a, b
      | _ -> invalid_arg ("Graph_io.of_edge_list: bad line " ^ line))
    | _ -> invalid_arg ("Graph_io.of_edge_list: bad line " ^ line)
  in
  match lines with
  | [] -> invalid_arg "Graph_io.of_edge_list: empty input"
  | header :: rest ->
    let n, m = parse_pair header in
    if n < 0 || m < 0 then invalid_arg "Graph_io.of_edge_list: bad header";
    let g = Graph.create n in
    List.iter
      (fun line ->
        let u, v = parse_pair line in
        Graph.add_edge g u v)
      rest;
    if Graph.m g <> m then
      invalid_arg "Graph_io.of_edge_list: edge count mismatch with header";
    g
