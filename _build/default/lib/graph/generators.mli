(** Deterministic graph families.

    These are the fixed constructions used throughout the paper and its
    experiments: stars and double stars (the two max-equilibrium tree
    families of Section 2), paths and cycles (dynamics seeds and
    counterexample scaffolding), and the standard product families
    (grids, tori, hypercubes, circulants) that feed the Cayley-graph
    experiments of Section 5. *)

val empty : int -> Graph.t

val path : int -> Graph.t
(** Vertices 0..n-1 in a line. *)

val cycle : int -> Graph.t
(** Requires n >= 3. *)

val star : int -> Graph.t
(** Center 0 joined to 1..n-1; the unique sum-equilibrium tree (Theorem 1).
    Requires n >= 1. *)

val double_star : int -> int -> Graph.t
(** [double_star a b] is the diameter-3 max-equilibrium tree of Figure 2:
    adjacent roots 0 and 1, with [a] leaves on root 0 and [b] leaves on
    root 1 (leaves 2..a+1 and a+2..a+b+1). Requires [a >= 0 && b >= 0]. *)

val complete : int -> Graph.t

val complete_bipartite : int -> int -> Graph.t
(** Parts [0..a-1] and [a..a+b-1]. *)

val grid : int -> int -> Graph.t
(** [grid rows cols], vertex (r,c) at index [r*cols + c]. *)

val torus_grid : int -> int -> Graph.t
(** Axis-aligned torus (wrap-around grid). Both dimensions >= 3. *)

val hypercube : int -> Graph.t
(** [hypercube d] on 2^d vertices; vertices adjacent iff Hamming distance
    1. Requires [0 <= d <= 20]. *)

val circulant : int -> int list -> Graph.t
(** [circulant n offsets]: vertex [i] adjacent to [i ± s mod n] for each
    offset [s]. Offsets must be in [\[1, n/2\]]; duplicates rejected. *)

val wheel : int -> Graph.t
(** [wheel n]: hub 0 joined to every vertex of the cycle 1..n. n >= 3. *)

val friendship : int -> Graph.t
(** [friendship k]: k triangles sharing the hub 0 (2k+1 vertices) — the
    classic diameter-2 graph where every pair has exactly one common
    neighbor. k >= 1. *)

val cocktail_party : int -> Graph.t
(** [cocktail_party k]: K_{k×2} — 2k vertices, everyone adjacent except the
    k antipodal pairs (2i, 2i+1). k >= 1. *)

val complete_multipartite : int list -> Graph.t
(** Parts of the given sizes in vertex order; edges exactly between
    different parts. *)

val caterpillar : int -> int list -> Graph.t
(** [caterpillar spine legs]: a path 0..spine-1 with [List.nth legs i]
    leaves attached to spine vertex i. [legs] may be shorter than the
    spine (missing entries mean 0). *)

val spider : int list -> Graph.t
(** [spider arm_lengths]: paths of the given lengths glued at hub 0. *)

val barbell : int -> int -> Graph.t
(** [barbell k p]: two k-cliques joined by a path of [p] intermediate
    vertices (p >= 0; p = 0 joins them by a single edge). *)

val sunlet : int -> Graph.t
(** [sunlet n]: the corona C_n ⊙ K₁ — an n-cycle 0..n-1 with one pendant
    leaf n+i attached to each cycle vertex i. 2n vertices, 2n edges,
    diameter ⌊n/2⌋ + 2. Requires n >= 3. The odd sunlets with n <= 7 are
    max equilibria (see Constructions.max_diameter4_small). *)

val petersen : unit -> Graph.t
(** The Petersen graph: 10 vertices (outer C5 = 0..4, inner pentagram =
    5..9), 3-regular, vertex-transitive, diameter 2, girth 5. *)

val attach_pendant : Graph.t -> int -> Graph.t
(** [attach_pendant g v] is a copy of [g] with one new vertex (index n)
    joined only to [v]. *)

val lollipop : int -> int -> Graph.t
(** Clique of size [k] with a path of length [p] attached — a classic
    high-diameter test input. *)

val path_with_blobs : arms:int -> arm_len:int -> blob:int -> Graph.t
(** The Section 5 non-example for distance uniformity: a hub vertex with
    [arms] paths of length [arm_len], each ending in a clique ("blob") of
    [blob] vertices. Almost all *pairs* sit at one distance but individual
    vertices do not, showing why Conjecture 14 needs per-vertex
    uniformity. *)
