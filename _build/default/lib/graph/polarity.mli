(** Finite projective planes and the Erdős–Rényi polarity graph ER_q.

    Albers et al. (SODA'06) disproved the tree conjecture for the sum game
    with an equilibrium "arising from finite projective planes"; all such
    known examples have diameter 2 (the fact motivating Theorem 5). This
    module builds PG(2,q) over a prime field and its polarity graph — the
    canonical diameter-2, girth-≥-5-ish dense family derived from projective
    planes — so the census machinery can *measure* its equilibrium status
    instead of citing it. *)

val is_prime : int -> bool

val pg2 : int -> (int * int list) array
(** [pg2 q] for prime [q] returns the lines of PG(2,q): an array of
    [q² + q + 1] entries [(line_index, points)], each line containing
    [q + 1] point indices in [\[0, q² + q + 1)]. Point i is the
    normalized homogeneous triple with rank i. *)

val incidence_graph : int -> Graph.t
(** Bipartite point–line incidence graph of PG(2,q): [2(q² + q + 1)]
    vertices, points first. Girth 6, diameter 3. *)

val polarity_graph : int -> Graph.t
(** ER_q: vertices are the points of PG(2,q); [u ~ v] iff the dot product
    of their homogeneous coordinates is 0 mod q (orthogonal polarity),
    excluding self-loops at absolute points. Diameter 2,
    [½ q (q+1)²] edges.
    @raise Invalid_argument if [q] is not prime. *)

val point_count : int -> int
(** [q² + q + 1]. *)
