(** Random graph models, all seeded through {!Prng.t}.

    These provide the initial conditions for the dynamics experiments
    (Theorem 9 / Lemma 2 sweeps need many independent starting networks with
    a controlled edge budget) and the instance distributions for the
    property-based tests. *)

val gnp : Prng.t -> int -> float -> Graph.t
(** Erdős–Rényi G(n,p): each pair independently with probability [p]. *)

val gnm : Prng.t -> int -> int -> Graph.t
(** Uniform graph with exactly [m] edges. Requires [0 <= m <= C(n,2)]. *)

val tree : Prng.t -> int -> Graph.t
(** Uniformly random labeled tree via a random Prüfer sequence (n >= 1). *)

val tree_of_pruefer : int -> int array -> Graph.t
(** Deterministic Prüfer decoding: the sequence must have length
    [max (n-2) 0] with entries in [\[0, n)]. Bijective with labeled trees;
    also used by the exhaustive tree census. *)

val connected_gnm : Prng.t -> int -> int -> Graph.t
(** Uniform-ish connected graph with [m] edges: a uniform spanning tree via
    random Prüfer sequence plus [m - (n-1)] uniformly chosen extra edges.
    Requires [m >= n - 1] and [m <= C(n,2)]. Not exactly uniform over
    connected graphs, but connected by construction — the distribution used
    for dynamics seeds. *)

val regular : Prng.t -> int -> int -> Graph.t
(** Random d-regular graph by repeated configuration-model pairing until the
    pairing is simple. Requires [n*d] even, [d < n]. Expected retries are
    O(e^{d²}) so keep [d] small (d <= 8 is instant). *)

val preferential_attachment : Prng.t -> int -> int -> Graph.t
(** Barabási–Albert: start from a [k+1]-clique, then each new vertex
    attaches to [k] distinct existing vertices chosen by degree. *)

val watts_strogatz : Prng.t -> int -> int -> float -> Graph.t
(** [watts_strogatz rng n k beta]: ring lattice with [k] neighbors each side,
    each edge rewired with probability [beta] (self-loops / duplicates
    skipped). Requires [1 <= k <= (n-1)/2]. *)

val uniform_spanning_tree : Prng.t -> Graph.t -> Graph.t
(** Wilson's algorithm (loop-erased random walks): an exactly uniform
    random spanning tree of the connected host graph. On K_n this samples
    uniformly among all n^(n-2) labeled trees (Cayley), matching {!tree}
    in distribution. @raise Invalid_argument on disconnected hosts. *)

val spanning_connected_subgraph : Prng.t -> Graph.t -> int -> Graph.t
(** [spanning_connected_subgraph rng g m] keeps a random spanning tree of
    the connected graph [g] plus random further edges of [g] up to [m]
    total. Used to thin dense constructions while preserving
    connectivity. *)
