type t = {
  offsets : int array;  (* length n+1 *)
  targets : int array;  (* length 2m, sorted within each row *)
}

let of_graph g =
  let n = Graph.n g in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + Graph.degree g v
  done;
  let targets = Array.make offsets.(n) 0 in
  for v = 0 to n - 1 do
    let row = Graph.neighbors g v in
    Array.blit row 0 targets offsets.(v) (Array.length row)
  done;
  { offsets; targets }

let n t = Array.length t.offsets - 1

let m t = Array.length t.targets / 2

let degree t v = t.offsets.(v + 1) - t.offsets.(v)

let iter_neighbors f t v =
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.targets.(i)
  done

let mem_edge t v w =
  let lo = ref t.offsets.(v) and hi = ref (t.offsets.(v + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = t.targets.(mid) in
    if x = w then found := true else if x < w then lo := mid + 1 else hi := mid - 1
  done;
  !found

let bfs_into t src ~dist ~queue =
  let nv = n t in
  Array.fill dist 0 nv (-1);
  dist.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    let dnext = dist.(v) + 1 in
    for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
      let w = t.targets.(i) in
      if dist.(w) < 0 then begin
        dist.(w) <- dnext;
        queue.(!tail) <- w;
        incr tail
      end
    done
  done;
  !tail

let all_pairs t =
  let nv = n t in
  let queue = Array.make (max nv 1) 0 in
  Array.init nv (fun src ->
      let dist = Array.make nv (-1) in
      ignore (bfs_into t src ~dist ~queue);
      dist)

let to_graph t =
  let g = Graph.create (n t) in
  for v = 0 to n t - 1 do
    iter_neighbors (fun w -> if v < w then Graph.add_edge g v w) t v
  done;
  g
