let gnp rng n p =
  if p < 0.0 || p > 1.0 then invalid_arg "Random_graphs.gnp: p out of range";
  let g = Graph.create n in
  for v = 0 to n - 1 do
    for u = 0 to v - 1 do
      if Prng.bernoulli rng p then Graph.add_edge g u v
    done
  done;
  g

let max_edges n = n * (n - 1) / 2

(* Pair index <-> edge bijection: edge (u, v) with u < v has index
   v*(v-1)/2 + u. *)
let decode_edge code =
  let v = int_of_float (Float.floor ((1.0 +. sqrt (1.0 +. (8.0 *. float_of_int code))) /. 2.0)) in
  (* floating point may be off by one; correct locally *)
  let v = ref v in
  while !v * (!v - 1) / 2 > code do
    decr v
  done;
  while (!v + 1) * !v / 2 <= code do
    incr v
  done;
  let u = code - (!v * (!v - 1) / 2) in
  u, !v

let gnm rng n m =
  if m < 0 || m > max_edges n then invalid_arg "Random_graphs.gnm: bad m";
  let g = Graph.create n in
  let codes = Prng.sample_distinct rng ~n:(max_edges n) ~k:m in
  Array.iter
    (fun code ->
      let u, v = decode_edge code in
      Graph.add_edge g u v)
    codes;
  g

let tree_of_pruefer n seq =
  (* Standard decoding: degree counts, then pair each sequence entry with
     the smallest current leaf. *)
  assert (Array.length seq = max (n - 2) 0);
  let g = Graph.create n in
  if n = 2 then Graph.add_edge g 0 1
  else if n > 2 then begin
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
    (* min-heap replaced by a pointer scan: leaves only ever decrease *)
    let module H = Set.Make (Int) in
    let leaves =
      ref (Array.to_list (Array.init n (fun i -> i))
          |> List.filter (fun v -> deg.(v) = 1)
          |> H.of_list)
    in
    Array.iter
      (fun v ->
        let leaf = H.min_elt !leaves in
        leaves := H.remove leaf !leaves;
        Graph.add_edge g leaf v;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := H.add v !leaves)
      seq;
    match H.elements !leaves with
    | [ a; b ] -> Graph.add_edge g a b
    | _ -> assert false
  end;
  g

let tree rng n =
  if n < 1 then invalid_arg "Random_graphs.tree: need n >= 1";
  let seq = Array.init (max (n - 2) 0) (fun _ -> Prng.int rng n) in
  tree_of_pruefer n seq

let connected_gnm rng n m =
  if n >= 1 && m < n - 1 then invalid_arg "Random_graphs.connected_gnm: m < n-1";
  if m > max_edges n then invalid_arg "Random_graphs.connected_gnm: m too big";
  let g = tree rng n in
  let extra = ref (m - (Graph.m g)) in
  (* rejection-sample the extra edges; duplicate probability is low until m
     approaches C(n,2), where the loop still terminates because we draw
     uniformly over all pairs *)
  while !extra > 0 do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && Graph.try_add_edge g u v then decr extra
  done;
  g

let regular rng n d =
  if d < 0 || d >= max n 1 then invalid_arg "Random_graphs.regular: bad d";
  if n * d mod 2 <> 0 then invalid_arg "Random_graphs.regular: nd odd";
  let stubs = Array.make (n * d) 0 in
  for v = 0 to n - 1 do
    for i = 0 to d - 1 do
      stubs.((v * d) + i) <- v
    done
  done;
  let rec attempt () =
    Prng.shuffle_in_place rng stubs;
    let g = Graph.create n in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      if u = v || not (Graph.try_add_edge g u v) then ok := false;
      i := !i + 2
    done;
    if !ok then g else attempt ()
  in
  attempt ()

let preferential_attachment rng n k =
  if k < 1 || n < k + 1 then invalid_arg "Random_graphs.preferential_attachment";
  let g = Graph.create n in
  (* endpoint multiset: vertex appears once per incident edge, giving the
     degree-proportional sampling distribution *)
  let endpoints = Vec.create ~dummy:(-1) () in
  for v = 0 to k do
    for u = 0 to v - 1 do
      Graph.add_edge g u v;
      Vec.push endpoints u;
      Vec.push endpoints v
    done
  done;
  for v = k + 1 to n - 1 do
    let chosen = Hashtbl.create k in
    while Hashtbl.length chosen < k do
      let idx = Prng.int rng (Vec.length endpoints) in
      let u = Vec.get endpoints idx in
      if not (Hashtbl.mem chosen u) then Hashtbl.add chosen u ()
    done;
    Hashtbl.iter
      (fun u () ->
        Graph.add_edge g u v;
        Vec.push endpoints u;
        Vec.push endpoints v)
      chosen
  done;
  g

let watts_strogatz rng n k beta =
  if k < 1 || 2 * k > n - 1 then invalid_arg "Random_graphs.watts_strogatz";
  if beta < 0.0 || beta > 1.0 then invalid_arg "Random_graphs.watts_strogatz";
  let g = Graph.create n in
  for v = 0 to n - 1 do
    for s = 1 to k do
      ignore (Graph.try_add_edge g v ((v + s) mod n))
    done
  done;
  (* rewire pass: detach the far endpoint with probability beta *)
  let es = Graph.edges g in
  List.iter
    (fun (u, v) ->
      if Prng.bernoulli rng beta then begin
        let w = Prng.int rng n in
        if w <> u && not (Graph.mem_edge g u w) then begin
          Graph.remove_edge g u v;
          Graph.add_edge g u w
        end
      end)
    es;
  g

let uniform_spanning_tree rng g =
  let n = Graph.n g in
  if n = 0 then Graph.create 0
  else begin
    if not (Components.is_connected g) then
      invalid_arg "Random_graphs.uniform_spanning_tree: host disconnected";
    (* Wilson: grow the tree by loop-erased random walks from each
       untouched vertex to the current tree.  next.(v) records the walk's
       latest successor of v; retracing from the start erases loops
       implicitly because overwritten successors forget them. *)
    let in_tree = Array.make n false in
    let next = Array.make n (-1) in
    let out = Graph.create n in
    let root = Prng.int rng n in
    in_tree.(root) <- true;
    for start = 0 to n - 1 do
      if not in_tree.(start) then begin
        let v = ref start in
        while not in_tree.(!v) do
          let deg = Graph.degree g !v in
          let w = Graph.nth_neighbor g !v (Prng.int rng deg) in
          next.(!v) <- w;
          v := w
        done;
        (* retrace the loop-erased path and add it to the tree *)
        let v = ref start in
        while not in_tree.(!v) do
          in_tree.(!v) <- true;
          Graph.add_edge out !v next.(!v);
          v := next.(!v)
        done
      end
    done;
    out
  end

let spanning_connected_subgraph rng g m =
  let n = Graph.n g in
  if m > Graph.m g then invalid_arg "Random_graphs.spanning_connected_subgraph";
  (* random spanning tree: randomized BFS/DFS hybrid via shuffled edges and
     union-find (uniformity is not needed, connectivity is) *)
  let es = Array.of_list (Graph.edges g) in
  Prng.shuffle_in_place rng es;
  let uf = Union_find.create n in
  let out = Graph.create n in
  Array.iter
    (fun (u, v) ->
      if Union_find.union uf u v then Graph.add_edge out u v)
    es;
  if not (Components.is_connected out) then
    invalid_arg "Random_graphs.spanning_connected_subgraph: input disconnected";
  if m < Graph.m out then
    invalid_arg "Random_graphs.spanning_connected_subgraph: m below n-1";
  let i = ref 0 in
  while Graph.m out < m do
    let u, v = es.(!i) in
    ignore (Graph.try_add_edge out u v);
    incr i
  done;
  out
