let closeness g =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  Array.init n (fun v ->
      let r = Bfs.reach ws g v in
      if r.Bfs.reached < n || n <= 1 || r.Bfs.sum = 0 then 0.0
      else float_of_int (n - 1) /. float_of_int r.Bfs.sum)

let harmonic g =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  Array.init n (fun v ->
      Bfs.run ws g v;
      let acc = ref 0.0 in
      for u = 0 to n - 1 do
        if u <> v then begin
          let d = Bfs.dist ws u in
          if d <> Bfs.unreachable then acc := !acc +. (1.0 /. float_of_int d)
        end
      done;
      !acc)

let degree g =
  let n = Graph.n g in
  Array.init n (fun v ->
      if n <= 1 then 0.0 else float_of_int (Graph.degree g v) /. float_of_int (n - 1))

let eccentricity g =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  Array.init n (fun v ->
      let r = Bfs.reach ws g v in
      if r.Bfs.reached < n || r.Bfs.ecc = 0 then 0.0
      else 1.0 /. float_of_int r.Bfs.ecc)

(* Brandes (2001), unweighted case: one BFS per source builds the shortest-
   path DAG (sigma counts, predecessor lists), then dependencies accumulate
   in reverse BFS order. *)
let betweenness g =
  let n = Graph.n g in
  let centrality = Array.make n 0.0 in
  let dist = Array.make n (-1) in
  let sigma = Array.make n 0.0 in
  let delta = Array.make n 0.0 in
  let order = Array.make n 0 in
  let preds = Array.make n [] in
  for s = 0 to n - 1 do
    Array.fill dist 0 n (-1);
    Array.fill sigma 0 n 0.0;
    Array.fill delta 0 n 0.0;
    Array.fill preds 0 n [];
    dist.(s) <- 0;
    sigma.(s) <- 1.0;
    order.(0) <- s;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = order.(!head) in
      incr head;
      Graph.iter_neighbors
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            order.(!tail) <- w;
            incr tail
          end;
          if dist.(w) = dist.(v) + 1 then begin
            sigma.(w) <- sigma.(w) +. sigma.(v);
            preds.(w) <- v :: preds.(w)
          end)
        g v
    done;
    for i = !tail - 1 downto 1 do
      let w = order.(i) in
      List.iter
        (fun v ->
          delta.(v) <- delta.(v) +. (sigma.(v) /. sigma.(w) *. (1.0 +. delta.(w))))
        preds.(w);
      centrality.(w) <- centrality.(w) +. delta.(w)
    done
  done;
  (* undirected graphs: each pair was counted from both endpoints *)
  Array.map (fun x -> x /. 2.0) centrality

let most_central c =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > c.(!best) then best := i) c;
  !best

let spread c =
  if Array.length c = 0 then 0.0
  else begin
    let lo = Array.fold_left Float.min c.(0) c in
    let hi = Array.fold_left Float.max c.(0) c in
    hi -. lo
  end
