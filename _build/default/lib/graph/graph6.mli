(** graph6 encoding (McKay's format).

    Compact ASCII serialization of undirected graphs, used to persist census
    results and to exchange instances with external tools (nauty, House of
    Graphs). Supports n < 63 (the small-graph regime of the census) plus the
    4-byte extended header up to n < 258048. *)

val encode : Graph.t -> string

val decode : string -> Graph.t
(** @raise Invalid_argument on malformed input. *)
