(** Mutable simple undirected graphs on a fixed vertex set [0 .. n-1].

    This is the working representation for swap dynamics: adjacency rows are
    growable int arrays, so an edge swap is two O(deg) row edits and BFS can
    run directly over the rows without building a snapshot. Self-loops and
    parallel edges are rejected. Vertex count is fixed at creation — network
    creation games never add or remove agents, only edges. *)

type t

val create : int -> t
(** [create n] is the empty graph on [n] vertices. [n >= 0]. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** O(min degree) scan. [mem_edge g v v] is [false]. *)

val add_edge : t -> int -> int -> unit
(** @raise Invalid_argument on self-loops, duplicate edges, or out-of-range
    endpoints. *)

val try_add_edge : t -> int -> int -> bool
(** Like {!add_edge} but returns [false] instead of raising when the edge is
    already present (still raises on self-loops / range errors). *)

val remove_edge : t -> int -> int -> unit
(** @raise Invalid_argument if the edge is absent. *)

val nth_neighbor : t -> int -> int -> int
(** [nth_neighbor g v i] is the [i]-th entry of [v]'s adjacency row, for
    [0 <= i < degree g v]. Row order is unspecified and changes under
    mutation. *)

val iter_neighbors : (int -> unit) -> t -> int -> unit
(** {b Warning}: iterates the live adjacency row. Mutating the graph from
    the callback (even add-then-undo) reorders rows and skips or repeats
    entries — snapshot with {!neighbors} first in that case. The same
    caveat applies to {!fold_neighbors}, {!iter_edges} and
    {!fold_edges}. *)

val fold_neighbors : ('acc -> int -> 'acc) -> 'acc -> t -> int -> 'acc

val exists_neighbor : (int -> bool) -> t -> int -> bool

val neighbors : t -> int -> int array
(** Fresh sorted array of neighbors. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Each edge visited once, with [u < v]. *)

val fold_edges : ('acc -> int -> int -> 'acc) -> 'acc -> t -> 'acc

val edges : t -> (int * int) list
(** Sorted list of edges, each with [u < v]. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n es] builds a graph; raises like {!add_edge} on bad input. *)

val copy : t -> t

val equal : t -> t -> bool
(** Same vertex count and same edge set. *)

val hash : t -> int64
(** Order-independent 64-bit hash of the edge set (SplitMix64-mixed);
    used for cycle detection in dynamics. Equal graphs hash equal. *)

val max_degree : t -> int

val min_degree : t -> int
(** Minimum over all vertices; 0 for the empty graph on >= 1 vertices.
    @raise Invalid_argument on the 0-vertex graph. *)

val degree_sequence : t -> int array
(** Sorted descending. *)

val is_regular : t -> bool

val complement_edges : t -> (int * int) list
(** Non-edges [u < v]; the candidate set for insertion-stability checks. *)

val pp : Format.formatter -> t -> unit
(** Human-readable [n/m] plus the edge list (for debugging and test
    failures). *)

val to_string : t -> string
