(** Text interchange formats beyond graph6.

    DOT output feeds Graphviz for figures; the whitespace edge-list format
    round-trips through the CLI and is trivial to produce from any other
    tool. *)

val to_dot : ?name:string -> ?label:(int -> string) -> Graph.t -> string
(** Undirected DOT ([graph { ... }]). [label] overrides the default
    numeric vertex names; isolated vertices are emitted explicitly. *)

val to_edge_list : Graph.t -> string
(** First line "n m", then one "u v" line per edge (u < v, sorted). *)

val of_edge_list : string -> Graph.t
(** Inverse of {!to_edge_list}; blank lines and [#] comments ignored.
    @raise Invalid_argument on malformed input, out-of-range endpoints,
    duplicates, or a wrong edge count. *)
