(** Graph powers.

    Theorem 13 converts a sum-equilibrium graph into a distance-uniform
    graph by taking the x-th power: distances collapse to ⌈d/x⌉. *)

val power : Graph.t -> int -> Graph.t
(** [power g x] joins [u, v] iff [1 <= d(u,v) <= x]. Requires [x >= 1].
    O(n·m) via one BFS per vertex. Disconnected inputs are allowed; only
    finite distances produce edges. *)

val power_within : Graph.t -> int -> (int -> int -> bool)
(** [power_within g x] is a membership oracle for the power graph's edge
    set, backed by a precomputed distance matrix. *)
