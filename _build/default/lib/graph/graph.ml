type t = {
  nv : int;
  mutable ne : int;
  deg : int array;
  adj : int array array ref;  (* rows grow on demand; row v valid in [0, deg.(v)) *)
}

(* Rows are stored unsorted: membership is a linear scan (degrees in
   equilibrium graphs are small) and removal is a swap-with-last, so both
   add and remove are O(deg). *)

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { nv = n; ne = 0; deg = Array.make n 0; adj = ref (Array.make n [||]) }

let n t = t.nv

let m t = t.ne

let check_vertex t v =
  if v < 0 || v >= t.nv then invalid_arg "Graph: vertex out of range"

let degree t v =
  check_vertex t v;
  t.deg.(v)

let row t v = !(t.adj).(v)

let mem_row t v w =
  let r = row t v and d = t.deg.(v) in
  let rec scan i = i < d && (r.(i) = w || scan (i + 1)) in
  scan 0

let mem_edge t v w =
  check_vertex t v;
  check_vertex t w;
  if v = w then false
  else if t.deg.(v) <= t.deg.(w) then mem_row t v w
  else mem_row t w v

let push_row t v w =
  let r = row t v in
  let d = t.deg.(v) in
  if d = Array.length r then begin
    let r' = Array.make (max 4 (2 * d)) (-1) in
    Array.blit r 0 r' 0 d;
    !(t.adj).(v) <- r';
    r'.(d) <- w
  end
  else r.(d) <- w;
  t.deg.(v) <- d + 1

let add_edge t v w =
  check_vertex t v;
  check_vertex t w;
  if v = w then invalid_arg "Graph.add_edge: self-loop";
  if mem_edge t v w then invalid_arg "Graph.add_edge: duplicate edge";
  push_row t v w;
  push_row t w v;
  t.ne <- t.ne + 1

let try_add_edge t v w =
  check_vertex t v;
  check_vertex t w;
  if v = w then invalid_arg "Graph.try_add_edge: self-loop";
  if mem_edge t v w then false
  else begin
    push_row t v w;
    push_row t w v;
    t.ne <- t.ne + 1;
    true
  end

let remove_row t v w =
  let r = row t v and d = t.deg.(v) in
  let rec find i = if i >= d then -1 else if r.(i) = w then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then invalid_arg "Graph.remove_edge: absent edge";
  r.(i) <- r.(d - 1);
  t.deg.(v) <- d - 1

let remove_edge t v w =
  check_vertex t v;
  check_vertex t w;
  if v = w then invalid_arg "Graph.remove_edge: self-loop";
  remove_row t v w;
  remove_row t w v;
  t.ne <- t.ne - 1

let nth_neighbor t v i =
  check_vertex t v;
  if i < 0 || i >= t.deg.(v) then invalid_arg "Graph.nth_neighbor: index";
  (row t v).(i)

let iter_neighbors f t v =
  check_vertex t v;
  let r = row t v and d = t.deg.(v) in
  for i = 0 to d - 1 do
    f r.(i)
  done

let fold_neighbors f acc t v =
  check_vertex t v;
  let r = row t v and d = t.deg.(v) in
  let acc = ref acc in
  for i = 0 to d - 1 do
    acc := f !acc r.(i)
  done;
  !acc

let exists_neighbor p t v =
  check_vertex t v;
  let r = row t v and d = t.deg.(v) in
  let rec scan i = i < d && (p r.(i) || scan (i + 1)) in
  scan 0

let neighbors t v =
  check_vertex t v;
  let a = Array.sub (row t v) 0 t.deg.(v) in
  Array.sort compare a;
  a

let iter_edges f t =
  for v = 0 to t.nv - 1 do
    let r = row t v and d = t.deg.(v) in
    for i = 0 to d - 1 do
      if v < r.(i) then f v r.(i)
    done
  done

let fold_edges f acc t =
  let acc = ref acc in
  iter_edges (fun u v -> acc := f !acc u v) t;
  !acc

let edges t =
  fold_edges (fun acc u v -> (u, v) :: acc) [] t |> List.sort compare

let of_edges nv es =
  let g = create nv in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy t =
  {
    nv = t.nv;
    ne = t.ne;
    deg = Array.copy t.deg;
    adj = ref (Array.init t.nv (fun v -> Array.sub (row t v) 0 t.deg.(v)));
  }

let equal a b =
  a.nv = b.nv && a.ne = b.ne
  &&
  let ok = ref true in
  iter_edges (fun u v -> if not (mem_edge b u v) then ok := false) a;
  !ok

let hash t =
  (* Sum of per-edge mixes is commutative, hence independent of edge order. *)
  let acc = ref (Prng.hash64 (Int64.of_int t.nv)) in
  iter_edges
    (fun u v ->
      let code = Int64.of_int ((u * t.nv) + v) in
      acc := Int64.add !acc (Prng.hash64 code))
    t;
  Prng.hash64 !acc

let max_degree t = Array.fold_left max 0 t.deg

let min_degree t =
  if t.nv = 0 then invalid_arg "Graph.min_degree: empty graph";
  Array.fold_left min t.deg.(0) t.deg

let degree_sequence t =
  let d = Array.copy t.deg in
  Array.sort (fun a b -> compare b a) d;
  d

let is_regular t = t.nv = 0 || max_degree t = min_degree t

let complement_edges t =
  let acc = ref [] in
  for u = t.nv - 1 downto 0 do
    for v = t.nv - 1 downto u + 1 do
      if not (mem_edge t u v) then acc := (u, v) :: !acc
    done
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>graph(n=%d, m=%d) {" t.nv t.ne;
  iter_edges (fun u v -> Format.fprintf ppf "@ %d-%d" u v) t;
  Format.fprintf ppf " }@]"

let to_string t = Format.asprintf "%a" pp t
