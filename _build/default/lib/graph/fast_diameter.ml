type stats = { diameter : int; bfs_runs : int }

(* BFS with parent tracking, reused by the sweep and the midpoint hunt. *)
let bfs_parents g src dist parent queue =
  let n = Graph.n g in
  Array.fill dist 0 n (-1);
  dist.(src) <- 0;
  parent.(src) <- -1;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    Graph.iter_neighbors
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          parent.(w) <- v;
          queue.(!tail) <- w;
          incr tail
        end)
      g v
  done;
  !tail

let farthest dist n =
  let best = ref 0 in
  for v = 1 to n - 1 do
    if dist.(v) > dist.(!best) then best := v
  done;
  !best

let max_degree_vertex g =
  let best = ref 0 in
  for v = 1 to Graph.n g - 1 do
    if Graph.degree g v > Graph.degree g !best then best := v
  done;
  !best

let double_sweep g =
  (* returns (a, b, lower_bound, midpoint, bfs_runs) or None when
     disconnected *)
  let n = Graph.n g in
  let dist = Array.make n (-1) and parent = Array.make n (-1) in
  let queue = Array.make (max n 1) 0 in
  let start = max_degree_vertex g in
  if bfs_parents g start dist parent queue < n then None
  else begin
    let a = farthest dist n in
    ignore (bfs_parents g a dist parent queue);
    let b = farthest dist n in
    let lb = dist.(b) in
    (* walk halfway back from b toward a along BFS parents *)
    let mid = ref b in
    for _ = 1 to lb / 2 do
      mid := parent.(!mid)
    done;
    Some (a, b, lb, !mid, 2)
  end

let double_sweep_lower_bound g =
  if Graph.n g = 0 then None
  else Option.map (fun (_, _, lb, _, _) -> lb) (double_sweep g)

let diameter_with_stats g =
  let n = Graph.n g in
  if n = 0 then None
  else if n = 1 then Some { diameter = 0; bfs_runs = 0 }
  else
    match double_sweep g with
    | None -> None
    | Some (_, _, sweep_lb, mid, sweep_runs) ->
      let dist = Array.make n (-1) and parent = Array.make n (-1) in
      let queue = Array.make n 0 in
      ignore (bfs_parents g mid dist parent queue);
      let runs = ref (sweep_runs + 1) in
      let levels = Array.copy dist in
      let top = Array.fold_left max 0 levels in
      let lb = ref (max sweep_lb top) in
      (* process vertices by decreasing BFS level; at level i the best any
         remaining vertex can contribute is 2i *)
      let ecc_dist = Array.make n (-1) in
      let i = ref top in
      while 2 * !i > !lb do
        for v = 0 to n - 1 do
          if levels.(v) = !i && 2 * !i > !lb then begin
            ignore (bfs_parents g v ecc_dist parent queue);
            incr runs;
            let e = Array.fold_left max 0 ecc_dist in
            if e > !lb then lb := e
          end
        done;
        decr i
      done;
      Some { diameter = !lb; bfs_runs = !runs }

let diameter g = Option.map (fun s -> s.diameter) (diameter_with_stats g)
