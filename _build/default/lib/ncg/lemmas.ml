type violation = {
  description : string;
  vertices : int list;
}

let check_lemma6 g =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  let bad = ref None in
  let v = ref 0 in
  while !bad = None && !v < n do
    (match Metrics.local_diameter g !v with
    | Some 2 ->
      Swap.iter_moves g !v (fun mv ->
          if !bad = None then begin
            let d = Swap.delta ws Usage_cost.Sum g mv in
            if d < 0 then
              bad :=
                Some
                  {
                    description =
                      Printf.sprintf "local-diameter-2 vertex improves via %s (delta %d)"
                        (Swap.move_to_string mv) d;
                    vertices = [ !v ];
                  }
          end)
    | Some _ | None -> ());
    incr v
  done;
  !bad

let check_lemma7 g =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  let bad = ref None in
  let v = ref 0 in
  while !bad = None && !v < n do
    (match Metrics.local_diameter g !v with
    | Some 3 ->
      Bfs.run ws g !v;
      let dist_v = Array.init n (fun x -> Bfs.dist ws x) in
      let before = Array.fold_left ( + ) 0 dist_v in
      List.iter
        (fun w ->
          if !bad = None && w <> !v && not (Graph.mem_edge g !v w) then begin
            let r = dist_v.(w) in
            let budget =
              (r - 1)
              + Graph.fold_neighbors
                  (fun acc u -> if dist_v.(u) = 3 then acc + 1 else acc)
                  0 g w
            in
            Graph.add_edge g !v w;
            Bfs.run ws g !v;
            let after = ref 0 in
            for x = 0 to n - 1 do
              after := !after + Bfs.dist ws x
            done;
            Graph.remove_edge g !v w;
            let gain = before - !after in
            if gain > budget then
              bad :=
                Some
                  {
                    description =
                      Printf.sprintf
                        "adding %d-%d (distance %d) gains %d > budget %d" !v w r gain
                        budget;
                    vertices = [ !v; w ];
                  }
          end)
        (List.init n (fun i -> i))
    | Some _ | None -> ());
    incr v
  done;
  !bad

let check_lemma8 g =
  match Metrics.girth g with
  | Some girth when girth < 4 -> None (* hypothesis not met: vacuous *)
  | Some _ | None ->
    let n = Graph.n g in
    let ws = Bfs.create_workspace n in
    let bad = ref None in
    let v = ref 0 in
    while !bad = None && !v < n do
      Swap.iter_moves g !v (fun mv ->
          match mv with
          | Swap.Swap { actor; drop; add } when !bad = None ->
            let before = Bfs.distances g actor in
            Swap.apply g mv;
            Bfs.run ws g actor;
            let after = Bfs.dist ws drop in
            Swap.undo g mv;
            let increase =
              if after = Bfs.unreachable then max_int else after - before.(drop)
            in
            let required = if Graph.mem_edge g drop add then 1 else 2 in
            if increase < required then
              bad :=
                Some
                  {
                    description =
                      Printf.sprintf
                        "swap %s increases d(%d,%d) by %d < required %d"
                        (Swap.move_to_string mv) actor drop increase required;
                    vertices = [ actor; drop; add ];
                  }
          | Swap.Swap _ | Swap.Delete _ -> ());
      incr v
    done;
    !bad

let theorem5_case_analysis () =
  let g = Constructions.theorem5_graph in
  let ws = Bfs.create_workspace (Graph.n g) in
  let improves mv = Swap.delta ws Usage_cost.Sum g mv < 0 in
  let vx = Constructions.theorem5_vertex in
  let all_ok actor candidates =
    List.for_all (fun (drop, add) ->
        not (improves (Swap.Swap { actor; drop; add })))
      candidates
  in
  let cluster_vertices =
    List.concat_map (fun i -> [ vx (Constructions.Cluster (i, 1)); vx (Constructions.Cluster (i, 2)) ])
      [ 1; 2; 3 ]
  in
  let hub = vx Constructions.Hub in
  let cases = ref [] in
  let add_case name ok = cases := (name, ok) :: !cases in
  (* Case 1 (Lemma 6): cluster vertices have local diameter 2, no swap
     around them helps *)
  let cluster_ok =
    List.for_all
      (fun c ->
        let ok = ref true in
        Swap.iter_moves g c (fun mv -> if improves mv then ok := false);
        !ok)
      cluster_vertices
  in
  add_case "cluster vertices c_ik cannot improve (Lemma 6)" cluster_ok;
  (* Case 2: the hub a *)
  let hub_ok =
    let ok = ref true in
    Swap.iter_moves g hub (fun mv -> if improves mv then ok := false);
    !ok
  in
  add_case "hub a cannot improve" hub_ok;
  (* Case 3: branches b_i *)
  let branch_ok =
    List.for_all
      (fun i ->
        let b = vx (Constructions.Branch i) in
        let ok = ref true in
        Swap.iter_moves g b (fun mv -> if improves mv then ok := false);
        !ok)
      [ 1; 2; 3 ]
  in
  add_case "branches b_i cannot improve" branch_ok;
  (* Case 4a: collectors d_i, swaps NOT targeting the matched partner of
     the dropped vertex *)
  let partner_of i k j =
    (* matched partner of c_{i,k} inside cluster j (both layouts wired in
       Constructions: parallel C1-C2, C2-C3; crossed C1-C3) *)
    let crossed = (min i j, max i j) = (1, 3) in
    vx (Constructions.Cluster (j, if crossed then 3 - k else k))
  in
  let collector_cases ~to_partner =
    List.for_all
      (fun i ->
        let d = vx (Constructions.Collector i) in
        let drops = [ (i, 1); (i, 2) ] in
        List.for_all
          (fun (ii, k) ->
            let drop = vx (Constructions.Cluster (ii, k)) in
            let others = List.filter (fun j -> j <> i) [ 1; 2; 3 ] in
            List.for_all
              (fun j ->
                let partner = partner_of ii k j in
                let targets =
                  List.filter
                    (fun t ->
                      t <> d && t <> drop
                      && (not (Graph.mem_edge g d t))
                      && (t = partner) = to_partner)
                    [ vx (Constructions.Cluster (j, 1)); vx (Constructions.Cluster (j, 2)) ]
                in
                all_ok d (List.map (fun t -> (drop, t)) targets))
              others)
          drops)
      [ 1; 2; 3 ]
  in
  add_case "collectors d_i: swaps to non-partner cluster vertices"
    (collector_cases ~to_partner:false);
  add_case "collectors d_i: swaps to the MATCHED PARTNER of the dropped vertex"
    (collector_cases ~to_partner:true);
  List.rev !cases
