let lg n =
  if n < 1 then invalid_arg "Theory.lg";
  log (float_of_int n) /. log 2.0

let theorem9_bound n = Float.pow 2.0 (3.0 *. sqrt (lg n))

let theorem9_recurrence_bound n =
  if n < 2 then 0
  else begin
    let lgn = lg n in
    let k0 = Float.pow 2.0 (sqrt lgn) in
    let k = ref k0 and b = ref k0 in
    let half = float_of_int n /. 2.0 in
    while !b <= half do
      let growth = Float.max 2.0 (!k /. (20.0 *. lgn)) in
      b := !b *. growth;
      k := !k *. 4.0
    done;
    (* once B_k > n/2, any two radius-k balls intersect: diameter <= 2k *)
    int_of_float (Float.ceil (2.0 *. !k))
  end

type lemma10_result =
  | Small_diameter
  | Edge of { x : int; y : int; removal_cost : int }

let removal_cost_from g x y =
  (* increase in x's distance sum when edge xy is removed; infinite if the
     removal disconnects *)
  let ws = Bfs.create_workspace (Graph.n g) in
  let before = Usage_cost.vertex_cost ws Usage_cost.Sum g x in
  Graph.remove_edge g x y;
  let after = Usage_cost.vertex_cost ws Usage_cost.Sum g x in
  Graph.add_edge g x y;
  if Usage_cost.is_infinite after then Usage_cost.infinite else after - before

let lemma10_check g u =
  let n = Graph.n g in
  if n < 2 then Some Small_diameter
  else begin
    let lgn = lg n in
    match Metrics.diameter g with
    | None -> None
    | Some d when float_of_int d <= 2.0 *. lgn -> Some Small_diameter
    | Some _ ->
      let ws = Bfs.create_workspace n in
      Bfs.run ws g u;
      let budget = 2.0 *. float_of_int n *. (1.0 +. lgn) in
      let found = ref None in
      (* snapshot: removal_cost_from mutates the graph *)
      List.iter
        (fun (a, b) ->
          if !found = None then begin
            (* the lemma's edge is examined from whichever endpoint is
               within lg n of u *)
            List.iter
              (fun (x, y) ->
                if
                  !found = None
                  && float_of_int (Bfs.dist ws x) <= lgn
                then begin
                  let cost = removal_cost_from g x y in
                  if float_of_int cost <= budget then
                    found := Some (Edge { x; y; removal_cost = cost })
                end)
              [ (a, b); (b, a) ]
          end)
        (Graph.edges g);
      !found
  end

let corollary11_max_gain g =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  let best = ref 0 in
  List.iter
    (fun (u, v) ->
      let check x =
        let before = Usage_cost.vertex_cost ws Usage_cost.Sum g x in
        Graph.add_edge g u v;
        let after = Usage_cost.vertex_cost ws Usage_cost.Sum g x in
        Graph.remove_edge g u v;
        let gain = before - after in
        if gain > !best then best := gain
      in
      check u;
      check v)
    (Graph.complement_edges g);
  !best

let corollary11_budget n = 5.0 *. float_of_int n *. lg n

let max_lower_bound_diameter ~dim n =
  if dim < 1 || n < 2 then invalid_arg "Theory.max_lower_bound_diameter";
  Float.pow (float_of_int n /. 2.0) (1.0 /. float_of_int dim)

let theorem15_bound ~n ~epsilon =
  if epsilon <= 0.0 || epsilon >= 0.25 then
    invalid_arg "Theory.theorem15_bound: need 0 < epsilon < 1/4";
  let r = 1.0 +. (2.0 *. lg n /. (log ((1.0 -. epsilon) /. epsilon) /. log 2.0)) in
  (2.0 *. r) +. 2.0

let theorem13_diameter_bound ~n ~epsilon ~d =
  if n < 2 || d < 1 then invalid_arg "Theory.theorem13_diameter_bound";
  if epsilon <= 0.0 || epsilon > 1.0 then
    invalid_arg "Theory.theorem13_diameter_bound: epsilon";
  let beta = epsilon /. 6.0 in
  let p = 8.0 /. beta in
  let x = (2.0 *. p *. lg n) +. 1.0 in
  Float.ceil (float_of_int d /. x)
