(** Price-of-anarchy estimators.

    The paper's framing: the price of anarchy of network creation games is
    within a constant factor of the largest equilibrium diameter (Demaine
    et al., PODC'07), so diameter ratios are the primary quantity. Cost
    ratios against edge-count-preserving lower bounds are reported
    alongside. *)

val diameter_ratio : Graph.t -> float option
(** Equilibrium diameter divided by the best achievable diameter with the
    same vertex and edge budget (2 unless the graph is complete, 1 then;
    for trees the star's 2). [None] when disconnected. *)

val sum_cost_ratio : Graph.t -> float option
(** Social (sum) cost divided by
    {!Usage_cost.social_cost_lower_bound} [~n ~m] — an upper bound on the
    true price-of-anarchy contribution of this equilibrium. *)

val exact_optimum_sum : int -> int -> int option
(** [exact_optimum_sum n m]: minimum social sum cost over {e all} connected
    graphs with [n] vertices and [m] edges, by exhaustive enumeration
    (n <= {!Enumerate.max_graph_vertices}). [None] if no connected graph
    has that few edges. *)

val exact_sum_poa : int -> int -> float option
(** [exact_sum_poa n m]: worst social sum cost over all sum equilibria with
    [n] vertices and [m] edges divided by {!exact_optimum_sum} — the exact
    price of anarchy of the basic sum game at this size. [None] when no
    equilibrium with [m] edges exists. Exhaustive; n <= 7. *)

val alpha_poa : Alpha_game.t -> float
(** Social cost of an α-game state divided by
    {!Alpha_game.optimal_social_cost}. *)
