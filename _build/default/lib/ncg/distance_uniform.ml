type profile = { n : int; r : int; epsilon : float }

let require_usable g =
  if Graph.n g < 2 then invalid_arg "Distance_uniform: need n >= 2";
  if not (Components.is_connected g) then
    invalid_arg "Distance_uniform: graph must be connected"

(* sphere_counts.(v).(r) = |S_r(v)|, ragged per-vertex rows *)
let sphere_counts g =
  let n = Graph.n g in
  Array.init n (fun v -> Metrics.distance_histogram g v)

let eps_of_counts ~almost counts ~n ~r =
  let worst = ref 0.0 in
  Array.iter
    (fun hist ->
      let at d = if d >= 0 && d < Array.length hist then hist.(d) else 0 in
      let c = at r + if almost then at (r + 1) else 0 in
      let eps = 1.0 -. (float_of_int c /. float_of_int n) in
      if eps > !worst then worst := eps)
    counts;
  !worst

let best ~almost g =
  require_usable g;
  let n = Graph.n g in
  let counts = sphere_counts g in
  let max_r = Array.fold_left (fun acc h -> max acc (Array.length h - 1)) 0 counts in
  let best_r = ref 1 and best_eps = ref infinity in
  for r = 1 to max max_r 1 do
    let eps = eps_of_counts ~almost counts ~n ~r in
    if eps < !best_eps then begin
      best_eps := eps;
      best_r := r
    end
  done;
  { n; r = !best_r; epsilon = !best_eps }

let best_uniform g = best ~almost:false g

let best_almost_uniform g = best ~almost:true g

let epsilon_at g ~r =
  require_usable g;
  eps_of_counts ~almost:false (sphere_counts g) ~n:(Graph.n g) ~r

let epsilon_almost_at g ~r =
  require_usable g;
  eps_of_counts ~almost:true (sphere_counts g) ~n:(Graph.n g) ~r

let is_distance_uniform g ~epsilon = (best_uniform g).epsilon <= epsilon

let is_distance_almost_uniform g ~epsilon =
  (best_almost_uniform g).epsilon <= epsilon

let pairwise_modal_fraction g =
  require_usable g;
  let counts = sphere_counts g in
  let n = Graph.n g in
  let max_r = Array.fold_left (fun acc h -> max acc (Array.length h - 1)) 0 counts in
  let totals = Array.make (max_r + 1) 0 in
  Array.iter
    (fun hist -> Array.iteri (fun d c -> if d >= 1 then totals.(d) <- totals.(d) + c) hist)
    counts;
  let mode = ref 1 in
  for d = 1 to max_r do
    if totals.(d) > totals.(!mode) then mode := d
  done;
  let pairs = n * (n - 1) in
  !mode, float_of_int totals.(!mode) /. float_of_int pairs

type power_report = {
  x : int;
  diameter : int;
  almost : profile;
  exact : profile;
}

let power_report g ~x =
  require_usable g;
  let p = Power.power g x in
  let diameter =
    match Metrics.diameter p with
    | Some d -> d
    | None -> invalid_arg "Distance_uniform.power_report: power disconnected"
  in
  { x; diameter; almost = best_almost_uniform p; exact = best_uniform p }

let lg n = log (float_of_int n) /. log 2.0

let theorem13_power g =
  require_usable g;
  let n = Graph.n g in
  let x = 1 + int_of_float (Float.ceil (16.0 *. lg n)) in
  match Metrics.diameter g with
  | Some d when d >= 1 -> max 1 (min x d)
  | Some _ | None -> 1

let skew_triple_fraction ?rng ?(samples = 200_000) g ~p =
  require_usable g;
  let n = Graph.n g in
  let threshold = p *. lg n in
  let dist = Bfs.all_pairs g in
  let is_skew a b c =
    float_of_int dist.(a).(c) > threshold +. float_of_int dist.(a).(b)
  in
  let total_exact = n * (n - 1) * (n - 2) in
  if total_exact <= samples then begin
    let skew = ref 0 in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        for c = 0 to n - 1 do
          if a <> b && b <> c && a <> c && is_skew a b c then incr skew
        done
      done
    done;
    float_of_int !skew /. float_of_int total_exact
  end
  else begin
    let rng = match rng with Some r -> r | None -> Prng.create 42 in
    let skew = ref 0 in
    let drawn = ref 0 in
    while !drawn < samples do
      let a = Prng.int rng n and b = Prng.int rng n and c = Prng.int rng n in
      if a <> b && b <> c && a <> c then begin
        incr drawn;
        if is_skew a b c then incr skew
      end
    done;
    float_of_int !skew /. float_of_int samples
  end
