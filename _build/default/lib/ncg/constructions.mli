(** The explicit graphs constructed in the paper.

    Each construction is accompanied by the structural data the paper's
    proof uses (vertex roles, closed-form distance oracles) so tests can
    verify not just the headline property but the proof's intermediate
    claims. *)

(** {1 Section 2: equilibrium trees} *)

val star : int -> Graph.t
(** Re-export of {!Generators.star}: the unique sum-equilibrium tree. *)

val double_star : int -> int -> Graph.t
(** Re-export of {!Generators.double_star}: the Figure 2 family; in max
    equilibrium iff both arms have >= 2 leaves. *)

(** {1 Section 3.1: the Theorem 5 graph (Figure 3)} *)

type theorem5_role =
  | Hub  (** the vertex [a] *)
  | Branch of int  (** [b_i], i in 1..3 *)
  | Cluster of int * int  (** [c_{i,k}], i in 1..3, k in 1..2 *)
  | Collector of int  (** [d_i], i in 1..3 *)

val theorem5_graph : Graph.t
(** The paper's 13-vertex, 21-edge diameter-3 construction, transcribed
    literally: hub [a] adjacent to [b_1..b_3]; each [b_i] adjacent to its
    cluster [c_{i,1}, c_{i,2}]; each [d_i] adjacent to its cluster;
    perfect matchings between clusters — parallel between C1–C2 and
    C2–C3, crossed between C1–C3 (the crossing gives girth 4).

    {b Reproduction finding:} this graph is {e not} in sum equilibrium as
    transcribed — [d_1] improves by swapping its edge to [c_{1,1}] onto
    [c_{2,1}] (the matched partner of the dropped vertex), gaining 1 each
    on [c_{2,1}], [b_2], [d_2] and losing only 1 each on [c_{1,1}] and
    [c_{3,2}]. The proof's Lemma-8 step assumed a loss of 2 on the dropped
    vertex, which fails exactly when the swap target is adjacent to it.
    Theorem 5's statement survives: see {!sum_diameter3_witness}, an
    11-vertex diameter-3 sum equilibrium verified exhaustively (including
    by an independent rebuilt-graph checker). *)

val theorem5_improving_swap : Swap.move
(** The violating move described above (delta −1). *)

val theorem5_variant : crossed:bool * bool * bool -> Graph.t
(** The Figure 3 wiring with each inter-cluster matching chosen parallel
    ([false]) or crossed ([true]), in the order (C₁–C₂, C₂–C₃, C₁–C₃).
    Only the parity of crossings matters up to isomorphism: odd parity
    (the paper's choice) has girth 4, even parity girth 3 — and {e both}
    classes admit the collector's improving swap, so no reading of the
    matching sentence rescues the construction. [theorem5_graph] is
    [theorem5_variant ~crossed:(false, false, true)]. *)

val sum_diameter3_witness : Graph.t
(** A verified diameter-3 sum equilibrium on 11 vertices: the Petersen
    graph with one pendant vertex. The Petersen graph is distance-regular,
    so re-attaching the pendant anywhere is cost-neutral; its girth 5 makes
    every swap around the rim lose at least as much as it gains. Exhaustive
    census further shows {e no} diameter-3 sum equilibrium exists with
    n <= 6, so small witnesses are genuinely scarce. *)

val cycle_with_pendant : int -> Graph.t
(** [cycle_with_pendant n]: C_n plus a pendant on vertex 0. {e Not} a sum
    equilibrium for any n (a cycle vertex improves by swapping onto the
    pendant's host); kept as a counterexample input for tests. *)

val petersen_with_pendant : unit -> Graph.t
(** Petersen plus a pendant — the graph behind
    {!sum_diameter3_witness}. *)

val sum_diameter3_minimal : Graph.t
(** The {e smallest possible} diameter-3 sum equilibrium: 8 vertices, 12
    edges, girth 3, degree sequence (4,4,3,3,3,3,2,2), automorphism group
    of order 2 (graph6 [GGEmUg]). Found by the annealing search of
    {!Hunt}, verified by the exhaustive checker and by an independent
    rebuilt-graph brute force; minimality follows from the exhaustive
    census (E4X): no connected graph on <= 7 vertices is a sum
    equilibrium of diameter 3. At n = 8 the search finds at least four
    non-isomorphic such equilibria. *)

val theorem5_role : int -> theorem5_role
(** Role of each vertex index in {!theorem5_graph}. *)

val theorem5_vertex : theorem5_role -> int
(** Inverse of {!theorem5_role}.
    @raise Invalid_argument on out-of-range roles. *)

val max_diameter4_small : Graph.t
(** A diameter-4 {e max} equilibrium on only 10 vertices: the 5-sunlet
    (C₅ with one pendant leaf per cycle vertex), m = 10, eccentricities
    {3, 4}. Found by {!Hunt} (max version), recognized as
    [Generators.sunlet 5], and verified exhaustively. The Theorem 12 torus
    needs n = 2·4² = 32 for the same diameter; the exhaustive census
    shows max equilibria of diameter 4 are impossible for n <= 7, so the
    minimum lies in {8, 9, 10}. The sunlet family is delicate: exactly
    the 3-, 5- and 7-sunlets are max equilibria (the 7-sunlet gives
    diameter 5 at n = 14); from the 9-sunlet on, a cycle vertex improves
    by swapping onto a chord, and even sunlets always fail. *)

(** {1 Section 4: the Theorem 12 torus (Figure 4)} *)

val torus : int -> Graph.t
(** [torus k] is the 45°-rotated 2D torus on [n = 2k²] vertices: pairs
    (i, j) with [0 <= i, j < 2k] and [i + j] even, each adjacent to
    (i±1, j±1). Requires [k >= 2]. Vertex-transitive, 4-regular,
    diameter [k], in max equilibrium (deletion-critical and
    insertion-stable). *)

val torus_vertex : int -> int * int -> int
(** [torus_vertex k (i, j)] is the vertex index of the lattice point
    (coordinates taken mod 2k; parity must be even after reduction). *)

val torus_coords : int -> int -> int * int
(** Inverse of {!torus_vertex}. *)

val torus_distance : int -> int -> int -> int
(** Closed-form distance in [torus k] between two vertex indices:
    [max(dc(i,i'), dc(j,j'))] with circular 1D distances mod 2k —
    the formula proved in Theorem 12. *)

(** {1 Section 4: d-dimensional generalization} *)

val torus_d : dim:int -> int -> Graph.t
(** [torus_d ~dim k]: vertices are the tuples of [\[0, 2k)^dim] with all
    coordinates of equal parity, n = 2k^dim; each vertex is adjacent to
    the 2^dim diagonal steps (all coordinates ±1). Diameter [k]
    (= Θ(n^{1/dim})), deletion-critical, and stable under insertion of up
    to [dim − 1] edges at one vertex. Requires [dim >= 1], [k >= 2]. *)

val torus_d_coords : dim:int -> int -> int -> int array
(** Tuple of a vertex index in [torus_d]. *)

val torus_d_distance : dim:int -> int -> int -> int -> int
(** Closed-form distance: max over coordinates of circular distance. *)

(** {1 Section 5: distance-uniformity non-example} *)

val conjecture14_nonexample : arms:int -> arm_len:int -> blob:int -> Graph.t
(** Re-export of {!Generators.path_with_blobs}: almost all {e pairs} lie
    at one distance, yet the graph has large diameter — showing
    Conjecture 14 genuinely needs per-vertex uniformity. *)
