(** Closed forms and constructive checkers for the paper's bounds.

    These are the "paper" columns of every experiment table: each theorem's
    quantitative content, computed exactly as in the proof so measured
    values can be compared against them. *)

val lg : int -> float
(** Base-2 logarithm of an integer (as float); [lg 1 = 0]. *)

(** {1 Theorem 9: sum-equilibrium diameter 2^O(√lg n)} *)

val theorem9_bound : int -> float
(** The smooth form [2^(c·√lg n)] with the proof-derived constant [c = 3];
    an upper bound up to the constant in the exponent. *)

val theorem9_recurrence_bound : int -> int
(** The concrete bound the proof's ball-growth recurrence (inequality (1))
    yields: start at [k = 2^√lg n], [B_k >= k]; while [B <= n/2] multiply
    [k] by 4 and [B] by [max 2 (k/(20 lg n))]; the diameter is at most
    [2k] at exit. Deterministic, no asymptotics — the sharpest number the
    paper's argument certifies for a given [n]. *)

(** {1 Lemma 10 and Corollary 11} *)

type lemma10_result =
  | Small_diameter  (** the graph has diameter <= 2 lg n *)
  | Edge of { x : int; y : int; removal_cost : int }
      (** an edge [xy] with [d(u,x) <= lg n] whose removal increases the
          sum of distances from [x] by [removal_cost <= 2n(1 + lg n)] *)

val lemma10_check : Graph.t -> int -> lemma10_result option
(** [lemma10_check g u] searches for the object Lemma 10 promises in a sum
    equilibrium graph, from vertex [u]. [None] means the promise failed —
    on a genuine sum equilibrium this never happens (test oracle). *)

val corollary11_max_gain : Graph.t -> int
(** Max over ordered non-adjacent pairs (u,v) of the decrease in u's
    distance sum when edge uv is added. Corollary 11 bounds this by
    [5 n lg n] on sum equilibria. O(n²·m). *)

val corollary11_budget : int -> float
(** [5 n lg n]. *)

(** {1 Theorem 12 and the d-dimensional construction} *)

val max_lower_bound_diameter : dim:int -> int -> float
(** [(n/2)^(1/dim)] — the diameter the Section 4 construction achieves on
    [n] vertices. *)

(** {1 Theorem 15: Abelian Cayley graphs} *)

val theorem15_bound : n:int -> epsilon:float -> float
(** The exact bound from the proof: [r <= 1 + 2 lg n / lg((1−ε)/ε)] and
    diameter at most [2r + 2]. Requires ε in (0, 1/4). *)

(** {1 Theorem 13} *)

val theorem13_diameter_bound : n:int -> epsilon:float -> d:int -> float
(** The Θ(εd / lg n) diameter of the almost-uniform power graph produced
    from a diameter-[d] sum equilibrium (the Theorem 13 statement, with
    the proof's [p = 8/β], β = ε/6 normalization folded in: the power is
    [x = 2p lg n + 1] and the bound is [⌈d/x⌉]). *)
