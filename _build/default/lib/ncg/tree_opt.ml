type precomp = {
  n : int;
  g : Graph.t;
  dist : int array array;
  sum : int array;
  (* per directed tree edge (v, w): size of w's side, and
     S_v_own = sum of distances from v to its own side *)
  side : (int * int, int * int) Hashtbl.t;
}

let require_tree g =
  if not (Components.is_tree g) then invalid_arg "Tree_opt: not a tree"

let precompute g =
  require_tree g;
  let n = Graph.n g in
  let dist = Bfs.all_pairs g in
  let sum = Array.map (fun row -> Array.fold_left ( + ) 0 row) dist in
  let side = Hashtbl.create (4 * n) in
  Graph.iter_edges
    (fun a b ->
      let record v w =
        (* w's side of edge vw: vertices strictly closer to w *)
        let size = ref 0 and s_w_down = ref 0 in
        for x = 0 to n - 1 do
          if dist.(x).(w) < dist.(x).(v) then begin
            incr size;
            s_w_down := !s_w_down + dist.(w).(x)
          end
        done;
        let s_v_own = sum.(v) - !size - !s_w_down in
        Hashtbl.replace side (v, w) (!size, s_v_own)
      in
      record a b;
      record b a)
    g;
  { n; g; dist; sum; side }

let sum_cost p v = p.sum.(v)

let swap_delta p ~actor ~drop ~add =
  let size_drop, s_own =
    match Hashtbl.find_opt p.side (actor, drop) with
    | Some x -> x
    | None -> invalid_arg "Tree_opt.swap_delta: actor-drop is not an edge"
  in
  if add = actor || add = drop || Graph.mem_edge p.g actor add then
    invalid_arg "Tree_opt.swap_delta: bad attachment target";
  (* [add] is on the drop side iff it is strictly closer to drop *)
  if p.dist.(add).(drop) >= p.dist.(add).(actor) then Usage_cost.infinite
  else begin
    let size_own = p.n - size_drop in
    (* distances from [add] to the actor's own side all cross the dropped
       edge: d(add, x) = d(add, drop) + 1 + d(actor, x) *)
    let s_add_dropside =
      p.sum.(add) - ((size_own * (p.dist.(add).(drop) + 1)) + s_own)
    in
    let new_sum = s_own + size_drop + s_add_dropside in
    new_sum - p.sum.(actor)
  end

let best_swap p v =
  let best = ref None in
  let neighbors = Graph.neighbors p.g v in
  Array.iter
    (fun drop ->
      for add = 0 to p.n - 1 do
        if
          add <> v && add <> drop
          && not (Array.exists (fun w -> w = add) neighbors)
        then begin
          let d = swap_delta p ~actor:v ~drop ~add in
          if d < 0 then
            match !best with
            | Some (_, bd) when bd <= d -> ()
            | _ -> best := Some (Swap.Swap { actor = v; drop; add }, d)
        end
      done)
    neighbors;
  !best

let find_violation g =
  let p = precompute g in
  let rec scan v =
    if v >= p.n then None
    else
      match best_swap p v with
      | Some _ as witness -> witness
      | None -> scan (v + 1)
  in
  scan 0

let is_sum_equilibrium g = find_violation g = None

(* --- max version -------------------------------------------------------- *)

type max_precomp = {
  mn : int;
  mg : Graph.t;
  mdist : int array array;
  mecc : int array;
  (* per directed edge (v, w): eccentricity of v within its own side, and
     a diametral pair (a, b) of the drop side C_w *)
  mside : (int * int, int * int * int) Hashtbl.t;
}

let precompute_max g =
  require_tree g;
  let n = Graph.n g in
  let mdist = Bfs.all_pairs g in
  let mecc = Array.map (fun row -> Array.fold_left max 0 row) mdist in
  let mside = Hashtbl.create (4 * n) in
  Graph.iter_edges
    (fun x y ->
      let record v w =
        (* C_w = vertices strictly closer to w; the restricted diametral
           pair is found by two sweeps inside C_w using the global tree
           distances (paths between C_w vertices stay inside C_w) *)
        let in_cw z = mdist.(z).(w) < mdist.(z).(v) in
        let own_ecc = ref 0 in
        let a = ref w in
        for z = 0 to n - 1 do
          if in_cw z then begin
            if mdist.(w).(z) > mdist.(w).(!a) then a := z
          end
          else if mdist.(v).(z) > !own_ecc then own_ecc := mdist.(v).(z)
        done;
        let b = ref !a in
        for z = 0 to n - 1 do
          if in_cw z && mdist.(!a).(z) > mdist.(!a).(!b) then b := z
        done;
        Hashtbl.replace mside (v, w) (!own_ecc, !a, !b)
      in
      record x y;
      record y x)
    g;
  { mn = n; mg = g; mdist; mecc; mside }

let max_swap_delta p ~actor ~drop ~add =
  let own_ecc, a, b =
    match Hashtbl.find_opt p.mside (actor, drop) with
    | Some x -> x
    | None -> invalid_arg "Tree_opt.max_swap_delta: actor-drop is not an edge"
  in
  if add = actor || add = drop || Graph.mem_edge p.mg actor add then
    invalid_arg "Tree_opt.max_swap_delta: bad attachment target";
  if p.mdist.(add).(drop) >= p.mdist.(add).(actor) then Usage_cost.infinite
  else begin
    let restricted_ecc = max p.mdist.(add).(a) p.mdist.(add).(b) in
    let new_ecc = max own_ecc (1 + restricted_ecc) in
    new_ecc - p.mecc.(actor)
  end

let best_max_swap p v =
  let best = ref None in
  let neighbors = Graph.neighbors p.mg v in
  Array.iter
    (fun drop ->
      for add = 0 to p.mn - 1 do
        if
          add <> v && add <> drop
          && not (Array.exists (fun w -> w = add) neighbors)
        then begin
          let d = max_swap_delta p ~actor:v ~drop ~add in
          if d < 0 then
            match !best with
            | Some (_, bd) when bd <= d -> ()
            | _ -> best := Some (Swap.Swap { actor = v; drop; add }, d)
        end
      done)
    neighbors;
  !best

let is_max_equilibrium_tree g =
  let p = precompute_max g in
  let rec scan v = v >= p.mn || (best_max_swap p v = None && scan (v + 1)) in
  scan 0

let converge_max ?(max_rounds = 10_000) g0 =
  require_tree g0;
  let g = Graph.copy g0 in
  let moves = ref 0 in
  let improved = ref true in
  let p = ref (precompute_max g) in
  while !improved && !moves < max_rounds do
    improved := false;
    let v = ref 0 in
    let n = Graph.n g in
    while !v < n && !moves < max_rounds do
      (match best_max_swap !p !v with
      | Some (mv, _) ->
        Swap.apply g mv;
        p := precompute_max g;
        incr moves;
        improved := true
      | None -> ());
      incr v
    done
  done;
  g, !moves

let converge ?(max_rounds = 10_000) g0 =
  require_tree g0;
  let g = Graph.copy g0 in
  let moves = ref 0 in
  let improved = ref true in
  (* the tables are only invalidated by an applied move *)
  let p = ref (precompute g) in
  while !improved && !moves < max_rounds do
    improved := false;
    let v = ref 0 in
    let n = Graph.n g in
    while !v < n && !moves < max_rounds do
      (match best_swap !p !v with
      | Some (mv, _) ->
        Swap.apply g mv;
        p := precompute g;
        incr moves;
        improved := true
      | None -> ());
      incr v
    done
  done;
  g, !moves
