type t = {
  g : Graph.t;
  owners : (int * int, int) Hashtbl.t;
  ws : Bfs.workspace;
}

type ownership =
  | Min_endpoint
  | Random of int
  | By_function of (int -> int -> int)

let key u v = (min u v, max u v)

let create ownership g0 =
  let g = Graph.copy g0 in
  let owners = Hashtbl.create (2 * Graph.m g) in
  let assign =
    match ownership with
    | Min_endpoint -> fun u _ -> u
    | Random seed ->
      let rng = Prng.create seed in
      fun u v -> if Prng.bool rng then u else v
    | By_function f -> f
  in
  Graph.iter_edges
    (fun u v ->
      let o = assign u v in
      if o <> u && o <> v then invalid_arg "Asym_swap.create: owner not an endpoint";
      Hashtbl.replace owners (key u v) o)
    g;
  { g; owners; ws = Bfs.create_workspace (Graph.n g) }

let graph t = t.g

let owner t u v =
  match Hashtbl.find_opt t.owners (key u v) with
  | Some o -> o
  | None -> invalid_arg "Asym_swap.owner: absent edge"

let owned_edges t v =
  Graph.fold_neighbors
    (fun acc w -> if owner t v w = v then w :: acc else acc)
    [] t.g v
  |> List.sort compare

let apply t mv =
  match mv with
  | Swap.Swap { actor; drop; add } ->
    Swap.apply t.g mv;
    Hashtbl.remove t.owners (key actor drop);
    Hashtbl.replace t.owners (key actor add) actor
  | Swap.Delete _ -> invalid_arg "Asym_swap: deletions are not in the move set"

let best_move t v =
  let best = ref None in
  let n = Graph.n t.g in
  let mine = owned_edges t v in
  List.iter
    (fun drop ->
      for add = 0 to n - 1 do
        if add <> v && add <> drop && not (Graph.mem_edge t.g v add) then begin
          let mv = Swap.Swap { actor = v; drop; add } in
          let d = Swap.delta t.ws Usage_cost.Sum t.g mv in
          if d < 0 then
            match !best with
            | Some (_, bd) when bd <= d -> ()
            | _ -> best := Some (mv, d)
        end
      done)
    mine;
  !best

let is_equilibrium t =
  let rec loop v = v >= Graph.n t.g || (best_move t v = None && loop (v + 1)) in
  loop 0

let symmetric_equilibrium_implies_asymmetric g ownership =
  (not (Equilibrium.is_sum_equilibrium g)) || is_equilibrium (create ownership g)

type result = {
  state : t;
  converged : bool;
  rounds : int;
  moves : int;
}

let copy t =
  { g = Graph.copy t.g; owners = Hashtbl.copy t.owners; ws = Bfs.create_workspace (Graph.n t.g) }

let run_dynamics ?(max_rounds = 10_000) t0 =
  let t = copy t0 in
  let n = Graph.n t.g in
  let rounds = ref 0 in
  let moves = ref 0 in
  let converged = ref false in
  while (not !converged) && !rounds < max_rounds do
    incr rounds;
    let progressed = ref false in
    for v = 0 to n - 1 do
      match best_move t v with
      | None -> ()
      | Some (mv, _) ->
        apply t mv;
        incr moves;
        progressed := true
    done;
    if not !progressed then converged := true
  done;
  { state = t; converged = !converged; rounds = !rounds; moves = !moves }
