let star = Generators.star

let double_star = Generators.double_star

(* --- Theorem 5 graph --------------------------------------------------- *)

type theorem5_role =
  | Hub
  | Branch of int
  | Cluster of int * int
  | Collector of int

let theorem5_vertex = function
  | Hub -> 0
  | Branch i when 1 <= i && i <= 3 -> i
  | Cluster (i, k) when 1 <= i && i <= 3 && 1 <= k && k <= 2 ->
    4 + (2 * (i - 1)) + (k - 1)
  | Collector i when 1 <= i && i <= 3 -> 9 + i
  | Branch _ | Cluster _ | Collector _ ->
    invalid_arg "Constructions.theorem5_vertex: role out of range"

let theorem5_role v =
  match v with
  | 0 -> Hub
  | 1 | 2 | 3 -> Branch v
  | _ when 4 <= v && v <= 9 -> Cluster (((v - 4) / 2) + 1, ((v - 4) mod 2) + 1)
  | 10 | 11 | 12 -> Collector (v - 9)
  | _ -> invalid_arg "Constructions.theorem5_role: vertex out of range"

let theorem5_variant ~crossed:(x12, x23, x13) =
  let g = Graph.create 13 in
  let v = theorem5_vertex in
  for i = 1 to 3 do
    Graph.add_edge g (v Hub) (v (Branch i));
    Graph.add_edge g (v (Branch i)) (v (Cluster (i, 1)));
    Graph.add_edge g (v (Branch i)) (v (Cluster (i, 2)));
    Graph.add_edge g (v (Collector i)) (v (Cluster (i, 1)));
    Graph.add_edge g (v (Collector i)) (v (Cluster (i, 2)))
  done;
  let matching i j is_crossed =
    for k = 1 to 2 do
      Graph.add_edge g (v (Cluster (i, k)))
        (v (Cluster (j, if is_crossed then 3 - k else k)))
    done
  in
  matching 1 2 x12;
  matching 2 3 x23;
  matching 1 3 x13;
  g

(* parallel matchings C1-C2 and C2-C3, crossed matching C1-C3 — the
   paper's "obvious ... obvious ... other" choice *)
let theorem5_graph = theorem5_variant ~crossed:(false, false, true)

let theorem5_improving_swap =
  Swap.Swap
    {
      actor = theorem5_vertex (Collector 1);
      drop = theorem5_vertex (Cluster (1, 1));
      add = theorem5_vertex (Cluster (2, 1));
    }

let cycle_with_pendant n = Generators.attach_pendant (Generators.cycle n) 0

let petersen_with_pendant () = Generators.attach_pendant (Generators.petersen ()) 0

let sum_diameter3_witness = petersen_with_pendant ()

let sum_diameter3_minimal =
  Graph.of_edges 8
    [
      (0, 5); (0, 6); (0, 7);
      (1, 2); (1, 6); (1, 7);
      (2, 5);
      (3, 4); (3, 7);
      (4, 5); (4, 6);
      (5, 7);
    ]

let max_diameter4_small = Generators.sunlet 5

(* --- Theorem 12 torus --------------------------------------------------- *)

let check_torus_k k =
  if k < 2 then invalid_arg "Constructions.torus: need k >= 2"

let torus_vertex k (i, j) =
  check_torus_k k;
  let m = 2 * k in
  let i = ((i mod m) + m) mod m and j = ((j mod m) + m) mod m in
  if (i + j) mod 2 <> 0 then
    invalid_arg "Constructions.torus_vertex: odd-parity point";
  (i * k) + ((j - (i mod 2)) / 2)

let torus_coords k v =
  check_torus_k k;
  if v < 0 || v >= 2 * k * k then invalid_arg "Constructions.torus_coords";
  let i = v / k in
  let j = (2 * (v mod k)) + (i mod 2) in
  i, j

let circular_distance m a b =
  let d = abs (a - b) in
  min d (m - d)

let torus_distance k u v =
  let iu, ju = torus_coords k u and iv, jv = torus_coords k v in
  let m = 2 * k in
  max (circular_distance m iu iv) (circular_distance m ju jv)

let torus k =
  check_torus_k k;
  let g = Graph.create (2 * k * k) in
  let m = 2 * k in
  for v = 0 to (2 * k * k) - 1 do
    let i, j = torus_coords k v in
    List.iter
      (fun (di, dj) ->
        let w = torus_vertex k ((i + di + m) mod m, (j + dj + m) mod m) in
        ignore (Graph.try_add_edge g v w))
      [ (1, 1); (1, -1); (-1, 1); (-1, -1) ]
  done;
  g

(* --- d-dimensional generalization -------------------------------------- *)

let check_torus_d ~dim k =
  if dim < 1 then invalid_arg "Constructions.torus_d: need dim >= 1";
  if k < 2 then invalid_arg "Constructions.torus_d: need k >= 2"

(* Vertex index: parity bit p (0 even, 1 odd) plus mixed-radix rank of
   ((x_l - p) / 2) over base k. *)
let torus_d_count ~dim k =
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  2 * pow k dim

let torus_d_index ~dim k coords =
  let m = 2 * k in
  let p = ((coords.(0) mod m) + m) mod m mod 2 in
  let rank = ref p in
  for l = 0 to dim - 1 do
    let x = ((coords.(l) mod m) + m) mod m in
    if x mod 2 <> p then invalid_arg "Constructions.torus_d: mixed parity";
    rank := (!rank * k) + ((x - p) / 2)
  done;
  !rank

let torus_d_coords ~dim k v =
  check_torus_d ~dim k;
  if v < 0 || v >= torus_d_count ~dim k then
    invalid_arg "Constructions.torus_d_coords";
  let out = Array.make dim 0 in
  let r = ref v in
  for l = dim - 1 downto 0 do
    out.(l) <- !r mod k;
    r := !r / k
  done;
  let p = !r in
  assert (p = 0 || p = 1);
  Array.map (fun halves -> (2 * halves) + p) out

let torus_d_distance ~dim k u v =
  let cu = torus_d_coords ~dim k u and cv = torus_d_coords ~dim k v in
  let m = 2 * k in
  let best = ref 0 in
  for l = 0 to dim - 1 do
    best := max !best (circular_distance m cu.(l) cv.(l))
  done;
  !best

let torus_d ~dim k =
  check_torus_d ~dim k;
  let n = torus_d_count ~dim k in
  let g = Graph.create n in
  let m = 2 * k in
  let coords = Array.make dim 0 in
  for v = 0 to n - 1 do
    let base = torus_d_coords ~dim k v in
    (* all 2^dim sign patterns *)
    for signs = 0 to (1 lsl dim) - 1 do
      for l = 0 to dim - 1 do
        let step = if signs land (1 lsl l) <> 0 then 1 else -1 in
        coords.(l) <- (base.(l) + step + m) mod m
      done;
      let w = torus_d_index ~dim k coords in
      if v <> w then ignore (Graph.try_add_edge g v w)
    done
  done;
  g

let conjecture14_nonexample = Generators.path_with_blobs
