(** Exact O(1)-per-swap evaluation on trees.

    On a tree, dropping the edge actor–drop splits the vertex set into the
    actor's side and the drop side; re-attaching anywhere on the actor's own
    side disconnects the graph, and re-attaching to [w'] on the drop side
    yields a closed-form new distance sum:

      new_sum(actor) = S_actor(own side) + |drop side| + S_{w'}(drop side)

    with both terms expressible through precomputed distance-sum and
    subtree data. This makes a full best-response scan of all agents O(n²)
    instead of O(n² · deg · m), which is what lets the tree experiments run
    at n in the thousands (Theorem 1 at scale). All functions raise
    [Invalid_argument] on non-trees. *)

type precomp
(** Distance matrix, per-vertex distance sums, and per-directed-edge side
    data for one fixed tree. Invalidated by any mutation. *)

val precompute : Graph.t -> precomp
(** O(n²) time and memory. *)

val sum_cost : precomp -> int -> int
(** The agent's distance sum (same as [Usage_cost.vertex_cost Sum]). *)

val swap_delta : precomp -> actor:int -> drop:int -> add:int -> int
(** O(1). Cost change for the actor of replacing edge actor–drop with
    actor–add. [Usage_cost.infinite] when the swap disconnects (i.e. [add]
    is on the actor's own side). Requires actor–drop to be an edge and
    [add] to be neither endpoint nor a current neighbor. *)

val best_swap : precomp -> int -> (Swap.move * int) option
(** Most-improving swap of one agent, or [None]; O(n · deg). Agrees with
    [Swap.best_move] on trees (same tie-breaking by enumeration order:
    neighbors in row order, targets in increasing vertex order). *)

val find_violation : Graph.t -> (Swap.move * int) option
(** First agent (lowest index) with an improving swap, with its best move;
    O(n²). *)

val is_sum_equilibrium : Graph.t -> bool
(** O(n²); agrees with [Equilibrium.is_sum_equilibrium] on trees. *)

val converge : ?max_rounds:int -> Graph.t -> Graph.t * int
(** Best-response rounds using the fast evaluator, recomputing the O(n²)
    tables once per applied move. Returns the final tree and the number of
    moves. By Theorem 1 the result is a star whenever it converges (the
    round cap, default 10_000 moves, is a safety net). *)

(** {1 Max version}

    The same decomposition works for eccentricities: after re-hanging onto
    [w'] on the drop side, the actor's local diameter is
    [max(own-side ecc, 1 + ecc of w' within the drop side)], and a
    subtree's eccentricities are O(1) queries once its diametral pair is
    known (in a tree, every restricted eccentricity is attained at an end
    of a diametral path of that subtree). *)

type max_precomp

val precompute_max : Graph.t -> max_precomp
(** O(n²) time and memory (distance matrix plus a diametral pair per
    directed edge). *)

val max_swap_delta : max_precomp -> actor:int -> drop:int -> add:int -> int
(** O(1). Eccentricity change of the actor; {!Usage_cost.infinite} when
    the swap disconnects. Same preconditions as {!swap_delta}. *)

val best_max_swap : max_precomp -> int -> (Swap.move * int) option
(** Most-improving max-swap of one agent; agrees with
    [Swap.best_move ws Max] on trees. *)

val is_max_equilibrium_tree : Graph.t -> bool
(** No agent holds an improving eccentricity swap. On trees every deletion
    disconnects, so this coincides with [Equilibrium.is_max_equilibrium].
    O(n²). *)

val converge_max : ?max_rounds:int -> Graph.t -> Graph.t * int
(** Max-version best-response rounds over trees (swaps only — deletions
    disconnect trees and are never improving). By Theorem 4 the result has
    diameter <= 3 whenever it converges. *)
