type version = Sum | Max

let version_name = function Sum -> "sum" | Max -> "max"

let pp_version ppf v = Format.pp_print_string ppf (version_name v)

let infinite = max_int / 4

let is_infinite c = c >= infinite

let vertex_cost ws version g v =
  let r = Bfs.reach ws g v in
  if r.Bfs.reached < Graph.n g then infinite
  else
    match version with
    | Sum -> r.Bfs.sum
    | Max -> r.Bfs.ecc

let social_cost version g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let ws = Bfs.create_workspace n in
    match version with
    | Sum ->
      let rec loop v acc =
        if v >= n then acc
        else begin
          let c = vertex_cost ws Sum g v in
          if is_infinite c then infinite else loop (v + 1) (acc + c)
        end
      in
      loop 0 0
    | Max ->
      let rec loop v acc =
        if v >= n then acc
        else begin
          let c = vertex_cost ws Max g v in
          if is_infinite c then infinite else loop (v + 1) (max acc c)
        end
      in
      loop 0 0
  end

let social_cost_lower_bound version ~n ~m =
  if n <= 1 then 0
  else
    match version with
    | Sum ->
      let ordered_pairs = n * (n - 1) in
      (2 * m) + (2 * (ordered_pairs - (2 * m)))
    | Max -> if m >= n * (n - 1) / 2 then 1 else 2
