let diameter_ratio g =
  match Metrics.diameter g with
  | None -> None
  | Some d ->
    let n = Graph.n g in
    let opt = if Graph.m g >= n * (n - 1) / 2 then 1 else 2 in
    if n <= 1 then Some 1.0
    else Some (float_of_int d /. float_of_int opt)

let sum_cost_ratio g =
  let cost = Usage_cost.social_cost Usage_cost.Sum g in
  if Usage_cost.is_infinite cost then None
  else begin
    let lb = Usage_cost.social_cost_lower_bound Usage_cost.Sum ~n:(Graph.n g) ~m:(Graph.m g) in
    if lb <= 0 then Some 1.0 else Some (float_of_int cost /. float_of_int lb)
  end

let exact_optimum_sum n m =
  if m < n - 1 then None
  else begin
    let best = ref None in
    Enumerate.connected_graphs n (fun g ->
        if Graph.m g = m then begin
          let c = Usage_cost.social_cost Usage_cost.Sum g in
          match !best with
          | Some b when b <= c -> ()
          | _ -> best := Some c
        end);
    !best
  end

let exact_sum_poa n m =
  match exact_optimum_sum n m with
  | None -> None
  | Some opt ->
    let worst = ref None in
    Enumerate.connected_graphs n (fun g ->
        if Graph.m g = m && Equilibrium.is_sum_equilibrium g then begin
          let c = Usage_cost.social_cost Usage_cost.Sum g in
          match !worst with
          | Some w when w >= c -> ()
          | _ -> worst := Some c
        end);
    Option.map (fun w -> float_of_int w /. float_of_int opt) !worst

let alpha_poa t =
  Alpha_game.social_cost t /. Alpha_game.optimal_social_cost ~alpha:(Alpha_game.alpha t) (Alpha_game.n t)
