type tree_census = {
  n : int;
  total : int;
  equilibria : int;
  stars : int;
  double_stars : int;
  max_eq_diameter : int;
  witnesses_verified : int;
}

let tree_census version n =
  let total = ref 0 in
  let equilibria = ref 0 in
  let stars = ref 0 in
  let double_stars = ref 0 in
  let max_eq_diameter = ref 0 in
  let witnesses = ref 0 in
  let generic_eq =
    match version with
    | Usage_cost.Sum -> Equilibrium.is_sum_equilibrium
    | Usage_cost.Max -> Equilibrium.is_max_equilibrium
  in
  let record_eq g =
    (* the shape classification is cheap; cross-validate every accepted
       tree against the generic checker so the census is fully verified *)
    assert (generic_eq g);
    incr equilibria;
    if Tree_eq.is_star g then incr stars;
    if Tree_eq.is_double_star g then incr double_stars;
    match Metrics.diameter g with
    | Some d -> if d > !max_eq_diameter then max_eq_diameter := d
    | None -> assert false
  in
  Enumerate.trees n (fun g ->
      incr total;
      match version with
      | Usage_cost.Sum ->
        if Tree_eq.is_star g then record_eq g
        else begin
          (* Theorem 1 witness: verified-improving swap on every non-star *)
          match Tree_eq.theorem1_witness g with
          | Some _ -> incr witnesses
          | None ->
            (* diameter <= 2 tree that is not a star: impossible *)
            assert false
        end
      | Usage_cost.Max ->
        if Tree_eq.max_eq_tree g then record_eq g
        else begin
          match Tree_eq.theorem4_witness g with
          | Some _ -> incr witnesses
          | None ->
            (* diameter <= 3 non-equilibrium: confirm with the generic
               checker that an improving move indeed exists *)
            assert (not (Equilibrium.is_max_equilibrium g));
            incr witnesses
        end);
  {
    n;
    total = !total;
    equilibria = !equilibria;
    stars = !stars;
    double_stars = !double_stars;
    max_eq_diameter = !max_eq_diameter;
    witnesses_verified = !witnesses;
  }

type graph_census = {
  n : int;
  connected : int;
  equilibria_labeled : int;
  equilibria_iso : Graph.t list;
  diameter_histogram : (int * int) list;
  max_diameter : int;
}

let graph_census version n =
  let connected = ref 0 in
  let labeled = ref 0 in
  let reps = Hashtbl.create 64 in
  let is_eq =
    match version with
    | Usage_cost.Sum -> Equilibrium.is_sum_equilibrium
    | Usage_cost.Max -> Equilibrium.is_max_equilibrium
  in
  Enumerate.connected_graphs n (fun g ->
      incr connected;
      if is_eq g then begin
        incr labeled;
        let key = Canon.canonical_form g in
        if not (Hashtbl.mem reps key) then Hashtbl.add reps key g
      end);
  let iso = Hashtbl.fold (fun _ g acc -> g :: acc) reps [] in
  let diams =
    List.map
      (fun g -> match Metrics.diameter g with Some d -> d | None -> assert false)
      iso
  in
  {
    n;
    connected = !connected;
    equilibria_labeled = !labeled;
    equilibria_iso = iso;
    diameter_histogram = Stats.histogram (Array.of_list diams);
    max_diameter = List.fold_left max 0 diams;
  }
