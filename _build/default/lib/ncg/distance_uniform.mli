(** Distance uniformity (Section 5).

    A graph is ε-distance-uniform when some radius [r] has every vertex
    seeing at least (1−ε)n vertices at distance exactly [r]; the almost-
    uniform variant allows distances [r] or [r+1]. Theorem 13 turns
    high-diameter sum equilibria into high-diameter distance-uniform graphs
    via graph powers; Conjecture 14 asks whether such graphs can have more
    than polylogarithmic diameter at all. *)

type profile = {
  n : int;
  r : int;  (** the best radius *)
  epsilon : float;  (** the smallest ε achieved at [r] *)
}

val best_uniform : Graph.t -> profile
(** Smallest ε over all radii for exact distance-uniformity. O(n·m + n·d).
    For every [r], ε(r) = max_v (1 − S_r(v)/n); the profile minimizes over
    [r >= 1]. Requires n >= 2 and connectivity. *)

val best_almost_uniform : Graph.t -> profile
(** Same with spheres S_r ∪ S_{r+1}. *)

val epsilon_at : Graph.t -> r:int -> float
(** ε for one radius (exact variant). *)

val epsilon_almost_at : Graph.t -> r:int -> float

val is_distance_uniform : Graph.t -> epsilon:float -> bool
(** Some radius achieves ε at most the bound. *)

val is_distance_almost_uniform : Graph.t -> epsilon:float -> bool

val pairwise_modal_fraction : Graph.t -> int * float
(** The modal pairwise distance and the fraction of ordered pairs at it —
    the weaker "almost all pairs" notion that the Section 5 non-example
    shows is insufficient for Conjecture 14. *)

(** {1 Theorem 13 pipeline} *)

type power_report = {
  x : int;  (** the power taken *)
  diameter : int;  (** diameter of G^x *)
  almost : profile;  (** almost-uniformity of G^x *)
  exact : profile;  (** exact uniformity of G^x *)
}

val power_report : Graph.t -> x:int -> power_report

val theorem13_power : Graph.t -> int
(** The paper's choice of power, [x = 2p·lg n + 1] with the proof's
    [p = 4/α] instantiated at α = 1/2 — i.e. [x = 16·lg n + 1], capped at
    the diameter (taking a larger power than the diameter is vacuous). *)

val skew_triple_fraction :
  ?rng:Prng.t -> ?samples:int -> Graph.t -> p:float -> float
(** Fraction of ordered vertex triples (a, b, c) with
    [d(a,c) > p·lg n + d(a,b)] — the quantity bounded in the first claim of
    Theorem 13's proof. Exact when n³ is below the sample budget, otherwise
    Monte Carlo with the given sample count (default 200_000). *)
