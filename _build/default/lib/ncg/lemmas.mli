(** Computational audits of the paper's "straightforward and hence omitted"
    lemma proofs (Lemmas 6–8, the local accounting tools behind
    Theorem 5).

    Each checker quantifies the lemma's statement over a concrete graph and
    returns a counterexample when the statement fails there — which is how
    the Theorem 5 discrepancy was isolated: Lemma 8's conclusion is exactly
    right, but the Theorem 5 proof applies its strong (+2) branch in a case
    where only the weak (+1) branch holds. *)

(** A concrete violation of a lemma's inequality on a given graph. *)
type violation = {
  description : string;
  vertices : int list;  (** the vertices instantiating the quantifiers *)
}

val check_lemma6 : Graph.t -> violation option
(** Lemma 6: for a vertex [v] of local diameter 2, no swap of an incident
    edge strictly improves the sum of distances from [v]. Checked for every
    such vertex and every swap. [None] = the lemma holds on this graph. *)

val check_lemma7 : Graph.t -> violation option
(** Lemma 7: for a vertex [v] of local diameter 3, adding an edge [vw] at
    distance [r] decreases v's distance sum by at most
    [(r − 1) + #{neighbors u of w with d(v,u) = 3}]. Checked for every
    such [v] and every non-neighbor [w]. *)

val check_lemma8 : Graph.t -> violation option
(** Lemma 8: in a graph of girth >= 4, swapping edge [vw] with [vw']
    increases [d(v,w)] by at least 2, unless [w'] is a neighbor of [w], in
    which case by at least 1. Checked over all applicable swaps. Vacuous
    (always [None]) on graphs containing triangles. *)

val theorem5_case_analysis : unit -> (string * bool) list
(** Re-runs the Theorem 5 proof's case analysis on the literal Figure 3
    graph, one named case per proof paragraph (hub swaps, branch swaps,
    collector swaps split by target kind), reporting which cases hold.
    The collector-to-matched-partner case is the one that fails. *)
