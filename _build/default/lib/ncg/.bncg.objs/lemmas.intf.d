lib/ncg/lemmas.mli: Graph
