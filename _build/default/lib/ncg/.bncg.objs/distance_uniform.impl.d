lib/ncg/distance_uniform.ml: Array Bfs Components Float Graph Metrics Power Prng
