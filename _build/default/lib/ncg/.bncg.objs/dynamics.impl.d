lib/ncg/dynamics.ml: Array Bfs Components Graph Hashtbl List Logs Metrics Option Prng Swap Usage_cost
