lib/ncg/hunt.ml: Array Bfs Components Equilibrium Float Graph Logs Metrics Prng Random_graphs Swap Usage_cost
