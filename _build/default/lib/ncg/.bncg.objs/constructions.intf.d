lib/ncg/constructions.mli: Graph Swap
