lib/ncg/usage_cost.mli: Bfs Format Graph
