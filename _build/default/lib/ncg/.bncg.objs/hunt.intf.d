lib/ncg/hunt.mli: Graph Logs Prng Usage_cost
