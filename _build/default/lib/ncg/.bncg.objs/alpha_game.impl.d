lib/ncg/alpha_game.ml: Array Bfs Float Format Graph Hashtbl Int64 Prng Usage_cost
