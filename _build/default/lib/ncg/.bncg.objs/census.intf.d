lib/ncg/census.mli: Graph Usage_cost
