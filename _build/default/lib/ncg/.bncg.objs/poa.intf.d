lib/ncg/poa.mli: Alpha_game Graph
