lib/ncg/theory.mli: Graph
