lib/ncg/swap.ml: Array Format Graph Prng Usage_cost
