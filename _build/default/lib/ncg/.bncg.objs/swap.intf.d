lib/ncg/swap.mli: Bfs Format Graph Prng Usage_cost
