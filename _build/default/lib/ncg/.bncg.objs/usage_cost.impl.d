lib/ncg/usage_cost.ml: Bfs Format Graph
