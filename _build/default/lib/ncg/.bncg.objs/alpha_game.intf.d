lib/ncg/alpha_game.mli: Format Graph
