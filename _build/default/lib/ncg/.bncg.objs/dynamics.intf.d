lib/ncg/dynamics.mli: Graph Logs Prng Swap Usage_cost
