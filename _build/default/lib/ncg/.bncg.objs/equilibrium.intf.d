lib/ncg/equilibrium.mli: Format Graph Prng Swap Usage_cost
