lib/ncg/census.ml: Array Canon Enumerate Equilibrium Graph Hashtbl List Metrics Stats Tree_eq Usage_cost
