lib/ncg/tree_eq.mli: Graph Swap
