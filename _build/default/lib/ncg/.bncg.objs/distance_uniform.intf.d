lib/ncg/distance_uniform.mli: Graph Prng
