lib/ncg/asym_swap.mli: Graph Swap
