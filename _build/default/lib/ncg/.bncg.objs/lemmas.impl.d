lib/ncg/lemmas.ml: Array Bfs Constructions Graph List Metrics Printf Swap Usage_cost
