lib/ncg/constructions.ml: Array Generators Graph List Swap
