lib/ncg/asym_swap.ml: Bfs Equilibrium Graph Hashtbl List Prng Swap Usage_cost
