lib/ncg/theory.ml: Bfs Float Graph List Metrics Usage_cost
