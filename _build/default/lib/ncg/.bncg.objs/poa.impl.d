lib/ncg/poa.ml: Alpha_game Enumerate Equilibrium Graph Metrics Option Usage_cost
