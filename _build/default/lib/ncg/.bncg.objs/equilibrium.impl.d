lib/ncg/equilibrium.ml: Array Bfs Components Format Graph List Metrics Option Prng Swap Usage_cost
