lib/ncg/tree_eq.ml: Array Bfs Components Graph List Swap Usage_cost
