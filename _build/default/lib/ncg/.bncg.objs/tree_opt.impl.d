lib/ncg/tree_opt.ml: Array Bfs Components Graph Hashtbl Swap Usage_cost
