lib/ncg/tree_opt.mli: Graph Swap
