(** Tree specializations of the equilibrium analysis (Section 2).

    Theorem 1: sum-equilibrium trees are exactly the stars. Theorem 4:
    max-equilibrium trees are the stars and the double stars with at least
    two leaves per root. These routines make the proofs constructive — for
    a non-equilibrium tree they produce the very swap the proof exhibits
    and verify that it improves — which lets the census sweep millions of
    trees without running the generic O(n²·m) checker on each. *)

val is_star : Graph.t -> bool
(** Some vertex adjacent to all others, in a tree shape (n-1 edges).
    K1 and K2 count as stars. *)

val is_double_star : Graph.t -> bool
(** Two adjacent roots, every other vertex a leaf on one of them.
    Stars do not count (each root needs at least one leaf). *)

val double_star_arms : Graph.t -> (int * int) option
(** Leaf counts of the two roots if the tree is a double star. *)

val theorem1_witness : Graph.t -> (Swap.move * int) option
(** For a tree of diameter >= 3, the improving sum-swap built in the proof
    of Theorem 1 (one endpoint of a diametral-path prefix re-hangs onto the
    far side), verified to have strictly negative delta before returning.
    [None] for trees of diameter <= 2.
    @raise Invalid_argument on non-trees. *)

val theorem4_witness : Graph.t -> (Swap.move * int) option
(** For a tree of diameter >= 4, an improving max-swap in the spirit of
    Lemma 2 (a diametral endpoint re-hangs onto a center), verified before
    returning. [None] for trees of diameter <= 3 — which are not all
    equilibria; combine with {!max_eq_tree}.
    @raise Invalid_argument on non-trees. *)

val sum_eq_tree : Graph.t -> bool
(** Exact sum-equilibrium test for trees: star check plus a defensive
    generic verification for small stars. Equivalent to
    [Equilibrium.is_sum_equilibrium] on trees, but O(n) in the common
    case. *)

val max_eq_tree : Graph.t -> bool
(** Exact max-equilibrium test for trees: diameter <= 3 shape analysis
    (star, or double star with >= 2 leaves per root), matching
    [Equilibrium.is_max_equilibrium] on trees. *)
