(** Agent usage costs for the two basic network creation games.

    The paper studies two cost functions for an agent [v]:
    - {b sum}: the total distance from [v] to every other vertex;
    - {b max}: the "local diameter" of [v], i.e. its eccentricity.

    Disconnection is encoded by {!infinite}, a sentinel large enough that
    any swap leading to disconnection can never look improving, yet small
    enough that differences never overflow. *)

type version = Sum | Max

val pp_version : Format.formatter -> version -> unit

val version_name : version -> string

val infinite : int
(** Cost of a vertex that does not reach the whole graph. *)

val is_infinite : int -> bool

val vertex_cost : Bfs.workspace -> version -> Graph.t -> int -> int
(** Usage cost of one agent under the given version; {!infinite} when the
    agent does not reach all vertices. *)

val social_cost : version -> Graph.t -> int
(** Sum version: Σ_v vertex_cost(v) (twice the Wiener index). Max version:
    the diameter. {!infinite} when disconnected. *)

val social_cost_lower_bound : version -> n:int -> m:int -> int
(** Best possible social cost of any connected graph with [n] vertices and
    [m] edges: the denominator of price-of-anarchy ratios.
    Sum: [2m + 2·(n(n-1) - 2m)] — adjacent ordered pairs cost 1, all others
    at least 2 (exact when a diameter-2 graph with m edges exists).
    Max: 1 if the graph can be complete ([m = n(n-1)/2]), else 2. *)
