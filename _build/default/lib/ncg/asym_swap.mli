(** The asymmetric swap game: only an edge's owner may re-point it.

    The paper's swap equilibria let {e either} endpoint swap an edge; the
    α-game and its descendants attach each edge to the agent who bought it.
    Dropping the buy/sell moves but keeping ownership yields the asymmetric
    swap game (studied by Mihalák and Schlegel as the "asymmetric" variant):
    same parameter-free flavor, strictly fewer deviations per agent.
    Consequently every symmetric swap equilibrium is an asymmetric one under
    any ownership, but not conversely — experiment E20 measures how much
    wider (and deeper in diameter) the asymmetric equilibrium set is. *)

type t
(** A network plus an owner per edge. *)

type ownership =
  | Min_endpoint  (** the smaller endpoint owns each edge *)
  | Random of int  (** seed; each edge's owner is a fair coin *)
  | By_function of (int -> int -> int)
      (** [f u v] with [u < v] must return [u] or [v] *)

val create : ownership -> Graph.t -> t
(** Copies the graph. *)

val graph : t -> Graph.t
(** The underlying network (do not mutate). *)

val owner : t -> int -> int -> int
(** Owner of an existing edge. *)

val owned_edges : t -> int -> int list
(** The far endpoints of the edges the agent owns. *)

val best_move : t -> int -> (Swap.move * int) option
(** Most-improving owner-swap of one agent under the sum cost, or
    [None]. *)

val is_equilibrium : t -> bool
(** No agent can strictly improve its distance sum by re-pointing an edge
    it owns. Implies nothing about the other endpoint's options. *)

val symmetric_equilibrium_implies_asymmetric : Graph.t -> ownership -> bool
(** Sanity oracle used by tests: if the bare graph is a (symmetric) sum
    swap equilibrium then it is an asymmetric equilibrium under the given
    ownership. Always [true]; evaluates both sides. *)

type result = {
  state : t;
  converged : bool;
  rounds : int;
  moves : int;
}

val run_dynamics : ?max_rounds:int -> t -> result
(** Round-robin best-response over owner-swaps on a copy. Cycle-guarded by
    the round cap only (owner-swaps preserve the edge count, so states can
    recur; the cap defaults to 10_000). *)
