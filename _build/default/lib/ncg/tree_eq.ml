let require_tree g =
  if not (Components.is_tree g) then invalid_arg "Tree_eq: not a tree"

let is_star g =
  Components.is_tree g
  &&
  let n = Graph.n g in
  n <= 2 || Graph.max_degree g = n - 1

let double_star_arms g =
  if not (Components.is_tree g) then None
  else begin
    let n = Graph.n g in
    (* roots are the two non-leaf vertices; all others must be leaves *)
    let internal =
      List.filter (fun v -> Graph.degree g v >= 2) (List.init n (fun i -> i))
    in
    match internal with
    | [ r0; r1 ] when Graph.mem_edge g r0 r1 ->
      Some (Graph.degree g r0 - 1, Graph.degree g r1 - 1)
    | _ -> None
  end

let is_double_star g = double_star_arms g <> None

(* Diametral path via double BFS: the farthest vertex from any start is an
   endpoint of some diametral path. *)
let diametral_path g =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  Bfs.run ws g 0;
  let far_from src =
    Bfs.run ws g src;
    let best = ref src in
    for v = 0 to n - 1 do
      if Bfs.dist ws v > Bfs.dist ws !best then best := v
    done;
    !best
  in
  let a = far_from 0 in
  let b = far_from a in
  (* reconstruct the a..b path by walking strictly-decreasing distances
     from b back to a (dist array currently holds distances from a) *)
  let rec walk v acc =
    if v = a then v :: acc
    else begin
      let next = ref (-1) in
      Graph.iter_neighbors
        (fun w -> if Bfs.dist ws w = Bfs.dist ws v - 1 then next := w)
        g v;
      walk !next (v :: acc)
    end
  in
  walk b []

let verified_witness ws version g mv =
  let d = Swap.delta ws version g mv in
  assert (d < 0);
  Some (mv, d)

let theorem1_witness g =
  require_tree g;
  let path = diametral_path g in
  if List.length path < 4 then None
  else begin
    (* path v -> a -> b -> ... : Theorem 1 proves one of the two swaps
       (v re-hangs from a to b) or (the far end symmetric) improves; with
       subtree sizes s_b + s_w > s_a the first one does.  We simply try
       the first and fall back to the symmetric one. *)
    let ws = Bfs.create_workspace (Graph.n g) in
    match path with
    | v :: a :: b :: w :: _ ->
      (* v, a, b, w is an induced distance-3 path; the proof shows that
         swap (1) [v re-hangs onto b] or swap (2) [w re-hangs onto a]
         strictly improves *)
      let mv1 = Swap.Swap { actor = v; drop = a; add = b } in
      let d1 = Swap.delta ws Usage_cost.Sum g mv1 in
      if d1 < 0 then Some (mv1, d1)
      else
        verified_witness ws Usage_cost.Sum g
          (Swap.Swap { actor = w; drop = b; add = a })
    | _ -> assert false
  end

let theorem4_witness g =
  require_tree g;
  let path = diametral_path g in
  let diam = List.length path - 1 in
  if diam < 4 then None
  else begin
    (* Lemma 2 construction: the diametral endpoint w re-hangs its unique
       edge onto a center vertex of the path, dropping its eccentricity to
       ecc(center) + 1 <= diam - 1. *)
    let ws = Bfs.create_workspace (Graph.n g) in
    let arr = Array.of_list path in
    let center = arr.(diam / 2) in
    let w = arr.(diam) in
    let parent = arr.(diam - 1) in
    verified_witness ws Usage_cost.Max g
      (Swap.Swap { actor = w; drop = parent; add = center })
  end

let sum_eq_tree g =
  require_tree g;
  if Graph.n g <= 2 then true
  else if is_star g then true
  else begin
    (* Theorem 1: any non-star tree admits the witness swap *)
    match theorem1_witness g with
    | Some _ -> false
    | None ->
      (* diameter <= 2 but not a star would be a contradiction for trees *)
      assert false
  end

let max_eq_tree g =
  require_tree g;
  let n = Graph.n g in
  if n <= 3 then true
  else if is_star g then true
  else begin
    match double_star_arms g with
    | Some (a, b) -> a >= 2 && b >= 2
    | None -> false
  end
