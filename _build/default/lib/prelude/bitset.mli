(** Fixed-capacity bitsets over [\[0, capacity)].

    Backed by an int array (63 usable bits per word); used for visited marks
    and adjacency rows in the exhaustive small-graph enumerations where a
    [bool array] would double the cache traffic. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [\[0, capacity)]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Remove every element. *)

val cardinal : t -> int
(** Population count; O(capacity / 63). *)

val iter : (int -> unit) -> t -> unit
(** Visit members in increasing order. *)

val fold : (int -> 'acc -> 'acc) -> t -> 'acc -> 'acc

val to_list : t -> int list

val copy : t -> t

val equal : t -> t -> bool

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is |a ∩ b|; capacities must match. *)
