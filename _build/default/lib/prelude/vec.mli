(** Growable arrays.

    OCaml 5.1 predates [Stdlib.Dynarray]; this is the small subset the
    repository needs, specialized for hot loops (no functor indirection,
    amortized O(1) push, O(1) unordered removal). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty vector. [dummy] fills unused slots and
    is never observable through the API. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Bounds-checked read. *)

val set : 'a t -> int -> 'a -> unit
(** Bounds-checked write to an existing index. *)

val push : 'a t -> 'a -> unit
(** Append, growing geometrically when full. *)

val pop : 'a t -> 'a
(** Remove and return the last element. @raise Invalid_argument if empty. *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove t i] removes index [i] in O(1) by moving the last element
    into its place, returning the removed value. Order is not preserved. *)

val clear : 'a t -> unit
(** Logical reset to length 0 (keeps capacity). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val mem : 'a -> 'a t -> bool
(** Structural-equality membership scan. *)

val find_index : ('a -> bool) -> 'a t -> int option

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_array : dummy:'a -> 'a array -> 'a t

val copy : 'a t -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)
