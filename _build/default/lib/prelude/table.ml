type align = Left | Right

type t = {
  title : string;
  headers : string array;
  aligns : align array;
  mutable rows : string array list;  (* reverse order *)
}

let create ~title ~columns =
  {
    title;
    headers = Array.of_list (List.map fst columns);
    aligns = Array.of_list (List.map snd columns);
    rows = [];
  }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let pad align width s =
  let missing = width - String.length s in
  if missing <= 0 then s
  else
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let buf = Buffer.create 1024 in
  let rule sep =
    Buffer.add_char buf sep;
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf sep)
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    for i = 0 to ncols - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) cells.(i));
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule '+';
  line t.headers;
  rule '+';
  List.iter line rows;
  rule '+';
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_int = string_of_int

let cell_float ?(digits = 3) x = Printf.sprintf "%.*f" digits x

let cell_bool b = if b then "yes" else "no"
