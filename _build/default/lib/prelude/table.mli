(** Aligned plain-text tables for the experiment harness.

    Every experiment in [bncg_expt] renders one of these; keeping the layout
    logic here makes the experiment code read like the tables in
    EXPERIMENTS.md. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** [create ~title ~columns] starts an empty table. Column headers and their
    alignment are fixed up front; every row must supply one cell per
    column. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the cell count mismatches the header. *)

val add_rows : t -> string list list -> unit

val render : t -> string
(** Box-drawn table with the title on top. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** Cell formatting helpers. *)

val cell_int : int -> string

val cell_float : ?digits:int -> float -> string

val cell_bool : bool -> string
(** "yes" / "no". *)
