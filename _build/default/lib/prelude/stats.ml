type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let require_nonempty xs name =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty" name)

let mean xs =
  require_nonempty xs "mean";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  require_nonempty xs "stddev";
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let median xs =
  require_nonempty xs "median";
  let c = sorted_copy xs in
  let n = Array.length c in
  if n mod 2 = 1 then c.(n / 2) else (c.((n / 2) - 1) +. c.(n / 2)) /. 2.0

let percentile xs p =
  require_nonempty xs "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let c = sorted_copy xs in
  let n = Array.length c in
  let pos = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then c.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    c.(lo) +. (frac *. (c.(hi) -. c.(lo)))
  end

let summarize xs =
  require_nonempty xs "summarize";
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = median xs;
  }

let summarize_ints xs = summarize (Array.map float_of_int xs)

let histogram xs =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      let c = try Hashtbl.find tbl x with Not_found -> 0 in
      Hashtbl.replace tbl x (c + 1))
    xs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%g med=%g max=%g" s.count
    s.mean s.stddev s.min s.median s.max
