type t = {
  words : int array;
  capacity : int;
}

let bits_per_word = 63

let create capacity =
  assert (capacity >= 0);
  let nwords = (capacity + bits_per_word - 1) / bits_per_word in
  { words = Array.make (max nwords 1) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let bit = !word land - !word in
      let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
      f ((w * bits_per_word) + log2 bit 0);
      word := !word land lnot bit
    done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i l -> i :: l) t [])

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let equal a b = a.capacity = b.capacity && a.words = b.words

let inter_cardinal a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.inter_cardinal";
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc
