type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 8) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len

let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  let v = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  v

let swap_remove t i =
  check t i;
  let v = t.data.(i) in
  t.len <- t.len - 1;
  t.data.(i) <- t.data.(t.len);
  t.data.(t.len) <- t.dummy;
  v

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let mem v t = exists (fun x -> x = v) t

let find_index p t =
  let rec loop i =
    if i >= t.len then None else if p t.data.(i) then Some i else loop (i + 1)
  in
  loop 0

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_array ~dummy a =
  let len = Array.length a in
  let data = Array.make (max len 1) dummy in
  Array.blit a 0 data 0 len;
  { data; len; dummy }

let copy t = { data = Array.copy t.data; len = t.len; dummy = t.dummy }

let sort cmp t =
  let live = to_array t in
  Array.sort cmp live;
  Array.blit live 0 t.data 0 t.len
