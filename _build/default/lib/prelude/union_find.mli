(** Disjoint-set forest with union by rank and path halving.

    Used for connectivity checks during random-graph generation and for the
    component bookkeeping in the exhaustive census. All operations are
    effectively O(α(n)). *)

type t

val create : int -> t
(** [create n] makes [n] singleton classes [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merge the two classes; returns [true] iff they were distinct. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of distinct classes. *)

val class_size : t -> int -> int
(** Size of the class containing the given element. *)
