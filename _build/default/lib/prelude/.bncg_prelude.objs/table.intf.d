lib/prelude/table.mli:
