lib/prelude/bitset.mli:
