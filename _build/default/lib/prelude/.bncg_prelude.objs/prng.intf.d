lib/prelude/prng.mli:
