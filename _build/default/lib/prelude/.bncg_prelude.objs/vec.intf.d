lib/prelude/vec.mli:
