lib/prelude/bitset.ml: Array List
