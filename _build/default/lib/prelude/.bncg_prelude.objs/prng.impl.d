lib/prelude/prng.ml: Array Hashtbl Int64
