lib/prelude/stats.ml: Array Float Format Hashtbl List Printf
