(** Descriptive statistics over float samples.

    The experiment harness reports distributions (diameters over seeds,
    rounds to convergence, ...); these helpers compute the summary columns.
    All functions raise [Invalid_argument] on empty input. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (Bessel-corrected) *)
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary

val summarize_ints : int array -> summary

val mean : float array -> float

val stddev : float array -> float

val median : float array -> float
(** Median via sorting a copy; averages the two middle values for even n. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics. *)

val histogram : int array -> (int * int) list
(** [histogram xs] is the sorted association list of (value, multiplicity). *)

val pp_summary : Format.formatter -> summary -> unit
