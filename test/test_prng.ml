open Test_helpers

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  check_false "different seeds differ" (Prng.bits64 a = Prng.bits64 b)

let test_int_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    check_true "in range" (v >= 0 && v < 17)
  done

let test_int_power_of_two () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 16 in
    check_true "in range" (v >= 0 && v < 16)
  done

let test_int_coverage () =
  (* every residue of a small bound appears over many draws *)
  let rng = Prng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    seen.(Prng.int rng 5) <- true
  done;
  check_true "all residues hit" (Array.for_all Fun.id seen)

let test_int_in_range () =
  let rng = Prng.create 11 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in_range rng ~lo:(-5) ~hi:5 in
    check_true "inclusive range" (v >= -5 && v <= 5)
  done

let test_float_bounds () =
  let rng = Prng.create 13 in
  for _ = 1 to 10_000 do
    let v = Prng.float rng 2.5 in
    check_true "in [0, 2.5)" (v >= 0.0 && v < 2.5)
  done

let test_float_mean () =
  let rng = Prng.create 17 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  check_true "mean near 1/2" (abs_float (mean -. 0.5) < 0.01)

let test_bool_balance () =
  let rng = Prng.create 19 in
  let trues = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bool rng then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  check_true "balanced coin" (abs_float (frac -. 0.5) < 0.01)

let test_bernoulli_extremes () =
  let rng = Prng.create 23 in
  for _ = 1 to 100 do
    check_false "p=0 never true" (Prng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    check_true "p=1 always true" (Prng.bernoulli rng 1.0)
  done

let test_copy_independent () =
  let a = Prng.create 5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_differs () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  check_false "split stream differs" (Prng.bits64 a = Prng.bits64 b)

let test_shuffle_permutation () =
  let rng = Prng.create 29 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_sample_distinct () =
  let rng = Prng.create 31 in
  for _ = 1 to 100 do
    let k = Prng.int rng 20 in
    let s = Prng.sample_distinct rng ~n:20 ~k in
    check_int "size" k (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    let distinct = ref true in
    for i = 1 to k - 1 do
      if sorted.(i) = sorted.(i - 1) then distinct := false
    done;
    check_true "distinct" !distinct;
    Array.iter (fun v -> check_true "in range" (v >= 0 && v < 20)) s
  done

let test_sample_distinct_full () =
  let rng = Prng.create 37 in
  let s = Prng.sample_distinct rng ~n:8 ~k:8 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "full sample is a permutation"
    (Array.init 8 (fun i -> i))
    sorted

let test_substream () =
  (* a substream is a pure function of (seed, index): creation order and
     sibling draws don't matter, indices (negative included) are
     independent streams *)
  let a5 = Prng.substream 9 5 in
  ignore (Prng.bits64 a5);
  let a3 = Prng.substream 9 3 in
  let b3 = Prng.substream 9 3 in
  ignore (Prng.bits64 (Prng.substream 9 7));
  let b5 = Prng.substream 9 5 in
  ignore (Prng.bits64 b5);
  for _ = 1 to 50 do
    Alcotest.(check int64) "pair-determined" (Prng.bits64 a3) (Prng.bits64 b3);
    Alcotest.(check int64) "order-independent" (Prng.bits64 a5) (Prng.bits64 b5)
  done;
  check_false "indices differ" (Prng.bits64 (Prng.substream 9 0) = Prng.bits64 (Prng.substream 9 1));
  check_false "seeds differ" (Prng.bits64 (Prng.substream 9 0) = Prng.bits64 (Prng.substream 10 0));
  check_false "negative index is its own stream"
    (Prng.bits64 (Prng.substream 9 (-1)) = Prng.bits64 (Prng.substream 9 1))

let test_hash64_injective_sample () =
  (* no collisions on a small structured sample *)
  let seen = Hashtbl.create 1024 in
  for i = 0 to 10_000 do
    let h = Prng.hash64 (Int64.of_int i) in
    check_false "no collision" (Hashtbl.mem seen h);
    Hashtbl.add seen h ()
  done

let suite =
  [
    case "determinism" test_determinism;
    case "seed sensitivity" test_seed_sensitivity;
    case "int bounds" test_int_bounds;
    case "int bounds (power of two)" test_int_power_of_two;
    case "int coverage" test_int_coverage;
    case "int_in_range inclusive" test_int_in_range;
    case "float bounds" test_float_bounds;
    case "float mean" test_float_mean;
    case "bool balance" test_bool_balance;
    case "bernoulli extremes" test_bernoulli_extremes;
    case "copy independence" test_copy_independent;
    case "split differs" test_split_differs;
    case "shuffle is a permutation" test_shuffle_permutation;
    case "sample_distinct" test_sample_distinct;
    case "sample_distinct full" test_sample_distinct_full;
    case "substream" test_substream;
    case "hash64 collision-free sample" test_hash64_injective_sample;
  ]
