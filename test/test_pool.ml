open Test_helpers

(* --- pool combinators --------------------------------------------------- *)

let sum_below n = n * (n - 1) / 2

let test_parallel_reduce_sum () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun chunk ->
              let total =
                Pool.parallel_reduce pool ~chunk ~n:10_000
                  ~init:(fun () -> ())
                  ~map:(fun () i -> i)
                  ~reduce:( + ) ~zero:0
              in
              check_int
                (Printf.sprintf "sum of [0,10000) jobs=%d chunk=%d" jobs chunk)
                (sum_below 10_000) total)
            [ 1; 7; 64; 4096 ]))
    [ 1; 2; 4 ]

let test_parallel_for_covers_range () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let out = Array.make 1_000 (-1) in
      Pool.parallel_for pool ~chunk:13 ~n:1_000
        ~init:(fun () -> ())
        (fun () i -> out.(i) <- i * i);
      Array.iteri (fun i x -> check_int "slot written exactly" (i * i) x) out)

let test_parallel_for_init_per_domain () =
  (* each domain gets its own state: concurrent increments on it need no
     synchronisation, and the per-domain counts must add up to n *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let counters = Atomic.make [] in
      Pool.parallel_for pool ~n:5_000
        ~init:(fun () ->
          let c = ref 0 in
          let rec add () =
            let cur = Atomic.get counters in
            if not (Atomic.compare_and_set counters cur (c :: cur)) then add ()
          in
          add ();
          c)
        (fun c _ -> incr c);
      let states = Atomic.get counters in
      check_true "at most one state per domain" (List.length states <= 4);
      check_int "per-domain counts cover the range" 5_000
        (List.fold_left (fun acc c -> acc + !c) 0 states))

let test_parallel_find_lowest_witness () =
  (* witnesses at every index >= 617: whatever the scheduling, the lowest
     one must win, exactly as in the sequential scan *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          for _rep = 1 to 5 do
            match
              Pool.parallel_find pool ~chunk:9 ~n:10_000
                ~init:(fun () -> ())
                (fun () i -> if i >= 617 then Some i else None)
            with
            | Some w -> check_int "lowest witness wins" 617 w
            | None -> Alcotest.fail "witness not found"
          done))
    [ 1; 2; 4 ]

let test_parallel_find_no_witness () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check_true "no witness -> None"
            (Pool.parallel_find pool ~n:1_000
               ~init:(fun () -> ())
               (fun () _ -> None)
            = None)))
    [ 1; 4 ]

let test_parallel_find_early_exit () =
  (* jobs=1 is the bit-for-bit sequential path: exact call count *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let calls = ref 0 in
      let r =
        Pool.parallel_find pool ~n:1_000
          ~init:(fun () -> ())
          (fun () i ->
            incr calls;
            if i = 10 then Some i else None)
      in
      check_int "sequential witness" 10 (Option.get r);
      check_int "sequential scan stopped at the witness" 11 !calls);
  (* parallel: witnesses everywhere from index 5 on — finishing the scan
     without early exit would take all 100k calls *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let calls = Atomic.make 0 in
      let n = 100_000 in
      let r =
        Pool.parallel_find pool ~n
          ~init:(fun () -> ())
          (fun () i ->
            Atomic.incr calls;
            if i >= 5 then Some i else None)
      in
      check_int "parallel lowest witness" 5 (Option.get r);
      check_true "parallel search early-exited" (Atomic.get calls < n))

let test_fold_chunks_ordered_reduce () =
  (* string concatenation is not commutative: chunk results must come back
     in ascending range order for every worker count *)
  let n = 100 and chunk = 16 in
  let expected = Buffer.create 64 in
  let lo = ref 0 in
  while !lo < n do
    Buffer.add_string expected (Printf.sprintf "[%d,%d)" !lo (min n (!lo + chunk)));
    lo := !lo + chunk
  done;
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let got =
            Pool.fold_chunks pool ~chunk ~n
              ~fold:(fun ~lo ~hi -> Printf.sprintf "[%d,%d)" lo hi)
              ~reduce:( ^ ) ~zero:""
          in
          Alcotest.(check string)
            (Printf.sprintf "chunk order jobs=%d" jobs)
            (Buffer.contents expected) got))
    [ 1; 2; 4 ]

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.check_raises "exception crosses the join" (Failure "boom")
            (fun () ->
              Pool.parallel_for pool ~n:100
                ~init:(fun () -> ())
                (fun () i -> if i = 37 then failwith "boom"));
          (* the region drains cleanly, so the pool stays usable *)
          let total =
            Pool.parallel_reduce pool ~n:100
              ~init:(fun () -> ())
              ~map:(fun () i -> i)
              ~reduce:( + ) ~zero:0
          in
          check_int "pool reusable after exception" (sum_below 100) total))
    [ 1; 4 ]

let test_empty_and_degenerate_ranges () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Pool.parallel_for pool ~n:0 ~init:(fun () -> Alcotest.fail "init on empty") (fun _ _ -> ());
      check_true "find on empty" (Pool.parallel_find pool ~n:0 ~init:(fun () -> ()) (fun () i -> Some i) = None);
      check_int "reduce on empty" 0
        (Pool.parallel_reduce pool ~n:0 ~init:(fun () -> ()) ~map:(fun () i -> i) ~reduce:( + ) ~zero:0);
      check_int "singleton range" 42
        (Pool.parallel_reduce pool ~n:1 ~init:(fun () -> ()) ~map:(fun () _ -> 42) ~reduce:( + ) ~zero:0))

(* --- parallel kernels equal the sequential ones -------------------------- *)

let kernel_graphs () =
  [
    ("torus-k3", Constructions.torus 3);
    ("hypercube-q4", Generators.hypercube 4);
    ("path-7", Generators.path 7);
    ("double-star-3-3", Generators.double_star 3 3);
  ]

let test_equilibrium_determinism () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun (name, g) ->
          check_true
            (name ^ ": parallel sum verdict equals sequential")
            (Equilibrium.check_sum g = Equilibrium.check_sum ~pool g);
          check_true
            (name ^ ": parallel max verdict equals sequential")
            (Equilibrium.check_max g = Equilibrium.check_max ~pool g))
        (kernel_graphs ()))

let test_eccentricities_determinism () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun (name, g) ->
          check_true
            (name ^ ": parallel eccentricities equal sequential")
            (Metrics.eccentricities g = Metrics.eccentricities ~pool g);
          check_true
            (name ^ ": parallel diameter equals sequential")
            (Metrics.diameter g = Metrics.diameter ~pool g))
        (kernel_graphs ());
      let split = Graph.of_edges 6 [ (0, 1); (2, 3); (4, 5) ] in
      check_true "disconnected -> None in parallel too"
        (Metrics.eccentricities ~pool split = None))

let test_all_pairs_determinism () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun (name, g) ->
          check_true
            (name ^ ": parallel all-pairs matrix equals sequential")
            (Bfs.all_pairs g = Bfs.all_pairs ~pool g))
        (kernel_graphs ()))

let test_tree_census_determinism () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun version ->
          let seq = Census.tree_census version 6 in
          let par = Census.tree_census ~pool version 6 in
          check_true
            (Game.to_string version
            ^ ": parallel tree census n=6 equals sequential")
            (seq = par))
        [ Game.Sum; Game.Max ])

let test_graph_census_determinism () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun version ->
          let seq = Census.graph_census version 5 in
          let par = Census.graph_census ~pool version 5 in
          check_int "connected count" seq.Census.connected par.Census.connected;
          check_int "labeled equilibria" seq.Census.equilibria_labeled
            par.Census.equilibria_labeled;
          check_int "max diameter" seq.Census.max_diameter par.Census.max_diameter;
          check_true "diameter histogram equal"
            (seq.Census.diameter_histogram = par.Census.diameter_histogram);
          check_int "iso class count"
            (List.length seq.Census.equilibria_iso)
            (List.length par.Census.equilibria_iso);
          (* chunk-ordered first-wins merge keeps even the representative
             choice identical *)
          List.iter2
            (fun a b -> check_true "same representative" (Graph.equal a b))
            seq.Census.equilibria_iso par.Census.equilibria_iso)
        [ Game.Sum; Game.Max ])

let suite =
  [
    case "parallel_reduce sums" test_parallel_reduce_sum;
    case "parallel_for covers the range" test_parallel_for_covers_range;
    case "parallel_for per-domain init" test_parallel_for_init_per_domain;
    case "parallel_find lowest witness" test_parallel_find_lowest_witness;
    case "parallel_find without witness" test_parallel_find_no_witness;
    case "parallel_find early exit" test_parallel_find_early_exit;
    case "fold_chunks ordered reduction" test_fold_chunks_ordered_reduce;
    case "exception propagation" test_exception_propagation;
    case "empty and degenerate ranges" test_empty_and_degenerate_ranges;
    case "equilibrium: parallel = sequential" test_equilibrium_determinism;
    case "eccentricities: parallel = sequential" test_eccentricities_determinism;
    case "all-pairs: parallel = sequential" test_all_pairs_determinism;
    case "tree census: parallel = sequential" test_tree_census_determinism;
    case "graph census: parallel = sequential" test_graph_census_determinism;
  ]
