open Test_helpers

let test_counts_all_graphs () =
  let count n =
    let c = ref 0 in
    Enumerate.all_graphs n (fun _ -> incr c);
    !c
  in
  check_int "n=0" 1 (count 0);
  check_int "n=1" 1 (count 1);
  check_int "n=2" 2 (count 2);
  check_int "n=3" 8 (count 3);
  check_int "n=4" 64 (count 4)

let test_counts_connected () =
  (* A001187: connected labeled graphs *)
  check_int "n=1" 1 (Enumerate.count_connected_graphs 1);
  check_int "n=2" 1 (Enumerate.count_connected_graphs 2);
  check_int "n=3" 4 (Enumerate.count_connected_graphs 3);
  check_int "n=4" 38 (Enumerate.count_connected_graphs 4);
  check_int "n=5" 728 (Enumerate.count_connected_graphs 5)

let test_connected_really_connected () =
  Enumerate.connected_graphs 5 (fun g ->
      check_true "connected" (Components.is_connected g))

let test_tree_counts () =
  (* Cayley's formula n^(n-2) *)
  check_int "n=1" 1 (Enumerate.count_trees 1);
  check_int "n=2" 1 (Enumerate.count_trees 2);
  check_int "n=3" 3 (Enumerate.count_trees 3);
  check_int "n=4" 16 (Enumerate.count_trees 4);
  check_int "n=5" 125 (Enumerate.count_trees 5);
  let seen = ref 0 in
  Enumerate.trees 5 (fun g ->
      incr seen;
      check_true "is tree" (Components.is_tree g));
  check_int "enumerated count matches" 125 !seen

let test_trees_distinct () =
  let seen = Hashtbl.create 64 in
  Enumerate.trees 5 (fun g -> Hashtbl.replace seen (Graph.edges g) ());
  check_int "all distinct" 125 (Hashtbl.length seen)

let test_trees_small () =
  let count n =
    let c = ref 0 in
    Enumerate.trees n (fun _ -> incr c);
    !c
  in
  check_int "n=1" 1 (count 1);
  check_int "n=2" 1 (count 2)

let test_caps () =
  Alcotest.check_raises "graph cap" (Invalid_argument "Enumerate.connected_graphs")
    (fun () -> Enumerate.connected_graphs 9 ignore);
  Alcotest.check_raises "tree cap" (Invalid_argument "Enumerate.trees") (fun () ->
      Enumerate.trees 11 ignore)

let test_edge_subsets () =
  let g = Generators.cycle 5 in
  let count size =
    let c = ref 0 in
    Enumerate.edge_subsets_of g ~size (fun subset ->
        check_int "subset size" size (List.length subset);
        incr c);
    !c
  in
  check_int "C(5,0)" 1 (count 0);
  check_int "C(5,1)" 5 (count 1);
  check_int "C(5,2)" 10 (count 2);
  check_int "C(5,5)" 1 (count 5);
  check_int "size > m gives none" 0 (count 6)

let test_edge_subsets_distinct () =
  let g = Generators.complete 4 in
  let seen = Hashtbl.create 32 in
  Enumerate.edge_subsets_of g ~size:2 (fun subset ->
      Hashtbl.replace seen (List.sort compare subset) ());
  check_int "C(6,2) distinct" 15 (Hashtbl.length seen)

let test_trees_in_ranges_cover () =
  (* concatenating disjoint rank ranges must replay [trees] exactly *)
  let n = 5 in
  let full = ref [] in
  Enumerate.trees n (fun g -> full := g :: !full);
  let full = List.rev !full in
  let total = Enumerate.count_trees n in
  let pieces = ref [] in
  let step = 17 in
  let lo = ref 0 in
  while !lo < total do
    Enumerate.trees_in n ~lo:!lo ~hi:(min total (!lo + step)) (fun g ->
        pieces := g :: !pieces);
    lo := !lo + step
  done;
  let pieces = List.rev !pieces in
  check_int "same count" (List.length full) (List.length pieces);
  List.iter2 (fun a b -> check_true "same tree, same order" (Graph.equal a b)) full pieces

let test_connected_graphs_in_ranges_cover () =
  let n = 4 in
  let full = ref [] in
  Enumerate.connected_graphs n (fun g -> full := g :: !full);
  let full = List.rev !full in
  let total = Enumerate.graph_mask_count n in
  let mid = total / 3 in
  let pieces = ref [] in
  List.iter
    (fun (lo, hi) ->
      Enumerate.connected_graphs_in n ~lo ~hi (fun g -> pieces := g :: !pieces))
    [ (0, mid); (mid, total) ];
  let pieces = List.rev !pieces in
  check_int "same count" (List.length full) (List.length pieces);
  List.iter2 (fun a b -> check_true "same graph, same order" (Graph.equal a b)) full pieces

let suite =
  [
    case "all graph counts" test_counts_all_graphs;
    case "tree rank ranges cover" test_trees_in_ranges_cover;
    case "connected mask ranges cover" test_connected_graphs_in_ranges_cover;
    case "connected counts (A001187)" test_counts_connected;
    case "connected graphs are connected" test_connected_really_connected;
    case "tree counts (Cayley)" test_tree_counts;
    case "trees distinct" test_trees_distinct;
    case "tiny trees" test_trees_small;
    case "caps enforced" test_caps;
    case "edge subsets" test_edge_subsets;
    case "edge subsets distinct" test_edge_subsets_distinct;
  ]
