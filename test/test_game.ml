open Test_helpers

let check_str = Alcotest.(check string)

let check_float = Alcotest.(check (float 1e-9))

(* --- the registry grammar ------------------------------------------------ *)

let game = Alcotest.testable Game.pp Game.equal

let check_game msg expected s =
  match Game.of_string s with
  | Ok g -> Alcotest.check game msg expected g
  | Error e -> Alcotest.failf "%s: %S rejected: %s" msg s e

let check_rejected msg s =
  match Game.of_string s with
  | Ok g -> Alcotest.failf "%s: %S parsed as %s" msg s (Game.to_string g)
  | Error _ -> ()

let test_of_string () =
  check_game "sum" Game.Sum "sum";
  check_game "max" Game.Max "max";
  check_game "alpha" (Game.Alpha 1.5) "alpha:1.5";
  check_game "alpha int spelling" (Game.Alpha 2.0) "alpha:2";
  check_game "alpha zero" (Game.Alpha 0.0) "alpha:0";
  check_game "alpha exponent" (Game.Alpha 1e6) "alpha:1e6";
  check_rejected "unknown name" "median";
  check_rejected "empty" "";
  check_rejected "case sensitive" "SUM";
  check_rejected "bare alpha" "alpha";
  check_rejected "empty alpha payload" "alpha:";
  check_rejected "negative alpha" "alpha:-1";
  check_rejected "nan alpha" "alpha:nan";
  check_rejected "infinite alpha" "alpha:inf";
  check_rejected "junk alpha" "alpha:2x"

let test_to_string () =
  (* the canonical spellings the atlas keys, journals and wire replies use:
     sum/max must stay byte-identical to the pre-registry names *)
  check_str "sum" "sum" (Game.to_string Game.Sum);
  check_str "max" "max" (Game.to_string Game.Max);
  check_str "alpha" "alpha:1.5" (Game.to_string (Game.Alpha 1.5));
  check_str "alpha integral" "alpha:2" (Game.to_string (Game.Alpha 2.0))

let gen_game =
  QCheck2.Gen.(
    oneof
      [
        return Game.Sum;
        return Game.Max;
        (* spans integral, tiny and huge magnitudes; only finite
           non-negative alphas are representable in the grammar *)
        map
          (fun x ->
            let a = Float.abs x in
            Game.Alpha (if Float.is_finite a then a else 1.5))
          float;
      ])

let test_roundtrip =
  qcheck ~count:500 "of_string (to_string g) = Ok g" gen_game (fun g ->
      Game.of_string (Game.to_string g) = Ok g)

let test_bridge () =
  check_true "sum basic" (Game.basic Game.Sum = Some Usage_cost.Sum);
  check_true "max basic" (Game.basic Game.Max = Some Usage_cost.Max);
  check_true "alpha not basic" (Game.basic (Game.Alpha 1.0) = None);
  check_true "is_basic" (Game.is_basic Game.Max);
  check_false "alpha is_basic" (Game.is_basic (Game.Alpha 0.5));
  Alcotest.check game "of_version sum" Game.Sum (Game.of_version Usage_cost.Sum);
  Alcotest.check game "of_version max" Game.Max (Game.of_version Usage_cost.Max);
  check_false "equal across variants" (Game.equal Game.Sum (Game.Alpha 0.0))

let test_social_cost () =
  let star = Generators.star 5 in
  (* basic games: the float social cost is the integer kernel's *)
  check_float "sum star"
    (float_of_int (Usage_cost.social_cost Usage_cost.Sum star))
    (Game.social_cost Game.Sum star);
  check_float "max star"
    (float_of_int (Usage_cost.social_cost Usage_cost.Max star))
    (Game.social_cost Game.Max star);
  (* alpha: edge budget plus the distance sum *)
  check_float "alpha star"
    (Alpha_game.social_cost (Alpha_game.create ~alpha:3.0 star))
    (Game.social_cost (Game.Alpha 3.0) star);
  check_true "disconnected is infinite"
    (Game.social_cost (Game.Alpha 1.0) (Graph.create 3) = infinity)

(* --- differential: the alpha game restricted to swaps is the sum game --- *)

(* No improving [Swap_owned] anywhere. A swap keeps the owned-edge count,
   so its delta is exactly the actor's distance-sum change — the basic sum
   game's move — but only over the edges the actor owns. *)
let swap_restricted_stable t =
  let g = Alpha_game.graph t in
  let n = Graph.n g in
  let stable = ref true in
  for v = 0 to n - 1 do
    Array.iter
      (fun w ->
        if !stable && Alpha_game.owner t v w = v then
          for add = 0 to n - 1 do
            if
              !stable && add <> v && add <> w
              && not (Graph.mem_edge g v add)
              && Alpha_game.delta t (Alpha_game.Swap_owned { actor = v; drop = w; add })
                 < -1e-9
            then stable := false
          done)
      (Graph.neighbors g v)
  done;
  !stable

(* Ownership decides who may swap an edge; the two extreme orientations
   together let every endpoint try every incident edge, which is exactly
   the basic sum game's move set. Exhaustive over every connected labeled
   graph in range. *)
let differential_in n =
  Enumerate.connected_graphs n (fun g ->
      let lo = Alpha_game.create ~alpha:2.5 g in
      let hi = Alpha_game.create ~alpha:2.5 ~owner:(fun _ v -> v) g in
      let alpha_stable = swap_restricted_stable lo && swap_restricted_stable hi in
      if alpha_stable <> Equilibrium.is_sum_equilibrium g then
        Alcotest.failf "swap-restricted alpha disagrees with sum on %s"
          (Graph6.encode g))

let test_differential_small () = List.iter differential_in [ 2; 3; 4; 5 ]

let test_differential_n6 () = differential_in 6

(* --- the generic checker agrees with the alpha engine -------------------- *)

let test_check_alpha_agrees =
  qcheck ~count:60 "Equilibrium.check (Alpha a) matches best_response_exists"
    QCheck2.Gen.(pair (gen_connected ~min_n:2 ~max_n:8) (int_range 0 6))
    (fun (g, k) ->
      let a = 0.5 *. float_of_int k in
      let t = Alpha_game.create ~alpha:a g in
      match Equilibrium.check (Game.Alpha a) g with
      | Equilibrium.Equilibrium -> not (Alpha_game.best_response_exists t)
      | Equilibrium.Alpha_violation (mv, d) ->
        (* the reported witness is real: applicable and improving *)
        Alpha_game.best_response_exists t
        && Alpha_game.is_applicable t mv
        && d < 0.0
        && Float.abs (Alpha_game.delta t mv -. d) < 1e-9
      | Equilibrium.Disconnected | Equilibrium.Violation _ -> false)

let suite =
  [
    case "of_string grammar" test_of_string;
    case "to_string canonical spellings" test_to_string;
    test_roundtrip;
    case "bridge to Usage_cost.version" test_bridge;
    case "social cost across games" test_social_cost;
    case "swap-restricted alpha = sum game (n <= 5)" test_differential_small;
    slow_case "swap-restricted alpha = sum game (n = 6)" test_differential_n6;
    test_check_alpha_agrees;
  ]
