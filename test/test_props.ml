open Test_helpers

(* Property-based differential tests: each invariant runs [iters] seeded
   deterministic random instances (seed = base + iteration index), so a
   failure report pinpoints a reproducible case. *)

let iters = 200

let fail_at prop i msg =
  Alcotest.fail (Printf.sprintf "%s (case %d): %s" prop i msg)

(* ---- (a) Swap.apply / undo round-trips the adjacency exactly ---- *)

let test_swap_roundtrip () =
  for i = 0 to iters - 1 do
    let rng = Prng.create (0x5A40 + i) in
    let n = Prng.int_in_range rng ~lo:4 ~hi:12 in
    let max_m = n * (n - 1) / 2 in
    (* cap below max_m so at least one non-edge exists to swap onto *)
    let m = Prng.int_in_range rng ~lo:(n - 1) ~hi:(max_m - 1) in
    let g = Random_graphs.connected_gnm rng n m in
    let reference = Graph.copy g in
    let non_edges = Array.of_list (Graph.complement_edges g) in
    let u, w = non_edges.(Prng.int rng (Array.length non_edges)) in
    (* connected with n >= 2, so the actor has a neighbor to drop *)
    let nbrs = Graph.neighbors g u in
    let drop = nbrs.(Prng.int rng (Array.length nbrs)) in
    let mv = Swap.Swap { actor = u; drop; add = w } in
    if not (Swap.is_applicable g mv) then
      fail_at "swap roundtrip" i "generated move not applicable";
    Swap.apply g mv;
    if Graph.equal g reference then
      fail_at "swap roundtrip" i "apply left the graph unchanged";
    if not (Graph.mem_edge g u w) || Graph.mem_edge g u drop then
      fail_at "swap roundtrip" i "apply produced the wrong edge set";
    Swap.undo g mv;
    if not (Graph.equal g reference) then
      fail_at "swap roundtrip" i "apply/undo did not round-trip";
    (* the Delete encoding must round-trip too *)
    let v = nbrs.(Prng.int rng (Array.length nbrs)) in
    let del = Swap.Delete { actor = u; drop = v } in
    Swap.apply g del;
    if Graph.mem_edge g u v then
      fail_at "delete roundtrip" i "apply left the edge present";
    Swap.undo g del;
    if not (Graph.equal g reference) then
      fail_at "delete roundtrip" i "apply/undo did not round-trip"
  done

(* ---- (b) BFS distances against a naive Floyd–Warshall oracle ---- *)

let floyd_warshall g =
  let n = Graph.n g in
  let inf = Bfs.unreachable in
  let d = Array.make_matrix n n inf in
  for v = 0 to n - 1 do
    d.(v).(v) <- 0
  done;
  Graph.iter_edges
    (fun u v ->
      d.(u).(v) <- 1;
      d.(v).(u) <- 1)
    g;
  for k = 0 to n - 1 do
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        (* inf = max_int/4, so inf + inf cannot overflow *)
        if d.(u).(k) + d.(k).(v) < d.(u).(v) then
          d.(u).(v) <- d.(u).(k) + d.(k).(v)
      done
    done
  done;
  d

let test_bfs_vs_floyd_warshall () =
  for i = 0 to iters - 1 do
    let rng = Prng.create (0xBF5 + i) in
    let n = Prng.int_in_range rng ~lo:2 ~hi:32 in
    (* p spans sparse (often disconnected) through dense *)
    let p = Prng.float rng 1.0 in
    let g = Random_graphs.gnp rng n p in
    let oracle = floyd_warshall g in
    for src = 0 to n - 1 do
      let dist = Bfs.distances g src in
      for v = 0 to n - 1 do
        if dist.(v) <> oracle.(src).(v) then
          fail_at "bfs vs floyd-warshall" i
            (Printf.sprintf "d(%d,%d): bfs=%d oracle=%d in %s" src v dist.(v)
               oracle.(src).(v) (Graph.to_string g))
      done
    done
  done

(* ---- (c) diameter = max eccentricity, None on disconnection ---- *)

let test_diameter_vs_eccentricities () =
  for i = 0 to iters - 1 do
    let rng = Prng.create (0xD1A + i) in
    let n = Prng.int_in_range rng ~lo:2 ~hi:24 in
    let p = Prng.float rng 1.0 in
    let g = Random_graphs.gnp rng n p in
    match (Metrics.diameter g, Metrics.eccentricities g) with
    | None, None -> ()
    | Some d, Some eccs ->
      let max_ecc = Array.fold_left max 0 eccs in
      if d <> max_ecc then
        fail_at "diameter vs eccentricities" i
          (Printf.sprintf "diameter=%d max ecc=%d in %s" d max_ecc
             (Graph.to_string g))
    | Some _, None | None, Some _ ->
      fail_at "diameter vs eccentricities" i
        "diameter and eccentricities disagree on connectivity"
  done

(* ---- (d) equilibrium verdicts identical at jobs = 1 and jobs = 4 ---- *)

let verdict_to_string = Format.asprintf "%a" Equilibrium.pp_verdict

let random_instance rng =
  let n = Prng.int_in_range rng ~lo:4 ~hi:10 in
  let t = Random_graphs.tree rng n in
  if Prng.bool rng then t
  else begin
    (* unicyclic: a tree plus one random chord *)
    let non_edges = Array.of_list (Graph.complement_edges t) in
    let u, v = non_edges.(Prng.int rng (Array.length non_edges)) in
    Graph.add_edge t u v;
    t
  end

let test_equilibrium_pool_differential () =
  Pool.with_pool ~jobs:1 (fun seq ->
      Pool.with_pool ~jobs:4 (fun par ->
          for i = 0 to iters - 1 do
            let rng = Prng.create (0xEC0 + i) in
            let g = random_instance rng in
            let check name f =
              let a = f ?pool:(Some seq) g in
              let b = f ?pool:(Some par) g in
              if a <> b then
                fail_at name i
                  (Printf.sprintf "jobs=1 %s but jobs=4 %s in %s"
                     (verdict_to_string a) (verdict_to_string b)
                     (Graph.to_string g))
            in
            check "check_sum pool differential" Equilibrium.check_sum;
            check "check_max pool differential" Equilibrium.check_max
          done))

let suite =
  [
    case "swap apply/undo round-trips adjacency" test_swap_roundtrip;
    case "bfs distances match floyd-warshall oracle" test_bfs_vs_floyd_warshall;
    case "diameter equals max eccentricity" test_diameter_vs_eccentricities;
    slow_case "equilibrium verdicts identical across pool sizes"
      test_equilibrium_pool_differential;
  ]
