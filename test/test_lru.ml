open Test_helpers

let test_basic () =
  let c = Lru.create ~capacity:3 in
  check_int "empty" 0 (Lru.length c);
  check_int "capacity" 3 (Lru.capacity c);
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check_true "find a" (Lru.find c "a" = Some 1);
  check_true "find b" (Lru.find c "b" = Some 2);
  check_true "miss" (Lru.find c "z" = None);
  check_int "len" 2 (Lru.length c);
  check_int "hits" 2 (Lru.hits c);
  check_int "misses" 1 (Lru.misses c)

let test_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* recency is c, b, a; inserting d evicts a *)
  Lru.add c "d" 4;
  check_true "a evicted" (not (Lru.mem c "a"));
  check_true "b kept" (Lru.mem c "b");
  check_true "order" (Lru.to_list c = [ ("d", 4); ("c", 3); ("b", 2) ])

let test_find_promotes () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* touching a makes b the LRU entry *)
  ignore (Lru.find c "a");
  Lru.add c "d" 4;
  check_true "b evicted" (not (Lru.mem c "b"));
  check_true "a kept by promotion" (Lru.mem c "a");
  check_true "order" (Lru.to_list c = [ ("d", 4); ("a", 1); ("c", 3) ])

let test_update_on_access () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* re-adding an existing key replaces the value and promotes: a is now
     most-recent, so c evicts b *)
  Lru.add c "a" 10;
  check_int "len unchanged" 2 (Lru.length c);
  check_true "updated" (Lru.find c "a" = Some 10);
  Lru.add c "c" 3;
  check_true "b evicted" (not (Lru.mem c "b"));
  check_true "a kept" (Lru.mem c "a")

let test_mem_does_not_promote () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check_true "mem a" (Lru.mem c "a");
  check_int "no hit counted" 0 (Lru.hits c);
  (* a was not promoted by mem, so it is still the LRU entry *)
  Lru.add c "c" 3;
  check_true "a evicted" (not (Lru.mem c "a"))

let test_remove_and_clear () =
  let c = Lru.create ~capacity:4 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.remove c "a";
  Lru.remove c "nope";
  check_int "len" 1 (Lru.length c);
  check_true "gone" (not (Lru.mem c "a"));
  ignore (Lru.find c "b");
  Lru.clear c;
  check_int "cleared" 0 (Lru.length c);
  check_true "empty list" (Lru.to_list c = []);
  check_int "hit counters survive clear" 1 (Lru.hits c);
  (* reusable after clear *)
  Lru.add c "x" 9;
  check_true "usable" (Lru.find c "x" = Some 9)

let test_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.add c 1 "one";
  Lru.add c 2 "two";
  check_int "len" 1 (Lru.length c);
  check_true "only latest" (Lru.find c 2 = Some "two");
  check_true "evicted" (Lru.find c 1 = None)

let test_rejects_zero_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Lru.create: capacity < 1")
    (fun () -> ignore (Lru.create ~capacity:0))

(* model check: drive the cache and a naive reference (assoc list in
   recency order) with the same operation stream *)
let test_against_model =
  qcheck ~count:200 "matches a naive LRU model"
    QCheck2.Gen.(
      pair (int_range 1 6) (list_size (int_range 0 120) (pair (int_range 0 9) (int_range 0 2))))
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap in
      (* model: (key, value) list, most-recent first *)
      let model = ref [] in
      List.for_all
        (fun (k, op) ->
          match op with
          | 0 ->
            (* add k (value k*10) *)
            Lru.add c k (k * 10);
            model := (k, k * 10) :: List.remove_assoc k !model;
            if List.length !model > cap then
              model := List.filteri (fun i _ -> i < cap) !model;
            true
          | 1 ->
            let expected = List.assoc_opt k !model in
            (if expected <> None then
               model := (k, Option.get expected) :: List.remove_assoc k !model);
            Lru.find c k = expected
          | _ ->
            Lru.remove c k;
            model := List.remove_assoc k !model;
            true)
        ops
      && Lru.to_list c = !model)

(* --- sharded wrapper ------------------------------------------------------ *)

let test_sharded_basic () =
  let c = Lru_sharded.create ~shards:4 ~capacity:64 () in
  check_int "shard count" 4 (Lru_sharded.shard_count c);
  check_true "capacity covers request" (Lru_sharded.capacity c >= 64);
  check_int "empty" 0 (Lru_sharded.length c);
  Lru_sharded.add c "a" 1;
  Lru_sharded.add c "b" 2;
  check_true "find a" (Lru_sharded.find c "a" = Some 1);
  check_true "find b" (Lru_sharded.find c "b" = Some 2);
  check_true "miss" (Lru_sharded.find c "z" = None);
  check_int "len" 2 (Lru_sharded.length c);
  check_int "hits" 2 (Lru_sharded.hits c);
  check_int "misses" 1 (Lru_sharded.misses c);
  Lru_sharded.remove c "a";
  check_true "removed" (Lru_sharded.find c "a" = None);
  Lru_sharded.clear c;
  check_int "cleared" 0 (Lru_sharded.length c)

let test_sharded_rounds_to_power_of_two () =
  let c = Lru_sharded.create ~shards:5 ~capacity:100 () in
  check_int "rounded up" 8 (Lru_sharded.shard_count c)

let test_sharded_capacity_bound () =
  (* whatever the hash spread, total occupancy never exceeds the sum of
     per-shard capacities *)
  let c = Lru_sharded.create ~shards:4 ~capacity:40 () in
  for i = 0 to 999 do
    Lru_sharded.add c (string_of_int i) i
  done;
  check_true "bounded" (Lru_sharded.length c <= Lru_sharded.capacity c);
  check_true "retains something" (Lru_sharded.length c > 0)

let test_sharded_stats_sum () =
  let c = Lru_sharded.create ~shards:4 ~capacity:64 () in
  for i = 0 to 49 do
    Lru_sharded.add c (string_of_int i) i
  done;
  for i = 0 to 24 do
    ignore (Lru_sharded.find c (string_of_int i))
  done;
  for i = 1000 to 1009 do
    ignore (Lru_sharded.find c (string_of_int i))
  done;
  let stats = Lru_sharded.shard_stats c in
  check_int "one record per shard" 4 (Array.length stats);
  let sum f = Array.fold_left (fun a s -> a + f s) 0 stats in
  check_int "sizes sum" (Lru_sharded.length c)
    (sum (fun s -> s.Lru_sharded.size));
  check_int "hits sum" (Lru_sharded.hits c) (sum (fun s -> s.Lru_sharded.hits));
  check_int "misses sum" (Lru_sharded.misses c)
    (sum (fun s -> s.Lru_sharded.misses));
  check_int "hits counted" 25 (Lru_sharded.hits c);
  check_int "misses counted" 10 (Lru_sharded.misses c)

let test_sharded_rejects () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Lru_sharded.create: capacity < 1") (fun () ->
      ignore (Lru_sharded.create ~capacity:0 ()));
  Alcotest.check_raises "shards 0"
    (Invalid_argument "Lru_sharded.create: shards < 1") (fun () ->
      ignore (Lru_sharded.create ~shards:0 ~capacity:8 ()))

let test_sharded_concurrent_smoke () =
  (* hammer one cache from several threads: no lost updates visible as
     absent keys in the read-back phase, counters stay coherent *)
  let c = Lru_sharded.create ~shards:8 ~capacity:10_000 () in
  let threads =
    List.init 4 (fun t ->
        Thread.create
          (fun () ->
            for i = 0 to 999 do
              let k = Printf.sprintf "%d:%d" t i in
              Lru_sharded.add c k i;
              if Lru_sharded.find c k <> Some i then
                failwith ("lost own write " ^ k)
            done)
          ())
  in
  List.iter Thread.join threads;
  check_int "all retained under capacity" 4000 (Lru_sharded.length c);
  check_int "all finds hit" 4000 (Lru_sharded.hits c)

let suite =
  [
    case "basic add/find and counters" test_basic;
    case "eviction follows recency order" test_eviction_order;
    case "find promotes" test_find_promotes;
    case "add on existing key updates and promotes" test_update_on_access;
    case "mem is passive" test_mem_does_not_promote;
    case "remove and clear" test_remove_and_clear;
    case "capacity one" test_capacity_one;
    case "rejects zero capacity" test_rejects_zero_capacity;
    test_against_model;
    case "sharded: basic ops and counters" test_sharded_basic;
    case "sharded: shard count rounds to power of two"
      test_sharded_rounds_to_power_of_two;
    case "sharded: occupancy bounded by capacity" test_sharded_capacity_bound;
    case "sharded: per-shard stats sum to aggregates" test_sharded_stats_sum;
    case "sharded: rejects bad arguments" test_sharded_rejects;
    case "sharded: concurrent smoke" test_sharded_concurrent_smoke;
  ]
