open Test_helpers

let test_basic () =
  let c = Lru.create ~capacity:3 in
  check_int "empty" 0 (Lru.length c);
  check_int "capacity" 3 (Lru.capacity c);
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check_true "find a" (Lru.find c "a" = Some 1);
  check_true "find b" (Lru.find c "b" = Some 2);
  check_true "miss" (Lru.find c "z" = None);
  check_int "len" 2 (Lru.length c);
  check_int "hits" 2 (Lru.hits c);
  check_int "misses" 1 (Lru.misses c)

let test_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* recency is c, b, a; inserting d evicts a *)
  Lru.add c "d" 4;
  check_true "a evicted" (not (Lru.mem c "a"));
  check_true "b kept" (Lru.mem c "b");
  check_true "order" (Lru.to_list c = [ ("d", 4); ("c", 3); ("b", 2) ])

let test_find_promotes () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* touching a makes b the LRU entry *)
  ignore (Lru.find c "a");
  Lru.add c "d" 4;
  check_true "b evicted" (not (Lru.mem c "b"));
  check_true "a kept by promotion" (Lru.mem c "a");
  check_true "order" (Lru.to_list c = [ ("d", 4); ("a", 1); ("c", 3) ])

let test_update_on_access () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* re-adding an existing key replaces the value and promotes: a is now
     most-recent, so c evicts b *)
  Lru.add c "a" 10;
  check_int "len unchanged" 2 (Lru.length c);
  check_true "updated" (Lru.find c "a" = Some 10);
  Lru.add c "c" 3;
  check_true "b evicted" (not (Lru.mem c "b"));
  check_true "a kept" (Lru.mem c "a")

let test_mem_does_not_promote () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check_true "mem a" (Lru.mem c "a");
  check_int "no hit counted" 0 (Lru.hits c);
  (* a was not promoted by mem, so it is still the LRU entry *)
  Lru.add c "c" 3;
  check_true "a evicted" (not (Lru.mem c "a"))

let test_remove_and_clear () =
  let c = Lru.create ~capacity:4 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.remove c "a";
  Lru.remove c "nope";
  check_int "len" 1 (Lru.length c);
  check_true "gone" (not (Lru.mem c "a"));
  ignore (Lru.find c "b");
  Lru.clear c;
  check_int "cleared" 0 (Lru.length c);
  check_true "empty list" (Lru.to_list c = []);
  check_int "hit counters survive clear" 1 (Lru.hits c);
  (* reusable after clear *)
  Lru.add c "x" 9;
  check_true "usable" (Lru.find c "x" = Some 9)

let test_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.add c 1 "one";
  Lru.add c 2 "two";
  check_int "len" 1 (Lru.length c);
  check_true "only latest" (Lru.find c 2 = Some "two");
  check_true "evicted" (Lru.find c 1 = None)

let test_rejects_zero_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Lru.create: capacity < 1")
    (fun () -> ignore (Lru.create ~capacity:0))

(* model check: drive the cache and a naive reference (assoc list in
   recency order) with the same operation stream *)
let test_against_model =
  qcheck ~count:200 "matches a naive LRU model"
    QCheck2.Gen.(
      pair (int_range 1 6) (list_size (int_range 0 120) (pair (int_range 0 9) (int_range 0 2))))
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap in
      (* model: (key, value) list, most-recent first *)
      let model = ref [] in
      List.for_all
        (fun (k, op) ->
          match op with
          | 0 ->
            (* add k (value k*10) *)
            Lru.add c k (k * 10);
            model := (k, k * 10) :: List.remove_assoc k !model;
            if List.length !model > cap then
              model := List.filteri (fun i _ -> i < cap) !model;
            true
          | 1 ->
            let expected = List.assoc_opt k !model in
            (if expected <> None then
               model := (k, Option.get expected) :: List.remove_assoc k !model);
            Lru.find c k = expected
          | _ ->
            Lru.remove c k;
            model := List.remove_assoc k !model;
            true)
        ops
      && Lru.to_list c = !model)

let suite =
  [
    case "basic add/find and counters" test_basic;
    case "eviction follows recency order" test_eviction_order;
    case "find promotes" test_find_promotes;
    case "add on existing key updates and promotes" test_update_on_access;
    case "mem is passive" test_mem_does_not_promote;
    case "remove and clear" test_remove_and_clear;
    case "capacity one" test_capacity_one;
    case "rejects zero capacity" test_rejects_zero_capacity;
    test_against_model;
  ]
