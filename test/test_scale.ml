(* The lib/scale subsystem: Flexcsr mutation + BFS kernels against
   Graph/Csr oracles, bit-parallel BFS against scalar BFS on 200 seeded
   graphs, generator invariants (edge counts, determinism, j1-vs-j4
   byte-identity), and the engine-level differential: the sampled scale
   engine must reproduce Dynamics' move sequences byte-identically. *)

open Test_helpers

let connected_graph seed n m = Random_graphs.connected_gnm (Prng.create seed) n m

(* (reached, sum, ecc) oracle from a Csr BFS row *)
let stats_of_dist dist =
  let reached = ref 0 and sum = ref 0 and ecc = ref 0 in
  Array.iter
    (fun d ->
      if d >= 0 then begin
        incr reached;
        sum := !sum + d;
        if d > !ecc then ecc := d
      end)
    dist;
  (!reached, !sum, !ecc)

(* --- Flexcsr ----------------------------------------------------------- *)

let test_flexcsr_roundtrip () =
  for seed = 1 to 10 do
    let g = connected_graph seed 20 40 in
    let csr = Csr.of_graph g in
    let fx = Flexcsr.of_csr csr in
    check_int "n" (Csr.n csr) (Flexcsr.n fx);
    check_int "m" (Csr.m csr) (Flexcsr.m fx);
    check_true "roundtrip" (Csr.equal csr (Flexcsr.to_csr fx));
    check_true "to_graph" (Graph.equal g (Flexcsr.to_graph fx))
  done

let test_flexcsr_mutation_oracle () =
  (* random interleaved adds/removes tracked against a Graph.t oracle,
     with enough inserts on few vertices to force row relocations *)
  let rng = Prng.create 42 in
  let n = 30 in
  let g = Generators.path n in
  let fx = Flexcsr.of_graph g in
  for _step = 1 to 400 do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then
      if Graph.mem_edge g u v then begin
        Graph.remove_edge g u v;
        Flexcsr.remove_edge fx u v
      end
      else begin
        Graph.add_edge g u v;
        Flexcsr.add_edge fx u v
      end
  done;
  check_true "oracle equal" (Graph.equal g (Flexcsr.to_graph fx));
  check_int "m" (Graph.m g) (Flexcsr.m fx);
  for v = 0 to n - 1 do
    let row = Flexcsr.neighbors fx v in
    let sorted = Array.copy row in
    Array.sort compare sorted;
    check_true "row sorted" (row = sorted);
    check_true "row matches" (row = Graph.neighbors g v)
  done

let test_flexcsr_hub_relocation () =
  (* vertex 0 grows from degree 1 to n-1: many relocations *)
  let n = 64 in
  let g = Generators.path n in
  let fx = Flexcsr.of_graph g in
  for v = 2 to n - 1 do
    if not (Flexcsr.mem_edge fx 0 v) then Flexcsr.add_edge fx 0 v
  done;
  check_int "hub degree" (n - 1) (Flexcsr.degree fx 0);
  for v = 1 to n - 1 do
    check_true "hub edge" (Flexcsr.mem_edge fx 0 v)
  done

let test_flexcsr_bfs_kernels () =
  for seed = 1 to 20 do
    let n = 8 + (seed mod 17) in
    let g = connected_graph seed n (n + (seed mod n)) in
    let fx = Flexcsr.of_graph g in
    let dist = Array.make n (-1) and queue = Array.make n 0 in
    let v = seed mod n in
    (* plain BFS vs Csr oracle *)
    let csr = Csr.of_graph g in
    let od = Array.make n (-1) and oq = Array.make n 0 in
    ignore (Csr.bfs_into csr v ~dist:od ~queue:oq);
    let r, s, e = Flexcsr.bfs_stats fx v ~dist ~queue in
    check_true "bfs dist" (dist = od);
    check_true "bfs stats" ((r, s, e) = stats_of_dist od);
    (* delete kernel vs mutate-and-BFS oracle *)
    let row = Graph.neighbors g v in
    if Array.length row > 0 then begin
      let drop = row.(seed mod Array.length row) in
      Graph.remove_edge g v drop;
      ignore (Csr.bfs_into (Csr.of_graph g) v ~dist:od ~queue:oq);
      let got = Flexcsr.bfs_delete_stats fx v ~drop ~dist ~queue in
      check_true "delete dist" (dist = od);
      check_true "delete stats" (got = stats_of_dist od);
      (* swap kernel vs mutate-and-BFS oracle *)
      let add = ref (-1) in
      for x = n - 1 downto 0 do
        if x <> v && x <> drop && not (Graph.mem_edge g v x) then add := x
      done;
      if !add >= 0 then begin
        Graph.add_edge g v !add;
        ignore (Csr.bfs_into (Csr.of_graph g) v ~dist:od ~queue:oq);
        let got = Flexcsr.bfs_swap_stats fx v ~drop ~add:!add ~dist ~queue in
        check_true "swap dist" (dist = od);
        check_true "swap stats" (got = stats_of_dist od)
      end
    end
  done

(* --- Csr.of_edges ------------------------------------------------------ *)

let test_of_edges_matches_of_graph () =
  for seed = 1 to 15 do
    let n = 6 + (seed mod 20) in
    let g = connected_graph seed n (n + (seed mod n)) in
    let edges = ref [] in
    for v = 0 to n - 1 do
      Array.iter (fun w -> if v < w then edges := (v, w) :: !edges) (Graph.neighbors g v)
    done;
    let edges = Array.of_list !edges in
    check_true "of_edges = of_graph" (Csr.equal (Csr.of_edges ~n edges) (Csr.of_graph g));
    (* duplicates (in both orientations) are dropped *)
    let doubled = Array.append edges (Array.map (fun (u, v) -> (v, u)) edges) in
    check_true "dedup" (Csr.equal (Csr.of_edges ~n doubled) (Csr.of_graph g))
  done

(* --- Bitbfs ------------------------------------------------------------ *)

let test_bitbfs_oracle_200 () =
  (* satellite contract: bit-parallel distances equal the scalar oracle on
     200 seeded random graphs, all sources (chunked past 63) *)
  for seed = 1 to 200 do
    let n = 4 + (seed mod 70) in
    let m = n - 1 + (seed mod (n / 2 + 1)) in
    let g = connected_graph seed n m in
    let csr = Csr.of_graph g in
    let fx = Flexcsr.of_csr csr in
    let sc = Bitbfs.create_scratch n in
    let sources = Array.init n (fun i -> i) in
    let got = Bitbfs.distances sc fx ~sources in
    let oracle = Csr.all_pairs csr in
    check_true "bitbfs distances" (got = oracle);
    if seed mod 25 = 0 then begin
      (* gather path under a real pool agrees with the scatter path *)
      Pool.with_pool ~jobs:4 (fun pool ->
          check_true "gather = scatter" (Bitbfs.distances ~pool sc fx ~sources = oracle))
    end
  done

let test_bitbfs_sample_stats () =
  let g = connected_graph 7 40 60 in
  let csr = Csr.of_graph g in
  let fx = Flexcsr.of_csr csr in
  let sc = Bitbfs.create_scratch 40 in
  let sources = [| 0; 7; 13; 39 |] in
  let stats = Bitbfs.sample_stats sc fx ~sources in
  Array.iteri
    (fun i src ->
      let dist = Array.make 40 (-1) and queue = Array.make 40 0 in
      ignore (Csr.bfs_into csr src ~dist ~queue);
      let r, s, e = stats_of_dist dist in
      check_int "reached" r stats.(i).Bitbfs.reached;
      check_int "sum" s stats.(i).Bitbfs.sum;
      check_int "ecc" e stats.(i).Bitbfs.ecc)
    sources

let test_iter_bits () =
  let collect bits =
    let out = ref [] in
    Bitbfs.iter_bits (fun i -> out := i :: !out) bits;
    List.rev !out
  in
  check_true "empty" (collect 0 = []);
  check_true "low" (collect 1 = [ 0 ]);
  check_true "mixed" (collect ((1 lsl 5) lor (1 lsl 17) lor (1 lsl 62)) = [ 5; 17; 62 ]);
  check_true "all" (List.length (collect (-1)) = 63)

(* --- generators --------------------------------------------------------- *)

let csr_connected csr =
  let n = Csr.n csr in
  let dist = Array.make n (-1) and queue = Array.make n 0 in
  n = 0 || Csr.bfs_into csr 0 ~dist ~queue = n

let test_ba_invariants () =
  let n = 3000 and m = 3 in
  let csr = Scale_gen.ba ~seed:11 ~n ~m in
  check_int "n" n (Csr.n csr);
  check_int "edge count" ((n - m) * m) (Csr.m csr);
  check_true "connected" (csr_connected csr);
  let degsum = ref 0 in
  for v = 0 to n - 1 do
    degsum := !degsum + Csr.degree csr v
  done;
  check_int "degree sum" (2 * Csr.m csr) !degsum;
  (* arrivals bring m edges each *)
  for v = m to n - 1 do
    check_true "arrival degree" (Csr.degree csr v >= m)
  done

let test_er_concentration () =
  let n = 20_000 and avg = 6.0 in
  let csr = Scale_gen.er ~seed:3 ~n ~avg_deg:avg () in
  let expect = int_of_float (avg *. float_of_int n /. 2.) in
  let slack = expect / 20 in
  check_true "edge count concentrates"
    (abs (Csr.m csr - expect) <= slack);
  check_true "connected" (csr_connected csr)

let test_ws_invariants () =
  let n = 4000 and k = 3 in
  let ring = Scale_gen.ws ~seed:5 ~n ~k ~beta:0.0 () in
  check_int "ring edges" (n * k) (Csr.m ring);
  for v = 0 to n - 1 do
    check_int "ring degree" (2 * k) (Csr.degree ring v)
  done;
  check_true "ring connected" (csr_connected ring);
  let rew = Scale_gen.ws ~seed:5 ~n ~k ~beta:0.3 () in
  check_true "rewired connected" (csr_connected rew);
  check_true "rewired m bounded" (Csr.m rew <= n * k);
  check_true "rewired m near nk" (Csr.m rew >= (n * k) - (n * k / 10));
  check_false "rewiring changed the graph" (Csr.equal ring rew)

let test_gen_determinism_and_jobs () =
  (* same seed -> byte-identical snapshot, at any job count; different
     seed -> different snapshot *)
  let n = 5000 in
  let er1 = Scale_gen.er ~seed:9 ~n ~avg_deg:4.0 () in
  let ws1 = Scale_gen.ws ~seed:9 ~n ~k:2 ~beta:0.2 () in
  let ba1 = Scale_gen.ba ~seed:9 ~n ~m:2 in
  check_true "er repeat" (Csr.equal er1 (Scale_gen.er ~seed:9 ~n ~avg_deg:4.0 ()));
  check_true "ba repeat" (Csr.equal ba1 (Scale_gen.ba ~seed:9 ~n ~m:2));
  check_false "er seed moves" (Csr.equal er1 (Scale_gen.er ~seed:10 ~n ~avg_deg:4.0 ()));
  Pool.with_pool ~jobs:4 (fun pool ->
      check_true "er j4 = j1" (Csr.equal er1 (Scale_gen.er ~pool ~seed:9 ~n ~avg_deg:4.0 ()));
      check_true "ws j4 = j1" (Csr.equal ws1 (Scale_gen.ws ~pool ~seed:9 ~n ~k:2 ~beta:0.2 ())))

(* --- engine differential ------------------------------------------------ *)

let scale_cfg_of version budget max_rounds =
  {
    (Scale_dynamics.default_config version) with
    Scale_dynamics.budget;
    probes_per_round = 0;
    max_rounds;
    confirm = Scale_dynamics.Exact_scan;
    trajectory_sources = 0;
    record_trace = true;
  }

let run_both version budget seed g =
  let max_rounds = 50 in
  let exact_cfg =
    {
      (Dynamics.default_config version) with
      Dynamics.rule = Dynamics.Sampled budget;
      schedule = Dynamics.Random_agent;
      max_rounds;
      record_trace = true;
    }
  in
  let r1 = Dynamics.run ~rng:(Prng.create seed) exact_cfg g in
  let r2 =
    Scale_dynamics.run
      ~rng:(Prng.create seed)
      (scale_cfg_of version budget max_rounds)
      (Csr.of_graph g)
  in
  (r1, r2)

let check_differential version budget seed g =
  let r1, r2 = run_both version budget seed g in
  check_true "outcome" (r1.Dynamics.outcome = r2.Scale_dynamics.outcome);
  check_int "rounds" r1.Dynamics.rounds r2.Scale_dynamics.rounds;
  check_int "moves" r1.Dynamics.moves r2.Scale_dynamics.moves;
  let t1 = List.map (fun s -> (s.Dynamics.move, s.Dynamics.delta)) r1.Dynamics.trace in
  check_true "trace byte-identical" (t1 = r2.Scale_dynamics.trace);
  check_true "final graph equal"
    (Graph.equal r1.Dynamics.final (Flexcsr.to_graph r2.Scale_dynamics.final));
  check_int "final m" (Graph.m r1.Dynamics.final) r2.Scale_dynamics.final_m

let test_differential_sum () =
  (* the satellite anchor: at small n the sampled scale engine replays
     Dynamics (Sampled, Random_agent) move-for-move *)
  for seed = 1 to 25 do
    let n = 5 + (seed mod 6) in
    let g = connected_graph seed n (n - 1 + (seed mod n)) in
    check_differential Game.Sum (1 + (seed mod 8)) seed g
  done

let test_differential_max () =
  for seed = 1 to 25 do
    let n = 5 + (seed mod 6) in
    let g = connected_graph (100 + seed) n (n - 1 + (seed mod n)) in
    check_differential Game.Max (1 + (seed mod 8)) seed g
  done

let test_differential_larger_budget () =
  (* budget past the candidate space: every probe examines (multisets of)
     all moves; certification has to stay sound under deep cutoffs *)
  for seed = 1 to 8 do
    let g = connected_graph (200 + seed) 8 10 in
    check_differential Game.Sum 64 seed g
  done

(* --- quiescence / trajectory / cycle machinery -------------------------- *)

let test_quiescence_run () =
  let csr = Scale_gen.ba ~seed:4 ~n:400 ~m:2 in
  let cfg =
    {
      (Scale_dynamics.default_config Game.Sum) with
      Scale_dynamics.budget = 8;
      probes_per_round = 64;
      max_rounds = 150;
      confirm = Scale_dynamics.Quiescence 128;
      trajectory_every = 10;
      trajectory_sources = 16;
    }
  in
  let r = Scale_dynamics.run ~rng:(Prng.substream 4 (-1)) cfg csr in
  check_true "bounded outcome"
    (r.Scale_dynamics.outcome = Dynamics.Converged
    || r.Scale_dynamics.outcome = Dynamics.Round_limit
    || r.Scale_dynamics.outcome = Dynamics.Cycled);
  if r.Scale_dynamics.outcome = Dynamics.Converged then
    check_true "sampled verdict flagged" r.Scale_dynamics.sampled_verdict;
  let rounds = List.map (fun s -> s.Scale_dynamics.s_round) r.Scale_dynamics.trajectory in
  check_true "trajectory nonempty" (rounds <> []);
  check_true "trajectory chronological" (List.sort compare rounds = rounds);
  check_true "trajectory has start" (List.hd rounds = 0);
  (* swaps preserve m; sum dynamics never deletes *)
  check_int "m preserved" (Csr.m csr) r.Scale_dynamics.final_m;
  check_int "no deletions" 0 r.Scale_dynamics.deletions

let test_scale_run_deterministic () =
  let csr = Scale_gen.ba ~seed:8 ~n:300 ~m:2 in
  let cfg =
    {
      (Scale_dynamics.default_config Game.Sum) with
      Scale_dynamics.budget = 6;
      probes_per_round = 32;
      max_rounds = 20;
      confirm = Scale_dynamics.Quiescence 1000;
      record_trace = true;
    }
  in
  let r1 = Scale_dynamics.run ~rng:(Prng.substream 8 (-1)) cfg csr in
  let r2 = Scale_dynamics.run ~rng:(Prng.substream 8 (-1)) cfg csr in
  check_true "same trace" (r1.Scale_dynamics.trace = r2.Scale_dynamics.trace);
  check_int "same moves" r1.Scale_dynamics.moves r2.Scale_dynamics.moves;
  Pool.with_pool ~jobs:4 (fun pool ->
      let r3 = Scale_dynamics.run ~pool ~rng:(Prng.substream 8 (-1)) cfg csr in
      check_true "same trace under -j4" (r1.Scale_dynamics.trace = r3.Scale_dynamics.trace))

let suite =
  [
    case "flexcsr roundtrip" test_flexcsr_roundtrip;
    case "flexcsr mutation oracle" test_flexcsr_mutation_oracle;
    case "flexcsr hub relocation" test_flexcsr_hub_relocation;
    case "flexcsr bfs kernels" test_flexcsr_bfs_kernels;
    case "csr of_edges" test_of_edges_matches_of_graph;
    slow_case "bitbfs oracle x200" test_bitbfs_oracle_200;
    case "bitbfs sample stats" test_bitbfs_sample_stats;
    case "iter_bits" test_iter_bits;
    case "ba invariants" test_ba_invariants;
    slow_case "er concentration" test_er_concentration;
    case "ws invariants" test_ws_invariants;
    slow_case "generator determinism and jobs" test_gen_determinism_and_jobs;
    slow_case "differential vs Dynamics (sum)" test_differential_sum;
    slow_case "differential vs Dynamics (max)" test_differential_max;
    slow_case "differential, saturating budget" test_differential_larger_budget;
    case "quiescence run" test_quiescence_run;
    case "scale run deterministic" test_scale_run_deterministic;
  ]
