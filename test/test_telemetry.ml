open Test_helpers

(* Telemetry is process-global; every test flips the switch inside
   [guarded] so a failure cannot leave it enabled for later suites. *)
let guarded f =
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_enabled false;
      Telemetry.reset ())
    f

let test_counter_semantics () =
  guarded (fun () ->
      let c = Telemetry.counter "test.counter" in
      Telemetry.reset ();
      check_int "starts at zero" 0 (Telemetry.counter_value c);
      Telemetry.set_enabled true;
      Telemetry.incr c;
      Telemetry.incr c;
      Telemetry.add c 40;
      check_int "incr and add accumulate" 42 (Telemetry.counter_value c);
      (* creation is idempotent: same name, same cell *)
      let c' = Telemetry.counter "test.counter" in
      Telemetry.incr c';
      check_int "same handle per name" 43 (Telemetry.counter_value c))

let test_gauge_semantics () =
  guarded (fun () ->
      let g = Telemetry.gauge "test.gauge" in
      Telemetry.reset ();
      Telemetry.set_enabled true;
      Telemetry.set_gauge g 7;
      Telemetry.set_gauge g 3;
      check_int "last write wins" 3 (Telemetry.gauge_value g))

let test_kind_collision_rejected () =
  guarded (fun () ->
      let _ = Telemetry.counter "test.collide" in
      match Telemetry.gauge "test.collide" with
      | _ -> Alcotest.fail "cross-kind name reuse must raise"
      | exception Invalid_argument _ -> ())

let test_histogram_semantics () =
  guarded (fun () ->
      let h = Telemetry.histogram "test.hist" in
      Telemetry.reset ();
      Telemetry.set_enabled true;
      List.iter (Telemetry.observe h) [ 0; 1; 2; 3; 5; 1024; max_int ];
      check_int "count" 7 (Telemetry.histogram_count h);
      check_int "sum" (0 + 1 + 2 + 3 + 5 + 1024 + max_int) (Telemetry.histogram_sum h);
      check_int "bucket 0 catches v <= 1" 2 (Telemetry.histogram_bucket h 0);
      check_int "bucket 1 is [2,4)" 2 (Telemetry.histogram_bucket h 1);
      check_int "bucket 2 is [4,8)" 1 (Telemetry.histogram_bucket h 2);
      check_int "bucket 10 is [1024,2048)" 1 (Telemetry.histogram_bucket h 10);
      check_int "max_int clamps into the last bucket" 1
        (Telemetry.histogram_bucket h (Telemetry.histogram_buckets - 1)))

let test_span_accumulation_and_nesting () =
  guarded (fun () ->
      let outer = Telemetry.span "test.span.outer" in
      let inner = Telemetry.span "test.span.inner" in
      Telemetry.reset ();
      Telemetry.set_enabled true;
      let spin () = ignore (Sys.opaque_identity (Hashtbl.hash "spin")) in
      for _ = 1 to 3 do
        let t0 = Telemetry.start () in
        let t1 = Telemetry.start () in
        spin ();
        Telemetry.stop inner t1;
        Telemetry.stop outer t0
      done;
      check_int "outer calls" 3 (Telemetry.span_count outer);
      check_int "inner calls" 3 (Telemetry.span_count inner);
      check_true "spans accumulate time" (Telemetry.span_ns outer > 0);
      (* the monotonic clock makes the enclosing span at least as long *)
      check_true "nesting: outer >= inner"
        (Telemetry.span_ns outer >= Telemetry.span_ns inner);
      let r = Telemetry.with_span outer (fun () -> 41 + 1) in
      check_int "with_span returns the result" 42 r;
      check_int "with_span counts a call" 4 (Telemetry.span_count outer))

let test_disabled_mode_stays_zero () =
  guarded (fun () ->
      let c = Telemetry.counter "test.off.counter" in
      let g = Telemetry.gauge "test.off.gauge" in
      let sp = Telemetry.span "test.off.span" in
      let h = Telemetry.histogram "test.off.hist" in
      Telemetry.reset ();
      check_false "disabled by default in tests" (Telemetry.enabled ());
      for _ = 1 to 100 do
        Telemetry.incr c;
        Telemetry.add c 5;
        Telemetry.set_gauge g 9;
        let t0 = Telemetry.start () in
        Telemetry.stop sp t0;
        ignore (Telemetry.with_span sp (fun () -> ()));
        Telemetry.observe h 17
      done;
      check_int "counter untouched" 0 (Telemetry.counter_value c);
      check_int "gauge untouched" 0 (Telemetry.gauge_value g);
      check_int "span ns untouched" 0 (Telemetry.span_ns sp);
      check_int "span calls untouched" 0 (Telemetry.span_count sp);
      check_int "histogram untouched" 0 (Telemetry.histogram_count h);
      (* a timestamp taken while disabled must not record after enabling *)
      let t0 = Telemetry.start () in
      Telemetry.set_enabled true;
      Telemetry.stop sp t0;
      check_int "disabled-start span discarded" 0 (Telemetry.span_count sp))

let test_reset_between_runs () =
  guarded (fun () ->
      let c = Telemetry.counter "test.reset.counter" in
      let sp = Telemetry.span "test.reset.span" in
      Telemetry.set_enabled true;
      Telemetry.add c 10;
      let t0 = Telemetry.start () in
      Telemetry.stop sp t0;
      check_true "populated before reset" (Telemetry.counter_value c > 0);
      Telemetry.reset ();
      check_int "counter zeroed" 0 (Telemetry.counter_value c);
      check_int "span ns zeroed" 0 (Telemetry.span_ns sp);
      check_int "span calls zeroed" 0 (Telemetry.span_count sp);
      Telemetry.incr c;
      check_int "registration survives reset" 1 (Telemetry.counter_value c))

let test_concurrent_increments_lose_nothing () =
  guarded (fun () ->
      let c = Telemetry.counter "test.concurrent.counter" in
      let h = Telemetry.histogram "test.concurrent.hist" in
      Telemetry.reset ();
      Telemetry.set_enabled true;
      let n = 50_000 in
      Pool.with_pool ~jobs:4 (fun pool ->
          Pool.parallel_for ~chunk:64 pool ~n
            ~init:(fun () -> ())
            (fun () i ->
              Telemetry.incr c;
              Telemetry.observe h (i land 7)));
      check_int "no lost counter increments" n (Telemetry.counter_value c);
      check_int "no lost histogram observations" n (Telemetry.histogram_count h))

let test_rows_and_json () =
  guarded (fun () ->
      let c = Telemetry.counter "test.rows.counter" in
      let sp = Telemetry.span "test.rows.span" in
      Telemetry.reset ();
      Telemetry.set_enabled true;
      Telemetry.add c 5;
      Telemetry.stop sp 1;
      let rows = Telemetry.rows () in
      let find name = List.find_opt (fun r -> r.Telemetry.name = name) rows in
      (match find "test.rows.counter" with
      | Some r ->
        check_int "counter row value" 5 r.Telemetry.value;
        Alcotest.(check string) "counter row kind" "counter" r.Telemetry.kind
      | None -> Alcotest.fail "counter row missing");
      check_true "span emits .ns and .calls rows"
        (find "test.rows.span.ns" <> None && find "test.rows.span.calls" <> None);
      let sorted = List.map (fun r -> r.Telemetry.name) rows in
      check_true "rows sorted by name" (List.sort compare sorted = sorted);
      let path = Filename.temp_file "bncg_stats" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Telemetry.write_json path;
          let ic = open_in path in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          check_true "json is a non-empty array"
            (String.length s > 2 && s.[0] = '[');
          check_true "json mentions the counter"
            (let re = "test.rows.counter" in
             let rec contains i =
               i + String.length re <= String.length s
               && (String.sub s i (String.length re) = re || contains (i + 1))
             in
             contains 0)))

let suite =
  [
    case "counter semantics" test_counter_semantics;
    case "gauge semantics" test_gauge_semantics;
    case "kind collision rejected" test_kind_collision_rejected;
    case "histogram semantics" test_histogram_semantics;
    case "span accumulation and nesting" test_span_accumulation_and_nesting;
    case "disabled mode leaves metrics at zero" test_disabled_mode_stays_zero;
    case "reset between runs" test_reset_between_runs;
    case "concurrent increments lose no counts" test_concurrent_increments_lose_nothing;
    case "rows and json output" test_rows_and_json;
  ]
