open Test_helpers

(* The dispatcher's contract is byte-identity with the sequential
   census, so every test renders results through the canonical wire
   JSON and compares strings — counts, histogram, representative
   order, everything. Failure injection goes through [Custom] workers
   (no sockets) except the stub-server tests, which misbehave at the
   protocol level to exercise the [Remote] path. *)

let check_str = Alcotest.(check string)

let render r = Jsonx.to_string (Rpc.census_result r)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let ok_worker name = Dispatch.Custom (name, fun s -> Ok (Census.run_shard s))

(* sleeps before answering: a straggler that still answers correctly *)
let slow_worker name delay =
  Dispatch.Custom
    ( name,
      fun s ->
        Thread.delay delay;
        Ok (Census.run_shard s) )

let tree_shard = Census.full_shard Census.Trees Game.Sum 5

let graph_shard = Census.full_shard Census.Graphs Game.Max 4

let base =
  { Dispatch.default_config with Dispatch.parts = 6; backoff = 0.001 }

let run_ok cfg shard =
  match Dispatch.run cfg shard with
  | Ok (r, st) -> (r, st)
  | Error msg -> Alcotest.failf "Dispatch.run failed: %s" msg

let temp tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "bncg-test-dispatch-%s-%d" tag (Unix.getpid ()))

(* --- happy paths ----------------------------------------------------------- *)

let test_healthy_fleet () =
  let expected = render (Census.run_shard tree_shard) in
  let cfg = { base with Dispatch.workers = [ ok_worker "a"; ok_worker "b" ] } in
  let r, st = run_ok cfg tree_shard in
  check_str "identical to sequential" expected (render r);
  check_int "shards" 6 st.Dispatch.shards;
  check_int "dispatched once each" st.Dispatch.shards st.Dispatch.dispatched;
  check_int "nothing retried" 0 st.Dispatch.retried;
  check_int "nothing recovered" 0 st.Dispatch.recovered;
  check_int "no journal" 0 st.Dispatch.journal_hits;
  check_true "nobody blacklisted" (st.Dispatch.blacklisted = [])

let test_default_parts () =
  (* parts = 0 means 4x the fleet size *)
  let cfg =
    { base with Dispatch.workers = [ ok_worker "a"; ok_worker "b" ]; parts = 0 }
  in
  let _, st = run_ok cfg graph_shard in
  check_int "4 * workers shards" 8 st.Dispatch.shards

let test_local_worker () =
  (* the domain-spawning path *)
  let expected = render (Census.run_shard graph_shard) in
  let cfg = { base with Dispatch.workers = [ Dispatch.Local "local-0" ] } in
  let r, _ = run_ok cfg graph_shard in
  check_str "identical to sequential" expected (render r)

let test_empty_range () =
  let empty = { tree_shard with Census.lo = 7; hi = 7 } in
  let cfg = { base with Dispatch.workers = [ ok_worker "a" ] } in
  let r, st = run_ok cfg empty in
  check_int "one empty shard" 1 st.Dispatch.shards;
  check_str "identical to sequential" (render (Census.run_shard empty)) (render r)

let test_slow_worker_merge_order () =
  (* completion order differs from rank order; the merge must not *)
  let expected = render (Census.run_shard tree_shard) in
  let cfg =
    { base with Dispatch.workers = [ slow_worker "slow" 0.002; ok_worker "fast" ] }
  in
  let r, st = run_ok cfg tree_shard in
  check_str "identical to sequential" expected (render r);
  check_int "nothing retried" 0 st.Dispatch.retried

(* --- failure injection ----------------------------------------------------- *)

let test_flaky_worker_recovers () =
  let expected = render (Census.run_shard tree_shard) in
  let calls = ref 0 in
  let flaky s =
    incr calls;
    if !calls <= 2 then Error "injected fault" else Ok (Census.run_shard s)
  in
  (* the good worker is slowed so the instantly-failing flaky worker
     deterministically gets both injected faults in before the queue
     drains *)
  let cfg =
    {
      base with
      Dispatch.workers = [ Dispatch.Custom ("flaky", flaky); slow_worker "good" 0.003 ];
    }
  in
  let r, st = run_ok cfg tree_shard in
  check_str "identical to sequential" expected (render r);
  check_true "failures retried" (st.Dispatch.retried >= 2);
  check_true "failed shards recovered" (st.Dispatch.recovered >= 1)

let test_raising_worker_is_caught () =
  (* a lone worker whose first call raises: the exception becomes a
     retry, the requeued shard completes on the same worker *)
  let expected = render (Census.run_shard graph_shard) in
  let calls = ref 0 in
  let raising s =
    incr calls;
    if !calls = 1 then failwith "boom" else Ok (Census.run_shard s)
  in
  let cfg = { base with Dispatch.workers = [ Dispatch.Custom ("raising", raising) ] } in
  let r, st = run_ok cfg graph_shard in
  check_str "identical to sequential" expected (render r);
  check_true "the raise was retried" (st.Dispatch.retried >= 1);
  check_true "its shard recovered" (st.Dispatch.recovered >= 1)

let test_attempts_exhausted () =
  let cfg =
    {
      base with
      Dispatch.workers = [ Dispatch.Custom ("broken", fun _ -> Error "no") ];
      max_attempts = 2;
      blacklist_after = 100;
    }
  in
  match Dispatch.run cfg graph_shard with
  | Ok _ -> Alcotest.fail "a permanently failing fleet must not succeed"
  | Error msg -> check_true "mentions the budget" (contains msg "failed 2 times")

let test_all_workers_blacklisted () =
  let bad name = Dispatch.Custom (name, fun _ -> Error "no") in
  let cfg =
    {
      base with
      Dispatch.workers = [ bad "bad1"; bad "bad2" ];
      max_attempts = 100;
      blacklist_after = 1;
    }
  in
  match Dispatch.run cfg graph_shard with
  | Ok _ -> Alcotest.fail "an all-bad fleet must not succeed"
  | Error msg ->
    check_true "mentions the blacklist" (contains msg "all 2 workers blacklisted")

let test_bad_worker_blacklisted_good_completes () =
  let expected = render (Census.run_shard graph_shard) in
  (* the good worker is slowed so the instant-failing bad worker
     deterministically burns through its streak budget first *)
  let cfg =
    {
      base with
      Dispatch.workers =
        [ Dispatch.Custom ("bad", fun _ -> Error "no"); slow_worker "good" 0.005 ];
      max_attempts = 100;
      blacklist_after = 2;
    }
  in
  let r, st = run_ok cfg graph_shard in
  check_str "identical to sequential" expected (render r);
  Alcotest.(check (list string)) "bad retired" [ "bad" ] st.Dispatch.blacklisted;
  check_true "its failures recovered" (st.Dispatch.recovered >= 1)

(* --- config and shard validation ------------------------------------------- *)

let test_validation () =
  let is_error = function Error _ -> true | Ok _ -> false in
  check_true "no workers" (is_error (Dispatch.run base tree_shard));
  let one = { base with Dispatch.workers = [ ok_worker "a" ] } in
  check_true "max_attempts < 1"
    (is_error (Dispatch.run { one with Dispatch.max_attempts = 0 } tree_shard));
  check_true "blacklist_after < 1"
    (is_error (Dispatch.run { one with Dispatch.blacklist_after = 0 } tree_shard));
  check_true "invalid shard bounds"
    (is_error (Dispatch.run one { tree_shard with Census.lo = 50; hi = 10 }))

(* --- journal --------------------------------------------------------------- *)

let journal_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_journal_crash_resume () =
  let journal = temp "journal.log" in
  (try Sys.remove journal with Sys_error _ -> ());
  Fun.protect ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
  @@ fun () ->
  let expected = render (Census.run_shard graph_shard) in
  (* crash: a lone worker completes two shards then dies for good *)
  let calls = ref 0 in
  let dying s =
    incr calls;
    if !calls <= 2 then Ok (Census.run_shard s) else Error "worker died"
  in
  let crash_cfg =
    {
      base with
      Dispatch.workers = [ Dispatch.Custom ("dying", dying) ];
      max_attempts = 2;
      journal = Some journal;
    }
  in
  (match Dispatch.run crash_cfg graph_shard with
  | Ok _ -> Alcotest.fail "the dying fleet must fail the run"
  | Error _ -> ());
  check_int "journal = header + 2 shards" 3 (List.length (journal_lines journal));
  (* resume on a healthy fleet: only the missing shards are recomputed *)
  let cfg =
    { base with Dispatch.workers = [ ok_worker "a" ]; journal = Some journal }
  in
  let r, st = run_ok cfg graph_shard in
  check_str "resumed result identical" expected (render r);
  check_int "journaled shards replayed" 2 st.Dispatch.journal_hits;
  check_int "only the rest dispatched" (st.Dispatch.shards - 2) st.Dispatch.dispatched;
  (* a second resume over the complete journal computes nothing *)
  let r2, st2 = run_ok cfg graph_shard in
  check_str "second resume identical" expected (render r2);
  check_int "zero dispatched" 0 st2.Dispatch.dispatched;
  check_int "all shards from journal" st2.Dispatch.shards st2.Dispatch.journal_hits;
  (* an unparseable trailing line (torn write) is skipped, not fatal *)
  let oc = open_out_gen [ Open_append ] 0o644 journal in
  output_string oc "{\"lo\": 12, \"hi\"";
  close_out oc;
  let r3, st3 = run_ok cfg graph_shard in
  check_str "torn tail ignored" expected (render r3);
  check_int "still all from journal" st3.Dispatch.shards st3.Dispatch.journal_hits;
  (* a journal from different shard boundaries must be refused *)
  match
    Dispatch.run { cfg with Dispatch.parts = 3 } graph_shard
  with
  | Ok _ -> Alcotest.fail "mismatched journal header must be refused"
  | Error msg ->
    check_true "mentions the mismatch" (contains msg "different run")

(* --- remote workers -------------------------------------------------------- *)

let serve_config sock =
  {
    Serve.default_config with
    Serve.addresses = [ Serve.Unix_sock sock ];
    jobs = 2;
  }

let test_client_e2e () =
  let sock = temp "client.sock" in
  let srv = Serve.start (serve_config sock) in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  check_true "connect to a dead address fails"
    (match Client.connect (Serve.Unix_sock (temp "nowhere.sock")) with
    | Error _ -> true
    | Ok c ->
      Client.close c;
      false);
  match Client.connect (Serve.Unix_sock sock) with
  | Error msg -> Alcotest.failf "connect: %s" msg
  | Ok c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    check_true "ping" (Client.ping c = Ok ());
    (match Client.protocol_version c with
    | Ok v -> check_int "protocol version" Rpc.protocol_version v
    | Error msg -> Alcotest.failf "protocol_version: %s" msg);
    let sub = { tree_shard with Census.lo = 10; hi = 60 } in
    (match Client.census_shard c sub with
    | Ok r ->
      check_str "remote shard decodes identical" (render (Census.run_shard sub))
        (render r)
    | Error msg -> Alcotest.failf "census_shard: %s" msg)

let test_remote_dispatch () =
  let sock = temp "remote.sock" in
  let srv = Serve.start (serve_config sock) in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  let expected = render (Census.run_shard tree_shard) in
  let addr = Serve.Unix_sock sock in
  let cfg =
    { base with Dispatch.workers = [ Dispatch.Remote addr; Dispatch.Remote addr ] }
  in
  let r, st = run_ok cfg tree_shard in
  check_str "identical to sequential" expected (render r);
  check_int "nothing retried" 0 st.Dispatch.retried

(* A stub endpoint misbehaving at the protocol level: accepts real
   connections, then either answers garbage or goes silent until the
   client hangs up — malformed replies and straggler timeouts on the
   [Remote] path without a real serve process.

   [f] receives the stub's address and a [wait_request] function that
   blocks until the stub has read at least one request line. The tests
   below pair the stub with a healthy [Custom] worker that calls
   [wait_request] before computing: without the handshake the healthy
   worker can drain the whole queue before the stub's first dispatch is
   even in flight, and the [retried >= 1] assertions race (the straggler
   test failed about one run in six on wall-clock luck alone). *)
let with_stub_server tag behavior f =
  let path = temp (tag ^ ".sock") in
  (try Sys.remove path with Sys_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 8;
  let stop = Atomic.make false in
  let seen = ref 0 in
  let seen_mutex = Mutex.create () in
  let seen_cond = Condition.create () in
  let note_request () =
    Mutex.lock seen_mutex;
    incr seen;
    Condition.broadcast seen_cond;
    Mutex.unlock seen_mutex
  in
  let wait_request () =
    Mutex.lock seen_mutex;
    while !seen = 0 do
      Condition.wait seen_cond seen_mutex
    done;
    Mutex.unlock seen_mutex
  in
  let server =
    Thread.create
      (fun () ->
        let rec loop () =
          match Unix.accept listener with
          | exception _ -> ()
          | fd, _ ->
            (try
               let ic = Unix.in_channel_of_descr fd in
               match behavior with
               | `Garbage ->
                 ignore (input_line ic);
                 note_request ();
                 let oc = Unix.out_channel_of_descr fd in
                 output_string oc "these are not the bytes you are looking for\n";
                 flush oc
               | `Stall ->
                 (* read the request, answer nothing; the second read
                    blocks until the timed-out client closes the stream *)
                 ignore (input_line ic);
                 note_request ();
                 ignore (input_line ic)
             with _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if Atomic.get stop then () else loop ()
        in
        loop ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      (* wake the blocked accept with a throwaway connection *)
      (try
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         (try Unix.connect fd (Unix.ADDR_UNIX path)
          with Unix.Unix_error _ -> ());
         Unix.close fd
       with Unix.Unix_error _ -> ());
      Thread.join server;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Serve.Unix_sock path) wait_request)

(* a healthy worker that lets the stub receive a dispatch before it
   computes anything, so the misbehaving remote deterministically has a
   shard in flight to retry *)
let polite_worker name wait_request =
  Dispatch.Custom
    ( name,
      fun s ->
        wait_request ();
        Ok (Census.run_shard s) )

let test_malformed_replies_requeue () =
  with_stub_server "garbage" `Garbage @@ fun addr wait_request ->
  let expected = render (Census.run_shard graph_shard) in
  let cfg =
    {
      base with
      Dispatch.workers = [ Dispatch.Remote addr; polite_worker "good" wait_request ];
      timeout = 5.0;
    }
  in
  let r, st = run_ok cfg graph_shard in
  check_str "identical to sequential" expected (render r);
  check_true "malformed replies retried" (st.Dispatch.retried >= 1);
  check_true "their shards recovered" (st.Dispatch.recovered >= 1)

let test_straggler_reclaimed_by_timeout () =
  with_stub_server "stall" `Stall @@ fun addr wait_request ->
  let expected = render (Census.run_shard graph_shard) in
  let cfg =
    {
      base with
      Dispatch.workers = [ Dispatch.Remote addr; polite_worker "good" wait_request ];
      timeout = 0.2;
    }
  in
  let r, st = run_ok cfg graph_shard in
  check_str "identical to sequential" expected (render r);
  check_true "timed-out shards retried" (st.Dispatch.retried >= 1);
  check_true "timed-out shards recovered" (st.Dispatch.recovered >= 1)

let suite =
  [
    case "healthy fleet equals sequential" test_healthy_fleet;
    case "parts default to 4x workers" test_default_parts;
    case "local worker (domain path)" test_local_worker;
    case "empty rank range" test_empty_range;
    case "slow worker: merge order is rank order" test_slow_worker_merge_order;
    case "flaky worker retries and recovers" test_flaky_worker_recovers;
    case "raising worker is caught and retried" test_raising_worker_is_caught;
    case "per-shard attempt budget is fatal" test_attempts_exhausted;
    case "all workers blacklisted is fatal" test_all_workers_blacklisted;
    case "bad worker blacklisted, good completes" test_bad_worker_blacklisted_good_completes;
    case "config and shard validation" test_validation;
    case "journal: crash, resume, torn tail, mismatch" test_journal_crash_resume;
    case "client e2e against a live server" test_client_e2e;
    case "remote dispatch against a live server" test_remote_dispatch;
    case "malformed remote replies requeue" test_malformed_replies_requeue;
    case "straggler reclaimed by timeout" test_straggler_reclaimed_by_timeout;
  ]
