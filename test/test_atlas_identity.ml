(* Differential battery for the equilibrium atlas: the atlas must be
   invisible in output bytes. Each case runs the same seeded workload
   three ways — atlas off, cold atlas (fresh directory), warm atlas
   (the populated directory reopened) — and compares outputs byte for
   byte, then asserts the warm pass actually hit the atlas so the
   equality is not vacuous. *)

open Test_helpers

let check_str = Alcotest.(check string)
let with_dir = Test_atlas.with_dir
let open_exn = Test_atlas.open_exn

(* ---------- census ---------- *)

let render r = Jsonx.to_string (Rpc.census_result r)

let census_pass dir shard =
  let a = open_exn dir in
  Fun.protect ~finally:(fun () -> Atlas.close a) @@ fun () ->
  let r = render (Census.run_shard ~atlas:a shard) in
  Atlas.flush a;
  (r, Atlas.stats a)

let census_identity version n () =
  with_dir "census-ident" @@ fun dir ->
  let shard = Census.full_shard Census.Graphs version n in
  let plain = render (Census.run_shard shard) in
  let cold, cold_stats = census_pass dir shard in
  let warm, warm_stats = census_pass dir shard in
  check_str "cold identical to plain" plain cold;
  check_str "warm identical to plain" plain warm;
  check_true "cold pass appended" (cold_stats.Atlas.appended > 0);
  check_true "warm pass hit the atlas" (warm_stats.Atlas.hits > 0);
  check_int "warm pass appended nothing" 0 warm_stats.Atlas.appended

let test_census_identity_sum = census_identity Game.Sum 5
let test_census_identity_max = census_identity Game.Max 5

let test_tree_census_ignores_atlas () =
  (* trees classify in closed form, cheaper than an atlas probe: the
     shard must neither consult nor populate the store *)
  with_dir "census-trees" @@ fun dir ->
  let shard = Census.full_shard Census.Trees Game.Sum 6 in
  let plain = render (Census.run_shard shard) in
  let with_atlas, stats = census_pass dir shard in
  check_str "identical to plain" plain with_atlas;
  check_int "no probes" 0 (stats.Atlas.hits + stats.Atlas.misses);
  check_int "no appends" 0 stats.Atlas.appended

(* ---------- serve ---------- *)

let temp_sock =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bncg-atlas-ident-%d-%d.sock" (Unix.getpid ()) !counter)

(* the star on 9 vertices with its center relabeled to [c]: distinct
   graph6 text per center, one isomorphism class — exercises the
   canonical-form atlas keys, not just the exact-text ones *)
let star9_centered c =
  let g = Graph.create 9 in
  for v = 0 to 8 do
    if v <> c then Graph.add_edge g c v
  done;
  g

let check_request ~id game g =
  Printf.sprintf "{\"id\":%d,\"method\":\"check\",\"params\":{\"game\":%S,\"graph6\":%s}}"
    id game
    (Jsonx.to_string (Jsonx.Str (Graph6.encode g)))

let info_request ~id g =
  Printf.sprintf "{\"id\":%d,\"method\":\"info\",\"params\":{\"graph6\":%s}}" id
    (Jsonx.to_string (Jsonx.Str (Graph6.encode g)))

(* equilibria under relabeling (stars), violations (path, torus) and
   info traffic: invariant and exact-only atlas keys both in play *)
let workload =
  let graphs =
    List.init 4 star9_centered
    @ [ Constructions.torus 3; Generators.path 8; Generators.cycle 5 ]
  in
  List.concat
    (List.mapi
       (fun i g ->
         [
           check_request ~id:(3 * i) "sum" g;
           check_request ~id:((3 * i) + 1) "max" g;
           info_request ~id:((3 * i) + 2) g;
         ])
       graphs)

let atlas_hits_of stats_reply =
  match Jsonx.parse stats_reply with
  | Error _ -> -1
  | Ok r ->
    Option.value ~default:0
      (Option.bind
         (Option.bind
            (Option.bind (Jsonx.member "result" r) (Jsonx.member "atlas"))
            (Jsonx.member "hits"))
         Jsonx.to_int)

(* one fresh server per pass: the LRU starts empty every time, so any
   warm-pass speedup or hit must come from the atlas alone *)
let serve_pass atlas_dir =
  let sock = temp_sock () in
  let cfg =
    {
      Serve.default_config with
      Serve.addresses = [ Serve.Unix_sock sock ];
      jobs = 2;
      atlas_dir;
    }
  in
  let srv = Serve.start cfg in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  Serve.with_client (Serve.Unix_sock sock) @@ fun c ->
  let replies = List.map (Serve.call c) workload in
  let hits = atlas_hits_of (Serve.call c "{\"method\":\"stats\"}") in
  (String.concat "\n" replies, hits)

let test_serve_identity () =
  with_dir "serve-ident" @@ fun dir ->
  let off, off_hits = serve_pass None in
  let cold, _ = serve_pass (Some dir) in
  let warm, warm_hits = serve_pass (Some dir) in
  check_int "no atlas means no atlas stats" 0 off_hits;
  check_str "cold pass byte-identical to atlas off" off cold;
  check_str "warm pass byte-identical to atlas off" off warm;
  check_true "warm pass hit the atlas" (warm_hits > 0)

let suite =
  [
    case "census sum n=5: off = cold = warm" test_census_identity_sum;
    case "census max n=5: off = cold = warm" test_census_identity_max;
    case "tree census ignores the atlas" test_tree_census_ignores_atlas;
    case "serve responses: off = cold = warm" test_serve_identity;
  ]
