open Test_helpers

let test_star_is_fixed_point () =
  let g = Generators.star 8 in
  let r = Dynamics.converge_sum g in
  check_true "converged" (r.Dynamics.outcome = Dynamics.Converged);
  check_int "no moves" 0 r.Dynamics.moves;
  check_true "unchanged" (Graph.equal g r.Dynamics.final)

let test_input_not_mutated () =
  let g = Generators.path 8 in
  let copy = Graph.copy g in
  ignore (Dynamics.converge_sum g);
  check_true "input untouched" (Graph.equal g copy)

let test_path_converges_to_star () =
  (* Theorem 1: the only sum-equilibrium tree is the star, and swaps
     preserve edge count, so a tree must converge to a star *)
  let r = Dynamics.converge_sum (Generators.path 10) in
  check_true "converged" (r.Dynamics.outcome = Dynamics.Converged);
  check_true "still a tree" (Components.is_tree r.Dynamics.final);
  check_true "is a star" (Tree_eq.is_star r.Dynamics.final)

let test_sum_preserves_edge_count () =
  let g = Generators.cycle 9 in
  let r = Dynamics.converge_sum g in
  check_int "m preserved" (Graph.m g) (Graph.m r.Dynamics.final)

let test_max_deletions_shrink () =
  (* max dynamics may delete extraneous edges, never grows *)
  let rng = Prng.create 2 in
  let g = Random_graphs.connected_gnm rng 20 60 in
  let r = Dynamics.converge_max ~rng g in
  check_true "m non-increasing" (Graph.m r.Dynamics.final <= Graph.m g);
  check_true "still connected" (Components.is_connected r.Dynamics.final)

let test_converged_is_equilibrium () =
  let rng = Prng.create 3 in
  for seed = 1 to 5 do
    let rng2 = Prng.create seed in
    let g = Random_graphs.connected_gnm rng2 15 30 in
    let r = Dynamics.run ~rng (Dynamics.default_config Game.Sum) g in
    if r.Dynamics.outcome = Dynamics.Converged then
      check_true "verified equilibrium" (Equilibrium.is_sum_equilibrium r.Dynamics.final);
    let rm = Dynamics.run ~rng (Dynamics.default_config Game.Max) g in
    if rm.Dynamics.outcome = Dynamics.Converged then
      check_true "verified max equilibrium" (Equilibrium.is_max_equilibrium rm.Dynamics.final)
  done

let test_rules_all_converge () =
  List.iter
    (fun rule ->
      let cfg = { (Dynamics.default_config Game.Sum) with Dynamics.rule } in
      let rng = Prng.create 7 in
      let r = Dynamics.run ~rng cfg (Generators.path 12) in
      check_true "converged" (r.Dynamics.outcome = Dynamics.Converged);
      check_true "equilibrium" (Equilibrium.is_sum_equilibrium r.Dynamics.final))
    [ Dynamics.Best_response; Dynamics.First_improving; Dynamics.Random_improving ]

let test_schedules_all_converge () =
  List.iter
    (fun schedule ->
      let cfg = { (Dynamics.default_config Game.Sum) with Dynamics.schedule } in
      let rng = Prng.create 8 in
      let r = Dynamics.run ~rng cfg (Generators.cycle 11) in
      check_true "converged" (r.Dynamics.outcome = Dynamics.Converged);
      check_true "equilibrium" (Equilibrium.is_sum_equilibrium r.Dynamics.final))
    [ Dynamics.Round_robin; Dynamics.Random_agent ]

let test_sampled_rule_converges () =
  (* bounded agents with a tiny budget still reach a true equilibrium *)
  let cfg =
    {
      (Dynamics.default_config Game.Sum) with
      Dynamics.rule = Dynamics.Sampled 2;
      max_rounds = 500;
    }
  in
  let rng = Prng.create 9 in
  let r = Dynamics.run ~rng cfg (Generators.path 12) in
  check_true "converged" (r.Dynamics.outcome = Dynamics.Converged);
  check_true "verified equilibrium" (Equilibrium.is_sum_equilibrium r.Dynamics.final)

let test_sampled_convergence_is_certified () =
  (* Converged under Sampled means a FULL scan found nothing, not just a
     quiet sampling pass *)
  let cfg =
    {
      (Dynamics.default_config Game.Sum) with
      Dynamics.rule = Dynamics.Sampled 1;
      max_rounds = 1000;
    }
  in
  for seed = 1 to 5 do
    let rng = Prng.create seed in
    let g = Random_graphs.connected_gnm rng 12 20 in
    let r = Dynamics.run ~rng cfg g in
    if r.Dynamics.outcome = Dynamics.Converged then
      check_true "certified" (Equilibrium.is_sum_equilibrium r.Dynamics.final)
  done

let test_trace_recording () =
  let cfg =
    { (Dynamics.default_config Game.Sum) with Dynamics.record_trace = true }
  in
  let r = Dynamics.run cfg (Generators.path 8) in
  check_int "trace length = moves" r.Dynamics.moves (List.length r.Dynamics.trace);
  check_true "moves happened" (r.Dynamics.moves > 0);
  (* indices are chronological and deltas are improving *)
  List.iteri
    (fun i step ->
      check_int "index" i step.Dynamics.index;
      check_true "improving move" (step.Dynamics.delta < 0);
      check_true "social recorded" (step.Dynamics.social > 0))
    r.Dynamics.trace

let test_round_limit () =
  let cfg = { (Dynamics.default_config Game.Sum) with Dynamics.max_rounds = 0 } in
  let r = Dynamics.run cfg (Generators.path 6) in
  check_true "hits limit" (r.Dynamics.outcome = Dynamics.Round_limit);
  check_int "no rounds" 0 r.Dynamics.rounds

let test_disconnected_rejected () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Dynamics.run: input must be connected") (fun () ->
      ignore (Dynamics.converge_sum (Graph.create 3)))

let test_max_reaches_deletion_critical =
  qcheck ~count:15 "converged max dynamics is deletion-critical"
    (gen_connected ~min_n:5 ~max_n:12) (fun g ->
      let r = Dynamics.converge_max g in
      r.Dynamics.outcome <> Dynamics.Converged
      || Equilibrium.is_deletion_critical r.Dynamics.final)

let test_social_cost_finite_throughout =
  qcheck ~count:15 "dynamics never disconnects the graph"
    (gen_connected ~min_n:4 ~max_n:12) (fun g ->
      let r = Dynamics.converge_sum g in
      Components.is_connected r.Dynamics.final)

let suite =
  [
    case "star is a fixed point" test_star_is_fixed_point;
    case "input not mutated" test_input_not_mutated;
    case "trees converge to stars" test_path_converges_to_star;
    case "sum preserves edge count" test_sum_preserves_edge_count;
    case "max deletions shrink" test_max_deletions_shrink;
    case "converged => verified equilibrium" test_converged_is_equilibrium;
    case "all rules converge" test_rules_all_converge;
    case "all schedules converge" test_schedules_all_converge;
    case "sampled rule converges" test_sampled_rule_converges;
    case "sampled convergence certified" test_sampled_convergence_is_certified;
    case "trace recording" test_trace_recording;
    case "round limit" test_round_limit;
    case "disconnected rejected" test_disconnected_rejected;
    test_max_reaches_deletion_critical;
    test_social_cost_finite_throughout;
  ]
