open Test_helpers

(* Ground truth: connected graphs by vertex count, up to isomorphism
   (OEIS A001349) and labeled (A001187). *)
let classes = [| 1; 1; 1; 2; 6; 21; 112; 853; 11117 |]

let labeled = [| 1; 1; 1; 4; 38; 728; 26704; 1866256; 251548592 |]

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let test_counts_small () =
  for n = 1 to 7 do
    check_int "count = A001349" classes.(n) (Orderly.count n)
  done

let test_counts_n8 () = check_int "count n=8" classes.(8) (Orderly.count 8)

(* The defining property: every isomorphism class of connected graphs is
   emitted exactly once. Cross-checked against an independent brute
   force — Canon-dedup over the full rank-range enumeration. *)
let exactly_once n =
  let brute = Hashtbl.create 1024 in
  Enumerate.connected_graphs n (fun g ->
      Hashtbl.replace brute (Canon.canonical_form g) ());
  let emitted = Hashtbl.create 1024 in
  Orderly.iter n (fun g cert ->
      check_bool "cert.form = canonical_form g" true
        (String.equal cert.Canon.form (Canon.canonical_form g));
      check_false "no class emitted twice" (Hashtbl.mem emitted cert.Canon.form);
      Hashtbl.replace emitted cert.Canon.form ();
      check_true "emitted class exists in brute force"
        (Hashtbl.mem brute cert.Canon.form));
  check_int "every brute-force class emitted" (Hashtbl.length brute)
    (Hashtbl.length emitted)

let test_exactly_once_small () =
  for n = 1 to 6 do
    exactly_once n
  done

let test_exactly_once_n7 () = exactly_once 7

(* Orbit–stabilizer: summing n!/|Aut| over the generated classes must
   recover the labeled count, a global check that every certificate's
   automorphism count is exact. *)
let labeled_count n =
  let sum = ref 0 in
  Orderly.iter n (fun _ cert -> sum := !sum + (factorial n / cert.Canon.aut_count));
  !sum

let test_labeled_counts_small () =
  for n = 1 to 7 do
    check_int "sum n!/|Aut| = A001187" labeled.(n) (labeled_count n)
  done

let test_labeled_counts_n8 () = check_int "labeled n=8" labeled.(8) (labeled_count 8)

(* Sharding: adjacent ranges concatenated in ascending order reproduce
   the full emission sequence, for every cut point. *)
let test_shard_concatenation () =
  let n = 7 in
  let forms lo hi =
    let acc = ref [] in
    Orderly.iter ~lo ~hi n (fun _ cert -> acc := cert.Canon.form :: !acc);
    List.rev !acc
  in
  let space = Orderly.space n in
  let full = forms 0 space in
  check_int "full emission count" classes.(n) (List.length full);
  List.iter
    (fun mid -> check_true "split at mid reproduces full" (forms 0 mid @ forms mid space = full))
    [ 0; 1; space / 3; space / 2; space - 1; space ]

let test_rejects_out_of_range () =
  Alcotest.check_raises "n too large" (Invalid_argument "Orderly.iter")
    (fun () -> Orderly.iter (Orderly.max_vertices + 1) (fun _ _ -> ()));
  Alcotest.check_raises "bad range" (Invalid_argument "Orderly.iter")
    (fun () -> Orderly.iter ~lo:2 ~hi:1 5 (fun _ _ -> ()))

(* Certificate sanity over random connected graphs: the permutation is a
   bijection mapping the graph onto its canonical copy, |Aut| divides n!,
   and each position's orbit mask contains the vertex the optimal
   labeling places there. *)
let cert_sane g =
  let n = Graph.n g in
  let cert = Canon.cert g in
  let seen = Array.make n false in
  Array.iter (fun v -> seen.(v) <- true) cert.Canon.perm;
  Array.for_all Fun.id seen
  && String.equal cert.Canon.form (Canon.canonical_form g)
  && cert.Canon.aut_count >= 1
  && factorial n mod cert.Canon.aut_count = 0
  && Array.for_all2
       (fun mask v -> mask land (1 lsl v) <> 0)
       cert.Canon.position_vertices cert.Canon.perm
  && String.equal (Canon.canonical_form (Orderly.canonical_copy cert)) cert.Canon.form

(* The minimum-mask copy is isomorphic to its input and no labeled copy
   has a smaller column-major edge mask — the invariant that makes the
   orderly census byte-identical to the rank-range census. *)
let min_mask_sane g =
  let m = Orderly.min_mask_graph g in
  String.equal (Canon.canonical_form m) (Canon.canonical_form g)
  && Orderly.mask_of_graph m <= Orderly.mask_of_graph g

let suite =
  [
    case "class counts = A001349 (n <= 7)" test_counts_small;
    slow_case "class counts = A001349 (n = 8)" test_counts_n8;
    case "each class generated exactly once vs brute force (n <= 6)"
      test_exactly_once_small;
    slow_case "each class generated exactly once vs brute force (n = 7)"
      test_exactly_once_n7;
    case "orbit-stabilizer labeled counts = A001187 (n <= 7)"
      test_labeled_counts_small;
    slow_case "orbit-stabilizer labeled counts = A001187 (n = 8)"
      test_labeled_counts_n8;
    case "shard ranges concatenate to the full emission" test_shard_concatenation;
    case "out-of-range arguments rejected" test_rejects_out_of_range;
    qcheck ~count:60 "certificate invariants on random connected graphs"
      (gen_connected ~min_n:1 ~max_n:7)
      cert_sane;
    qcheck ~count:40 "min-mask copy is isomorphic and mask-minimal"
      (gen_connected ~min_n:1 ~max_n:6)
      min_mask_sane;
  ]
