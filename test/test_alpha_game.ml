open Test_helpers

let check_float = Alcotest.(check (float 1e-9))

let star_game ?(alpha = 2.0) n = Alpha_game.create ~alpha (Generators.star n)

let test_create_defaults () =
  let t = star_game 5 in
  check_float "alpha" 2.0 (Alpha_game.alpha t);
  check_int "n" 5 (Alpha_game.n t);
  (* default owner: smaller endpoint = the center (vertex 0) *)
  check_int "owner" 0 (Alpha_game.owner t 0 3);
  check_int "center owns all" 4 (Alpha_game.owned_degree t 0);
  check_int "leaves own none" 0 (Alpha_game.owned_degree t 1)

let test_create_custom_owner () =
  let t = Alpha_game.create ~alpha:1.0 ~owner:(fun _ v -> v) (Generators.star 4) in
  check_int "leaves own" 1 (Alpha_game.owned_degree t 2);
  check_int "center owns none" 0 (Alpha_game.owned_degree t 0)

let test_create_rejects () =
  Alcotest.check_raises "negative alpha" (Invalid_argument "Alpha_game.create: negative alpha")
    (fun () -> ignore (Alpha_game.create ~alpha:(-1.0) (Generators.star 3)));
  Alcotest.check_raises "bad owner"
    (Invalid_argument "Alpha_game.create: owner 99 of edge 0-1 is not an endpoint")
    (fun () -> ignore (Alpha_game.create ~alpha:1.0 ~owner:(fun _ _ -> 99) (Generators.star 3)))

let test_agent_cost () =
  let t = star_game ~alpha:3.0 5 in
  (* center: 3*4 owned + distances 4 *)
  check_float "center" ((3.0 *. 4.0) +. 4.0) (Alpha_game.agent_cost t 0);
  (* leaf: no owned edges, distances 1 + 3*2 = 7 *)
  check_float "leaf" 7.0 (Alpha_game.agent_cost t 1)

let test_social_cost () =
  let t = star_game ~alpha:3.0 5 in
  (* alpha*m + social sum = 12 + (2*(4 + 12)) *)
  check_float "social" (12.0 +. 32.0) (Alpha_game.social_cost t)

let test_moves_applicability () =
  let t = star_game 4 in
  check_true "leaf can buy" (Alpha_game.is_applicable t (Alpha_game.Buy { actor = 1; target = 2 }));
  check_false "cannot buy existing" (Alpha_game.is_applicable t (Alpha_game.Buy { actor = 0; target = 1 }));
  check_true "owner can sell" (Alpha_game.is_applicable t (Alpha_game.Sell { actor = 0; target = 1 }));
  check_false "non-owner cannot sell" (Alpha_game.is_applicable t (Alpha_game.Sell { actor = 1; target = 0 }));
  check_true "owner can swap"
    (Alpha_game.is_applicable t (Alpha_game.Swap_owned { actor = 0; drop = 1; add = 1 }) = false);
  check_false "swap to existing" (Alpha_game.is_applicable t (Alpha_game.Swap_owned { actor = 0; drop = 1; add = 2 }))

let test_apply_undo_roundtrip () =
  let t = star_game 5 in
  let before_g = Graph.copy (Alpha_game.graph t) in
  let mv = Alpha_game.Buy { actor = 1; target = 2 } in
  Alpha_game.apply t mv;
  check_true "edge added" (Graph.mem_edge (Alpha_game.graph t) 1 2);
  check_int "buyer owns" 1 (Alpha_game.owner t 1 2);
  Alpha_game.undo t mv;
  check_true "graph restored" (Graph.equal before_g (Alpha_game.graph t))

let test_sell_undo_restores_ownership () =
  let t = star_game 5 in
  let mv = Alpha_game.Sell { actor = 0; target = 3 } in
  Alpha_game.apply t mv;
  check_false "edge gone" (Graph.mem_edge (Alpha_game.graph t) 0 3);
  Alpha_game.undo t mv;
  check_int "ownership restored" 0 (Alpha_game.owner t 0 3)

let test_delta_buy () =
  (* leaf buying an edge to another leaf: distance gain 1, cost alpha *)
  let cheap = star_game ~alpha:0.5 5 in
  let d = Alpha_game.delta cheap (Alpha_game.Buy { actor = 1; target = 2 }) in
  check_float "cheap buy improves" (0.5 -. 1.0) d;
  let dear = star_game ~alpha:2.0 5 in
  let d2 = Alpha_game.delta dear (Alpha_game.Buy { actor = 1; target = 2 }) in
  check_float "dear buy hurts" 1.0 d2

let test_delta_disconnecting_sell () =
  let t = star_game 4 in
  let d = Alpha_game.delta t (Alpha_game.Sell { actor = 0; target = 1 }) in
  check_true "infinite" (d = infinity)

let test_best_move_respects_alpha () =
  (* with very small alpha every agent wants to buy *)
  let t = star_game ~alpha:0.01 6 in
  (match Alpha_game.best_move t 1 with
  | Some (Alpha_game.Buy _, d) -> check_true "improving" (d < 0.0)
  | _ -> Alcotest.fail "expected buy");
  (* with huge alpha the star is already locally optimal *)
  let t2 = star_game ~alpha:1000.0 6 in
  check_true "star stable at high alpha" (Alpha_game.is_local_equilibrium t2)

let test_star_equilibrium_for_alpha_ge_1 () =
  (* classic: the (center-owned) star is a Nash equilibrium for alpha >= 1 *)
  List.iter
    (fun alpha -> check_true "star stable" (Alpha_game.is_local_equilibrium (star_game ~alpha 6)))
    [ 1.0; 2.0; 10.0 ]

let test_complete_equilibrium_small_alpha () =
  (* the complete graph is an equilibrium for alpha <= 1 *)
  let t = Alpha_game.create ~alpha:0.5 (Generators.complete 5) in
  check_true "complete stable" (Alpha_game.is_local_equilibrium t)

let test_dynamics_converges () =
  let rng = Prng.create 4 in
  let t = Alpha_game.create ~alpha:3.0 (Random_graphs.tree rng 10) in
  let r = Alpha_game.run_dynamics t in
  check_true "converged" (r.Alpha_game.outcome = Alpha_game.Converged);
  check_true "local equilibrium" (Alpha_game.is_local_equilibrium r.Alpha_game.state);
  check_true "input untouched" (Components.is_tree (Alpha_game.graph t))

let test_dynamics_keeps_connectivity () =
  let rng = Prng.create 6 in
  let t = Alpha_game.create ~alpha:1.5 (Random_graphs.connected_gnm rng 12 20) in
  let r = Alpha_game.run_dynamics t in
  check_true "connected" (Components.is_connected (Alpha_game.graph r.Alpha_game.state))

let test_optimal_social_cost () =
  (* n=4: star = a*3 + 6 + 12; complete = 6a + 12; equal at a = 2 *)
  check_float "alpha=2 breakeven"
    (Alpha_game.optimal_social_cost ~alpha:2.0 4)
    ((2.0 *. 3.0) +. 6.0 +. 12.0);
  check_true "small alpha prefers complete"
    (Alpha_game.optimal_social_cost ~alpha:0.1 4 < (0.1 *. 3.0) +. 6.0 +. 12.0)

let test_poa_at_least_one =
  qcheck ~count:20 "alpha PoA >= 1 at equilibria"
    QCheck2.Gen.(pair (int_range 4 10) (int_range 0 1000)) (fun (n, seed) ->
      let rng = Prng.create seed in
      let alpha = 0.5 +. Prng.float rng 5.0 in
      let t = Alpha_game.create ~alpha (Random_graphs.tree rng n) in
      let r = Alpha_game.run_dynamics t in
      r.Alpha_game.outcome <> Alpha_game.Converged
      || Poa.alpha_poa r.Alpha_game.state >= 1.0 -. 1e-9)

let suite =
  [
    case "create defaults" test_create_defaults;
    case "custom owner" test_create_custom_owner;
    case "create rejections" test_create_rejects;
    case "agent cost" test_agent_cost;
    case "social cost" test_social_cost;
    case "move applicability" test_moves_applicability;
    case "apply/undo buy" test_apply_undo_roundtrip;
    case "sell restores ownership" test_sell_undo_restores_ownership;
    case "delta of buy" test_delta_buy;
    case "disconnecting sell infinite" test_delta_disconnecting_sell;
    case "best move vs alpha" test_best_move_respects_alpha;
    case "star equilibrium alpha >= 1" test_star_equilibrium_for_alpha_ge_1;
    case "complete equilibrium small alpha" test_complete_equilibrium_small_alpha;
    case "dynamics converges" test_dynamics_converges;
    case "dynamics keeps connectivity" test_dynamics_keeps_connectivity;
    case "optimal social cost" test_optimal_social_cost;
    test_poa_at_least_one;
  ]
