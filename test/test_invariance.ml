(* Cross-cutting invariance properties: game-theoretic predicates must be
   label-independent, dynamics must be seed-deterministic, and the two
   serialization formats must agree. *)

open Test_helpers

let relabel g perm =
  let h = Graph.create (Graph.n g) in
  Graph.iter_edges (fun u v -> Graph.add_edge h perm.(u) perm.(v)) g;
  h

let with_random_perm seed g f =
  let rng = Prng.create seed in
  let perm = Array.init (Graph.n g) (fun i -> i) in
  Prng.shuffle_in_place rng perm;
  f (relabel g perm)

let test_equilibrium_label_invariant =
  qcheck ~count:40 "sum equilibrium is label-invariant"
    QCheck2.Gen.(pair (gen_connected ~min_n:3 ~max_n:10) (int_range 0 10_000))
    (fun (g, seed) ->
      with_random_perm seed g (fun h ->
          Equilibrium.is_sum_equilibrium g = Equilibrium.is_sum_equilibrium h))

let test_max_equilibrium_label_invariant =
  qcheck ~count:40 "max equilibrium is label-invariant"
    QCheck2.Gen.(pair (gen_connected ~min_n:3 ~max_n:9) (int_range 0 10_000))
    (fun (g, seed) ->
      with_random_perm seed g (fun h ->
          Equilibrium.is_max_equilibrium g = Equilibrium.is_max_equilibrium h))

let test_diameter_label_invariant =
  qcheck ~count:40 "diameter is label-invariant"
    QCheck2.Gen.(pair (gen_any_graph ~min_n:2 ~max_n:14) (int_range 0 10_000))
    (fun (g, seed) ->
      with_random_perm seed g (fun h -> Metrics.diameter g = Metrics.diameter h))

let test_dynamics_deterministic =
  qcheck ~count:20 "dynamics is deterministic given the seed"
    QCheck2.Gen.(pair (gen_connected ~min_n:4 ~max_n:12) (int_range 0 10_000))
    (fun (g, seed) ->
      let run () =
        let rng = Prng.create seed in
        let cfg =
          {
            (Dynamics.default_config Game.Sum) with
            Dynamics.rule = Dynamics.Random_improving;
            schedule = Dynamics.Random_agent;
          }
        in
        Dynamics.run ~rng cfg g
      in
      let a = run () and b = run () in
      Graph.equal a.Dynamics.final b.Dynamics.final
      && a.Dynamics.moves = b.Dynamics.moves
      && a.Dynamics.outcome = b.Dynamics.outcome)

let test_formats_agree =
  qcheck ~count:60 "graph6 and edge-list serializations agree"
    (gen_any_graph ~min_n:0 ~max_n:20) (fun g ->
      let via_g6 = Graph6.decode (Graph6.encode g) in
      let via_el = Graph_io.of_edge_list (Graph_io.to_edge_list g) in
      Graph.equal via_g6 via_el)

let test_social_cost_label_invariant =
  qcheck ~count:40 "social cost is label-invariant"
    QCheck2.Gen.(pair (gen_connected ~min_n:2 ~max_n:12) (int_range 0 10_000))
    (fun (g, seed) ->
      with_random_perm seed g (fun h ->
          Usage_cost.social_cost Usage_cost.Sum g
          = Usage_cost.social_cost Usage_cost.Sum h))

let test_uniformity_label_invariant =
  qcheck ~count:30 "distance-uniformity profile is label-invariant"
    QCheck2.Gen.(pair (gen_connected ~min_n:3 ~max_n:12) (int_range 0 10_000))
    (fun (g, seed) ->
      with_random_perm seed g (fun h ->
          let a = Distance_uniform.best_uniform g
          and b = Distance_uniform.best_uniform h in
          a.Distance_uniform.r = b.Distance_uniform.r
          && abs_float (a.Distance_uniform.epsilon -. b.Distance_uniform.epsilon) < 1e-9))

let suite =
  [
    test_equilibrium_label_invariant;
    test_max_equilibrium_label_invariant;
    test_diameter_label_invariant;
    test_dynamics_deterministic;
    test_formats_agree;
    test_social_cost_label_invariant;
    test_uniformity_label_invariant;
  ]
