(* Helper executable for the atlas crash-injection test: appends
   deterministic records forever until SIGKILLed by the parent.

   Usage: atlas_crash_writer DIR FLUSH_AT [MAX_SEGMENT_BYTES]

   Appends key [crash:%06d] -> deterministic value for i = 0, 1, ...;
   after record FLUSH_AT is appended it flushes (fsync) and prints
   "ready" on stdout so the parent knows the prefix 0..FLUSH_AT is
   durable, then keeps appending until killed. The value formula is
   mirrored in test_atlas.ml. *)

let value_of i = Printf.sprintf "value-%06d-%s" i (String.make (i mod 40) 'x')

let () =
  let dir = Sys.argv.(1) in
  let flush_at = int_of_string Sys.argv.(2) in
  let max_segment_bytes =
    if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3)
    else 8 * 1024 * 1024
  in
  match Atlas.open_ ~max_segment_bytes dir with
  | Error m ->
      prerr_endline m;
      exit 1
  | Ok t ->
      for i = 0 to 10_000_000 do
        Atlas.add t ~key:(Printf.sprintf "crash:%06d" i) ~value:(value_of i);
        if i = flush_at then begin
          Atlas.flush t;
          print_endline "ready";
          flush stdout
        end
      done
