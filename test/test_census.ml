open Test_helpers

let test_tree_census_sum_small () =
  for n = 3 to 7 do
    let c = Census.tree_census Game.Sum n in
    check_int "total = n^(n-2)" (Enumerate.count_trees n) c.Census.total;
    check_int "equilibria are the n stars" n c.Census.equilibria;
    check_int "all stars" n c.Census.stars;
    check_int "diameter 2" 2 c.Census.max_eq_diameter;
    check_int "every non-star got a witness" (c.Census.total - n) c.Census.witnesses_verified
  done

let test_tree_census_max_small () =
  for n = 3 to 7 do
    let c = Census.tree_census Game.Max n in
    check_int "stars counted" n c.Census.stars;
    check_int "eq = stars + double stars"
      (c.Census.stars + c.Census.double_stars)
      c.Census.equilibria;
    check_true "diameter <= 3" (c.Census.max_eq_diameter <= 3)
  done;
  (* diameter 3 first attained at n = 6 (double_star 2 2) *)
  check_int "n=5 no double stars" 0 (Census.tree_census Game.Max 5).Census.double_stars;
  check_int "n=6 diameter 3" 3 (Census.tree_census Game.Max 6).Census.max_eq_diameter

let test_double_star_count_n6 () =
  (* labeled double stars with arms (2,2) on 6 vertices: choose the
     ordered root pair (30) then 3 of 4 remaining leaves for root a...
     combinatorially C(6,2)*C(4,2)/1 * ... = 15 unordered root pairs x
     C(4,2)=6 leaf splits / 2 for arm symmetry... the census says 90 *)
  check_int "n=6 double stars" 90 (Census.tree_census Game.Max 6).Census.double_stars

(* Differential cross-check of the census against an independent brute
   force: walk the whole Prüfer rank range with [trees_in] (no sharding,
   no pool) and run the generic equilibrium checker on every tree. By
   Theorem 1 the sum equilibria must be exactly the stars, and the tallies
   must agree with [tree_census]'s shortcut-based classification. *)
let brute_force_sum_census n =
  let total = ref 0 and equilibria = ref 0 and stars = ref 0 in
  Enumerate.trees_in n ~lo:0 ~hi:(Enumerate.count_trees n) (fun g ->
      Stdlib.incr total;
      let eq = Equilibrium.is_sum_equilibrium g in
      let star = Tree_eq.is_star g in
      check_bool "sum equilibrium iff star (Theorem 1)" star eq;
      if eq then Stdlib.incr equilibria;
      if star then Stdlib.incr stars);
  (!total, !equilibria, !stars)

let differential_sum_census n =
  let total, equilibria, stars = brute_force_sum_census n in
  let c = Census.tree_census Game.Sum n in
  check_int "totals agree" total c.Census.total;
  check_int "equilibria agree" equilibria c.Census.equilibria;
  check_int "stars agree" stars c.Census.stars

let test_differential_sum_census_small () =
  for n = 2 to 6 do
    differential_sum_census n
  done

let test_differential_sum_census_n7 () = differential_sum_census 7

let test_graph_census_sum () =
  let c = Census.graph_census Game.Sum 4 in
  check_int "connected count" 38 c.Census.connected;
  check_int "labeled equilibria" 26 c.Census.equilibria_labeled;
  check_int "iso classes" 5 (List.length c.Census.equilibria_iso);
  check_int "max diameter" 2 c.Census.max_diameter;
  List.iter
    (fun g -> check_true "each representative verified" (Equilibrium.is_sum_equilibrium g))
    c.Census.equilibria_iso

let test_graph_census_max () =
  let c = Census.graph_census Game.Max 5 in
  check_int "iso classes" 4 (List.length c.Census.equilibria_iso);
  List.iter
    (fun g -> check_true "verified" (Equilibrium.is_max_equilibrium g))
    c.Census.equilibria_iso

let test_graph_census_max_diameter3_at_6 () =
  let c = Census.graph_census Game.Max 6 in
  check_int "diameter 3 attained" 3 c.Census.max_diameter

let test_histogram_consistent () =
  let c = Census.graph_census Game.Sum 5 in
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 c.Census.diameter_histogram in
  check_int "histogram covers all classes" (List.length c.Census.equilibria_iso) total

(* --- unified shard API ----------------------------------------------------- *)

let test_split_properties () =
  List.iter
    (fun (kind, n) ->
      let full = Census.full_shard kind Game.Sum n in
      List.iter
        (fun parts ->
          let pieces = Census.split full ~parts in
          check_true "at most parts pieces" (List.length pieces <= parts);
          (* adjacent, ascending, covering exactly [lo, hi) *)
          let cursor = ref full.Census.lo in
          List.iter
            (fun s ->
              check_int "adjacent to predecessor" !cursor s.Census.lo;
              check_true "non-empty piece" (s.Census.hi > s.Census.lo);
              cursor := s.Census.hi)
            pieces;
          check_int "covers the range" full.Census.hi !cursor;
          (* deterministic: a resumed run reproduces the boundaries *)
          check_true "split is deterministic"
            (pieces = Census.split full ~parts))
        [ 1; 2; 3; 7; 16; 1000 ])
    [ (Census.Trees, 5); (Census.Graphs, 4); (Census.Orderly, 6) ];
  (* an empty range stays a single empty shard *)
  let empty = { (Census.full_shard Census.Trees Game.Sum 5) with Census.lo = 9; hi = 9 } in
  (match Census.split empty ~parts:4 with
  | [ s ] -> check_true "empty shard preserved" (s.Census.lo = 9 && s.Census.hi = 9)
  | pieces -> check_int "one piece" 1 (List.length pieces))

let test_run_shard_matches_wrappers () =
  let t = Census.full_shard Census.Trees Game.Max 5 in
  let t = { t with Census.lo = 10; hi = 90 } in
  (match Census.run_shard t with
  | Census.Tree_result c ->
    check_true "tree shard = tree_census_in"
      (c = Census.tree_census_in Game.Max 5 ~lo:10 ~hi:90)
  | _ -> check_true "tree kind" false);
  let g = Census.full_shard Census.Graphs Game.Sum 4 in
  let g = { g with Census.lo = 8; hi = 40 } in
  (match Census.run_shard g with
  | Census.Graph_result c ->
    check_int "graph shard = graph_census_in"
      (Census.graph_census_in Game.Sum 4 ~lo:8 ~hi:40).Census.connected
      c.Census.connected
  | _ -> check_true "graph kind" false);
  let o = Census.full_shard Census.Orderly Game.Sum 5 in
  let o = { o with Census.lo = 2; hi = 14 } in
  match Census.run_shard o with
  | Census.Orderly_result c ->
    check_true "orderly shard = orderly_census_in"
      (c = Census.orderly_census_in Game.Sum 5 ~lo:2 ~hi:14)
  | _ -> check_true "orderly kind" false

(* The tentpole's acceptance bar: the orderly census record must equal
   the rank-range one field for field — counts, histogram, and the
   representative list in the same (first-seen mask) order — so the two
   strategies print identical bytes. *)
let orderly_identity version n =
  let a = Census.graph_census version n in
  let b = Census.orderly_census version n in
  check_true "orderly census = rank-range census"
    (String.equal
       (Jsonx.to_string (Rpc.graph_census_result a))
       (Jsonx.to_string (Rpc.graph_census_result b)))

let test_orderly_identity_small () =
  orderly_identity Game.Sum 4;
  orderly_identity Game.Sum 5;
  orderly_identity Game.Max 5

let test_orderly_identity_n6 () =
  orderly_identity Game.Sum 6;
  orderly_identity Game.Max 6

let test_merge_result_rejects_mixed () =
  let t = Census.run_shard (Census.full_shard Census.Trees Game.Sum 4) in
  let g = Census.run_shard (Census.full_shard Census.Graphs Game.Sum 4) in
  Alcotest.check_raises "mixed kinds rejected"
    (Invalid_argument "Census.merge_result: mixed census kinds") (fun () ->
      ignore (Census.merge_result t g))

(* Folding the pieces of a split via [merge_result] must reproduce the
   full census byte-for-byte (rendered wire JSON) under ANY order of
   merging adjacent pieces — the property the distributed dispatcher
   leans on when shards complete out of order. The per-kind environment
   (full render + per-piece results) is computed lazily once; QCheck
   only drives the merge order. *)
let render_result r = Jsonx.to_string (Rpc.census_result r)

let merge_perm_env kind version n parts =
  lazy
    (let full = Census.full_shard kind version n in
     let expected = render_result (Census.run_shard full) in
     let results = List.map Census.run_shard (Census.split full ~parts) in
     (expected, results))

let merge_in_seeded_order env seed =
  let expected, results = Lazy.force env in
  let rng = Prng.create seed in
  let rec merge_at i = function
    | a :: b :: tl when i = 0 -> Census.merge_result a b :: tl
    | a :: tl -> a :: merge_at (i - 1) tl
    | [] -> assert false
  in
  let rec reduce = function
    | [] -> assert false
    | [ r ] -> r
    | rs -> reduce (merge_at (Prng.int rng (List.length rs - 1)) rs)
  in
  String.equal expected (render_result (reduce results))

let tree_perm_env = merge_perm_env Census.Trees Game.Sum 6 7

let graph_perm_env = merge_perm_env Census.Graphs Game.Max 4 6

let orderly_perm_env = merge_perm_env Census.Orderly Game.Sum 6 7

let suite =
  [
    case "tree census sum (n <= 7)" test_tree_census_sum_small;
    case "tree census max (n <= 7)" test_tree_census_max_small;
    case "double star count n=6" test_double_star_count_n6;
    case "differential sum census vs brute force (n <= 6)"
      test_differential_sum_census_small;
    slow_case "differential sum census vs brute force (n = 7)"
      test_differential_sum_census_n7;
    case "graph census sum n=4" test_graph_census_sum;
    case "graph census max n=5" test_graph_census_max;
    slow_case "graph census max n=6 diameter 3" test_graph_census_max_diameter3_at_6;
    case "histogram consistency" test_histogram_consistent;
    case "split: cover, adjacency, determinism" test_split_properties;
    case "run_shard matches the census_in wrappers" test_run_shard_matches_wrappers;
    case "orderly census identical to rank-range (n <= 5)" test_orderly_identity_small;
    slow_case "orderly census identical to rank-range (n = 6)" test_orderly_identity_n6;
    case "merge_result rejects mixed kinds" test_merge_result_rejects_mixed;
    qcheck ~count:40 "tree census: any adjacent-merge order is identical"
      QCheck2.Gen.(int_range 0 1_000_000)
      (merge_in_seeded_order tree_perm_env);
    qcheck ~count:40 "graph census: any adjacent-merge order is identical"
      QCheck2.Gen.(int_range 0 1_000_000)
      (merge_in_seeded_order graph_perm_env);
    qcheck ~count:40 "orderly census: any adjacent-merge order is identical"
      QCheck2.Gen.(int_range 0 1_000_000)
      (merge_in_seeded_order orderly_perm_env);
  ]
