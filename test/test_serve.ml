(* Serving layer: the Jsonx codec, the Rpc parse/render pair, and an
   end-to-end server exercise over a real Unix socket — concurrent
   clients, mixed valid/malformed traffic, responses checked
   byte-for-byte against direct library calls. *)

open Test_helpers

let check_str = Alcotest.(check string)

(* --- jsonx --------------------------------------------------------------- *)

let parse_ok s =
  match Jsonx.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "Jsonx.parse %S failed: %s" s msg

let test_jsonx_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "false";
      "0";
      "-17";
      "\"\"";
      "\"hello\"";
      "[]";
      "[1,2,3]";
      "{}";
      "{\"a\":1,\"b\":[true,null]}";
      "{\"nested\":{\"deep\":[{\"x\":\"y\"}]}}";
    ]
  in
  List.iter
    (fun s -> check_str s s (Jsonx.to_string (parse_ok s)))
    cases

let test_jsonx_whitespace_and_numbers () =
  check_str "ws" "{\"a\":[1,2]}"
    (Jsonx.to_string (parse_ok "  { \"a\" : [ 1 , 2 ] }  "));
  (match parse_ok "3.5" with
  | Jsonx.Float f -> check_true "3.5" (Float.equal f 3.5)
  | _ -> Alcotest.fail "3.5 should parse as Float");
  (match parse_ok "1e3" with
  | Jsonx.Float f -> check_true "1e3" (Float.equal f 1000.0)
  | _ -> Alcotest.fail "1e3 should parse as Float");
  (match parse_ok "42" with
  | Jsonx.Int 42 -> ()
  | _ -> Alcotest.fail "42 should parse as Int");
  (* an integer literal beyond OCaml's int range must not wrap around *)
  match parse_ok "123456789012345678901234567890" with
  | Jsonx.Float _ -> ()
  | _ -> Alcotest.fail "huge integer should fall back to Float"

let test_jsonx_strings () =
  (match parse_ok "\"a\\nb\\t\\\"c\\\\\"" with
  | Jsonx.Str s -> check_str "escapes" "a\nb\t\"c\\" s
  | _ -> Alcotest.fail "expected Str");
  (match parse_ok "\"\\u0041\\u00e9\\u20ac\"" with
  | Jsonx.Str s -> check_str "utf8" "A\xc3\xa9\xe2\x82\xac" s
  | _ -> Alcotest.fail "expected Str");
  (* surrogate pair: U+1F600 *)
  (match parse_ok "\"\\ud83d\\ude00\"" with
  | Jsonx.Str s -> check_str "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected Str");
  (* control characters must render as escapes that re-parse *)
  let s = Jsonx.to_string (Jsonx.Str "a\000b\031c") in
  match Jsonx.parse s with
  | Ok (Jsonx.Str s') -> check_str "control roundtrip" "a\000b\031c" s'
  | _ -> Alcotest.failf "control-char rendering %S did not re-parse" s

let test_jsonx_rejects () =
  let bad =
    [
      "";
      "   ";
      "{";
      "[1,";
      "[1 2]";
      "{\"a\":}";
      "{\"a\" 1}";
      "tru";
      "nul";
      "1.2.3";
      "01x";
      "\"unterminated";
      "\"bad \\q escape\"";
      "\"\\ud83d\""; (* unpaired high surrogate *)
      "\"\\ude00\""; (* unpaired low surrogate *)
      "\"raw \x01 control\"";
      "{} trailing";
      "1 2";
      String.concat "" (List.init 100 (fun _ -> "[")) (* past max_depth *);
    ]
  in
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "Jsonx.parse should reject %S" s)
    bad

let test_jsonx_total_fuzz () =
  (* no input may escape the (t, string) result type *)
  let rng = Prng.create 0xbead in
  for _ = 1 to 500 do
    let len = Prng.int rng 40 in
    let s = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
    match Jsonx.parse s with
    | Ok _ | Error _ -> ()
  done

(* --- rpc ----------------------------------------------------------------- *)

let star9 = Generators.star 9

let star9_g6 = Graph6.encode star9

let req_of_string s =
  match Rpc.parse_request s with
  | Ok (id, req) -> (id, req)
  | Error (_, code, msg) ->
    Alcotest.failf "parse_request %S failed: %s %s" s (Rpc.error_code_name code) msg

let err_of_string s =
  match Rpc.parse_request s with
  | Ok _ -> Alcotest.failf "parse_request should reject %S" s
  | Error (id, code, _) -> (id, code)

let test_rpc_parse_ok () =
  (match req_of_string "{\"id\":7,\"method\":\"ping\"}" with
  | Jsonx.Int 7, Rpc.Ping -> ()
  | _ -> Alcotest.fail "ping");
  (match req_of_string "{\"method\":\"stats\"}" with
  | Jsonx.Null, Rpc.Stats -> ()
  | _ -> Alcotest.fail "stats with no id");
  (match
     req_of_string
       (Printf.sprintf "{\"id\":\"a\",\"method\":\"info\",\"params\":{\"graph6\":%S}}"
          star9_g6)
   with
  | Jsonx.Str "a", Rpc.Info { g6; graph } ->
    check_str "g6 kept verbatim" star9_g6 g6;
    check_true "decoded graph" (Graph.equal graph star9)
  | _ -> Alcotest.fail "info");
  (match
     req_of_string
       (Printf.sprintf "{\"method\":\"check\",\"params\":{\"graph6\":%S}}" star9_g6)
   with
  | _, Rpc.Check { game = Game.Sum; _ } -> ()
  | _ -> Alcotest.fail "check defaults to the sum game");
  (match
     req_of_string
       (Printf.sprintf
          "{\"method\":\"check\",\"params\":{\"game\":\"max\",\"graph6\":%S}}" star9_g6)
   with
  | _, Rpc.Check { game = Game.Max; _ } -> ()
  | _ -> Alcotest.fail "check max");
  (match
     req_of_string
       (Printf.sprintf
          "{\"method\":\"check\",\"params\":{\"game\":\"alpha:1.5\",\"graph6\":%S}}"
          star9_g6)
   with
  | _, Rpc.Check { game = Game.Alpha 1.5; _ } -> ()
  | _ -> Alcotest.fail "check alpha");
  (* pre-registry clients spell the game in a "version" field *)
  (match
     req_of_string
       (Printf.sprintf
          "{\"method\":\"check\",\"params\":{\"version\":\"max\",\"graph6\":%S}}"
          star9_g6)
   with
  | _, Rpc.Check { game = Game.Max; _ } -> ()
  | _ -> Alcotest.fail "check legacy version field");
  match
    req_of_string
      "{\"id\":1,\"method\":\"census-shard\",\"params\":{\"kind\":\"trees\",\"game\":\"sum\",\"n\":6,\"lo\":10,\"hi\":20}}"
  with
  | ( Jsonx.Int 1,
      Rpc.Census_shard
        { Census.kind = Census.Trees; n = 6; lo = 10; hi = 20; _ } ) -> ()
  | _ -> Alcotest.fail "census-shard"

let test_rpc_protocol_version () =
  (* explicit "v":1 parses like the unversioned envelope *)
  (match req_of_string "{\"v\":1,\"id\":7,\"method\":\"ping\"}" with
  | Jsonx.Int 7, Rpc.Ping -> ()
  | _ -> Alcotest.fail "v:1 ping");
  (* v:2 (the current version, which added the "game" field) also parses *)
  (match req_of_string "{\"v\":2,\"id\":8,\"method\":\"ping\"}" with
  | Jsonx.Int 8, Rpc.Ping -> ()
  | _ -> Alcotest.fail "v:2 ping");
  (* a version we don't speak: structured refusal, id still echoed *)
  (match err_of_string "{\"v\":3,\"id\":8,\"method\":\"ping\"}" with
  | Jsonx.Int 8, Rpc.Unsupported_version -> ()
  | _ -> Alcotest.fail "v:3 should be unsupported_version");
  (* a malformed version is an envelope error, not a version error *)
  match err_of_string "{\"v\":\"one\",\"method\":\"ping\"}" with
  | _, Rpc.Invalid_request -> ()
  | _ -> Alcotest.fail "non-integer v should be invalid_request"

let test_rpc_parse_errors () =
  let check_code name expected s =
    let _, code = err_of_string s in
    check_str name (Rpc.error_code_name expected) (Rpc.error_code_name code)
  in
  check_code "not json" Rpc.Parse_error "nonsense";
  check_code "not an object" Rpc.Invalid_request "[1,2]";
  check_code "missing method" Rpc.Invalid_request "{\"id\":1}";
  check_code "method not a string" Rpc.Invalid_request "{\"method\":42}";
  check_code "params not an object" Rpc.Invalid_request
    "{\"method\":\"ping\",\"params\":[]}";
  check_code "bad id" Rpc.Invalid_request "{\"id\":[1],\"method\":\"ping\"}";
  check_code "unknown method" Rpc.Unknown_method "{\"method\":\"frobnicate\"}";
  check_code "missing graph6" Rpc.Invalid_params "{\"method\":\"check\"}";
  check_code "bad graph6" Rpc.Bad_graph6
    "{\"method\":\"check\",\"params\":{\"graph6\":\"\\u0001\"}}";
  check_code "bad game" Rpc.Unsupported_game
    (Printf.sprintf
       "{\"method\":\"check\",\"params\":{\"game\":\"median\",\"graph6\":%S}}" star9_g6);
  check_code "bad legacy version" Rpc.Unsupported_game
    (Printf.sprintf
       "{\"method\":\"check\",\"params\":{\"version\":\"median\",\"graph6\":%S}}"
       star9_g6);
  check_code "missing census n" Rpc.Invalid_params
    "{\"method\":\"census-shard\",\"params\":{\"kind\":\"trees\",\"lo\":0,\"hi\":1}}";
  (* the id still comes back when the envelope is bad but the id itself parsed *)
  let id, _ = err_of_string "{\"id\":9,\"method\":\"frobnicate\"}" in
  check_true "id echoed on error" (id = Jsonx.Int 9)

let test_rpc_render () =
  check_str "render_ok"
    "{\"id\":3,\"ok\":true,\"result\":{\"x\":1}}"
    (Rpc.render_ok ~id:(Jsonx.Int 3) ~result:"{\"x\":1}");
  check_str "render_error"
    "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"timeout\",\"message\":\"m\"}}"
    (Rpc.render_error ~id:Jsonx.Null Rpc.Timeout "m")

(* --- end-to-end ----------------------------------------------------------- *)

let temp_sock tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "bncg-test-%s-%d.sock" tag (Unix.getpid ()))

let e2e_config sock =
  {
    Serve.default_config with
    Serve.addresses = [ Serve.Unix_sock sock ];
    jobs = 2;
    census_slice = 100 (* small enough that the e2e census merges slices *);
  }

(* the star on 9 vertices with its center relabeled to [c]: distinct
   graph6 text per center, one isomorphism class *)
let star9_centered c =
  let g = Graph.create 9 in
  for v = 0 to 8 do
    if v <> c then Graph.add_edge g c v
  done;
  g

let torus3 = Constructions.torus 3

let path8 = Generators.path 8

(* expected response bytes computed by direct library calls — the server
   must produce exactly these *)
let expected_check ~id version g =
  let verdict = Equilibrium.check version g in
  Rpc.render_ok ~id:(Jsonx.Int id)
    ~result:(Jsonx.to_string (Rpc.check_result version verdict g))

let expected_info ~id g =
  Rpc.render_ok ~id:(Jsonx.Int id) ~result:(Jsonx.to_string (Rpc.info_result g))

let check_request ~id game g =
  Printf.sprintf "{\"id\":%d,\"method\":\"check\",\"params\":{\"game\":%S,\"graph6\":%s}}"
    id game
    (Jsonx.to_string (Jsonx.Str (Graph6.encode g)))

let info_request ~id g =
  Printf.sprintf "{\"id\":%d,\"method\":\"info\",\"params\":{\"graph6\":%s}}" id
    (Jsonx.to_string (Jsonx.Str (Graph6.encode g)))

(* one request/expectation pair per index; valid and malformed
   interleave on every connection *)
let workload_item id =
  match id mod 6 with
  | 0 ->
    let g = star9_centered (id mod 9) in
    (check_request ~id "sum" g, `Exact (expected_check ~id Game.Sum g))
  | 1 -> (check_request ~id "max" torus3, `Exact (expected_check ~id Game.Max torus3))
  | 2 -> (info_request ~id path8, `Exact (expected_info ~id path8))
  | 3 ->
    ( Printf.sprintf "{\"id\":%d,\"method\":\"ping\"}" id,
      `Exact (Rpc.render_ok ~id:(Jsonx.Int id) ~result:(Jsonx.to_string Rpc.ping_result)) )
  | 4 -> ("definitely not json", `Code "parse_error")
  | _ ->
    ( Printf.sprintf "{\"id\":%d,\"method\":\"frobnicate\"}" id,
      `Code "unknown_method" )

let error_code_of reply =
  match Jsonx.parse reply with
  | Ok r -> (
    match Option.bind (Jsonx.member "error" r) (Jsonx.member "code") with
    | Some (Jsonx.Str c) -> Some c
    | _ -> None)
  | Error _ -> None

let test_e2e_concurrent_clients () =
  let sock = temp_sock "e2e" in
  let srv = Serve.start (e2e_config sock) in
  let failures = Array.make 3 [] in
  let worker t () =
    Serve.with_client (Serve.Unix_sock sock) @@ fun c ->
    for i = 0 to 99 do
      let id = (t * 1000) + i in
      let request, expectation = workload_item id in
      let reply = Serve.call c request in
      match expectation with
      | `Exact expected ->
        if not (String.equal expected reply) then
          failures.(t) <-
            Printf.sprintf "id %d: expected %s, got %s" id expected reply
            :: failures.(t)
      | `Code code ->
        if error_code_of reply <> Some code then
          failures.(t) <-
            Printf.sprintf "id %d: expected error %s, got %s" id code reply
            :: failures.(t)
    done
  in
  let threads = List.init 3 (fun t -> Thread.create (worker t) ()) in
  List.iter Thread.join threads;
  Array.iteri
    (fun t fs ->
      match fs with
      | [] -> ()
      | f :: _ ->
        Alcotest.failf "thread %d: %d bad responses, first: %s" t (List.length fs) f)
    failures;
  (* repeated isomorphic/identical graphs must have hit the cache *)
  let stats =
    Serve.with_client (Serve.Unix_sock sock) (fun c ->
        Serve.call c "{\"method\":\"stats\"}")
  in
  let hits =
    match Jsonx.parse stats with
    | Ok r ->
      Option.value ~default:(-1)
        (Option.bind
           (Option.bind (Option.bind (Jsonx.member "result" r) (Jsonx.member "cache"))
              (Jsonx.member "hits"))
           Jsonx.to_int)
    | Error _ -> -1
  in
  check_true "cache hits > 0" (hits > 0);
  Serve.stop srv;
  Serve.stop srv (* idempotent *);
  check_false "socket unlinked on stop" (Sys.file_exists sock)

let test_e2e_census_shard () =
  let sock = temp_sock "census" in
  let srv = Serve.start (e2e_config sock) in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  Serve.with_client (Serve.Unix_sock sock) @@ fun c ->
  (* trees: slices of 100 merged server-side over 1296 ranks must equal
     one direct full-range call *)
  let total = Enumerate.count_trees 6 in
  let reply =
    Serve.call c
      (Printf.sprintf
         "{\"id\":1,\"method\":\"census-shard\",\"params\":{\"kind\":\"trees\",\"game\":\"sum\",\"n\":6,\"lo\":0,\"hi\":%d}}"
         total)
  in
  let expected =
    Rpc.render_ok ~id:(Jsonx.Int 1)
      ~result:
        (Jsonx.to_string
           (Rpc.tree_census_result
              (Census.tree_census_in Game.Sum 6 ~lo:0 ~hi:total)))
  in
  check_str "sliced tree census" expected reply;
  let masks = Enumerate.graph_mask_count 5 in
  let reply =
    Serve.call c
      (Printf.sprintf
         "{\"id\":2,\"method\":\"census-shard\",\"params\":{\"kind\":\"graphs\",\"game\":\"sum\",\"n\":5,\"lo\":0,\"hi\":%d}}"
         masks)
  in
  let expected =
    Rpc.render_ok ~id:(Jsonx.Int 2)
      ~result:
        (Jsonx.to_string
           (Rpc.graph_census_result
              (Census.graph_census_in Game.Sum 5 ~lo:0 ~hi:masks)))
  in
  check_str "sliced graph census" expected reply;
  (* out-of-range shard: structured error, server stays up *)
  let reply =
    Serve.call c
      "{\"id\":3,\"method\":\"census-shard\",\"params\":{\"kind\":\"trees\",\"game\":\"sum\",\"n\":6,\"lo\":0,\"hi\":999999}}"
  in
  check_true "bad shard range rejected" (error_code_of reply = Some "invalid_params");
  check_str "still serving" "{\"id\":4,\"ok\":true,\"result\":\"pong\"}"
    (Serve.call c "{\"id\":4,\"method\":\"ping\"}");
  (* protocol versioning over the wire: a future version is refused with
     a structured code, and stats advertises what this server speaks *)
  let reply = Serve.call c "{\"v\":99,\"id\":5,\"method\":\"ping\"}" in
  check_true "future version refused"
    (error_code_of reply = Some "unsupported_version");
  let stats = Serve.call c "{\"v\":1,\"id\":6,\"method\":\"stats\"}" in
  let advertised =
    match Jsonx.parse stats with
    | Ok r ->
      Option.bind
        (Option.bind (Jsonx.member "result" r) (Jsonx.member "protocol_version"))
        Jsonx.to_int
    | Error _ -> None
  in
  check_true "stats advertises protocol_version"
    (advertised = Some Rpc.protocol_version)

let test_e2e_legacy_and_variant_clients () =
  let sock = temp_sock "legacy" in
  let srv = Serve.start (e2e_config sock) in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  Serve.with_client (Serve.Unix_sock sock) @@ fun c ->
  let g = star9_centered 0 in
  let g6 = Jsonx.to_string (Jsonx.Str (Graph6.encode g)) in
  (* a pre-registry client that names no game at all gets the very same
     bytes as an explicit sum request — the compat contract *)
  let bare =
    Serve.call c
      (Printf.sprintf "{\"id\":1,\"method\":\"check\",\"params\":{\"graph6\":%s}}" g6)
  in
  check_str "no-game request = explicit sum, byte for byte"
    (Serve.call c
       (Printf.sprintf
          "{\"id\":1,\"method\":\"check\",\"params\":{\"game\":\"sum\",\"graph6\":%s}}"
          g6))
    bare;
  check_str "and equals the direct library rendering"
    (expected_check ~id:1 Game.Sum g) bare;
  (* the legacy "version" spelling still works *)
  check_str "legacy version field"
    (expected_check ~id:2 Game.Max torus3)
    (Serve.call c
       (Printf.sprintf
          "{\"id\":2,\"method\":\"check\",\"params\":{\"version\":\"max\",\"graph6\":%s}}"
          (Jsonx.to_string (Jsonx.Str (Graph6.encode torus3)))));
  (* a variant game round-trips through the same entry point *)
  check_str "alpha check over the wire"
    (expected_check ~id:3 (Game.Alpha 1.0) g)
    (Serve.call c (check_request ~id:3 "alpha:1" g));
  (* a game this server has no registry entry for: structured refusal *)
  check_true "unknown game refused with unsupported_game"
    (error_code_of (Serve.call c (check_request ~id:4 "median" g))
    = Some "unsupported_game");
  (* the orderly walk cannot count a labeling-dependent game *)
  check_true "orderly shard rejects alpha"
    (error_code_of
       (Serve.call c
          "{\"id\":5,\"method\":\"census-shard\",\"params\":{\"kind\":\"orderly\",\"game\":\"alpha:1\",\"n\":5,\"lo\":0,\"hi\":1}}")
    = Some "invalid_params");
  check_str "still serving" "{\"id\":6,\"ok\":true,\"result\":\"pong\"}"
    (Serve.call c "{\"id\":6,\"method\":\"ping\"}")

let test_e2e_limits () =
  let sock = temp_sock "limits" in
  let cfg =
    {
      (e2e_config sock) with
      Serve.max_request_bytes = 256;
      max_graph_vertices = 10;
    }
  in
  let srv = Serve.start cfg in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  Serve.with_client (Serve.Unix_sock sock) @@ fun c ->
  (* an oversized but newline-terminated line: structured reply, and the
     connection keeps working *)
  let big =
    Printf.sprintf "{\"id\":1,\"method\":\"ping\",\"pad\":%S}"
      (String.make 300 'x')
  in
  check_true "oversize request rejected" (error_code_of (Serve.call c big) = Some "too_large");
  check_str "connection survives oversize" "{\"id\":2,\"ok\":true,\"result\":\"pong\"}"
    (Serve.call c "{\"id\":2,\"method\":\"ping\"}");
  (* a graph beyond the server's vertex bound *)
  let reply =
    Serve.call c
      (Printf.sprintf "{\"id\":3,\"method\":\"check\",\"params\":{\"graph6\":%s}}"
         (Jsonx.to_string (Jsonx.Str (Graph6.encode (Generators.star 11)))))
  in
  check_true "oversize graph rejected" (error_code_of reply = Some "too_large")

let test_e2e_violation_not_canonically_cached () =
  (* a path is not a sum equilibrium; its violation witness names
     vertices, so two relabelings must each get a witness valid for
     their own labeling (and byte-identical to the direct call) *)
  let sock = temp_sock "witness" in
  let srv = Serve.start (e2e_config sock) in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  Serve.with_client (Serve.Unix_sock sock) @@ fun c ->
  let relabeled =
    (* 0-1-2-3-4 relabeled by reversal: 4-3-2-1-0 — isomorphic, same
       canonical class, different adjacency text *)
    let g = Graph.create 5 in
    for v = 0 to 3 do
      Graph.add_edge g (4 - v) (4 - v - 1)
    done;
    g
  in
  let p5 = Generators.path 5 in
  List.iteri
    (fun i g ->
      let id = i + 1 in
      check_str
        (Printf.sprintf "violation witness %d" id)
        (expected_check ~id Game.Sum g)
        (Serve.call c (check_request ~id "sum" g)))
    [ p5; relabeled; p5 ]

let test_e2e_pipelining_in_order () =
  (* N mixed requests written as one batch before any reply is read:
     the replies must come back 1:1 in request order, byte-identical to
     what the same requests get sequentially *)
  let sock = temp_sock "pipeline" in
  let srv = Serve.start (e2e_config sock) in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  let n = 120 in
  let items = List.init n workload_item in
  let sequential =
    Serve.with_client (Serve.Unix_sock sock) @@ fun c ->
    List.map (fun (request, _) -> Serve.call c request) items
  in
  let pipelined =
    Serve.with_client (Serve.Unix_sock sock) @@ fun c ->
    List.iter (fun (request, _) -> Serve.send_line c request) items;
    List.map (fun _ -> Serve.recv_line c) items
  in
  List.iteri
    (fun i (seq, piped) ->
      if not (String.equal seq piped) then
        Alcotest.failf "reply %d differs: sequential %s, pipelined %s" i seq
          piped)
    (List.combine sequential pipelined);
  (* and the pipelined replies satisfy the per-item expectations too *)
  List.iteri
    (fun i (reply, (_, expectation)) ->
      match expectation with
      | `Exact expected ->
        if not (String.equal expected reply) then
          Alcotest.failf "pipelined reply %d: expected %s, got %s" i expected
            reply
      | `Code code ->
        if error_code_of reply <> Some code then
          Alcotest.failf "pipelined reply %d: expected error %s, got %s" i code
            reply)
    (List.combine pipelined items)

let test_e2e_backpressure_slow_consumer () =
  (* connection A floods pings without reading a single reply; its
     pending output crosses the tiny write_high_water, so the server
     parks it instead of buffering without bound — and connection B,
     served by the same worker pool, keeps getting answers meanwhile.
     When A finally reads, every reply is there, in order. *)
  let sock = temp_sock "backpressure" in
  let cfg = { (e2e_config sock) with Serve.workers = 1; write_high_water = 512 } in
  let srv = Serve.start cfg in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  let n = 2000 in
  Serve.with_client (Serve.Unix_sock sock) @@ fun a ->
  for i = 0 to n - 1 do
    Serve.send_line a (Printf.sprintf "{\"id\":%d,\"method\":\"ping\"}" i)
  done;
  (* B makes progress while A's replies are parked *)
  Serve.with_client (Serve.Unix_sock sock) (fun b ->
      for i = 0 to 49 do
        check_str "B served while A is parked"
          (Printf.sprintf "{\"id\":%d,\"ok\":true,\"result\":\"pong\"}" (10000 + i))
          (Serve.call b (Printf.sprintf "{\"id\":%d,\"method\":\"ping\"}" (10000 + i)))
      done);
  (* now drain A: all n replies, in order *)
  for i = 0 to n - 1 do
    check_str
      (Printf.sprintf "A reply %d in order" i)
      (Printf.sprintf "{\"id\":%d,\"ok\":true,\"result\":\"pong\"}" i)
      (Serve.recv_line a)
  done

let test_e2e_pipeline_crosses_high_water () =
  (* one batched write whose replies overflow a tiny write_high_water,
     read by an active client: the server must alternate processing and
     flushing until every buffered line is answered. Regression test for
     the stall where pump stopped at the high-water mark, the flush
     drained the output entirely (roomy sndbuf), and the complete lines
     still in the frame were never pumped again — with the rcvbuf empty,
     no event would ever re-drive the connection. *)
  let sock = temp_sock "highwater" in
  let cfg =
    { (e2e_config sock) with Serve.workers = 1; write_high_water = 256 }
  in
  let srv = Serve.start cfg in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  let n = 200 in
  Serve.with_client ~timeout:10.0 (Serve.Unix_sock sock) @@ fun c ->
  (* a single send: the whole batch reaches the server in one read, so
     per-send wake events cannot mask the stall *)
  Serve.send_line c
    (String.concat "\n"
       (List.init n (fun i -> Printf.sprintf "{\"id\":%d,\"method\":\"ping\"}" i)));
  for i = 0 to n - 1 do
    check_str
      (Printf.sprintf "reply %d past high water" i)
      (Printf.sprintf "{\"id\":%d,\"ok\":true,\"result\":\"pong\"}" i)
      (Serve.recv_line c)
  done

let test_e2e_stats_evloop () =
  let sock = temp_sock "evstats" in
  let cfg = { (e2e_config sock) with Serve.workers = 2; cache_shards = 4 } in
  let srv = Serve.start cfg in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  check_int "worker_count" 2 (Serve.worker_count srv);
  check_true "backend name"
    (Serve.backend_name srv = "epoll" || Serve.backend_name srv = "poll");
  Serve.with_client (Serve.Unix_sock sock) @@ fun c ->
  (* some pipelined traffic so the depth histogram has mass *)
  for i = 0 to 9 do
    Serve.send_line c (Printf.sprintf "{\"id\":%d,\"method\":\"ping\"}" i)
  done;
  for _ = 0 to 9 do
    ignore (Serve.recv_line c)
  done;
  let stats = Serve.call c "{\"id\":99,\"method\":\"stats\"}" in
  let result =
    match Jsonx.parse stats with
    | Ok r -> Option.get (Jsonx.member "result" r)
    | Error msg -> Alcotest.failf "stats reply unparseable: %s" msg
  in
  let ev = Option.get (Jsonx.member "evloop" result) in
  check_true "backend advertised"
    (Jsonx.member "backend" ev = Some (Jsonx.Str (Serve.backend_name srv)));
  check_true "workers advertised" (Jsonx.member "workers" ev = Some (Jsonx.Int 2));
  (match Option.bind (Jsonx.member "wakeups" ev) Jsonx.to_int with
  | Some w when w > 0 -> ()
  | other ->
    Alcotest.failf "expected positive wakeups, got %s"
      (match other with Some w -> string_of_int w | None -> "none"));
  (match Option.bind (Jsonx.member "connections" ev) Jsonx.to_int with
  | Some k when k >= 1 -> () (* at least this client *)
  | _ -> Alcotest.fail "expected >= 1 open connection");
  let hist_mass name =
    match Jsonx.member name ev with
    | Some (Jsonx.List buckets) ->
      List.fold_left
        (fun acc b -> match b with Jsonx.Int v -> acc + v | _ -> acc)
        0 buckets
    | _ -> Alcotest.failf "missing %s histogram" name
  in
  check_true "ready-batch histogram has mass" (hist_mass "ready_batch_log2" > 0);
  check_true "pipeline-depth histogram has mass"
    (hist_mass "pipeline_depth_log2" > 0);
  (* per-shard cache stats: present, one per shard, sums match the
     aggregate counters *)
  let cache = Option.get (Jsonx.member "cache" result) in
  match Jsonx.member "shards" cache with
  | Some (Jsonx.List shards) ->
    check_int "shard record count" 4 (List.length shards);
    let sum field =
      List.fold_left
        (fun acc s ->
          acc
          + Option.value ~default:0 (Option.bind (Jsonx.member field s) Jsonx.to_int))
        0 shards
    in
    let agg field =
      Option.value ~default:(-1)
        (Option.bind (Jsonx.member field cache) Jsonx.to_int)
    in
    check_int "shard sizes sum" (agg "size") (sum "size");
    check_true "shard hits/misses reported" (sum "hits" + sum "misses" >= 0)
  | _ -> Alcotest.fail "stats cache lacks shards"

let suite =
  [
    case "jsonx: roundtrip" test_jsonx_roundtrip;
    case "jsonx: whitespace and numbers" test_jsonx_whitespace_and_numbers;
    case "jsonx: strings and escapes" test_jsonx_strings;
    case "jsonx: rejects malformed" test_jsonx_rejects;
    case "jsonx: total on fuzz" test_jsonx_total_fuzz;
    case "rpc: parses valid requests" test_rpc_parse_ok;
    case "rpc: protocol versioning" test_rpc_protocol_version;
    case "rpc: error codes" test_rpc_parse_errors;
    case "rpc: envelopes" test_rpc_render;
    case "e2e: concurrent clients, byte-identical replies" test_e2e_concurrent_clients;
    case "e2e: census shards merge like direct calls" test_e2e_census_shard;
    case "e2e: legacy and variant clients" test_e2e_legacy_and_variant_clients;
    case "e2e: request and graph limits" test_e2e_limits;
    case "e2e: violation witnesses are labeling-exact" test_e2e_violation_not_canonically_cached;
    case "e2e: pipelined replies in order, byte-identical" test_e2e_pipelining_in_order;
    case "e2e: slow consumer does not stall others" test_e2e_backpressure_slow_consumer;
    case "e2e: pipelined batch crosses write high water" test_e2e_pipeline_crosses_high_water;
    case "e2e: stats reports event-loop telemetry" test_e2e_stats_evloop;
  ]
