(* Differential tests: the incremental Swap_eval engine against the naive
   apply/BFS/undo oracle in Swap. The engine is allowed to skip work only
   when a sound bound certifies the answer, so every delta, verdict and
   witness must be byte-identical to the oracle's. *)

open Test_helpers

let iter_agent_moves ~deletions g v f =
  Swap.iter_moves ~include_deletions:deletions g v f

(* The pre-engine equilibrium scan, preserved verbatim as the oracle:
   lowest agent first, moves in enumeration order, deletions violating
   the max version already at delta = 0. *)
let naive_verdict version g =
  if not (Components.is_connected g) then Equilibrium.Disconnected
  else begin
    let n = Graph.n g in
    let ws = Bfs.create_workspace n in
    let witness = ref None in
    (try
       for v = 0 to n - 1 do
         iter_agent_moves ~deletions:(version = Usage_cost.Max) g v (fun mv ->
             let d = Swap.delta ws version g mv in
             let bad =
               match mv with
               | Swap.Swap _ -> d < 0
               | Swap.Delete _ -> d <= 0
             in
             if bad then begin
               witness := Some (mv, d);
               raise Exit
             end)
       done
     with Exit -> ());
    match !witness with
    | Some (mv, d) -> Equilibrium.Violation (mv, d)
    | None -> Equilibrium.Equilibrium
  end

let moves_match version g =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  let eng = Swap_eval.create g in
  let ok = ref true in
  for v = 0 to n - 1 do
    (* every delta, deletions included *)
    iter_agent_moves ~deletions:true g v (fun mv ->
        if Swap_eval.delta eng version mv <> Swap.delta ws version g mv then
          ok := false);
    (* delta_below agrees with the oracle against an arbitrary cutoff *)
    iter_agent_moves ~deletions:true g v (fun mv ->
        let d = Swap.delta ws version g mv in
        let cutoff = (v mod 3) - 1 in
        (match Swap_eval.delta_below eng version mv ~cutoff with
        | Some d' -> if not (d' = d && d < cutoff) then ok := false
        | None -> if d < cutoff then ok := false));
    (* the three selection rules return the oracle's move and delta *)
    if Swap_eval.best_move eng version v <> Swap.best_move ws version g v then
      ok := false;
    if
      Swap_eval.first_improving_move eng version v
      <> Swap.first_improving_move ws version g v
    then ok := false;
    let seed = (17 * (Int64.to_int (Graph.hash g) land 0xffff)) + v in
    let r1 = Swap.random_improving_move (Prng.create seed) ws version g v in
    let r2 =
      Swap_eval.random_improving_move (Prng.create seed) eng version v
    in
    if r1 <> r2 then ok := false
  done;
  !ok

let suite =
  [
    qcheck ~count:160 "sum: deltas and move selection match the naive oracle"
      (gen_connected ~min_n:2 ~max_n:9)
      (moves_match Usage_cost.Sum);
    qcheck ~count:160 "max: deltas and move selection match the naive oracle"
      (gen_connected ~min_n:2 ~max_n:9)
      (moves_match Usage_cost.Max);
    qcheck ~count:120 "verdicts and witnesses match the pre-engine scan"
      (gen_connected ~min_n:2 ~max_n:8)
      (fun g ->
        Equilibrium.check_sum g = naive_verdict Usage_cost.Sum g
        && Equilibrium.check_max g = naive_verdict Usage_cost.Max g);
    qcheck ~count:80 "invalidate: engine tracks graph mutation"
      (gen_connected ~min_n:3 ~max_n:8)
      (fun g ->
        let eng = Swap_eval.create g in
        let ws = Bfs.create_workspace (Graph.n g) in
        (* warm the caches, mutate, invalidate, re-compare *)
        let _ = Swap_eval.best_move eng Usage_cost.Sum 0 in
        match Swap.first_improving_move ws Usage_cost.Sum g 0 with
        | None -> true
        | Some (mv, _) ->
          Swap.apply g mv;
          Swap_eval.invalidate eng;
          let ok = moves_match Usage_cost.Sum g in
          Swap.undo g mv;
          ok);
    case "star: every skip settled without per-move BFS" (fun () ->
        let g = Generators.star 9 in
        let eng = Swap_eval.create g in
        Telemetry.set_enabled true;
        Telemetry.reset ();
        let row_exact = Telemetry.counter "swap_eval.row_exact" in
        let fallbacks = Telemetry.counter "swap_eval.bfs_fallbacks" in
        for v = 0 to 8 do
          match Swap_eval.first_improving_move eng Usage_cost.Sum v with
          | Some _ -> Alcotest.fail "the star is a sum equilibrium"
          | None -> ()
        done;
        let e = Telemetry.counter_value row_exact in
        let f = Telemetry.counter_value fallbacks in
        Telemetry.set_enabled false;
        (* star edges are bridges, so the exact bridge path (stronger
           than a bound certificate) answers every candidate *)
        check_true "at least one exact no-BFS skip" (e >= 1);
        check_int "no fallback BFS on the star" 0 f);
    case "torus: bounds certify skips without BFS fallback" (fun () ->
        let g = Constructions.torus 2 in
        Telemetry.set_enabled true;
        Telemetry.reset ();
        let certified = Telemetry.counter "swap_eval.certified" in
        let fallbacks = Telemetry.counter "swap_eval.bfs_fallbacks" in
        check_true "torus 2 is a max equilibrium"
          (Equilibrium.is_max_equilibrium g);
        let c = Telemetry.counter_value certified in
        let f = Telemetry.counter_value fallbacks in
        Telemetry.set_enabled false;
        check_true "at least one bound-certified skip" (c >= 1);
        check_int "no fallback BFS on the torus" 0 f);
    slow_case "tree scan: <1/3 fallback ratio, >=3x fewer BFS nodes" (fun () ->
        Telemetry.set_enabled true;
        Telemetry.reset ();
        let moves = Telemetry.counter "swap_eval.moves_evaluated" in
        let fallbacks = Telemetry.counter "swap_eval.bfs_fallbacks" in
        let eng_nodes = Telemetry.counter "swap_eval.bfs_nodes" in
        let naive_nodes = Telemetry.counter "bfs.visits" in
        let n = 7 in
        Enumerate.trees n (fun g ->
            match Equilibrium.check_sum g with
            | Equilibrium.Disconnected -> Alcotest.fail "tree disconnected"
            | _ -> ());
        let m = Telemetry.counter_value moves in
        let f = Telemetry.counter_value fallbacks in
        (* both passes run the same connectivity pre-check through Bfs,
           so the engine total charges the engine pass's bfs.visits too,
           keeping the two sides in the same units (popped nodes) *)
        let en =
          Telemetry.counter_value eng_nodes + Telemetry.counter_value naive_nodes
        in
        let nn0 = Telemetry.counter_value naive_nodes in
        Enumerate.trees n (fun g -> ignore (naive_verdict Usage_cost.Sum g));
        let nn = Telemetry.counter_value naive_nodes - nn0 in
        Telemetry.set_enabled false;
        check_true "some moves were evaluated" (m > 0);
        check_true
          (Printf.sprintf "fallback ratio %d/%d below 1/3" f m)
          (3 * f < m);
        check_true
          (Printf.sprintf "engine %d vs naive %d BFS nodes: >=3x fewer" en nn)
          (3 * en <= nn));
  ]
