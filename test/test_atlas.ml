(* Atlas: crash-safe append-only content-addressed store.

   Covers the CRC-32 helper, round-trips across reopen, first-write-wins
   dedup, segment rolls, the index snapshot (used / deleted / stale tail
   replay), recovery rules (torn tail at every byte offset of the last
   record, checksum corruption), SIGKILL crash injection via the
   atlas_crash_writer helper executable, verify/compact, locking, and a
   qcheck randomized round-trip. Serve/census byte-identity with the
   atlas on vs off lives in test_atlas_identity.ml. *)

open Test_helpers

let check_str = Alcotest.(check string)
let check_str_opt = Alcotest.(check (option string))

(* ---------- temp-dir plumbing ---------- *)

let fresh_dir tag =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d =
      Filename.concat base
        (Printf.sprintf "bncg_atlas_%s_%d_%d" tag (Unix.getpid ()) i)
    in
    if Sys.file_exists d then go (i + 1) else d
  in
  go 0

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir tag f =
  let d = fresh_dir tag in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let open_exn ?readonly ?max_segment_bytes dir =
  match Atlas.open_ ?readonly ?max_segment_bytes dir with
  | Ok t -> t
  | Error m -> Alcotest.failf "Atlas.open_ %s: %s" dir m

let with_atlas ?readonly ?max_segment_bytes dir f =
  let t = open_exn ?readonly ?max_segment_bytes dir in
  Fun.protect ~finally:(fun () -> Atlas.close t) (fun () -> f t)

let populate dir kvs =
  with_atlas dir (fun t ->
      List.iter (fun (k, v) -> Atlas.add t ~key:k ~value:v) kvs)

let seg0 dir = Filename.concat dir "atlas-000000.seg"
let snap dir = Filename.concat dir "index.snap"

(* Mirror of the on-disk record framing, for tests that forge raw
   segment bytes (stale-snapshot tails, duplicate records). *)
let encode_raw ~key ~value =
  let buf = Buffer.create 64 in
  let u32 v =
    Buffer.add_char buf (Char.chr (v land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))
  in
  u32 (String.length key);
  u32 (String.length value);
  u32 (Checksum.crc32 ~crc:(Checksum.crc32 key) value);
  Buffer.add_string buf key;
  Buffer.add_string buf value;
  Buffer.contents buf

let append_raw path s =
  let oc =
    open_out_gen [ Open_binary; Open_append; Open_wronly ] 0o644 path
  in
  output_string oc s;
  close_out oc

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let rec_len k v = 12 + String.length k + String.length v

(* ---------- checksum ---------- *)

let test_crc32_vector () =
  (* the standard CRC-32 check value *)
  check_int "123456789" 0xCBF43926 (Checksum.crc32 "123456789");
  check_int "empty" 0 (Checksum.crc32 "");
  check_int "chained = concatenated"
    (Checksum.crc32 "hello world")
    (Checksum.crc32 ~crc:(Checksum.crc32 "hello ") "world");
  check_int "slice"
    (Checksum.crc32 "345")
    (Checksum.crc32 ~pos:2 ~len:3 "12345678");
  check_int "bytes agree"
    (Checksum.crc32 "xyzzy")
    (Checksum.crc32_bytes (Bytes.of_string "xyzzy"))

(* ---------- basic round trips ---------- *)

let kvs3 =
  [ ("alpha", "AAAA"); ("beta", "BBBBBBBB"); ("gamma", "CCCCCC") ]

let test_roundtrip () =
  with_dir "rt" @@ fun dir ->
  populate dir kvs3;
  with_atlas dir (fun t ->
      List.iter
        (fun (k, v) -> check_str_opt k (Some v) (Atlas.find t k))
        kvs3;
      check_str_opt "absent" None (Atlas.find t "delta");
      let s = Atlas.stats t in
      check_int "records" 3 s.Atlas.records;
      check_int "hits" 3 s.Atlas.hits;
      check_int "misses" 1 s.Atlas.misses)

let test_first_write_wins () =
  with_dir "dup" @@ fun dir ->
  with_atlas dir (fun t ->
      Atlas.add t ~key:"k" ~value:"first";
      Atlas.add t ~key:"k" ~value:"second";
      check_str_opt "in session" (Some "first") (Atlas.find t "k");
      check_int "duplicates" 1 (Atlas.stats t).Atlas.duplicates);
  with_atlas dir (fun t ->
      check_str_opt "after reopen" (Some "first") (Atlas.find t "k");
      (* re-adding a loaded key is also a duplicate *)
      Atlas.add t ~key:"k" ~value:"third";
      check_str_opt "still first" (Some "first") (Atlas.find t "k"))

let test_segment_roll () =
  with_dir "roll" @@ fun dir ->
  let kvs =
    List.init 50 (fun i ->
        (Printf.sprintf "key-%03d" i, String.make 20 (Char.chr (65 + (i mod 26)))))
  in
  with_atlas ~max_segment_bytes:128 dir (fun t ->
      List.iter (fun (k, v) -> Atlas.add t ~key:k ~value:v) kvs;
      Atlas.flush t;
      check_true "rolled" ((Atlas.stats t).Atlas.segments > 1));
  with_atlas dir (fun t ->
      List.iter
        (fun (k, v) -> check_str_opt k (Some v) (Atlas.find t k))
        kvs;
      check_int "records" 50 (Atlas.stats t).Atlas.records)

let test_oversized_record () =
  with_dir "big" @@ fun dir ->
  let big = String.make 500 'Z' in
  with_atlas ~max_segment_bytes:64 dir (fun t ->
      Atlas.add t ~key:"small1" ~value:"v1";
      Atlas.add t ~key:"big" ~value:big;
      Atlas.add t ~key:"small2" ~value:"v2";
      Atlas.flush t);
  with_atlas dir (fun t ->
      check_str_opt "small1" (Some "v1") (Atlas.find t "small1");
      check_str_opt "big" (Some big) (Atlas.find t "big");
      check_str_opt "small2" (Some "v2") (Atlas.find t "small2"))

(* ---------- snapshot ---------- *)

let test_snapshot_used () =
  with_dir "snap" @@ fun dir ->
  populate dir kvs3;
  check_true "snapshot written" (Sys.file_exists (snap dir));
  with_atlas dir (fun t ->
      check_true "snapshot used" (Atlas.stats t).Atlas.snapshot_used;
      List.iter
        (fun (k, v) -> check_str_opt k (Some v) (Atlas.find t k))
        kvs3);
  Sys.remove (snap dir);
  with_atlas dir (fun t ->
      check_false "full rescan" (Atlas.stats t).Atlas.snapshot_used;
      List.iter
        (fun (k, v) -> check_str_opt k (Some v) (Atlas.find t k))
        kvs3)

let test_snapshot_stale_tail_replay () =
  with_dir "stale" @@ fun dir ->
  populate dir kvs3;
  (* Forge appends beyond the snapshot's covered bytes, as if a writer
     crashed after the last clean close: open must replay the tail. *)
  append_raw (seg0 dir) (encode_raw ~key:"tail1" ~value:"T1");
  append_raw (seg0 dir) (encode_raw ~key:"tail2" ~value:"T2");
  with_atlas dir (fun t ->
      check_true "snapshot still used" (Atlas.stats t).Atlas.snapshot_used;
      List.iter
        (fun (k, v) -> check_str_opt k (Some v) (Atlas.find t k))
        kvs3;
      check_str_opt "tail1" (Some "T1") (Atlas.find t "tail1");
      check_str_opt "tail2" (Some "T2") (Atlas.find t "tail2"))

let test_snapshot_corrupt_discarded () =
  with_dir "snapbad" @@ fun dir ->
  populate dir kvs3;
  flip_byte (snap dir) ((Unix.stat (snap dir)).Unix.st_size - 3);
  with_atlas dir (fun t ->
      check_false "corrupt snapshot discarded"
        (Atlas.stats t).Atlas.snapshot_used;
      List.iter
        (fun (k, v) -> check_str_opt k (Some v) (Atlas.find t k))
        kvs3)

(* ---------- recovery: torn tails and corruption ---------- *)

let test_torn_tail_every_offset () =
  let last_len = rec_len "gamma" "CCCCCC" in
  let boundary =
    8 + rec_len "alpha" "AAAA" + rec_len "beta" "BBBBBBBB"
  in
  for j = 0 to last_len - 1 do
    with_dir (Printf.sprintf "torn%d" j) @@ fun dir ->
    populate dir kvs3;
    Unix.truncate (seg0 dir) (boundary + j);
    (* the stale snapshot now claims more bytes than exist: discarded *)
    with_atlas dir (fun t ->
        let s = Atlas.stats t in
        check_false "snapshot discarded" s.Atlas.snapshot_used;
        check_int "torn" (if j = 0 then 0 else 1) s.Atlas.torn_records;
        check_str_opt "alpha" (Some "AAAA") (Atlas.find t "alpha");
        check_str_opt "beta" (Some "BBBBBBBB") (Atlas.find t "beta");
        check_str_opt "gamma gone" None (Atlas.find t "gamma"));
    (* the writer truncated back to the last well-framed boundary *)
    check_int "truncated" boundary ((Unix.stat (seg0 dir)).Unix.st_size);
    with_atlas dir (fun t ->
        check_int "clean reopen" 0 (Atlas.stats t).Atlas.torn_records;
        check_str_opt "alpha" (Some "AAAA") (Atlas.find t "alpha"))
  done

let test_corrupt_value_byte () =
  with_dir "corv" @@ fun dir ->
  populate dir kvs3;
  Sys.remove (snap dir);
  (* flip a byte inside beta's value *)
  flip_byte (seg0 dir) (8 + rec_len "alpha" "AAAA" + 12 + 4 + 2);
  with_atlas dir (fun t ->
      let s = Atlas.stats t in
      check_int "corrupt" 1 s.Atlas.corrupt_records;
      check_int "torn" 0 s.Atlas.torn_records;
      check_str_opt "alpha survives" (Some "AAAA") (Atlas.find t "alpha");
      check_str_opt "beta rejected" None (Atlas.find t "beta");
      (* scanning continued past the damaged record *)
      check_str_opt "gamma survives" (Some "CCCCCC") (Atlas.find t "gamma"));
  match Atlas.verify dir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check_int "v_records" 2 r.Atlas.v_records;
      check_int "v_corrupt" 1 r.Atlas.v_corrupt;
      check_int "v_torn" 0 r.Atlas.v_torn

let test_corrupt_crc_byte () =
  with_dir "corc" @@ fun dir ->
  populate dir kvs3;
  Sys.remove (snap dir);
  (* flip a byte of beta's stored crc field *)
  flip_byte (seg0 dir) (8 + rec_len "alpha" "AAAA" + 9);
  with_atlas dir (fun t ->
      check_int "corrupt" 1 (Atlas.stats t).Atlas.corrupt_records;
      check_str_opt "beta rejected" None (Atlas.find t "beta");
      check_str_opt "gamma survives" (Some "CCCCCC") (Atlas.find t "gamma"))

(* ---------- SIGKILL crash injection ---------- *)

(* mirrors atlas_crash_writer.value_of *)
let crash_value i =
  Printf.sprintf "value-%06d-%s" i (String.make (i mod 40) 'x')

let test_sigkill_mid_append () =
  with_dir "kill" @@ fun dir ->
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "atlas_crash_writer.exe"
  in
  let flush_at = 200 in
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process exe
      [| exe; dir; string_of_int flush_at; "4096" |]
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let line = try input_line ic with End_of_file -> "<eof>" in
  check_str "writer reached durable prefix" "ready" line;
  (* let it race ahead so the kill lands mid-append *)
  Unix.sleepf 0.02;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  close_in ic;
  (* the kill released the writer lock; reopen and audit *)
  with_atlas dir (fun t ->
      let s = Atlas.stats t in
      check_true "at most one torn record" (s.Atlas.torn_records <= 1);
      check_int "no corrupt records" 0 s.Atlas.corrupt_records;
      (* every record up to the first gap must be present with the exact
         deterministic value (appends are ordered, so the on-disk state
         is a contiguous prefix plus at most one torn tail) *)
      let m = ref 0 in
      let stop = ref false in
      while not !stop do
        match Atlas.find t (Printf.sprintf "crash:%06d" !m) with
        | Some v ->
            check_str (Printf.sprintf "value %d" !m) (crash_value !m) v;
            incr m
        | None -> stop := true
      done;
      check_true
        (Printf.sprintf "flushed prefix durable (%d >= %d)" !m (flush_at + 1))
        (!m >= flush_at + 1);
      check_int "index is exactly the prefix" !m s.Atlas.records);
  match Atlas.verify dir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check_int "verify clean after repair" 0 r.Atlas.v_torn;
      check_int "verify no corruption" 0 r.Atlas.v_corrupt

(* ---------- verify / compact ---------- *)

let test_verify_healthy () =
  with_dir "vh" @@ fun dir ->
  populate dir kvs3;
  match Atlas.verify dir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check_int "segments" 1 r.Atlas.v_segments;
      check_int "records" 3 r.Atlas.v_records;
      check_int "live" 3 r.Atlas.v_live;
      check_int "torn" 0 r.Atlas.v_torn;
      check_int "corrupt" 0 r.Atlas.v_corrupt;
      check_int "bytes" ((Unix.stat (seg0 dir)).Unix.st_size) r.Atlas.v_bytes

let test_compact () =
  with_dir "cp" @@ fun dir ->
  populate dir kvs3;
  Sys.remove (snap dir);
  (* forge a duplicate (first write must win through compaction) and
     corrupt one record (must be dropped) *)
  append_raw (seg0 dir) (encode_raw ~key:"alpha" ~value:"ZZZZ");
  flip_byte (seg0 dir) (8 + rec_len "alpha" "AAAA" + 12 + 4 + 2);
  (match Atlas.compact dir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check_int "records before (valid)" 3 r.Atlas.c_records_before;
      check_int "live" 2 r.Atlas.c_live;
      check_int "one old segment" 1 r.Atlas.c_segments_before;
      check_true "fewer bytes"
        (r.Atlas.c_bytes_after < r.Atlas.c_bytes_before));
  check_false "old segment deleted" (Sys.file_exists (seg0 dir));
  (match Atlas.verify dir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check_int "post records" 2 r.Atlas.v_records;
      check_int "post live" 2 r.Atlas.v_live;
      check_int "post corrupt" 0 r.Atlas.v_corrupt);
  with_atlas dir (fun t ->
      check_str_opt "first write survived compaction" (Some "AAAA")
        (Atlas.find t "alpha");
      check_str_opt "corrupt beta dropped" None (Atlas.find t "beta");
      check_str_opt "gamma kept" (Some "CCCCCC") (Atlas.find t "gamma"))

(* ---------- locking / handle misuse ---------- *)

let test_writer_lock () =
  with_dir "lock" @@ fun dir ->
  with_atlas dir (fun t ->
      Atlas.add t ~key:"k" ~value:"v";
      (match Atlas.open_ dir with
      | Ok t2 ->
          Atlas.close t2;
          Alcotest.fail "second writer must be rejected"
      | Error _ -> ());
      match Atlas.open_ ~readonly:true dir with
      | Ok ro ->
          (* read-only sees the flushed state only after a flush *)
          Atlas.close ro
      | Error m -> Alcotest.failf "readonly open: %s" m);
  (* lock released by close *)
  with_atlas dir (fun t -> check_str_opt "k" (Some "v") (Atlas.find t "k"))

let test_readonly_add_raises () =
  with_dir "ro" @@ fun dir ->
  populate dir kvs3;
  with_atlas ~readonly:true dir (fun t ->
      check_str_opt "finds" (Some "AAAA") (Atlas.find t "alpha");
      match Atlas.add t ~key:"x" ~value:"y" with
      | () -> Alcotest.fail "read-only add must raise"
      | exception Invalid_argument _ -> ())

let test_missing_dir_readonly () =
  let dir = fresh_dir "missing" in
  match Atlas.open_ ~readonly:true dir with
  | Ok t ->
      Atlas.close t;
      Alcotest.fail "read-only open of a missing dir must fail"
  | Error _ -> ()

(* ---------- qcheck randomized round-trip ---------- *)

let gen_kvs =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (pair
         (string_size ~gen:printable (int_range 0 24))
         (string_size (int_range 0 64))))

let prop_roundtrip kvs =
  let dir = fresh_dir "qc" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* model: first write wins *)
  let model = Hashtbl.create 64 in
  List.iter
    (fun (k, v) -> if not (Hashtbl.mem model k) then Hashtbl.add model k v)
    kvs;
  populate dir kvs;
  (* exercise both the snapshot path and the rescan path *)
  let check_all t =
    Hashtbl.fold
      (fun k v acc -> acc && Atlas.find t k = Some v)
      model true
    && Atlas.find t "\x00never-a-key\x01" = None
    && (Atlas.stats t).Atlas.records = Hashtbl.length model
  in
  let t1 = open_exn ~max_segment_bytes:256 dir in
  let ok1 = check_all t1 in
  Atlas.close t1;
  Sys.remove (snap dir);
  let t2 = open_exn dir in
  let ok2 = check_all t2 in
  Atlas.close t2;
  ok1 && ok2

let suite =
  [
    case "crc32: known vectors, chaining, slices" test_crc32_vector;
    case "roundtrip across reopen + stats" test_roundtrip;
    case "first write wins (session and disk)" test_first_write_wins;
    case "segment roll at max_segment_bytes" test_segment_roll;
    case "oversized record gets its own segment" test_oversized_record;
    case "snapshot used on reopen, rescan without" test_snapshot_used;
    case "stale snapshot replays appended tail" test_snapshot_stale_tail_replay;
    case "corrupt snapshot discarded" test_snapshot_corrupt_discarded;
    case "torn tail at every byte offset of last record"
      test_torn_tail_every_offset;
    case "corrupt value byte: skipped, scan continues" test_corrupt_value_byte;
    case "corrupt crc byte: skipped" test_corrupt_crc_byte;
    case "SIGKILL mid-append: contiguous prefix recovered"
      test_sigkill_mid_append;
    case "verify: healthy directory" test_verify_healthy;
    case "compact: drops duplicates and corrupt records" test_compact;
    case "writer lock excludes second writer" test_writer_lock;
    case "read-only add raises" test_readonly_add_raises;
    case "read-only open of missing dir fails" test_missing_dir_readonly;
    qcheck ~count:60 "qcheck: randomized batch roundtrip" gen_kvs
      prop_roundtrip;
  ]
