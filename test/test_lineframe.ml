(* Lineframe: the serving layer's incremental newline framer. The core
   contract is chunking-invariance — the same byte stream split at any
   boundaries (including mid-UTF-8 sequence and mid-JSON-escape) must
   produce the same line sequence — plus the overflow policy the server
   leans on: a complete over-long line still frames (the caller enforces
   size policy), only an unterminated buffer past the limit reports
   [`Overflow]. *)

open Test_helpers

let check_str = Alcotest.(check string)

let drain t =
  let rec go acc =
    match Lineframe.next t with
    | `Line l -> go (l :: acc)
    | `More -> List.rev acc
    | `Overflow -> Alcotest.fail "unexpected overflow"
  in
  go []

let test_basic () =
  let t = Lineframe.create ~max_line:1024 () in
  Lineframe.feed_string t "alpha\nbeta\ngam";
  check_true "two lines" (drain t = [ "alpha"; "beta" ]);
  check_int "partial retained" 3 (Lineframe.pending t);
  Lineframe.feed_string t "ma\n";
  check_true "completed" (drain t = [ "gamma" ])

let test_crlf_and_blank () =
  let t = Lineframe.create ~max_line:1024 () in
  Lineframe.feed_string t "a\r\n\nb\n";
  (* one CR stripped, blank line preserved as "" *)
  check_true "crlf" (drain t = [ "a"; ""; "b" ])

let test_empty_feed () =
  let t = Lineframe.create ~max_line:64 () in
  Lineframe.feed_string t "";
  check_true "nothing" (drain t = []);
  check_int "no pending" 0 (Lineframe.pending t)

let test_overflow_without_newline () =
  let t = Lineframe.create ~max_line:8 () in
  Lineframe.feed_string t "0123456789";
  (match Lineframe.next t with
  | `Overflow -> ()
  | `Line _ | `More -> Alcotest.fail "expected overflow");
  (* overflow is sticky until reset *)
  (match Lineframe.next t with
  | `Overflow -> ()
  | _ -> Alcotest.fail "overflow should persist");
  Lineframe.reset t;
  Lineframe.feed_string t "ok\n";
  check_true "usable after reset" (drain t = [ "ok" ])

let test_overlong_line_with_newline_frames () =
  (* the newline arrives in the same buffer as the overrun: the framer
     must deliver the complete line and keep the connection's framing —
     the server replies too_large but stays in sync *)
  let t = Lineframe.create ~max_line:8 () in
  Lineframe.feed_string t "0123456789ab\nnext\n";
  check_true "overlong line still frames"
    (drain t = [ "0123456789ab"; "next" ])

let test_torn_utf8_and_escape () =
  (* "é" = C3 A9 split between feeds; a JSON "\n" escape split between
     its backslash and 'n' — byte framing must not care *)
  let t = Lineframe.create ~max_line:1024 () in
  Lineframe.feed_string t "caf\xc3";
  check_true "no line yet" (drain t = []);
  Lineframe.feed_string t "\xa9\n{\"s\":\"a\\";
  check_true "utf8 line" (drain t = [ "caf\xc3\xa9" ]);
  Lineframe.feed_string t "nb\"}\n";
  check_true "escape line" (drain t = [ "{\"s\":\"a\\nb\"}" ])

let test_feed_offsets () =
  let buf = Bytes.of_string "XXhello\nYY" in
  let t = Lineframe.create ~max_line:64 () in
  Lineframe.feed t buf 2 6;
  Lineframe.feed t buf 8 0;
  check_true "offset feed" (drain t = [ "hello" ])

(* chunking invariance: a fixed corpus of lines (including empty lines,
   long lines, UTF-8, JSON escapes, CRLF) serialized and split at seeded
   random boundaries must always reframe to the same sequence *)
let test_chunk_split_fuzz () =
  let corpus =
    [
      "plain";
      "";
      "{\"id\":1,\"method\":\"check\",\"params\":{\"graph6\":\"H??@eOW\"}}";
      "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80";
      "esc \\\" \\n \\u00e9 tail";
      String.make 300 'x';
      "last";
    ]
  in
  let stream =
    String.concat ""
      (List.mapi
         (fun i l -> l ^ if i mod 3 = 1 then "\r\n" else "\n")
         corpus)
  in
  let rng = Prng.create 0xf4a3 in
  for _round = 1 to 200 do
    let t = Lineframe.create ~max_line:4096 () in
    let got = ref [] in
    let pos = ref 0 in
    let len = String.length stream in
    while !pos < len do
      let k = 1 + Prng.int rng (min 17 (len - !pos)) in
      Lineframe.feed_string t (String.sub stream !pos k);
      pos := !pos + k;
      got := List.rev_append (drain t) !got
    done;
    let got = List.rev !got in
    if got <> corpus then
      Alcotest.failf "round reframed %d lines (want %d): %s"
        (List.length got) (List.length corpus)
        (String.concat "|" got)
  done

let test_byte_at_a_time () =
  let stream = "a\nbb\r\n\nccc\n" in
  let t = Lineframe.create ~max_line:16 () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Lineframe.feed_string t (String.make 1 ch);
      got := List.rev_append (drain t) !got)
    stream;
  check_true "byte-at-a-time" (List.rev !got = [ "a"; "bb"; ""; "ccc" ])

let test_rejects_bad_args () =
  Alcotest.check_raises "max_line < 1"
    (Invalid_argument "Lineframe.create: max_line < 1") (fun () ->
      ignore (Lineframe.create ~max_line:0 ()));
  let t = Lineframe.create ~max_line:8 () in
  Alcotest.check_raises "bad feed range"
    (Invalid_argument "Lineframe.feed: out-of-bounds slice") (fun () ->
      Lineframe.feed t (Bytes.create 4) 2 8)

let suite =
  [
    case "lines split across feeds" test_basic;
    case "crlf stripped, blank kept" test_crlf_and_blank;
    case "empty feed" test_empty_feed;
    case "overflow without newline is sticky" test_overflow_without_newline;
    case "over-long line with newline still frames"
      test_overlong_line_with_newline_frames;
    case "torn utf-8 and torn escapes reframe" test_torn_utf8_and_escape;
    case "feed honors offsets" test_feed_offsets;
    case "seeded chunk-split fuzz" test_chunk_split_fuzz;
    case "byte-at-a-time" test_byte_at_a_time;
    case "rejects bad arguments" test_rejects_bad_args;
  ]
