open Test_helpers

let test_known_encodings () =
  (* hand-computed reference strings for the format *)
  check_true "K1" (Graph6.encode (Generators.complete 1) = "@");
  (* empty graph on 2 vertices: header 'A', one all-zero bit group '?' *)
  check_true "empty2" (Graph6.encode (Graph.create 2) = "A?");
  (* K2: single bit set -> group 100000 = 32 -> '_' *)
  check_true "K2" (Graph6.encode (Generators.complete 2) = "A_");
  (* C5 labeled 0-1-2-3-4-0: bits 101001 100100 -> 'h' 'c' *)
  check_true "C5" (Graph6.encode (Generators.cycle 5) = "Dhc");
  (* nauty's documented C5 string decodes to an isomorphic relabeling *)
  check_true "DqK is C5 relabeled"
    (Canon.isomorphic (Graph6.decode "DqK") (Generators.cycle 5))

let test_roundtrip_families () =
  List.iter
    (fun g ->
      let decoded = Graph6.decode (Graph6.encode g) in
      check_true "roundtrip" (Graph.equal g decoded))
    [
      Graph.create 0;
      Graph.create 1;
      Generators.path 7;
      Generators.cycle 9;
      Generators.star 12;
      Generators.complete 8;
      Generators.petersen ();
      Generators.hypercube 4;
      Constructions.theorem5_graph;
    ]

let test_large_n_header () =
  (* n = 100 > 62 exercises the extended header *)
  let g = Generators.cycle 100 in
  let s = Graph6.encode g in
  check_true "tilde header" (s.[0] = '~');
  check_true "roundtrip" (Graph.equal g (Graph6.decode s))

let test_decode_rejects_garbage () =
  Alcotest.check_raises "empty" (Invalid_argument "Graph6.decode: empty") (fun () ->
      ignore (Graph6.decode ""));
  Alcotest.check_raises "truncated" (Invalid_argument "Graph6.decode: wrong length")
    (fun () -> ignore (Graph6.decode "D"));
  Alcotest.check_raises "bad byte" (Invalid_argument "Graph6.decode: bad byte")
    (fun () -> ignore (Graph6.decode "\x01"))

let test_decode_result_matches_decode () =
  (* agreement with the raising decoder on valid and invalid inputs *)
  List.iter
    (fun s ->
      match (Graph6.decode_result s, Graph6.decode s) with
      | Ok a, b -> check_true "same graph" (Graph.equal a b)
      | Error _, _ -> Alcotest.fail "decode_result rejected a valid string"
      | exception Invalid_argument _ ->
        check_true "both reject" (Result.is_error (Graph6.decode_result s)))
    [
      "@"; "A_"; "Dhc"; "DqK";
      Graph6.encode (Generators.petersen ());
      Graph6.encode (Generators.cycle 100);
      ""; "D"; "\x01"; "~~~"; "~"; "~??"; "Dhcc"; "Dh";
    ]

(* 500 seeded adversarial strings: random bytes, truncations/extensions of
   valid encodings, and single-byte corruptions. decode_result must stay
   total (never raise) and accept a string iff the raising decoder does. *)
let test_decode_result_fuzz () =
  let rng = Prng.create 0xfeed in
  let valid =
    [
      Graph6.encode (Generators.star 9);
      Graph6.encode (Generators.petersen ());
      Graph6.encode (Generators.cycle 64);
      Graph6.encode (Graph.create 0);
    ]
  in
  let random_string () =
    let len = Prng.int rng 40 in
    String.init len (fun _ -> Char.chr (Prng.int rng 256))
  in
  let mutate s =
    match (Prng.int rng 3, String.length s) with
    | _, 0 -> random_string ()
    | 0, len -> String.sub s 0 (Prng.int rng len) (* truncate *)
    | 1, _ -> s ^ random_string () (* extend *)
    | _, len ->
      (* corrupt one byte *)
      let b = Bytes.of_string s in
      Bytes.set b (Prng.int rng len) (Char.chr (Prng.int rng 256));
      Bytes.to_string b
  in
  for _ = 1 to 500 do
    let s =
      if Prng.bool rng then random_string ()
      else mutate (List.nth valid (Prng.int rng (List.length valid)))
    in
    let total =
      match Graph6.decode_result s with
      | Ok g -> Graph.equal g (Graph6.decode s)
      | Error _ -> (
        match Graph6.decode s with
        | _ -> false (* decode accepted what decode_result rejected *)
        | exception Invalid_argument _ -> true)
      | exception _ -> false
    in
    if not total then
      Alcotest.failf "decode_result not total/consistent on %S" s
  done

let test_roundtrip_random =
  qcheck ~count:200 "random roundtrip" (gen_any_graph ~min_n:0 ~max_n:30) (fun g ->
      Graph.equal g (Graph6.decode (Graph6.encode g)))

let test_encoding_is_injective =
  qcheck ~count:100 "distinct graphs get distinct strings"
    QCheck2.Gen.(pair (gen_any_graph ~min_n:3 ~max_n:12) (gen_any_graph ~min_n:3 ~max_n:12))
    (fun (a, b) ->
      if Graph.n a = Graph.n b && not (Graph.equal a b) then
        Graph6.encode a <> Graph6.encode b
      else true)

let suite =
  [
    case "known encodings" test_known_encodings;
    case "roundtrip families" test_roundtrip_families;
    case "extended header (n > 62)" test_large_n_header;
    case "decode rejects garbage" test_decode_rejects_garbage;
    case "decode_result agrees with decode" test_decode_result_matches_decode;
    case "decode_result fuzz (500 adversarial strings)" test_decode_result_fuzz;
    test_roundtrip_random;
    test_encoding_is_injective;
  ]
