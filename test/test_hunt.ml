open Test_helpers

let test_violating_agents () =
  check_int "star has none" 0 (Hunt.violating_agents Game.Sum (Generators.star 7));
  check_true "path has many" (Hunt.violating_agents Game.Sum (Generators.path 7) > 0);
  check_int "torus max has none" 0
    (Hunt.violating_agents Game.Max (Constructions.torus 3));
  (* max version counts non-critical deletions too *)
  let chorded = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (0, 2) ] in
  check_true "chorded C5 violates max" (Hunt.violating_agents Game.Max chorded > 0)

let test_violations_zero_iff_equilibrium =
  qcheck ~count:40 "violating_agents = 0 iff sum equilibrium"
    (gen_connected ~min_n:3 ~max_n:10) (fun g ->
      (Hunt.violating_agents Game.Sum g = 0) = Equilibrium.is_sum_equilibrium g)

let test_hunt_finds_diameter3_at_8 () =
  let rng = Prng.create 108 in
  let r = Hunt.hunt_sum_diameter rng ~n:8 ~target_diameter:3 ~steps:4000 () in
  match r.Hunt.found with
  | Some g ->
    check_true "verified" (Equilibrium.is_sum_equilibrium g);
    check_true "diameter >= 3" (Option.get (Metrics.diameter g) >= 3)
  | None -> Alcotest.fail "hunt should find the n=8 witness"

let test_hunt_respects_impossible_target () =
  (* no diameter-3 sum equilibrium exists at n = 6 (exhaustive census) *)
  let rng = Prng.create 1 in
  let r = Hunt.run rng { (Hunt.default_config ~n:6 ~target_diameter:3 ()) with Hunt.steps = 600; restarts = 1 } in
  check_true "cannot find the impossible" (r.Hunt.found = None);
  check_true "still evaluated candidates" (r.Hunt.evaluated > 0)

let test_found_graphs_always_verified () =
  (* whatever the hunt returns must be a genuine equilibrium at target *)
  let rng = Prng.create 7 in
  List.iter
    (fun n ->
      let r = Hunt.hunt_sum_diameter rng ~n ~target_diameter:2 ~steps:500 () in
      match r.Hunt.found with
      | Some g ->
        check_true "verified equilibrium" (Equilibrium.is_sum_equilibrium g);
        check_true "diameter target met" (Option.get (Metrics.diameter g) >= 2);
        check_int "right size" n (Graph.n g)
      | None -> ())
    [ 6; 8 ]

let test_minimal_witness_properties () =
  let g = Constructions.sum_diameter3_minimal in
  check_int "n" 8 (Graph.n g);
  check_int "m" 12 (Graph.m g);
  Alcotest.(check (option int)) "diameter" (Some 3) (Metrics.diameter g);
  check_true "sum equilibrium" (Equilibrium.is_sum_equilibrium g);
  check_int "automorphisms" 2 (Canon.automorphism_count g)

let suite =
  [
    case "violating agents" test_violating_agents;
    test_violations_zero_iff_equilibrium;
    slow_case "finds the n=8 diameter-3 witness" test_hunt_finds_diameter3_at_8;
    case "cannot find the impossible" test_hunt_respects_impossible_target;
    case "finds are verified" test_found_graphs_always_verified;
    case "minimal witness properties" test_minimal_witness_properties;
  ]
