(* Poller: readiness multiplexing over pipes — backend-agnostic (these
   run against epoll on Linux CI, poll elsewhere; the semantics must be
   identical), level-triggering, interest changes, removal, and the
   one-shot waits that replaced Unix.select timeouts. *)

open Test_helpers

let with_pipe f =
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let with_poller f =
  let p = Poller.create () in
  Fun.protect ~finally:(fun () -> Poller.close p) (fun () -> f p)

let write_byte fd = ignore (Unix.write_substring fd "x" 0 1)

let drain fd =
  let b = Bytes.create 16 in
  ignore (Unix.read fd b 0 16)

let test_backend_reported () =
  with_poller @@ fun p ->
  let b = Poller.backend p in
  check_true "known backend" (b = "epoll" || b = "poll");
  check_true "matches probe" (b = Poller.available_backend ())

let test_timeout_and_readiness () =
  with_pipe @@ fun r w ->
  with_poller @@ fun p ->
  Poller.add p r ~read:true ~write:false;
  check_int "nothing ready" 0 (Poller.wait p ~timeout_ms:0);
  write_byte w;
  check_int "one ready" 1 (Poller.wait p ~timeout_ms:1000);
  check_true "right fd" (Poller.ready_fd p 0 = r);
  check_true "readable" (Poller.ready_read p 0);
  check_false "not writable" (Poller.ready_write p 0);
  (* level-triggered: unread input re-reports *)
  check_int "still ready" 1 (Poller.wait p ~timeout_ms:0);
  drain r;
  check_int "drained" 0 (Poller.wait p ~timeout_ms:0)

let test_write_interest_and_modify () =
  with_pipe @@ fun r w ->
  with_poller @@ fun p ->
  Poller.add p w ~read:false ~write:true;
  check_int "empty pipe writable" 1 (Poller.wait p ~timeout_ms:1000);
  check_true "writable" (Poller.ready_write p 0);
  Poller.modify p w ~read:false ~write:false;
  check_int "no interest, no events" 0 (Poller.wait p ~timeout_ms:0);
  Poller.modify p w ~read:false ~write:true;
  check_int "interest restored" 1 (Poller.wait p ~timeout_ms:1000);
  ignore r

let test_remove () =
  with_pipe @@ fun r w ->
  with_poller @@ fun p ->
  Poller.add p r ~read:true ~write:false;
  write_byte w;
  check_int "ready" 1 (Poller.wait p ~timeout_ms:1000);
  Poller.remove p r;
  check_int "removed fd silent" 0 (Poller.wait p ~timeout_ms:0);
  (* remove of a never-added fd is tolerated *)
  Poller.remove p w;
  (* re-adding after remove works *)
  Poller.add p r ~read:true ~write:false;
  check_int "re-added" 1 (Poller.wait p ~timeout_ms:1000)

let test_multiple_fds () =
  let pipes = Array.init 5 (fun _ -> Unix.pipe ~cloexec:true ()) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun (r, w) ->
          (try Unix.close r with Unix.Unix_error _ -> ());
          try Unix.close w with Unix.Unix_error _ -> ())
        pipes)
  @@ fun () ->
  with_poller @@ fun p ->
  Array.iter (fun (r, _) -> Poller.add p r ~read:true ~write:false) pipes;
  write_byte (snd pipes.(1));
  write_byte (snd pipes.(3));
  let n = Poller.wait p ~timeout_ms:1000 in
  check_int "two ready" 2 n;
  let got = List.sort compare (List.init n (fun i -> Poller.ready_fd p i)) in
  let want = List.sort compare [ fst pipes.(1); fst pipes.(3) ] in
  check_true "the right two" (got = want)

let test_hangup_reads_as_readable () =
  with_pipe @@ fun r w ->
  with_poller @@ fun p ->
  Poller.add p r ~read:true ~write:false;
  write_byte w;
  Unix.close w;
  (* peer gone with data still buffered: readable now, and still
     readable after the drain (EOF is also "read won't block") *)
  check_true "readable with buffered data" (Poller.wait p ~timeout_ms:1000 = 1);
  check_true "read bit" (Poller.ready_read p 0);
  drain r;
  check_true "eof still readable" (Poller.wait p ~timeout_ms:1000 = 1);
  let b = Bytes.create 4 in
  check_int "read sees eof" 0 (Unix.read r b 0 4)

let test_one_shot_waits () =
  with_pipe @@ fun r w ->
  check_false "quiet pipe times out" (Poller.wait_readable r 0.05);
  write_byte w;
  check_true "byte arrives" (Poller.wait_readable r 1.0);
  check_true "pipe writable" (Poller.wait_writable w 1.0)

let test_rejects_bad_args () =
  Alcotest.check_raises "max_events 0"
    (Invalid_argument "Poller.create: max_events < 1") (fun () ->
      ignore (Poller.create ~max_events:0 ()));
  with_poller @@ fun p ->
  Alcotest.check_raises "ready index range"
    (Invalid_argument "Poller: ready index out of range") (fun () ->
      ignore (Poller.ready_fd p 0))

let suite =
  [
    case "backend is reported" test_backend_reported;
    case "timeout, readiness, level-trigger" test_timeout_and_readiness;
    case "write interest and modify" test_write_interest_and_modify;
    case "remove deregisters" test_remove;
    case "multiplexes many fds" test_multiple_fds;
    case "hangup reports readable" test_hangup_reads_as_readable;
    case "one-shot waits replace select" test_one_shot_waits;
    case "rejects bad arguments" test_rejects_bad_args;
  ]
