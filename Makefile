# Convenience targets; the source of truth is dune.

.PHONY: all build test bench bench-json bench-compare bench-baseline census-dist scale-smoke verify clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# trajectory snapshot: compare BENCH_*.json files across PRs
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_$(shell git rev-parse --short HEAD).json

# local version of the CI perf gate (tight default tolerance; CI passes
# a wider one because hosted runners are noisier)
bench-compare:
	dune exec bench/main.exe -- --quick --json /tmp/bncg_bench_fresh.json
	dune exec bench/loadgen.exe -- --json /tmp/bncg_loadgen_fresh.json
	dune exec bench/loadgen.exe -- --requests 100000 --pipeline 64 --conns 8 \
	  --json /tmp/bncg_pipelined_fresh.json
	rm -rf /tmp/bncg_atlas_bench
	dune exec bench/loadgen.exe -- --atlas /tmp/bncg_atlas_bench \
	  --json /tmp/bncg_atlas_fresh.json
	dune exec bench/scaledyn.exe -- --quick --json /tmp/bncg_scaledyn_fresh.json
	dune exec bench/orderlybench.exe -- --quick --json /tmp/bncg_orderly_fresh.json
	dune exec bench/compare.exe -- --baseline BENCH_baseline.json \
	  /tmp/bncg_bench_fresh.json /tmp/bncg_loadgen_fresh.json \
	  /tmp/bncg_pipelined_fresh.json /tmp/bncg_atlas_fresh.json \
	  /tmp/bncg_scaledyn_fresh.json /tmp/bncg_orderly_fresh.json

# refresh the committed baseline after an intentional perf change
bench-baseline:
	dune exec bench/main.exe -- --quick --json /tmp/bncg_bench_fresh.json
	dune exec bench/loadgen.exe -- --json /tmp/bncg_loadgen_fresh.json
	dune exec bench/loadgen.exe -- --requests 100000 --pipeline 64 --conns 8 \
	  --json /tmp/bncg_pipelined_fresh.json
	rm -rf /tmp/bncg_atlas_bench
	dune exec bench/loadgen.exe -- --atlas /tmp/bncg_atlas_bench \
	  --json /tmp/bncg_atlas_fresh.json
	dune exec bench/scaledyn.exe -- --quick --json /tmp/bncg_scaledyn_fresh.json
	dune exec bench/orderlybench.exe -- --quick --json /tmp/bncg_orderly_fresh.json
	dune exec bench/compare.exe -- --merge BENCH_baseline.json \
	  /tmp/bncg_bench_fresh.json /tmp/bncg_loadgen_fresh.json \
	  /tmp/bncg_pipelined_fresh.json /tmp/bncg_atlas_fresh.json \
	  /tmp/bncg_scaledyn_fresh.json /tmp/bncg_orderly_fresh.json

# distributed-census acceptance gate: healthy / flaky / crash / resume
# phases over real sockets, each gated on byte-identity with the
# sequential census
census-dist:
	dune exec bench/distcensus.exe

# large-n sampled dynamics smoke: a bounded n = 10^5 BA run that must
# print a verdict and certify nonzero candidate skips (the CI scale job
# runs the same command)
scale-smoke:
	dune exec bin/main.exe -- dynamics --engine scale --gen ba -n 100000 \
	  --seed 7 --max-rounds 24 --stats-json /tmp/bncg_scale_stats.json

# the tier-1 gate plus a quick bench smoke run with JSON output
verify: build
	dune runtest
	dune exec bench/main.exe -- --quick --json /tmp/bncg_bench_quick.json

clean:
	dune clean
