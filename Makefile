# Convenience targets; the source of truth is dune.

.PHONY: all build test bench bench-json verify clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# trajectory snapshot: compare BENCH_*.json files across PRs
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_$(shell git rev-parse --short HEAD).json

# the tier-1 gate plus a quick bench smoke run with JSON output
verify: build
	dune runtest
	dune exec bench/main.exe -- --quick --json /tmp/bncg_bench_quick.json

clean:
	dune clean
