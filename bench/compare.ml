(* CI perf-regression gate: diff fresh benchmark JSON against a committed
   baseline and fail when any kernel slowed past the tolerance.

     compare --baseline BENCH_baseline.json [options] FRESH.json...
     compare --merge OUT.json FILE.json...

   Rows are the {"benchmark": NAME, "ns_per_run": FLOAT|null} objects
   emitted by `bench --json` and `loadgen --json`; several fresh files
   are concatenated before diffing, so the gate covers the kernel suite
   and the serving loadgen in one call.

   Options:
     --tolerance F   allowed slowdown fraction (default 0.25 = +25%).
                     CI passes a wider value than the default because
                     hosted runners are noisier than the machine that
                     produced the baseline.
     --min-ns F      ignore baseline rows faster than F ns (default 1000):
                     sub-microsecond kernels are dominated by harness
                     jitter and would make the gate flaky.

   Exit status: 0 when no kernel regressed, 1 on regression, 2 on usage
   or parse errors. Rows missing on either side are reported but never
   fail the gate — benchmarks come and go across PRs; refresh the
   baseline (see README) when that drift gets noisy. *)

let read_file path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with Sys_error msg ->
    Printf.eprintf "compare: %s\n" msg;
    exit 2

(* name -> ns (None for null rows, i.e. kernels that failed to measure) *)
let read_rows path =
  match Jsonx.parse (read_file path) with
  | Error msg ->
    Printf.eprintf "compare: %s: %s\n" path msg;
    exit 2
  | Ok (Jsonx.List items) ->
    List.filter_map
      (fun item ->
        match Jsonx.member "benchmark" item with
        | None -> None
        | Some name_j -> (
          match Jsonx.to_str name_j with
          | None -> None
          | Some name ->
            let ns =
              match Jsonx.member "ns_per_run" item with
              | Some (Jsonx.Float f) -> Some f
              | Some (Jsonx.Int i) -> Some (float_of_int i)
              | _ -> None
            in
            Some (name, ns)))
      items
  | Ok _ ->
    Printf.eprintf "compare: %s: expected a JSON array of benchmark rows\n"
      path;
    exit 2

let write_rows path rows =
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, ns) ->
      let value =
        match ns with None -> "null" | Some f -> Printf.sprintf "%.3f" f
      in
      Printf.fprintf oc "  {\"benchmark\": %S, \"ns_per_run\": %s}%s\n" name
        value
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc

let pp_ns f =
  if f >= 1e9 then Printf.sprintf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2f us" (f /. 1e3)
  else Printf.sprintf "%.0f ns" f

let compare_rows ~tolerance ~min_ns baseline fresh =
  let regressions = ref 0 in
  let compared = ref 0 in
  let skipped = ref 0 in
  let missing = ref 0 in
  List.iter
    (fun (name, base_ns) ->
      match base_ns with
      | None -> incr skipped
      | Some b when b < min_ns -> incr skipped
      | Some b -> (
        match List.assoc_opt name fresh with
        | None | Some None ->
          incr missing;
          Printf.printf "  missing   %-52s (baseline %s)\n" name (pp_ns b)
        | Some (Some f) ->
          incr compared;
          let change = (f -. b) /. b in
          if change > tolerance then begin
            incr regressions;
            Printf.printf "  REGRESSED %-52s %s -> %s  (%+.1f%%, tolerance %+.0f%%)\n"
              name (pp_ns b) (pp_ns f) (100. *. change) (100. *. tolerance)
          end
          else
            Printf.printf "  ok        %-52s %s -> %s  (%+.1f%%)\n" name
              (pp_ns b) (pp_ns f) (100. *. change)))
    baseline;
  let new_rows =
    List.filter (fun (name, _) -> List.assoc_opt name baseline = None) fresh
  in
  List.iter
    (fun (name, _) -> Printf.printf "  new       %-52s (not in baseline)\n" name)
    new_rows;
  Printf.printf
    "\ncompared %d kernels: %d regressed, %d below --min-ns or unmeasured, %d missing, %d new\n"
    !compared !regressions !skipped !missing (List.length new_rows);
  if !regressions > 0 then begin
    Printf.printf "FAIL: %d kernel(s) regressed past %+.0f%%\n" !regressions
      (100. *. tolerance);
    exit 1
  end
  else print_endline "PASS: no kernel regressed past tolerance"

let usage () =
  prerr_endline
    "usage: compare --baseline BASELINE.json [--tolerance F] [--min-ns F] FRESH.json...\n\
    \       compare --merge OUT.json FILE.json...";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | [] -> usage ()
  | _ :: "--merge" :: out :: (_ :: _ as files) ->
    let rows = List.concat_map read_rows files in
    write_rows out rows;
    Printf.printf "merged %d rows from %d file(s) into %s\n" (List.length rows)
      (List.length files) out
  | _ :: args ->
    let baseline = ref None in
    let tolerance = ref 0.25 in
    let min_ns = ref 1000.0 in
    let fresh_files = ref [] in
    let bad_float flag v =
      Printf.eprintf "compare: %s expects a number, got %S\n" flag v;
      exit 2
    in
    let rec scan = function
      | [] -> ()
      | "--baseline" :: path :: rest ->
        baseline := Some path;
        scan rest
      | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0.0 -> tolerance := f
        | _ -> bad_float "--tolerance" v);
        scan rest
      | "--min-ns" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0.0 -> min_ns := f
        | _ -> bad_float "--min-ns" v);
        scan rest
      | ("--baseline" | "--tolerance" | "--min-ns") :: [] -> usage ()
      | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        usage ()
      | path :: rest ->
        fresh_files := path :: !fresh_files;
        scan rest
    in
    scan args;
    (match (!baseline, List.rev !fresh_files) with
    | Some base_path, (_ :: _ as files) ->
      let baseline = read_rows base_path in
      let fresh = List.concat_map read_rows files in
      Printf.printf
        "comparing %d fresh rows against %s (tolerance %+.0f%%, min %s)\n\n"
        (List.length fresh) base_path
        (100. *. !tolerance)
        (pp_ns !min_ns);
      compare_rows ~tolerance:!tolerance ~min_ns:!min_ns baseline fresh
    | _ -> usage ())
