(* Acceptance scenario for the distributed census orchestrator: a mixed
   fleet over real sockets, injected failures, and a crash/resume cycle
   against one journal — every phase gated on the merged census being
   byte-identical (as rendered result JSON) to the sequential one.

     dune exec bench/distcensus.exe                 -- max census, n = 6
     dune exec bench/distcensus.exe -- --n 5 --game sum
     dune exec bench/distcensus.exe -- --json FILE  -- {benchmark, ns_per_run}
                                                       rows, same shape as
                                                       bench/main.exe

   Phases:
     healthy   two bncg-serve workers on temp Unix sockets; all shards
               dispatched, result identical to Census.run_shard
     flaky     one healthy remote plus a worker that fails its first
               calls and is blacklisted; shards recover on the healthy
               worker, result still identical
     crash     a lone worker that dies partway with a journal attached:
               the run fails, the journal keeps its completed shards
     resume    healthy fleet over the same journal: only the missing
               shards are recomputed, then a second resume recomputes
               nothing at all

   Exit status 1 on any mismatch — the acceptance gate for the
   dispatch layer. *)

let n = ref 6

let game = ref Game.Max

let json = ref None

let () =
  let rec scan = function
    | [] -> ()
    | "--n" :: v :: rest ->
      n := int_of_string v;
      scan rest
    | "--game" :: "sum" :: rest ->
      game := Game.Sum;
      scan rest
    | "--game" :: "max" :: rest ->
      game := Game.Max;
      scan rest
    | "--json" :: path :: rest ->
      json := Some path;
      scan rest
    | arg :: _ ->
      Printf.eprintf
        "distcensus: unknown argument %s (expected --n N, --game sum|max, \
         --json FILE)\n"
        arg;
      exit 2
  in
  scan (List.tl (Array.to_list Sys.argv))

(* fail before the run, not after it — same pattern as bench/main.exe *)
let () =
  match !json with
  | None -> ()
  | Some path -> (
    match open_out path with
    | oc -> close_out oc
    | exception Sys_error msg ->
      Printf.eprintf "distcensus: cannot write --json target: %s\n" msg;
      exit 2)

let failures = ref 0

let check name ok =
  if ok then Printf.printf "  ok    %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  FAIL  %s\n%!" name
  end

(* byte-identity via the canonical wire rendering: counts, histogram,
   representative order, everything *)
let render r = Jsonx.to_string (Rpc.census_result r)

let temp path =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "bncg-distcensus-%s-%d" path (Unix.getpid ()))

let start_server tag =
  let sock = temp (tag ^ ".sock") in
  let srv =
    Serve.start
      {
        Serve.default_config with
        Serve.addresses = [ Serve.Unix_sock sock ];
        jobs = 1;
      }
  in
  (srv, Serve.Unix_sock sock)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e9)

let () =
  let shard = Census.full_shard Census.Graphs !game !n in
  let expected = render (Census.run_shard shard) in
  let parts = 8 in
  let srv1, addr1 = start_server "w1" in
  let srv2, addr2 = start_server "w2" in
  let base =
    {
      Dispatch.default_config with
      Dispatch.parts;
      backoff = 0.01;
      timeout = 120.0;
    }
  in
  let wall = ref [] in
  let phase name f =
    Printf.printf "%s:\n%!" name;
    let r, ns = timed f in
    wall := (name, ns) :: !wall;
    r
  in

  phase "healthy" (fun () ->
      let cfg =
        { base with Dispatch.workers = [ Dispatch.Remote addr1; Dispatch.Remote addr2 ] }
      in
      match Dispatch.run cfg shard with
      | Error msg -> check ("run: " ^ msg) false
      | Ok (r, st) ->
        check "result identical to sequential" (String.equal expected (render r));
        check "all shards dispatched" (st.Dispatch.dispatched = st.Dispatch.shards);
        check "nothing retried" (st.Dispatch.retried = 0));

  phase "flaky" (fun () ->
      (* fails its first two calls, then works: exercises retry,
         backoff and recovery without ever being blacklisted *)
      let calls = ref 0 in
      let flaky s =
        incr calls;
        if !calls <= 2 then Error "injected fault"
        else Ok (Census.run_shard s)
      in
      let cfg =
        {
          base with
          Dispatch.workers =
            [ Dispatch.Remote addr1; Dispatch.Custom ("flaky", flaky) ];
        }
      in
      match Dispatch.run cfg shard with
      | Error msg -> check ("run: " ^ msg) false
      | Ok (r, st) ->
        check "result identical to sequential" (String.equal expected (render r));
        check "failures were retried" (st.Dispatch.retried >= 2);
        check "failed shards recovered" (st.Dispatch.recovered >= 1));

  let journal = temp "journal.log" in
  (try Sys.remove journal with Sys_error _ -> ());

  phase "crash" (fun () ->
      (* a lone worker that completes three shards and then dies for
         good; with one worker and a 2-attempt budget the run must fail,
         leaving the journal holding exactly the completed shards *)
      let calls = ref 0 in
      let dying s =
        incr calls;
        if !calls <= 3 then Ok (Census.run_shard s) else Error "worker died"
      in
      let cfg =
        {
          base with
          Dispatch.workers = [ Dispatch.Custom ("dying", dying) ];
          max_attempts = 2;
          journal = Some journal;
        }
      in
      match Dispatch.run cfg shard with
      | Ok _ -> check "dying fleet must fail the run" false
      | Error _ ->
        let lines = ref 0 in
        let ic = open_in journal in
        (try
           while true do
             ignore (input_line ic);
             incr lines
           done
         with End_of_file -> close_in ic);
        check "journal holds header + 3 completed shards" (!lines = 4));

  phase "resume" (fun () ->
      let cfg =
        {
          base with
          Dispatch.workers = [ Dispatch.Remote addr1; Dispatch.Remote addr2 ];
          journal = Some journal;
        }
      in
      match Dispatch.run cfg shard with
      | Error msg -> check ("run: " ^ msg) false
      | Ok (r, st) ->
        check "result identical to sequential" (String.equal expected (render r));
        check "journaled shards replayed" (st.Dispatch.journal_hits = 3);
        check "only missing shards recomputed"
          (st.Dispatch.dispatched = st.Dispatch.shards - 3);
        (* a second resume over the now-complete journal computes nothing *)
        match Dispatch.run cfg shard with
        | Error msg -> check ("second resume: " ^ msg) false
        | Ok (r2, st2) ->
          check "second resume identical" (String.equal expected (render r2));
          check "second resume recomputes zero shards"
            (st2.Dispatch.dispatched = 0 && st2.Dispatch.journal_hits = st2.Dispatch.shards));

  Serve.stop srv1;
  Serve.stop srv2;
  (try Sys.remove journal with Sys_error _ -> ());

  (match !json with
  | None -> ()
  | Some path ->
    let rows =
      List.rev_map (fun (name, ns) -> ("distcensus/" ^ name, ns)) !wall
    in
    let oc = open_out path in
    output_string oc "[\n";
    let last = List.length rows - 1 in
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "  {\"benchmark\": %S, \"ns_per_run\": %.3f}%s\n" name
          ns
          (if i = last then "" else ","))
      rows;
    output_string oc "]\n";
    close_out oc;
    Printf.printf "wrote %d benchmark rows to %s\n" (List.length rows) path);

  if !failures > 0 then begin
    Printf.eprintf "distcensus: FAILED — %d checks failed\n" !failures;
    exit 1
  end;
  print_endline "distcensus: OK"
