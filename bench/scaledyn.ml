(* Wall-clock benchmark for the large-n sampled dynamics engine: one run
   per generator family (BA / ER / WS), reporting generation time, total
   run time, per-round time, and the sampled diameter trajectory.

     dune exec bench/scaledyn.exe                  -- n = 20000
     dune exec bench/scaledyn.exe -- --quick       -- n = 5000, fewer rounds
     dune exec bench/scaledyn.exe -- --n 100000 --rounds 64
     dune exec bench/scaledyn.exe -- --json FILE   -- {benchmark, ns_per_run}
                                                      rows, same shape as
                                                      bench/main.exe

   Deterministic end to end (fixed seed, fixed round budget), so besides
   the timing rows the JSON carries the final sampled diameter lower
   bound per family — a correctness canary the perf gate watches with
   the same tolerance machinery. *)

let n = ref 20_000

let rounds = ref 48

let probes = ref 32

let budget = ref 16

let seed = ref 7

let json = ref None

let () =
  let rec scan = function
    | [] -> ()
    | "--quick" :: rest ->
      n := 5_000;
      rounds := 24;
      scan rest
    | "--n" :: v :: rest ->
      n := int_of_string v;
      scan rest
    | "--rounds" :: v :: rest ->
      rounds := int_of_string v;
      scan rest
    | "--probes" :: v :: rest ->
      probes := int_of_string v;
      scan rest
    | "--budget" :: v :: rest ->
      budget := int_of_string v;
      scan rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      scan rest
    | "--json" :: path :: rest ->
      json := Some path;
      scan rest
    | arg :: _ ->
      Printf.eprintf
        "scaledyn: unknown argument %s (expected --quick, --n N, --rounds R, \
         --probes P, --budget B, --seed S, --json FILE)\n"
        arg;
      exit 2
  in
  scan (List.tl (Array.to_list Sys.argv))

(* fail before the run, not after it — same pattern as bench/main.exe *)
let () =
  match !json with
  | None -> ()
  | Some path -> (
    match open_out path with
    | oc -> close_out oc
    | exception Sys_error msg ->
      Printf.eprintf "scaledyn: cannot write --json target: %s\n" msg;
      exit 2)

let rows = ref []

let row name ns = rows := (name, ns) :: !rows

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e9)

let family name gen =
  Printf.printf "%s: n = %d, %d rounds x %d probes, budget %d\n%!" name !n
    !rounds !probes !budget;
  let csr, gen_ns = timed gen in
  Printf.printf "  generated  m = %-9d %8.1f ms\n%!" (Csr.m csr) (gen_ns /. 1e6);
  row (Printf.sprintf "dynamics-scale-%s/gen" name) gen_ns;
  let cfg =
    {
      (Scale_dynamics.default_config Game.Sum) with
      Scale_dynamics.budget = !budget;
      probes_per_round = !probes;
      max_rounds = !rounds;
      confirm = Scale_dynamics.Quiescence max_int;
      trajectory_every = max 1 (!rounds / 6);
      trajectory_sources = 32;
      traj_seed = !seed;
    }
  in
  let r, run_ns =
    timed (fun () ->
        Scale_dynamics.run ~rng:(Prng.substream !seed (-1)) cfg csr)
  in
  row (Printf.sprintf "dynamics-scale-%s" name) run_ns;
  row
    (Printf.sprintf "dynamics-scale-%s/per-round" name)
    (run_ns /. float_of_int (max 1 r.Scale_dynamics.rounds));
  Printf.printf "  ran        %d rounds, %d probes, %d moves   %8.1f ms  (%.2f ms/round)\n%!"
    r.Scale_dynamics.rounds r.Scale_dynamics.probes r.Scale_dynamics.moves
    (run_ns /. 1e6)
    (run_ns /. 1e6 /. float_of_int (max 1 r.Scale_dynamics.rounds));
  Printf.printf "  trajectory   round   moves   diameter>=   mean-dist\n";
  List.iter
    (fun s ->
      Printf.printf "             %7d %7d %12d %11.3f\n" s.Scale_dynamics.s_round
        s.Scale_dynamics.s_moves s.Scale_dynamics.s_diameter_lb
        s.Scale_dynamics.s_mean_dist)
    r.Scale_dynamics.trajectory;
  (match List.rev r.Scale_dynamics.trajectory with
  | last :: _ ->
    row
      (Printf.sprintf "dynamics-scale-%s/diameter-lb-final" name)
      (float_of_int last.Scale_dynamics.s_diameter_lb)
  | [] -> ());
  print_newline ()

let () =
  family "ba" (fun () -> Scale_gen.ba ~seed:!seed ~n:!n ~m:2);
  family "er" (fun () -> Scale_gen.er ~seed:!seed ~n:!n ~avg_deg:4.0 ());
  family "ws" (fun () -> Scale_gen.ws ~seed:!seed ~n:!n ~k:2 ~beta:0.1 ());
  match !json with
  | None -> ()
  | Some path ->
    let rows = List.rev !rows in
    let oc = open_out path in
    output_string oc "[\n";
    let last = List.length rows - 1 in
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "  {\"benchmark\": %S, \"ns_per_run\": %.3f}%s\n" name
          ns
          (if i = last then "" else ","))
      rows;
    output_string oc "]\n";
    close_out oc;
    Printf.printf "wrote %d benchmark rows to %s\n" (List.length rows) path
