(* Load generator for the serving layer: an in-process server on a temp
   Unix socket, hammered by concurrent client threads over a workload
   mix chosen to exercise both cache paths.

     dune exec bench/loadgen.exe                      -- 10000 requests, 4 clients
     dune exec bench/loadgen.exe -- --requests 1000 --clients 2
     dune exec bench/loadgen.exe -- --malformed       -- mix in invalid lines
     dune exec bench/loadgen.exe -- --json FILE       -- {benchmark, ns_per_run}
                                                         rows, same shape as
                                                         bench/main.exe
     dune exec bench/loadgen.exe -- --pipeline 64 --conns 8
                                                      -- pipelined mode: each
                                                         connection writes 64
                                                         request lines in one
                                                         syscall, then reads the
                                                         64 replies in order
     dune exec bench/loadgen.exe -- --pipeline 64 --min-rps 60000
                                                      -- also fail (exit 1) under
                                                         a throughput floor
     dune exec bench/loadgen.exe -- --atlas DIR       -- atlas mode: run the
                                                         workload twice against
                                                         fresh servers sharing
                                                         the atlas directory (a
                                                         cold pass populates it,
                                                         a warm pass reopens it),
                                                         assert the replies are
                                                         byte-identical, and gate
                                                         on warm atlas hits
                                                         (--min-atlas-hits N,
                                                         default 1)

   Workload classes, round-robin by request index:
     check-star    sum-check of a star on 9 vertices with a rotating
                   center — 9 distinct graph6 strings, one canonical
                   form, so after 9 misses this class is all canonical
                   cache hits
     check-torus   max-check of the 3x3 torus, identical bytes every
                   time — exact-key cache hits
     check-legacy  the same torus max-check spelled the pre-registry
                   way (a "version" field instead of "game") — old
                   clients must keep getting the exact same bytes
     check-alpha   alpha:1-check of the rotating star — the variant
                   game through the same entry point
     info-path     info on the 8-path
     ping          protocol floor
     malformed     (only with --malformed) unparseable line; the server
                   must answer a structured error and keep the
                   connection alive

   Exit status is 1 if any well-formed request got an error reply, a
   mismatched id, or no reply at all — the acceptance gate for the
   serving layer. *)

let requests = ref 10_000

let clients = ref 4

let jobs = ref 2

let malformed = ref false

let json = ref None

(* pipelined mode: 0 = off (one request in flight per client, the legacy
   latency-shaped load); N > 0 = each connection writes N request lines
   in a single syscall and then reads the N replies in order *)
let pipeline = ref 0

let conns = ref 0 (* pipelined connections; 0 = --clients *)

let min_rps = ref 0.0 (* throughput floor; 0 = no gate *)

(* atlas mode: cold pass + warm pass against fresh servers sharing this
   directory, byte-compared reply for reply *)
let atlas_dir = ref None

let min_atlas_hits = ref 1 (* warm-pass atlas hit floor in atlas mode *)

let () =
  let rec scan = function
    | [] -> ()
    | "--requests" :: v :: rest ->
      requests := int_of_string v;
      scan rest
    | "--clients" :: v :: rest ->
      clients := int_of_string v;
      scan rest
    | "--jobs" :: v :: rest ->
      jobs := int_of_string v;
      scan rest
    | "--pipeline" :: v :: rest ->
      pipeline := int_of_string v;
      scan rest
    | "--conns" :: v :: rest ->
      conns := int_of_string v;
      scan rest
    | "--min-rps" :: v :: rest ->
      min_rps := float_of_string v;
      scan rest
    | "--malformed" :: rest ->
      malformed := true;
      scan rest
    | "--json" :: path :: rest ->
      json := Some path;
      scan rest
    | "--atlas" :: dir :: rest ->
      atlas_dir := Some dir;
      scan rest
    | "--min-atlas-hits" :: v :: rest ->
      min_atlas_hits := int_of_string v;
      scan rest
    | arg :: _ ->
      Printf.eprintf
        "loadgen: unknown argument %s (expected --requests N, --clients N, \
         --jobs N, --pipeline DEPTH, --conns K, --min-rps F, --malformed, \
         --json FILE, --atlas DIR, --min-atlas-hits N)\n"
        arg;
      exit 2
  in
  scan (List.tl (Array.to_list Sys.argv))

(* fail before the run, not after it — same pattern as bench/main.exe *)
let () =
  match !json with
  | None -> ()
  | Some path -> (
    match open_out path with
    | oc -> close_out oc
    | exception Sys_error msg ->
      Printf.eprintf "loadgen: cannot write --json target: %s\n" msg;
      exit 2)

(* --- workload ------------------------------------------------------------ *)

let star9_centered c =
  let g = Graph.create 9 in
  for v = 0 to 8 do
    if v <> c then Graph.add_edge g c v
  done;
  Graph6.encode g

let torus3_g6 = Graph6.encode (Constructions.torus 3)

let path8_g6 = Graph6.encode (Generators.path 8)

type cls = { name : string; well_formed : bool; request : id:int -> int -> string }

let obj fields = Jsonx.to_string (Jsonx.Obj fields)

let check_req_field ~id field game g6 =
  obj
    [
      ("id", Jsonx.Int id);
      ("method", Jsonx.Str "check");
      ( "params",
        Jsonx.Obj [ (field, Jsonx.Str game); ("graph6", Jsonx.Str g6) ] );
    ]

let check_req ~id game g6 = check_req_field ~id "game" game g6

let classes =
  [
    {
      name = "check-star";
      well_formed = true;
      request = (fun ~id i -> check_req ~id "sum" (star9_centered (i mod 9)));
    };
    {
      name = "check-torus";
      well_formed = true;
      request = (fun ~id _ -> check_req ~id "max" torus3_g6);
    };
    {
      name = "check-legacy";
      well_formed = true;
      request = (fun ~id _ -> check_req_field ~id "version" "max" torus3_g6);
    };
    {
      name = "check-alpha";
      well_formed = true;
      request = (fun ~id i -> check_req ~id "alpha:1" (star9_centered (i mod 9)));
    };
    {
      name = "info-path";
      well_formed = true;
      request =
        (fun ~id _ ->
          obj
            [
              ("id", Jsonx.Int id);
              ("method", Jsonx.Str "info");
              ("params", Jsonx.Obj [ ("graph6", Jsonx.Str path8_g6) ]);
            ]);
    };
    {
      name = "ping";
      well_formed = true;
      request =
        (fun ~id _ -> obj [ ("id", Jsonx.Int id); ("method", Jsonx.Str "ping") ]);
    };
  ]
  @
  if !malformed then
    [
      {
        name = "malformed";
        well_formed = false;
        request =
          (fun ~id:_ i ->
            match i mod 3 with
            | 0 -> "this is not json"
            | 1 -> "{\"method\":42}"
            | _ -> "{\"method\":\"no-such-method\"}");
      };
    ]
  else []

let n_classes = List.length classes

let class_of i = List.nth classes (i mod n_classes)

(* --- measurement --------------------------------------------------------- *)

type tally = {
  mutable count : int;
  mutable total_ns : float;
  mutable max_ns : float;
  mutable errors : int; (* well-formed requests answered ok:false *)
  mutable bad : int; (* wrong id, unparseable reply, transport failure *)
}

let fresh_tally () =
  { count = 0; total_ns = 0.0; max_ns = 0.0; errors = 0; bad = 0 }

(* a malformed request may omit the id, so only well-formed classes can
   demand the echo matches *)
let response_ok ~well_formed id line =
  match Jsonx.parse line with
  | Error _ -> `Bad
  | Ok r ->
    if well_formed && Jsonx.member "id" r <> Some (Jsonx.Int id) then `Bad
    else if Jsonx.member "ok" r = Some (Jsonx.Bool true) then `Ok
    else `Err

(* [replies.(i)] collects the reply bytes for request [i] — each index
   has exactly one writer, so the array needs no lock. Atlas mode
   byte-compares the cold and warm arrays. *)
let client_thread addr lo hi tallies replies =
  Serve.with_client addr @@ fun c ->
  for i = lo to hi - 1 do
    let cls = class_of i in
    let t = tallies.(i mod n_classes) in
    let line = cls.request ~id:i i in
    let t0 = Unix.gettimeofday () in
    match Serve.call c line with
    | reply ->
      replies.(i) <- reply;
      let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      t.count <- t.count + 1;
      t.total_ns <- t.total_ns +. ns;
      if ns > t.max_ns then t.max_ns <- ns;
      (match (response_ok ~well_formed:cls.well_formed i reply, cls.well_formed) with
      | `Ok, true -> ()
      | `Err, false -> () (* malformed lines are supposed to get errors *)
      | `Err, true -> t.errors <- t.errors + 1
      | `Ok, false -> t.bad <- t.bad + 1
      | `Bad, _ -> t.bad <- t.bad + 1)
    | exception e ->
      t.count <- t.count + 1;
      t.bad <- t.bad + 1;
      Printf.eprintf "loadgen: request %d died: %s\n" i (Printexc.to_string e)
  done

(* Pipelined: batch [depth] request lines into one newline-joined write
   (Serve.send_line appends the final newline, so the batch reaches the
   kernel in a single syscall), then read the [depth] replies in order.
   Response order is the server's per-connection contract, so reply [k]
   must carry the id of request [k] — a reordering shows up as [bad]. *)
let pipelined_thread addr lo hi depth tallies out =
  Serve.with_client addr @@ fun c ->
  let i = ref lo in
  while !i < hi do
    let batch = min depth (hi - !i) in
    let lines = List.init batch (fun k ->
        let idx = !i + k in
        (class_of idx).request ~id:idx idx)
    in
    (* read replies with an explicit in-order loop: List.init's
       application order is unspecified, and reply k must be matched
       against request lo+k *)
    let recv_batch n =
      let acc = ref [] in
      for _ = 1 to n do
        acc := Serve.recv_line c :: !acc
      done;
      List.rev !acc
    in
    let t0 = Unix.gettimeofday () in
    (match
       Serve.send_line c (String.concat "\n" lines);
       recv_batch batch
     with
    | replies ->
      let ns_each =
        (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int batch
      in
      List.iteri
        (fun k reply ->
          let idx = !i + k in
          out.(idx) <- reply;
          let cls = class_of idx in
          let t = tallies.(idx mod n_classes) in
          t.count <- t.count + 1;
          t.total_ns <- t.total_ns +. ns_each;
          if ns_each > t.max_ns then t.max_ns <- ns_each;
          match (response_ok ~well_formed:cls.well_formed idx reply, cls.well_formed) with
          | `Ok, true -> ()
          | `Err, false -> ()
          | `Err, true -> t.errors <- t.errors + 1
          | `Ok, false -> t.bad <- t.bad + 1
          | `Bad, _ -> t.bad <- t.bad + 1)
        replies
    | exception e ->
      List.iteri
        (fun k _ ->
          let t = tallies.((!i + k) mod n_classes) in
          t.count <- t.count + 1;
          t.bad <- t.bad + 1)
        lines;
      Printf.eprintf "loadgen: pipelined batch at %d died: %s\n" !i
        (Printexc.to_string e));
    i := !i + batch
  done

(* --- run ----------------------------------------------------------------- *)

type pass = {
  p_merged : tally array;
  p_wall : float;
  p_total : int;
  p_errors : int;
  p_bad : int;
  p_cache_hits : int;
  p_cache_misses : int;
  p_atlas_hits : int; (* 0 when the server runs without an atlas *)
  p_replies : string array; (* reply bytes by request index *)
}

(* One complete load run against a fresh server: start, hammer, collect
   the server's own stats, stop. Atlas mode calls this twice with the
   same directory — fresh server each time, so the in-memory cache
   starts empty and any warm speedup/hit is the atlas's alone. *)
let run_pass ~tag ~pass_atlas_dir () =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bncg-loadgen-%d%s.sock" (Unix.getpid ())
         (if tag = "" then "" else "-" ^ tag))
  in
  let cfg =
    {
      Serve.default_config with
      Serve.addresses = [ Serve.Unix_sock sock ];
      jobs = !jobs;
      atlas_dir = pass_atlas_dir;
    }
  in
  let srv = Serve.start cfg in
  let addr = List.hd (Serve.bound_addresses srv) in
  let n = !requests in
  let depth = max 0 !pipeline in
  let c =
    if depth > 0 then max 1 (if !conns > 0 then !conns else !clients)
    else max 1 !clients
  in
  let label = if tag = "" then "" else Printf.sprintf " [%s]" tag in
  if depth > 0 then
    Printf.printf
      "loadgen%s: %d requests pipelined depth %d over %d conns, %d pool jobs, \
       %d classes (backend %s, %d workers)\n%!"
      label n depth c !jobs n_classes (Serve.backend_name srv)
      (Serve.worker_count srv)
  else
    Printf.printf "loadgen%s: %d requests, %d clients, %d pool jobs, %d classes\n%!"
      label n c !jobs n_classes;
  (* per-thread tallies, merged after join: no cross-thread mutation *)
  let per_thread = Array.init c (fun _ -> Array.init n_classes (fun _ -> fresh_tally ())) in
  let replies = Array.make n "" in
  let wall0 = Unix.gettimeofday () in
  let threads =
    List.init c (fun t ->
        let lo = t * n / c and hi = (t + 1) * n / c in
        Thread.create
          (fun () ->
            if depth > 0 then pipelined_thread addr lo hi depth per_thread.(t) replies
            else client_thread addr lo hi per_thread.(t) replies)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. wall0 in
  (* cache stats from the server itself, before shutdown *)
  let stats_line =
    Serve.with_client addr (fun cl ->
        Serve.call cl "{\"id\":\"stats\",\"method\":\"stats\"}")
  in
  Serve.stop srv;
  let merged = Array.init n_classes (fun _ -> fresh_tally ()) in
  Array.iter
    (fun ts ->
      Array.iteri
        (fun k t ->
          merged.(k).count <- merged.(k).count + t.count;
          merged.(k).total_ns <- merged.(k).total_ns +. t.total_ns;
          if t.max_ns > merged.(k).max_ns then merged.(k).max_ns <- t.max_ns;
          merged.(k).errors <- merged.(k).errors + t.errors;
          merged.(k).bad <- merged.(k).bad + t.bad)
        ts)
    per_thread;
  Printf.printf "\n%-12s %10s %14s %14s %7s %5s\n" "class" "requests"
    "mean ns" "max ns" "errors" "bad";
  List.iteri
    (fun k cls ->
      let t = merged.(k) in
      Printf.printf "%-12s %10d %14.0f %14.0f %7d %5d\n" cls.name t.count
        (if t.count = 0 then 0.0 else t.total_ns /. float_of_int t.count)
        t.max_ns t.errors t.bad)
    classes;
  let member_int path r =
    Option.value ~default:(-1)
      (Option.bind
         (List.fold_left
            (fun acc k -> Option.bind acc (Jsonx.member k))
            (Some r) path)
         Jsonx.to_int)
  in
  let hits, misses, atlas_hits =
    match Jsonx.parse stats_line with
    | Ok r ->
      ( member_int [ "result"; "cache"; "hits" ] r,
        member_int [ "result"; "cache"; "misses" ] r,
        max 0 (member_int [ "result"; "atlas"; "hits" ] r) )
    | Error _ -> (-1, -1, 0)
  in
  let total = Array.fold_left (fun a t -> a + t.count) 0 merged in
  let errors = Array.fold_left (fun a t -> a + t.errors) 0 merged in
  let bad = Array.fold_left (fun a t -> a + t.bad) 0 merged in
  Printf.printf
    "\ntotal%s: %d requests in %.2f s (%.0f req/s); cache hits %d, misses %d%s\n"
    label total wall
    (float_of_int total /. wall)
    hits misses
    (match pass_atlas_dir with
    | None -> ""
    | Some _ -> Printf.sprintf "; atlas hits %d" atlas_hits);
  {
    p_merged = merged;
    p_wall = wall;
    p_total = total;
    p_errors = errors;
    p_bad = bad;
    p_cache_hits = hits;
    p_cache_misses = misses;
    p_atlas_hits = atlas_hits;
    p_replies = replies;
  }

let write_json_rows rows =
  match !json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "[\n";
    let last = List.length rows - 1 in
    List.iteri
      (fun i (name, ns) ->
        let value =
          if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns
        in
        Printf.fprintf oc "  {\"benchmark\": %S, \"ns_per_run\": %s}%s\n" name
          value
          (if i = last then "" else ","))
      rows;
    output_string oc "]\n";
    close_out oc;
    Printf.printf "wrote %d benchmark rows to %s\n" (List.length rows) path

(* gates shared by every pass; any failure is the process exit status *)
let gate_pass ~tag p =
  let label = if tag = "" then "" else Printf.sprintf " [%s]" tag in
  if p.p_total <> !requests then begin
    Printf.eprintf "loadgen%s: sent %d requests but tallied %d\n" label !requests
      p.p_total;
    exit 1
  end;
  if p.p_errors > 0 || p.p_bad > 0 then begin
    Printf.eprintf
      "loadgen%s: FAILED — %d well-formed requests errored, %d bad replies\n"
      label p.p_errors p.p_bad;
    exit 1
  end;
  if p.p_cache_hits <= 0 then begin
    Printf.eprintf
      "loadgen%s: FAILED — expected cache hits > 0, server reports %d\n" label
      p.p_cache_hits;
    exit 1
  end;
  let rps = float_of_int p.p_total /. p.p_wall in
  if !min_rps > 0.0 && rps < !min_rps then begin
    Printf.eprintf
      "loadgen%s: FAILED — %.0f req/s under the --min-rps %.0f floor\n" label rps
      !min_rps;
    exit 1
  end

let () =
  match !atlas_dir with
  | None ->
    let p = run_pass ~tag:"" ~pass_atlas_dir:None () in
    let depth = max 0 !pipeline in
    (* pipelined runs measure throughput, not per-request latency: one
       row, the wall-clock cost per request, under its own name so the
       perf gate tracks the two modes independently *)
    let rows =
      if depth > 0 then
        [
          ( "serve-pipelined/wall-per-request",
            p.p_wall *. 1e9 /. float_of_int (max 1 p.p_total) );
        ]
      else
        List.mapi
          (fun k cls ->
            ( "serve-loadgen/" ^ cls.name,
              if p.p_merged.(k).count = 0 then Float.nan
              else p.p_merged.(k).total_ns /. float_of_int p.p_merged.(k).count ))
          classes
        @ [
            ( "serve-loadgen/wall-per-request",
              p.p_wall *. 1e9 /. float_of_int (max 1 p.p_total) );
          ]
    in
    write_json_rows rows;
    gate_pass ~tag:"" p;
    print_endline "loadgen: OK"
  | Some dir ->
    (* cold pass populates the atlas, warm pass reopens it behind an
       empty in-memory cache; the reply streams must match byte for
       byte, and the warm pass must actually hit the store *)
    Printf.printf "loadgen: atlas mode against %s (cold pass, then warm pass)\n%!"
      dir;
    let cold = run_pass ~tag:"cold" ~pass_atlas_dir:(Some dir) () in
    let warm = run_pass ~tag:"warm" ~pass_atlas_dir:(Some dir) () in
    let rows =
      [
        ( "serve-atlas/cold-wall-per-request",
          cold.p_wall *. 1e9 /. float_of_int (max 1 cold.p_total) );
        ( "serve-atlas/warm-wall-per-request",
          warm.p_wall *. 1e9 /. float_of_int (max 1 warm.p_total) );
      ]
    in
    write_json_rows rows;
    gate_pass ~tag:"cold" cold;
    gate_pass ~tag:"warm" warm;
    let mismatches = ref 0 in
    Array.iteri
      (fun i c ->
        if not (String.equal c warm.p_replies.(i)) then begin
          incr mismatches;
          if !mismatches = 1 then
            Printf.eprintf
              "loadgen: reply %d differs across passes:\n  cold: %s\n  warm: %s\n"
              i c warm.p_replies.(i)
        end)
      cold.p_replies;
    if !mismatches > 0 then begin
      Printf.eprintf
        "loadgen: FAILED — %d replies differ between the cold and warm passes\n"
        !mismatches;
      exit 1
    end;
    Printf.printf "atlas: %d replies byte-identical across passes\n"
      (Array.length cold.p_replies);
    if warm.p_atlas_hits < !min_atlas_hits then begin
      Printf.eprintf
        "loadgen: FAILED — warm pass reported %d atlas hits, floor is %d\n"
        warm.p_atlas_hits !min_atlas_hits;
      exit 1
    end;
    print_endline "loadgen: OK"
