(* Wall-clock benchmark for the orderly-generation census: one full
   census per vertex count, reporting generation throughput and the
   search overhead per emitted class.

     dune exec bench/orderlybench.exe                  -- n up to 8
     dune exec bench/orderlybench.exe -- --quick       -- n up to 7
     dune exec bench/orderlybench.exe -- --n 9
     dune exec bench/orderlybench.exe -- --json FILE   -- {benchmark, ns_per_run}
                                                     rows, same shape as
                                                     bench/main.exe

   Deterministic end to end (the generation tree has a fixed DFS order),
   so besides the timings the JSON carries the emitted class count and
   the generation-tree nodes explored per class — correctness canaries
   the perf gate watches with the same tolerance machinery. *)

let max_n = ref 8

let json = ref None

let () =
  let rec scan = function
    | [] -> ()
    | "--quick" :: rest ->
      max_n := 7;
      scan rest
    | "--n" :: v :: rest ->
      max_n := int_of_string v;
      scan rest
    | "--json" :: path :: rest ->
      json := Some path;
      scan rest
    | arg :: _ ->
      Printf.eprintf
        "orderlybench: unknown argument %s (expected --quick, --n N, --json FILE)\n"
        arg;
      exit 2
  in
  scan (List.tl (Array.to_list Sys.argv))

(* fail before the run, not after it — same pattern as bench/main.exe *)
let () =
  match !json with
  | None -> ()
  | Some path -> (
    match open_out path with
    | oc -> close_out oc
    | exception Sys_error msg ->
      Printf.eprintf "orderlybench: cannot write --json target: %s\n" msg;
      exit 2)

let rows = ref []

let row name ns = rows := (name, ns) :: !rows

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e9)

let generated = Telemetry.counter "census.orderly.generated"

let rejected = Telemetry.counter "census.orderly.rejected"

let () = Telemetry.set_enabled true

let level n =
  (* pure generation: the tree walk alone, no equilibrium checks *)
  Telemetry.reset ();
  let classes, gen_ns = timed (fun () -> Orderly.count n) in
  let nodes =
    Telemetry.counter_value generated + Telemetry.counter_value rejected
  in
  let per_class = float_of_int nodes /. float_of_int classes in
  row (Printf.sprintf "census-orderly/gen-wall-n%d" n) gen_ns;
  row (Printf.sprintf "census-orderly/nodes-per-class-n%d" n) per_class;
  row (Printf.sprintf "census-orderly/classes-n%d" n) (float_of_int classes);
  (* the full census: generation + equilibrium verdict per class *)
  let census, wall_ns =
    timed (fun () -> Census.orderly_census Game.Sum n)
  in
  row (Printf.sprintf "census-orderly/wall-n%d" n) wall_ns;
  Printf.printf
    "n=%d: %7d classes  %5d equilibria  %6.2f nodes/class  gen %8.1f ms  \
     census %8.1f ms\n%!"
    n classes
    (List.length census.Census.equilibria_iso)
    per_class (gen_ns /. 1e6) (wall_ns /. 1e6)

let () =
  for n = 5 to !max_n do
    level n
  done;
  match !json with
  | None -> ()
  | Some path ->
    let rows = List.rev !rows in
    let oc = open_out path in
    output_string oc "[\n";
    let last = List.length rows - 1 in
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "  {\"benchmark\": %S, \"ns_per_run\": %.3f}%s\n" name
          ns
          (if i = last then "" else ","))
      rows;
    output_string oc "]\n";
    close_out oc;
    Printf.printf "wrote %d benchmark rows to %s\n" (List.length rows) path
