(* Benchmark harness: one Bechamel test per experiment kernel (the
   computation that regenerates each table/figure of the paper) plus
   substrate microbenchmarks and sequential-vs-parallel kernel pairs,
   followed by the full experiment tables.

     dune exec bench/main.exe            -- microbenches + all default tables
     dune exec bench/main.exe -- --quick -- microbenches only
     dune exec bench/main.exe -- --heavy -- also the n=7 census / n=9 trees
     dune exec bench/main.exe -- --json FILE -- also dump
                                    {benchmark, ns_per_run} rows as JSON, so
                                    BENCH_*.json trajectories can be diffed
                                    across PRs
*)

open Bechamel
open Toolkit

(* OCaml 5's minor GC is stop-the-world across domains; the census
   kernels allocate a graph per enumerated tree, so a default-sized minor
   heap makes the parallel variants sync far too often. One knob, set
   before any domain exists. *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 2 * 1024 * 1024 }

let stage = Staged.stage

(* --- fixed inputs, built once ------------------------------------------ *)

let torus3 = Constructions.torus 3
let torus5 = Constructions.torus 5
let torus8 = Constructions.torus 8
let torus_d32 = Constructions.torus_d ~dim:3 2
let witness = Constructions.sum_diameter3_witness
let polarity5 = Polarity.polarity_graph 5
let hypercube7 = Generators.hypercube 7
let cycle32 = Generators.cycle 32
let blobs = Generators.path_with_blobs ~arms:4 ~arm_len:6 ~blob:12
let tree32 = Random_graphs.tree (Prng.create 1) 32
let gnm24 = Random_graphs.connected_gnm (Prng.create 2) 24 48
let tree10 = Random_graphs.tree (Prng.create 3) 10
let torus8_csr = Csr.of_graph torus8
let tree256 = Random_graphs.tree (Prng.create 4) 256
let tree256_pre = Tree_opt.precompute tree256

let bfs_ws = Bfs.create_workspace (Graph.n torus8)

let csr_dist = Array.make (Graph.n torus8) (-1)
let csr_queue = Array.make (Graph.n torus8) 0

(* --- substrate microbenchmarks ----------------------------------------- *)

let substrate_tests =
  [
    Test.make ~name:"bfs/torus-k8-n128" (stage (fun () -> Bfs.run bfs_ws torus8 0));
    Test.make ~name:"bfs-csr/torus-k8-n128"
      (stage (fun () -> Csr.bfs_into torus8_csr 0 ~dist:csr_dist ~queue:csr_queue));
    Test.make ~name:"all-pairs/torus-k8" (stage (fun () -> Bfs.all_pairs torus8));
    Test.make ~name:"swap-delta/torus-k3"
      (stage (fun () ->
           Swap.delta bfs_ws Usage_cost.Sum torus3
             (Swap.Swap { actor = 0; drop = Graph.nth_neighbor torus3 0 0; add = 9 })));
    Test.make ~name:"graph-hash/torus-k8" (stage (fun () -> Graph.hash torus8));
    Test.make ~name:"girth/torus-k8" (stage (fun () -> Metrics.girth torus8));
    Test.make ~name:"diameter/torus-k8" (stage (fun () -> Metrics.diameter torus8));
    Test.make ~name:"canonical-form/petersen"
      (stage (fun () -> Canon.canonical_form (Generators.petersen ())));
    Test.make ~name:"construct/torus-k8" (stage (fun () -> Constructions.torus 8));
    Test.make ~name:"graph6-roundtrip/torus-k8"
      (stage (fun () -> Graph6.decode (Graph6.encode torus8)));
    Test.make ~name:"diameter-ifub/torus-k8"
      (stage (fun () -> Fast_diameter.diameter torus8));
    Test.make ~name:"betweenness/torus-k8"
      (stage (fun () -> Centrality.betweenness torus8));
    Test.make ~name:"tree-opt-precompute/n256"
      (stage (fun () -> Tree_opt.precompute tree256));
    Test.make ~name:"tree-opt-best-swap/n256"
      (stage (fun () -> Tree_opt.best_swap tree256_pre 0));
    Test.make ~name:"spectral-fiedler/torus-k8"
      (stage (fun () -> Spectral.algebraic_connectivity ~iterations:500 torus8));
    Test.make ~name:"lemma8-audit/hypercube-q4"
      (stage (fun () -> Lemmas.check_lemma8 (Generators.hypercube 4)));
  ]

(* --- sequential vs parallel kernel pairs -------------------------------- *)

(* Created on first use so `--quick` runs without domains when the pool
   tests are filtered out; never shut down — the domains live as long as
   the process, like Exp_common's pool. *)
let pool4 = lazy (Pool.create ~jobs:4 ())

let parallel_tests =
  [
    Test.make ~name:"par/tree-census-sum-n7-seq"
      (stage (fun () -> Census.tree_census Game.Sum 7));
    Test.make ~name:"par/tree-census-sum-n7-j4"
      (stage (fun () -> Census.tree_census ~pool:(Lazy.force pool4) Game.Sum 7));
    Test.make ~name:"par/graph-census-sum-n5-seq"
      (stage (fun () -> Census.graph_census Game.Sum 5));
    Test.make ~name:"par/graph-census-sum-n5-j4"
      (stage (fun () -> Census.graph_census ~pool:(Lazy.force pool4) Game.Sum 5));
    Test.make ~name:"par/all-pairs-torus-k8-seq"
      (stage (fun () -> Bfs.all_pairs torus8));
    Test.make ~name:"par/all-pairs-torus-k8-j4"
      (stage (fun () -> Bfs.all_pairs ~pool:(Lazy.force pool4) torus8));
    Test.make ~name:"par/eccentricities-torus-k8-seq"
      (stage (fun () -> Metrics.eccentricities torus8));
    Test.make ~name:"par/eccentricities-torus-k8-j4"
      (stage (fun () -> Metrics.eccentricities ~pool:(Lazy.force pool4) torus8));
    Test.make ~name:"par/check-max-torus-k5-seq"
      (stage (fun () -> Equilibrium.check_max torus5));
    Test.make ~name:"par/check-max-torus-k5-j4"
      (stage (fun () -> Equilibrium.check_max ~pool:(Lazy.force pool4) torus5));
  ]

(* --- naive oracle vs incremental swap-evaluation engine ------------------ *)

(* One full best-response scan over every agent: the workload the
   equilibrium checkers, census and dynamics all reduce to. The naive
   side pays two BFS per candidate move ({!Swap.best_move}); the engine
   side answers most candidates from cached rows and bounds
   ({!Swap_eval.best_move}). Workspace/engine creation is inside the
   kernel so both sides charge their own setup. *)
let scan_naive version g () =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  for v = 0 to n - 1 do
    ignore (Swap.best_move ws version g v)
  done

let scan_engine version g () =
  let n = Graph.n g in
  let eng = Swap_eval.create g in
  for v = 0 to n - 1 do
    ignore (Swap_eval.best_move eng version v)
  done

let star24 = Generators.star 24
let path24 = Generators.path 24
let petersen_pendant = Constructions.petersen_with_pendant ()
let gnm20 = Random_graphs.connected_gnm (Prng.create 5) 20 40

let swap_eval_tests =
  let pair name version g =
    [
      Test.make ~name:(Printf.sprintf "swapeval/%s-naive" name)
        (stage (scan_naive version g));
      Test.make ~name:(Printf.sprintf "swapeval/%s-engine" name)
        (stage (scan_engine version g));
    ]
  in
  List.concat
    [
      pair "star-n24-sum" Usage_cost.Sum star24;
      pair "path-n24-sum" Usage_cost.Sum path24;
      pair "torus-k3-max" Usage_cost.Max torus3;
      pair "petersen-pendant-max" Usage_cost.Max petersen_pendant;
      pair "gnm-n20-sum" Usage_cost.Sum gnm20;
    ]

(* --- one kernel per experiment table ------------------------------------ *)

let experiment_tests =
  [
    Test.make ~name:"E1/tree-census-sum-n6"
      (stage (fun () -> Census.tree_census Game.Sum 6));
    Test.make ~name:"E2/tree-census-max-n6"
      (stage (fun () -> Census.tree_census Game.Max 6));
    Test.make ~name:"E3/sum-eq-check-witness-n11"
      (stage (fun () -> Equilibrium.is_sum_equilibrium witness));
    Test.make ~name:"E4/graph-census-sum-n5"
      (stage (fun () -> Census.graph_census Game.Sum 5));
    Test.make ~name:"E5/max-eq-check-torus-k3"
      (stage (fun () -> Equilibrium.is_max_equilibrium torus3));
    Test.make ~name:"E6/insertion-stability-torus-d3"
      (stage (fun () -> Equilibrium.is_stable_under_insertions torus_d32 ~k:2));
    Test.make ~name:"E7/sum-dynamics-n32"
      (stage (fun () -> Dynamics.converge_sum ~rng:(Prng.create 1) tree32));
    Test.make ~name:"E8/max-dynamics-n24"
      (stage (fun () -> Dynamics.converge_max ~rng:(Prng.create 2) gnm24));
    Test.make ~name:"E9/power-report-c32"
      (stage (fun () -> Distance_uniform.power_report cycle32 ~x:3));
    Test.make ~name:"E10/uniformity-hypercube-q7"
      (stage (fun () -> Distance_uniform.best_uniform hypercube7));
    Test.make ~name:"E11/alpha-dynamics-n10"
      (stage (fun () ->
           Alpha_game.run_dynamics (Alpha_game.create ~alpha:3.0 tree10)));
    Test.make ~name:"E12/exact-optimum-n5"
      (stage (fun () -> Poa.exact_optimum_sum 5 6));
    Test.make ~name:"E13/corollary11-polarity-q5"
      (stage (fun () -> Theory.corollary11_max_gain polarity5));
    Test.make ~name:"E14/pairwise-modal-blobs"
      (stage (fun () -> Distance_uniform.pairwise_modal_fraction blobs));
    Test.make ~name:"E15/hunt-score-n10"
      (stage (fun () -> Hunt.violating_agents Game.Sum gnm24));
    Test.make ~name:"E16/2-swap-check-witness"
      (stage (fun () ->
           Equilibrium.is_stable_under_k_swaps Usage_cost.Sum witness ~k:2));
    Test.make ~name:"E17/dynamics-random-rule-n24"
      (stage (fun () ->
           let cfg =
             {
               (Dynamics.default_config Game.Sum) with
               Dynamics.rule = Dynamics.Random_improving;
             }
           in
           Dynamics.run ~rng:(Prng.create 3) cfg gnm24));
  ]

(* --- runner -------------------------------------------------------------- *)

let run_benchmarks tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~stabilize:false ()
  in
  let t = Test.make_grouped ~name:"bncg" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances t in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  (* sorted, aligned plain-text report *)
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  let t = Table.create ~title:"Bechamel microbenchmarks (monotonic clock)"
      ~columns:[ ("benchmark", Table.Left); ("time / run", Table.Right) ]
  in
  List.iter
    (fun (name, ns) ->
      let cell =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Table.add_row t [ name; cell ])
    rows;
  Table.print t;
  rows

(* every "<kernel><base>" row paired with its "<kernel><twin>" sibling:
   -seq/-j4 for the parallel kernels, -naive/-engine for swap-eval *)
let print_suffix_speedups rows ~title ~base ~twin =
  let lookup name = List.assoc_opt name rows in
  let pairs =
    List.filter_map
      (fun (name, base_ns) ->
        match Filename.chop_suffix_opt ~suffix:base name with
        | None -> None
        | Some kernel -> (
          match lookup (kernel ^ twin) with
          | Some twin_ns
            when (not (Float.is_nan base_ns)) && not (Float.is_nan twin_ns) ->
            Some (kernel, base_ns /. twin_ns)
          | _ -> None))
      rows
  in
  if pairs <> [] then begin
    let t =
      Table.create ~title
        ~columns:[ ("kernel", Table.Left); ("speedup", Table.Right) ]
    in
    List.iter
      (fun (kernel, s) -> Table.add_row t [ kernel; Printf.sprintf "%.2fx" s ])
      pairs;
    Table.print t
  end

let print_speedups rows =
  print_suffix_speedups rows ~title:"parallel speedup (sequential / jobs=4)"
    ~base:"-seq" ~twin:"-j4";
  print_suffix_speedups rows ~title:"swap-eval speedup (naive / engine)"
    ~base:"-naive" ~twin:"-engine"

let write_json path rows =
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, ns) ->
      let value =
        if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns
      in
      (* OCaml's %S escaping (backslash + double quote) is valid JSON for
         the ASCII benchmark names used here *)
      Printf.fprintf oc "  {\"benchmark\": %S, \"ns_per_run\": %s}%s\n" name
        value
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "\nwrote %d benchmark rows to %s\n" (List.length rows) path

let json_target args =
  let rec scan = function
    | [ "--json" ] ->
        prerr_endline "bench: --json requires a FILE argument";
        exit 2
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan args

(* fail before the (long) benchmark run, not after it *)
let check_writable path =
  match open_out path with
  | oc -> close_out oc
  | exception Sys_error msg ->
      Printf.eprintf "bench: cannot write --json target: %s\n" msg;
      exit 2

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let heavy = List.mem "--heavy" args in
  let json = json_target args in
  Option.iter check_writable json;
  print_endline "=== bncg benchmark harness ===\n";
  (* BNCG_STATS: telemetry totals for the whole benchmark sweep. The
     numbers aggregate every timed iteration, so they profile the harness
     run, not a single kernel invocation. *)
  let rows =
    Exp_common.with_stats (fun () ->
        let rows =
          run_benchmarks
            (substrate_tests @ parallel_tests @ swap_eval_tests
           @ experiment_tests)
        in
        print_speedups rows;
        rows)
  in
  Option.iter (fun path -> write_json path rows) json;
  if not quick then begin
    print_endline "\n=== experiment tables (one per paper theorem/figure) ===\n";
    if heavy then Experiments.run_everything () else Experiments.run_default ()
  end
