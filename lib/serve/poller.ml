(* epoll where available, a poll(2) emulation elsewhere; see the stubs in
   poller_stubs.c for the bitmask/-errno conventions. *)

external fd_int : Unix.file_descr -> int = "%identity"

external int_fd : int -> Unix.file_descr = "%identity"

external raw_poll : int array -> int array -> int array -> int -> int -> int
  = "bncg_poll"

external has_epoll : unit -> bool = "bncg_has_epoll"

external raw_epoll_create : unit -> int = "bncg_epoll_create"

external raw_epoll_ctl : int -> int -> int -> int -> int = "bncg_epoll_ctl"

external raw_epoll_wait : int -> int array -> int array -> int -> int -> int
  = "bncg_epoll_wait"

let ev_read = 1

let ev_write = 2

let ev_error = 4

(* EINTR is 4 on every platform this builds on (Linux, the BSDs, macOS);
   the stubs return -errno, and an interrupted wait is just "0 ready". *)
let errno_eintr = 4

let events_of ~read ~write =
  (if read then ev_read else 0) lor if write then ev_write else 0

type backend =
  | Epoll of { mutable epfd : int }
  | Poll of {
      mutable fds : int array;  (* registered fds, packed in [0, n) *)
      mutable events : int array;  (* interest bitmask per slot *)
      mutable revents : int array;
      mutable n : int;
      index : (int, int) Hashtbl.t;  (* fd -> slot *)
    }

type t = {
  kind : backend;
  max_events : int;
  ready_fds : int array;
  ready_flags : int array;
  mutable nready : int;
  mutable closed : bool;
}

let backend t = match t.kind with Epoll _ -> "epoll" | Poll _ -> "poll"

let available_backend () = if has_epoll () then "epoll" else "poll"

let create ?(max_events = 256) () =
  if max_events < 1 then invalid_arg "Poller.create: max_events < 1";
  let kind =
    if has_epoll () then begin
      let epfd = raw_epoll_create () in
      if epfd < 0 then
        failwith (Printf.sprintf "Poller: epoll_create failed (errno %d)" (-epfd));
      Epoll { epfd }
    end
    else
      Poll
        {
          fds = Array.make 16 (-1);
          events = Array.make 16 0;
          revents = Array.make 16 0;
          n = 0;
          index = Hashtbl.create 16;
        }
  in
  {
    kind;
    max_events;
    ready_fds = Array.make max_events (-1);
    ready_flags = Array.make max_events 0;
    nready = 0;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.nready <- 0;
    match t.kind with
    | Epoll e ->
      if e.epfd >= 0 then begin
        (try Unix.close (int_fd e.epfd) with Unix.Unix_error _ -> ());
        e.epfd <- -1
      end
    | Poll p ->
      p.n <- 0;
      Hashtbl.reset p.index
  end

let ctl_fail op fd err =
  failwith
    (Printf.sprintf "Poller: epoll_ctl %s fd %d failed (errno %d)" op fd (-err))

let add t fd ~read ~write =
  let fd = fd_int fd in
  let ev = events_of ~read ~write in
  match t.kind with
  | Epoll e ->
    let r = raw_epoll_ctl e.epfd 1 fd ev in
    if r < 0 then ctl_fail "add" fd r
  | Poll p ->
    if Hashtbl.mem p.index fd then
      failwith (Printf.sprintf "Poller: fd %d already registered" fd);
    if p.n = Array.length p.fds then begin
      let grow a fill =
        let b = Array.make (2 * Array.length a) fill in
        Array.blit a 0 b 0 p.n;
        b
      in
      p.fds <- grow p.fds (-1);
      p.events <- grow p.events 0;
      p.revents <- grow p.revents 0
    end;
    p.fds.(p.n) <- fd;
    p.events.(p.n) <- ev;
    Hashtbl.replace p.index fd p.n;
    p.n <- p.n + 1

let modify t fd ~read ~write =
  let fd = fd_int fd in
  let ev = events_of ~read ~write in
  match t.kind with
  | Epoll e ->
    let r = raw_epoll_ctl e.epfd 2 fd ev in
    if r < 0 then ctl_fail "mod" fd r
  | Poll p -> (
    match Hashtbl.find_opt p.index fd with
    | None -> failwith (Printf.sprintf "Poller: fd %d not registered" fd)
    | Some slot -> p.events.(slot) <- ev)

let remove t fd =
  let fd = fd_int fd in
  match t.kind with
  | Epoll e -> ignore (raw_epoll_ctl e.epfd 3 fd 0)
  | Poll p -> (
    match Hashtbl.find_opt p.index fd with
    | None -> ()
    | Some slot ->
      Hashtbl.remove p.index fd;
      let last = p.n - 1 in
      if slot < last then begin
        (* keep [0, n) packed: move the last registration into the hole *)
        p.fds.(slot) <- p.fds.(last);
        p.events.(slot) <- p.events.(last);
        Hashtbl.replace p.index p.fds.(slot) slot
      end;
      p.fds.(last) <- -1;
      p.n <- last)

let wait t ~timeout_ms =
  t.nready <- 0;
  (match t.kind with
  | Epoll e ->
    let n = raw_epoll_wait e.epfd t.ready_fds t.ready_flags t.max_events timeout_ms in
    if n >= 0 then t.nready <- n
    else if n <> -errno_eintr then
      failwith (Printf.sprintf "Poller: epoll_wait failed (errno %d)" (-n))
  | Poll p ->
    let n = raw_poll p.fds p.events p.revents p.n timeout_ms in
    if n > 0 then begin
      (* scan is O(registered), the price of the fallback; the ready
         batch is clamped to max_events and level-triggering re-reports
         the remainder on the next call *)
      let out = ref 0 in
      let i = ref 0 in
      while !out < t.max_events && !i < p.n do
        let rev = p.revents.(!i) in
        if rev <> 0 then begin
          t.ready_fds.(!out) <- p.fds.(!i);
          t.ready_flags.(!out) <- rev;
          incr out
        end;
        incr i
      done;
      t.nready <- !out
    end
    else if n < 0 && n <> -errno_eintr then
      failwith (Printf.sprintf "Poller: poll failed (errno %d)" (-n)));
  t.nready

let check_ready t i =
  if i < 0 || i >= t.nready then invalid_arg "Poller: ready index out of range"

let ready_fd t i =
  check_ready t i;
  int_fd t.ready_fds.(i)

let ready_read t i =
  check_ready t i;
  t.ready_flags.(i) land ev_read <> 0

let ready_write t i =
  check_ready t i;
  t.ready_flags.(i) land ev_write <> 0

let ready_error t i =
  check_ready t i;
  t.ready_flags.(i) land ev_error <> 0

(* --- one-shot waits ------------------------------------------------------ *)

let wait_one fd interest seconds =
  let fds = [| fd_int fd |] in
  let events = [| interest |] in
  let revents = [| 0 |] in
  let timeout_ms =
    if seconds < 0.0 then -1 else int_of_float (Float.ceil (seconds *. 1000.0))
  in
  let n = raw_poll fds events revents 1 timeout_ms in
  n > 0 && revents.(0) land (interest lor ev_error) <> 0

let wait_readable fd seconds = wait_one fd ev_read seconds

let wait_writable fd seconds = wait_one fd ev_write seconds
