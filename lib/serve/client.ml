(* Typed requests over the raw line client in [Serve]. Every call is
   total from the caller's point of view: socket errors, timeouts,
   malformed replies and structured server errors all come back as
   [Error message]. The connection is NOT safe to reuse after an
   [Error] — a timed-out call may leave its reply in flight, so the
   next call would read the previous answer. The dispatcher closes and
   reconnects on any failure for exactly this reason. *)

type t = {
  addr : Serve.address;
  raw : Serve.client;
  mutable next_id : int;
}

let address c = c.addr

let connect ?timeout addr =
  match Serve.connect ?timeout addr with
  | raw -> Ok { addr; raw; next_id = 1 }
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Format.asprintf "connect %a: %s" Serve.pp_address addr
         (Unix.error_message e))
  | exception Invalid_argument msg | exception Failure msg -> Error msg

let close c = Serve.close_client c.raw

let with_client ?timeout addr f =
  match connect ?timeout addr with
  | Error _ as e -> e
  | Ok c -> Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

let call c ~meth params decode =
  let id = c.next_id in
  c.next_id <- id + 1;
  let line = Rpc.render_request ~id:(Jsonx.Int id) ~meth params in
  match Serve.call c.raw line with
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | reply -> (
    match Jsonx.parse reply with
    | Error msg -> Error ("malformed reply: " ^ msg)
    | Ok json -> (
      if Jsonx.member "id" json <> Some (Jsonx.Int id) then
        Error "reply id does not match request"
      else
        match Jsonx.member "ok" json with
        | Some (Jsonx.Bool true) -> (
          match Jsonx.member "result" json with
          | Some result -> decode result
          | None -> Error "reply missing \"result\"")
        | Some (Jsonx.Bool false) ->
          let get k =
            match Option.bind (Jsonx.member "error" json) (Jsonx.member k) with
            | Some (Jsonx.Str s) -> s
            | _ -> "?"
          in
          Error (Printf.sprintf "%s: %s" (get "code") (get "message"))
        | _ -> Error "reply missing \"ok\""))

let ping c =
  call c ~meth:"ping" (Jsonx.Obj []) (function
    | Jsonx.Str "pong" -> Ok ()
    | other -> Error ("unexpected ping result: " ^ Jsonx.to_string other))

let protocol_version c =
  call c ~meth:"stats" (Jsonx.Obj []) (fun result ->
      (* a pre-versioning server omits the field; per the compatibility
         rule that means protocol version 1 *)
      match Jsonx.member "protocol_version" result with
      | Some (Jsonx.Int v) -> Ok v
      | None -> Ok 1
      | Some other ->
        Error ("unexpected protocol_version: " ^ Jsonx.to_string other))

let census_shard c shard =
  call c ~meth:"census-shard" (Rpc.shard_params shard) Rpc.census_result_of_json
