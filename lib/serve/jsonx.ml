type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 64

(* --- parsing ------------------------------------------------------------ *)

(* Internal-only exception: [parse] catches it at its boundary, so the
   public API stays total. The payload is (position, message). *)
exception Bad of int * string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let fail c msg = raise (Bad (c.pos, msg))

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let len = String.length word in
  if c.pos + len <= String.length c.s && String.sub c.s c.pos len = word then begin
    c.pos <- c.pos + len;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad \\u escape"

let hex4 c =
  if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
  let v =
    (hex_digit c c.s.[c.pos] lsl 12)
    lor (hex_digit c c.s.[c.pos + 1] lsl 8)
    lor (hex_digit c c.s.[c.pos + 2] lsl 4)
    lor hex_digit c c.s.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.s then fail c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> (
      if c.pos >= String.length c.s then fail c "unterminated escape";
      let e = c.s.[c.pos] in
      c.pos <- c.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        let hi = hex4 c in
        if hi >= 0xd800 && hi <= 0xdbff then begin
          (* surrogate pair: the low half must follow immediately *)
          if
            c.pos + 2 <= String.length c.s
            && c.s.[c.pos] = '\\'
            && c.s.[c.pos + 1] = 'u'
          then begin
            c.pos <- c.pos + 2;
            let lo = hex4 c in
            if lo < 0xdc00 || lo > 0xdfff then fail c "unpaired surrogate";
            add_utf8 buf (0x10000 + ((hi - 0xd800) lsl 10) + (lo - 0xdc00))
          end
          else fail c "unpaired surrogate"
        end
        else if hi >= 0xdc00 && hi <= 0xdfff then fail c "unpaired surrogate"
        else add_utf8 buf hi
      | _ -> fail c "bad escape");
      loop ())
    | '\000' .. '\031' -> fail c "raw control character in string"
    | ch ->
      Buffer.add_char buf ch;
      loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  let len = String.length c.s in
  let is_digit ch = ch >= '0' && ch <= '9' in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  let digits () =
    let d0 = c.pos in
    while c.pos < len && is_digit c.s.[c.pos] do
      c.pos <- c.pos + 1
    done;
    if c.pos = d0 then fail c "expected digit"
  in
  digits ();
  let integral = ref true in
  if peek c = Some '.' then begin
    integral := false;
    c.pos <- c.pos + 1;
    digits ()
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    integral := false;
    c.pos <- c.pos + 1;
    (match peek c with
    | Some ('+' | '-') -> c.pos <- c.pos + 1
    | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if !integral then
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* overflows OCaml int *)
  else Float (float_of_string text)

let rec parse_value c depth =
  if depth > max_depth then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c (depth + 1) in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value c (depth + 1) in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { s; pos = 0 } in
  match
    let v = parse_value c 0 in
    skip_ws c;
    if c.pos <> String.length s then fail c "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (pos, msg) ->
    Error (Printf.sprintf "json: %s at byte %d" msg pos)
  | exception Failure msg -> Error (Printf.sprintf "json: %s" msg)

(* --- printing ----------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\000' .. '\031' ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let float_text f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_text f)
  | Str s -> escape_into buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        render buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        render buf v)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 64 in
  render buf v;
  Buffer.contents buf

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj ms -> List.assoc_opt k ms | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
