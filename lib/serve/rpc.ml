let protocol_version = 2

(* Version 1 is the pre-[Game.t] wire format: no ["game"] field on the
   envelope level, games spelled only "sum"/"max". Version 2 adds the
   extensible game registry ("game" accepting alpha:<float> spellings and
   the [unsupported_game] error code). Requests from either era are
   served: the v1 grammar is a subset of v2's, so old clients keep
   getting byte-identical replies. *)
let min_protocol_version = 1

type request =
  | Ping
  | Stats
  | Info of { g6 : string; graph : Graph.t }
  | Check of { game : Game.t; g6 : string; graph : Graph.t }
  | Census_shard of Census.shard

type error_code =
  | Parse_error
  | Invalid_request
  | Unsupported_version
  | Unsupported_game
  | Unknown_method
  | Invalid_params
  | Bad_graph6
  | Too_large
  | Timeout
  | Internal

let error_code_name = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unsupported_version -> "unsupported_version"
  | Unsupported_game -> "unsupported_game"
  | Unknown_method -> "unknown_method"
  | Invalid_params -> "invalid_params"
  | Bad_graph6 -> "bad_graph6"
  | Too_large -> "too_large"
  | Timeout -> "timeout"
  | Internal -> "internal"

(* --- request parsing ----------------------------------------------------- *)

let parse_request line =
  match Jsonx.parse line with
  | Error msg -> Error (Jsonx.Null, Parse_error, msg)
  | Ok json -> (
    match json with
    | Jsonx.Obj _ -> (
      let id =
        match Jsonx.member "id" json with
        | None -> Ok Jsonx.Null
        | Some (Jsonx.Null | Jsonx.Int _ | Jsonx.Str _) as some ->
          Ok (Option.get some)
        | Some _ -> Error "id must be an integer, a string or null"
      in
      match id with
      | Error msg -> Error (Jsonx.Null, Invalid_request, msg)
      | Ok id -> (
        let fail code msg = Error (id, code, msg) in
        (* envelope version: absent means 1 (the pre-versioning wire
           format); anything this server does not speak gets a structured
           refusal so old servers and new clients fail loudly, not
           confusingly *)
        let version_ok =
          match Jsonx.member "v" json with
          | None -> Ok ()
          | Some (Jsonx.Int v)
            when v >= min_protocol_version && v <= protocol_version ->
            Ok ()
          | Some (Jsonx.Int v) ->
            Error
              ( Unsupported_version,
                Printf.sprintf
                  "protocol version %d is not supported (this server speaks %d..%d)"
                  v min_protocol_version protocol_version )
          | Some _ -> Error (Invalid_request, "\"v\" must be an integer")
        in
        match version_ok with
        | Error (code, msg) -> fail code msg
        | Ok () -> (
        let params = Option.value ~default:(Jsonx.Obj []) (Jsonx.member "params" json) in
        let str_param k = Option.bind (Jsonx.member k params) Jsonx.to_str in
        let int_param k = Option.bind (Jsonx.member k params) Jsonx.to_int in
        let game () =
          match str_param "game" with
          | Some s -> (
            (* an unknown or malformed game is a structured refusal
               ([unsupported_game]), never a parse failure: a v1 server
               rejecting a v2 spelling must fail loudly, not confusingly *)
            match Game.of_string s with
            | Ok g -> Ok g
            | Error msg -> Error (Unsupported_game, msg))
          | None -> (
            (* legacy pre-registry field: basic games only *)
            match str_param "version" with
            | None -> Ok Game.Sum (* protocol default, like the CLI *)
            | Some "sum" -> Ok Game.Sum
            | Some "max" -> Ok Game.Max
            | Some s ->
              Error
                ( Unsupported_game,
                  Printf.sprintf
                    "unknown game %S in legacy \"version\" field (expected \
                     sum or max; use \"game\" for variants)"
                    s ))
        in
        let graph () =
          match str_param "graph6" with
          | None -> Error `Missing
          | Some s -> (
            match Graph6.decode_result s with
            | Ok g -> Ok (s, g)
            | Error msg -> Error (`Bad msg))
        in
        match Jsonx.member "method" json with
        | None -> fail Invalid_request "missing \"method\""
        | Some (Jsonx.Str meth) -> (
          match params with
          | Jsonx.Obj _ -> (
            match meth with
            | "ping" -> Ok (id, Ping)
            | "stats" -> Ok (id, Stats)
            | "info" -> (
              match graph () with
              | Ok (g6, graph) -> Ok (id, Info { g6; graph })
              | Error `Missing -> fail Invalid_params "missing params.graph6"
              | Error (`Bad msg) -> fail Bad_graph6 msg)
            | "check" -> (
              match (game (), graph ()) with
              | Error (code, msg), _ -> fail code msg
              | _, Error `Missing -> fail Invalid_params "missing params.graph6"
              | _, Error (`Bad msg) -> fail Bad_graph6 msg
              | Ok game, Ok (g6, graph) -> Ok (id, Check { game; g6; graph }))
            | "census-shard" -> (
              match game () with
              | Error (code, msg) -> fail code msg
              | Ok game -> (
                let kind =
                  match str_param "kind" with
                  | Some s -> (
                    match Census.kind_of_name s with
                    | Some k -> Ok k
                    | None ->
                      Error
                        (Printf.sprintf
                           "unknown kind %S (expected trees, graphs or orderly)" s))
                  | None -> Error "missing params.kind"
                in
                match (kind, int_param "n", int_param "lo", int_param "hi") with
                | Error msg, _, _, _ -> fail Invalid_params msg
                | _, None, _, _ -> fail Invalid_params "missing integer params.n"
                | _, _, None, _ -> fail Invalid_params "missing integer params.lo"
                | _, _, _, None -> fail Invalid_params "missing integer params.hi"
                | Ok kind, Some n, Some lo, Some hi ->
                  Ok (id, Census_shard { Census.kind; game; n; lo; hi })))
            | _ -> fail Unknown_method (Printf.sprintf "unknown method %S" meth))
          | _ -> fail Invalid_request "params must be an object")
        | Some _ -> fail Invalid_request "method must be a string")))
    | _ -> Error (Jsonx.Null, Invalid_request, "request must be a JSON object"))

(* --- result builders ----------------------------------------------------- *)

let ping_result = Jsonx.Str "pong"

let opt_int = function Some d -> Jsonx.Int d | None -> Jsonx.Null

let info_result g =
  Jsonx.Obj
    [
      ("n", Jsonx.Int (Graph.n g));
      ("m", Jsonx.Int (Graph.m g));
      ("connected", Jsonx.Bool (Components.is_connected g));
      ("diameter", opt_int (Metrics.diameter g));
      ("radius", opt_int (Metrics.radius g));
      ("girth", opt_int (Metrics.girth g));
      ("min_degree", Jsonx.Int (if Graph.n g = 0 then 0 else Graph.min_degree g));
      ("max_degree", Jsonx.Int (Graph.max_degree g));
      ("wiener", opt_int (Metrics.wiener_index g));
      ("graph6", Jsonx.Str (Graph6.encode g));
      ("protocol_version", Jsonx.Int protocol_version);
    ]

let check_result game verdict g =
  let base =
    [
      ("game", Jsonx.Str (Game.to_string game));
      ( "verdict",
        Jsonx.Str
          (match verdict with
          | Equilibrium.Equilibrium -> "equilibrium"
          | Equilibrium.Disconnected -> "disconnected"
          | Equilibrium.Violation _ | Equilibrium.Alpha_violation _ ->
            "violation") );
    ]
  in
  let witness =
    match verdict with
    | Equilibrium.Violation (move, delta) ->
      [
        ( "witness",
          Jsonx.Obj
            [
              ("move", Jsonx.Str (Swap.move_to_string move));
              ("delta", Jsonx.Int delta);
            ] );
      ]
    | Equilibrium.Alpha_violation (move, delta) ->
      [
        ( "witness",
          Jsonx.Obj
            [
              ("move", Jsonx.Str (Alpha_game.move_to_string move));
              ("delta", Jsonx.Float delta);
            ] );
      ]
    | Equilibrium.Equilibrium | Equilibrium.Disconnected -> []
  in
  Jsonx.Obj (base @ witness @ [ ("diameter", opt_int (Metrics.diameter g)) ])

let verdict_is_invariant = function
  | Equilibrium.Equilibrium | Equilibrium.Disconnected -> true
  | Equilibrium.Violation _ | Equilibrium.Alpha_violation _ -> false

let tree_census_result (c : Census.tree_census) =
  Jsonx.Obj
    [
      ("kind", Jsonx.Str "trees");
      ("n", Jsonx.Int c.Census.n);
      ("total", Jsonx.Int c.Census.total);
      ("equilibria", Jsonx.Int c.Census.equilibria);
      ("stars", Jsonx.Int c.Census.stars);
      ("double_stars", Jsonx.Int c.Census.double_stars);
      ("max_eq_diameter", Jsonx.Int c.Census.max_eq_diameter);
      ("witnesses_verified", Jsonx.Int c.Census.witnesses_verified);
    ]

let graph_census_result ?(kind = "graphs") (c : Census.graph_census) =
  Jsonx.Obj
    [
      ("kind", Jsonx.Str kind);
      ("n", Jsonx.Int c.Census.n);
      ("connected", Jsonx.Int c.Census.connected);
      ("equilibria_labeled", Jsonx.Int c.Census.equilibria_labeled);
      ( "equilibria_iso",
        Jsonx.List
          (List.map (fun g -> Jsonx.Str (Graph6.encode g)) c.Census.equilibria_iso)
      );
      ( "diameter_histogram",
        Jsonx.List
          (List.map
             (fun (d, k) -> Jsonx.List [ Jsonx.Int d; Jsonx.Int k ])
             c.Census.diameter_histogram) );
      ("max_diameter", Jsonx.Int c.Census.max_diameter);
    ]

let census_result = function
  | Census.Tree_result c -> tree_census_result c
  | Census.Graph_result c -> graph_census_result c
  | Census.Orderly_result c -> graph_census_result ~kind:"orderly" c

(* --- census result decoders ----------------------------------------------- *)

(* Inverses of the builders above, for the two readers of census result
   JSON outside the server: the typed client decoding worker replies and
   the dispatcher's journal replaying checkpointed shards. Total — any
   shape mismatch is an [Error], never an exception. *)

let int_field json k =
  match Jsonx.member k json with
  | Some (Jsonx.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "census result: missing integer %S" k)

let ( let* ) = Result.bind

let tree_census_of_json json =
  let* n = int_field json "n" in
  let* total = int_field json "total" in
  let* equilibria = int_field json "equilibria" in
  let* stars = int_field json "stars" in
  let* double_stars = int_field json "double_stars" in
  let* max_eq_diameter = int_field json "max_eq_diameter" in
  let* witnesses_verified = int_field json "witnesses_verified" in
  Ok
    {
      Census.n;
      total;
      equilibria;
      stars;
      double_stars;
      max_eq_diameter;
      witnesses_verified;
    }

let decode_each decode l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
      match decode x with
      | Ok y -> go (y :: acc) rest
      | Error _ as e -> e)
  in
  go [] l

let graph_census_of_json json =
  let* n = int_field json "n" in
  let* connected = int_field json "connected" in
  let* equilibria_labeled = int_field json "equilibria_labeled" in
  let* equilibria_iso =
    match Jsonx.member "equilibria_iso" json with
    | Some (Jsonx.List l) ->
      decode_each
        (function
          | Jsonx.Str g6 -> Graph6.decode_result g6
          | _ -> Error "census result: equilibria_iso entries must be strings")
        l
    | _ -> Error "census result: missing list \"equilibria_iso\""
  in
  let* diameter_histogram =
    match Jsonx.member "diameter_histogram" json with
    | Some (Jsonx.List l) ->
      decode_each
        (function
          | Jsonx.List [ Jsonx.Int d; Jsonx.Int k ] -> Ok (d, k)
          | _ -> Error "census result: diameter_histogram entries must be [d, k]")
        l
    | _ -> Error "census result: missing list \"diameter_histogram\""
  in
  let* max_diameter = int_field json "max_diameter" in
  Ok
    {
      Census.n;
      connected;
      equilibria_labeled;
      equilibria_iso;
      diameter_histogram;
      max_diameter;
    }

let census_result_of_json json =
  match Jsonx.member "kind" json with
  | Some (Jsonx.Str "trees") ->
    Result.map (fun c -> Census.Tree_result c) (tree_census_of_json json)
  | Some (Jsonx.Str "graphs") ->
    Result.map (fun c -> Census.Graph_result c) (graph_census_of_json json)
  | Some (Jsonx.Str "orderly") ->
    Result.map (fun c -> Census.Orderly_result c) (graph_census_of_json json)
  | _ -> Error "census result: missing \"kind\" (trees, graphs or orderly)"

(* --- request builders ----------------------------------------------------- *)

let shard_params (s : Census.shard) =
  Jsonx.Obj
    [
      ("kind", Jsonx.Str (Census.kind_name s.Census.kind));
      ("game", Jsonx.Str (Game.to_string s.Census.game));
      ("n", Jsonx.Int s.Census.n);
      ("lo", Jsonx.Int s.Census.lo);
      ("hi", Jsonx.Int s.Census.hi);
    ]

let render_request ?(id = Jsonx.Null) ~meth params =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("v", Jsonx.Int protocol_version);
         ("id", id);
         ("method", Jsonx.Str meth);
         ("params", params);
       ])

(* --- response envelopes -------------------------------------------------- *)

let render_ok ~id ~result =
  Printf.sprintf "{\"id\":%s,\"ok\":true,\"result\":%s}" (Jsonx.to_string id) result

let render_error ~id code msg =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("id", id);
         ("ok", Jsonx.Bool false);
         ( "error",
           Jsonx.Obj
             [
               ("code", Jsonx.Str (error_code_name code));
               ("message", Jsonx.Str msg);
             ] );
       ])
