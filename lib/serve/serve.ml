(* Event-driven serving core: per-core worker domains, each running a
   level-triggered Poller (epoll on Linux, poll elsewhere) over
   non-blocking sockets. Accept threads hand fresh connections to
   workers round-robin through a pipe-woken inbox; each connection
   carries a reusable read frame and write buffer, so a pipelined
   client's N requests cost one read wakeup, N dispatches and one
   (batched) write — no per-request thread, no per-request buffer.

   Responses go back in request order per connection because each
   worker processes its connections' lines synchronously, in arrival
   order. Heavy kernels still enter the shared domain pool one region
   at a time ([pool_lock]); cache lookups go to per-shard locks
   ([Lru_sharded]), so workers contend only when keys collide. *)

type address = Unix_sock of string | Tcp of string * int

let pp_address ppf = function
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

type config = {
  addresses : address list;
  jobs : int;
  workers : int;
  cache_capacity : int;
  cache_shards : int;
  max_request_bytes : int;
  max_graph_vertices : int;
  census_slice : int;
  request_timeout : float;
  write_high_water : int;
  atlas_dir : string option;
      (* warm-start tier under the LRU: persistent content-addressed
         store consulted on cache misses and populated on computes *)
}

let default_config =
  {
    addresses = [];
    jobs = 0;
    workers = 0;
    cache_capacity = 4096;
    cache_shards = 0;
    max_request_bytes = 1 lsl 20;
    max_graph_vertices = 512;
    census_slice = 4096;
    request_timeout = 30.0;
    write_high_water = 1 lsl 20;
    atlas_dir = None;
  }

external fd_int : Unix.file_descr -> int = "%identity"

(* --- telemetry (all no-ops while --stats is off) ------------------------- *)

let m_requests = Telemetry.counter "serve.requests"

let m_ok = Telemetry.counter "serve.ok"

let m_errors = Telemetry.counter "serve.errors"

let m_conns = Telemetry.counter "serve.connections"

let m_cache_hits = Telemetry.counter "serve.cache_hits"

let m_cache_misses = Telemetry.counter "serve.cache_misses"

let m_bytes_in = Telemetry.counter "serve.bytes_in"

let m_bytes_out = Telemetry.counter "serve.bytes_out"

let m_latency = Telemetry.histogram "serve.latency_us"

let m_inflight = Telemetry.gauge "serve.in_flight"

let m_wakeups = Telemetry.counter "serve.evloop.wakeups"

let m_ready_batch = Telemetry.histogram "serve.evloop.ready_batch"

let m_depth = Telemetry.histogram "serve.pipeline_depth"

(* --- in-band histograms --------------------------------------------------

   The stats method reports live values whether or not telemetry is on,
   so the event loop keeps its own tiny log2 histograms: plain int
   arrays, one writer (the owning worker domain), read racily by stats
   snapshots — monitoring-grade, like every other live counter here. *)

let hist_buckets = 16

let hist_observe h v =
  let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
  let b = if v <= 1 then 0 else min (hist_buckets - 1) (log2 v 0) in
  h.(b) <- h.(b) + 1

let hist_sum into from =
  Array.iteri (fun i v -> into.(i) <- into.(i) + v) from;
  into

(* --- server state -------------------------------------------------------- *)

type worker = {
  w_index : int;
  w_wake_r : Unix.file_descr;
  w_wake_w : Unix.file_descr;
  w_inbox : Unix.file_descr Queue.t;
  w_inbox_lock : Mutex.t;
  (* live event-loop stats; single-writer (the worker domain) *)
  mutable w_wakeups : int;
  w_batch_hist : int array;
  w_depth_hist : int array;
  mutable w_conns : int;
  mutable w_domain : unit Domain.t option;
}

type t = {
  cfg : config;
  pool : Pool.t;
  pool_lock : Mutex.t;
  cache : string Lru_sharded.t;
  (* memo of graph6 text -> canonical form: canonicalization is the
     expensive part of a canonical-cache probe (highly symmetric graphs
     backtrack over large automorphism groups), so repeated texts must
     not pay it twice *)
  canon : string Lru_sharded.t;
  (* disk-backed warm-start tier (shared with census runs via the CLI);
     None unless [atlas_dir] is configured *)
  atlas : Atlas.t option;
  stopping : bool Atomic.t;
  listeners : (address * Unix.file_descr) list;
  mutable accept_threads : Thread.t list;
  workers : worker array;
  rr : int Atomic.t;  (* round-robin connection handoff cursor *)
  backend : string;
  (* live counters for the in-band stats method, independent of the
     telemetry switch *)
  requests : int Atomic.t;
  ok_count : int Atomic.t;
  err_count : int Atomic.t;
  in_flight : int Atomic.t;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  started_at : float;
  mutable stopped : bool;
  stop_lock : Mutex.t;
}

(* --- cache --------------------------------------------------------------- *)

let count_hit srv =
  Atomic.incr srv.hit_count;
  Telemetry.incr m_cache_hits

let count_miss srv =
  Atomic.incr srv.miss_count;
  Telemetry.incr m_cache_misses

(* --- dispatch ------------------------------------------------------------ *)

let stats_result srv =
  let shards = Lru_sharded.shard_stats srv.cache in
  let batch = Array.make hist_buckets 0 in
  let depth = Array.make hist_buckets 0 in
  let wakeups = ref 0 in
  let open_conns = ref 0 in
  Array.iter
    (fun w ->
      wakeups := !wakeups + w.w_wakeups;
      open_conns := !open_conns + w.w_conns;
      ignore (hist_sum batch w.w_batch_hist);
      ignore (hist_sum depth w.w_depth_hist))
    srv.workers;
  let hist_json h =
    Jsonx.List (Array.to_list (Array.map (fun v -> Jsonx.Int v) h))
  in
  Jsonx.Obj
    ([
      ("protocol_version", Jsonx.Int Rpc.protocol_version);
      ("requests", Jsonx.Int (Atomic.get srv.requests));
      ("ok", Jsonx.Int (Atomic.get srv.ok_count));
      ("errors", Jsonx.Int (Atomic.get srv.err_count));
      ("in_flight", Jsonx.Int (Atomic.get srv.in_flight));
      ("jobs", Jsonx.Int (Pool.jobs srv.pool));
      ( "uptime_ms",
        Jsonx.Int (int_of_float ((Unix.gettimeofday () -. srv.started_at) *. 1e3))
      );
      ( "cache",
        Jsonx.Obj
          [
            ("size", Jsonx.Int (Lru_sharded.length srv.cache));
            ("capacity", Jsonx.Int (Lru_sharded.capacity srv.cache));
            ("hits", Jsonx.Int (Atomic.get srv.hit_count));
            ("misses", Jsonx.Int (Atomic.get srv.miss_count));
            ( "shards",
              Jsonx.List
                (Array.to_list
                   (Array.map
                      (fun (s : Lru_sharded.shard_stats) ->
                        Jsonx.Obj
                          [
                            ("size", Jsonx.Int s.Lru_sharded.size);
                            ("hits", Jsonx.Int s.Lru_sharded.hits);
                            ("misses", Jsonx.Int s.Lru_sharded.misses);
                          ])
                      shards)) );
          ] );
      ( "evloop",
        Jsonx.Obj
          [
            ("backend", Jsonx.Str srv.backend);
            ("workers", Jsonx.Int (Array.length srv.workers));
            ("wakeups", Jsonx.Int !wakeups);
            ("connections", Jsonx.Int !open_conns);
            ("ready_batch_log2", hist_json batch);
            ("pipeline_depth_log2", hist_json depth);
          ] );
    ]
    @
    match srv.atlas with
    | None -> []
    | Some a ->
      let s = Atlas.stats a in
      [
        ( "atlas",
          Jsonx.Obj
            [
              ("segments", Jsonx.Int s.Atlas.segments);
              ("records", Jsonx.Int s.Atlas.records);
              ("bytes", Jsonx.Int s.Atlas.bytes);
              ("appended", Jsonx.Int s.Atlas.appended);
              ("duplicates", Jsonx.Int s.Atlas.duplicates);
              ("hits", Jsonx.Int s.Atlas.hits);
              ("misses", Jsonx.Int s.Atlas.misses);
              ("snapshot_used", Jsonx.Bool s.Atlas.snapshot_used);
              ("torn_records", Jsonx.Int s.Atlas.torn_records);
              ("corrupt_records", Jsonx.Int s.Atlas.corrupt_records);
            ] );
      ])

let graph_too_large srv g =
  if Graph.n g > srv.cfg.max_graph_vertices then
    Some
      ( Rpc.Too_large,
        Printf.sprintf "graph has %d vertices; this server accepts at most %d"
          (Graph.n g) srv.cfg.max_graph_vertices )
  else None

let past deadline = Unix.gettimeofday () > deadline

(* Warm-start tier: on an LRU miss, probe the atlas before computing;
   on a compute, append the rendered fragment so every future process
   starts warm. Fragments are stored verbatim, so hits are
   byte-identical to misses. *)
let atlas_find srv key =
  match srv.atlas with
  | None -> None
  | Some a ->
    let r = Atlas.find a key in
    (* warm the LRU so the next probe is a memory hit *)
    Option.iter (fun r -> Lru_sharded.add srv.cache key r) r;
    r

let atlas_add srv key r =
  match srv.atlas with
  | None -> ()
  | Some a -> Atlas.add a ~key ~value:r

let do_info srv (g6 : string) g =
  match graph_too_large srv g with
  | Some err -> Error err
  | None -> (
    let key = "info:" ^ g6 in
    match Lru_sharded.find srv.cache key with
    | Some r ->
      count_hit srv;
      Ok r
    | None -> (
      match atlas_find srv key with
      | Some r ->
        count_hit srv;
        Ok r
      | None ->
        count_miss srv;
        let r = Jsonx.to_string (Rpc.info_result g) in
        Lru_sharded.add srv.cache key r;
        atlas_add srv key r;
        Ok r))

let do_check srv ~deadline game (g6 : string) g =
  match graph_too_large srv g with
  | Some err -> Error err
  | None -> (
    let game_name = Game.to_string game in
    let exact_key = Printf.sprintf "check:%s:%s" game_name g6 in
    (* canonical key: relabelings of an already-checked graph are hits.
       Guarded by the Canon search cap and restricted to the basic games
       — an alpha verdict depends on the labeling through edge ownership,
       so even "equilibrium" must not be served to a relabeling. Larger
       graphs only dedupe on the exact bytes. *)
    let canon_key =
      if Game.is_basic game && Graph.n g <= Canon.max_search_vertices then begin
        let cf =
          match Lru_sharded.find srv.canon g6 with
          | Some cf -> cf
          | None ->
            let cf = Canon.canonical_form g in
            Lru_sharded.add srv.canon g6 cf;
            cf
        in
        Some (Printf.sprintf "check:%s:canon:%s" game_name cf)
      end
      else None
    in
    let cached =
      match Lru_sharded.find srv.cache exact_key with
      | Some r -> Some r
      | None -> Option.bind canon_key (Lru_sharded.find srv.cache)
    in
    (* LRU miss: probe the warm-start tier under the same two keys. The
       canon entry only ever holds isomorphism-invariant fragments, so
       serving it for a relabeling is byte-safe. *)
    let cached =
      match cached with
      | Some _ -> cached
      | None -> (
        match atlas_find srv exact_key with
        | Some _ as r -> r
        | None -> Option.bind canon_key (atlas_find srv))
    in
    match cached with
    | Some r ->
      count_hit srv;
      Ok r
    | None ->
      count_miss srv;
      if past deadline then
        Error (Rpc.Timeout, "deadline expired before dispatch")
      else begin
        Mutex.lock srv.pool_lock;
        (* the wait queued on [pool_lock] (behind a heavy check) counts
           against the deadline too: do not burn pool time on a reply
           the client has already given up on *)
        let verdict =
          Fun.protect
            ~finally:(fun () -> Mutex.unlock srv.pool_lock)
            (fun () ->
              if past deadline then None
              else Some (Equilibrium.check ~pool:srv.pool game g))
        in
        match verdict with
        | None ->
          Error (Rpc.Timeout, "deadline expired while queued for the pool")
        | Some verdict ->
          let r = Jsonx.to_string (Rpc.check_result game verdict g) in
          Lru_sharded.add srv.cache exact_key r;
          atlas_add srv exact_key r;
          (* a violation witness names concrete vertices, so it is only
             valid for this labeling — never serve it to an isomorphic
             relabeling *)
          if Rpc.verdict_is_invariant verdict then begin
            Option.iter (fun k -> Lru_sharded.add srv.cache k r) canon_key;
            Option.iter (fun k -> atlas_add srv k r) canon_key
          end;
          Ok r
      end)

let do_census srv ~deadline (shard : Census.shard) =
  match Census.validate_shard shard with
  | Error msg -> Error (Rpc.Invalid_params, msg)
  | Ok () ->
    (* deadline-checked slices: a shard is the client-facing unit of
       parallelism (fan disjoint shards across requests), a slice is
       the server-side unit of interruption *)
    let slice = max 1 srv.cfg.census_slice in
    let timeout_err =
      ( Rpc.Timeout,
        Printf.sprintf "deadline expired inside census shard [%d, %d)"
          shard.Census.lo shard.Census.hi )
    in
    let rec go acc cursor =
      if cursor >= shard.Census.hi then
        Ok (Jsonx.to_string (Rpc.census_result acc))
      else if past deadline then Error timeout_err
      else begin
        let stop = min shard.Census.hi (cursor + slice) in
        let part =
          Census.run_shard ?atlas:srv.atlas
            { shard with Census.lo = cursor; hi = stop }
        in
        go (Census.merge_result acc part) stop
      end
    in
    go
      (Census.run_shard { shard with Census.hi = shard.Census.lo })
      shard.Census.lo

let dispatch srv ~deadline = function
  | Rpc.Ping -> Ok (Jsonx.to_string Rpc.ping_result)
  | Rpc.Stats -> Ok (Jsonx.to_string (stats_result srv))
  | Rpc.Info { g6; graph } -> do_info srv g6 graph
  | Rpc.Check { game; g6; graph } -> do_check srv ~deadline game g6 graph
  | Rpc.Census_shard shard -> do_census srv ~deadline shard

(* Everything below the envelope goes through here: every line gets a
   reply, every exception becomes an [internal] error, the server never
   dies on a request. *)
let process_request srv line =
  Atomic.incr srv.requests;
  Telemetry.incr m_requests;
  Atomic.incr srv.in_flight;
  Telemetry.set_gauge m_inflight (Atomic.get srv.in_flight);
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. srv.cfg.request_timeout in
  let response =
    if String.length line > srv.cfg.max_request_bytes then begin
      Atomic.incr srv.err_count;
      Telemetry.incr m_errors;
      Rpc.render_error ~id:Jsonx.Null Rpc.Too_large
        (Printf.sprintf "request exceeds %d bytes" srv.cfg.max_request_bytes)
    end
    else begin
      let id, outcome =
        match Rpc.parse_request line with
        | Error (id, code, msg) -> (id, Error (code, msg))
        | Ok (id, req) -> (
          ( id,
            try dispatch srv ~deadline req with
            | Invalid_argument msg -> Error (Rpc.Invalid_params, msg)
            | e -> Error (Rpc.Internal, Printexc.to_string e) ))
      in
      match outcome with
      | Ok result ->
        Atomic.incr srv.ok_count;
        Telemetry.incr m_ok;
        Rpc.render_ok ~id ~result
      | Error (code, msg) ->
        Atomic.incr srv.err_count;
        Telemetry.incr m_errors;
        Rpc.render_error ~id code msg
    end
  in
  Atomic.decr srv.in_flight;
  Telemetry.set_gauge m_inflight (Atomic.get srv.in_flight);
  Telemetry.observe m_latency (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  response

(* --- connections ---------------------------------------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  c_frame : Lineframe.t;
  mutable c_out : Bytes.t;  (* pending output: c_out[c_opos, c_olen) *)
  mutable c_opos : int;
  mutable c_olen : int;
  mutable c_want_read : bool;  (* interest currently registered *)
  mutable c_want_write : bool;
  mutable c_eof : bool;  (* peer closed its write side *)
  mutable c_overflow : bool;  (* framing lost; close once flushed *)
  mutable c_closed : bool;
}

let out_pending c = c.c_olen - c.c_opos

let append_out c (s : string) =
  let k = String.length s in
  let cap = Bytes.length c.c_out in
  if c.c_olen + k + 1 > cap then begin
    (* compact: flushed bytes at the front are free space *)
    let live = out_pending c in
    if c.c_opos > 0 then begin
      Bytes.blit c.c_out c.c_opos c.c_out 0 live;
      c.c_opos <- 0;
      c.c_olen <- live
    end;
    if c.c_olen + k + 1 > cap then begin
      let want = ref (max cap 4096) in
      while c.c_olen + k + 1 > !want do
        want := !want * 2
      done;
      let bigger = Bytes.create !want in
      Bytes.blit c.c_out 0 bigger 0 c.c_olen;
      c.c_out <- bigger
    end
  end;
  Bytes.blit_string s 0 c.c_out c.c_olen k;
  Bytes.set c.c_out (c.c_olen + k) '\n';
  c.c_olen <- c.c_olen + k + 1

(* --- event-loop workers --------------------------------------------------- *)

let make_worker i =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    w_index = i;
    w_wake_r = wake_r;
    w_wake_w = wake_w;
    w_inbox = Queue.create ();
    w_inbox_lock = Mutex.create ();
    w_wakeups = 0;
    w_batch_hist = Array.make hist_buckets 0;
    w_depth_hist = Array.make hist_buckets 0;
    w_conns = 0;
    w_domain = None;
  }

let wake worker =
  match Unix.write_substring worker.w_wake_w "w" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    () (* pipe full: a wakeup is already pending *)
  | exception Unix.Unix_error _ -> ()

let worker_loop srv w =
  let cfg = srv.cfg in
  let poller = Poller.create () in
  Poller.add poller w.w_wake_r ~read:true ~write:false;
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 64 in
  let chunk = Bytes.create 65536 in
  let close_conn c =
    if not c.c_closed then begin
      c.c_closed <- true;
      Hashtbl.remove conns (fd_int c.c_fd);
      w.w_conns <- w.w_conns - 1;
      Poller.remove poller c.c_fd;
      try Unix.close c.c_fd with Unix.Unix_error _ -> ()
    end
  in
  let update_interest c =
    if not c.c_closed then begin
      let read =
        (not c.c_eof) && (not c.c_overflow) && out_pending c < cfg.write_high_water
      in
      let write = out_pending c > 0 in
      if read <> c.c_want_read || write <> c.c_want_write then begin
        c.c_want_read <- read;
        c.c_want_write <- write;
        Poller.modify poller c.c_fd ~read ~write
      end
    end
  in
  let try_flush c =
    let live = ref true in
    while !live && out_pending c > 0 do
      match Unix.write c.c_fd c.c_out c.c_opos (out_pending c) with
      | n ->
        c.c_opos <- c.c_opos + n;
        Telemetry.add m_bytes_out n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        live := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN | Unix.EBADF), _, _)
        ->
        close_conn c;
        live := false
    done;
    if (not c.c_closed) && out_pending c = 0 then begin
      c.c_opos <- 0;
      c.c_olen <- 0
    end
  in
  (* process buffered complete lines while backpressure allows, flush,
     and recompute interest — the one driver for readable, writable and
     drain-phase progress alike.

     Process and flush alternate until neither makes progress: when line
     processing pauses at the high-water mark and the flush then drains
     the output (fast reader, roomy sndbuf), processing must resume —
     stopping there would strand complete lines already sitting in
     [c_frame], and with the rcvbuf empty no event would ever re-drive
     this connection. *)
  let pump ?(ignore_high_water = false) c =
    let depth = ref 0 in
    let frame_exhausted = ref false in (* `More / `Overflow seen *)
    let again = ref true in
    while !again && not c.c_closed do
      let continue = ref true in
      while !continue && not c.c_closed do
        if (not ignore_high_water) && out_pending c >= cfg.write_high_water then
          continue := false
        else
          match Lineframe.next c.c_frame with
          | `Line "" -> () (* blank keep-alive line *)
          | `Line line ->
            incr depth;
            append_out c (process_request srv line)
          | `More ->
            frame_exhausted := true;
            continue := false
          | `Overflow ->
            if not c.c_overflow then begin
              (* the line overran the limit before its newline arrived:
                 framing is lost, so reply once and hang up *)
              c.c_overflow <- true;
              Atomic.incr srv.requests;
              Telemetry.incr m_requests;
              Atomic.incr srv.err_count;
              Telemetry.incr m_errors;
              append_out c
                (Rpc.render_error ~id:Jsonx.Null Rpc.Too_large
                   (Printf.sprintf "request exceeds %d bytes" cfg.max_request_bytes))
            end;
            frame_exhausted := true;
            continue := false
      done;
      if c.c_closed then again := false
      else begin
        try_flush c;
        again :=
          (not c.c_closed)
          && (not !frame_exhausted)
          && (ignore_high_water || out_pending c < cfg.write_high_water)
      end
    done;
    if !depth > 0 then begin
      hist_observe w.w_depth_hist !depth;
      Telemetry.observe m_depth !depth
    end;
    if not c.c_closed then
      if out_pending c = 0 && (c.c_overflow || c.c_eof) then close_conn c
      else update_interest c
  in
  let handle_readable c =
    match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      (* EOF: serve what is buffered, then close once flushed *)
      c.c_eof <- true;
      pump c
    | k ->
      Telemetry.add m_bytes_in k;
      Lineframe.feed c.c_frame chunk 0 k;
      pump c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
      ->
      close_conn c
  in
  let adopt fd =
    Telemetry.incr m_conns;
    let c =
      {
        c_fd = fd;
        c_frame = Lineframe.create ~max_line:cfg.max_request_bytes ();
        c_out = Bytes.create 4096;
        c_opos = 0;
        c_olen = 0;
        c_want_read = true;
        c_want_write = false;
        c_eof = false;
        c_overflow = false;
        c_closed = false;
      }
    in
    Hashtbl.replace conns (fd_int fd) c;
    w.w_conns <- w.w_conns + 1;
    Poller.add poller fd ~read:true ~write:false;
    (* bytes may already be waiting (level-triggering would also catch
       this on the next wait; serving it now saves a wakeup) *)
    handle_readable c
  in
  let drain_inbox () =
    let rec drain_pipe () =
      match Unix.read w.w_wake_r chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | _ -> drain_pipe ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
    in
    drain_pipe ();
    let adopted = ref [] in
    Mutex.lock w.w_inbox_lock;
    Queue.iter (fun fd -> adopted := fd :: !adopted) w.w_inbox;
    Queue.clear w.w_inbox;
    Mutex.unlock w.w_inbox_lock;
    List.iter adopt (List.rev !adopted)
  in
  let wake_fd = fd_int w.w_wake_r in
  while not (Atomic.get srv.stopping) do
    let n = Poller.wait poller ~timeout_ms:250 in
    w.w_wakeups <- w.w_wakeups + 1;
    Telemetry.incr m_wakeups;
    if n > 0 then begin
      hist_observe w.w_batch_hist n;
      Telemetry.observe m_ready_batch n
    end;
    for i = 0 to n - 1 do
      let fd = Poller.ready_fd poller i in
      if fd_int fd = wake_fd then drain_inbox ()
      else
        match Hashtbl.find_opt conns (fd_int fd) with
        | None -> () (* closed earlier in this same batch *)
        | Some c ->
          if Poller.ready_error poller i then close_conn c
          else begin
            if Poller.ready_write poller i then pump c;
            if (not c.c_closed) && Poller.ready_read poller i then handle_readable c
          end
    done
  done;
  (* drain phase: answer every complete line already received (partial
     lines are dropped — same contract as the thread-per-connection
     server), flush with a bounded deadline, close everything *)
  drain_inbox ();
  let deadline = Unix.gettimeofday () +. 5.0 in
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
  List.iter
    (fun c ->
      if not c.c_closed then begin
        pump ~ignore_high_water:true c;
        while
          (not c.c_closed)
          && out_pending c > 0
          && Unix.gettimeofday () < deadline
          && Poller.wait_writable c.c_fd 0.2
        do
          try_flush c
        done;
        close_conn c
      end)
    remaining;
  Mutex.lock w.w_inbox_lock;
  Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) w.w_inbox;
  Queue.clear w.w_inbox;
  Mutex.unlock w.w_inbox_lock;
  Poller.close poller;
  try Unix.close w.w_wake_r with Unix.Unix_error _ -> ()

(* --- sockets ------------------------------------------------------------- *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
      invalid_arg (Printf.sprintf "Serve: cannot resolve host %S" host))

let bind_one addr =
  match addr with
  | Unix_sock path ->
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path (* stale socket *)
    | _ -> invalid_arg (Printf.sprintf "Serve: %s exists and is not a socket" path)
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    (Unix_sock path, fd)
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
    Unix.listen fd 128;
    let bound_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (Tcp (host, bound_port), fd)

let accept_loop srv fd =
  Unix.set_nonblock fd;
  let nworkers = Array.length srv.workers in
  let rec loop () =
    if not (Atomic.get srv.stopping) then
      if Poller.wait_readable fd 0.2 then begin
        match Unix.accept ~cloexec:true fd with
        | conn_fd, _ ->
          if Atomic.get srv.stopping then
            (* raced with shutdown: the workers may already have drained
               their inboxes for the last time, so serve nothing — hang
               up promptly instead of parking the client forever *)
            (try Unix.close conn_fd with Unix.Unix_error _ -> ())
          else begin
            Unix.set_nonblock conn_fd;
            (* latency over batching on TCP: responses are already written
               in as few syscalls as the pipeline allows *)
            (try Unix.setsockopt conn_fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> () (* unix-domain sockets *));
            let w =
              srv.workers.(Atomic.fetch_and_add srv.rr 1 mod nworkers)
            in
            Mutex.lock w.w_inbox_lock;
            Queue.push conn_fd w.w_inbox;
            Mutex.unlock w.w_inbox_lock;
            wake w
          end;
          loop ()
        | exception
            Unix.Unix_error
              ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                | Unix.ECONNABORTED ),
                _,
                _ ) ->
          loop ()
        | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
          (* fd exhaustion is transient — connections close and free
             slots; back off briefly rather than killing the acceptor *)
          (try Unix.sleepf 0.05
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          loop ()
      end
      else loop ()
  in
  (try loop ()
   with e ->
     Printf.eprintf "serve: accept loop died: %s\n%!" (Printexc.to_string e));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- lifecycle ----------------------------------------------------------- *)

let start cfg =
  if cfg.addresses = [] then invalid_arg "Serve.start: no addresses";
  if cfg.jobs < 0 then invalid_arg "Serve.start: jobs < 0";
  if cfg.workers < 0 then invalid_arg "Serve.start: workers < 0";
  if cfg.cache_capacity < 1 then invalid_arg "Serve.start: cache_capacity < 1";
  if cfg.cache_shards < 0 then invalid_arg "Serve.start: cache_shards < 0";
  if cfg.max_request_bytes < 64 then
    invalid_arg "Serve.start: max_request_bytes < 64";
  if cfg.max_graph_vertices < 1 then
    invalid_arg "Serve.start: max_graph_vertices < 1";
  if cfg.request_timeout <= 0.0 then
    invalid_arg "Serve.start: request_timeout <= 0";
  if cfg.write_high_water < 64 then
    invalid_arg "Serve.start: write_high_water < 64";
  (* a vanished client must close one connection, not kill the server *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let jobs = if cfg.jobs = 0 then Pool.available_jobs () else cfg.jobs in
  let nworkers = if cfg.workers = 0 then Pool.available_jobs () else cfg.workers in
  let shards = if cfg.cache_shards = 0 then 8 else cfg.cache_shards in
  (* open the atlas before binding any socket: a locked or damaged
     directory must fail the whole start, not a half-bound server *)
  let atlas =
    match cfg.atlas_dir with
    | None -> None
    | Some dir -> (
      match Atlas.open_ dir with
      | Ok a -> Some a
      | Error m -> invalid_arg ("Serve.start: atlas: " ^ m))
  in
  let listeners =
    try List.map bind_one cfg.addresses
    with e ->
      Option.iter Atlas.close atlas;
      raise e
  in
  let srv =
    {
      cfg;
      pool = Pool.create ~jobs ();
      pool_lock = Mutex.create ();
      cache = Lru_sharded.create ~shards ~capacity:cfg.cache_capacity ();
      canon = Lru_sharded.create ~shards ~capacity:cfg.cache_capacity ();
      atlas;
      stopping = Atomic.make false;
      listeners;
      accept_threads = [];
      workers = Array.init nworkers make_worker;
      rr = Atomic.make 0;
      backend = Poller.available_backend ();
      requests = Atomic.make 0;
      ok_count = Atomic.make 0;
      err_count = Atomic.make 0;
      in_flight = Atomic.make 0;
      hit_count = Atomic.make 0;
      miss_count = Atomic.make 0;
      started_at = Unix.gettimeofday ();
      stopped = false;
      stop_lock = Mutex.create ();
    }
  in
  Array.iter
    (fun w ->
      w.w_domain <-
        Some
          (Domain.spawn (fun () ->
               try worker_loop srv w
               with e ->
                 Printf.eprintf "serve: worker %d died: %s\n%!" w.w_index
                   (Printexc.to_string e))))
    srv.workers;
  srv.accept_threads <-
    List.map (fun (_, fd) -> Thread.create (accept_loop srv) fd) listeners;
  srv

let bound_addresses srv = List.map fst srv.listeners

let backend_name srv = srv.backend

let worker_count srv = Array.length srv.workers

let stop srv =
  Mutex.lock srv.stop_lock;
  let already = srv.stopped in
  srv.stopped <- true;
  Mutex.unlock srv.stop_lock;
  if not already then begin
    Atomic.set srv.stopping true;
    (* accept threads first: after they join, no new connection can be
       pushed into a worker inbox *)
    List.iter Thread.join srv.accept_threads;
    Array.iter wake srv.workers;
    Array.iter
      (fun w ->
        Option.iter Domain.join w.w_domain;
        w.w_domain <- None;
        (* a worker can observe [stopping] on its own poll timeout and
           run its final inbox drain before the accept threads exit; a
           connection accepted in that window lands in an inbox nobody
           reads again — close it here, after both sides have joined *)
        Mutex.lock w.w_inbox_lock;
        Queue.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          w.w_inbox;
        Queue.clear w.w_inbox;
        Mutex.unlock w.w_inbox_lock;
        try Unix.close w.w_wake_w with Unix.Unix_error _ -> ())
      srv.workers;
    Pool.shutdown srv.pool;
    (* after the pool: no in-flight request can append anymore *)
    Option.iter Atlas.close srv.atlas;
    List.iter
      (function
        | Unix_sock path, _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _, _ -> ())
      srv.listeners
  end

let run ?(on_ready = fun _ -> ()) cfg =
  let stop_flag = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
  let old_int = Sys.signal Sys.sigint handler in
  let old_term = Sys.signal Sys.sigterm handler in
  let srv = start cfg in
  on_ready srv;
  while not (Atomic.get stop_flag) do
    try Unix.sleepf 0.2
    with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  stop srv;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term

(* --- client -------------------------------------------------------------- *)

type client = {
  c_cl_fd : Unix.file_descr;
  c_cl_frame : Lineframe.t;
  c_chunk : Bytes.t;
  c_timeout : float;
}

let connect ?(timeout = 30.0) addr =
  let fd =
    match addr with
    | Unix_sock path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (resolve_host host, port));
      fd
  in
  {
    c_cl_fd = fd;
    (* response lines (census tallies) can be far larger than request
       lines; the client frame never overflows in practice *)
    c_cl_frame = Lineframe.create ~max_line:(1 lsl 30) ();
    c_chunk = Bytes.create 65536;
    c_timeout = timeout;
  }

let close_client c = try Unix.close c.c_cl_fd with Unix.Unix_error _ -> ()

let send_line c line =
  let data = line ^ "\n" in
  let len = String.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring c.c_cl_fd data !off (len - !off)
  done

let recv_line c =
  let deadline = Unix.gettimeofday () +. c.c_timeout in
  let rec await () =
    match Lineframe.next c.c_cl_frame with
    | `Line line -> line
    | `Overflow -> failwith "Serve.recv_line: reply exceeds frame limit"
    | `More ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then failwith "Serve.call: timed out awaiting reply"
      else begin
        if Poller.wait_readable c.c_cl_fd (Float.min remaining 0.25) then begin
          match Unix.read c.c_cl_fd c.c_chunk 0 (Bytes.length c.c_chunk) with
          | 0 -> failwith "Serve.call: connection closed by server"
          | k -> Lineframe.feed c.c_cl_frame c.c_chunk 0 k
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        end;
        await ()
      end
  in
  await ()

let call c line =
  send_line c line;
  recv_line c

let with_client ?timeout addr f =
  let c = connect ?timeout addr in
  Fun.protect ~finally:(fun () -> close_client c) (fun () -> f c)
