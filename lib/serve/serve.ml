(* Accept thread per listening address, systhread per connection, domain
   pool for the heavy kernels. Systhreads interleave on one domain (the
   OCaml 5 master lock), so connection handling is concurrency, not
   parallelism — the parallelism lives in the pool, entered by one
   request at a time under [pool_lock]. *)

type address = Unix_sock of string | Tcp of string * int

let pp_address ppf = function
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

type config = {
  addresses : address list;
  jobs : int;
  cache_capacity : int;
  max_request_bytes : int;
  max_graph_vertices : int;
  census_slice : int;
  request_timeout : float;
}

let default_config =
  {
    addresses = [];
    jobs = 0;
    cache_capacity = 4096;
    max_request_bytes = 1 lsl 20;
    max_graph_vertices = 512;
    census_slice = 4096;
    request_timeout = 30.0;
  }

(* --- telemetry (all no-ops while --stats is off) ------------------------- *)

let m_requests = Telemetry.counter "serve.requests"

let m_ok = Telemetry.counter "serve.ok"

let m_errors = Telemetry.counter "serve.errors"

let m_conns = Telemetry.counter "serve.connections"

let m_cache_hits = Telemetry.counter "serve.cache_hits"

let m_cache_misses = Telemetry.counter "serve.cache_misses"

let m_bytes_in = Telemetry.counter "serve.bytes_in"

let m_bytes_out = Telemetry.counter "serve.bytes_out"

let m_latency = Telemetry.histogram "serve.latency_us"

let m_inflight = Telemetry.gauge "serve.in_flight"

(* --- server state -------------------------------------------------------- *)

type t = {
  cfg : config;
  pool : Pool.t;
  pool_lock : Mutex.t;
  cache : (string, string) Lru.t;
  cache_lock : Mutex.t;
  (* memo of graph6 text -> canonical form: canonicalization is the
     expensive part of a canonical-cache probe (highly symmetric graphs
     backtrack over large automorphism groups), so repeated texts must
     not pay it twice *)
  canon : (string, string) Lru.t;
  canon_lock : Mutex.t;
  stopping : bool Atomic.t;
  listeners : (address * Unix.file_descr) list;
  mutable accept_threads : Thread.t list;
  conns : Thread.t list ref;
  conn_lock : Mutex.t;
  (* live counters for the in-band stats method, independent of the
     telemetry switch *)
  requests : int Atomic.t;
  ok_count : int Atomic.t;
  err_count : int Atomic.t;
  in_flight : int Atomic.t;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  started_at : float;
  mutable stopped : bool;
  stop_lock : Mutex.t;
}

(* --- cache --------------------------------------------------------------- *)

let cache_find srv key =
  Mutex.lock srv.cache_lock;
  let r = Lru.find srv.cache key in
  Mutex.unlock srv.cache_lock;
  r

let cache_add srv key v =
  Mutex.lock srv.cache_lock;
  Lru.add srv.cache key v;
  Mutex.unlock srv.cache_lock

let count_hit srv =
  Atomic.incr srv.hit_count;
  Telemetry.incr m_cache_hits

let count_miss srv =
  Atomic.incr srv.miss_count;
  Telemetry.incr m_cache_misses

(* --- dispatch ------------------------------------------------------------ *)

let stats_result srv =
  Mutex.lock srv.cache_lock;
  let size = Lru.length srv.cache and cap = Lru.capacity srv.cache in
  Mutex.unlock srv.cache_lock;
  Jsonx.Obj
    [
      ("protocol_version", Jsonx.Int Rpc.protocol_version);
      ("requests", Jsonx.Int (Atomic.get srv.requests));
      ("ok", Jsonx.Int (Atomic.get srv.ok_count));
      ("errors", Jsonx.Int (Atomic.get srv.err_count));
      ("in_flight", Jsonx.Int (Atomic.get srv.in_flight));
      ("jobs", Jsonx.Int (Pool.jobs srv.pool));
      ( "uptime_ms",
        Jsonx.Int (int_of_float ((Unix.gettimeofday () -. srv.started_at) *. 1e3))
      );
      ( "cache",
        Jsonx.Obj
          [
            ("size", Jsonx.Int size);
            ("capacity", Jsonx.Int cap);
            ("hits", Jsonx.Int (Atomic.get srv.hit_count));
            ("misses", Jsonx.Int (Atomic.get srv.miss_count));
          ] );
    ]

let graph_too_large srv g =
  if Graph.n g > srv.cfg.max_graph_vertices then
    Some
      ( Rpc.Too_large,
        Printf.sprintf "graph has %d vertices; this server accepts at most %d"
          (Graph.n g) srv.cfg.max_graph_vertices )
  else None

let past deadline = Unix.gettimeofday () > deadline

let do_info srv (g6 : string) g =
  match graph_too_large srv g with
  | Some err -> Error err
  | None -> (
    let key = "info:" ^ g6 in
    match cache_find srv key with
    | Some r ->
      count_hit srv;
      Ok r
    | None ->
      count_miss srv;
      let r = Jsonx.to_string (Rpc.info_result g) in
      cache_add srv key r;
      Ok r)

let do_check srv ~deadline version (g6 : string) g =
  match graph_too_large srv g with
  | Some err -> Error err
  | None -> (
    let game = Usage_cost.version_name version in
    let exact_key = Printf.sprintf "check:%s:%s" game g6 in
    (* canonical key: relabelings of an already-checked graph are hits.
       Guarded by the Canon search cap; larger graphs only dedupe on the
       exact bytes. *)
    let canon_key =
      if Graph.n g <= Canon.max_search_vertices then begin
        Mutex.lock srv.canon_lock;
        let memo = Lru.find srv.canon g6 in
        Mutex.unlock srv.canon_lock;
        let cf =
          match memo with
          | Some cf -> cf
          | None ->
            let cf = Canon.canonical_form g in
            Mutex.lock srv.canon_lock;
            Lru.add srv.canon g6 cf;
            Mutex.unlock srv.canon_lock;
            cf
        in
        Some (Printf.sprintf "check:%s:canon:%s" game cf)
      end
      else None
    in
    let cached =
      match cache_find srv exact_key with
      | Some r -> Some r
      | None -> Option.bind canon_key (cache_find srv)
    in
    match cached with
    | Some r ->
      count_hit srv;
      Ok r
    | None ->
      count_miss srv;
      if past deadline then
        Error (Rpc.Timeout, "deadline expired before dispatch")
      else begin
        Mutex.lock srv.pool_lock;
        let verdict =
          Fun.protect
            ~finally:(fun () -> Mutex.unlock srv.pool_lock)
            (fun () -> Equilibrium.check ~pool:srv.pool version g)
        in
        let r = Jsonx.to_string (Rpc.check_result version verdict g) in
        cache_add srv exact_key r;
        (* a violation witness names concrete vertices, so it is only
           valid for this labeling — never serve it to an isomorphic
           relabeling *)
        if Rpc.verdict_is_invariant verdict then
          Option.iter (fun k -> cache_add srv k r) canon_key;
        Ok r
      end)

let do_census srv ~deadline (shard : Census.shard) =
  match Census.validate_shard shard with
  | Error msg -> Error (Rpc.Invalid_params, msg)
  | Ok () ->
    (* deadline-checked slices: a shard is the client-facing unit of
       parallelism (fan disjoint shards across requests), a slice is
       the server-side unit of interruption *)
    let slice = max 1 srv.cfg.census_slice in
    let timeout_err =
      ( Rpc.Timeout,
        Printf.sprintf "deadline expired inside census shard [%d, %d)"
          shard.Census.lo shard.Census.hi )
    in
    let rec go acc cursor =
      if cursor >= shard.Census.hi then
        Ok (Jsonx.to_string (Rpc.census_result acc))
      else if past deadline then Error timeout_err
      else begin
        let stop = min shard.Census.hi (cursor + slice) in
        let part = Census.run_shard { shard with Census.lo = cursor; hi = stop } in
        go (Census.merge_result acc part) stop
      end
    in
    go
      (Census.run_shard { shard with Census.hi = shard.Census.lo })
      shard.Census.lo

let dispatch srv ~deadline = function
  | Rpc.Ping -> Ok (Jsonx.to_string Rpc.ping_result)
  | Rpc.Stats -> Ok (Jsonx.to_string (stats_result srv))
  | Rpc.Info { g6; graph } -> do_info srv g6 graph
  | Rpc.Check { version; g6; graph } -> do_check srv ~deadline version g6 graph
  | Rpc.Census_shard shard -> do_census srv ~deadline shard

(* Everything below the envelope goes through here: every line gets a
   reply, every exception becomes an [internal] error, the server never
   dies on a request. *)
let process_request srv line =
  Atomic.incr srv.requests;
  Telemetry.incr m_requests;
  Atomic.incr srv.in_flight;
  Telemetry.set_gauge m_inflight (Atomic.get srv.in_flight);
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. srv.cfg.request_timeout in
  let response =
    if String.length line > srv.cfg.max_request_bytes then begin
      Atomic.incr srv.err_count;
      Telemetry.incr m_errors;
      Rpc.render_error ~id:Jsonx.Null Rpc.Too_large
        (Printf.sprintf "request exceeds %d bytes" srv.cfg.max_request_bytes)
    end
    else begin
      let id, outcome =
        match Rpc.parse_request line with
        | Error (id, code, msg) -> (id, Error (code, msg))
        | Ok (id, req) -> (
          ( id,
            try dispatch srv ~deadline req with
            | Invalid_argument msg -> Error (Rpc.Invalid_params, msg)
            | e -> Error (Rpc.Internal, Printexc.to_string e) ))
      in
      match outcome with
      | Ok result ->
        Atomic.incr srv.ok_count;
        Telemetry.incr m_ok;
        Rpc.render_ok ~id ~result
      | Error (code, msg) ->
        Atomic.incr srv.err_count;
        Telemetry.incr m_errors;
        Rpc.render_error ~id code msg
    end
  in
  Atomic.decr srv.in_flight;
  Telemetry.set_gauge m_inflight (Atomic.get srv.in_flight);
  Telemetry.observe m_latency (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  response

(* --- sockets ------------------------------------------------------------- *)

let wait_readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let handle_connection srv fd =
  Telemetry.incr m_conns;
  let cfg = srv.cfg in
  let chunk = Bytes.create 65536 in
  let pending = Buffer.create 1024 in
  let scan_from = ref 0 in
  let alive = ref true in
  let send_line line =
    let data = line ^ "\n" in
    let len = String.length data in
    let off = ref 0 in
    try
      while !off < len do
        off := !off + Unix.write_substring fd data !off (len - !off)
      done;
      Telemetry.add m_bytes_out len
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN), _, _)
    -> alive := false
  in
  (* one complete line out of [pending], CRLF-tolerant; [scan_from]
     remembers how far previous scans got so repeated probing of a
     slow-arriving line stays linear *)
  let extract_line () =
    let contents = Buffer.contents pending in
    match String.index_from_opt contents !scan_from '\n' with
    | None ->
      scan_from := String.length contents;
      None
    | Some i ->
      let stop = if i > 0 && contents.[i - 1] = '\r' then i - 1 else i in
      let line = String.sub contents 0 stop in
      Buffer.clear pending;
      Buffer.add_substring pending contents (i + 1) (String.length contents - i - 1);
      scan_from := 0;
      Some line
  in
  let rec loop () =
    if !alive then
      match extract_line () with
      | Some "" -> loop () (* blank keep-alive line *)
      | Some line ->
        send_line (process_request srv line);
        loop ()
      | None ->
        if Buffer.length pending > cfg.max_request_bytes then begin
          (* the line overran the limit before its newline arrived:
             framing is lost, so reply once and hang up *)
          Atomic.incr srv.requests;
          Telemetry.incr m_requests;
          Atomic.incr srv.err_count;
          Telemetry.incr m_errors;
          send_line
            (Rpc.render_error ~id:Jsonx.Null Rpc.Too_large
               (Printf.sprintf "request exceeds %d bytes" cfg.max_request_bytes))
        end
        else if Atomic.get srv.stopping then ()
        else if wait_readable fd 0.25 then begin
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> () (* EOF *)
          | k ->
            Telemetry.add m_bytes_in k;
            Buffer.add_subbytes pending chunk 0 k;
            loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception
              Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
            -> ()
        end
        else loop ()
  in
  (try loop () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
      invalid_arg (Printf.sprintf "Serve: cannot resolve host %S" host))

let bind_one addr =
  match addr with
  | Unix_sock path ->
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path (* stale socket *)
    | _ -> invalid_arg (Printf.sprintf "Serve: %s exists and is not a socket" path)
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (Unix_sock path, fd)
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
    Unix.listen fd 64;
    let bound_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (Tcp (host, bound_port), fd)

let accept_loop srv fd =
  let rec loop () =
    if not (Atomic.get srv.stopping) then
      if wait_readable fd 0.2 then begin
        match Unix.accept ~cloexec:true fd with
        | conn_fd, _ ->
          let th = Thread.create (fun () -> handle_connection srv conn_fd) () in
          Mutex.lock srv.conn_lock;
          srv.conns := th :: !(srv.conns);
          Mutex.unlock srv.conn_lock;
          loop ()
        | exception
            Unix.Unix_error
              ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                | Unix.ECONNABORTED ),
                _,
                _ ) ->
          loop ()
      end
      else loop ()
  in
  (try loop () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- lifecycle ----------------------------------------------------------- *)

let start cfg =
  if cfg.addresses = [] then invalid_arg "Serve.start: no addresses";
  if cfg.jobs < 0 then invalid_arg "Serve.start: jobs < 0";
  if cfg.cache_capacity < 1 then invalid_arg "Serve.start: cache_capacity < 1";
  if cfg.max_request_bytes < 64 then
    invalid_arg "Serve.start: max_request_bytes < 64";
  if cfg.max_graph_vertices < 1 then
    invalid_arg "Serve.start: max_graph_vertices < 1";
  if cfg.request_timeout <= 0.0 then
    invalid_arg "Serve.start: request_timeout <= 0";
  (* a vanished client must close one connection, not kill the server *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let jobs = if cfg.jobs = 0 then Pool.available_jobs () else cfg.jobs in
  let listeners = List.map bind_one cfg.addresses in
  let srv =
    {
      cfg;
      pool = Pool.create ~jobs ();
      pool_lock = Mutex.create ();
      cache = Lru.create ~capacity:cfg.cache_capacity;
      cache_lock = Mutex.create ();
      canon = Lru.create ~capacity:cfg.cache_capacity;
      canon_lock = Mutex.create ();
      stopping = Atomic.make false;
      listeners;
      accept_threads = [];
      conns = ref [];
      conn_lock = Mutex.create ();
      requests = Atomic.make 0;
      ok_count = Atomic.make 0;
      err_count = Atomic.make 0;
      in_flight = Atomic.make 0;
      hit_count = Atomic.make 0;
      miss_count = Atomic.make 0;
      started_at = Unix.gettimeofday ();
      stopped = false;
      stop_lock = Mutex.create ();
    }
  in
  srv.accept_threads <-
    List.map (fun (_, fd) -> Thread.create (accept_loop srv) fd) listeners;
  srv

let bound_addresses srv = List.map fst srv.listeners

let stop srv =
  Mutex.lock srv.stop_lock;
  let already = srv.stopped in
  srv.stopped <- true;
  Mutex.unlock srv.stop_lock;
  if not already then begin
    Atomic.set srv.stopping true;
    (* accept threads first: after they join, no new connection threads
       can appear and the [conns] snapshot below is complete *)
    List.iter Thread.join srv.accept_threads;
    Mutex.lock srv.conn_lock;
    let conns = !(srv.conns) in
    Mutex.unlock srv.conn_lock;
    List.iter Thread.join conns;
    Pool.shutdown srv.pool;
    List.iter
      (function
        | Unix_sock path, _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _, _ -> ())
      srv.listeners
  end

let run ?(on_ready = fun _ -> ()) cfg =
  let stop_flag = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
  let old_int = Sys.signal Sys.sigint handler in
  let old_term = Sys.signal Sys.sigterm handler in
  let srv = start cfg in
  on_ready srv;
  while not (Atomic.get stop_flag) do
    try Unix.sleepf 0.2
    with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  stop srv;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term

(* --- client -------------------------------------------------------------- *)

type client = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  mutable c_scan : int;
  c_timeout : float;
}

let connect ?(timeout = 30.0) addr =
  let fd =
    match addr with
    | Unix_sock path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (resolve_host host, port));
      fd
  in
  { c_fd = fd; c_buf = Buffer.create 256; c_scan = 0; c_timeout = timeout }

let close_client c = try Unix.close c.c_fd with Unix.Unix_error _ -> ()

let call c line =
  let data = line ^ "\n" in
  let len = String.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring c.c_fd data !off (len - !off)
  done;
  let deadline = Unix.gettimeofday () +. c.c_timeout in
  let chunk = Bytes.create 65536 in
  let rec await () =
    let contents = Buffer.contents c.c_buf in
    match String.index_from_opt contents c.c_scan '\n' with
    | Some i ->
      let stop = if i > 0 && contents.[i - 1] = '\r' then i - 1 else i in
      let line = String.sub contents 0 stop in
      Buffer.clear c.c_buf;
      Buffer.add_substring c.c_buf contents (i + 1) (String.length contents - i - 1);
      c.c_scan <- 0;
      line
    | None ->
      c.c_scan <- String.length contents;
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then failwith "Serve.call: timed out awaiting reply"
      else if wait_readable c.c_fd (Float.min remaining 0.25) then begin
        match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "Serve.call: connection closed by server"
        | k ->
          Buffer.add_subbytes c.c_buf chunk 0 k;
          await ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
      end
      else await ()
  in
  await ()

let with_client ?timeout addr f =
  let c = connect ?timeout addr in
  Fun.protect ~finally:(fun () -> close_client c) (fun () -> f c)
