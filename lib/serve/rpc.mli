(** Wire protocol of the serving layer.

    Newline-delimited JSON, one request object per line, one response
    object per line, answered in request order (clients may pipeline).
    The full grammar and error-code table live in DESIGN.md ("Serving
    layer"); this module is the parse/render pair, kept separate from
    the socket machinery so tests can assert byte-identical responses
    against direct library calls.

    A request is [{"v": <int>, "id": <int|string|null>,
    "method": <string>, "params": <object>}] ([v], [id] and [params]
    optional — a missing ["v"] means protocol version 1, the
    pre-versioning wire format); a response echoes the id as
    [{"id": .., "ok": true, "result": ..}] or
    [{"id": .., "ok": false, "error": {"code", "message"}}]. *)

val protocol_version : int
(** The newest version this build speaks (2: the extensible game
    registry — ["game"] accepts [alpha:<float>] spellings and unknown
    games are refused with {!Unsupported_game}). A request carrying a
    ["v"] outside [{!min_protocol_version}..{!protocol_version}] is
    refused with {!Unsupported_version}; [info] and [stats] results
    advertise the value so clients can probe before dispatching work. *)

val min_protocol_version : int
(** The oldest version still served (1, the pre-registry wire format:
    no envelope changes are needed for v1 requests, so they keep
    getting byte-identical replies). *)

(** A parsed, validated request. Graph-carrying methods keep the raw
    graph6 text alongside the decoded graph — it is the exact-match
    cache key. *)
type request =
  | Ping
  | Stats
  | Info of { g6 : string; graph : Graph.t }
  | Check of { game : Game.t; g6 : string; graph : Graph.t }
  | Census_shard of Census.shard
      (** Range bounds are parsed, not validated — the server answers
          out-of-range shards with [invalid_params] via
          {!Census.validate_shard}. *)

type error_code =
  | Parse_error  (** the line is not valid JSON *)
  | Invalid_request  (** valid JSON, wrong envelope shape *)
  | Unsupported_version  (** well-formed envelope, a ["v"] we don't speak *)
  | Unsupported_game
      (** well-formed request, a ["game"] (or legacy ["version"]) string
          outside the registry — distinct from {!Invalid_params} so old
          servers meeting new game spellings fail recognizably *)
  | Unknown_method
  | Invalid_params
  | Bad_graph6  (** params well-shaped but the graph6 string is malformed *)
  | Too_large  (** request bytes or graph size beyond the server's limits *)
  | Timeout  (** the per-request deadline expired *)
  | Internal  (** unexpected exception; the server stays up *)

val error_code_name : error_code -> string
(** The wire name: ["parse_error"], ["invalid_request"], ... *)

val parse_request :
  string -> (Jsonx.t * request, Jsonx.t * error_code * string) result
(** [parse_request line] is [(id, request)] or [(id, code, message)];
    the id is [Jsonx.Null] when absent or unrecoverable, so an error
    reply can always echo something. Total. *)

(** {1 Result builders}

    Pure renderers from library values to the [result] payload; the e2e
    test computes expected response bytes by calling these directly. *)

val ping_result : Jsonx.t

val info_result : Graph.t -> Jsonx.t

val check_result : Game.t -> Equilibrium.verdict -> Graph.t -> Jsonx.t
(** Includes the game, the verdict (with the witness move and delta on
    violations — an integer delta for the basic games, a float for
    alpha), and the diameter (null when disconnected). *)

val verdict_is_invariant : Equilibrium.verdict -> bool
(** Whether the verdict is invariant under vertex relabeling —
    [Equilibrium] and [Disconnected] are, a [Violation] witness names
    concrete vertices and is not. Gates canonical-form caching, {e
    together with} [Game.is_basic]: for the α-game even an
    [Equilibrium] verdict is labeling-dependent (edge ownership follows
    vertex order), so the server never canonical-caches alpha
    verdicts. *)

val tree_census_result : Census.tree_census -> Jsonx.t

val graph_census_result : ?kind:string -> Census.graph_census -> Jsonx.t
(** [?kind] tags the record's ["kind"] member (default ["graphs"]); the
    orderly census shares the record but must round-trip as ["orderly"]
    so merges never mix shard geometries. *)

val census_result : Census.result -> Jsonx.t
(** {!tree_census_result} / {!graph_census_result} behind the unified
    shard-result type. *)

(** {1 Census result decoders}

    Total inverses of the census builders, for the readers of result
    JSON outside the server: the typed {!Client} decoding worker
    replies, and the dispatcher's journal replaying checkpointed
    shards. *)

val tree_census_of_json : Jsonx.t -> (Census.tree_census, string) result

val graph_census_of_json : Jsonx.t -> (Census.graph_census, string) result

val census_result_of_json : Jsonx.t -> (Census.result, string) result
(** Dispatches on the ["kind"] member. *)

(** {1 Request builders} *)

val shard_params : Census.shard -> Jsonx.t
(** The [census-shard] params object for a shard descriptor. *)

val render_request : ?id:Jsonx.t -> meth:string -> Jsonx.t -> string
(** One request line (no trailing newline), always carrying
    ["v": ]{!protocol_version}. *)

(** {1 Response envelopes} *)

val render_ok : id:Jsonx.t -> result:string -> string
(** [result] is an already-rendered JSON fragment (the cache stores
    rendered fragments so hits and misses emit identical bytes). The
    returned line has no trailing newline. *)

val render_error : id:Jsonx.t -> error_code -> string -> string
