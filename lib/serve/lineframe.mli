(** Incremental newline framing over arbitrary byte chunks.

    The wire protocol is newline-delimited, but the kernel hands the
    event loop arbitrary chunks: a request may arrive split at any byte
    boundary — mid-UTF-8 sequence, mid-escape, even between a [\r] and
    its [\n]. This module is the single framing implementation for the
    server's connections and the blocking client, factored out so the
    invariant is testable in isolation: {e feeding the same byte stream
    in any chunking yields the same line sequence}
    (seeded chunk-split fuzz in [test_lineframe.ml]).

    Framing is byte-oriented: a line is the bytes up to the next [\n]
    exclusive, with one trailing [\r] stripped (CRLF tolerance). Bytes
    are copied exactly once into the frame buffer and once out into the
    returned line; the buffer is reused across lines (compacted, grown
    geometrically) so a long-lived connection allocates no per-request
    buffers beyond the line strings themselves. *)

type t

val create : ?initial:int -> max_line:int -> unit -> t
(** [max_line] bounds the bytes buffered while waiting for a newline;
    past it, {!next} reports [`Overflow] — framing is lost and the
    caller should reply once and close. [initial] (default 4096) is the
    starting buffer size. @raise Invalid_argument if [max_line < 1] or
    [initial < 1]. *)

val feed : t -> bytes -> int -> int -> unit
(** [feed t buf off len] appends [buf[off .. off+len)] to the frame.
    @raise Invalid_argument on an out-of-bounds slice. *)

val feed_string : t -> string -> unit
(** Test convenience. *)

val next : t -> [ `Line of string | `More | `Overflow ]
(** Extract the next complete line. [`More]: no newline buffered yet.
    [`Overflow]: more than [max_line] bytes buffered without a newline
    ([next] keeps reporting it until {!reset}). A complete line longer
    than [max_line] whose newline is already buffered is still returned
    as [`Line] — the caller enforces its own request-size policy with
    framing intact. *)

val pending : t -> int
(** Bytes buffered but not yet returned as lines. *)

val reset : t -> unit
(** Drop buffered bytes (keeps the allocated buffer). *)
