(* One growable byte buffer with three cursors: [start] (first
   unconsumed byte), [len] (end of valid data), [scan] (how far the
   newline search has looked, so repeatedly probing a slow-arriving line
   stays linear in the bytes received, not quadratic). *)

type t = {
  mutable buf : Bytes.t;
  mutable start : int;
  mutable len : int;
  mutable scan : int;
  max_line : int;
}

let create ?(initial = 4096) ~max_line () =
  if max_line < 1 then invalid_arg "Lineframe.create: max_line < 1";
  if initial < 1 then invalid_arg "Lineframe.create: initial < 1";
  { buf = Bytes.create initial; start = 0; len = 0; scan = 0; max_line }

let pending t = t.len - t.start

let reset t =
  t.start <- 0;
  t.len <- 0;
  t.scan <- 0

let feed t src off k =
  if off < 0 || k < 0 || off + k > Bytes.length src then
    invalid_arg "Lineframe.feed: out-of-bounds slice";
  if t.len + k > Bytes.length t.buf then begin
    (* compact first: consumed bytes at the front are free space *)
    let live = t.len - t.start in
    if t.start > 0 then begin
      Bytes.blit t.buf t.start t.buf 0 live;
      t.scan <- t.scan - t.start;
      t.start <- 0;
      t.len <- live
    end;
    if t.len + k > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while t.len + k > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end
  end;
  Bytes.blit src off t.buf t.len k;
  t.len <- t.len + k

let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

(* bounded in-place scan — no copy of the buffer per probe *)
let rec find_nl buf i len =
  if i >= len then -1
  else if Bytes.unsafe_get buf i = '\n' then i
  else find_nl buf (i + 1) len

let next t =
  let i = find_nl t.buf t.scan t.len in
  if i < 0 then begin
    t.scan <- t.len;
    if pending t > t.max_line then `Overflow else `More
  end
  else begin
    let stop = if i > t.start && Bytes.get t.buf (i - 1) = '\r' then i - 1 else i in
    let line = Bytes.sub_string t.buf t.start (stop - t.start) in
    t.start <- i + 1;
    t.scan <- t.start;
    if t.start = t.len then begin
      t.start <- 0;
      t.len <- 0;
      t.scan <- 0
    end;
    `Line line
  end
