(** Fault-tolerant distributed census orchestrator.

    Splits one {!Census.shard} into parts, dispatches the parts
    concurrently across a mixed fleet of workers, and merges the
    results in ascending rank order — so the merged census is
    value-identical to {!Census.run_shard} on the undivided descriptor,
    including when workers die mid-run.

    {b Failure model.} A failed dispatch (socket error, remote timeout,
    malformed reply, worker exception) requeues its shard for any
    healthy worker and backs the failing worker off exponentially; a
    worker failing [blacklist_after] times {e in a row} is blacklisted
    and its thread retired. The run as a whole fails only when a single
    shard accumulates [max_attempts] failures across workers, or every
    worker is blacklisted with shards outstanding. Stragglers are
    reclaimed by the remote call timeout: the timed-out shard requeues
    elsewhere while the straggler's eventual answer is discarded with
    its connection. Local shards run on a freshly spawned domain each
    and cannot be timed out (a domain cannot be killed).

    {b Journal.} With [journal = Some path], every completed shard is
    appended to [path] as one flushed JSON line (after a header line
    pinning kind/game/n/range/parts), so a killed run resumed with the
    same arguments recomputes only the missing shards. A journal whose
    header does not match the requested run is an error. The format is
    documented in DESIGN.md ("Distributed census").

    Telemetry (under [--stats]): [dispatch.shards], [.dispatched],
    [.retried], [.recovered], [.journal_hits], [.blacklisted], and a
    per-worker latency histogram [dispatch.latency_us.<worker>]. *)

type worker =
  | Local of string
      (** In-process: runs each shard on a freshly spawned domain, so
          local workers genuinely parallelize (the orchestration threads
          themselves interleave on one domain). The string is a display
          name. *)
  | Remote of Serve.address
      (** A [bncg serve] endpoint, spoken to over a persistent typed
          {!Client} connection (closed and reopened after any error —
          a timed-out stream may carry a stale reply). *)
  | Custom of string * (Census.shard -> (Census.result, string) result)
      (** Injectable worker for tests: flaky, delayed and malformed
          behaviors without sockets. *)

val worker_name : worker -> string

type config = {
  workers : worker list;  (** must be non-empty *)
  parts : int;  (** shard count; [0] means [4 * length workers] *)
  max_attempts : int;  (** per-shard failure budget across workers *)
  blacklist_after : int;  (** consecutive failures retiring a worker *)
  backoff : float;
      (** base sleep after a failure; doubles per consecutive failure *)
  timeout : float;  (** per-call reply deadline for remote workers *)
  journal : string option;  (** checkpoint file; [None] disables *)
  atlas : Atlas.t option;
      (** equilibrium atlas consulted/populated by {!Local} workers'
          shard runs ({!Census.run_shard}). Remote workers use whatever
          atlas their server was started with. *)
}

val default_config : config
(** No workers (callers must supply the fleet), [parts = 0],
    3 attempts, blacklist after 3, 50ms base backoff, 30s timeout,
    no journal, no atlas. *)

type stats = {
  shards : int;  (** parts the run was split into *)
  journal_hits : int;  (** shards replayed from the journal *)
  dispatched : int;  (** dispatch attempts, including retries *)
  retried : int;  (** failed dispatches that were requeued *)
  recovered : int;  (** shards completed after at least one failure *)
  blacklisted : string list;  (** workers retired mid-run, in order *)
}

val run : config -> Census.shard -> (Census.result * stats, string) result
(** Orchestrate the full shard across the fleet. Blocks until every
    part completed (possibly replayed from the journal) or the run
    failed; never raises on worker failures. The merged result equals
    the sequential census on the same descriptor. *)
