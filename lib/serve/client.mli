(** Minimal blocking typed client for [bncg serve] endpoints.

    One request in flight per connection, answered in order; every
    request line carries ["v": ]{!Rpc.protocol_version}. All entry
    points return [Error message] instead of raising — socket errors,
    timeouts, malformed replies and structured server errors alike.

    A connection is {e not} safe to reuse after an [Error]: a timed-out
    call may leave its reply in flight on the stream, desynchronizing
    every later call. Close it and reconnect (the {!Dispatch}
    orchestrator does exactly that). *)

type t

val connect : ?timeout:float -> Serve.address -> (t, string) result
(** [timeout] (default 30s) bounds each individual call's wait for a
    reply, not the whole connection lifetime. *)

val close : t -> unit
(** Idempotent. *)

val with_client :
  ?timeout:float -> Serve.address -> (t -> ('a, string) result) -> ('a, string) result

val address : t -> Serve.address

val ping : t -> (unit, string) result

val protocol_version : t -> (int, string) result
(** The version advertised by the server's [stats] result; a
    pre-versioning server that omits the field reports 1. *)

val census_shard : t -> Census.shard -> (Census.result, string) result
(** Run one census shard remotely and decode the reply back into the
    library's census types. The decoded result is value-identical to
    {!Census.run_shard} on the same descriptor (graph6 round-trips
    representatives exactly). *)
