(* Fault-tolerant census orchestration: split one shard descriptor into
   parts, fan the parts across a mixed fleet of workers, merge in rank
   order. One systhread per worker drains a shared retry queue; the
   actual parallelism is one fresh domain per in-flight local shard
   (systhreads interleave on the master lock) plus however many remote
   server processes the fleet names. Failures requeue the shard and
   back off the worker; a worker failing repeatedly in a row is
   blacklisted (its thread exits, its queue share flows to the healthy
   ones). The merged result is byte-identical to the sequential census
   because parts are merged in ascending rank order — the same
   first-seen-wins discipline as [Census.merge_graph_census] — and
   graph6 round-trips remote representatives exactly. *)

let m_shards = Telemetry.counter "dispatch.shards"

let m_journal_hits = Telemetry.counter "dispatch.journal_hits"

let m_dispatched = Telemetry.counter "dispatch.dispatched"

let m_retried = Telemetry.counter "dispatch.retried"

let m_recovered = Telemetry.counter "dispatch.recovered"

let m_blacklisted = Telemetry.counter "dispatch.blacklisted"

type worker =
  | Local of string
  | Remote of Serve.address
  | Custom of string * (Census.shard -> (Census.result, string) result)

let worker_name = function
  | Local name -> name
  | Remote addr -> Format.asprintf "%a" Serve.pp_address addr
  | Custom (name, _) -> name

type config = {
  workers : worker list;
  parts : int;
  max_attempts : int;
  blacklist_after : int;
  backoff : float;
  timeout : float;
  journal : string option;
  atlas : Atlas.t option;
}

let default_config =
  {
    workers = [];
    parts = 0;
    max_attempts = 3;
    blacklist_after = 3;
    backoff = 0.05;
    timeout = 30.0;
    journal = None;
    atlas = None;
  }

type stats = {
  shards : int;
  journal_hits : int;
  dispatched : int;
  retried : int;
  recovered : int;
  blacklisted : string list;
}

(* --- journal --------------------------------------------------------------

   Line-oriented, append-only: one header line identifying the run
   (kind, game, n, range, parts — everything that determines the shard
   boundaries), then one entry line per completed shard. Entries are
   flushed as they land, so a SIGKILL loses at most the line being
   written; unparseable trailing lines are skipped on resume. A header
   that does not match the requested run byte-for-byte is an error, not
   a silent recompute — mixing journals corrupts censuses. *)

let journal_header (shard : Census.shard) ~parts =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("journal", Jsonx.Str "bncg-census");
         ("v", Jsonx.Int 1);
         ("kind", Jsonx.Str (Census.kind_name shard.Census.kind));
         ("game", Jsonx.Str (Game.to_string shard.Census.game));
         ("n", Jsonx.Int shard.Census.n);
         ("lo", Jsonx.Int shard.Census.lo);
         ("hi", Jsonx.Int shard.Census.hi);
         ("parts", Jsonx.Int parts);
       ])

let journal_entry ~lo ~hi result =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("lo", Jsonx.Int lo);
         ("hi", Jsonx.Int hi);
         ("result", Rpc.census_result result);
       ])

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* [index_of (lo, hi)] maps an entry back to its shard slot; entries
   from a run with different boundaries simply miss and are ignored
   (the header check makes that impossible in practice, but the loader
   stays total regardless). *)
let load_journal path ~header ~index_of ~kind =
  if not (Sys.file_exists path) then Ok []
  else begin
    match read_lines path with
    | [] -> Ok []
    | found :: entries ->
      if not (String.equal found header) then
        Error
          (Printf.sprintf
             "journal %s was written by a different run\n  expected header: %s\n  found:           %s"
             path header found)
      else begin
        let decode line =
          match Jsonx.parse line with
          | Error _ -> None (* truncated tail from a killed run *)
          | Ok json -> (
            let int k =
              Option.bind (Jsonx.member k json) Jsonx.to_int
            in
            match (int "lo", int "hi", Jsonx.member "result" json) with
            | Some lo, Some hi, Some rj -> (
              match (index_of (lo, hi), Rpc.census_result_of_json rj) with
              | Some i, Ok r
                when (match r with
                     | Census.Tree_result _ -> kind = Census.Trees
                     | Census.Graph_result _ -> kind = Census.Graphs
                     | Census.Orderly_result _ -> kind = Census.Orderly) ->
                Some (i, r)
              | _ -> None)
            | _ -> None)
        in
        Ok (List.filter_map decode entries)
      end
  end

(* --- workers --------------------------------------------------------------- *)

let backoff_sleep seconds =
  if seconds > 0.0 then
    try Unix.sleepf seconds with Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Per-worker execution. Remote connections are persistent but torn
   down after ANY error: a timed-out call may leave its reply in
   flight, and reusing the stream would hand that stale reply to the
   next request. Local shards run on a freshly spawned domain each —
   a domain cannot be killed, so local work ignores the timeout; the
   remote timeout is what reclaims shards from stragglers. *)
let make_executor cfg = function
  | Local _ ->
    let execute shard =
      (* the atlas handle is domain-safe, so concurrent local shards
         share the dispatcher's handle directly *)
      match
        Domain.join
          (Domain.spawn (fun () -> Census.run_shard ?atlas:cfg.atlas shard))
      with
      | r -> Ok r
      | exception e -> Error (Printexc.to_string e)
    in
    (execute, ignore)
  | Custom (_, f) ->
    let execute shard =
      try f shard with e -> Error (Printexc.to_string e)
    in
    (execute, ignore)
  | Remote addr ->
    let conn = ref None in
    let drop () =
      Option.iter Client.close !conn;
      conn := None
    in
    let execute shard =
      let connected =
        match !conn with
        | Some c -> Ok c
        | None -> (
          match Client.connect ~timeout:cfg.timeout addr with
          | Ok c ->
            conn := Some c;
            Ok c
          | Error _ as e -> e)
      in
      match connected with
      | Error _ as e -> e
      | Ok c -> (
        match Client.census_shard c shard with
        | Ok _ as ok -> ok
        | Error _ as e ->
          drop ();
          e)
    in
    (execute, fun () -> drop ())

(* --- orchestration --------------------------------------------------------- *)

type shared = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : int Queue.t;
  results : Census.result option array;
  had_failure : bool array;
  attempts : int array;
  mutable completed : int;
  mutable fatal : string option;
  mutable active : int;
  mutable dispatched : int;
  mutable retried : int;
  mutable recovered : int;
  mutable blacklisted : string list;
  mutable journal_out : out_channel option;
  shards : Census.shard array;
}

let append_journal st i r =
  match st.journal_out with
  | None -> ()
  | Some oc ->
    let s = st.shards.(i) in
    output_string oc (journal_entry ~lo:s.Census.lo ~hi:s.Census.hi r);
    output_char oc '\n';
    flush oc

let total st = Array.length st.shards

(* Runs on one systhread per worker. Holds [st.mutex] only around queue
   and bookkeeping; execution happens unlocked so workers overlap. *)
let worker_loop cfg st (w, hist) =
  let name = worker_name w in
  let execute, cleanup = make_executor cfg w in
  let streak = ref 0 in
  let rec take () =
    if st.fatal <> None || st.completed = total st then None
    else
      match Queue.take_opt st.queue with
      | Some i -> Some i
      | None ->
        Condition.wait st.nonempty st.mutex;
        take ()
  in
  let rec loop () =
    Mutex.lock st.mutex;
    match take () with
    | None -> Mutex.unlock st.mutex
    | Some i ->
      st.dispatched <- st.dispatched + 1;
      Telemetry.incr m_dispatched;
      Mutex.unlock st.mutex;
      let t0 = Unix.gettimeofday () in
      let outcome = execute st.shards.(i) in
      Telemetry.observe hist
        (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
      (match outcome with
      | Ok r ->
        streak := 0;
        Mutex.lock st.mutex;
        (* only-first-completion: a shard is only ever in one worker's
           hands (requeue happens strictly on failure), but the guard
           keeps the accounting honest even if that invariant slips *)
        if st.results.(i) = None then begin
          st.results.(i) <- Some r;
          st.completed <- st.completed + 1;
          if st.had_failure.(i) then begin
            st.recovered <- st.recovered + 1;
            Telemetry.incr m_recovered
          end;
          append_journal st i r
        end;
        if st.completed = total st then Condition.broadcast st.nonempty;
        Mutex.unlock st.mutex;
        loop ()
      | Error msg ->
        incr streak;
        Mutex.lock st.mutex;
        st.had_failure.(i) <- true;
        st.attempts.(i) <- st.attempts.(i) + 1;
        let s = st.shards.(i) in
        if st.attempts.(i) >= cfg.max_attempts then begin
          st.fatal <-
            Some
              (Printf.sprintf
                 "shard [%d, %d) failed %d times; last error from %s: %s"
                 s.Census.lo s.Census.hi st.attempts.(i) name msg);
          Condition.broadcast st.nonempty;
          Mutex.unlock st.mutex
        end
        else begin
          st.retried <- st.retried + 1;
          Telemetry.incr m_retried;
          Queue.add i st.queue;
          Condition.broadcast st.nonempty;
          Mutex.unlock st.mutex;
          if !streak >= cfg.blacklist_after then begin
            (* this worker keeps failing while others may be fine: stop
               feeding it work; its requeued shard goes to the rest *)
            Telemetry.incr m_blacklisted;
            Mutex.lock st.mutex;
            st.blacklisted <- name :: st.blacklisted;
            Mutex.unlock st.mutex
          end
          else begin
            backoff_sleep
              (cfg.backoff *. (2.0 ** float_of_int (!streak - 1)));
            loop ()
          end
        end)
  in
  loop ();
  cleanup ();
  Mutex.lock st.mutex;
  st.active <- st.active - 1;
  if st.active = 0 && st.completed < total st && st.fatal = None then
    st.fatal <-
      Some
        (Printf.sprintf
           "all %d workers blacklisted with %d of %d shards outstanding"
           (List.length cfg.workers)
           (total st - st.completed)
           (total st));
  Condition.broadcast st.nonempty;
  Mutex.unlock st.mutex

let run cfg shard =
  if cfg.workers = [] then Error "Dispatch.run: no workers"
  else if cfg.max_attempts < 1 then Error "Dispatch.run: max_attempts < 1"
  else if cfg.blacklist_after < 1 then Error "Dispatch.run: blacklist_after < 1"
  else begin
    match Census.validate_shard shard with
    | Error msg -> Error msg
    | Ok () ->
      let parts =
        if cfg.parts > 0 then cfg.parts else 4 * List.length cfg.workers
      in
      let shards = Array.of_list (Census.split shard ~parts) in
      let n_shards = Array.length shards in
      Telemetry.add m_shards n_shards;
      let parts = n_shards (* split may return fewer on narrow ranges *) in
      let index_of =
        let tbl = Hashtbl.create (2 * n_shards) in
        Array.iteri
          (fun i s -> Hashtbl.replace tbl (s.Census.lo, s.Census.hi) i)
          shards;
        fun key -> Hashtbl.find_opt tbl key
      in
      let header = journal_header shard ~parts in
      let journaled =
        match cfg.journal with
        | None -> Ok []
        | Some path ->
          load_journal path ~header ~index_of ~kind:shard.Census.kind
      in
      match journaled with
      | Error msg -> Error msg
      | Ok journaled ->
        let st =
          {
            mutex = Mutex.create ();
            nonempty = Condition.create ();
            queue = Queue.create ();
            results = Array.make n_shards None;
            had_failure = Array.make n_shards false;
            attempts = Array.make n_shards 0;
            completed = 0;
            fatal = None;
            active = List.length cfg.workers;
            dispatched = 0;
            retried = 0;
            recovered = 0;
            blacklisted = [];
            journal_out = None;
            shards;
          }
        in
        let journal_hits = ref 0 in
        List.iter
          (fun (i, r) ->
            if st.results.(i) = None then begin
              st.results.(i) <- Some r;
              st.completed <- st.completed + 1;
              incr journal_hits;
              Telemetry.incr m_journal_hits
            end)
          journaled;
        Array.iteri
          (fun i r -> if r = None then Queue.add i st.queue)
          st.results;
        (match cfg.journal with
        | None -> ()
        | Some path ->
          let fresh =
            (not (Sys.file_exists path))
            || (Unix.stat path).Unix.st_size = 0
          in
          let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
          if fresh then begin
            output_string oc header;
            output_char oc '\n';
            flush oc
          end;
          st.journal_out <- Some oc);
        (* per-worker latency histograms: registration is mutex-guarded
           but meant for a single domain, so create them all before any
           worker thread starts *)
        let with_hist =
          List.map
            (fun w ->
              (w, Telemetry.histogram ("dispatch.latency_us." ^ worker_name w)))
            cfg.workers
        in
        let threads =
          List.map (fun wh -> Thread.create (worker_loop cfg st) wh) with_hist
        in
        List.iter Thread.join threads;
        Option.iter close_out_noerr st.journal_out;
        (match st.fatal with
        | Some msg -> Error msg
        | None ->
          let merged = ref None in
          Array.iter
            (fun r ->
              let r = Option.get r in
              merged :=
                Some
                  (match !merged with
                  | None -> r
                  | Some acc -> Census.merge_result acc r))
            st.results;
          Ok
            ( Option.get !merged,
              {
                shards = n_shards;
                journal_hits = !journal_hits;
                dispatched = st.dispatched;
                retried = st.retried;
                recovered = st.recovered;
                blacklisted = List.rev st.blacklisted;
              } ))
  end
