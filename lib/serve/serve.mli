(** Long-lived request/response server for equilibrium workloads.

    [bncg serve] keeps a {!Pool} of worker domains warm and answers the
    newline-delimited JSON protocol of {!Rpc} over Unix domain sockets
    and TCP, so heavy traffic amortizes process and pool startup and —
    through a bounded sharded {!Lru_sharded} cache keyed by canonical
    graph form — never recomputes an equilibrium check it has already
    answered for an isomorphic graph.

    {b Concurrency model.} An event-driven core: one accept thread per
    listening address hands accepted sockets round-robin to a fixed set
    of worker {e domains}, each running a level-triggered {!Poller}
    (epoll on Linux, poll elsewhere) over its own set of non-blocking
    connections. There is no per-connection thread; a worker owns its
    connections exclusively, reads bounded chunks per wakeup (fair
    across connections), and keeps one reusable read frame and write
    buffer per connection. Clients may pipeline any number of request
    lines; responses come back in request order because each worker
    answers a connection's buffered lines synchronously, in arrival
    order. When a connection's pending output exceeds
    [write_high_water], the worker stops consuming its input (read
    interest is paused) until the peer drains — a slow consumer
    backpressures itself without stalling its worker's other
    connections. Equilibrium checks dispatch onto the shared domain
    pool (one region at a time, a mutex serializes launchers); census
    shards run sequentially in deadline-checked slices — the intended
    way to parallelize a census is to fan disjoint [census-shard]
    ranges across requests.

    {b Caching.} [check] results are cached under the exact graph6 text
    and — when the verdict is isomorphism-invariant (equilibrium /
    disconnected) and the graph is within {!Canon.max_search_vertices} —
    under [version + canonical form], so relabeled copies of a known
    equilibrium are cache hits. Violation verdicts name concrete
    vertices, so they are only ever served for the exact same labeled
    graph. The cache stores rendered JSON fragments: hits and misses
    emit byte-identical responses. [info] results are cached under the
    exact text only. The cache is sharded ({!Lru_sharded}): worker
    domains contend per shard, not globally; eviction is per-shard LRU.

    {b Robustness.} A request line over [max_request_bytes] gets a
    [too_large] error (and, when the overflow is detected before the
    newline, the connection closes since framing is lost); malformed
    JSON, bad envelopes, unknown methods, bad graph6 and oversized
    graphs all get structured error replies and never kill the server;
    the per-request deadline is enforced cooperatively (checked before
    heavy dispatch and between census slices). SIGPIPE is ignored; a
    client vanishing mid-reply only closes that connection.

    {b Telemetry.} [serve.requests], [serve.ok], [serve.errors],
    [serve.connections], [serve.cache_hits]/[serve.cache_misses],
    [serve.bytes_in]/[serve.bytes_out], a [serve.latency_us] histogram,
    a [serve.in_flight] gauge, and event-loop series:
    [serve.evloop.wakeups], a [serve.evloop.ready_batch] histogram
    (ready descriptors per wakeup) and a [serve.pipeline_depth]
    histogram (requests answered per connection pump) — all visible via
    [--stats] and the in-band [stats] method (the latter reports live
    values, including per-shard cache occupancy and hit/miss counts,
    whether or not telemetry is enabled). *)

type address =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port; port 0 binds an ephemeral port *)

val pp_address : Format.formatter -> address -> unit

type config = {
  addresses : address list;
  jobs : int;  (** pool width; 0 = all available cores *)
  workers : int;
      (** event-loop domains; 0 = all available cores. Independent of
          [jobs]: workers multiplex connections, the pool runs kernels *)
  cache_capacity : int;
  cache_shards : int;  (** cache shard count; 0 = default (8) *)
  max_request_bytes : int;
  max_graph_vertices : int;
      (** upper bound on [Graph.n] accepted by [info] and [check] — the
          cooperative-deadline story needs bounded single work items *)
  census_slice : int;
      (** ranks/masks per deadline check inside a census shard *)
  request_timeout : float;  (** seconds; the cooperative deadline *)
  write_high_water : int;
      (** bytes of pending output per connection beyond which the worker
          pauses reading that connection (backpressure) *)
  atlas_dir : string option;
      (** persistent equilibrium atlas directory ({!Atlas}): a
          warm-start tier under the LRU. Cache misses probe it before
          computing; computes append to it, so verdicts survive
          restarts and are shared with census runs. Responses are
          byte-identical with or without it (the atlas stores the same
          rendered fragments the cache does). *)
}

val default_config : config
(** No addresses; jobs 0; workers 0; cache 4096 entries in 8 shards;
    1 MiB requests; graphs to 512 vertices; 4096-rank census slices;
    30 s deadline; 1 MiB write high-water; no atlas. *)

type t

val start : config -> t
(** Bind every address (stale Unix-socket paths are replaced), spawn the
    pool, the worker domains and the accept threads, and return.
    @raise Invalid_argument on an empty address list or nonsensical
    limits; [Unix.Unix_error] if a bind fails. *)

val bound_addresses : t -> address list
(** Addresses actually bound — a [Tcp (_, 0)] request shows its
    resolved ephemeral port. *)

val backend_name : t -> string
(** The readiness backend the event loop runs on: ["epoll"] or
    ["poll"]. *)

val worker_count : t -> int
(** Number of event-loop worker domains actually spawned. *)

val stop : t -> unit
(** Graceful shutdown: join the accept threads (no new connections),
    wake every worker, let each answer the complete request lines it has
    already received and flush pending replies (bounded), join the
    worker domains, shut the pool down (domains joined), unlink
    Unix-socket paths. Idempotent. *)

val run : ?on_ready:(t -> unit) -> config -> unit
(** [start], call [on_ready] with the live server (e.g. to print
    {!bound_addresses}), block until SIGINT or SIGTERM, then [stop].
    For the CLI. *)

(** {1 Client} *)

type client

val connect : ?timeout:float -> address -> client
(** [timeout] (default 30 s) bounds each {!call}'s wait for a reply
    line. *)

val call : client -> string -> string
(** [call c line] sends one request line and returns the matching
    response line (without the newline). Raises [Failure] on timeout or
    a dropped connection. *)

val send_line : client -> string -> unit
(** Write one request line without waiting for the reply — the
    pipelining half of {!call}. Pair with {!recv_line}. *)

val recv_line : client -> string
(** Read the next response line (without the newline), waiting up to the
    client timeout. Responses arrive in request order, so [n] calls of
    {!send_line} followed by [n] calls of [recv_line] match up 1:1. *)

val close_client : client -> unit

val with_client : ?timeout:float -> address -> (client -> 'a) -> 'a
