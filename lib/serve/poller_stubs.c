/* C stubs for the event-loop multiplexer: poll(2) everywhere, epoll(7)
   on Linux. No dependency beyond the OCaml runtime and libc.

   Conventions shared with poller.ml:
     - file descriptors cross the boundary as plain ints (Unix.file_descr
       is an int on every Unix OCaml port);
     - interest and readiness are bitmasks: 1 = readable, 2 = writable,
       4 = error/invalid. POLLHUP/EPOLLHUP report as readable so the
       reader drains buffered bytes and then sees EOF from read();
     - errors return the negated errno instead of raising — the OCaml
       side decides what is retryable (EINTR) and what is fatal, without
       needing caml/unixsupport.h;
     - every blocking wait releases the OCaml runtime lock, so other
       domains keep running (and stop-the-world GC is never blocked on a
       parked event loop). */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <string.h>

#define BNCG_EV_READ 1
#define BNCG_EV_WRITE 2
#define BNCG_EV_ERROR 4

/* poll(2): fds/events are int arrays of length >= n (events in the
   bitmask convention above), revents is filled on return. Returns the
   ready count, or -errno. The pollfd array is copied onto the C heap
   before the runtime lock is released — the OCaml arrays may move
   during the wait. */
CAMLprim value bncg_poll(value vfds, value vevents, value vrevents, value vn,
                         value vtimeout_ms)
{
  CAMLparam5(vfds, vevents, vrevents, vn, vtimeout_ms);
  int n = Int_val(vn);
  int timeout = Int_val(vtimeout_ms);
  struct pollfd *pfds;
  int ret, i;

  if (n < 0 || (mlsize_t)n > Wosize_val(vfds) ||
      (mlsize_t)n > Wosize_val(vevents) || (mlsize_t)n > Wosize_val(vrevents))
    caml_invalid_argument("Poller: inconsistent poll array sizes");

  pfds = caml_stat_alloc(sizeof(struct pollfd) * (n > 0 ? n : 1));
  for (i = 0; i < n; i++) {
    int ev = Int_val(Field(vevents, i));
    pfds[i].fd = Int_val(Field(vfds, i));
    pfds[i].events = ((ev & BNCG_EV_READ) ? POLLIN : 0) |
                     ((ev & BNCG_EV_WRITE) ? POLLOUT : 0);
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  ret = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (ret < 0) {
    int e = errno;
    caml_stat_free(pfds);
    CAMLreturn(Val_int(-e));
  }
  for (i = 0; i < n; i++) {
    int rev = 0;
    if (pfds[i].revents & (POLLIN | POLLHUP)) rev |= BNCG_EV_READ;
    if (pfds[i].revents & POLLOUT) rev |= BNCG_EV_WRITE;
    if (pfds[i].revents & (POLLERR | POLLNVAL)) rev |= BNCG_EV_ERROR;
    Field(vrevents, i) = Val_int(rev);
  }
  caml_stat_free(pfds);
  CAMLreturn(Val_int(ret));
}

#ifdef __linux__

#include <sys/epoll.h>
#include <unistd.h>

CAMLprim value bncg_has_epoll(value vunit)
{
  (void)vunit;
  return Val_true;
}

CAMLprim value bncg_epoll_create(value vunit)
{
  int fd;
  (void)vunit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  return Val_int(fd < 0 ? -errno : fd);
}

/* op: 1 = add, 2 = modify, 3 = delete. */
CAMLprim value bncg_epoll_ctl(value vep, value vop, value vfd, value vevents)
{
  struct epoll_event ev;
  int op, ret;
  memset(&ev, 0, sizeof(ev));
  ev.data.fd = Int_val(vfd);
  ev.events = ((Int_val(vevents) & BNCG_EV_READ) ? EPOLLIN : 0) |
              ((Int_val(vevents) & BNCG_EV_WRITE) ? EPOLLOUT : 0);
  switch (Int_val(vop)) {
  case 1: op = EPOLL_CTL_ADD; break;
  case 2: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  ret = epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev);
  return Val_int(ret < 0 ? -errno : 0);
}

#define BNCG_MAX_EPOLL_EVENTS 1024

/* Fills vfds/vflags with the ready set; returns the ready count or
   -errno. maxevents is clamped to the array sizes and a fixed stack
   buffer bound. */
CAMLprim value bncg_epoll_wait(value vep, value vfds, value vflags, value vmax,
                               value vtimeout_ms)
{
  CAMLparam5(vep, vfds, vflags, vmax, vtimeout_ms);
  struct epoll_event evs[BNCG_MAX_EPOLL_EVENTS];
  int epfd = Int_val(vep);
  int max = Int_val(vmax);
  int timeout = Int_val(vtimeout_ms);
  int n, i;

  if (max > BNCG_MAX_EPOLL_EVENTS) max = BNCG_MAX_EPOLL_EVENTS;
  if ((mlsize_t)max > Wosize_val(vfds)) max = (int)Wosize_val(vfds);
  if ((mlsize_t)max > Wosize_val(vflags)) max = (int)Wosize_val(vflags);
  if (max < 1) caml_invalid_argument("Poller: epoll_wait with no event room");

  caml_release_runtime_system();
  n = epoll_wait(epfd, evs, max, timeout);
  caml_acquire_runtime_system();

  if (n < 0) CAMLreturn(Val_int(-errno));
  for (i = 0; i < n; i++) {
    int fl = 0;
    if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP)) fl |= BNCG_EV_READ;
    if (evs[i].events & EPOLLOUT) fl |= BNCG_EV_WRITE;
    if (evs[i].events & EPOLLERR) fl |= BNCG_EV_ERROR;
    Field(vfds, i) = Val_int(evs[i].data.fd);
    Field(vflags, i) = Val_int(fl);
  }
  CAMLreturn(Val_int(n));
}

#else /* !__linux__: epoll entry points exist but report ENOSYS; the
         OCaml side never calls them when bncg_has_epoll is false. */

CAMLprim value bncg_has_epoll(value vunit)
{
  (void)vunit;
  return Val_false;
}

CAMLprim value bncg_epoll_create(value vunit)
{
  (void)vunit;
  return Val_int(-ENOSYS);
}

CAMLprim value bncg_epoll_ctl(value vep, value vop, value vfd, value vevents)
{
  (void)vep; (void)vop; (void)vfd; (void)vevents;
  return Val_int(-ENOSYS);
}

CAMLprim value bncg_epoll_wait(value vep, value vfds, value vflags, value vmax,
                               value vtimeout_ms)
{
  (void)vep; (void)vfds; (void)vflags; (void)vmax; (void)vtimeout_ms;
  return Val_int(-ENOSYS);
}

#endif
