(** Minimal JSON for the wire protocol.

    The container ships no JSON library, and the serving layer needs a
    {e total} parser for adversarial bytes plus a {e deterministic}
    printer (the result cache stores rendered fragments, and the e2e
    tests compare responses byte for byte). This is a small recursive-
    descent implementation of exactly that: object member order is
    preserved, the printer emits no whitespace, and parsing is guarded by
    a nesting-depth cap so a `[[[[…` bomb returns [Error] instead of
    overflowing the stack. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val max_depth : int
(** Nesting cap (64) enforced by {!parse}. *)

val parse : string -> (t, string) result
(** Total: never raises. Numbers without fraction/exponent that fit in an
    OCaml [int] parse as [Int], everything else numeric as [Float].
    Rejects trailing garbage, unpaired surrogates, and inputs nested
    deeper than {!max_depth}. *)

val to_string : t -> string
(** Compact rendering: no whitespace, members in list order, strings
    escaped per RFC 8259 (control characters as [\u00XX]). [Float]
    values render via [%.17g] trimmed — but the protocol itself only
    emits [Int]s, keeping responses bit-stable. *)

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects too. *)

val to_int : t -> int option

val to_str : t -> string option

val to_bool : t -> bool option
