(** Readiness multiplexer for the serving event loop.

    [Unix.select] caps out at [FD_SETSIZE] (1024) descriptors and
    silently corrupts its bitmasks past that, so the serving layer never
    calls it: one-shot waits go through {!wait_readable} /
    {!wait_writable} (poll(2) on a single descriptor) and the event loop
    proper multiplexes through a {!t} — epoll(7) where the platform has
    it (Linux), a poll(2)-backed emulation with identical semantics
    everywhere else. Which one a process got is observable via
    {!backend} ("epoll" or "poll").

    Readiness is level-triggered under both backends: a descriptor with
    unread input (or writable space, when write interest is registered)
    is reported again on every {!wait} until drained, so a loop that
    reads one bounded chunk per wakeup is fair across connections and
    never loses events. Peer hangup reports as {e readable} — the
    conventional shape: the reader drains what is buffered and then sees
    EOF from [read].

    All waits release the OCaml runtime lock, so other domains (pool
    workers, sibling event loops) keep running while one loop is parked.

    A {!t} is single-owner: exactly one domain registers, waits and
    reads the ready set. There is no internal locking — cross-domain
    wakeups are done by registering a pipe and writing a byte to it. *)

type t

val create : ?max_events:int -> unit -> t
(** [max_events] (default 256) bounds the ready batch returned by one
    {!wait}; excess ready descriptors surface on the next call
    (level-triggered, nothing is lost).
    @raise Invalid_argument if [max_events < 1]. *)

val backend : t -> string
(** ["epoll"] or ["poll"]. *)

val available_backend : unit -> string
(** What {!create} would pick on this platform, without creating. *)

val close : t -> unit
(** Release the kernel object (epoll fd) / tables. Idempotent; the
    poller must not be used afterwards. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register a descriptor with the given interest set.
    @raise Failure if the kernel refuses (e.g. the fd is already
    registered or invalid). *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Replace the interest set of a registered descriptor. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister. No-op if the descriptor was never added ([remove] after
    [Unix.close] is tolerated — the kernel already dropped epoll
    registrations with the last close). *)

val wait : t -> timeout_ms:int -> int
(** Block until at least one registered descriptor is ready or the
    timeout elapses ([-1] = forever, [0] = poll). Returns the number of
    ready descriptors (0 on timeout or EINTR), readable through the
    accessors below until the next [wait]. *)

val ready_fd : t -> int -> Unix.file_descr
(** [ready_fd p i] for [0 <= i < wait p ~timeout_ms]. *)

val ready_read : t -> int -> bool
(** Readable — includes peer hangup, so read() will not block. *)

val ready_write : t -> int -> bool

val ready_error : t -> int -> bool
(** Error/invalid condition on the descriptor; close it. *)

(** {1 One-shot waits}

    Single-descriptor poll(2) round trips — the replacements for the
    [Unix.select] timeouts the pre-event-loop server used (accept loops,
    the blocking client). Safe for any fd number, unlike select. *)

val wait_readable : Unix.file_descr -> float -> bool
(** [wait_readable fd seconds] is [true] when [fd] is readable (or hung
    up) within the timeout, [false] on timeout or EINTR. *)

val wait_writable : Unix.file_descr -> float -> bool
