(** Crash-safe, append-only, content-addressed verdict store.

    The atlas maps opaque string keys (canonical form / graph6 + game
    version, namespaced by the caller) to opaque string values
    (rendered verdict / witness fragments). It is the disk-backed tier
    under the serve LRUs and the persistent memo for census shards:
    computation anywhere makes every future request faster.

    {b Storage model.} A directory of append-only segment files
    [atlas-NNNNNN.seg], each starting with an 8-byte magic and holding
    length-prefixed, CRC-32-checksummed records
    [klen:u32le][vlen:u32le][crc32(key+value):u32le][key][value].
    Segments are fsynced when rolled; an in-memory hash index (sharded
    by key hash) is rebuilt on open and persisted on clean close as a
    {e disposable} snapshot ([index.snap]) that open uses to skip
    rescanning covered segment prefixes — any anomaly in the snapshot
    discards it and falls back to a full rescan.

    {b Recovery rules} (applied per segment on open/verify/compact):
    a truncated record at end of file is a {e torn tail} — scanning
    stops and a writer truncates the file back to the last well-framed
    boundary; a well-framed record whose checksum mismatches is
    {e corrupt} — it is skipped (never served) and scanning continues;
    an insane length field is corrupt framing — scanning stops as for
    a torn tail. First write wins: when the same key appears twice the
    earlier record is authoritative.

    {b Concurrency.} [add] inserts into the sharded index synchronously
    (first-write-wins dedup under a shard lock) and enqueues the record
    for a single appender domain that batch-writes to the current
    segment, so serve workers, census shards and hunt threads share one
    handle without a lock convoy on the write path. [flush] blocks
    until everything enqueued so far is written and fsynced. A [lock]
    file ([lockf]) enforces a single writer per directory; read-only
    handles skip it. *)

type t

val open_ :
  ?readonly:bool -> ?max_segment_bytes:int -> string -> (t, string) result
(** [open_ dir] opens (creating if needed, unless [readonly]) the atlas
    in [dir]. [max_segment_bytes] (default 8 MiB) bounds segment size
    before rolling; a single over-sized record still gets written, in a
    segment of its own. Errors: missing directory in read-only mode,
    another live writer holding the lock, or a non-tail segment with a
    damaged magic. *)

val find : t -> string -> string option
(** Index lookup; bumps [atlas.hits]/[atlas.misses]. *)

val add : t -> key:string -> value:string -> unit
(** First write wins: if [key] is already present (loaded or added)
    this is a no-op counted as a duplicate. Otherwise the pair becomes
    visible to [find] immediately and is enqueued for the appender;
    durability requires a later [flush] (or clean [close]). Raises
    [Invalid_argument] on a read-only or closed handle. *)

val flush : t -> unit
(** Wait until every record enqueued before this call is written, then
    fsync the current segment. Raises [Failure] if the appender hit an
    I/O error (e.g. disk full). No-op on read-only handles. *)

val close : t -> unit
(** Drain the appender, write the index snapshot, fsync and release the
    writer lock. Idempotent. [find] keeps answering from the in-memory
    index after close; [add] raises. *)

type stats = {
  segments : int;  (** live segment files *)
  records : int;  (** distinct keys in the index *)
  bytes : int;  (** total segment bytes on disk *)
  appended : int;  (** records durably written by this handle *)
  duplicates : int;  (** [add]s dropped by first-write-wins *)
  hits : int;
  misses : int;
  snapshot_used : bool;  (** open skipped rescans via [index.snap] *)
  torn_records : int;  (** torn tails skipped at open *)
  corrupt_records : int;  (** checksum-failed records skipped at open *)
}

val stats : t -> stats

type verify_report = {
  v_segments : int;
  v_records : int;  (** well-framed records with valid checksums *)
  v_live : int;  (** distinct keys after first-write-wins *)
  v_bytes : int;
  v_torn : int;  (** torn tails (incl. corrupt-framing stops) *)
  v_corrupt : int;  (** well-framed records failing their checksum *)
}

val verify : string -> (verify_report, string) result
(** Re-read every segment in [dir] from byte 0 and checksum every
    record. Ignores the snapshot. Does not take the writer lock, so it
    can audit a directory that is being served (it sees a consistent
    prefix). Errors on an unreadable directory or a damaged magic. *)

type compact_report = {
  c_segments_before : int;
  c_segments_after : int;
  c_records_before : int;  (** valid records scanned, incl. duplicates *)
  c_live : int;  (** records rewritten *)
  c_bytes_before : int;
  c_bytes_after : int;
}

val compact :
  ?max_segment_bytes:int -> string -> (compact_report, string) result
(** Rewrite live records (first-write-wins, valid checksums only) into
    fresh segments and delete the old ones plus the snapshot. Takes the
    writer lock for the duration. Crash-safe ordering: new segments are
    written to temp files, fsynced and renamed into place at ids above
    the old maximum {e before} any old segment is unlinked, so a crash
    at any point leaves a directory that opens to the same index
    (transient duplicates are harmless under first-write-wins because
    values are identical). *)
