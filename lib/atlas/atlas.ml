(* Crash-safe append-only content-addressed store. See atlas.mli for the
   storage model and recovery rules; the discipline (length-prefixed
   checksummed records, fsync on roll, torn-tail skip on open) mirrors
   the dispatch checkpoint journal. *)

let magic = "bncgatl1"
let snap_magic = "bncgsnp1"
let magic_len = 8
let header_len = 12 (* klen + vlen + crc32, u32le each *)
let max_klen = 1 lsl 24
let max_vlen = 1 lsl 28
let snapshot_name = "index.snap"
let lock_name = "lock"
let shard_count = 16

(* Telemetry: registered once at module init, process-wide. *)
let c_hits = Telemetry.counter "atlas.hits"
let c_misses = Telemetry.counter "atlas.misses"
let c_appends = Telemetry.counter "atlas.appends"
let c_duplicates = Telemetry.counter "atlas.duplicates"
let c_rolls = Telemetry.counter "atlas.segment_rolls"
let c_torn = Telemetry.counter "atlas.torn_skipped"
let c_corrupt = Telemetry.counter "atlas.corrupt_skipped"

(* POSIX lockf record locks never conflict within one process, so the
   on-disk lock file only excludes OTHER processes. This registry of
   realpath'd directories excludes a second writer handle in-process. *)
let live_writers : (string, unit) Hashtbl.t = Hashtbl.create 8
let live_writers_lock = Mutex.create ()

let acquire_writer dir =
  let key = Unix.realpath dir in
  Mutex.lock live_writers_lock;
  let taken = Hashtbl.mem live_writers key in
  if not taken then Hashtbl.add live_writers key ();
  Mutex.unlock live_writers_lock;
  if taken then failwith (dir ^ ": atlas is locked by another writer");
  let fd =
    Unix.openfile (Filename.concat dir lock_name)
      [ Unix.O_RDWR; Unix.O_CREAT ]
      0o644
  in
  (try Unix.lockf fd Unix.F_TLOCK 0
   with Unix.Unix_error _ ->
     Unix.close fd;
     Mutex.lock live_writers_lock;
     Hashtbl.remove live_writers key;
     Mutex.unlock live_writers_lock;
     failwith (dir ^ ": atlas is locked by another writer"));
  (key, fd)

let release_writer key fd =
  Unix.close fd;
  Mutex.lock live_writers_lock;
  Hashtbl.remove live_writers key;
  Mutex.unlock live_writers_lock

type pending = { pk : string; pv : string }

type t = {
  dir : string;
  readonly : bool;
  max_segment_bytes : int;
  shards : (string, string) Hashtbl.t array;
  shard_locks : Mutex.t array;
  (* Appender queue; q_lock also guards enqueued/written/closing and both
     conditions. *)
  q : pending Queue.t;
  q_lock : Mutex.t;
  q_cond : Condition.t; (* work available / closing *)
  done_cond : Condition.t; (* written advanced *)
  mutable enqueued : int;
  mutable written : int;
  mutable closing : bool;
  mutable closed : bool;
  mutable appender : unit Domain.t option;
  (* io_lock guards the segment fd and byte accounting: held by the
     appender while writing and by flush while fsyncing. *)
  io_lock : Mutex.t;
  mutable seg_fd : Unix.file_descr option;
  mutable seg_id : int;
  mutable seg_bytes : int;
  mutable seg_count : int;
  mutable disk_bytes : int;
  mutable io_error : string option;
  lock : (string * Unix.file_descr) option;
  (* Per-handle stats (process-wide telemetry is separate). *)
  s_hits : int Atomic.t;
  s_misses : int Atomic.t;
  s_appended : int Atomic.t;
  s_duplicates : int Atomic.t;
  snapshot_used : bool;
  torn_records : int;
  corrupt_records : int;
}

type stats = {
  segments : int;
  records : int;
  bytes : int;
  appended : int;
  duplicates : int;
  hits : int;
  misses : int;
  snapshot_used : bool;
  torn_records : int;
  corrupt_records : int;
}

type verify_report = {
  v_segments : int;
  v_records : int;
  v_live : int;
  v_bytes : int;
  v_torn : int;
  v_corrupt : int;
}

type compact_report = {
  c_segments_before : int;
  c_segments_after : int;
  c_records_before : int;
  c_live : int;
  c_bytes_before : int;
  c_bytes_after : int;
}

(* ---------- byte-level helpers ---------- *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32 s i =
  Char.code s.[i]
  lor (Char.code s.[i + 1] lsl 8)
  lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

let encode_record buf ~key ~value =
  put_u32 buf (String.length key);
  put_u32 buf (String.length value);
  put_u32 buf (Checksum.crc32 ~crc:(Checksum.crc32 key) value);
  Buffer.add_string buf key;
  Buffer.add_string buf value

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let seg_path dir id = Filename.concat dir (Printf.sprintf "atlas-%06d.seg" id)

let list_segments dir =
  let is_digits s = String.for_all (fun c -> c >= '0' && c <= '9') s in
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         if
           String.length name = 16
           && String.sub name 0 6 = "atlas-"
           && String.sub name 12 4 = ".seg"
           && is_digits (String.sub name 6 6)
         then Some (int_of_string (String.sub name 6 6))
         else None)
  |> List.sort compare

(* ---------- segment scanning ---------- *)

type scan_result = {
  sc_end : int; (* offset of the last well-framed boundary *)
  sc_size : int; (* file size *)
  sc_valid : int;
  sc_torn : int; (* 0 or 1: torn tail / corrupt framing stop *)
  sc_corrupt : int; (* well-framed records failing their checksum *)
}

(* Scan [path] from byte [from] (0 = check magic, start after it),
   calling [emit] for each valid record in order. Stops at a torn tail
   or corrupt framing; skips (but continues past) well-framed records
   with checksum mismatches, so every complete record is recovered. *)
let scan_segment ?(from = 0) path ~emit =
  let data = read_file path in
  let len = String.length data in
  if from = 0 && len < magic_len then Error `Short_magic
  else if from = 0 && String.sub data 0 magic_len <> magic then
    Error `Bad_magic
  else begin
    let pos = ref (max from magic_len) in
    let last_good = ref !pos in
    let valid = ref 0 and torn = ref 0 and corrupt = ref 0 in
    let stop = ref false in
    while (not !stop) && !pos < len do
      if len - !pos < header_len then begin
        torn := 1;
        stop := true
      end
      else begin
        let klen = get_u32 data !pos in
        let vlen = get_u32 data (!pos + 4) in
        let crc = get_u32 data (!pos + 8) in
        if klen > max_klen || vlen > max_vlen then begin
          (* insane lengths: corrupt framing, cannot re-sync *)
          torn := 1;
          stop := true
        end
        else if len - !pos - header_len < klen + vlen then begin
          torn := 1;
          stop := true
        end
        else begin
          let kpos = !pos + header_len in
          let actual =
            Checksum.crc32 ~pos:(kpos + klen) ~len:vlen
              ~crc:(Checksum.crc32 ~pos:kpos ~len:klen data)
              data
          in
          if actual <> crc then incr corrupt
          else begin
            incr valid;
            emit
              ~key:(String.sub data kpos klen)
              ~value:(String.sub data (kpos + klen) vlen)
          end;
          pos := kpos + klen + vlen;
          last_good := !pos
        end
      end
    done;
    Ok
      {
        sc_end = !last_good;
        sc_size = len;
        sc_valid = !valid;
        sc_torn = !torn;
        sc_corrupt = !corrupt;
      }
  end

(* ---------- snapshot ---------- *)

(* index.snap layout: "bncgsnp1" | nsegs:u32 | (id:u32 covered:u32)*
   | nrecords:u32 | crc32(bytes 8..here):u32 | records in segment
   framing. Written atomically on clean close; ANY anomaly on load
   discards the whole snapshot (full rescan instead). *)

let snap_path dir = Filename.concat dir snapshot_name

let load_snapshot dir =
  let path = snap_path dir in
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | exception _ -> None
    | data -> (
        let len = String.length data in
        try
          if len < magic_len + 4 then raise Exit;
          if String.sub data 0 magic_len <> snap_magic then raise Exit;
          let nsegs = get_u32 data magic_len in
          if nsegs > 1_000_000 then raise Exit;
          let tbl_end = magic_len + 4 + (nsegs * 8) in
          if len < tbl_end + 8 then raise Exit;
          let covered = Hashtbl.create 16 in
          for i = 0 to nsegs - 1 do
            let off = magic_len + 4 + (i * 8) in
            let id = get_u32 data off and cov = get_u32 data (off + 4) in
            if cov < magic_len || Hashtbl.mem covered id then raise Exit;
            Hashtbl.add covered id cov
          done;
          let nrec = get_u32 data tbl_end in
          let hdr_crc = get_u32 data (tbl_end + 4) in
          if
            Checksum.crc32 ~pos:magic_len ~len:(tbl_end + 4 - magic_len) data
            <> hdr_crc
          then raise Exit;
          let pos = ref (tbl_end + 8) in
          let recs = ref [] in
          for _ = 1 to nrec do
            if len - !pos < header_len then raise Exit;
            let klen = get_u32 data !pos in
            let vlen = get_u32 data (!pos + 4) in
            let crc = get_u32 data (!pos + 8) in
            if klen > max_klen || vlen > max_vlen then raise Exit;
            let kpos = !pos + header_len in
            if len - kpos < klen + vlen then raise Exit;
            let actual =
              Checksum.crc32 ~pos:(kpos + klen) ~len:vlen
                ~crc:(Checksum.crc32 ~pos:kpos ~len:klen data)
                data
            in
            if actual <> crc then raise Exit;
            recs :=
              ( String.sub data kpos klen,
                String.sub data (kpos + klen) vlen )
              :: !recs;
            pos := kpos + klen + vlen
          done;
          if !pos <> len then raise Exit;
          Some (covered, List.rev !recs)
        with Exit -> None)

(* ---------- handle helpers ---------- *)

let shard_of t key = t.shards.(Hashtbl.hash key land (shard_count - 1))
let shard_lock_of t key = t.shard_locks.(Hashtbl.hash key land (shard_count - 1))

let index_add_if_absent t key value =
  let tbl = shard_of t key and lk = shard_lock_of t key in
  Mutex.lock lk;
  let fresh = not (Hashtbl.mem tbl key) in
  if fresh then Hashtbl.add tbl key value;
  Mutex.unlock lk;
  fresh

let find t key =
  let tbl = shard_of t key and lk = shard_lock_of t key in
  Mutex.lock lk;
  let r = Hashtbl.find_opt tbl key in
  Mutex.unlock lk;
  (match r with
  | Some _ ->
      Atomic.incr t.s_hits;
      Telemetry.incr c_hits
  | None ->
      Atomic.incr t.s_misses;
      Telemetry.incr c_misses);
  r

(* ---------- appender ---------- *)

let create_segment t id =
  let fd =
    Unix.openfile (seg_path t.dir id)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  write_all fd (Bytes.of_string magic);
  t.seg_fd <- Some fd;
  t.seg_id <- id;
  t.seg_bytes <- magic_len;
  t.seg_count <- t.seg_count + 1;
  t.disk_bytes <- t.disk_bytes + magic_len

(* io_lock held. fsync the finished segment, then start the next. *)
let roll_segment t =
  (match t.seg_fd with
  | Some fd ->
      Unix.fsync fd;
      Unix.close fd
  | None -> ());
  t.seg_fd <- None;
  create_segment t (t.seg_id + 1);
  Telemetry.incr c_rolls

let write_batch t batch =
  Mutex.lock t.io_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.io_lock)
    (fun () ->
      if t.io_error = None then
        try
          let buf = Buffer.create 4096 in
          let flush_buf () =
            if Buffer.length buf > 0 then begin
              write_all (Option.get t.seg_fd) (Buffer.to_bytes buf);
              t.seg_bytes <- t.seg_bytes + Buffer.length buf;
              t.disk_bytes <- t.disk_bytes + Buffer.length buf;
              Buffer.clear buf
            end
          in
          List.iter
            (fun p ->
              let rec_len =
                header_len + String.length p.pk + String.length p.pv
              in
              let filled = t.seg_bytes + Buffer.length buf in
              if filled > magic_len && filled + rec_len > t.max_segment_bytes
              then begin
                flush_buf ();
                roll_segment t
              end;
              encode_record buf ~key:p.pk ~value:p.pv)
            batch;
          flush_buf ();
          let n = List.length batch in
          Atomic.fetch_and_add t.s_appended n |> ignore;
          Telemetry.add c_appends n
        with e -> t.io_error <- Some (Printexc.to_string e))

let rec appender_loop t =
  Mutex.lock t.q_lock;
  while Queue.is_empty t.q && not t.closing do
    Condition.wait t.q_cond t.q_lock
  done;
  let batch = List.rev (Queue.fold (fun acc p -> p :: acc) [] t.q) in
  Queue.clear t.q;
  let closing = t.closing in
  Mutex.unlock t.q_lock;
  match batch with
  | [] -> if not closing then appender_loop t (* spurious wakeup *)
  | _ ->
      write_batch t batch;
      Mutex.lock t.q_lock;
      t.written <- t.written + List.length batch;
      Condition.broadcast t.done_cond;
      Mutex.unlock t.q_lock;
      appender_loop t

(* ---------- public API ---------- *)

let add t ~key ~value =
  if t.readonly then invalid_arg "Atlas.add: read-only handle";
  if String.length key > max_klen then invalid_arg "Atlas.add: key too large";
  if String.length value > max_vlen then
    invalid_arg "Atlas.add: value too large";
  if not (index_add_if_absent t key value) then begin
    Atomic.incr t.s_duplicates;
    Telemetry.incr c_duplicates
  end
  else begin
    Mutex.lock t.q_lock;
    if t.closing then begin
      Mutex.unlock t.q_lock;
      invalid_arg "Atlas.add: closed handle"
    end;
    Queue.push { pk = key; pv = value } t.q;
    t.enqueued <- t.enqueued + 1;
    Condition.signal t.q_cond;
    Mutex.unlock t.q_lock
  end

let flush t =
  if not t.readonly then begin
    Mutex.lock t.q_lock;
    let target = t.enqueued in
    while t.written < target do
      Condition.wait t.done_cond t.q_lock
    done;
    Mutex.unlock t.q_lock;
    Mutex.lock t.io_lock;
    let err = t.io_error in
    (match t.seg_fd with
    | Some fd when err = None -> Unix.fsync fd
    | _ -> ());
    Mutex.unlock t.io_lock;
    match err with
    | Some e -> failwith ("Atlas: append failed: " ^ e)
    | None -> ()
  end

let index_size t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.shards

let write_snapshot t =
  let ids = list_segments t.dir in
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf snap_magic;
  put_u32 buf (List.length ids);
  List.iter
    (fun id ->
      put_u32 buf id;
      put_u32 buf (Unix.stat (seg_path t.dir id)).Unix.st_size)
    ids;
  put_u32 buf (index_size t);
  let hdr = Buffer.contents buf in
  put_u32 buf (Checksum.crc32 ~pos:magic_len hdr);
  Array.iter
    (fun tbl -> Hashtbl.iter (fun key value -> encode_record buf ~key ~value) tbl)
    t.shards;
  let tmp = snap_path t.dir ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_all fd (Buffer.to_bytes buf);
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp (snap_path t.dir);
  fsync_dir t.dir

let close t =
  if not t.closed then begin
    t.closed <- true;
    if not t.readonly then begin
      Mutex.lock t.q_lock;
      t.closing <- true;
      Condition.broadcast t.q_cond;
      Mutex.unlock t.q_lock;
      (match t.appender with Some d -> Domain.join d | None -> ());
      t.appender <- None;
      if t.io_error = None then (try write_snapshot t with _ -> ());
      (match t.seg_fd with
      | Some fd ->
          (try Unix.fsync fd with Unix.Unix_error _ -> ());
          Unix.close fd;
          t.seg_fd <- None
      | None -> ());
      match t.lock with
      | Some (key, fd) -> release_writer key fd
      | None -> ()
    end
  end

let stats t =
  {
    segments = t.seg_count;
    records = index_size t;
    bytes = t.disk_bytes;
    appended = Atomic.get t.s_appended;
    duplicates = Atomic.get t.s_duplicates;
    hits = Atomic.get t.s_hits;
    misses = Atomic.get t.s_misses;
    snapshot_used = t.snapshot_used;
    torn_records = t.torn_records;
    corrupt_records = t.corrupt_records;
  }

let open_ ?(readonly = false) ?(max_segment_bytes = 8 * 1024 * 1024) dir =
  try
    if max_segment_bytes < 64 then
      invalid_arg "Atlas.open_: max_segment_bytes too small";
    if not (Sys.file_exists dir) then
      if readonly then failwith (dir ^ ": no such atlas directory")
      else Unix.mkdir dir 0o755;
    if not (Sys.is_directory dir) then failwith (dir ^ ": not a directory");
    let lock = if readonly then None else Some (acquire_writer dir) in
    try
      let t =
      {
        dir;
        readonly;
        max_segment_bytes;
        shards = Array.init shard_count (fun _ -> Hashtbl.create 256);
        shard_locks = Array.init shard_count (fun _ -> Mutex.create ());
        q = Queue.create ();
        q_lock = Mutex.create ();
        q_cond = Condition.create ();
        done_cond = Condition.create ();
        enqueued = 0;
        written = 0;
        closing = false;
        closed = false;
        appender = None;
        io_lock = Mutex.create ();
        seg_fd = None;
        seg_id = -1;
        seg_bytes = 0;
        seg_count = 0;
        disk_bytes = 0;
        io_error = None;
        lock;
        s_hits = Atomic.make 0;
        s_misses = Atomic.make 0;
        s_appended = Atomic.make 0;
        s_duplicates = Atomic.make 0;
        snapshot_used = false;
        torn_records = 0;
        corrupt_records = 0;
      }
    in
    let ids = list_segments dir in
    let snapshot = load_snapshot dir in
    (* A snapshot is usable only if every segment it covers still exists
       with at least the covered bytes (compaction/truncation make it
       stale beyond repair → full rescan). *)
    let covered =
      match snapshot with
      | None -> None
      | Some (cov, recs) ->
          let ok =
            Hashtbl.fold
              (fun id c acc ->
                acc && List.mem id ids
                && (try (Unix.stat (seg_path dir id)).Unix.st_size >= c
                    with Unix.Unix_error _ -> false))
              cov true
          in
          if ok then begin
            List.iter
              (fun (k, v) -> ignore (index_add_if_absent t k v))
              recs;
            Some cov
          end
          else begin
            (* Snapshot was unusable: drop the partially loaded records
               and rescan from scratch. *)
            Array.iter Hashtbl.reset t.shards;
            None
          end
    in
    let snapshot_used = covered <> None in
    let torn = ref 0 and corrupt = ref 0 and disk = ref 0 and nsegs = ref 0 in
    let emit ~key ~value = ignore (index_add_if_absent t key value) in
    let last_id = match List.rev ids with [] -> -1 | id :: _ -> id in
    List.iter
      (fun id ->
        let path = seg_path dir id in
        let from =
          match covered with
          | Some cov -> ( match Hashtbl.find_opt cov id with
            | Some c -> c
            | None -> 0)
          | None -> 0
        in
        match scan_segment ~from path ~emit with
        | Ok r ->
            incr nsegs;
            torn := !torn + r.sc_torn;
            corrupt := !corrupt + r.sc_corrupt;
            if (not readonly) && r.sc_end < r.sc_size then begin
              (* torn tail / corrupt framing: truncate back to the last
                 well-framed boundary so appends restart cleanly *)
              Unix.truncate path r.sc_end;
              disk := !disk + r.sc_end
            end
            else disk := !disk + r.sc_size
        | Error `Short_magic ->
            (* a crash during initial segment creation can leave a short
               file; only tolerable at the tail of the id sequence *)
            if id = last_id then begin
              incr nsegs;
              incr torn;
              if not readonly then Unix.truncate path 0
            end
            else failwith (path ^ ": truncated segment magic")
        | Error `Bad_magic -> failwith (path ^ ": bad segment magic"))
      ids;
    if !torn > 0 then Telemetry.add c_torn !torn;
    if !corrupt > 0 then Telemetry.add c_corrupt !corrupt;
    let t =
      {
        t with
        snapshot_used;
        torn_records = !torn;
        corrupt_records = !corrupt;
        seg_count = !nsegs;
        disk_bytes = !disk;
      }
    in
    if not readonly then begin
      (* Open the tail segment for appends (creating it if the directory
         is empty or its file was truncated to zero by magic repair). *)
      (match List.rev ids with
      | [] -> create_segment t 0
      | id :: _ ->
          let path = seg_path dir id in
          let size = (Unix.stat path).Unix.st_size in
          if size < magic_len then begin
            (* truncated-to-zero magic repair above *)
            Unix.unlink path;
            t.seg_count <- t.seg_count - 1;
            create_segment t id
          end
          else begin
            let fd =
              Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
            in
            t.seg_fd <- Some fd;
            t.seg_id <- id;
            t.seg_bytes <- size
          end);
      t.appender <- Some (Domain.spawn (fun () -> appender_loop t))
    end;
    Ok t
    with
    | e ->
        (* don't leak the writer slot on a failed open *)
        (match lock with
        | Some (key, fd) -> release_writer key fd
        | None -> ());
        raise e
  with
  | Failure m -> Error m
  | Invalid_argument m -> Error m
  | Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "%s: %s(%s): %s" dir fn arg (Unix.error_message e))

(* ---------- offline tools ---------- *)

let verify dir =
  try
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      failwith (dir ^ ": no such atlas directory");
    let ids = list_segments dir in
    let live = Hashtbl.create 4096 in
    let records = ref 0
    and torn = ref 0
    and corrupt = ref 0
    and bytes = ref 0
    and nsegs = ref 0 in
    let emit ~key ~value:_ =
      if not (Hashtbl.mem live key) then Hashtbl.add live key ()
    in
    List.iter
      (fun id ->
        let path = seg_path dir id in
        match scan_segment path ~emit with
        | Ok r ->
            incr nsegs;
            records := !records + r.sc_valid;
            torn := !torn + r.sc_torn;
            corrupt := !corrupt + r.sc_corrupt;
            bytes := !bytes + r.sc_size
        | Error `Short_magic ->
            incr nsegs;
            incr torn;
            bytes := !bytes + (Unix.stat path).Unix.st_size
        | Error `Bad_magic -> failwith (path ^ ": bad segment magic"))
      ids;
    Ok
      {
        v_segments = !nsegs;
        v_records = !records;
        v_live = Hashtbl.length live;
        v_bytes = !bytes;
        v_torn = !torn;
        v_corrupt = !corrupt;
      }
  with
  | Failure m -> Error m
  | Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "%s: %s(%s): %s" dir fn arg (Unix.error_message e))

let compact ?(max_segment_bytes = 8 * 1024 * 1024) dir =
  let lock = ref None in
  Fun.protect
    ~finally:(fun () ->
      match !lock with
      | Some (key, fd) -> release_writer key fd
      | None -> ())
    (fun () ->
      try
        if not (Sys.file_exists dir && Sys.is_directory dir) then
          failwith (dir ^ ": no such atlas directory");
        lock := Some (acquire_writer dir);
        let ids = list_segments dir in
        (* First-wins scan, preserving first-seen order so compacted
           segments replay identically. *)
        let seen = Hashtbl.create 4096 in
        let order = ref [] in
        let records = ref 0 and bytes_before = ref 0 in
        let emit ~key ~value =
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key value;
            order := key :: !order
          end
        in
        List.iter
          (fun id ->
            let path = seg_path dir id in
            match scan_segment path ~emit with
            | Ok r ->
                records := !records + r.sc_valid;
                bytes_before := !bytes_before + r.sc_size
            | Error `Short_magic ->
                bytes_before := !bytes_before + (Unix.stat path).Unix.st_size
            | Error `Bad_magic -> failwith (path ^ ": bad segment magic"))
          ids;
        let live = List.rev !order in
        let max_old = match List.rev ids with [] -> -1 | id :: _ -> id in
        (* Write fresh segments at ids above the old maximum: tmp file,
           fsync, rename — all before any old segment is deleted. *)
        let new_ids = ref [] in
        let next_id = ref (max_old + 1) in
        let buf = Buffer.create (64 * 1024) in
        Buffer.add_string buf magic;
        let bytes_after = ref 0 in
        let flush_segment () =
          if Buffer.length buf > magic_len || !new_ids = [] then begin
            let id = !next_id in
            incr next_id;
            let final = seg_path dir id in
            let tmp = final ^ ".tmp" in
            let fd =
              Unix.openfile tmp
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                0o644
            in
            write_all fd (Buffer.to_bytes buf);
            Unix.fsync fd;
            Unix.close fd;
            Unix.rename tmp final;
            new_ids := id :: !new_ids;
            bytes_after := !bytes_after + Buffer.length buf;
            Buffer.clear buf;
            Buffer.add_string buf magic
          end
        in
        List.iter
          (fun key ->
            let value = Hashtbl.find seen key in
            let rec_len =
              header_len + String.length key + String.length value
            in
            if
              Buffer.length buf > magic_len
              && Buffer.length buf + rec_len > max_segment_bytes
            then flush_segment ();
            encode_record buf ~key ~value)
          live;
        flush_segment ();
        fsync_dir dir;
        (* All new segments durable: now drop the old ones + snapshot. *)
        List.iter (fun id -> Unix.unlink (seg_path dir id)) ids;
        if Sys.file_exists (snap_path dir) then Unix.unlink (snap_path dir);
        fsync_dir dir;
        Ok
          {
            c_segments_before = List.length ids;
            c_segments_after = List.length !new_ids;
            c_records_before = !records;
            c_live = List.length live;
            c_bytes_before = !bytes_before;
            c_bytes_after = !bytes_after;
          }
      with
      | Failure m -> Error m
      | Unix.Unix_error (e, fn, arg) ->
          Error
            (Printf.sprintf "%s: %s(%s): %s" dir fn arg
               (Unix.error_message e)))
