(** Canonical forms, isomorphism, automorphisms — for small graphs.

    The census deduplicates equilibria up to isomorphism and checks
    structural claims like "the Theorem 12 torus is vertex-transitive". The
    algorithm is classical: iterated color refinement (1-WL) to split
    vertices into classes, then a backtracking search over class-respecting
    permutations for the lexicographically minimal adjacency bitstring.
    Exponential in the worst case, so guarded: intended for n <= 12 or
    highly refined graphs; functions raise [Invalid_argument] past
    [max_search_vertices] unless documented otherwise. *)

val max_search_vertices : int
(** Hard cap (16) on the backtracking entry points. *)

val refine : Graph.t -> int array
(** Stable coloring from iterated neighborhood refinement; color ids are
    dense in [\[0, k)] and sorted by class signature. Isomorphic graphs get
    identical color histograms. Works for any size. *)

val canonical_form : Graph.t -> string
(** A string certificate: equal iff the graphs are isomorphic (for graphs
    within the search cap). *)

val isomorphic : Graph.t -> Graph.t -> bool
(** Cheap invariants first (n, m, degree sequence, refined color histogram),
    then certificate comparison. *)

(** {1 Certificate with labeling}

    The orderly census ({!Orderly}) needs more than the bare string: a
    labeling that achieves it, the automorphism group order (for
    orbit-stabilizer labeled counting), and the orbit of each canonical
    position (for the canonical-deletion test). All four come out of the
    single backtracking search. *)

type cert = {
  form : string;  (** equals {!canonical_form}. *)
  perm : int array;
      (** one optimal labeling: [perm.(p)] is the vertex placed at
          canonical position [p]. *)
  aut_count : int;  (** [|Aut(g)|], counted as optimal-leaf labelings. *)
  position_vertices : int array;
      (** [position_vertices.(p)] is the bitmask of vertices that some
          optimal labeling places at position [p] — exactly the
          automorphism orbit of [perm.(p)]. *)
}

val cert : Graph.t -> cert
(** Same cost profile as {!canonical_form} (equal-prefix branches were
    already explored); complete graphs short-circuit to a closed form. *)

val automorphisms : Graph.t -> int array list
(** All automorphisms as permutation arrays ([σ.(v)] is the image of [v]).
    Includes the identity. *)

val automorphisms_capped : cap:int -> Graph.t -> int array list option
(** [automorphisms_capped ~cap g] is [Some] of the full group when its
    order is at most [cap], [None] otherwise (the search aborts on the
    [cap+1]-th element, so pathological groups cost O(cap), not
    O(n!)). *)

val automorphism_count : Graph.t -> int

val orbits : Graph.t -> int array
(** [orbits g] labels each vertex with its automorphism-orbit index. *)

val is_vertex_transitive : Graph.t -> bool
(** Single orbit. Note: Cayley graphs are vertex-transitive by construction;
    use this only to spot-check small instances. *)
