(** graph6 encoding (McKay's format).

    Compact ASCII serialization of undirected graphs, used to persist census
    results and to exchange instances with external tools (nauty, House of
    Graphs). Supports n < 63 (the small-graph regime of the census) plus the
    4-byte extended header up to n < 258048. *)

val encode : Graph.t -> string

val decode : string -> Graph.t
(** @raise Invalid_argument on malformed input. *)

val decode_result : string -> (Graph.t, string) result
(** Total variant for untrusted input (CLI arguments, the serving layer):
    no exception escapes, malformed strings come back as [Error msg]. The
    length check runs before any graph allocation, so a forged extended
    header cannot provoke a large allocation. *)
