(** Exhaustive enumeration of small graphs.

    The census experiments quantify over *all* connected graphs (n <= 7)
    and *all* labeled trees (n <= 10): every theorem about equilibria is
    checked against the full universe in that range, not a sample.
    Enumeration is over labeled graphs; callers deduplicate up to
    isomorphism with {!Canon} where needed. *)

val max_graph_vertices : int
(** 8: all 2^28 edge subsets is the practical ceiling; census defaults stop
    at 7. *)

val max_tree_vertices : int
(** 10: 10^8 Prüfer sequences is the ceiling; census defaults stop at 9. *)

val connected_graphs : int -> (Graph.t -> unit) -> unit
(** [connected_graphs n f] calls [f] once per connected labeled graph on
    [n] vertices. The same [Graph.t] buffer is NOT reused; each call gets a
    fresh graph the callback may keep. Ordering follows the edge-subset
    bitmask. @raise Invalid_argument beyond the cap. *)

val count_connected_graphs : int -> int
(** Convenience: number of connected labeled graphs on n vertices
    (sequence A001187: 1, 1, 1, 4, 38, 728, 26704, 1866256, ...). *)

val graph_mask_count : int -> int
(** [2^(n·(n-1)/2)] — the edge-subset mask space that {!connected_graphs}
    walks; the rank space for {!connected_graphs_in}. *)

val connected_graphs_in :
  int -> lo:int -> hi:int -> (Graph.t -> unit) -> unit
(** [connected_graphs_in n ~lo ~hi f] visits the connected graphs whose
    edge-subset mask lies in [[lo, hi)], in mask order. Concatenating
    disjoint adjacent ranges over [[0, graph_mask_count n)] reproduces
    {!connected_graphs} exactly — this is the census sharding primitive. *)

val all_graphs : int -> (Graph.t -> unit) -> unit
(** Every labeled graph, connected or not. *)

val trees : int -> (Graph.t -> unit) -> unit
(** [trees n f] visits all [n^(n-2)] labeled trees via Prüfer sequences
    (all distinct; Cayley's formula). For n <= 2 visits the unique tree. *)

val count_trees : int -> int
(** [n^(n-2)] for n >= 2, else 1. *)

val trees_in : int -> lo:int -> hi:int -> (Graph.t -> unit) -> unit
(** [trees_in n ~lo ~hi f] visits the labeled trees of Prüfer rank
    [lo .. hi - 1] (the rank is the big-endian base-[n] value of the
    Prüfer sequence), in rank order — the same order as {!trees}. *)

val edge_subsets_of :
  Graph.t -> size:int -> ((int * int) list -> unit) -> unit
(** All [size]-subsets of the host graph's edges — used by the k-swap
    stability checker. *)
