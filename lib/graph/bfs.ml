let unreachable = max_int / 4

(* Counted once per [run], after the loop, from the queue cursors — the
   inner neighbor loop stays untouched, so the instrumentation costs three
   flat flag checks per BFS even when telemetry is on. *)
let m_runs = Telemetry.counter "bfs.runs"

let m_visits = Telemetry.counter "bfs.visits"

let m_pushes = Telemetry.counter "bfs.frontier_pushes"

type workspace = {
  capacity : int;
  queue : int array;
  dist : int array;  (* stamped: valid iff stamp.(v) = generation *)
  stamp : int array;
  mutable generation : int;
  mutable last_reached : int;
  mutable last_sum : int;
  mutable last_ecc : int;
  mutable last_n : int;
}

let create_workspace n =
  if n < 0 then invalid_arg "Bfs.create_workspace";
  {
    capacity = n;
    queue = Array.make (max n 1) 0;
    dist = Array.make (max n 1) 0;
    stamp = Array.make (max n 1) (-1);
    generation = 0;
    last_reached = 0;
    last_sum = 0;
    last_ecc = 0;
    last_n = 0;
  }

let run ws g src =
  let n = Graph.n g in
  if n > ws.capacity then invalid_arg "Bfs.run: workspace too small";
  if src < 0 || src >= n then invalid_arg "Bfs.run: source out of range";
  ws.generation <- ws.generation + 1;
  let gen = ws.generation in
  ws.dist.(src) <- 0;
  ws.stamp.(src) <- gen;
  ws.queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  let sum = ref 0 and ecc = ref 0 in
  while !head < !tail do
    let v = ws.queue.(!head) in
    incr head;
    let dv = ws.dist.(v) in
    let dnext = dv + 1 in
    Graph.iter_neighbors
      (fun w ->
        if ws.stamp.(w) <> gen then begin
          ws.stamp.(w) <- gen;
          ws.dist.(w) <- dnext;
          sum := !sum + dnext;
          if dnext > !ecc then ecc := dnext;
          ws.queue.(!tail) <- w;
          incr tail
        end)
      g v
  done;
  ws.last_reached <- !tail;
  ws.last_sum <- !sum;
  ws.last_ecc <- !ecc;
  ws.last_n <- n;
  Telemetry.incr m_runs;
  Telemetry.add m_visits !head;
  Telemetry.add m_pushes !tail

let dist ws v =
  if ws.stamp.(v) = ws.generation then ws.dist.(v) else unreachable

let reached ws = ws.last_reached

let sum_dist ws = ws.last_sum

let ecc ws = ws.last_ecc

let distances g src =
  let ws = create_workspace (Graph.n g) in
  run ws g src;
  Array.init (Graph.n g) (fun v -> dist ws v)

let distances_into ws g src out =
  run ws g src;
  for v = 0 to Graph.n g - 1 do
    out.(v) <- dist ws v
  done

let all_pairs ?pool g =
  let n = Graph.n g in
  match pool with
  | None ->
    let ws = create_workspace n in
    Array.init n (fun src ->
        let row = Array.make n 0 in
        distances_into ws g src row;
        row)
  | Some pool ->
    (* one BFS workspace per domain; rows are disjoint writes, and the
       graph is only read, so no further synchronisation is needed *)
    let matrix = Array.init n (fun _ -> Array.make n 0) in
    Pool.parallel_for pool ~n
      ~init:(fun () -> create_workspace n)
      (fun ws src -> distances_into ws g src matrix.(src));
    matrix

type reachability = { sum : int; ecc : int; reached : int }

let reach ws g src =
  run ws g src;
  { sum = ws.last_sum; ecc = ws.last_ecc; reached = ws.last_reached }

let connected_from ws g src =
  run ws g src;
  ws.last_reached = Graph.n g
