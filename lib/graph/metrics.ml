let fold_vertices_bfs g f init =
  (* Applies [f acc reach] per vertex; short-circuits to None on
     disconnection. *)
  let n = Graph.n g in
  if n = 0 then Some init
  else begin
    let ws = Bfs.create_workspace n in
    let rec loop v acc =
      if v >= n then Some acc
      else begin
        let r = Bfs.reach ws g v in
        if r.Bfs.reached < n then None else loop (v + 1) (f acc r)
      end
    in
    loop 0 init
  end

(* Parallel eccentricity sweep: per-domain BFS workspace, per-vertex
   disjoint writes. A disconnected source flips the shared flag, which
   later vertices read to skip their BFS — cheaper than the sequential
   short-circuit only in wall-clock, but the verdict is identical. *)
let eccentricities_par pool g =
  let n = Graph.n g in
  if n = 0 then Some [||]
  else begin
    let out = Array.make n 0 in
    let connected = Atomic.make true in
    Pool.parallel_for pool ~n
      ~init:(fun () -> Bfs.create_workspace n)
      (fun ws v ->
        if Atomic.get connected then begin
          let r = Bfs.reach ws g v in
          if r.Bfs.reached < n then Atomic.set connected false
          else out.(v) <- r.Bfs.ecc
        end);
    if Atomic.get connected then Some out else None
  end

let eccentricities ?pool g =
  match pool with
  | Some pool when Pool.jobs pool > 1 -> eccentricities_par pool g
  | _ ->
    let n = Graph.n g in
    let out = Array.make n 0 in
    let i = ref 0 in
    fold_vertices_bfs g
      (fun () r ->
        out.(!i) <- r.Bfs.ecc;
        incr i)
      ()
    |> Option.map (fun () -> out)

let diameter ?pool g =
  match pool with
  | Some pool when Pool.jobs pool > 1 ->
    eccentricities_par pool g
    |> Option.map (fun ecc -> Array.fold_left max 0 ecc)
  | _ -> fold_vertices_bfs g (fun acc r -> max acc r.Bfs.ecc) 0

let radius g =
  fold_vertices_bfs g (fun acc r -> min acc r.Bfs.ecc) max_int
  |> Option.map (fun r -> if Graph.n g <= 1 then 0 else r)

let wiener_index g =
  fold_vertices_bfs g (fun acc r -> acc + r.Bfs.sum) 0
  |> Option.map (fun twice -> twice / 2)

let average_distance g =
  let n = Graph.n g in
  if n <= 1 then None
  else
    wiener_index g
    |> Option.map (fun w -> float_of_int w /. (float_of_int (n * (n - 1)) /. 2.0))

let girth g =
  (* BFS from every vertex; a non-tree edge between BFS levels witnesses a
     cycle through the root of length dist u + dist v + 1 (odd case, exact)
     or dist u + dist v + 2 (even case, upper bound).  Taking the minimum
     over all roots is exact: a shortest cycle is recovered from any of its
     vertices. *)
  let n = Graph.n g in
  let best = ref max_int in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let queue = Array.make n 0 in
  for src = 0 to n - 1 do
    Array.fill dist 0 n (-1);
    dist.(src) <- 0;
    parent.(src) <- -1;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      Graph.iter_neighbors
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            parent.(w) <- v;
            queue.(!tail) <- w;
            incr tail
          end
          else if parent.(v) <> w && v < w then begin
            let len = dist.(v) + dist.(w) + 1 in
            if len < !best then best := len
          end)
        g v
    done
  done;
  if !best = max_int then None else Some !best

let distance_histogram g v =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  Bfs.run ws g v;
  let ecc = Bfs.ecc ws in
  let hist = Array.make (ecc + 1) 0 in
  for w = 0 to n - 1 do
    let d = Bfs.dist ws w in
    if d <> Bfs.unreachable then hist.(d) <- hist.(d) + 1
  done;
  hist

let ball_sizes g v =
  let hist = distance_histogram g v in
  let acc = ref 0 in
  Array.map
    (fun c ->
      acc := !acc + c;
      !acc)
    hist

let local_diameter g v =
  let ws = Bfs.create_workspace (Graph.n g) in
  let r = Bfs.reach ws g v in
  if r.Bfs.reached < Graph.n g then None else Some r.Bfs.ecc

let sum_distance g v =
  let ws = Bfs.create_workspace (Graph.n g) in
  let r = Bfs.reach ws g v in
  if r.Bfs.reached < Graph.n g then None else Some r.Bfs.sum

let triangle_count g =
  let count = ref 0 in
  Graph.iter_edges
    (fun u v ->
      (* scan the smaller neighborhood for common neighbors above v to
         count each triangle once *)
      let small, other = if Graph.degree g u <= Graph.degree g v then u, v else v, u in
      Graph.iter_neighbors
        (fun w -> if w > max u v && Graph.mem_edge g other w then incr count)
        g small)
    g;
  !count

let local_clustering g v =
  let deg = Graph.degree g v in
  if deg < 2 then 0.0
  else begin
    let neighbors = Graph.neighbors g v in
    let links = ref 0 in
    Array.iter
      (fun a ->
        Array.iter (fun b -> if a < b && Graph.mem_edge g a b then incr links) neighbors)
      neighbors;
    2.0 *. float_of_int !links /. float_of_int (deg * (deg - 1))
  end

let average_clustering g =
  let n = Graph.n g in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for v = 0 to n - 1 do
      acc := !acc +. local_clustering g v
    done;
    !acc /. float_of_int n
  end

let global_clustering g =
  let wedges = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    wedges := !wedges + (d * (d - 1) / 2)
  done;
  if !wedges = 0 then 0.0
  else 3.0 *. float_of_int (triangle_count g) /. float_of_int !wedges

let degree_assortativity g =
  if Graph.m g = 0 then None
  else begin
    (* Pearson correlation over the 2m ordered edge endpoints *)
    let sum_x = ref 0.0 and sum_xy = ref 0.0 and sum_x2 = ref 0.0 in
    let count = ref 0 in
    Graph.iter_edges
      (fun u v ->
        let du = float_of_int (Graph.degree g u)
        and dv = float_of_int (Graph.degree g v) in
        (* both orientations keep the statistic symmetric *)
        sum_x := !sum_x +. du +. dv;
        sum_xy := !sum_xy +. (2.0 *. du *. dv);
        sum_x2 := !sum_x2 +. (du *. du) +. (dv *. dv);
        count := !count + 2)
      g;
    let nf = float_of_int !count in
    let mean = !sum_x /. nf in
    let var = (!sum_x2 /. nf) -. (mean *. mean) in
    if var <= 1e-12 then None
    else Some (((!sum_xy /. nf) -. (mean *. mean)) /. var)
  end

let is_distance_formula g f =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  let ok = ref true in
  let u = ref 0 in
  while !ok && !u < n do
    Bfs.run ws g !u;
    let v = ref 0 in
    while !ok && !v < n do
      let d = Bfs.dist ws !v in
      let d = if d = Bfs.unreachable then -1 else d in
      if f !u !v <> d then ok := false;
      incr v
    done;
    incr u
  done;
  !ok
