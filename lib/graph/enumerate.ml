let max_graph_vertices = 8

let max_tree_vertices = 10

(* Sweep sizes are known up front, so each enumeration entry point records
   its whole range with one [add] instead of a per-item increment. *)
let m_ranks = Telemetry.counter "enumerate.ranks_decoded"

let m_masks = Telemetry.counter "enumerate.masks_scanned"

let pair_list n =
  let acc = ref [] in
  for v = n - 1 downto 0 do
    for u = v - 1 downto 0 do
      acc := (u, v) :: !acc
    done
  done;
  Array.of_list !acc

let connected_mask n pairs mask =
  (* union-find connectivity straight off the bitmask, without building a
     graph object for the (many) disconnected subsets *)
  let uf = Union_find.create n in
  Array.iteri
    (fun i (u, v) -> if mask land (1 lsl i) <> 0 then ignore (Union_find.union uf u v))
    pairs;
  Union_find.count uf = 1

let graph_of_mask n pairs mask =
  let g = Graph.create n in
  Array.iteri
    (fun i (u, v) -> if mask land (1 lsl i) <> 0 then Graph.add_edge g u v)
    pairs;
  g

let all_graphs n f =
  if n < 0 || n > max_graph_vertices then invalid_arg "Enumerate.all_graphs";
  let pairs = pair_list n in
  let total = 1 lsl Array.length pairs in
  Telemetry.add m_masks total;
  for mask = 0 to total - 1 do
    f (graph_of_mask n pairs mask)
  done

let connected_graphs n f =
  if n < 0 || n > max_graph_vertices then invalid_arg "Enumerate.connected_graphs";
  if n <= 1 then f (Graph.create n)
  else begin
    let pairs = pair_list n in
    let total = 1 lsl Array.length pairs in
    Telemetry.add m_masks total;
    for mask = 0 to total - 1 do
      if connected_mask n pairs mask then f (graph_of_mask n pairs mask)
    done
  end

let count_connected_graphs n =
  let c = ref 0 in
  connected_graphs n (fun _ -> incr c);
  !c

let graph_mask_count n =
  if n < 0 || n > max_graph_vertices then invalid_arg "Enumerate.graph_mask_count";
  1 lsl (n * (n - 1) / 2)

let connected_graphs_in n ~lo ~hi f =
  if n < 0 || n > max_graph_vertices then invalid_arg "Enumerate.connected_graphs_in";
  let total = graph_mask_count n in
  if lo < 0 || hi > total || lo > hi then invalid_arg "Enumerate.connected_graphs_in";
  if n <= 1 then begin
    if lo = 0 && hi > 0 then f (Graph.create n)
  end
  else begin
    let pairs = pair_list n in
    Telemetry.add m_masks (hi - lo);
    for mask = lo to hi - 1 do
      if connected_mask n pairs mask then f (graph_of_mask n pairs mask)
    done
  end

let count_trees n =
  if n <= 2 then 1
  else begin
    let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
    pow n (n - 2)
  end

let trees n f =
  if n < 1 || n > max_tree_vertices then invalid_arg "Enumerate.trees";
  Telemetry.add m_ranks (count_trees n);
  if n <= 2 then f (Random_graphs.tree_of_pruefer n [||])
  else begin
    let len = n - 2 in
    let seq = Array.make len 0 in
    (* odometer over [0, n)^len *)
    let rec bump i =
      if i < 0 then false
      else if seq.(i) + 1 < n then begin
        seq.(i) <- seq.(i) + 1;
        true
      end
      else begin
        seq.(i) <- 0;
        bump (i - 1)
      end
    in
    let continue = ref true in
    while !continue do
      f (Random_graphs.tree_of_pruefer n seq);
      continue := bump (len - 1)
    done
  end

let trees_in n ~lo ~hi f =
  if n < 1 || n > max_tree_vertices then invalid_arg "Enumerate.trees_in";
  let total = count_trees n in
  if lo < 0 || hi > total || lo > hi then invalid_arg "Enumerate.trees_in";
  Telemetry.add m_ranks (hi - lo);
  if n <= 2 then begin
    if lo = 0 && hi > 0 then f (Random_graphs.tree_of_pruefer n [||])
  end
  else begin
    let len = n - 2 in
    (* seed the odometer at rank [lo]: the sequence is the big-endian
       base-n digit expansion of the rank, matching [trees]'s visit order *)
    let seq = Array.make len 0 in
    let rem = ref lo in
    for i = len - 1 downto 0 do
      seq.(i) <- !rem mod n;
      rem := !rem / n
    done;
    let rec bump i =
      if i >= 0 then
        if seq.(i) + 1 < n then seq.(i) <- seq.(i) + 1
        else begin
          seq.(i) <- 0;
          bump (i - 1)
        end
    in
    for _rank = lo to hi - 1 do
      f (Random_graphs.tree_of_pruefer n seq);
      bump (len - 1)
    done
  end

let edge_subsets_of g ~size f =
  if size < 0 then invalid_arg "Enumerate.edge_subsets_of";
  let es = Array.of_list (Graph.edges g) in
  let m = Array.length es in
  let chosen = Array.make (max size 1) (-1) in
  let rec go depth lo =
    if depth = size then begin
      let subset = ref [] in
      for i = size - 1 downto 0 do
        subset := es.(chosen.(i)) :: !subset
      done;
      f !subset
    end
    else
      for i = lo to m - (size - depth) do
        chosen.(depth) <- i;
        go (depth + 1) (i + 1)
      done
  in
  if size <= m then go 0 0
