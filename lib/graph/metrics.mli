(** Global distance metrics.

    The paper's central quantity is the diameter of equilibrium graphs; this
    module computes it together with the related usage-cost aggregates
    (Wiener index, average distance) and the girth used in the Theorem 5
    analysis. Functions returning distances yield [None] on disconnected
    graphs unless documented otherwise. *)

val diameter : ?pool:Pool.t -> Graph.t -> int option
(** Largest eccentricity; [None] if disconnected. [Some 0] for n <= 1.
    With [?pool] the per-vertex BFS sweep runs across domains; the result
    is identical to the sequential one. *)

val radius : Graph.t -> int option
(** Smallest eccentricity. *)

val eccentricities : ?pool:Pool.t -> Graph.t -> int array option
(** Per-vertex eccentricities; [None] if disconnected. [?pool] as in
    {!diameter}. *)

val wiener_index : Graph.t -> int option
(** Sum of d(u,v) over unordered pairs. The sum-version social cost is twice
    this value. *)

val average_distance : Graph.t -> float option
(** Mean of d(u,v) over unordered pairs; [None] for n <= 1 or
    disconnected. *)

val girth : Graph.t -> int option
(** Length of a shortest cycle; [None] for forests. O(n·m). *)

val distance_histogram : Graph.t -> int -> int array
(** [distance_histogram g v] has, at index [d], the number of vertices at
    distance exactly [d] from [v] (the sphere sizes S_d(v) of Theorem 9).
    Length is [ecc + 1]; unreached vertices are not counted. *)

val ball_sizes : Graph.t -> int -> int array
(** Cumulative spheres: index [d] holds |B_d(v)|. *)

val local_diameter : Graph.t -> int -> int option
(** The paper's "local diameter" of a vertex: its eccentricity. [None] if
    the vertex does not reach the whole graph. *)

val sum_distance : Graph.t -> int -> int option
(** Sum-version usage cost of a vertex; [None] if disconnected. *)

val triangle_count : Graph.t -> int
(** Number of triangles (3-cliques). O(Σ deg²). *)

val local_clustering : Graph.t -> int -> float
(** Fraction of the vertex's neighbor pairs that are adjacent; 0.0 for
    degree < 2. *)

val average_clustering : Graph.t -> float
(** Mean of {!local_clustering} over all vertices (0.0 for n = 0). *)

val global_clustering : Graph.t -> float
(** Transitivity: 3·triangles / #(paths of length 2); 0.0 when there are
    no length-2 paths. *)

val degree_assortativity : Graph.t -> float option
(** Pearson correlation of endpoint degrees over edges (Newman); [None]
    when degenerate (no edges, or all degrees equal). Negative for stars
    and other hub-dominated equilibria. *)

val is_distance_formula :
  Graph.t -> (int -> int -> int) -> bool
(** [is_distance_formula g f] checks [f u v = d(u,v)] for all pairs —
    used to validate closed-form distance oracles such as the Theorem 12
    torus formula. O(n·m + n²). *)
