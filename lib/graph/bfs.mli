(** Breadth-first search with reusable workspaces.

    Swap dynamics evaluates thousands of candidate moves per round, each with
    a fresh BFS, so this module is written to be allocation-free after the
    workspace is created: the queue and distance arrays are reused and the
    distance array carries a generation stamp instead of being cleared. *)

val unreachable : int
(** Sentinel distance for vertices not reached ([max_int / 4], safely
    addable without overflow). *)

type workspace
(** Scratch space for graphs with at most the creation-time vertex count. *)

val create_workspace : int -> workspace
(** [create_workspace n] allocates scratch for graphs of up to [n]
    vertices. *)

val run : workspace -> Graph.t -> int -> unit
(** [run ws g src] computes single-source distances from [src] into the
    workspace. The graph's vertex count must not exceed the workspace
    capacity. *)

val dist : workspace -> int -> int
(** Distance of a vertex after {!run}; {!unreachable} if not reached. *)

val reached : workspace -> int
(** Number of vertices reached by the last {!run} (including the source). *)

val sum_dist : workspace -> int
(** Sum of finite distances from the last {!run}. Meaningful as a usage cost
    only when [reached ws = Graph.n g]. *)

val ecc : workspace -> int
(** Largest finite distance from the last {!run}. *)

val distances : Graph.t -> int -> int array
(** One-shot convenience: fresh distance array from a fresh workspace, with
    {!unreachable} marking unreached vertices. *)

val distances_into : workspace -> Graph.t -> int -> int array -> unit
(** [distances_into ws g src out] runs BFS and writes all [n] distances into
    [out] (which must have length >= n). *)

val all_pairs : ?pool:Pool.t -> Graph.t -> int array array
(** [all_pairs g] is the n×n distance matrix via n BFS runs. With [?pool]
    the sources are fanned across domains (workspace per domain, disjoint
    row writes); the matrix is identical to the sequential one. *)

type reachability = {
  sum : int;  (** sum of distances to all other vertices *)
  ecc : int;  (** eccentricity *)
  reached : int;  (** vertices reached, including the source *)
}

val reach : workspace -> Graph.t -> int -> reachability
(** Single call combining {!run} with the three summaries. *)

val connected_from : workspace -> Graph.t -> int -> bool
(** [connected_from ws g src] is [true] iff BFS from [src] reaches all
    vertices. For a graph known to have no isolated context this is the
    standard connectivity test. *)
