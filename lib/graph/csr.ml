type t = {
  offsets : int array;  (* length n+1 *)
  targets : int array;  (* length 2m, sorted within each row *)
}

let of_graph g =
  let n = Graph.n g in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + Graph.degree g v
  done;
  let targets = Array.make offsets.(n) 0 in
  for v = 0 to n - 1 do
    let row = Graph.neighbors g v in
    Array.blit row 0 targets offsets.(v) (Array.length row)
  done;
  { offsets; targets }

(* Build directly from an undirected edge stream without a Graph.t (or any
   per-vertex structure) in between: count degrees, prefix-sum, scatter,
   sort each row, then compact duplicate targets in place. The large-n
   generators emit here, so the only O(m)-sized allocations are the final
   arrays plus one cursor array. *)
let of_edges ~n edges =
  if n < 0 then invalid_arg "Csr.of_edges: negative n";
  let deg = Array.make (n + 1) 0 in
  Array.iter
    (fun (u, v) ->
      if u = v || u < 0 || v < 0 || u >= n || v >= n then
        invalid_arg "Csr.of_edges: bad edge";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let targets = Array.make offsets.(n) 0 in
  let cursor = Array.blit offsets 0 deg 0 (n + 1); deg in
  Array.iter
    (fun (u, v) ->
      targets.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      targets.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  for v = 0 to n - 1 do
    let lo = offsets.(v) and hi = offsets.(v + 1) in
    let row = Array.sub targets lo (hi - lo) in
    Array.sort compare row;
    Array.blit row 0 targets lo (hi - lo)
  done;
  (* drop duplicate undirected edges (both directions vanish, so the
     result stays symmetric); the compaction is a no-op when clean *)
  let w = ref 0 in
  let out_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    out_off.(v) <- !w;
    let prev = ref (-1) in
    for i = offsets.(v) to offsets.(v + 1) - 1 do
      let x = targets.(i) in
      if x <> !prev then begin
        targets.(!w) <- x;
        incr w;
        prev := x
      end
    done
  done;
  out_off.(n) <- !w;
  if !w = offsets.(n) then { offsets; targets }
  else { offsets = out_off; targets = Array.sub targets 0 !w }

let n t = Array.length t.offsets - 1

let m t = Array.length t.targets / 2

let degree t v = t.offsets.(v + 1) - t.offsets.(v)

let iter_neighbors f t v =
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.targets.(i)
  done

let mem_edge t v w =
  let lo = ref t.offsets.(v) and hi = ref (t.offsets.(v + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = t.targets.(mid) in
    if x = w then found := true else if x < w then lo := mid + 1 else hi := mid - 1
  done;
  !found

let bfs_into t src ~dist ~queue =
  let nv = n t in
  Array.fill dist 0 nv (-1);
  dist.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    let dnext = dist.(v) + 1 in
    for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
      let w = t.targets.(i) in
      if dist.(w) < 0 then begin
        dist.(w) <- dnext;
        queue.(!tail) <- w;
        incr tail
      end
    done
  done;
  !tail

let all_pairs t =
  let nv = n t in
  let queue = Array.make (max nv 1) 0 in
  Array.init nv (fun src ->
      let dist = Array.make nv (-1) in
      ignore (bfs_into t src ~dist ~queue);
      dist)

let equal a b = a.offsets = b.offsets && a.targets = b.targets

let to_graph t =
  let g = Graph.create (n t) in
  for v = 0 to n t - 1 do
    iter_neighbors (fun w -> if v < w then Graph.add_edge g v w) t v
  done;
  g
