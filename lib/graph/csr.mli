(** Immutable compressed-sparse-row snapshots.

    The mutable {!Graph.t} representation pays a pointer indirection per
    adjacency row; for read-only bulk work (all-pairs distances over a
    frozen equilibrium, the benchmark baselines) a CSR snapshot keeps all
    targets in one contiguous array. *)

type t

val of_graph : Graph.t -> t
(** O(n + m); neighbor order within a row is sorted. *)

val of_edges : n:int -> (int * int) array -> t
(** [of_edges ~n edges] builds the snapshot straight from an undirected
    edge stream — no intermediate {!Graph.t}, so million-edge generators
    pay only the final arrays. Duplicate edges are dropped (first kept);
    rows come out sorted. O(m lg deg + n). @raise Invalid_argument on
    self-loops or out-of-range endpoints. *)

val equal : t -> t -> bool
(** Structural equality of the snapshots (same offsets, same targets) —
    the byte-identity notion the deterministic generators are tested
    under. *)

val n : t -> int

val m : t -> int

val degree : t -> int -> int

val iter_neighbors : (int -> unit) -> t -> int -> unit

val mem_edge : t -> int -> int -> bool
(** Binary search within the row: O(lg deg). *)

val bfs_into : t -> int -> dist:int array -> queue:int array -> int
(** [bfs_into t src ~dist ~queue] fills [dist] (−1 for unreached) using
    [queue] as scratch; both must have length >= n. Returns the number of
    vertices reached. *)

val all_pairs : t -> int array array
(** n BFS sweeps over the snapshot. *)

val to_graph : t -> Graph.t
