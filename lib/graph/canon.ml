let max_search_vertices = 16

(* --- color refinement ----------------------------------------------- *)

let refine g =
  let n = Graph.n g in
  let color = Array.make n 0 in
  (* initial color: degree *)
  for v = 0 to n - 1 do
    color.(v) <- Graph.degree g v
  done;
  let dense c =
    (* remap colors to 0..k-1, ordered by their signature so the result is
       label-independent *)
    let sorted = Array.copy c in
    Array.sort compare sorted;
    let tbl = Hashtbl.create n in
    let next = ref 0 in
    Array.iter
      (fun x ->
        if not (Hashtbl.mem tbl x) then begin
          Hashtbl.add tbl x !next;
          incr next
        end)
      sorted;
    Array.map (Hashtbl.find tbl) c, !next
  in
  let color, k0 = dense color in
  let color = ref color and k = ref k0 in
  let stable = ref false in
  while not !stable do
    let signature v =
      let neigh = Graph.fold_neighbors (fun acc w -> !color.(w) :: acc) [] g v in
      (!color.(v), List.sort compare neigh)
    in
    let sigs = Array.init n signature in
    (* hash-cons signatures into new dense colors, ordered by signature *)
    let distinct = Hashtbl.create n in
    Array.iter (fun s -> if not (Hashtbl.mem distinct s) then Hashtbl.add distinct s ()) sigs;
    let keys = Hashtbl.fold (fun s () acc -> s :: acc) distinct [] in
    let keys = List.sort compare keys in
    let rank = Hashtbl.create n in
    List.iteri (fun i s -> Hashtbl.add rank s i) keys;
    let next = Array.map (Hashtbl.find rank) sigs in
    let k' = List.length keys in
    if k' = !k then stable := true
    else begin
      color := next;
      k := k'
    end
  done;
  !color

(* --- canonical form --------------------------------------------------- *)

let check_cap g =
  if Graph.n g > max_search_vertices then
    invalid_arg "Canon: graph exceeds max_search_vertices"

(* Canonical form: the lexicographically minimal adjacency bitstring over
   all color-class-respecting vertex orders.  Bits are emitted in
   column-major order (x_{0,1}; x_{0,2}, x_{1,2}; x_{0,3}, ...) so that
   placing the vertex at position [v] fixes exactly the next [v] bits —
   which lets the backtracking search prune any branch whose partial
   string already exceeds the best one found.  Without the pruning,
   vertex-transitive graphs (single color class) would cost n! full
   evaluations. *)
let canonical_form g =
  check_cap g;
  let n = Graph.n g in
  if n = 0 then ""
  else begin
    let color = refine g in
    (* position i must receive a vertex of the i-th smallest color *)
    let target =
      let sorted = Array.copy color in
      Array.sort compare sorted;
      sorted
    in
    let total_bits = n * (n - 1) / 2 in
    let buf = Bytes.create total_bits in
    let best = ref (Bytes.make total_bits '1') in
    let have_best = ref false in
    let perm = Array.make n (-1) in
    let used = Array.make n false in
    (* offset of column v's first bit *)
    let col_off v = v * (v - 1) / 2 in
    (* [go v lt] explores positions v.. with [lt] = "the buffer's prefix is
       strictly below the incumbent's".  Returns true when the subtree
       replaced the incumbent — in that case the caller's prefix equals the
       new incumbent's prefix, so its own [lt] state must reset to
       "equal". *)
    let rec go v lt =
      if v = n then begin
        if lt || not !have_best then begin
          Bytes.blit buf 0 !best 0 total_bits;
          have_best := true;
          true
        end
        else false
      end
      else begin
        let updated = ref false in
        let lt_state = ref lt in
        for candidate = 0 to n - 1 do
          if (not used.(candidate)) && color.(candidate) = target.(v) then begin
            let off = col_off v in
            for j = 0 to v - 1 do
              Bytes.set buf (off + j)
                (if Graph.mem_edge g perm.(j) candidate then '1' else '0')
            done;
            (* compare this column against the incumbent *)
            let verdict =
              if !lt_state || not !have_best then -1
              else begin
                let rec cmp j =
                  if j >= v then 0
                  else begin
                    let c =
                      Char.compare (Bytes.get buf (off + j)) (Bytes.get !best (off + j))
                    in
                    if c <> 0 then c else cmp (j + 1)
                  end
                in
                cmp 0
              end
            in
            if verdict <= 0 then begin
              used.(candidate) <- true;
              perm.(v) <- candidate;
              if go (v + 1) (!lt_state || verdict < 0) then begin
                (* incumbent replaced along this path: our prefix now ties *)
                lt_state := false;
                updated := true
              end;
              used.(candidate) <- false;
              perm.(v) <- -1
            end
          end
        done;
        !updated
      end
    in
    ignore (go 0 false);
    Printf.sprintf "%d:%s" n (Bytes.to_string !best)
  end

(* --- certificate with labeling, group order and position orbits -------- *)

type cert = {
  form : string;
  perm : int array;
  aut_count : int;
  position_vertices : int array;
}

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

(* Complete graphs are the worst case for the search below (a single
   color class, every branch ties, n! optimal leaves), and the orderly
   census hits K_n at every level — so they get a closed form. *)
let complete_cert n =
  let total_bits = n * (n - 1) / 2 in
  {
    form = Printf.sprintf "%d:%s" n (String.make total_bits '1');
    perm = Array.init n Fun.id;
    aut_count = factorial n;
    position_vertices = Array.make n ((1 lsl n) - 1);
  }

(* Same search as [canonical_form], extended with the three facts the
   orderly census needs and that only the search can provide: one optimal
   labeling, the number of optimal leaves, and for each canonical
   position the set of vertices some optimal labeling places there.
   Two labelings produce the same minimal string iff they differ by an
   automorphism, so the optimal-leaf count IS |Aut(g)| and the vertex
   set at position [p] IS the automorphism orbit of the vertex any
   optimal labeling puts at [p]. *)
let cert g =
  check_cap g;
  let n = Graph.n g in
  if n = 0 then
    { form = ""; perm = [||]; aut_count = 1; position_vertices = [||] }
  else if Graph.m g = n * (n - 1) / 2 then complete_cert n
  else begin
    let color = refine g in
    let target =
      let sorted = Array.copy color in
      Array.sort compare sorted;
      sorted
    in
    let total_bits = n * (n - 1) / 2 in
    let buf = Bytes.create total_bits in
    let best = ref (Bytes.make total_bits '1') in
    let have_best = ref false in
    let perm = Array.make n (-1) in
    let used = Array.make n false in
    let best_perm = Array.make n (-1) in
    let leaves = ref 0 in
    let seen = Array.make n 0 in
    let record_leaf () =
      incr leaves;
      for p = 0 to n - 1 do
        seen.(p) <- seen.(p) lor (1 lsl perm.(p))
      done
    in
    let col_off v = v * (v - 1) / 2 in
    let rec go v lt =
      if v = n then begin
        if lt || not !have_best then begin
          Bytes.blit buf 0 !best 0 total_bits;
          have_best := true;
          Array.blit perm 0 best_perm 0 n;
          leaves := 0;
          Array.fill seen 0 n 0;
          record_leaf ();
          true
        end
        else begin
          (* equal prefix all the way down: the full string ties the
             incumbent, i.e. this labeling is optimal too *)
          record_leaf ();
          false
        end
      end
      else begin
        let updated = ref false in
        let lt_state = ref lt in
        for candidate = 0 to n - 1 do
          if (not used.(candidate)) && color.(candidate) = target.(v) then begin
            let off = col_off v in
            for j = 0 to v - 1 do
              Bytes.set buf (off + j)
                (if Graph.mem_edge g perm.(j) candidate then '1' else '0')
            done;
            let verdict =
              if !lt_state || not !have_best then -1
              else begin
                let rec cmp j =
                  if j >= v then 0
                  else begin
                    let c =
                      Char.compare (Bytes.get buf (off + j)) (Bytes.get !best (off + j))
                    in
                    if c <> 0 then c else cmp (j + 1)
                  end
                in
                cmp 0
              end
            in
            if verdict <= 0 then begin
              used.(candidate) <- true;
              perm.(v) <- candidate;
              if go (v + 1) (!lt_state || verdict < 0) then begin
                lt_state := false;
                updated := true
              end;
              used.(candidate) <- false;
              perm.(v) <- -1
            end
          end
        done;
        !updated
      end
    in
    ignore (go 0 false);
    {
      form = Printf.sprintf "%d:%s" n (Bytes.to_string !best);
      perm = best_perm;
      aut_count = !leaves;
      position_vertices = seen;
    }
  end

let isomorphic a b =
  Graph.n a = Graph.n b
  && Graph.m a = Graph.m b
  && Graph.degree_sequence a = Graph.degree_sequence b
  &&
  (* refined colors are label-independent, so the full histograms must
     match exactly *)
  Stats.histogram (refine a) = Stats.histogram (refine b)
  && canonical_form a = canonical_form b

(* --- automorphisms ---------------------------------------------------- *)

let automorphisms g =
  check_cap g;
  let n = Graph.n g in
  let color = refine g in
  let image = Array.make n (-1) in
  let used = Array.make n false in
  let out = ref [] in
  (* assign image.(v) for v = 0, 1, ...; candidate w must share v's refined
     color and match adjacency against all previously assigned vertices *)
  let consistent v w =
    let ok = ref true in
    for u = 0 to v - 1 do
      if Graph.mem_edge g u v <> Graph.mem_edge g image.(u) w then ok := false
    done;
    !ok
  in
  let rec go v =
    if v = n then out := Array.copy image :: !out
    else
      for w = 0 to n - 1 do
        if (not used.(w)) && color.(w) = color.(v) && consistent v w then begin
          used.(w) <- true;
          image.(v) <- w;
          go (v + 1);
          used.(w) <- false;
          image.(v) <- -1
        end
      done
  in
  go 0;
  !out

let automorphism_count g = List.length (automorphisms g)

exception Over_cap

(* [automorphisms] with an escape hatch: highly symmetric graphs (K_k
   and friends) have groups far too large to materialize, and callers
   that only use the list to orbit-partition a small set can fall back
   to something else when the group is huge. *)
let automorphisms_capped ~cap g =
  check_cap g;
  let n = Graph.n g in
  let color = refine g in
  let image = Array.make n (-1) in
  let used = Array.make n false in
  let out = ref [] in
  let count = ref 0 in
  let consistent v w =
    let ok = ref true in
    for u = 0 to v - 1 do
      if Graph.mem_edge g u v <> Graph.mem_edge g image.(u) w then ok := false
    done;
    !ok
  in
  let rec go v =
    if v = n then begin
      incr count;
      if !count > cap then raise Over_cap;
      out := Array.copy image :: !out
    end
    else
      for w = 0 to n - 1 do
        if (not used.(w)) && color.(w) = color.(v) && consistent v w then begin
          used.(w) <- true;
          image.(v) <- w;
          go (v + 1);
          used.(w) <- false;
          image.(v) <- -1
        end
      done
  in
  match go 0 with () -> Some !out | exception Over_cap -> None

let orbits g =
  let n = Graph.n g in
  let uf = Union_find.create n in
  List.iter
    (fun sigma ->
      Array.iteri (fun v w -> ignore (Union_find.union uf v w)) sigma)
    (automorphisms g);
  let label = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let r = Union_find.find uf v in
    if label.(r) < 0 then begin
      label.(r) <- !next;
      incr next
    end;
    label.(v) <- label.(r)
  done;
  label

let is_vertex_transitive g =
  let n = Graph.n g in
  n <= 1
  ||
  let o = orbits g in
  Array.for_all (fun x -> x = o.(0)) o
