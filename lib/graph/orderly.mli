(** Orderly (canonical-construction-path) enumeration of connected graphs.

    McKay-style generation: each canonically generated graph on [k]
    vertices is extended by one fresh vertex attached to a nonempty
    neighbor subset, one subset per parent-automorphism orbit, and the
    child is kept only when undoing the augmentation is the canonical
    deletion (the highest non-cut canonical position, checked against
    {!Canon.cert}). Every isomorphism class of connected graphs is
    therefore emitted {e exactly once}, with no post-hoc dedup table —
    the wall that capped the rank-range census at the 2^(n(n-1)/2) mask
    space. Emission order is a deterministic DFS of the generation tree,
    so shards over root subtrees compose reproducibly. *)

val max_vertices : int
(** 11 — the last level where labeled counts via n!/|Aut| summation
    (A001187) stay inside 63-bit integers. *)

val class_counts : int array
(** Connected graphs up to isomorphism by vertex count (OEIS A001349),
    [class_counts.(n)] for n within {!max_vertices}. *)

val base_level : int -> int
(** [min n 6] — the generation-tree level whose classes are the shard
    roots. *)

val space : int -> int
(** Rank space of the orderly census on [n] vertices: the number of
    generation-tree roots, [class_counts.(base_level n)]. *)

val iter : ?lo:int -> ?hi:int -> int -> (Graph.t -> Canon.cert -> unit) -> unit
(** [iter n f] calls [f] exactly once per isomorphism class of connected
    graphs on [n] vertices, passing the generated labeled copy and its
    certificate (canonical form, |Aut|, optimal labeling). With
    [?lo]/[?hi], only the subtrees of roots [lo .. hi - 1] (in emission
    order at {!base_level}) are explored; disjoint adjacent ranges
    concatenated in ascending order reproduce the full enumeration —
    the census sharding primitive. @raise Invalid_argument outside
    [1 <= n <= max_vertices] or [0 <= lo <= hi <= space n]. *)

val count : ?lo:int -> ?hi:int -> int -> int
(** Number of classes emitted by {!iter} over the same range. *)

val min_mask_vertices : int
(** 9 — cap for {!min_mask_graph}'s brute-force search. *)

val min_mask_graph : Graph.t -> Graph.t
(** The labeled copy with the minimum column-major edge-mask integer —
    exactly the first copy the rank-range census encounters, which makes
    orderly census output byte-identical to the legacy path. O(n!) over
    relabelings; intended for the few equilibrium classes only.
    @raise Invalid_argument past {!min_mask_vertices}. *)

val mask_of_graph : Graph.t -> int
(** Column-major edge-subset mask of a labeled graph (the rank-range
    census's enumeration rank); the deterministic sort key for orderly
    census representatives. Requires [n <= 11] (55 bits). *)

val representative : Graph.t -> Canon.cert -> Graph.t
(** {!min_mask_graph} within its cap, else the canonical copy rebuilt
    from [cert.form] — deterministic and label-invariant either way. *)

val canonical_copy : Canon.cert -> Graph.t
(** The graph whose adjacency equals the certificate's canonical
    bitstring (vertices = canonical positions). *)
