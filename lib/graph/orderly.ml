(* Canonical-construction-path (McKay orderly) enumeration of connected
   graphs, one isomorphism class each, no dedup table.

   Generation tree: the root is K1; a node on k vertices is extended by
   attaching a fresh vertex [k] to every nonempty subset of [0..k-1],
   one subset per Aut(parent)-orbit. A child survives only if undoing
   the augmentation is the CANONICAL deletion: the canonical position q
   of the child is the highest one whose removal keeps the canonical
   copy connected, and the child is kept iff the fresh vertex lies in
   the automorphism orbit of the vertex at q ([Canon.cert] hands us that
   orbit as [position_vertices.(q)]). Each isomorphism class therefore
   has exactly one accepted construction path, so every connected class
   on every level appears exactly once and stays connected throughout
   (the deleted vertex is never a cut vertex). *)

let max_vertices = 11

(* Connected graphs up to isomorphism (OEIS A001349), indexed by n. The
   census rank space is the class count at [base_level]; the tail of the
   table is test oracle + documentation of where 63-bit labeled counts
   (A001187, via n!/|Aut| summation) stay exact: n = 11 is the last level
   below the overflow line, hence [max_vertices]. *)
let class_counts =
  [| 1; 1; 1; 2; 6; 21; 112; 853; 11117; 261080; 11716571; 1006700565 |]

(* Shards are subtrees of the generation tree rooted at the canonical
   graphs of this level: 112 roots at level 6 gives the dispatcher
   useful granularity without the rank space depending on enumeration. *)
let base_level n = min n 6

let space n =
  if n < 1 || n > max_vertices then invalid_arg "Orderly.space";
  class_counts.(base_level n)

let m_generated = Telemetry.counter "census.orderly.generated"

let m_rejected = Telemetry.counter "census.orderly.rejected"

let m_extensions = Telemetry.counter "census.orderly.extensions"

(* Parent groups beyond this order are not materialized; the extension
   step falls back to deduplicating accepted children by canonical form,
   which picks the same orbit-minimum subset (see [extend]). *)
let aut_list_cap = 720

let apply_mask sigma mask =
  let out = ref 0 in
  let m = ref mask in
  let i = ref 0 in
  while !m <> 0 do
    if !m land 1 <> 0 then out := !out lor (1 lsl sigma.(!i));
    m := !m lsr 1;
    incr i
  done;
  !out

(* child = parent plus vertex [k] adjacent to the set bits of [mask] *)
let child_of parent k mask =
  let h = Graph.create (k + 1) in
  Graph.iter_edges (fun u v -> Graph.add_edge h u v) parent;
  for u = 0 to k - 1 do
    if mask land (1 lsl u) <> 0 then Graph.add_edge h u k
  done;
  h

(* canonical deletion position: the highest canonical position whose
   vertex is not a cut vertex. Non-cutness of a position is a property
   of the canonical copy, so the choice is isomorphism-invariant; a
   connected graph on >= 2 vertices always has one. *)
let canonical_deletion_orbit h (cert : Canon.cert) =
  let size = Graph.n h in
  let rec find q =
    if q < 0 then assert false
    else begin
      let v = cert.Canon.perm.(q) in
      let _, count = Components.components_without h v in
      if count <= 1 then cert.Canon.position_vertices.(q) else find (q - 1)
    end
  in
  find (size - 1)

let accepts h cert =
  let k = Graph.n h - 1 in
  canonical_deletion_orbit h cert land (1 lsl k) <> 0

(* Extend [g] (with its certificate) from [k = Graph.n g] vertices up to
   [target], depth-first, calling [f] on every accepted graph at level
   [target]. Subset masks are tried in ascending order and only as their
   Aut(parent)-orbit minimum, so the representative labeling and the
   emission order are deterministic. When the parent group exceeds
   [aut_list_cap] we instead try every mask and deduplicate the accepted
   children by canonical form: acceptance is constant on a subset orbit
   and accepted children of one parent from distinct orbits are never
   isomorphic, so the first accepted mask of each class is again the
   orbit minimum — the two paths emit identical graphs in identical
   order. *)
let rec extend g cert target f =
  let k = Graph.n g in
  if k = target then f g cert
  else begin
    let auts = Canon.automorphisms_capped ~cap:aut_list_cap g in
    let orbit_min =
      match auts with
      | Some sigmas ->
        fun mask -> List.for_all (fun s -> apply_mask s mask >= mask) sigmas
      | None -> fun _ -> true
    in
    let seen_fallback =
      match auts with None -> Some (Hashtbl.create 16) | Some _ -> None
    in
    for mask = 1 to (1 lsl k) - 1 do
      if orbit_min mask then begin
        Telemetry.incr m_extensions;
        let h = child_of g k mask in
        let child_cert = Canon.cert h in
        (* fallback dedup runs on ACCEPTED children only: isomorphic
           children of one parent built from distinct subset orbits get
           different acceptance verdicts, so a rejected early copy must
           not shadow the accepted one *)
        let fresh () =
          match seen_fallback with
          | None -> true
          | Some tbl ->
            if Hashtbl.mem tbl child_cert.Canon.form then false
            else begin
              Hashtbl.add tbl child_cert.Canon.form ();
              true
            end
        in
        if accepts h child_cert && fresh () then begin
          Telemetry.incr m_generated;
          extend h child_cert target f
        end
        else Telemetry.incr m_rejected
      end
    done
  end

let iter ?(lo = 0) ?hi n f =
  if n < 1 || n > max_vertices then invalid_arg "Orderly.iter";
  let total = space n in
  let hi = Option.value ~default:total hi in
  if lo < 0 || hi > total || lo > hi then invalid_arg "Orderly.iter";
  let k1 = Graph.create 1 in
  let k1_cert = Canon.cert k1 in
  let b = base_level n in
  let idx = ref 0 in
  extend k1 k1_cert b (fun g cert ->
      let i = !idx in
      incr idx;
      if i >= lo && i < hi then
        if b = n then f g cert else extend g cert n f);
  assert (!idx = total)

let count ?lo ?hi n =
  let c = ref 0 in
  iter ?lo ?hi n (fun _ _ -> incr c);
  !c

(* --- legacy-compatible representatives ---------------------------------- *)

(* The rank-range census reports, per equilibrium class, the FIRST
   labeled copy in edge-subset-mask order — i.e. the labeling with the
   minimum column-major mask integer. Mask-minimality and the
   lex-minimal canonical string disagree (the string weighs pair (0,1)
   heaviest, the mask weighs it lightest), so byte-identity with the
   legacy output needs a second, brute-force minimization. It only runs
   on equilibrium classes — a handful per census — and only up to
   [min_mask_vertices]; past that the canonical copy is the
   representative (there is no legacy output to match beyond the
   rank-range cap anyway). *)

let min_mask_vertices = 9

let pair_index u v = (v * (v - 1) / 2) + u

let mask_of_graph g =
  Graph.fold_edges (fun acc u v -> acc lor (1 lsl pair_index u v)) 0 g

let graph_of_mask n mask =
  let g = Graph.create n in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      if mask land (1 lsl pair_index u v) <> 0 then Graph.add_edge g u v
    done
  done;
  g

let min_mask_graph g =
  let n = Graph.n g in
  if n > min_mask_vertices then invalid_arg "Orderly.min_mask_graph";
  let edges = Array.of_list (Graph.edges g) in
  let pos = Array.make n (-1) in
  let used = Array.make n false in
  let best = ref max_int in
  let rec go v =
    if v = n then begin
      let mask = ref 0 in
      Array.iter
        (fun (u, w) ->
          let a = pos.(u) and b = pos.(w) in
          mask := !mask lor (1 lsl pair_index (min a b) (max a b)))
        edges;
      if !mask < !best then best := !mask
    end
    else
      for p = 0 to n - 1 do
        if not used.(p) then begin
          used.(p) <- true;
          pos.(v) <- p;
          go (v + 1);
          used.(p) <- false;
          pos.(v) <- -1
        end
      done
  in
  go 0;
  graph_of_mask n !best

let canonical_copy (cert : Canon.cert) =
  let n = Array.length cert.Canon.perm in
  let g = Graph.create n in
  let body =
    (* form is "<n>:<bits>"; bits are column-major over positions *)
    let s = cert.Canon.form in
    String.sub s (String.index s ':' + 1) (n * (n - 1) / 2)
  in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      if body.[pair_index u v] = '1' then Graph.add_edge g u v
    done
  done;
  g

let representative g cert =
  if Graph.n g <= min_mask_vertices then min_mask_graph g
  else canonical_copy cert
