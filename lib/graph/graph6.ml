(* graph6: n encoded as one byte (n+63) for n <= 62, else '~' followed by
   three bytes of 6 bits each; then the upper triangle of the adjacency
   matrix in column order (x_{0,1}, x_{0,2}, x_{1,2}, x_{0,3}, ...) packed
   big-endian into 6-bit groups, each group offset by 63. *)

let encode g =
  let n = Graph.n g in
  let buf = Buffer.create 16 in
  if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else if n <= 258047 then begin
    Buffer.add_char buf '~';
    Buffer.add_char buf (Char.chr (((n lsr 12) land 63) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 63) + 63));
    Buffer.add_char buf (Char.chr ((n land 63) + 63))
  end
  else invalid_arg "Graph6.encode: graph too large";
  let bit_count = n * (n - 1) / 2 in
  let group = ref 0 and used = ref 0 in
  let flush_groups = Buffer.create 16 in
  let emit_bit b =
    group := (!group lsl 1) lor b;
    incr used;
    if !used = 6 then begin
      Buffer.add_char flush_groups (Char.chr (!group + 63));
      group := 0;
      used := 0
    end
  in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      emit_bit (if Graph.mem_edge g u v then 1 else 0)
    done
  done;
  if bit_count mod 6 <> 0 then begin
    let pad = 6 - (bit_count mod 6) in
    for _ = 1 to pad do
      emit_bit 0
    done
  end;
  Buffer.add_buffer buf flush_groups;
  Buffer.contents buf

let decode s =
  let len = String.length s in
  if len = 0 then invalid_arg "Graph6.decode: empty";
  let byte i =
    if i >= len then invalid_arg "Graph6.decode: truncated";
    let c = Char.code s.[i] in
    if c < 63 || c > 126 then invalid_arg "Graph6.decode: bad byte";
    c - 63
  in
  let n, start =
    if s.[0] = '~' then
      ((byte 1 lsl 12) lor (byte 2 lsl 6) lor byte 3), 4
    else byte 0, 1
  in
  (* length check before [Graph.create]: the header is the only part an
     adversarial input controls for free, and a forged huge n must not
     provoke an O(n) allocation when the body cannot possibly match *)
  let bit_count = n * (n - 1) / 2 in
  let expected_groups = (bit_count + 5) / 6 in
  if len - start <> expected_groups then
    invalid_arg "Graph6.decode: wrong length";
  let g = Graph.create n in
  let bit k =
    let grp = byte (start + (k / 6)) in
    (grp lsr (5 - (k mod 6))) land 1
  in
  let k = ref 0 in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      if bit !k = 1 then Graph.add_edge g u v;
      incr k
    done
  done;
  g

(* Total boundary for untrusted input (CLI arguments, server requests).
   [decode] raises only [Invalid_argument] — its own checks plus
   [Graph.create] on a negative count, which the 6-bit header makes
   unreachable — but the catch is deliberately broad so no malformed
   string can ever escape as an exception. *)
let decode_result s =
  match decode s with
  | g -> Ok g
  | exception Invalid_argument msg -> Error msg
  | exception Failure msg -> Error ("Graph6.decode: " ^ msg)
