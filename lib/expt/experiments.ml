type t = {
  id : string;
  paper_item : string;
  title : string;
  run : unit -> unit;
  heavy : bool;
}

let all =
  [
    {
      id = "E1";
      paper_item = "Theorem 1 / Figure 1";
      title = "Sum-equilibrium trees are exactly the stars (exhaustive)";
      run =
        (fun () ->
          Exp_trees.e1_sum_tree_census ();
          Exp_trees.e1b_trees_at_scale ());
      heavy = false;
    };
    {
      id = "E1X";
      paper_item = "Theorem 1 / Figure 1";
      title = "Sum tree census extended to n = 9 (4.8M trees)";
      run = (fun () -> Exp_trees.e1_sum_tree_census ~max_n:9 ());
      heavy = true;
    };
    {
      id = "E2";
      paper_item = "Theorem 4 / Figure 2";
      title = "Max-equilibrium trees: stars and double stars, diameter <= 3";
      run =
        (fun () ->
          Exp_trees.e2_max_tree_census ();
          Exp_trees.e2b_double_star_family ());
      heavy = false;
    };
    {
      id = "E3";
      paper_item = "Theorem 5 / Figure 3";
      title = "Diameter-3 sum equilibria: construction audit and verified witnesses";
      run = Exp_lower_bounds.e3_theorem5;
      heavy = false;
    };
    {
      id = "E4";
      paper_item = "Section 3.1";
      title = "Exhaustive equilibrium census over all connected graphs (n <= 6)";
      run = (fun () -> Exp_lower_bounds.e4_graph_census ());
      heavy = false;
    };
    {
      id = "E4X";
      paper_item = "Section 3.1";
      title = "Sum census extended to n = 7 (1.87M connected graphs)";
      run =
        (fun () ->
          Exp_lower_bounds.e4_graph_census ~max_n:7 ~games:[ Game.Sum ] ());
      heavy = true;
    };
    {
      id = "E5";
      paper_item = "Theorem 12 / Figure 4";
      title = "Rotated-torus max equilibria of diameter sqrt(n/2)";
      run = (fun () -> Exp_torus.e5_torus_sweep ());
      heavy = false;
    };
    {
      id = "E6";
      paper_item = "Section 4 (generalization)";
      title = "d-dimensional tori: diameter (n/2)^(1/d), k-insertion stability";
      run = (fun () -> Exp_torus.e6_torus_dimensions ());
      heavy = false;
    };
    {
      id = "E7";
      paper_item = "Theorem 9";
      title = "Sum dynamics: converged diameters vs 2^O(sqrt(lg n))";
      run = (fun () -> Exp_dynamics.e7_sum_dynamics ());
      heavy = false;
    };
    {
      id = "E8";
      paper_item = "Lemmas 2-3";
      title = "Max dynamics: equilibria obey the structural lemmas";
      run = (fun () -> Exp_dynamics.e8_max_dynamics ());
      heavy = false;
    };
    {
      id = "E9";
      paper_item = "Theorem 13";
      title = "Graph-power pipeline: distance coalescing and uniformity";
      run = Exp_uniformity.e9_theorem13_pipeline;
      heavy = false;
    };
    {
      id = "E10";
      paper_item = "Theorem 15";
      title = "Abelian Cayley families: uniformity vs diameter bound";
      run = Exp_uniformity.e10_cayley_uniformity;
      heavy = false;
    };
    {
      id = "E11";
      paper_item = "Section 1 (transfer claim)";
      title = "Alpha-game sweep: equilibrium diameter flat across alpha";
      run = (fun () -> Exp_alpha.e11_alpha_transfer ());
      heavy = false;
    };
    {
      id = "E12";
      paper_item = "via [7]";
      title = "Exact price of anarchy of the basic sum game (small n)";
      run = (fun () -> Exp_alpha.e12_price_of_anarchy ());
      heavy = false;
    };
    {
      id = "E13";
      paper_item = "Lemma 10 / Corollary 11";
      title = "Constructive lemma checks on verified sum equilibria";
      run = Exp_theory.e13_lemma10_corollary11;
      heavy = false;
    };
    {
      id = "E14";
      paper_item = "Conjecture 14 / Section 5";
      title = "Distance-uniformity probes: the pairwise non-example, skew triples";
      run = Exp_uniformity.e14_conjecture14_probe;
      heavy = false;
    };
    {
      id = "E15";
      paper_item = "Theorem 5 / Theorem 9 gap";
      title = "Annealing hunt: minimal diameter-3 equilibria, diameter-4 frontier";
      run = (fun () -> Exp_extensions.e15_equilibrium_hunt ());
      heavy = false;
    };
    {
      id = "E16";
      paper_item = "Section 4 trade-off (sum side)";
      title = "Multi-swap stability of single-swap sum equilibria";
      run = (fun () -> Exp_extensions.e16_multi_swap_stability ());
      heavy = false;
    };
    {
      id = "E17";
      paper_item = "engine ablation";
      title = "Dynamics design ablation: move rule x schedule";
      run = (fun () -> Exp_extensions.e17_dynamics_ablation ());
      heavy = false;
    };
    {
      id = "E18";
      paper_item = "Lemmas 6-8 (omitted proofs)";
      title = "Lemma audit + Theorem 5 proof case analysis";
      run = (fun () -> Exp_audit.e18_lemma_audit ());
      heavy = false;
    };
    {
      id = "E19";
      paper_item = "spectral context";
      title = "Spectral profiles of equilibria and constructions";
      run = Exp_audit.e19_spectral_profile;
      heavy = false;
    };
    {
      id = "E20";
      paper_item = "asymmetric variant (follow-up literature)";
      title = "Owner-only swaps: wider equilibria, larger diameters";
      run = (fun () -> Exp_asym.e20_asymmetric_swap ());
      heavy = false;
    };
    {
      id = "E21";
      paper_item = "Section 1 (bounded agents)";
      title = "Bounded agents: sampling budget vs equilibrium quality";
      run = (fun () -> Exp_bounded.e21_bounded_agents ());
      heavy = false;
    };
    {
      id = "E22";
      paper_item = "data release";
      title = "Catalog of all small equilibrium classes with certificates";
      run =
        (fun () ->
          Exp_catalog.e22_equilibrium_catalog ~n:5 ~game:Game.Sum ();
          Exp_catalog.e22_equilibrium_catalog ~n:6 ~game:Game.Max ());
      heavy = false;
    };
    {
      id = "E22X";
      paper_item = "data release";
      title = "Sum catalog at n = 6 (60 classes)";
      run = (fun () -> Exp_catalog.e22_equilibrium_catalog ~n:6 ~game:Game.Sum ());
      heavy = true;
    };
  ]

let find id =
  let target = String.uppercase_ascii id in
  List.find_opt (fun e -> e.id = target) all

let banner e =
  Printf.printf "### %s — %s\n### %s\n\n" e.id e.paper_item e.title

(* every entry point honors BNCG_STATS via Exp_common.with_stats *)
let run_one e =
  Exp_common.with_stats (fun () ->
      banner e;
      e.run ())

let run_default () =
  Exp_common.with_stats (fun () ->
      List.iter
        (fun e ->
          if not e.heavy then begin
            banner e;
            e.run ()
          end)
        all)

let run_everything () =
  Exp_common.with_stats (fun () ->
      List.iter
        (fun e ->
          banner e;
          e.run ())
        all)
