(** Experiment registry: every theorem/figure reproduction, addressable by
    id for the CLI and run wholesale by the benchmark harness. *)

type t = {
  id : string;  (** "E1" .. "E14" *)
  paper_item : string;  (** e.g. "Theorem 12 / Figure 4" *)
  title : string;
  run : unit -> unit;  (** prints one or more tables to stdout *)
  heavy : bool;  (** excluded from the default quick sweep *)
}

val all : t list
(** In id order. The [heavy] entries (n=7 census, n=9 trees) only run when
    explicitly requested. *)

val find : string -> t option
(** Case-insensitive lookup by id. *)

val run_one : t -> unit
(** Banner plus tables for a single experiment. Like the bulk runners
    below, honors [BNCG_STATS] (telemetry on, sorted metric table after
    the run). *)

val run_default : unit -> unit
(** Every non-heavy experiment, in order. *)

val run_everything : unit -> unit
(** All experiments including heavy ones. *)
