(* One pool shared by every experiment table, sized from BNCG_JOBS (or
   the hardware default) and created on first use so experiment code that
   never goes parallel spawns no domains. *)
let jobs () =
  match Sys.getenv_opt "BNCG_JOBS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some j when j >= 1 -> j
    | _ -> invalid_arg "BNCG_JOBS must be a positive integer")
  | None -> Pool.available_jobs ()

let shared_pool = lazy (Pool.create ~jobs:(jobs ()) ())

let pool () = Lazy.force shared_pool

(* BNCG_STATS mirrors the CLI's --stats for the experiment harness and the
   benchmark driver: any value except the usual falsey spellings turns the
   telemetry layer on. *)
let stats_enabled () =
  match Sys.getenv_opt "BNCG_STATS" with
  | None | Some "" | Some "0" | Some "false" | Some "no" -> false
  | Some _ -> true

let with_stats f =
  if not (stats_enabled ()) then f ()
  else begin
    Telemetry.reset ();
    Telemetry.set_enabled true;
    Fun.protect ~finally:Telemetry.print_report f
  end

let diameter_cell g =
  match Metrics.diameter g with Some d -> string_of_int d | None -> "inf"

let girth_cell g =
  match Metrics.girth g with Some d -> string_of_int d | None -> "-"

let verdict_cell = function
  | Equilibrium.Equilibrium -> "yes"
  | Equilibrium.Disconnected -> "no (disconnected)"
  | Equilibrium.Violation (mv, d) ->
    Printf.sprintf "no (%s, delta %d)" (Swap.move_to_string mv) d
  | Equilibrium.Alpha_violation (mv, d) ->
    Printf.sprintf "no (%s, delta %g)" (Alpha_game.move_to_string mv) d

let sum_verdict g = verdict_cell (Equilibrium.check_sum g)

let max_verdict g = verdict_cell (Equilibrium.check_max g)

let outcome_name = function
  | Dynamics.Converged -> "converged"
  | Dynamics.Cycled -> "cycled"
  | Dynamics.Round_limit -> "round-limit"

let mean_cell xs = Table.cell_float ~digits:2 (Stats.mean xs)

let minmax_cell xs =
  let lo = Array.fold_left min xs.(0) xs and hi = Array.fold_left max xs.(0) xs in
  if lo = hi then string_of_int lo else Printf.sprintf "%d..%d" lo hi

(* Experiment seeds are [base+1 .. base+k]; the base is 0 unless BNCG_SEED
   or the CLI's --seed moves it, so every table is reproducible from the
   command line without recompiling. *)
let seed_base =
  ref
    (match Sys.getenv_opt "BNCG_SEED" with
    | None | Some "" -> 0
    | Some s -> (
      match int_of_string_opt s with
      | Some v -> v
      | None -> invalid_arg "BNCG_SEED must be an integer"))

let set_seed_base b = seed_base := b

let seeds k = Array.init k (fun i -> !seed_base + i + 1)
