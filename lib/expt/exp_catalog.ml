let e22_equilibrium_catalog ?(n = 5) ?(game = Game.Sum) () =
  let census = Census.graph_census ~pool:(Exp_common.pool ()) game n in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E22: catalog of all %s-equilibrium classes on %d vertices (%d of %d connected graphs, %d classes)"
           (Game.to_string game)
           n census.Census.equilibria_labeled census.Census.connected
           (List.length census.Census.equilibria_iso))
      ~columns:
        [
          ("graph6", Table.Left);
          ("m", Table.Right);
          ("diameter", Table.Right);
          ("girth", Table.Left);
          ("|Aut|", Table.Right);
          ("clustering", Table.Right);
          ("fiedler", Table.Right);
          ("degrees", Table.Left);
        ]
  in
  let sorted =
    List.sort
      (fun a b -> compare (Graph.m a, Graph6.encode a) (Graph.m b, Graph6.encode b))
      census.Census.equilibria_iso
  in
  List.iter
    (fun g ->
      Table.add_row t
        [
          Graph6.encode g;
          Table.cell_int (Graph.m g);
          Exp_common.diameter_cell g;
          Exp_common.girth_cell g;
          Table.cell_int (Canon.automorphism_count g);
          Table.cell_float ~digits:2 (Metrics.global_clustering g);
          Table.cell_float ~digits:2 (Spectral.algebraic_connectivity g);
          String.concat ","
            (Array.to_list (Array.map string_of_int (Graph.degree_sequence g)));
        ])
    sorted;
  Table.print t;
  print_endline
    "  Every row is a checkable certificate: feed the graph6 string to\n\
    \  `bncg check` / `bncg audit`. The catalog doubles as regression data — the\n\
    \  census counts are pinned by the test suite.\n"
