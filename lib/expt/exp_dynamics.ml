type run_stats = {
  converged : int;
  total : int;
  rounds : int array;
  diameters : int array;
  eq_verified : int;
  spread_ok : int;  (* Lemma 2, max version *)
  lemma3_ok : int;
}

let collect version sizes seed_count init =
  List.map
    (fun n ->
      let runs =
        Array.map
          (fun seed ->
            let rng = Prng.create seed in
            let g = init rng n in
            let r =
              match version with
              | Game.Sum -> Dynamics.converge_sum ~rng g
              | Game.Max | Game.Alpha _ ->
                Dynamics.run ~rng (Dynamics.default_config version) g
            in
            r)
          (Exp_common.seeds seed_count)
      in
      let converged =
        Array.to_list runs |> List.filter (fun r -> r.Dynamics.outcome = Dynamics.Converged)
      in
      let eq_verified =
        List.length
          (List.filter
             (fun r -> Equilibrium.is_equilibrium version r.Dynamics.final)
             converged)
      in
      let spread_ok =
        List.length
          (List.filter
             (fun r -> Equilibrium.eccentricity_spread r.Dynamics.final = Some 0
                       || Equilibrium.eccentricity_spread r.Dynamics.final = Some 1)
             converged)
      in
      let lemma3_ok =
        List.length (List.filter (fun r -> Equilibrium.lemma3_holds r.Dynamics.final) converged)
      in
      ( n,
        {
          converged = List.length converged;
          total = Array.length runs;
          rounds = Array.of_list (List.map (fun r -> r.Dynamics.rounds) converged);
          diameters =
            Array.of_list
              (List.filter_map (fun r -> Metrics.diameter r.Dynamics.final) converged);
          eq_verified;
          spread_ok;
          lemma3_ok;
        } ))
    sizes

let init_tree rng n = Random_graphs.tree rng n

let init_sparse rng n = Random_graphs.connected_gnm rng n (2 * n)

let e7_sum_dynamics ?(sizes = [ 16; 32; 64; 96 ]) ?(seeds = 5) () =
  let t =
    Table.create
      ~title:
        "E7 (Theorem 9): sum best-response dynamics — converged diameters vs the 2^O(sqrt(lg n)) bound"
      ~columns:
        [
          ("init", Table.Left);
          ("n", Table.Right);
          ("converged", Table.Left);
          ("rounds", Table.Left);
          ("eq verified", Table.Left);
          ("final diameter", Table.Left);
          ("2^(3 sqrt lg n)", Table.Right);
          ("recurrence bound", Table.Right);
        ]
  in
  List.iter
    (fun (name, init) ->
      List.iter
        (fun (n, s) ->
          Table.add_row t
            [
              name;
              Table.cell_int n;
              Printf.sprintf "%d/%d" s.converged s.total;
              (if Array.length s.rounds = 0 then "-" else Exp_common.minmax_cell s.rounds);
              Printf.sprintf "%d/%d" s.eq_verified s.converged;
              (if Array.length s.diameters = 0 then "-"
               else Exp_common.minmax_cell s.diameters);
              Table.cell_float ~digits:0 (Theory.theorem9_bound n);
              Table.cell_int (Theory.theorem9_recurrence_bound n);
            ])
        (collect Game.Sum sizes seeds init))
    [ ("random tree", init_tree); ("G(n, 2n)", init_sparse) ];
  Table.print t

let e8_max_dynamics ?(sizes = [ 16; 32; 64 ]) ?(seeds = 5) () =
  let t =
    Table.create
      ~title:
        "E8 (Lemmas 2-3): max best-response dynamics — equilibria obey the structural lemmas"
      ~columns:
        [
          ("init", Table.Left);
          ("n", Table.Right);
          ("converged", Table.Left);
          ("rounds", Table.Left);
          ("eq verified", Table.Left);
          ("final diameter", Table.Left);
          ("ecc spread <= 1", Table.Left);
          ("Lemma 3 holds", Table.Left);
        ]
  in
  List.iter
    (fun (name, init) ->
      List.iter
        (fun (n, s) ->
          Table.add_row t
            [
              name;
              Table.cell_int n;
              Printf.sprintf "%d/%d" s.converged s.total;
              (if Array.length s.rounds = 0 then "-" else Exp_common.minmax_cell s.rounds);
              Printf.sprintf "%d/%d" s.eq_verified s.converged;
              (if Array.length s.diameters = 0 then "-"
               else Exp_common.minmax_cell s.diameters);
              Printf.sprintf "%d/%d" s.spread_ok s.converged;
              Printf.sprintf "%d/%d" s.lemma3_ok s.converged;
            ])
        (collect Game.Max sizes seeds init))
    [ ("random tree", init_tree); ("G(n, 2n)", init_sparse) ];
  Table.print t
