let e1_sum_tree_census ?(max_n = 8) () =
  let t =
    Table.create ~title:"E1 (Theorem 1): sum-equilibrium trees are exactly the stars"
      ~columns:
        [
          ("n", Table.Right);
          ("labeled trees", Table.Right);
          ("sum equilibria", Table.Right);
          ("stars", Table.Right);
          ("eq = stars", Table.Left);
          ("max eq diameter", Table.Right);
          ("non-eq witnesses verified", Table.Right);
        ]
  in
  for n = 3 to max_n do
    let c = Census.tree_census ~pool:(Exp_common.pool ()) Game.Sum n in
    Table.add_row t
      [
        Table.cell_int n;
        Table.cell_int c.Census.total;
        Table.cell_int c.Census.equilibria;
        Table.cell_int c.Census.stars;
        Table.cell_bool (c.Census.equilibria = c.Census.stars && c.Census.stars = n);
        Table.cell_int c.Census.max_eq_diameter;
        Table.cell_int c.Census.witnesses_verified;
      ]
  done;
  Table.print t

let e1b_trees_at_scale ?(sizes = [ 64; 128; 256 ]) () =
  let t =
    Table.create
      ~title:
        "E1b (Theorem 1 at scale): tree best-response via the O(1)-per-swap evaluator"
      ~columns:
        [
          ("n", Table.Right);
          ("start", Table.Left);
          ("moves to converge", Table.Right);
          ("final is a star", Table.Left);
          ("final diameter", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun (name, make) ->
          let g = make n in
          let final, moves = Tree_opt.converge g in
          Table.add_row t
            [
              Table.cell_int n;
              name;
              Table.cell_int moves;
              Table.cell_bool (Tree_eq.is_star final);
              Exp_common.diameter_cell final;
            ])
        [
          ("random tree", fun n -> Random_graphs.tree (Prng.create n) n);
          ("path", Generators.path);
        ])
    sizes;
  Table.print t;
  (* the max version at scale: Theorem 4's diameter-3 ceiling *)
  let t2 =
    Table.create
      ~title:"E2c (Theorem 4 at scale): max-version tree best-response via the O(1) evaluator"
      ~columns:
        [
          ("n", Table.Right);
          ("moves to converge", Table.Right);
          ("final diameter (<= 3)", Table.Right);
          ("final is star or double star", Table.Left);
        ]
  in
  List.iter
    (fun n ->
      let g = Random_graphs.tree (Prng.create (2 * n)) n in
      let final, moves = Tree_opt.converge_max g in
      Table.add_row t2
        [
          Table.cell_int n;
          Table.cell_int moves;
          Exp_common.diameter_cell final;
          Table.cell_bool (Tree_eq.is_star final || Tree_eq.is_double_star final);
        ])
    sizes;
  Table.print t2

let e2_max_tree_census ?(max_n = 8) () =
  let t =
    Table.create
      ~title:"E2 (Theorem 4): max-equilibrium trees are stars and double stars (diameter <= 3)"
      ~columns:
        [
          ("n", Table.Right);
          ("labeled trees", Table.Right);
          ("max equilibria", Table.Right);
          ("stars", Table.Right);
          ("double stars", Table.Right);
          ("eq = stars + double stars", Table.Left);
          ("max eq diameter", Table.Right);
        ]
  in
  for n = 3 to max_n do
    let c = Census.tree_census ~pool:(Exp_common.pool ()) Game.Max n in
    Table.add_row t
      [
        Table.cell_int n;
        Table.cell_int c.Census.total;
        Table.cell_int c.Census.equilibria;
        Table.cell_int c.Census.stars;
        Table.cell_int c.Census.double_stars;
        Table.cell_bool (c.Census.equilibria = c.Census.stars + c.Census.double_stars);
        Table.cell_int c.Census.max_eq_diameter;
      ]
  done;
  Table.print t

let e2b_double_star_family ?(max_arm = 5) () =
  let t =
    Table.create
      ~title:"E2b (Figure 2): double_star(a, b) is a max equilibrium iff min(a, b) >= 2"
      ~columns:
        [
          ("a", Table.Right);
          ("b", Table.Right);
          ("n", Table.Right);
          ("diameter", Table.Right);
          ("max equilibrium", Table.Left);
          ("matches min(a,b) >= 2", Table.Left);
        ]
  in
  for a = 1 to max_arm do
    for b = a to max_arm do
      let g = Generators.double_star a b in
      let eq = Equilibrium.is_max_equilibrium g in
      Table.add_row t
        [
          Table.cell_int a;
          Table.cell_int b;
          Table.cell_int (Graph.n g);
          Exp_common.diameter_cell g;
          Table.cell_bool eq;
          Table.cell_bool (eq = (min a b >= 2));
        ]
    done
  done;
  Table.print t
