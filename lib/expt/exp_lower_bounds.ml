let e3_theorem5 () =
  let t =
    Table.create
      ~title:
        "E3 (Theorem 5, Figure 3): diameter-3 sum equilibria — paper construction audit and verified witnesses"
      ~columns:
        [
          ("graph", Table.Left);
          ("n", Table.Right);
          ("m", Table.Right);
          ("diameter", Table.Right);
          ("girth", Table.Right);
          ("sum equilibrium", Table.Left);
        ]
  in
  let row name g =
    Table.add_row t
      [
        name;
        Table.cell_int (Graph.n g);
        Table.cell_int (Graph.m g);
        Exp_common.diameter_cell g;
        Exp_common.girth_cell g;
        Exp_common.sum_verdict g;
      ]
  in
  row "Figure 3 (literal transcription)" Constructions.theorem5_graph;
  row "C5 + pendant" (Constructions.cycle_with_pendant 5);
  row "Petersen" (Generators.petersen ());
  row "Petersen + pendant (witness)" Constructions.sum_diameter3_witness;
  row "minimal witness n=8 (via Hunt)" Constructions.sum_diameter3_minimal;
  row "polarity ER_2" (Polarity.polarity_graph 2);
  row "polarity ER_3 (Albers et al. family)" (Polarity.polarity_graph 3);
  row "polarity ER_5" (Polarity.polarity_graph 5);
  row "star n=13" (Generators.star 13);
  row "wheel W12" (Generators.wheel 12);
  row "friendship F5" (Generators.friendship 5);
  row "cocktail party K(6x2)" (Generators.cocktail_party 6);
  Table.print t;
  print_endline
    "  Finding: the literal Figure 3 graph admits the improving swap d1: c11 -> c21\n\
    \  (gain 3 on {c21, b2, d2}, loss 2 on {c11, c32}); the proof's Lemma 8 loss-of-2\n\
    \  step fails when the swap target is the matched partner of the dropped vertex.\n\
    \  Theorem 5's statement is nevertheless TRUE: Petersen + pendant and the 8-vertex\n\
    \  minimal witness are verified diameter-3 sum equilibria (independent brute-force\n\
    \  checks in the test suite); by the exhaustive census, n = 8 is the minimum.\n"

let e4_graph_census ?(max_n = 6) ?(games = [ Game.Sum; Game.Max ]) () =
  let t =
    Table.create
      ~title:"E4: exhaustive equilibrium census over all connected graphs"
      ~columns:
        [
          ("version", Table.Left);
          ("n", Table.Right);
          ("connected graphs", Table.Right);
          ("equilibria (labeled)", Table.Right);
          ("equilibria (iso)", Table.Right);
          ("diameter histogram", Table.Left);
          ("max diameter", Table.Right);
        ]
  in
  List.iter
    (fun game ->
      for n = 3 to max_n do
        let c = Census.graph_census ~pool:(Exp_common.pool ()) game n in
        Table.add_row t
          [
            Game.to_string game;
            Table.cell_int n;
            Table.cell_int c.Census.connected;
            Table.cell_int c.Census.equilibria_labeled;
            Table.cell_int (List.length c.Census.equilibria_iso);
            String.concat ", "
              (List.map
                 (fun (d, k) -> Printf.sprintf "diam %d: %d" d k)
                 c.Census.diameter_histogram);
            Table.cell_int c.Census.max_diameter;
          ]
      done)
    games;
  Table.print t
