let e15_equilibrium_hunt ?(sizes = [ 7; 8; 9; 10; 11; 12 ]) ?(steps = 4000) () =
  let t =
    Table.create
      ~title:
        "E15: annealing hunt for diameter-3 sum equilibria (exhaustive census rules out n <= 7)"
      ~columns:
        [
          ("n", Table.Right);
          ("target diameter", Table.Right);
          ("found", Table.Left);
          ("graph6", Table.Left);
          ("m", Table.Left);
          ("girth", Table.Left);
          ("verified", Table.Left);
          ("candidates scored", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      (* a few independent searches per size; the first success wins *)
      let attempts =
        List.map
          (fun base ->
            Hunt.hunt_sum_diameter (Prng.create (base + n)) ~n ~target_diameter:3
              ~steps ())
          [ 100; 300; 500 ]
      in
      let r =
        match List.find_opt (fun r -> r.Hunt.found <> None) attempts with
        | Some r -> r
        | None ->
          let merged =
            List.fold_left
              (fun acc r ->
                let b =
                  if r.Hunt.best_violations < 0 then max_int else r.Hunt.best_violations
                in
                {
                  acc with
                  Hunt.best_violations = min acc.Hunt.best_violations b;
                  evaluated = acc.Hunt.evaluated + r.Hunt.evaluated;
                })
              { Hunt.found = None; best_violations = max_int; evaluated = 0 }
              attempts
          in
          if merged.Hunt.best_violations = max_int then
            { merged with Hunt.best_violations = -1 }
          else merged
      in
      match r.Hunt.found with
      | Some g ->
        Table.add_row t
          [
            Table.cell_int n;
            "3";
            "yes";
            Graph6.encode g;
            Table.cell_int (Graph.m g);
            Exp_common.girth_cell g;
            Table.cell_bool (Equilibrium.is_sum_equilibrium g);
            Table.cell_int r.Hunt.evaluated;
          ]
      | None ->
        Table.add_row t
          [
            Table.cell_int n;
            "3";
            Printf.sprintf "no (best: %d violating agents)" r.Hunt.best_violations;
            "-";
            "-";
            "-";
            "-";
            Table.cell_int r.Hunt.evaluated;
          ])
    sizes;
  Table.print t;
  (* the diameter-4 frontier *)
  let t4 =
    Table.create ~title:"E15b: the diameter-4 frontier (open problem — expect no finds)"
      ~columns:
        [
          ("n", Table.Right);
          ("found", Table.Left);
          ("fewest violating agents seen", Table.Right);
          ("candidates scored", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let rng = Prng.create (200 + n) in
      let r = Hunt.hunt_sum_diameter rng ~n ~target_diameter:4 ~steps () in
      Table.add_row t4
        [
          Table.cell_int n;
          Table.cell_bool (r.Hunt.found <> None);
          Table.cell_int r.Hunt.best_violations;
          Table.cell_int r.Hunt.evaluated;
        ])
    [ 12; 16 ];
  Table.print t4;
  (* the max side: irregular equilibria far below the torus sizes *)
  let tm =
    Table.create
      ~title:
        "E15c: small MAX equilibria of diameter 4-5 — sunlets vs the Theorem 12 torus"
      ~columns:
        [
          ("graph", Table.Left);
          ("n", Table.Right);
          ("diameter", Table.Right);
          ("max equilibrium", Table.Left);
          ("torus n for same diameter", Table.Right);
        ]
  in
  List.iter
    (fun k ->
      let g = Generators.sunlet k in
      let d = Option.get (Metrics.diameter g) in
      Table.add_row tm
        [
          Printf.sprintf "%d-sunlet" k;
          Table.cell_int (Graph.n g);
          Table.cell_int d;
          Table.cell_bool (Equilibrium.is_max_equilibrium g);
          Table.cell_int (2 * d * d);
        ])
    [ 3; 4; 5; 6; 7; 9 ];
  Table.print tm;
  print_endline
    "  Combined with E4X (all 1.87M connected 7-vertex graphs), the diameter-3 rows\n\
    \  pin the minimal diameter-3 sum equilibrium at exactly n = 8\n\
    \  (Constructions.sum_diameter3_minimal). No diameter-4 example is known; the\n\
    \  hunt's best candidates stay a few violating agents away, matching the open\n\
    \  gap between Theorem 5 (diameter 3) and Theorem 9 (2^O(sqrt lg n)).\n"

let e16_multi_swap_stability ?(k = 2) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E16: which single-swap sum equilibria survive agents that re-point up to %d edges at once?"
           k)
      ~columns:
        [
          ("graph", Table.Left);
          ("n", Table.Right);
          ("1-swap eq", Table.Left);
          (Printf.sprintf "%d-swap stable" k, Table.Left);
          ("witness", Table.Left);
        ]
  in
  let row name g =
    let eq = Equilibrium.is_sum_equilibrium g in
    let witness = Equilibrium.find_k_swap_violation Usage_cost.Sum g ~k in
    Table.add_row t
      [
        name;
        Table.cell_int (Graph.n g);
        Table.cell_bool eq;
        Table.cell_bool (witness = None);
        (match witness with
        | None -> "-"
        | Some (actor, pairs) ->
          Printf.sprintf "agent %d: %s" actor
            (String.concat ", "
               (List.map (fun (d, a) -> Printf.sprintf "%d->%d" d a) pairs)));
      ]
  in
  row "star n=10" (Generators.star 10);
  row "complete K6" (Generators.complete 6);
  row "C5" (Generators.cycle 5);
  row "polarity ER_3" (Polarity.polarity_graph 3);
  row "Petersen" (Generators.petersen ());
  row "Petersen + pendant" Constructions.sum_diameter3_witness;
  row "minimal n=8 witness" Constructions.sum_diameter3_minimal;
  Table.print t;
  print_endline
    "  Reading: multi-swap power refines the equilibrium set — the diameter-3\n\
    \  witnesses fall to 2-swaps while the diameter-2 equilibria survive,\n\
    \  mirroring the paper's Section 4 trade-off (more simultaneous changes =>\n\
    \  lower achievable equilibrium diameter) on the sum side.\n"

let e17_dynamics_ablation ?(n = 32) ?(seeds = 5) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E17: dynamics design ablation (sum version, n = %d, G(n, 2n) starts, %d seeds)"
           n seeds)
      ~columns:
        [
          ("rule", Table.Left);
          ("schedule", Table.Left);
          ("converged", Table.Left);
          ("rounds", Table.Left);
          ("moves (mean)", Table.Right);
          ("final diameter", Table.Left);
        ]
  in
  List.iter
    (fun (rule_name, rule) ->
      List.iter
        (fun (sched_name, schedule) ->
          let runs =
            List.map
              (fun seed ->
                let rng = Prng.create seed in
                let g = Random_graphs.connected_gnm rng n (2 * n) in
                let cfg =
                  { (Dynamics.default_config Game.Sum) with Dynamics.rule; schedule }
                in
                Dynamics.run ~rng cfg g)
              (Array.to_list (Exp_common.seeds seeds))
          in
          let conv = List.filter (fun r -> r.Dynamics.outcome = Dynamics.Converged) runs in
          let rounds = Array.of_list (List.map (fun r -> r.Dynamics.rounds) conv) in
          let moves =
            Array.of_list (List.map (fun r -> float_of_int r.Dynamics.moves) conv)
          in
          let diams =
            Array.of_list
              (List.filter_map (fun r -> Metrics.diameter r.Dynamics.final) conv)
          in
          Table.add_row t
            [
              rule_name;
              sched_name;
              Printf.sprintf "%d/%d" (List.length conv) (List.length runs);
              (if Array.length rounds = 0 then "-" else Exp_common.minmax_cell rounds);
              (if Array.length moves = 0 then "-" else Exp_common.mean_cell moves);
              (if Array.length diams = 0 then "-" else Exp_common.minmax_cell diams);
            ])
        [ ("round-robin", Dynamics.Round_robin); ("random-agent", Dynamics.Random_agent) ])
    [
      ("best-response", Dynamics.Best_response);
      ("first-improving", Dynamics.First_improving);
      ("random-improving", Dynamics.Random_improving);
    ];
  Table.print t
