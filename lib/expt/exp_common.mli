(** Shared helpers for the experiment tables. *)

val jobs : unit -> int
(** Worker count for the experiment pool: [BNCG_JOBS] when set (must be a
    positive integer), otherwise {!Pool.available_jobs}. *)

val pool : unit -> Pool.t
(** The process-wide pool the experiment tables run their census /
    equilibrium / eccentricity kernels on. Created lazily on first use;
    lives for the remainder of the process. *)

val stats_enabled : unit -> bool
(** Whether [BNCG_STATS] requests telemetry ("", "0", "false" and "no"
    count as off). *)

val with_stats : (unit -> 'a) -> 'a
(** When {!stats_enabled}, reset and enable {!Telemetry} around [f] and
    print the sorted metric table afterwards (also on exceptions);
    otherwise just run [f]. *)

val diameter_cell : Graph.t -> string
(** Diameter, or "inf" when disconnected. *)

val girth_cell : Graph.t -> string
(** Girth, or "-" for forests. *)

val verdict_cell : Equilibrium.verdict -> string
(** "yes" for equilibrium, otherwise the violating move. *)

val sum_verdict : Graph.t -> string

val max_verdict : Graph.t -> string

val outcome_name : Dynamics.outcome -> string

val mean_cell : float array -> string

val minmax_cell : int array -> string
(** "lo..hi" of an int sample. *)

val set_seed_base : int -> unit
(** Shift the seed list: [seeds k] becomes [base+1 .. base+k]. Driven by
    [bncg experiment --seed]; defaults to [BNCG_SEED] (or 0). *)

val seeds : int -> int array
(** The deterministic seed list [base+1 .. base+k] used across all
    experiments ([base = 0] by default, see {!set_seed_base}). *)
