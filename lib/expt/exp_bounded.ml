let e21_bounded_agents ?(n = 24) ?(seeds = 5) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E21: bounded agents — swap-sampling budget vs equilibrium quality (sum, n = %d, G(n, 2n), %d seeds)"
           n seeds)
      ~columns:
        [
          ("budget / activation", Table.Left);
          ("converged", Table.Left);
          ("rounds", Table.Left);
          ("moves (mean)", Table.Right);
          ("residual violating agents", Table.Left);
          ("final diameter", Table.Left);
        ]
  in
  let budgets =
    [ ("1 sample", Dynamics.Sampled 1);
      ("2 samples", Dynamics.Sampled 2);
      ("4 samples", Dynamics.Sampled 4);
      ("8 samples", Dynamics.Sampled 8);
      ("16 samples", Dynamics.Sampled 16);
      ("full scan", Dynamics.Best_response);
    ]
  in
  List.iter
    (fun (name, rule) ->
      let runs =
        List.map
          (fun seed ->
            let rng = Prng.create seed in
            let g = Random_graphs.connected_gnm rng n (2 * n) in
            let cfg =
              {
                (Dynamics.default_config Game.Sum) with
                Dynamics.rule;
                max_rounds = 200;
              }
            in
            Dynamics.run ~rng cfg g)
          (Array.to_list (Exp_common.seeds seeds))
      in
      let conv = List.filter (fun r -> r.Dynamics.outcome = Dynamics.Converged) runs in
      let residuals =
        Array.of_list
          (List.map
             (fun r -> Hunt.violating_agents Game.Sum r.Dynamics.final)
             runs)
      in
      let rounds = Array.of_list (List.map (fun r -> r.Dynamics.rounds) conv) in
      let moves = Array.of_list (List.map (fun r -> float_of_int r.Dynamics.moves) runs) in
      let diams =
        Array.of_list (List.filter_map (fun r -> Metrics.diameter r.Dynamics.final) runs)
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%d/%d" (List.length conv) (List.length runs);
          (if Array.length rounds = 0 then "-" else Exp_common.minmax_cell rounds);
          Exp_common.mean_cell moves;
          Exp_common.minmax_cell residuals;
          Exp_common.minmax_cell diams;
        ])
    budgets;
  Table.print t;
  print_endline
    "  Reading: even one sampled candidate per activation eventually reaches a true\n\
    \  swap equilibrium (residual 0) — it just takes more rounds; the full scan\n\
    \  converges in ~3. The equilibrium *quality* (diameter 2) is identical across\n\
    \  budgets, supporting the paper's claim that the swap game is the right model\n\
    \  for computationally bounded agents.\n"
