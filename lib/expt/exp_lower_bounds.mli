(** E3 / E4 — diameter lower bounds for the sum version (Section 3.1,
    Figure 3) and the exhaustive small-graph census. *)

val e3_theorem5 : unit -> unit
(** Theorem 5 audit: the literal Figure 3 graph (and its matching
    variants) against the checker, the reproduction finding that it
    admits an improving swap, and the verified diameter-3 witnesses
    (Petersen, Petersen + pendant) plus the polarity-graph family. *)

val e4_graph_census : ?max_n:int -> ?games:Game.t list -> unit -> unit
(** Exhaustive classification of all connected graphs per n (default up
    to 6; n = 7 takes ~40 s for sum): equilibrium counts up to
    isomorphism and the diameter histogram. Shows the diameter-3 lower
    bound is not attainable for sum below n = 8 and is attainable for max
    at n = 6. *)
