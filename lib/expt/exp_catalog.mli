(** E22 — the equilibrium catalog. *)

val e22_equilibrium_catalog : ?n:int -> ?game:Game.t -> unit -> unit
(** A data-release table: every equilibrium class on [n] vertices (default
    5, exhaustive), with its graph6 certificate, size, girth, automorphism
    count, clustering and Fiedler value — the complete structural anatomy
    of the small equilibrium landscape. *)
