(** Mutable CSR with per-row slack: the graph representation of the
    large-n dynamics engine.

    {!Graph.t} pays a pointer indirection and an unsorted row per vertex;
    {!Csr.t} is contiguous but frozen. This structure keeps all adjacency
    targets in one int arena like CSR, leaves a little spare capacity after
    each row, and supports single-edge insertion/removal by shifting within
    the row (rows stay {e sorted} — the order {!Graph.neighbors} reports,
    which the byte-compat contract with {!Dynamics} depends on). A row that
    outgrows its capacity is relocated to the arena tail with doubled
    capacity; the abandoned slot is garbage we never reclaim, which is fine
    because dynamics apply few moves relative to [m].

    Not domain-safe under mutation. The BFS entry points below are the
    scalar kernels of the scale engine; the swap/deletion variants answer
    "distances after this move" {e without mutating the graph} by special-
    casing the source row, so an exact candidate evaluation is one BFS, not
    apply + BFS + undo. *)

type t

val of_csr : ?slack:int -> Csr.t -> t
(** O(n + m). [slack] (default 2) spare slots per row. *)

val of_graph : ?slack:int -> Graph.t -> t

val to_csr : t -> Csr.t
(** Compact snapshot of the current state. *)

val to_graph : t -> Graph.t

val n : t -> int

val m : t -> int

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** O(lg deg). *)

val neighbors : t -> int -> int array
(** Sorted copy of the row (same order as {!Graph.neighbors}). *)

val iter_neighbors : (int -> unit) -> t -> int -> unit

val add_edge : t -> int -> int -> unit
(** @raise Invalid_argument on self-loops, range errors or present edges. *)

val remove_edge : t -> int -> int -> unit
(** @raise Invalid_argument when the edge is absent. *)

val rows : t -> int array * int array * int array
(** [(off, len, arena)]: row [v] occupies [arena.(off.(v) ..
    off.(v) + len.(v) - 1)], sorted. Kernel access only — treat all three
    as read-only, and re-fetch after any mutation (relocation may swap the
    arena out from under a stale reference). *)

(** {1 Scalar BFS kernels}

    All take caller-owned scratch ([dist] and [queue], length >= n; [dist]
    is filled with −1 for unreached) and return
    [(reached, sum, ecc)] — vertices reached, the sum of finite distances
    from the source, and the largest one. *)

val bfs_stats : t -> int -> dist:int array -> queue:int array -> int * int * int

val bfs_delete_stats :
  t -> int -> drop:int -> dist:int array -> queue:int array -> int * int * int
(** Distances from [src] in [G − (src,drop)], without mutating [t]. The
    removed edge only matters when scanned from [src] (the reverse
    direction re-enters the settled source), so skipping one target in the
    source row is exact. *)

val bfs_swap_stats :
  t ->
  int ->
  drop:int ->
  add:int ->
  dist:int array ->
  queue:int array ->
  int * int * int
(** Distances from [src] in [G − (src,drop) + (src,add)], without mutating
    [t]. Requires [add] not currently adjacent to [src]. *)
