type t = {
  n : int;
  mutable m : int;
  off : int array;  (* row start in the arena *)
  cap : int array;  (* slots reserved for the row *)
  len : int array;  (* live targets, sorted ascending *)
  mutable arena : int array;
  mutable tail : int;  (* first never-allocated arena slot *)
}

let of_csr ?(slack = 2) csr =
  if slack < 0 then invalid_arg "Flexcsr.of_csr: negative slack";
  let n = Csr.n csr in
  let off = Array.make (max n 1) 0 in
  let cap = Array.make (max n 1) 0 in
  let len = Array.make (max n 1) 0 in
  let total = ref 0 in
  for v = 0 to n - 1 do
    let d = Csr.degree csr v in
    off.(v) <- !total;
    cap.(v) <- d + slack;
    len.(v) <- d;
    total := !total + d + slack
  done;
  let arena = Array.make (max !total 1) 0 in
  for v = 0 to n - 1 do
    let i = ref off.(v) in
    Csr.iter_neighbors
      (fun w ->
        arena.(!i) <- w;
        incr i)
      csr v
  done;
  { n; m = Csr.m csr; off; cap; len; arena; tail = !total }

let of_graph ?slack g = of_csr ?slack (Csr.of_graph g)

let n t = t.n

let m t = t.m

let degree t v = t.len.(v)

let iter_neighbors f t v =
  let base = t.off.(v) in
  for i = base to base + t.len.(v) - 1 do
    f t.arena.(i)
  done

let neighbors t v = Array.sub t.arena t.off.(v) t.len.(v)

let rows t = (t.off, t.len, t.arena)

let to_csr t =
  let g = Graph.create t.n in
  for v = 0 to t.n - 1 do
    iter_neighbors (fun w -> if v < w then Graph.add_edge g v w) t v
  done;
  Csr.of_graph g

let to_graph t =
  let g = Graph.create t.n in
  for v = 0 to t.n - 1 do
    iter_neighbors (fun w -> if v < w then Graph.add_edge g v w) t v
  done;
  g

(* number of entries in row [v] strictly below [w] *)
let rank t v w =
  let base = t.off.(v) in
  let lo = ref 0 and hi = ref t.len.(v) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if t.arena.(base + mid) < w then lo := mid + 1 else hi := mid
  done;
  !lo

let mem_edge t v w =
  let r = rank t v w in
  r < t.len.(v) && t.arena.(t.off.(v) + r) = w

(* Relocate row [v] to the arena tail with doubled capacity when full; the
   old slot is abandoned (moves are few relative to m). *)
let ensure_capacity t v =
  if t.len.(v) = t.cap.(v) then begin
    let newcap = max 4 (2 * t.cap.(v)) in
    let need = t.tail + newcap in
    if need > Array.length t.arena then begin
      let size = max need (2 * Array.length t.arena) in
      let a = Array.make size 0 in
      Array.blit t.arena 0 a 0 t.tail;
      t.arena <- a
    end;
    Array.blit t.arena t.off.(v) t.arena t.tail t.len.(v);
    t.off.(v) <- t.tail;
    t.cap.(v) <- newcap;
    t.tail <- t.tail + newcap
  end

let insert t v w =
  ensure_capacity t v;
  let r = rank t v w in
  let base = t.off.(v) in
  Array.blit t.arena (base + r) t.arena (base + r + 1) (t.len.(v) - r);
  t.arena.(base + r) <- w;
  t.len.(v) <- t.len.(v) + 1

let delete t v w =
  let r = rank t v w in
  let base = t.off.(v) in
  if not (r < t.len.(v) && t.arena.(base + r) = w) then
    invalid_arg "Flexcsr.remove_edge: absent edge";
  Array.blit t.arena (base + r + 1) t.arena (base + r) (t.len.(v) - r - 1);
  t.len.(v) <- t.len.(v) - 1

let add_edge t v w =
  if v = w || v < 0 || w < 0 || v >= t.n || w >= t.n then
    invalid_arg "Flexcsr.add_edge: bad endpoints";
  if mem_edge t v w then invalid_arg "Flexcsr.add_edge: edge present";
  insert t v w;
  insert t w v;
  t.m <- t.m + 1

let remove_edge t v w =
  delete t v w;
  delete t w v;
  t.m <- t.m - 1

(* The three BFS kernels below differ only in how the source row is
   scanned: as-is, minus one target, or minus one target plus one virtual
   neighbor. The modified edge is incident to the source, so it is only
   ever traversed out of the source row (the reverse direction re-enters
   the already-settled source) — one special case, exact distances. *)

let bfs_core t src ~drop ~add ~dist ~queue =
  Array.fill dist 0 t.n (-1);
  dist.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  let sum = ref 0 and ecc = ref 0 in
  let arena = t.arena and off = t.off and len = t.len in
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    let dnext = dist.(v) + 1 in
    let base = off.(v) in
    for i = base to base + len.(v) - 1 do
      let w = arena.(i) in
      if dist.(w) < 0 && not (v = src && w = drop) then begin
        dist.(w) <- dnext;
        sum := !sum + dnext;
        if dnext > !ecc then ecc := dnext;
        queue.(!tail) <- w;
        incr tail
      end
    done;
    if v = src && add >= 0 && dist.(add) < 0 then begin
      dist.(add) <- 1;
      sum := !sum + 1;
      if !ecc = 0 then ecc := 1;
      queue.(!tail) <- add;
      incr tail
    end
  done;
  (!tail, !sum, !ecc)

let bfs_stats t src ~dist ~queue = bfs_core t src ~drop:(-1) ~add:(-1) ~dist ~queue

let bfs_delete_stats t src ~drop ~dist ~queue =
  bfs_core t src ~drop ~add:(-1) ~dist ~queue

let bfs_swap_stats t src ~drop ~add ~dist ~queue =
  if mem_edge t src add then invalid_arg "Flexcsr.bfs_swap_stats: add present";
  bfs_core t src ~drop ~add ~dist ~queue
