(** Bit-parallel multi-source BFS over {!Flexcsr}.

    One machine word per vertex carries the frontier membership of up to
    {!max_sources} sources at once, so a batch of BFS waves costs one pass
    over the touched adjacency per wave instead of one pass per source —
    the kernel behind sampled eccentricity/mean-distance estimates and the
    batched swap-candidate lower bounds of the scale engine.

    Words are native [int]s (63 usable bits on 64-bit platforms): OCaml
    [int64 array]s box every element, which would cost an indirection per
    word per wave, so the batch width is 63, not 64.

    Results are exact BFS distances (per source), delivered through a
    [visit] callback invoked once per (vertex, wave) pair with the set of
    sources that first reach the vertex at that wave. Accumulations must be
    commutative over visit order: the sequential scatter kernel visits in
    frontier-queue order, the optional {!Pool}-parallel gather kernel in
    ascending vertex order, and both orders are deterministic.

    Telemetry (under [scale.bitbfs.*]): runs and frontier words processed. *)

val max_sources : int
(** 63. *)

type scratch
(** Reusable per-run workspace (a few O(n) arrays); one scratch per
    engine, not domain-shareable. *)

val create_scratch : int -> scratch
(** [create_scratch n] sizes the workspace for graphs with up to [n]
    vertices. *)

val run :
  ?pool:Pool.t ->
  scratch ->
  Flexcsr.t ->
  sources:int array ->
  visit:(int -> int -> int -> unit) ->
  unit
(** [run sc t ~sources ~visit] performs one batched BFS from at most
    {!max_sources} sources. [visit u wave bits] fires once per vertex [u]
    per wave at which at least one new source reaches it; bit [i] of
    [bits] corresponds to [sources.(i)] (sources themselves fire at wave
    0). With [pool] (and [jobs > 1]) waves run as gather sweeps
    parallelised over vertices — [visit] is still called sequentially.
    @raise Invalid_argument on 0 or more than {!max_sources} sources. *)

val iter_bits : (int -> unit) -> int -> unit
(** [iter_bits f bits] calls [f] on each set bit index, lowest first. *)

type stats = { ecc : int; sum : int; reached : int }

val sample_stats :
  ?pool:Pool.t -> scratch -> Flexcsr.t -> sources:int array -> stats array
(** Per-source eccentricity, sum of finite distances, and reach count.
    Any number of sources — batches of {!max_sources} internally. *)

val distances :
  ?pool:Pool.t -> scratch -> Flexcsr.t -> sources:int array -> int array array
(** Full distance rows (−1 for unreached), one per source: the test
    oracle hook. Any number of sources. *)
