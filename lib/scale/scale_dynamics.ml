let log_src = Logs.Src.create "bncg.scale" ~doc:"large-n sampled swap dynamics"

module Log = (val Logs.src_log log_src)

let m_runs = Telemetry.counter "scale.dynamics.runs"

let m_rounds = Telemetry.counter "scale.dynamics.rounds"

let m_probes = Telemetry.counter "scale.dynamics.probes"

let m_moves = Telemetry.counter "scale.dynamics.moves"

let m_deletions = Telemetry.counter "scale.dynamics.deletions"

let m_certified = Telemetry.counter "scale.dynamics.certified_skips"

let m_exact = Telemetry.counter "scale.dynamics.exact_evals"

let m_bfs = Telemetry.counter "scale.dynamics.bfs_runs"

type confirm = Exact_scan | Quiescence of int

type config = {
  game : Game.t;
  budget : int;
  probes_per_round : int;
  max_rounds : int;
  allow_deletions : bool;
  confirm : confirm;
  window : int;
  trajectory_every : int;
  trajectory_sources : int;
  traj_seed : int;
  record_trace : bool;
}

let default_config game =
  {
    game;
    budget = 16;
    probes_per_round = 0;
    max_rounds = 10_000;
    allow_deletions = Game.equal game Game.Max;
    confirm = Exact_scan;
    window = 1 lsl 20;
    trajectory_every = 0;
    trajectory_sources = 32;
    traj_seed = 0;
    record_trace = false;
  }

type sample = {
  s_round : int;
  s_moves : int;
  s_diameter_lb : int;
  s_mean_dist : float;
}

type result = {
  outcome : Dynamics.outcome;
  sampled_verdict : bool;
  rounds : int;
  probes : int;
  moves : int;
  deletions : int;
  final : Flexcsr.t;
  final_m : int;
  trajectory : sample list;
  trace : (Swap.move * int) list;
}

let run ?pool ?rng cfg csr =
  (* the certified-bound machinery and the CSR kernels speak the basic
     two-game cost model; the α-game (ownership state, float costs) has
     no sampled engine yet and is rejected up front with a clear error *)
  let version =
    match Game.basic cfg.game with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf
           "Scale_dynamics.run: the scale engine supports only the basic \
            games (sum, max); got %s"
           (Game.to_string cfg.game))
  in
  if cfg.budget < 1 then invalid_arg "Scale_dynamics.run: budget < 1";
  if cfg.window < 1 then invalid_arg "Scale_dynamics.run: window < 1";
  let rng = match rng with Some r -> r | None -> Prng.create 0 in
  let fx = Flexcsr.of_csr csr in
  let n = Flexcsr.n fx in
  if n < 1 then invalid_arg "Scale_dynamics.run: empty graph";
  let dist_v = Array.make n (-1) in
  let dist_x = Array.make n (-1) in
  let queue = Array.make n 0 in
  let reached0, _, _ = Flexcsr.bfs_stats fx 0 ~dist:dist_v ~queue in
  if reached0 < n then invalid_arg "Scale_dynamics.run: input must be connected";
  let bsc = Bitbfs.create_scratch n in
  (* drop rows of the bound batch, allocated lazily and reused per probe *)
  let rows = Array.make (max cfg.budget 1) [||] in
  let row_base = Array.make (max cfg.budget 1) 0 in
  let get_row slot =
    if Array.length rows.(slot) < n then rows.(slot) <- Array.make n (-1);
    rows.(slot)
  in
  let inf = Usage_cost.infinite in
  (* rolling edge-set fingerprint: XOR of per-edge hashes, O(1) per move *)
  let edge_hash a b =
    let lo = min a b and hi = max a b in
    Prng.hash64 (Int64.of_int ((lo * n) + hi))
  in
  let fp = ref 0L in
  for v = 0 to n - 1 do
    Flexcsr.iter_neighbors (fun w -> if v < w then fp := Int64.logxor !fp (edge_hash v w)) fx v
  done;
  let seen : (int64, int) Hashtbl.t = Hashtbl.create 1024 in
  let windowq : int64 Queue.t = Queue.create () in
  let push_state f =
    (match Hashtbl.find_opt seen f with
    | Some c -> Hashtbl.replace seen f (c + 1)
    | None -> Hashtbl.add seen f 1);
    Queue.push f windowq;
    if Queue.length windowq > cfg.window then begin
      let old = Queue.pop windowq in
      match Hashtbl.find_opt seen old with
      | Some 1 -> Hashtbl.remove seen old
      | Some c -> Hashtbl.replace seen old (c - 1)
      | None -> ()
    end
  in
  push_state !fp;
  let probes = ref 0 and moves = ref 0 and deletions = ref 0 in
  let rounds = ref 0 in
  let outcome = ref Dynamics.Round_limit in
  let sampled_verdict = ref false in
  let trace = ref [] in
  let samples = ref [] in
  let last_sample_round = ref (-1) in
  let take_sample round =
    if cfg.trajectory_sources > 0 && round <> !last_sample_round then begin
      last_sample_round := round;
      (* negative substream indices: the per-vertex generator streams own
         [0..n), see Prng.substream *)
      let srng = Prng.substream cfg.traj_seed (-2 - round) in
      let k = min cfg.trajectory_sources n in
      let sources = Prng.sample_distinct srng ~n ~k in
      let stats = Bitbfs.sample_stats ?pool bsc fx ~sources in
      let dia = ref 0 and total = ref 0 in
      Array.iter
        (fun (s : Bitbfs.stats) ->
          if s.ecc > !dia then dia := s.ecc;
          total := !total + s.sum)
        stats;
      let denom = float_of_int (k * max 1 (n - 1)) in
      samples :=
        {
          s_round = round;
          s_moves = !moves;
          s_diameter_lb = !dia;
          s_mean_dist = float_of_int !total /. denom;
        }
        :: !samples
    end
  in
  let after_cost reached s e =
    if reached < n then inf
    else match version with Usage_cost.Sum -> s | Usage_cost.Max -> e
  in
  (* Neutral-deletion scan, mirroring Dynamics.find_neutral_deletion: Max
     only, sorted-row order, first drop with exact delta < 1. *)
  let find_deletion v row ecc_v =
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < Array.length row do
      let drop = row.(!i) in
      incr i;
      let reached, _, e = Flexcsr.bfs_delete_stats fx v ~drop ~dist:dist_x ~queue in
      Telemetry.incr m_bfs;
      let d = (if reached < n then inf else e) - ecc_v in
      if d < 1 then found := Some (Swap.Delete { actor = v; drop }, d)
    done;
    !found
  in
  (* One sampled activation of agent [v]: the candidate stream is shared
     with Dynamics (identical rng consumption); sum-version candidates are
     first screened by the batched lower bound, the rest (and all
     max-version ones) get one exact mutation-free BFS. *)
  let probe v =
    Telemetry.incr m_probes;
    incr probes;
    let deg = Flexcsr.degree fx v in
    if deg = 0 then None
    else begin
      let reached, sum_v, ecc_v = Flexcsr.bfs_stats fx v ~dist:dist_v ~queue in
      Telemetry.incr m_bfs;
      if reached < n then invalid_arg "Scale_dynamics: graph became disconnected";
      let row = Flexcsr.neighbors fx v in
      let deletion =
        if cfg.allow_deletions && version = Usage_cost.Max then
          find_deletion v row ecc_v
        else None
      in
      match deletion with
      | Some _ as d -> d
      | None ->
        if deg >= n - 1 then None
        else begin
          let cost_v =
            match version with Usage_cost.Sum -> sum_v | Usage_cost.Max -> ecc_v
          in
          let pairs =
            Dynamics.draw_sampled_candidates rng ~deg ~n ~budget:cfg.budget
          in
          (* dedup candidates: repeated (drop, add) draws share bound,
             exact delta and bookkeeping *)
          let ncand = ref 0 in
          let cand_drop = Array.make cfg.budget 0 in
          let cand_add = Array.make cfg.budget 0 in
          let cand_slot = Array.make cfg.budget 0 in
          let cand_delta = Array.make cfg.budget max_int in
          let acc = Array.make cfg.budget 0 in
          let cand_key = Hashtbl.create 32 in
          let pair_cand = Array.make cfg.budget (-1) in
          Array.iteri
            (fun pi (di, add) ->
              let drop = row.(di) in
              if
                add <> v && add <> drop
                && not (Array.exists (fun w -> w = add) row)
              then
                match Hashtbl.find_opt cand_key (drop, add) with
                | Some c -> pair_cand.(pi) <- c
                | None ->
                  let c = !ncand in
                  incr ncand;
                  cand_drop.(c) <- drop;
                  cand_add.(c) <- add;
                  cand_delta.(c) <- max_int;
                  Hashtbl.add cand_key (drop, add) c;
                  pair_cand.(pi) <- c)
            pairs;
          if !ncand = 0 then None
          else begin
            if version = Usage_cost.Sum then begin
              (* one BFS per distinct drop: distances from v in G − vw,
                 folded into base = Σ_u min(dd_w(u), 2 + d_v(u)) *)
              let drop_slot = Hashtbl.create 8 in
              let nrows = ref 0 in
              for c = 0 to !ncand - 1 do
                let w = cand_drop.(c) in
                (match Hashtbl.find_opt drop_slot w with
                | Some slot -> cand_slot.(c) <- slot
                | None ->
                  let slot = !nrows in
                  incr nrows;
                  Hashtbl.add drop_slot w slot;
                  cand_slot.(c) <- slot;
                  let dd = get_row slot in
                  let _ = Flexcsr.bfs_delete_stats fx v ~drop:w ~dist:dd ~queue in
                  Telemetry.incr m_bfs;
                  let b = ref 0 in
                  for u = 0 to n - 1 do
                    let ddu = dd.(u) in
                    let ddu = if ddu < 0 then inf else ddu in
                    b := !b + min ddu (2 + dist_v.(u))
                  done;
                  row_base.(slot) <- !b);
                acc.(c) <- row_base.(cand_slot.(c))
              done;
              (* one bit-parallel batch over the distinct adds refines the
                 base with min(·, 1 + d(x,u)) as the waves arrive *)
              let src_of_add = Hashtbl.create 32 in
              let srcs = Array.make !ncand 0 in
              let nsrc = ref 0 in
              let cands_by_src = Array.make !ncand [] in
              for c = 0 to !ncand - 1 do
                let x = cand_add.(c) in
                let si =
                  match Hashtbl.find_opt src_of_add x with
                  | Some si -> si
                  | None ->
                    let si = !nsrc in
                    incr nsrc;
                    Hashtbl.add src_of_add x si;
                    srcs.(si) <- x;
                    si
                in
                cands_by_src.(si) <- c :: cands_by_src.(si)
              done;
              let pos = ref 0 in
              while !pos < !nsrc do
                let k = min Bitbfs.max_sources (!nsrc - !pos) in
                let base_i = !pos in
                Bitbfs.run ?pool bsc fx
                  ~sources:(Array.sub srcs base_i k)
                  ~visit:(fun u wave bits ->
                    Bitbfs.iter_bits
                      (fun i ->
                        List.iter
                          (fun c ->
                            let dd = rows.(cand_slot.(c)) in
                            let ddu = dd.(u) in
                            let ddu = if ddu < 0 then inf else ddu in
                            let a = min ddu (2 + dist_v.(u)) in
                            let b = min a (1 + wave) in
                            acc.(c) <- acc.(c) + b - a)
                          cands_by_src.(base_i + i))
                      bits);
                pos := !pos + k
              done
            end;
            (* decide in draw order under the running cutoff, exactly as
               Dynamics.sampled_move does through Swap_eval.delta_below *)
            let best = ref None in
            Array.iteri
              (fun pi _ ->
                let c = pair_cand.(pi) in
                if c >= 0 then begin
                  let cutoff =
                    match !best with None -> 0 | Some (_, bd) -> bd
                  in
                  let certified =
                    version = Usage_cost.Sum
                    && cand_delta.(c) = max_int
                    && acc.(c) - cost_v >= cutoff
                  in
                  if certified then Telemetry.incr m_certified
                  else begin
                    let d =
                      if cand_delta.(c) <> max_int then cand_delta.(c)
                      else begin
                        let drop = cand_drop.(c) and add = cand_add.(c) in
                        let reached, s, e =
                          Flexcsr.bfs_swap_stats fx v ~drop ~add ~dist:dist_x
                            ~queue
                        in
                        Telemetry.incr m_bfs;
                        Telemetry.incr m_exact;
                        let d = after_cost reached s e - cost_v in
                        cand_delta.(c) <- d;
                        d
                      end
                    in
                    if d < cutoff then
                      best :=
                        Some
                          ( Swap.Swap
                              { actor = v; drop = cand_drop.(c); add = cand_add.(c) },
                            d )
                  end
                end)
              pairs;
            !best
          end
        end
    end
  in
  (* Full deterministic first-improving scan: the Exact_scan confirmation,
     replicating the enumeration order of Swap.iter_moves (sorted drops ×
     ascending adds) behind Dynamics's quiet-pass. *)
  let exact_first_improving v =
    let deg = Flexcsr.degree fx v in
    if deg = 0 then None
    else begin
      let reached, sum_v, ecc_v = Flexcsr.bfs_stats fx v ~dist:dist_v ~queue in
      Telemetry.incr m_bfs;
      ignore reached;
      let row = Flexcsr.neighbors fx v in
      let deletion =
        if cfg.allow_deletions && version = Usage_cost.Max then
          find_deletion v row ecc_v
        else None
      in
      match deletion with
      | Some _ as d -> d
      | None ->
        let cost_v =
          match version with Usage_cost.Sum -> sum_v | Usage_cost.Max -> ecc_v
        in
        let found = ref None in
        (try
           Array.iter
             (fun drop ->
               for add = 0 to n - 1 do
                 if add <> v && not (Flexcsr.mem_edge fx v add) then begin
                   let reached, s, e =
                     Flexcsr.bfs_swap_stats fx v ~drop ~add ~dist:dist_x ~queue
                   in
                   Telemetry.incr m_bfs;
                   let d = after_cost reached s e - cost_v in
                   if d < 0 then begin
                     found := Some (Swap.Swap { actor = v; drop; add }, d);
                     raise Exit
                   end
                 end
               done)
             row
         with Exit -> ());
        !found
    end
  in
  let exact_scan () =
    let found = ref None in
    let v = ref 0 in
    while !found = None && !v < n do
      found := exact_first_improving !v;
      incr v
    done;
    !found
  in
  let apply_move mv d =
    (match mv with
    | Swap.Swap { actor; drop; add } ->
      Flexcsr.remove_edge fx actor drop;
      Flexcsr.add_edge fx actor add;
      fp := Int64.logxor !fp (edge_hash actor drop);
      fp := Int64.logxor !fp (edge_hash actor add)
    | Swap.Delete { actor; drop } ->
      Flexcsr.remove_edge fx actor drop;
      incr deletions;
      Telemetry.incr m_deletions;
      fp := Int64.logxor !fp (edge_hash actor drop));
    Log.debug (fun m -> m "move %d: %s (delta %d)" !moves (Swap.move_to_string mv) d);
    if cfg.record_trace then trace := (mv, d) :: !trace;
    incr moves;
    Telemetry.incr m_moves;
    (* deletions strictly shrink the edge set, so only swaps can revisit *)
    (match mv with
    | Swap.Swap _ when Hashtbl.mem seen !fp ->
      outcome := Dynamics.Cycled;
      push_state !fp;
      raise Exit
    | _ -> ());
    push_state !fp
  in
  let slots = if cfg.probes_per_round <= 0 then n else cfg.probes_per_round in
  let quiesce = ref 0 in
  take_sample 0;
  (try
     while !rounds < cfg.max_rounds do
       incr rounds;
       let progressed = ref false in
       for _slot = 0 to slots - 1 do
         let v = Prng.int rng n in
         match probe v with
         | Some (mv, d) ->
           apply_move mv d;
           progressed := true;
           quiesce := 0
         | None -> (
           incr quiesce;
           match cfg.confirm with
           | Quiescence p when !quiesce >= p ->
             outcome := Dynamics.Converged;
             sampled_verdict := true;
             raise Exit
           | _ -> ())
       done;
       if cfg.trajectory_every > 0 && !rounds mod cfg.trajectory_every = 0 then
         take_sample !rounds;
       if (not !progressed) && cfg.confirm = Exact_scan then begin
         (* quiet round: confirm with the full scan, as the exact engine
            does; a found move is not applied under the sampled rule *)
         match exact_scan () with
         | None ->
           outcome := Dynamics.Converged;
           raise Exit
         | Some _ -> ()
       end
     done
   with Exit -> ());
  take_sample !rounds;
  Log.info (fun m ->
      m "%s scale dynamics: %s after %d rounds, %d probes, %d moves"
        (Game.to_string cfg.game)
        (match !outcome with
        | Dynamics.Converged ->
          if !sampled_verdict then "converged (sampled verdict)" else "converged"
        | Dynamics.Cycled -> "cycled"
        | Dynamics.Round_limit -> "round limit")
        !rounds !probes !moves);
  Telemetry.incr m_runs;
  Telemetry.add m_rounds !rounds;
  {
    outcome = !outcome;
    sampled_verdict = !sampled_verdict;
    rounds = !rounds;
    probes = !probes;
    moves = !moves;
    deletions = !deletions;
    final = fx;
    final_m = Flexcsr.m fx;
    trajectory = List.rev !samples;
    trace = List.rev !trace;
  }
