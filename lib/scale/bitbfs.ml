let m_runs = Telemetry.counter "scale.bitbfs.runs"

let m_words = Telemetry.counter "scale.bitbfs.words"

let max_sources = 63

type scratch = {
  size : int;
  seen : int array;  (* bit i: sources.(i) has reached the vertex *)
  front : int array;  (* bits of the current wave *)
  next : int array;  (* bits being gathered for the next wave *)
  q : int array;
  q2 : int array;
}

let create_scratch n =
  if n < 0 then invalid_arg "Bitbfs.create_scratch: negative size";
  let sz = max n 1 in
  {
    size = n;
    seen = Array.make sz 0;
    front = Array.make sz 0;
    next = Array.make sz 0;
    q = Array.make sz 0;
    q2 = Array.make sz 0;
  }

(* b is a power of two in a 63-bit int (possibly its sign bit, which lsr
   treats as plain bit 62) *)
let bit_index b0 =
  let b = ref b0 and i = ref 0 in
  if !b land 0xFFFFFFFF = 0 then begin
    i := !i + 32;
    b := !b lsr 32
  end;
  if !b land 0xFFFF = 0 then begin
    i := !i + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    i := !i + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    i := !i + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    i := !i + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then incr i;
  !i

let iter_bits f bits =
  let b = ref bits in
  while !b <> 0 do
    let low = !b land (- !b) in
    f (bit_index low);
    b := !b lxor low
  done

let seed_sources sc sources visit =
  let qlen = ref 0 in
  Array.iteri
    (fun i src ->
      let b = 1 lsl i in
      if sc.front.(src) = 0 then begin
        sc.q.(!qlen) <- src;
        incr qlen
      end;
      sc.front.(src) <- sc.front.(src) lor b;
      sc.seen.(src) <- sc.seen.(src) lor b)
    sources;
  for i = 0 to !qlen - 1 do
    visit sc.q.(i) 0 sc.front.(sc.q.(i))
  done;
  !qlen

(* Scatter kernel: a frontier queue per wave; each frontier word is pushed
   through its row. Fastest sequentially — writes to next.(u)/seen.(u)
   conflict across frontier vertices, so this form does not parallelise. *)
let run_scatter sc t ~sources ~visit =
  let seen = sc.seen and front = sc.front and next = sc.next in
  let off, len, arena = Flexcsr.rows t in
  let qlen = seed_sources sc sources visit in
  let cur = ref sc.q and nxt = ref sc.q2 in
  let curlen = ref qlen in
  let wave = ref 0 in
  let words = ref 0 in
  while !curlen > 0 do
    incr wave;
    words := !words + !curlen;
    let cq = !cur and nq = !nxt in
    let nlen = ref 0 in
    for qi = 0 to !curlen - 1 do
      let v = cq.(qi) in
      let bits = front.(v) in
      let base = off.(v) in
      for i = base to base + len.(v) - 1 do
        let u = arena.(i) in
        let add = bits land lnot seen.(u) in
        if add <> 0 then begin
          if next.(u) = 0 then begin
            nq.(!nlen) <- u;
            incr nlen
          end;
          next.(u) <- next.(u) lor add;
          seen.(u) <- seen.(u) lor add
        end
      done;
      front.(v) <- 0
    done;
    for qi = 0 to !nlen - 1 do
      let u = nq.(qi) in
      front.(u) <- next.(u);
      next.(u) <- 0;
      visit u !wave front.(u)
    done;
    cur := nq;
    nxt := cq;
    curlen := !nlen
  done;
  Telemetry.add m_words !words

(* Gather kernel: each wave sweeps all unsaturated vertices, ORing the
   frontier words of their neighbors. All writes of the sweep touch only
   the swept vertex's own cells, so the sweep parallelises over disjoint
   vertex ranges; per-chunk discovery lists are reduced in ascending chunk
   order (the Pool contract), making visit order — and therefore telemetry
   — deterministic at any job count. *)
let run_gather pool sc t ~sources ~visit =
  let n = Flexcsr.n t in
  let seen = sc.seen and front = sc.front and next = sc.next in
  let off, len, arena = Flexcsr.rows t in
  let s = Array.length sources in
  let full = if s >= 63 then -1 else (1 lsl s) - 1 in
  let qlen = seed_sources sc sources visit in
  let prev = ref (Array.sub sc.q 0 qlen) in
  let wave = ref 0 in
  let words = ref 0 in
  while Array.length !prev > 0 do
    incr wave;
    words := !words + Array.length !prev;
    let changed =
      Pool.fold_chunks pool ~n
        ~fold:(fun ~lo ~hi ->
          let found = ref [] in
          for u = hi - 1 downto lo do
            if seen.(u) <> full then begin
              let f = ref 0 in
              let base = off.(u) in
              for i = base to base + len.(u) - 1 do
                f := !f lor front.(arena.(i))
              done;
              let add = !f land lnot seen.(u) in
              if add <> 0 then begin
                next.(u) <- add;
                seen.(u) <- seen.(u) lor add;
                found := u :: !found
              end
            end
          done;
          !found)
        ~reduce:(fun a b -> a @ b) ~zero:[]
    in
    Array.iter (fun v -> front.(v) <- 0) !prev;
    let changed = Array.of_list changed in
    Array.iter
      (fun u ->
        front.(u) <- next.(u);
        next.(u) <- 0;
        visit u !wave front.(u))
      changed;
    prev := changed
  done;
  Telemetry.add m_words !words

let run ?pool sc t ~sources ~visit =
  let n = Flexcsr.n t in
  let s = Array.length sources in
  if s = 0 || s > max_sources then
    invalid_arg "Bitbfs.run: need 1..max_sources sources";
  if n > sc.size then invalid_arg "Bitbfs.run: scratch too small";
  Array.iter
    (fun src ->
      if src < 0 || src >= n then invalid_arg "Bitbfs.run: source out of range")
    sources;
  Array.fill sc.seen 0 n 0;
  Array.fill sc.front 0 n 0;
  Array.fill sc.next 0 n 0;
  Telemetry.incr m_runs;
  match pool with
  | Some p when Pool.jobs p > 1 -> run_gather p sc t ~sources ~visit
  | _ -> run_scatter sc t ~sources ~visit

type stats = { ecc : int; sum : int; reached : int }

let batched ?pool sc t ~sources ~visit_abs =
  let s = Array.length sources in
  let pos = ref 0 in
  while !pos < s do
    let k = min max_sources (s - !pos) in
    let base = !pos in
    let chunk = Array.sub sources base k in
    run ?pool sc t ~sources:chunk ~visit:(fun u wave bits ->
        iter_bits (fun i -> visit_abs u wave (base + i)) bits);
    pos := !pos + k
  done

let sample_stats ?pool sc t ~sources =
  let s = Array.length sources in
  let ecc = Array.make s 0 and sum = Array.make s 0 and reached = Array.make s 0 in
  batched ?pool sc t ~sources ~visit_abs:(fun _u wave i ->
      reached.(i) <- reached.(i) + 1;
      sum.(i) <- sum.(i) + wave;
      if wave > ecc.(i) then ecc.(i) <- wave);
  Array.init s (fun i -> { ecc = ecc.(i); sum = sum.(i); reached = reached.(i) })

let distances ?pool sc t ~sources =
  let n = Flexcsr.n t in
  let d = Array.init (Array.length sources) (fun _ -> Array.make n (-1)) in
  batched ?pool sc t ~sources ~visit_abs:(fun u wave i -> d.(i).(u) <- wave);
  d
