(** Sampled best-response dynamics at large n.

    The exact engine ({!Dynamics} over {!Swap_eval}) holds a {!Graph.t}
    plus cached distance rows; at n = 10⁵–10⁶ that representation and its
    full candidate scans are out of reach. This engine runs the {e same}
    process — random focal agent, [budget] uniformly sampled candidate
    swaps, best strictly-improving one applied — over a {!Flexcsr} arena,
    with three scale devices:

    - {b shared candidate stream}: pairs come from
      {!Dynamics.draw_sampled_candidates}, so with [probes_per_round = 0]
      (a round = n probes), [confirm = Exact_scan] and equal seeds this
      engine reproduces [Dynamics.run { rule = Sampled budget; schedule =
      Random_agent }] move-for-move, delta-for-delta — the differential
      test anchor;
    - {b batched certified bounds} (sum version): for a probe's candidate
      set, one scalar BFS per distinct drop and one bit-parallel
      {!Bitbfs} batch over the distinct adds yield a sound lower bound
      [Σ_u min(dd_w(u), 1 + d(x,u), 2 + d(v,u))] on the actor's
      post-swap cost; candidates whose bound already meets the cutoff are
      skipped with no further work, the rest fall back to one exact
      mutation-free BFS ({!Flexcsr.bfs_swap_stats});
    - {b rolling state fingerprint}: an XOR of per-edge hashes updated in
      O(1) per move detects revisited states over a bounded [window] of
      recent states (deletions strictly shrink the edge set and never
      flag a cycle, as in the exact engine).

    {b Sampling soundness caveat.} [Exact_scan] confirmation certifies a
    true swap equilibrium but costs a full O(n·deg·n) scan — fine for
    differential tests, absurd at 10⁶. [Quiescence p] instead declares
    convergence after [p] consecutive probes found no improving candidate;
    that is a statistical verdict ({!result.sampled_verdict} is set), not
    a certificate — see DESIGN.md "Large-n dynamics".

    Telemetry (under [scale.dynamics.*]): probes, moves, deletions,
    rounds, certified skips, exact evaluations, scalar BFS runs. *)

type confirm =
  | Exact_scan
      (** a quiet round triggers the exact engine's full deterministic
          scan; [None] certifies equilibrium (byte-compat with
          {!Dynamics}) *)
  | Quiescence of int
      (** declare convergence after this many consecutive unimproving
          probes (statistical verdict; the only affordable option at
          large n) *)

type config = {
  game : Game.t;
  budget : int;  (** sampled candidates per probe, as [Dynamics.Sampled] *)
  probes_per_round : int;  (** 0 means n, matching the exact engine *)
  max_rounds : int;
  allow_deletions : bool;  (** neutral deletions first, [Max] only *)
  confirm : confirm;
  window : int;  (** recent-state fingerprints kept for cycle detection *)
  trajectory_every : int;
      (** sample the diameter/mean-distance trajectory every this many
          rounds (0: only at start and end) *)
  trajectory_sources : int;  (** BFS sources per sample; 0 disables *)
  traj_seed : int;
      (** trajectory PRNG substream seed — independent of the run stream,
          so sampling never perturbs the dynamics *)
  record_trace : bool;
}

val default_config : Game.t -> config
(** [budget = 16], a round of n probes, [max_rounds = 10_000],
    [Exact_scan], [window = 2²⁰], trajectory at start/end from 32
    sources; deletions exactly for [Max]. *)

type sample = {
  s_round : int;
  s_moves : int;  (** moves applied before the sample *)
  s_diameter_lb : int;  (** max sampled eccentricity: a diameter lower bound *)
  s_mean_dist : float;  (** mean distance over sampled sources *)
}

type result = {
  outcome : Dynamics.outcome;
  sampled_verdict : bool;
      (** [Converged] by quiescence rather than by exact scan *)
  rounds : int;
  probes : int;
  moves : int;
  deletions : int;
  final : Flexcsr.t;
  final_m : int;
  trajectory : sample list;  (** chronological *)
  trace : (Swap.move * int) list;
      (** chronological (move, delta), when [record_trace] *)
}

val run : ?pool:Pool.t -> ?rng:Prng.t -> config -> Csr.t -> result
(** Runs the dynamics on a fresh {!Flexcsr} copy of the snapshot. The
    input must be connected (generators patch connectivity; see
    {!Scale_gen}). [pool] parallelises the bit-BFS waves of bound batches
    and trajectory samples. @raise Invalid_argument on disconnected
    input. *)
