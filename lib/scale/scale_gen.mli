(** Streaming deterministic graph generators for large n.

    Each family emits an undirected edge stream straight into
    {!Csr.of_edges} — no {!Graph.t}, no adjacency matrix, no per-vertex
    boxed rows — so a million-node instance costs a few flat arrays.

    {b Determinism contract.} Every vertex draws from its own
    {!Prng.substream}[ seed v], so its forward edges are a function of
    [(seed, v)] alone. Rows can therefore be generated in any order, on
    any number of domains, and the assembled snapshot is byte-identical
    ({!Csr.equal}) at every [-j] — which the property tests assert. The
    preferential-attachment family is inherently sequential (vertex [v]'s
    targets depend on the degrees accumulated by [0..v-1]) and ignores the
    pool, but still draws through per-vertex substreams.

    All three families patch connectivity deterministically when needed:
    components are chained by an edge between their smallest vertices, in
    ascending order. The games require connected instances; the patch
    count is telemetred ([scale.gen.patched]). *)

val ba : seed:int -> n:int -> m:int -> Csr.t
(** Barabási–Albert preferential attachment (repeated-nodes scheme):
    vertices [m..n-1] arrive in order and attach [m] edges to distinct
    targets drawn uniformly from the endpoint multiset of existing edges
    (the first arrival connects to [0..m-1]). Exactly [(n − m)·m] edges,
    connected by construction. Requires [1 <= m < n]. *)

val er : ?pool:Pool.t -> seed:int -> n:int -> avg_deg:float -> unit -> Csr.t
(** Erdős–Rényi G(n, p) with [p = avg_deg / (n − 1)]: each vertex [v]
    geometric-skip-samples its higher-numbered partners, so the cost is
    O(edges), not O(n²). Requires [n >= 2] and [avg_deg >= 0]. *)

val ws : ?pool:Pool.t -> seed:int -> n:int -> k:int -> beta:float -> unit -> Csr.t
(** Watts–Strogatz: ring lattice where each vertex links its [k] clockwise
    successors, then each lattice edge is rewired with probability [beta]
    to a uniform chord (not a self-loop, not a ring neighbour, not a
    duplicate of the vertex's other targets; after 64 rejected draws the
    lattice edge is kept). With [beta = 0] exactly [n·k] edges. Requires
    [k >= 1] and [2·k + 1 <= n]. *)
