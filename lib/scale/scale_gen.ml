let m_edges = Telemetry.counter "scale.gen.edges"

let m_patched = Telemetry.counter "scale.gen.patched"

(* Union-find with path halving: connectivity patching without
   materialising the graph. *)
let find parent i =
  let i = ref i in
  while parent.(!i) <> !i do
    parent.(!i) <- parent.(parent.(!i));
    i := parent.(!i)
  done;
  !i

(* Chain components by their smallest vertices, in ascending order — a
   deterministic function of the edge set alone. *)
let patch_edges ~n edges =
  let parent = Array.init n (fun i -> i) in
  Array.iter
    (fun (u, v) ->
      let ru = find parent u and rv = find parent v in
      if ru <> rv then parent.(ru) <- rv)
    edges;
  let extra = ref [] and prev = ref (-1) in
  let seen = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let r = find parent v in
    if not (Hashtbl.mem seen r) then begin
      Hashtbl.add seen r ();
      if !prev >= 0 then extra := (!prev, v) :: !extra;
      prev := v
    end
  done;
  List.rev !extra

(* Assemble per-vertex forward-target rows (plus patch edges) into one
   edge array, in ascending vertex order. *)
let flatten ~n per_v =
  let cnt = ref 0 in
  Array.iter (fun row -> cnt := !cnt + Array.length row) per_v;
  let edges = Array.make (max !cnt 1) (0, 0) in
  let k = ref 0 in
  for v = 0 to n - 1 do
    Array.iter
      (fun t ->
        edges.(!k) <- (v, t);
        incr k)
      per_v.(v)
  done;
  Array.sub edges 0 !k

let finish ~n per_v =
  let edges = flatten ~n per_v in
  let extra = patch_edges ~n edges in
  let edges =
    if extra = [] then edges else Array.append edges (Array.of_list extra)
  in
  Telemetry.add m_edges (Array.length edges);
  Telemetry.add m_patched (List.length extra);
  Csr.of_edges ~n edges

(* Fill per-vertex rows, optionally in parallel: disjoint slot writes plus
   per-vertex substreams make the result identical at any job count. *)
let fill_rows ?pool ~n row =
  let per_v = Array.make (max n 1) [||] in
  (match pool with
  | Some pool when Pool.jobs pool > 1 ->
    Pool.parallel_for pool ~chunk:1024 ~n
      ~init:(fun () -> ())
      (fun () v -> per_v.(v) <- row v)
  | _ ->
    for v = 0 to n - 1 do
      per_v.(v) <- row v
    done);
  per_v

let er_row ~seed ~n ~p v =
  if p <= 0. || v = n - 1 then [||]
  else if p >= 1. then Array.init (n - 1 - v) (fun i -> v + 1 + i)
  else begin
    let rng = Prng.substream seed v in
    let log1mp = log (1. -. p) in
    let acc = ref [] and cnt = ref 0 in
    let u = ref v and go = ref true in
    while !go do
      let r = Prng.float rng 1.0 in
      let skip = int_of_float (log (1. -. r) /. log1mp) in
      u := !u + 1 + skip;
      if !u < n then begin
        acc := !u :: !acc;
        incr cnt
      end
      else go := false
    done;
    let row = Array.make !cnt 0 in
    List.iteri (fun i x -> row.(!cnt - 1 - i) <- x) !acc;
    row
  end

let er ?pool ~seed ~n ~avg_deg () =
  if n < 2 then invalid_arg "Scale_gen.er: need n >= 2";
  if avg_deg < 0. then invalid_arg "Scale_gen.er: negative avg_deg";
  let p = min 1. (avg_deg /. float_of_int (n - 1)) in
  finish ~n (fill_rows ?pool ~n (er_row ~seed ~n ~p))

let ws_row ~seed ~n ~k ~beta v =
  let targets = Array.init k (fun i -> (v + i + 1) mod n) in
  if beta > 0. then begin
    let rng = Prng.substream seed v in
    for i = 0 to k - 1 do
      if Prng.bernoulli rng beta then begin
        let chosen = ref (-1) and tries = ref 0 in
        while !chosen < 0 && !tries < 64 do
          incr tries;
          let t = Prng.int rng n in
          let d = abs (t - v) in
          let ring_dist = min d (n - d) in
          if ring_dist > k && not (Array.exists (fun x -> x = t) targets) then
            chosen := t
        done;
        if !chosen >= 0 then targets.(i) <- !chosen
      end
    done
  end;
  targets

let ws ?pool ~seed ~n ~k ~beta () =
  if k < 1 || (2 * k) + 1 > n then
    invalid_arg "Scale_gen.ws: need 1 <= k and 2k + 1 <= n";
  if beta < 0. || beta > 1. then invalid_arg "Scale_gen.ws: beta outside [0,1]";
  finish ~n (fill_rows ?pool ~n (ws_row ~seed ~n ~k ~beta))

let ba ~seed ~n ~m =
  if m < 1 || m >= n then invalid_arg "Scale_gen.ba: need 1 <= m < n";
  let per_v = Array.make n [||] in
  (* endpoint multiset of the edges so far: uniform draws from it are
     degree-proportional draws over vertices *)
  let repeated = Array.make (2 * (n - m) * m) 0 in
  let rlen = ref 0 in
  for v = m to n - 1 do
    let targets =
      if v = m then Array.init m (fun i -> i)
      else begin
        let rng = Prng.substream seed v in
        let t = Array.make m (-1) in
        for j = 0 to m - 1 do
          let chosen = ref (-1) in
          while !chosen < 0 do
            let c = repeated.(Prng.int rng !rlen) in
            let dup = ref false in
            for j' = 0 to j - 1 do
              if t.(j') = c then dup := true
            done;
            if not !dup then chosen := c
          done;
          t.(j) <- !chosen
        done;
        t
      end
    in
    per_v.(v) <- targets;
    Array.iter
      (fun t ->
        repeated.(!rlen) <- t;
        incr rlen;
        repeated.(!rlen) <- v;
        incr rlen)
      targets
  done;
  finish ~n per_v
