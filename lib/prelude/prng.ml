type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: xor-shift multiply mixing of the incremented
   counter.  Constants from the reference implementation. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let hash64 = mix64

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  let s = Int64.add t.state golden_gamma in
  t.state <- s;
  mix64 s

let split t =
  let s = bits64 t in
  { state = mix64 s }

let substream seed index =
  (* Two rounds of mixing over (seed, index) decorrelate neighbouring
     indices; the golden-gamma stride keeps distinct indices on distinct
     SplitMix64 trajectories. *)
  let s = mix64 (Int64.of_int seed) in
  let i = Int64.mul golden_gamma (Int64.of_int index) in
  { state = mix64 (Int64.add (mix64 (Int64.logxor s i)) s) }

let int t bound =
  assert (bound > 0);
  if bound land (bound - 1) = 0 then
    (* power of two: take high-quality low bits of the mixed output *)
    Int64.to_int (bits64 t) land (bound - 1)
  else begin
    (* rejection sampling to avoid modulo bias *)
    let mask = max_int in
    let rec loop () =
      let r = Int64.to_int (bits64 t) land mask in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then loop () else v
    in
    loop ()
  end

let int_in_range t ~lo ~hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.compare (bits64 t) 0L < 0

let bernoulli t p = float t 1.0 < p

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct t ~n ~k =
  assert (0 <= k && k <= n);
  if 2 * k >= n then begin
    (* dense: partial Fisher-Yates over the full range *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in_range t ~lo:i ~hi:(n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end else begin
    (* sparse: hash-set rejection *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
