(* Hashtable + intrusive doubly-linked recency list. The list is circular
   through a sentinel node: sentinel.next is most-recently-used,
   sentinel.prev least-recently-used, so promotion and eviction are
   pointer splices with no option juggling on the hot path. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable sentinel : ('k, 'v) node option;
      (* allocated lazily on first insert: a sentinel needs a key/value of
         the right type, and the first inserted entry supplies them *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  {
    cap = capacity;
    table = Hashtbl.create (min capacity 64);
    sentinel = None;
    hits = 0;
    misses = 0;
  }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

(* splice [node] right after the sentinel: most-recently-used position *)
let push_front s node =
  node.prev <- s;
  node.next <- s.next;
  s.next.prev <- node;
  s.next <- node

let promote t node =
  match t.sentinel with
  | None -> assert false
  | Some s ->
    unlink node;
    push_front s node

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    t.hits <- t.hits + 1;
    promote t node;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    None

let mem t k = Hashtbl.mem t.table k

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    promote t node
  | None ->
    let s =
      match t.sentinel with
      | Some s -> s
      | None ->
        let rec s = { key = k; value = v; prev = s; next = s } in
        t.sentinel <- Some s;
        s
    in
    if Hashtbl.length t.table >= t.cap then begin
      let lru = s.prev in
      (* capacity >= 1 and the table is non-empty, so lru <> s *)
      unlink lru;
      Hashtbl.remove t.table lru.key
    end;
    let rec node = { key = k; value = v; prev = node; next = node } in
    push_front s node;
    Hashtbl.add t.table k node

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    unlink node;
    Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.sentinel <- None

let hits t = t.hits

let misses t = t.misses

let to_list t =
  match t.sentinel with
  | None -> []
  | Some s ->
    let rec walk node acc =
      if node == s then List.rev acc
      else walk node.next ((node.key, node.value) :: acc)
    in
    walk s.next []
