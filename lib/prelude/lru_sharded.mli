(** Thread-safe sharded LRU cache over string keys.

    The serving layer's result cache used to be one {!Lru} behind one
    mutex — every connection thread serialized on it, and with per-core
    event-loop domains that single lock would be the whole story of
    scaling. This wrapper splits the capacity across a power-of-two
    number of independently locked {!Lru} shards and routes each key by
    hash, so concurrent lookups from different domains contend only when
    they happen to hash to the same shard.

    Eviction is per-shard LRU (each shard holds
    [ceil(capacity / shards)] entries), not a global recency order: a
    burst of inserts hashing to one shard can evict that shard's
    entries while another shard still holds colder ones. Hit/miss
    {e content} is unaffected — a present key is found regardless of
    which shard holds it — which is what the serving layer's
    byte-identity contract needs; only retention under eviction
    pressure differs from the single-lock cache.

    All operations are safe from any domain or thread. Aggregate
    accessors ({!length}, {!hits}, ...) lock shards one at a time, so
    they are consistent per shard but not a global atomic snapshot —
    monitoring-grade, like the telemetry counters. *)

type 'v t

val create : ?shards:int -> capacity:int -> unit -> 'v t
(** [capacity] is the {e total} entry budget, split evenly across
    shards; [shards] (default 8) is rounded up to a power of two.
    @raise Invalid_argument if [capacity < 1] or [shards < 1]. *)

val shard_count : 'v t -> int

val find : 'v t -> string -> 'v option
(** Hit promotes within its shard and counts a shard hit. *)

val add : 'v t -> string -> 'v -> unit

val remove : 'v t -> string -> unit

val clear : 'v t -> unit

val length : 'v t -> int

val capacity : 'v t -> int
(** Sum of per-shard capacities — at least the requested capacity. *)

val hits : 'v t -> int

val misses : 'v t -> int

type shard_stats = { size : int; hits : int; misses : int }

val shard_stats : 'v t -> shard_stats array
(** Per-shard occupancy and hit/miss counts, in shard-index order — the
    payload of the serving layer's in-band [stats] method. *)
