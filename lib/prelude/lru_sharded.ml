(* N independent mutex-guarded Lru shards, shard picked by key hash.
   Hot-path cost per operation is one hash, one lock, one Lru op — and
   under K event-loop domains the probability two of them contend on the
   same shard lock is ~1/shards instead of 1. *)

type 'v shard = { lock : Mutex.t; lru : (string, 'v) Lru.t }

type 'v t = {
  shards : 'v shard array;
  mask : int;  (* shard count - 1; shard count is a power of two *)
}

let rec pow2_at_least k n = if k >= n then k else pow2_at_least (2 * k) n

let create ?(shards = 8) ~capacity () =
  if capacity < 1 then invalid_arg "Lru_sharded.create: capacity < 1";
  if shards < 1 then invalid_arg "Lru_sharded.create: shards < 1";
  let count = pow2_at_least 1 shards in
  let per_shard = max 1 ((capacity + count - 1) / count) in
  {
    shards =
      Array.init count (fun _ ->
          { lock = Mutex.create (); lru = Lru.create ~capacity:per_shard });
    mask = count - 1;
  }

let shard_count t = Array.length t.shards

let shard_of t key = t.shards.(Hashtbl.hash key land t.mask)

let find t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let r = Lru.find s.lru key in
  Mutex.unlock s.lock;
  r

let add t key v =
  let s = shard_of t key in
  Mutex.lock s.lock;
  Lru.add s.lru key v;
  Mutex.unlock s.lock

let remove t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  Lru.remove s.lru key;
  Mutex.unlock s.lock

let fold_shards t f zero =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let r = f acc s.lru in
      Mutex.unlock s.lock;
      r)
    zero t.shards

let length t = fold_shards t (fun acc lru -> acc + Lru.length lru) 0

let capacity t = fold_shards t (fun acc lru -> acc + Lru.capacity lru) 0

let hits t = fold_shards t (fun acc lru -> acc + Lru.hits lru) 0

let misses t = fold_shards t (fun acc lru -> acc + Lru.misses lru) 0

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Lru.clear s.lru;
      Mutex.unlock s.lock)
    t.shards

type shard_stats = { size : int; hits : int; misses : int }

let shard_stats t =
  Array.map
    (fun s ->
      Mutex.lock s.lock;
      let r =
        { size = Lru.length s.lru; hits = Lru.hits s.lru; misses = Lru.misses s.lru }
      in
      Mutex.unlock s.lock;
      r)
    t.shards
