(** Deterministic pseudo-random number generation.

    All randomized code in this repository threads an explicit generator so
    that every experiment, test and benchmark is reproducible from a seed.
    The implementation is SplitMix64 (Steele, Lea, Flood; OOPSLA 2014): a
    tiny, fast, splittable generator whose statistical quality is more than
    sufficient for workload generation. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy with the same state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s continuation. *)

val substream : int -> int -> t
(** [substream seed index] is a generator determined only by the pair
    [(seed, index)] — no shared mutable state, so a family of streams
    (one per vertex, per shard, per purpose) can be drawn in any order,
    from any domain, and still be byte-identical run to run. Distinct
    indices give statistically independent streams; [index] may be
    negative (useful for reserving non-vertex purposes alongside
    per-vertex streams [0..n)). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]; requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_distinct : t -> n:int -> k:int -> int array
(** [sample_distinct t ~n ~k] draws [k] distinct values from [\[0, n)],
    in uniformly random order. Requires [0 <= k <= n]. *)

val hash64 : int64 -> int64
(** The raw SplitMix64 finalizer: a high-quality 64-bit mixing function,
    usable as a standalone hash. *)
