(** CRC-32 (IEEE 802.3 / zlib polynomial) over strings and bytes.

    Pure-OCaml table-driven implementation; used by the equilibrium
    atlas to frame records on disk. Returns the checksum as a
    non-negative [int] in the range [0, 0xFFFF_FFFF].

    [?crc] chains a previous checksum so multi-slice payloads can be
    summed without concatenation: [crc32 ~crc:(crc32 a) b] equals
    [crc32 (a ^ b)]. [?pos]/[?len] select a slice (default: the whole
    string). *)

val crc32 : ?crc:int -> ?pos:int -> ?len:int -> string -> int
val crc32_bytes : ?crc:int -> ?pos:int -> ?len:int -> bytes -> int
