(** Bounded least-recently-used cache.

    The serving layer deduplicates equilibrium checks by canonical graph
    form; this is its eviction policy, kept standalone so the policy is
    testable in isolation (and reusable by any other memoizing layer).

    Implementation is the classical hashtable + doubly-linked recency
    list: every operation is O(1) amortized. {!find} counts a hit or a
    miss and {e promotes} the entry to most-recently-used; {!add} on an
    existing key replaces the value (also promoting); inserting past
    capacity evicts the least-recently-used entry.

    Not thread-safe — callers running concurrent lookups (the server)
    wrap it in their own mutex. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [create ~capacity] is an empty cache holding at most [capacity]
    entries. @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a [Some] promotes the entry to most-recently-used and counts
    a hit, a [None] counts a miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without promotion and without touching the hit/miss
    counters. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, promoting to most-recently-used; evicts the
    least-recently-used entry when a fresh insert exceeds capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
(** No-op when absent. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry; keeps the hit/miss counters. *)

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries from most- to least-recently-used (test observability). *)
