(** Fixed-size domain pool for data-parallel kernels.

    The hot loops of this repository — per-agent equilibrium scans, census
    enumeration, all-pairs BFS — are embarrassingly parallel over an index
    range [0, n). This pool spawns [jobs - 1] worker domains once at
    creation (the caller participates as worker 0) and hands each parallel
    region out in contiguous chunks claimed from a shared atomic counter.

    Determinism contract: every combinator below produces the same result
    as its sequential counterpart regardless of scheduling —
    {!parallel_find} returns the {e lowest-index} witness, and
    {!fold_chunks}/{!parallel_reduce} combine per-chunk results in
    ascending chunk order. A pool with [jobs = 1] spawns no domains and
    runs every region inline, bit-for-bit identical to a plain loop.

    Not reentrant: a parallel region must not start another region on the
    same pool (workspace-per-domain, no nesting). Callbacks must confine
    mutation to per-domain state created by [init] plus disjoint writes
    (e.g. row [i] of a shared matrix). *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains. [jobs] defaults to
    {!available_jobs}; raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int

val available_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism the
    runtime suggests. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must not be used
    afterwards. Pools with [jobs = 1] have nothing to join. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    also on exceptions. *)

val parallel_for :
  ?chunk:int -> t -> n:int -> init:(unit -> 's) -> ('s -> int -> unit) -> unit
(** [parallel_for pool ~n ~init f] calls [f state i] once for every
    [i] in [[0, n)]. [init] runs at most once per domain (lazily, on the
    domain that uses it) and typically allocates scratch such as a BFS
    workspace or a private graph copy. [chunk] (default 1) is the number
    of consecutive indices claimed at a time. Exceptions raised by [f]
    abort the region and one of them is re-raised after all workers have
    drained. *)

val parallel_find :
  ?chunk:int -> t -> n:int -> init:(unit -> 's) -> ('s -> int -> 'r option) -> 'r option
(** First-witness-wins search: semantically identical to scanning
    [f state 0, f state 1, ...] and returning the first [Some].
    Later indices stop being evaluated once a witness with a smaller
    index is known, so the parallel run early-exits like the sequential
    one. *)

val parallel_reduce :
  ?chunk:int ->
  t ->
  n:int ->
  init:(unit -> 's) ->
  map:('s -> int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  zero:'a ->
  'a
(** [fold_left reduce zero (map 0 .. map (n-1))] with the maps run in
    parallel. [reduce] is applied in ascending index order, so it need not
    be commutative — only the usual fold associativity is assumed. *)

val fold_chunks :
  ?chunk:int ->
  t ->
  n:int ->
  fold:(lo:int -> hi:int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  zero:'a ->
  'a
(** Coarse-grained variant for stages that want to own a whole index range
    (census shards): [fold ~lo ~hi] processes [[lo, hi)] and returns a
    partial result; partials are combined with [reduce] in ascending
    chunk order. [chunk] defaults to a size that yields a few chunks per
    worker. *)
