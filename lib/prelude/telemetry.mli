(** Process-wide, domain-safe solver telemetry.

    Long census / hunt / equilibrium-scan runs are opaque without counters:
    how many BFS calls ran, how many swap candidates were pruned, where the
    wall-clock went per shard. This module is the measurement substrate —
    named counters, gauges, nanosecond span timers and bounded histograms
    registered once at module-initialisation time and updated from any
    domain.

    {b Zero-cost-when-off contract.} All of it sits behind one process-wide
    [enabled] switch (a flat [bool ref]). Every update operation first reads
    that flag and returns immediately when telemetry is off: no allocation,
    no atomic traffic, no clock syscall — just a load and a conditional
    branch. Hot paths may therefore stay instrumented unconditionally; the
    disabled-mode overhead is within benchmark noise (the repo gate is a
    <= 2% regression on the equilibrium-check and census benchmarks).

    {b Domain safety.} Metric cells are [Atomic.t] ints; increments from
    concurrent {!Pool.parallel_for} callbacks lose no counts. Metric
    {e registration} is mutex-protected but intended for module-init time
    (single domain); do not create metrics inside parallel regions.

    {b Determinism caveat.} Counter totals are deterministic for a fixed
    workload, but early-exiting parallel scans ({!Pool.parallel_find}) may
    evaluate a scheduling-dependent set of indices, so counters incremented
    inside them can vary run to run even though results never do. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Flip the global switch. Typically driven by [--stats]/[--stats-json] in
    the CLI, [BNCG_STATS] in the experiment harness and benchmarks. *)

val reset : unit -> unit
(** Zero every registered metric (between runs; keeps registrations). *)

(** {1 Metric handles}

    Creation is idempotent per name: asking again for an existing name of
    the same kind returns the same handle, so test code can re-request
    handles freely. A name collision across kinds raises
    [Invalid_argument]. *)

type counter

val counter : string -> counter
(** Monotonically increasing event count. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** [add c k] bumps by [k] ([k >= 0]); no-op when disabled. *)

val counter_value : counter -> int

type gauge

val gauge : string -> gauge
(** Last-write-wins instantaneous value (e.g. the index of the violating
    agent found by the last equilibrium check). *)

val set_gauge : gauge -> int -> unit

val gauge_value : gauge -> int

type span

val span : string -> span
(** Accumulating wall-clock timer: total nanoseconds plus call count. *)

val start : unit -> int
(** Monotonic timestamp in nanoseconds, or [0] when disabled. Pair with
    {!stop}; the int round-trip keeps the disabled path allocation-free.
    Spans nest freely — the state lives in the caller, not the metric. *)

val stop : span -> int -> unit
(** [stop sp t0] adds [now - t0] to [sp] and bumps its call count. Ignores
    [t0 = 0], so a span opened while disabled records nothing even if
    telemetry was enabled in between. *)

val with_span : span -> (unit -> 'a) -> 'a
(** Convenience wrapper; records also when [f] raises. Calls [f] directly
    (no timing, no allocation beyond the closure) when disabled. *)

val span_ns : span -> int

val span_count : span -> int

type histogram

val histogram : string -> histogram
(** Bounded log2-bucketed distribution of nonnegative int samples: bucket
    [i] counts values in [[2^i, 2^(i+1))] (bucket 0 also catches [v <= 1]),
    clamped to {!histogram_buckets} buckets. Also tracks count and sum. *)

val histogram_buckets : int

val observe : histogram -> int -> unit

val histogram_count : histogram -> int

val histogram_sum : histogram -> int

val histogram_bucket : histogram -> int -> int
(** [histogram_bucket h i] for [0 <= i < histogram_buckets]. *)

(** {1 Reporting} *)

type row = { name : string; kind : string; value : int }
(** One scalar of the snapshot. Counters and gauges yield one row each;
    a span yields [<name>.ns] and [<name>.calls]; a histogram yields
    [<name>.count], [<name>.sum] and one [<name>.le_2^k] row per nonzero
    bucket. *)

val rows : unit -> row list
(** Snapshot of every registered metric, sorted by name. *)

val print_report : unit -> unit
(** Sorted three-column table ({!Table}) on stdout. *)

val write_json : string -> unit
(** Dump {!rows} as a JSON array of [{"name", "kind", "value"}] objects —
    the same shape-per-row discipline as the bench harness's [--json]. *)
