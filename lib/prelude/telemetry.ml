(* The one flat guard: every update op reads this ref and bails before
   touching atomics or the clock, so instrumented hot paths cost a load
   and a branch when telemetry is off. *)
let on = ref false

let enabled () = !on

let set_enabled b = on := b

type kind = Counter | Gauge | Span | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Span -> "span"
  | Histogram -> "histogram"

(* One record for all four kinds; the cell layout per kind is
     counter    [| value |]
     gauge      [| value |]
     span       [| total_ns; calls |]
     histogram  [| count; sum; bucket_0 .. bucket_(buckets-1) |]
   The .mli exposes each kind as its own abstract type. *)
type metric = { name : string; kind : kind; cells : int Atomic.t array }

type counter = metric

type gauge = metric

type span = metric

type histogram = metric

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let register name kind size =
  Mutex.lock registry_lock;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m when m.kind = kind -> m
    | Some m ->
      Mutex.unlock registry_lock;
      invalid_arg
        (Printf.sprintf "Telemetry: %S already registered as a %s" name
           (kind_name m.kind))
    | None ->
      let m = { name; kind; cells = Array.init size (fun _ -> Atomic.make 0) } in
      Hashtbl.add registry name m;
      m
  in
  if m.kind = kind then Mutex.unlock registry_lock;
  m

let counter name = register name Counter 1

let gauge name = register name Gauge 1

let span name = register name Span 2

let histogram_buckets = 48

let histogram name = register name Histogram (2 + histogram_buckets)

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ m -> Array.iter (fun c -> Atomic.set c 0) m.cells)
    registry;
  Mutex.unlock registry_lock

(* --- updates ------------------------------------------------------------ *)

let incr c = if !on then Atomic.incr c.cells.(0)

let add c k = if !on then ignore (Atomic.fetch_and_add c.cells.(0) k)

let counter_value c = Atomic.get c.cells.(0)

let set_gauge g v = if !on then Atomic.set g.cells.(0) v

let gauge_value g = Atomic.get g.cells.(0)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let start () = if !on then now_ns () else 0

let stop sp t0 =
  if !on && t0 <> 0 then begin
    ignore (Atomic.fetch_and_add sp.cells.(0) (now_ns () - t0));
    Atomic.incr sp.cells.(1)
  end

let with_span sp f =
  if not !on then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> stop sp t0) f
  end

let span_ns sp = Atomic.get sp.cells.(0)

let span_count sp = Atomic.get sp.cells.(1)

let bucket_of v =
  if v <= 1 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 1 do
      (* Stdlib.incr: the counter [incr] above shadows it *)
      i := !i + 1;
      v := !v lsr 1
    done;
    min !i (histogram_buckets - 1)
  end

let observe h v =
  if !on then begin
    Atomic.incr h.cells.(0);
    ignore (Atomic.fetch_and_add h.cells.(1) v);
    Atomic.incr h.cells.(2 + bucket_of v)
  end

let histogram_count h = Atomic.get h.cells.(0)

let histogram_sum h = Atomic.get h.cells.(1)

let histogram_bucket h i =
  if i < 0 || i >= histogram_buckets then invalid_arg "Telemetry.histogram_bucket";
  Atomic.get h.cells.(2 + i)

(* --- reporting ---------------------------------------------------------- *)

type row = { name : string; kind : string; value : int }

let rows_of_metric m =
  let cell i = Atomic.get m.cells.(i) in
  match m.kind with
  | Counter -> [ { name = m.name; kind = "counter"; value = cell 0 } ]
  | Gauge -> [ { name = m.name; kind = "gauge"; value = cell 0 } ]
  | Span ->
    [
      { name = m.name ^ ".ns"; kind = "span_ns"; value = cell 0 };
      { name = m.name ^ ".calls"; kind = "span_calls"; value = cell 1 };
    ]
  | Histogram ->
    let buckets = ref [] in
    for i = histogram_buckets - 1 downto 0 do
      let c = cell (2 + i) in
      if c > 0 then
        buckets :=
          {
            name = Printf.sprintf "%s.le_2^%d" m.name (i + 1);
            kind = "histogram_bucket";
            value = c;
          }
          :: !buckets
    done;
    { name = m.name ^ ".count"; kind = "histogram_count"; value = cell 0 }
    :: { name = m.name ^ ".sum"; kind = "histogram_sum"; value = cell 1 }
    :: !buckets

let rows () =
  Mutex.lock registry_lock;
  let metrics = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.concat_map rows_of_metric metrics
  |> List.sort (fun a b -> compare a.name b.name)

let print_report () =
  let t =
    Table.create ~title:"telemetry"
      ~columns:[ ("metric", Table.Left); ("kind", Table.Left); ("value", Table.Right) ]
  in
  List.iter (fun r -> Table.add_row t [ r.name; r.kind; string_of_int r.value ]) (rows ());
  Table.print t

let write_json path =
  let rows = rows () in
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      (* %S escaping is valid JSON for the ASCII metric names used here,
         matching the bench harness's writer *)
      Printf.fprintf oc "  {\"name\": %S, \"kind\": %S, \"value\": %d}%s\n"
        r.name r.kind r.value
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc
