(* CRC-32, IEEE polynomial (reflected 0xedb88320), table-driven. *)

let table =
  lazy
    (let t = Array.make 256 0 in
     for i = 0 to 255 do
       let c = ref i in
       for _ = 0 to 7 do
         if !c land 1 = 1 then c := 0xedb88320 lxor (!c lsr 1)
         else c := !c lsr 1
       done;
       t.(i) <- !c
     done;
     t)

let crc32_bytes ?(crc = 0) ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.crc32_bytes";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let crc32 ?crc ?pos ?len s = crc32_bytes ?crc ?pos ?len (Bytes.unsafe_of_string s)
