(* A deliberately small domainslib: one task at a time, chunked index
   ranges off an atomic counter, caller participates as worker 0. The
   contract that matters for the rest of the repo is determinism — every
   combinator reduces in index order or keeps the lowest-index witness,
   so parallel results coincide with the sequential ones. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable epoch : int;  (* bumped once per launched region *)
  mutable current : (unit -> unit) option;
  mutable pending : int;  (* spawned workers still inside the region *)
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
}

let available_jobs () = Domain.recommended_domain_count ()

(* regions launched, chunks claimed off the atomic counter, and per-worker
   time spent inside a region (caller included). All updates are flat
   no-ops while telemetry is disabled. *)
let m_regions = Telemetry.counter "pool.regions"

let m_tasks = Telemetry.counter "pool.tasks_dispatched"

let m_busy = Telemetry.span "pool.busy"

let jobs t = t.jobs

(* Worker domains sleep between regions; [seen] is the last epoch this
   worker executed, so a broadcast wakes it exactly once per region. *)
let rec worker_loop pool seen =
  Mutex.lock pool.mutex;
  while pool.epoch = seen && not pool.stopping do
    Condition.wait pool.work_ready pool.mutex
  done;
  if pool.stopping then Mutex.unlock pool.mutex
  else begin
    let epoch = pool.epoch in
    let task = Option.get pool.current in
    Mutex.unlock pool.mutex;
    task ();
    Mutex.lock pool.mutex;
    pool.pending <- pool.pending - 1;
    if pool.pending = 0 then Condition.signal pool.work_done;
    Mutex.unlock pool.mutex;
    worker_loop pool epoch
  end

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> available_jobs ()
    | Some j -> if j < 1 then invalid_arg "Pool.create: jobs < 1" else j
  in
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      epoch = 0;
      current = None;
      pending = 0;
      stopping = false;
      domains = [||];
    }
  in
  if jobs > 1 then
    pool.domains <-
      Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let shutdown pool =
  if Array.length pool.domains > 0 then begin
    Mutex.lock pool.mutex;
    pool.stopping <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run [task] on every worker (caller included) and wait for all of them.
   [task] must not raise: region builders below wrap their body so the
   first exception is parked in an atomic and re-raised after the join,
   leaving the pool reusable. *)
let run_region pool (task : unit -> unit) =
  let exn_slot = Atomic.make None in
  Telemetry.incr m_regions;
  let guarded () =
    let t0 = Telemetry.start () in
    (try task ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set exn_slot None (Some (e, bt))));
    Telemetry.stop m_busy t0
  in
  if pool.jobs = 1 then guarded ()
  else begin
    Mutex.lock pool.mutex;
    pool.current <- Some guarded;
    pool.pending <- pool.jobs - 1;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    guarded ();
    Mutex.lock pool.mutex;
    while pool.pending > 0 do
      Condition.wait pool.work_done pool.mutex
    done;
    pool.current <- None;
    Mutex.unlock pool.mutex
  end;
  match Atomic.get exn_slot with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let chunk_count n chunk = (n + chunk - 1) / chunk

let default_fold_chunk pool n =
  (* a few chunks per worker keeps the tail balanced without paying the
     atomic counter per index *)
  max 1 (n / (4 * pool.jobs))

let parallel_for ?(chunk = 1) pool ~n ~init f =
  if chunk < 1 then invalid_arg "Pool.parallel_for: chunk < 1";
  if n > 0 then begin
    if pool.jobs = 1 then begin
      let st = init () in
      for i = 0 to n - 1 do
        f st i
      done
    end
    else begin
      let nchunks = chunk_count n chunk in
      let next = Atomic.make 0 in
      run_region pool (fun () ->
          let st = lazy (init ()) in
          let rec claim () =
            let c = Atomic.fetch_and_add next 1 in
            if c < nchunks then begin
              Telemetry.incr m_tasks;
              let lo = c * chunk and hi = min n ((c + 1) * chunk) in
              let st = Lazy.force st in
              for i = lo to hi - 1 do
                f st i
              done;
              claim ()
            end
          in
          claim ())
    end
  end

let parallel_find ?(chunk = 1) pool ~n ~init f =
  if chunk < 1 then invalid_arg "Pool.parallel_find: chunk < 1";
  if n <= 0 then None
  else if pool.jobs = 1 then begin
    let st = init () in
    let rec scan i =
      if i >= n then None
      else match f st i with Some _ as r -> r | None -> scan (i + 1)
    in
    scan 0
  end
  else begin
    let nchunks = chunk_count n chunk in
    let next = Atomic.make 0 in
    (* lowest-index witness so far; [max_int] = none. Workers claim chunks
       in ascending order, so once a witness precedes a chunk's first
       index the whole remaining range is dead. *)
    let best = Atomic.make (max_int, None) in
    let beats i = fst (Atomic.get best) > i in
    let rec install i v =
      let cur = Atomic.get best in
      if fst cur > i && not (Atomic.compare_and_set best cur (i, Some v)) then
        install i v
    in
    run_region pool (fun () ->
        let st = lazy (init ()) in
        let rec claim () =
          let c = Atomic.fetch_and_add next 1 in
          if c < nchunks && beats (c * chunk) then begin
            Telemetry.incr m_tasks;
            let lo = c * chunk and hi = min n ((c + 1) * chunk) in
            let st = Lazy.force st in
            let i = ref lo in
            let live = ref true in
            while !live && !i < hi do
              if not (beats !i) then live := false
              else begin
                (match f st !i with
                | Some v ->
                  install !i v;
                  live := false
                | None -> ());
                incr i
              end
            done;
            if !live then claim ()
          end
        in
        claim ());
    snd (Atomic.get best)
  end

let fold_chunks ?chunk pool ~n ~fold ~reduce ~zero =
  let chunk = match chunk with Some c -> c | None -> default_fold_chunk pool n in
  if chunk < 1 then invalid_arg "Pool.fold_chunks: chunk < 1";
  if n <= 0 then zero
  else begin
    let nchunks = chunk_count n chunk in
    let partial = Array.make nchunks zero in
    if pool.jobs = 1 then
      for c = 0 to nchunks - 1 do
        Telemetry.incr m_tasks;
        partial.(c) <- fold ~lo:(c * chunk) ~hi:(min n ((c + 1) * chunk))
      done
    else begin
      let next = Atomic.make 0 in
      run_region pool (fun () ->
          let rec claim () =
            let c = Atomic.fetch_and_add next 1 in
            if c < nchunks then begin
              Telemetry.incr m_tasks;
              partial.(c) <- fold ~lo:(c * chunk) ~hi:(min n ((c + 1) * chunk));
              claim ()
            end
          in
          claim ())
    end;
    (* chunk-ordered reduction keeps non-commutative merges deterministic *)
    Array.fold_left reduce zero partial
  end

let parallel_reduce ?(chunk = 1) pool ~n ~init ~map ~reduce ~zero =
  if chunk < 1 then invalid_arg "Pool.parallel_reduce: chunk < 1";
  if n <= 0 then zero
  else if pool.jobs = 1 then begin
    let st = init () in
    let acc = ref zero in
    for i = 0 to n - 1 do
      acc := reduce !acc (map st i)
    done;
    !acc
  end
  else begin
    let nchunks = chunk_count n chunk in
    let partial = Array.make nchunks [] in
    let next = Atomic.make 0 in
    run_region pool (fun () ->
        let st = lazy (init ()) in
        let rec claim () =
          let c = Atomic.fetch_and_add next 1 in
          if c < nchunks then begin
            Telemetry.incr m_tasks;
            let lo = c * chunk and hi = min n ((c + 1) * chunk) in
            let st = Lazy.force st in
            (* a one-element list per chunk keeps ['a] unconstrained (no
               dummy element needed for the partial array) *)
            let acc = ref (map st lo) in
            for i = lo + 1 to hi - 1 do
              acc := reduce !acc (map st i)
            done;
            partial.(c) <- [ !acc ];
            claim ()
          end
        in
        claim ());
    Array.fold_left
      (fun acc part -> match part with [ x ] -> reduce acc x | _ -> acc)
      zero partial
  end
